"""Static type check of the typed core (``repro.analysis``,
``repro.lint``) via mypy, when mypy is available.

The check mirrors CI's ``mypy --config-file pyproject.toml`` job: the
configuration (target files, strictness flags) lives in pyproject.toml so
the two runs cannot drift.  Environments without mypy (it is not a
runtime dependency) skip rather than fail.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO = Path(__file__).parent.parent


def test_typed_core_passes_mypy():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"mypy found type errors in the typed core:\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
