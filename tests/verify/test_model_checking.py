"""Exhaustive verification of the paper's deadlock claims.

Unlike the trace-based Figure 1 tests (one schedule), these explore *every*
environment stalling pattern: the credit-based wrapper is proven
deadlock-free over the full finite state space, while the naive wrapper and
the misordered fixed-order wrapper have reachable deadlock states with
concrete environment counterexamples.
"""

import pytest

from repro.circuit import (
    DataflowCircuit,
    FunctionalUnit,
    Sequence,
    Sink,
)
from repro.core import insert_sharing_wrapper
from repro.errors import SimulationError
from repro.sim import Engine
from repro.verify import (
    StallingSink,
    explore,
    make_environment_nondeterministic,
)

from tests.helpers import fig1_circuit

N = 3  # tokens per source: keeps the exact state space small


def fig1_shared(variant: str):
    c, _, _ = fig1_circuit(N, slack_slots=0 if variant != "fixed" else 4)
    if variant == "naive":
        insert_sharing_wrapper(c, ["M2", "M3"], use_credits=False,
                               credits={"M2": 1, "M3": 1})
    elif variant == "credits":
        insert_sharing_wrapper(c, ["M2", "M3"], credits={"M2": 1, "M3": 1})
    elif variant == "credits2":
        insert_sharing_wrapper(c, ["M2", "M3"], credits={"M2": 2, "M3": 2})
    elif variant == "fixed":
        insert_sharing_wrapper(c, ["M1", "M3"], arbitration="fixed",
                               fixed_order=["M3", "M1"],
                               credits={"M1": 2, "M3": 2})
    make_environment_nondeterministic(c)
    return c


class TestEnvironment:
    def test_stalling_sink_behaves_as_sink_when_ready(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("src", [1, 2]))
        s = c.add(Sink("out"))
        c.connect(src, 0, s, 0)
        names = make_environment_nondeterministic(c)
        assert names == ["out@env"]
        env = c.unit("out@env")
        assert isinstance(env, StallingSink)
        Engine(c).run(lambda: env.count == 2, max_cycles=20)

    def test_explore_requires_stalling_sinks(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("src", [1]))
        s = c.add(Sink("out"))
        c.connect(src, 0, s, 0)
        with pytest.raises(SimulationError, match="StallingSink"):
            explore(c)


class TestExhaustiveDeadlockFreedom:
    def test_unshared_circuit_verified(self):
        c, _, _ = fig1_circuit(N, slack_slots=4)
        make_environment_nondeterministic(c)
        result = explore(c, max_states=60_000)
        assert result.completed
        assert result.deadlock_free
        assert result.states_explored > 10

    def test_credit_wrapper_verified_deadlock_free(self):
        result = explore(fig1_shared("credits"), max_states=60_000)
        assert result.completed
        assert result.deadlock_free

    def test_credit_wrapper_with_two_credits_verified(self):
        result = explore(fig1_shared("credits2"), max_states=120_000)
        assert result.completed
        assert result.deadlock_free

    def test_naive_wrapper_has_reachable_deadlock(self):
        result = explore(fig1_shared("naive"), max_states=60_000)
        assert not result.deadlock_free
        assert result.deadlock_states > 0
        assert result.counterexample is not None

    def test_naive_counterexample_replays_to_deadlock(self):
        c = fig1_shared("naive")
        result = explore(c, max_states=60_000)
        schedule = result.counterexample
        # Replay: drive the engine with the counterexample schedule, then
        # keep everything ready — the circuit must stay frozen.
        c2 = fig1_shared("naive")
        eng = Engine(c2)
        sinks = [u for u in c2.units.values() if isinstance(u, StallingSink)]
        for choice in schedule:
            for s, r in zip(sinks, choice):
                s.ready_now = r
            eng.step()
        for s in sinks:
            s.ready_now = True
        stuck = all(eng.step() == 0 for _ in range(30))
        total = sum(s.count for s in sinks)
        assert stuck
        assert total < 2 * N  # it froze before delivering everything

    def test_misordered_fixed_arbiter_has_reachable_deadlock(self):
        result = explore(fig1_shared("fixed"), max_states=60_000)
        assert not result.deadlock_free
