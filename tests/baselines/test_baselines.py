"""Naive and In-order baselines."""

import pytest

from repro.analysis import critical_cfcs, place_buffers
from repro.baselines import (
    inorder_share,
    naive_share,
    order_preserves_ii,
    total_order_of,
)
from repro.circuit import FunctionalUnit
from repro.frontend import lower_kernel, simulate_kernel
from repro.frontend.kernels import build


def prepared(name):
    low = lower_kernel(build(name, scale="small"), "bb")
    cfcs = critical_cfcs(low.circuit)
    place_buffers(low.circuit, cfcs)
    return low, cfcs


def fp_census(circuit):
    census = {}
    for u in circuit.units_of_type(FunctionalUnit):
        if u.spec.shareable and not u.bundled:
            census[u.op] = census.get(u.op, 0) + 1
    return census


class TestNaive:
    def test_noop(self):
        low, cfcs = prepared("atax")
        before = dict(fp_census(low.circuit))
        res = naive_share(low.circuit, cfcs)
        assert fp_census(low.circuit) == before
        assert res.groups == ()


class TestTotalOrder:
    def test_order_follows_cfc_then_topology(self):
        low, cfcs = prepared("atax")
        from repro.core import sharing_candidates

        fadds = [n for n in sharing_candidates(low.circuit)
                 if low.circuit.unit(n).op == "fadd"]
        order = total_order_of(fadds, cfcs)
        assert sorted(order) == sorted(fadds)

    def test_parallel_ops_order_safe(self):
        # gesummv's two accumulators don't depend on each other: a total
        # order preserves the II.
        low, cfcs = prepared("gesummv")
        from repro.core import sharing_candidates

        fadds = [n for n in sharing_candidates(low.circuit)
                 if low.circuit.unit(n).op == "fadd"]
        in_cfc = [n for n in fadds if any(n in c.unit_names for c in cfcs)]
        assert len(in_cfc) >= 2
        assert order_preserves_ii(low.circuit, cfcs, in_cfc[:2])

    def test_chained_ops_order_unsafe(self):
        # gsum's polynomial fadds form a long data chain: the wrap-around
        # ordering edge would stretch the II (paper Figure 2 / Section 3).
        low, cfcs = prepared("gsum")
        from repro.core import sharing_candidates

        fadds = [n for n in sharing_candidates(low.circuit)
                 if low.circuit.unit(n).op == "fadd"]
        # Find a chained pair: one fadd feeding (transitively) another.
        assert not order_preserves_ii(low.circuit, cfcs, fadds)


class TestInOrderPass:
    def test_shares_fully_on_regular_kernels(self):
        low, cfcs = prepared("atax")
        res = inorder_share(low.circuit, cfcs)
        assert fp_census(low.circuit) == {}  # all originals wrapped
        bundled = [u for u in low.circuit.units_of_type(FunctionalUnit) if u.bundled]
        assert {u.op for u in bundled} == {"fadd", "fmul"}
        assert res.evaluations > 0

    def test_cannot_share_gsum_chains(self):
        low, cfcs = prepared("gsum")
        res = inorder_share(low.circuit, cfcs)
        leftover = fp_census(low.circuit)
        # CRUSH gets this to zero leftovers; In-order cannot share the
        # chained polynomial operations.
        assert sum(leftover.values()) >= 6

    def test_partial_sharing_on_gsumif(self):
        low, cfcs = prepared("gsumif")
        naive_fadds = 7
        res = inorder_share(low.circuit, cfcs)
        shared_groups = [g for g in res.groups if len(g) > 1]
        assert shared_groups  # shares something (cross-branch pairs)...
        leftover = fp_census(low.circuit)
        total_left = sum(leftover.values()) + len(shared_groups)
        assert total_left > 2  # ...but far from CRUSH's 1 fadd + 1 fmul

    def test_simulates_correctly_after_sharing(self):
        low, cfcs = prepared("mvt")
        inorder_share(low.circuit, cfcs)
        run = simulate_kernel(low, max_cycles=200000)
        assert run.checked

    def test_opt_time_exceeds_crush(self):
        from repro.core import crush

        low1, cfcs1 = prepared("gsumif")
        r1 = inorder_share(low1.circuit, cfcs1)
        low2, cfcs2 = prepared("gsumif")
        r2 = crush(low2.circuit, cfcs2)
        assert r1.opt_time_s > r2.opt_time_s

    def test_arbiter_tagged_for_resource_model(self):
        low, cfcs = prepared("atax")
        res = inorder_share(low.circuit, cfcs)
        for w in res.wrappers:
            assert low.circuit.unit(w.arbiter).meta.get("order_state")
