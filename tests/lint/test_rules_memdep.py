"""Mutation tests for the memory-dependence lint rules (MD001..MD004).

Mirrors the CR/FL-rule test strategy: lower a real (or purpose-built)
kernel, break exactly one memory-ordering invariant, and assert the
matching MD code — and only it — fires.  MD001/MD002 guard the
lowering's conservative ``@dep`` token discipline; MD003 is the
``lsq-required`` classification surfaced as a finding; MD004 catches
stores no load can ever observe.
"""

import pytest

from repro.analysis import critical_cfcs, place_buffers
from repro.circuit import Join
from repro.frontend import lower_kernel
from repro.frontend.kernels import build
from repro.frontend.ir import (
    Array,
    Const,
    For,
    IConst,
    Kernel,
    Let,
    Load,
    Param,
    Store,
    Var,
)
from repro.lint import run_lint
from repro.pipeline import lint_prepared, prepare_circuit


def lowered(kernel, style="bb"):
    low = lower_kernel(kernel, style)
    place_buffers(low.circuit, critical_cfcs(low.circuit))
    return low


def md_codes(report):
    return sorted({d.code for d in report.diagnostics
                   if d.code.startswith("MD")})


def test_real_kernels_are_md_clean():
    """The lowering's own circuits satisfy every MD invariant (MD003 is
    informational and exempt from ``ok``)."""
    for name, tech in [("atax", "crush"), ("histogram", "naive")]:
        prep = prepare_circuit(name, tech, scale="small")
        rep = lint_prepared(prep)
        assert rep.ok, rep.format()
        assert not [d for d in rep.diagnostics
                    if d.code in ("MD001", "MD002", "MD004")]


def test_md_rules_pass_vacuously_without_kernel():
    """Linting a bare circuit (no kernel IR) never produces MD findings."""
    low = lowered(build("histogram", scale="small"))
    rep = run_lint(low.circuit)  # kernel deliberately omitted
    assert md_codes(rep) == []


def test_md001_fires_when_dep_gate_is_stripped():
    # Mutation: erase the lowering's memory-dependency join markers —
    # structurally the load's address path no longer carries any
    # ordering gate, so nothing serializes it behind the store.
    low = lowered(build("histogram", scale="small"))
    gates = [u for u in low.circuit.units.values()
             if isinstance(u, Join) and "mem_gate" in u.meta]
    assert gates, "lowering should have threaded @dep gates"
    for g in gates:
        del g.meta["mem_gate"]
    rep = run_lint(low.circuit, kernel=low.kernel)
    assert "MD001" in md_codes(rep)
    diags = rep.by_code("MD001")
    assert all(d.severity == "error" for d in diags)
    assert any("no memory-dependency gate" in d.message for d in diags)


def test_md002_fires_on_unordered_same_iteration_collision():
    # A WAR hazard the @dep token does not cover: x[i] is read and then
    # overwritten in the *same* iteration, with no dataflow chain from
    # the load to the store (the stored value is a constant).  Distance
    # is exactly 0, so only a value/ordering path could make it safe.
    kernel = Kernel(
        name="war_hazard",
        params={"N": 8},
        arrays=[
            Array("x", "N", role="inout"),
            Array("y", "N", role="out"),
        ],
        body=[
            For("i", IConst(0), Param("N"), body=[
                Let("v", Load("x", Var("i"))),
                Store("y", Var("i"), Var("v")),
                Store("x", Var("i"), Const(1.0)),
            ]),
        ],
    )
    low = lowered(kernel)
    rep = run_lint(low.circuit, kernel=low.kernel)
    assert "MD002" in md_codes(rep)
    diags = rep.by_code("MD002")
    assert all(d.severity == "error" for d in diags)
    assert any("same cell in the same cycle" in d.message for d in diags)


def test_md003_reports_each_unknown_pair_on_lsq_free_circuits():
    prep = prepare_circuit("histogram", "crush", scale="small")
    rep = lint_prepared(prep)
    diags = rep.by_code("MD003")
    # histogram has exactly two statically-unresolvable pairs:
    # h#ld0 x h#st0 and the h#st0 self pair.
    assert len(diags) == 2
    assert all(d.severity == "info" for d in diags)
    assert rep.ok  # informational: the circuit is correct, just slow
    # The finding can be promoted to a failure where LSQ-free builds
    # must stay affine (e.g. a CI profile).
    from repro.lint import LintConfig

    strict = run_lint(
        prep.circuit, decisions=prep.decisions, cfcs=prep.cfcs,
        kernel=prep.lowered.kernel,
        config=LintConfig(severities={"MD003": "error"}),
    )
    assert strict.by_code("MD003")
    assert all(d.severity == "error" for d in strict.by_code("MD003"))


def test_md003_silent_on_affine_kernels():
    prep = prepare_circuit("gemm", "crush", scale="small")
    rep = lint_prepared(prep)
    assert not rep.by_code("MD003")


def test_md004_fires_on_dead_store_to_input_array():
    # x has role "in" (the host never reads it back) and no load of x
    # can observe the written cells — the stores are dead weight.
    kernel = Kernel(
        name="dead_store",
        params={"N": 8},
        arrays=[
            Array("x", "N", role="in"),
            Array("y", "N", role="out"),
        ],
        body=[
            For("i", IConst(0), Param("N"), body=[
                Store("y", Var("i"), Const(2.0)),
                Store("x", Var("i"), Const(1.0)),
            ]),
        ],
    )
    low = lowered(kernel)
    rep = run_lint(low.circuit, kernel=low.kernel)
    diags = rep.by_code("MD004")
    assert len(diags) == 1
    assert diags[0].severity == "warning"
    assert "'x'" in diags[0].message
    # The output-role store is exempt.
    assert not any("'y'" in d.message for d in rep.by_code("MD004"))
