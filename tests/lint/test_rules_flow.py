"""Mutation tests for the token-flow lint rules (FL001..FL005).

Mirrors the CR-rule test strategy: prepare a real shared circuit, break
exactly one flow invariant, and assert the matching FL code fires.  The
mutations map one-to-one onto the failure modes the paper motivates
with: a starved cycle (Fig. 1d), head-of-line blocking (Fig. 1b / Eq. 1),
an undersized credit allocation (Eq. 3), and a priority inversion
(Fig. 4 / Algorithm 2).
"""

from fractions import Fraction

import pytest

from repro.circuit import (
    ArbiterMerge,
    CreditCounter,
    DataflowCircuit,
    FunctionalUnit,
    Sequence,
    Sink,
    TransparentFifo,
)
from repro.core.wrapper import insert_sharing_wrapper
from repro.lint import run_lint
from repro.pipeline import lint_prepared, predict_ii, prepare_circuit


@pytest.fixture()
def gemm():
    """A freshly prepared gemm/crush circuit (every test mutates it)."""
    return prepare_circuit("gemm", "crush", scale="small")


def _wrapper(prep):
    w = prep.decisions.wrappers[0]
    assert len(w.group) > 1
    return w


def test_prepared_circuits_are_flow_clean(gemm):
    rep = lint_prepared(gemm)
    assert rep.ok, rep.format()
    assert not [d for d in rep.diagnostics if d.code.startswith("FL")]


def test_fl001_fires_on_zero_token_backedge(gemm):
    # Mutation: drain the circulating token off a loop backedge — the
    # marked-graph cycle goes tokenless and can never fire again.
    backedges = [
        ch for ch in gemm.circuit.channels
        if ch.attrs.get("backedge") and int(ch.attrs.get("tokens", 0)) > 0
    ]
    assert backedges
    backedges[0].attrs["tokens"] = 0
    rep = lint_prepared(gemm)
    codes = rep.codes()
    assert "FL001" in codes
    # The exact starved cycle is named in the message.
    assert any("->" in d.message for d in rep.by_code("FL001"))


def test_fl002_fires_when_an_output_buffer_shrinks(gemm):
    # Mutation: shrink one output buffer below its slot's credits —
    # Eq. 1 (N_CC <= N_OB) breaks on the live units.
    w = _wrapper(gemm)
    ob = gemm.circuit.units[w.output_buffers[0]]
    cc = gemm.circuit.units[w.credit_counters[0]]
    assert isinstance(ob, TransparentFifo) and isinstance(cc, CreditCounter)
    ob.slots = cc.initial - 1
    rep = lint_prepared(gemm)
    assert "FL002" in rep.codes()
    assert any("Eq. 1" in d.message for d in rep.by_code("FL002"))


def test_fl002_fires_on_grant_annotation_drift(gemm):
    # Mutation: the grant channel's token annotation drifts from the
    # counter's initial credits — the marked-graph abstraction would be
    # unsound, so the analyzer refuses it loudly.
    w = _wrapper(gemm)
    cc = gemm.circuit.units[w.credit_counters[0]]
    grant = gemm.circuit.out_channel(cc, 0)
    grant.attrs["tokens"] = cc.initial + 1
    rep = lint_prepared(gemm)
    assert any(
        "grant" in d.message for d in rep.by_code("FL002")
    ), rep.format()


def test_fl003_fires_when_a_credit_is_dropped(gemm):
    # Mutation: drop one credit (keeping the grant annotation consistent,
    # so only Eq. 3 is violated, not the abstraction).
    w = _wrapper(gemm)
    # Pick a slot whose allocation exceeds one credit (occupancy > 0, so
    # Eq. 3 granted ceil(phi) + 1 >= 2 there); dropping one then starves
    # the slot without hitting the structural minimum.
    cc = next(
        cc for name in w.credit_counters
        if (cc := gemm.circuit.units[name]).initial >= 2
    )
    cc.initial -= 1
    grant = gemm.circuit.out_channel(cc, 0)
    grant.attrs["tokens"] = cc.initial
    rep = lint_prepared(gemm)
    assert "FL003" in rep.codes()
    assert any("Eq. 3" in d.message for d in rep.by_code("FL003"))


def test_fl004_fires_when_credits_are_overprovisioned(gemm):
    # Mutation: grow a slot's credits and buffer together — Eq. 1 still
    # holds (no FL002) but the surplus credits waste buffer slots (Eq. 3
    # is exact), which is FL004's warning.
    w = _wrapper(gemm)
    cc = gemm.circuit.units[w.credit_counters[0]]
    ob = gemm.circuit.units[w.output_buffers[0]]
    cc.initial += 3
    ob.slots = cc.initial
    grant = gemm.circuit.out_channel(cc, 0)
    grant.attrs["tokens"] = cc.initial
    rep = lint_prepared(gemm)
    assert "FL004" in rep.codes()
    assert "FL002" not in rep.codes()


def test_fl005_fires_on_priority_inversion():
    # syr2k shares a producer->consumer fadd pair; swapping their arbiter
    # ranks prices a full pipeline pass into the flow graph, lifting the
    # predicted II above the recorded golden.
    prep = prepare_circuit("syr2k", "crush", scale="small")
    base = predict_ii(prep).ii
    assert base is not None

    target = None
    for w in prep.decisions.wrappers:
        if "fadd_0" in w.group and "fadd_1" in w.group:
            target = w
            break
    assert target is not None, "expected a shared fadd_0/fadd_1 group"
    arb = prep.circuit.units[target.arbiter]
    assert isinstance(arb, ArbiterMerge)
    ia = target.group.index("fadd_0")
    ib = target.group.index("fadd_1")
    pa, pb = arb.priority.index(ia), arb.priority.index(ib)
    assert pa < pb, "producer should outrank its consumer before mutation"
    arb.priority[pa], arb.priority[pb] = arb.priority[pb], arb.priority[pa]

    mutated = predict_ii(prep).ii
    assert mutated is not None and mutated > base

    rep = lint_prepared(prep, expected_ii=base)
    codes = rep.codes()
    assert "FL005" in codes
    assert "CR002" in codes  # the decision-record check fires too
    assert any(str(mutated) in d.message for d in rep.by_code("FL005"))


def test_fl005_stays_quiet_without_expected_ii():
    prep = prepare_circuit("syr2k", "crush", scale="small")
    rep = lint_prepared(prep)  # no expected_ii: rule disarmed
    assert "FL005" not in rep.codes()


def _chained_pair(order):
    """Two chained fmul units shared through one fixed-order wrapper.

    ``a`` feeds ``b``, so a grant order that schedules ``b`` before ``a``
    is the order-induced deadlock of the paper's Figure 1d.
    """
    c = DataflowCircuit("fixed-order")
    src = c.add(Sequence("src", [1.0, 2.0, 3.0]))
    a = c.add(FunctionalUnit("a", "fmul", latency_override=3,
                             const_ops={1: 2.0}))
    b = c.add(FunctionalUnit("b", "fmul", latency_override=3,
                             const_ops={1: 2.0}))
    sink = c.add(Sink("sink"))
    c.connect(src, 0, a, 0)
    c.connect(a, 0, b, 0)
    c.connect(b, 0, sink, 0)
    insert_sharing_wrapper(c, ["a", "b"], arbitration="fixed",
                           fixed_order=order)
    return c


def test_fl001_fires_on_fixed_order_against_the_dataflow():
    rep = run_lint(_chained_pair(["b", "a"]))
    assert "FL001" in rep.codes(), rep.format()


def test_fixed_order_matching_the_dataflow_is_live():
    rep = run_lint(_chained_pair(["a", "b"]))
    assert "FL001" not in rep.codes(), rep.format()
