"""Lint over every golden (kernel, technique) configuration.

The static analysis is a pre-simulation gate, so every configuration the
golden suite simulates must come out of the build -> lower -> share
pipeline lint-clean — in particular every CRUSH configuration (the
paper's circuits are deadlock-free by construction, Eq. 1 / Alg. 1 /
Alg. 2).
"""

import pytest

from repro.frontend.kernels import KERNEL_NAMES
from repro.pipeline import TECHNIQUES, lint_prepared, prepare_circuit

PAIRS = [(k, t) for k in KERNEL_NAMES for t in TECHNIQUES]


@pytest.mark.parametrize("kernel,technique", PAIRS,
                         ids=[f"{k}-{t}" for k, t in PAIRS])
def test_golden_config_lints_clean(kernel, technique):
    prep = prepare_circuit(kernel, technique, scale="small")
    rep = lint_prepared(prep)
    assert rep.ok, rep.format()
