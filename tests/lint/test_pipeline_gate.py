"""The lint gate inside the pipeline (run_technique) and the run_lint
driver's fault handling."""

import pytest

from repro.errors import AnalysisError, LintError, ReproError
from repro.lint import LintConfig, run_lint
from repro.lint.registry import RULES, LintRule
from repro.pipeline import LINT_MODES, run_technique
from tests.lint.test_rules_structural import clean_pipeline


class TestRunTechniqueGate:
    def test_lint_counts_recorded_in_result(self):
        res = run_technique("gsum", "crush", scale="small", simulate=False)
        assert res.lint_errors == 0
        assert res.lint_warnings == 0
        d = res.to_dict()
        assert d["lint_errors"] == 0 and d["lint_warnings"] == 0
        # Round-trip keeps the counts (sweep-cache compatibility).
        from repro.pipeline import TechniqueResult

        back = TechniqueResult.from_dict(d)
        assert back.lint_errors == 0 and back.lint_warnings == 0

    def test_from_dict_tolerates_pre_lint_cache_entries(self):
        from repro.pipeline import TechniqueResult

        d = run_technique("gsum", "crush", scale="small",
                          simulate=False).to_dict()
        d.pop("lint_errors")
        d.pop("lint_warnings")
        back = TechniqueResult.from_dict(d)
        assert back.lint_errors == 0 and back.lint_warnings == 0

    @pytest.mark.parametrize("mode", LINT_MODES)
    def test_all_modes_pass_on_a_clean_config(self, mode):
        res = run_technique("gsum", "crush", scale="small",
                            simulate=False, lint=mode)
        assert res.dsp > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            run_technique("gsum", "crush", scale="small",
                          simulate=False, lint="loud")


class TestRunLintDriver:
    def test_rule_faults_become_lint_errors(self):
        """A rule that dies on a ReproError is re-raised as LintError
        naming the rule — never swallowed, never a bare traceback."""

        def exploding(ctx, emit):
            raise AnalysisError("synthetic fault")

        RULES["ZZ999"] = LintRule(
            code="ZZ999", name="exploding", severity="error",
            summary="", paper="", check=exploding,
        )
        try:
            with pytest.raises(LintError, match="ZZ999"):
                run_lint(clean_pipeline(), cfcs=[])
            # Disabling the broken rule restores service.
            rep = run_lint(clean_pipeline(), cfcs=[],
                           config=LintConfig(disabled=["ZZ999"]))
            assert rep.ok
        finally:
            del RULES["ZZ999"]

    def test_every_registered_rule_has_catalog_metadata(self):
        run_lint(clean_pipeline(), cfcs=[])  # force rule registration
        assert len(RULES) >= 10
        for code, r in RULES.items():
            assert code == r.code
            assert r.paper, f"{code} lacks its paper anchor"
            assert r.summary, f"{code} lacks a summary"
            assert r.severity in ("info", "warning", "error")
