"""Mutation tests for the credit-system lint rules (CR001..CR003).

Each test prepares a real shared circuit (or builds a small one), breaks
exactly one invariant of the paper's sharing machinery, and asserts the
matching rule fires under its stable code.
"""

from types import SimpleNamespace

import pytest

from repro.circuit import (
    CreditCounter,
    DataflowCircuit,
    FunctionalUnit,
    Sequence,
    Sink,
    TransparentFifo,
)
from repro.core.wrapper import insert_sharing_wrapper
from repro.lint import run_lint
from repro.pipeline import lint_prepared, prepare_circuit


@pytest.fixture()
def prep():
    """A freshly prepared gsum/crush circuit (every test mutates it)."""
    return prepare_circuit("gsum", "crush", scale="small")


def _wrapper(prep):
    w = prep.decisions.wrappers[0]
    assert len(w.group) > 1
    return w


def test_prepared_crush_circuit_is_clean(prep):
    rep = lint_prepared(prep)
    assert rep.ok, rep.format()


def test_cr001_fires_when_credits_exceed_ob_slots(prep):
    w = _wrapper(prep)
    cc = prep.circuit.units[w.credit_counters[0]]
    ob = prep.circuit.units[w.output_buffers[0]]
    assert isinstance(cc, CreditCounter) and isinstance(ob, TransparentFifo)
    cc.initial = ob.slots + 1  # mutation: overcommit the slot
    rep = lint_prepared(prep)
    assert "CR001" in [d.code for d in rep.errors]
    assert any("Eq. 1 requires N_CC <= N_OB" in d.message
               for d in rep.by_code("CR001"))
    # The live value also drifted from the decision record.
    assert any("drifted" in d.message for d in rep.by_code("CR001"))


def test_cr001_fires_when_an_ob_slot_is_dropped(prep):
    w = _wrapper(prep)
    ob = prep.circuit.units[w.output_buffers[0]]
    cc = prep.circuit.units[w.credit_counters[0]]
    assert cc.initial >= 2  # Eq. 3 always grants at least phi+1 >= 2 here
    ob.slots = cc.initial - 1  # mutation: shrink the output buffer
    rep = lint_prepared(prep)
    assert any("Eq. 1 requires N_CC <= N_OB" in d.message
               for d in rep.by_code("CR001"))


def _two_stream_circuit():
    """Two independent streams through two identical fmul units."""
    c = DataflowCircuit("naive")
    for i in range(2):
        src = c.add(Sequence(f"src{i}", [1.0, 2.0]))
        m = c.add(FunctionalUnit(f"m{i}", "fmul", latency_override=3,
                                 const_ops={1: 2.0}))
        sink = c.add(Sink(f"sink{i}"))
        c.connect(src, 0, m, 0)
        c.connect(m, 0, sink, 0)
    return c


def test_cr001_fires_on_the_naive_uncredited_wrapper():
    c = _two_stream_circuit()
    insert_sharing_wrapper(c, ["m0", "m1"], use_credits=False)
    rep = run_lint(c, cfcs=[])
    assert "CR001" in [d.code for d in rep.errors]
    assert any("no credit counter" in d.message for d in rep.by_code("CR001"))


def test_credited_wrapper_is_cr001_clean_even_without_decisions():
    c = _two_stream_circuit()
    insert_sharing_wrapper(c, ["m0", "m1"], use_credits=True)
    rep = run_lint(c, cfcs=[])  # structural walk only, no decision record
    assert "CR001" not in rep.codes()


def test_cr002_fires_on_reversed_access_priority(prep):
    w = _wrapper(prep)
    key = "+".join(w.group)
    assert prep.decisions.order_constraints.get(key)  # gsum has real deps
    arb = prep.circuit.units[w.arbiter]
    arb.priority = list(reversed(arb.priority))  # mutation: invert Alg. 2
    rep = lint_prepared(prep)
    assert "CR002" in [d.code for d in rep.errors]
    msgs = [d.message for d in rep.by_code("CR002")]
    assert any("above its producer" in m for m in msgs)
    assert any("drifted from the decided priority" in m for m in msgs)


def test_cr003_fires_when_recorded_load_exceeds_capacity(prep):
    w = _wrapper(prep)
    key = "+".join(w.group)
    assert key in prep.decisions.group_load
    # Mutation: pretend the decision pass accepted an impossible load.
    prep.decisions.group_load[key] = 10_000
    rep = lint_prepared(prep)
    assert "CR003" in [d.code for d in rep.errors]
    assert any("rule R2" in d.message for d in rep.by_code("CR003"))


def test_cr003_fires_pre_rewrite_on_a_mixed_op_group():
    c = DataflowCircuit("mixed")
    src = c.add(Sequence("src", [1.0]))
    a = c.add(FunctionalUnit("a", "fadd", const_ops={1: 1.0}))
    m = c.add(FunctionalUnit("m", "fmul", const_ops={1: 2.0}))
    sink = c.add(Sink("sink"))
    c.connect(src, 0, a, 0)
    c.connect(a, 0, m, 0)
    c.connect(m, 0, sink, 0)
    decisions = SimpleNamespace(
        groups=[["a", "m"]], wrappers=[], occupancies={},
        group_load={}, order_constraints={}, priorities={},
    )
    rep = run_lint(c, decisions=decisions, cfcs=[])
    assert "CR003" in [d.code for d in rep.errors]
    assert any("rule R1" in d.message for d in rep.by_code("CR003"))
