"""Diagnostic / LintReport / LintConfig unit tests."""

import json

import pytest

from repro.errors import LintError
from repro.lint import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    Diagnostic,
    LintConfig,
    LintReport,
    raise_on_errors,
)


def _diag(code="ST001", severity="error", **kw):
    return Diagnostic(code=code, severity=severity,
                      message="something is off", **kw)


class TestDiagnostic:
    def test_format_mentions_code_severity_and_unit(self):
        d = _diag(unit="fadd_0", channel="c3")
        text = d.format()
        assert "ST001" in text
        assert "error" in text
        assert "fadd_0" in text

    def test_roundtrip_through_dict(self):
        d = _diag(code="SAN002", severity="warning", unit="eb1",
                  channel="src.0->eb1.0", source="sanitizer", cycle=17)
        back = Diagnostic.from_dict(d.to_dict())
        assert back == d
        # to_dict must be JSON-serialisable as-is
        json.dumps(d.to_dict())

    def test_rejects_unknown_severity(self):
        with pytest.raises(LintError):
            Diagnostic(code="XX001", severity="fatal", message="nope")


class TestLintReport:
    def test_empty_report_is_clean(self):
        rep = LintReport(circuit="c")
        assert rep.ok
        assert rep.exit_code() == EXIT_CLEAN
        assert rep.exit_code(strict=True) == EXIT_CLEAN
        assert "clean" in rep.format()

    def test_warning_exit_codes(self):
        rep = LintReport(circuit="c")
        rep.add(_diag(severity="warning"))
        assert not rep.ok  # ok means nothing warning-or-worse
        assert not rep.errors
        assert rep.exit_code() == EXIT_WARNINGS
        assert rep.exit_code(strict=True) == EXIT_ERRORS

    def test_error_exit_codes(self):
        rep = LintReport(circuit="c")
        rep.add(_diag(severity="error"))
        rep.add(_diag(code="ST002", severity="warning"))
        assert not rep.ok
        assert rep.exit_code() == EXIT_ERRORS
        assert len(rep.errors) == 1
        assert len(rep.warnings) == 1
        assert set(rep.codes()) == {"ST001", "ST002"}
        assert [d.code for d in rep.by_code("ST002")] == ["ST002"]

    def test_json_roundtrip(self):
        rep = LintReport(circuit="c")
        rep.add(_diag(unit="u"))
        data = json.loads(rep.to_json())
        assert data["circuit"] == "c"
        assert data["errors"] == 1
        assert data["diagnostics"][0]["code"] == "ST001"

    def test_raise_on_errors(self):
        rep = LintReport(circuit="c")
        rep.add(_diag(severity="warning"))
        raise_on_errors(rep)  # warnings alone do not raise
        with pytest.raises(LintError) as exc:
            raise_on_errors(rep, strict=True)
        assert exc.value.diagnostics  # carries the offending diagnostics
        rep.add(_diag(severity="error"))
        with pytest.raises(LintError):
            raise_on_errors(rep)


class TestLintConfig:
    def test_from_specs_disable_and_override(self):
        cfg = LintConfig.from_specs(["st002=off", "CR001=warning"])
        assert "ST002" in cfg.disabled
        assert cfg.severities == {"CR001": "warning"}

    @pytest.mark.parametrize("spec", ["ST002", "ST002=", "=off", "ST002=loud"])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(LintError):
            LintConfig.from_specs([spec])

    def test_unknown_severity_rejected_in_ctor(self):
        with pytest.raises(LintError):
            LintConfig(severities={"ST001": "fatal"})
