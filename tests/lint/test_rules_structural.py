"""Mutation tests for the structural lint rules (ST001..ST007).

Each test builds a small circuit, breaks exactly one structural
invariant, and asserts the rule fires under its stable code.  Other
rules may legitimately co-fire (e.g. an island also trips ST004), so
membership in ``report.codes()`` is asserted, not equality, unless the
circuit is fully clean.
"""

import pytest

from repro.analysis.cfc import CFC
from repro.circuit import (
    Channel,
    DataflowCircuit,
    ElasticBuffer,
    FunctionalUnit,
    PortRef,
    Sequence,
    Sink,
    TransparentFifo,
)
from repro.errors import CombinationalCycleError
from repro.lint import LintConfig, run_lint
from repro.sim import CompiledEngine


def clean_pipeline():
    """Sequence -> fadd(+1.0) -> ElasticBuffer -> Sink, all width 32."""
    c = DataflowCircuit("clean")
    src = c.add(Sequence("src", [1.0, 2.0, 3.0]))
    fu = c.add(FunctionalUnit("add", "fadd", const_ops={1: 1.0}))
    eb = c.add(ElasticBuffer("eb", slots=2))
    sink = c.add(Sink("sink"))
    c.connect(src, 0, fu, 0)
    c.connect(fu, 0, eb, 0)
    c.connect(eb, 0, sink, 0)
    return c


def ring(first_cls, second_cls, tokens=1):
    """Two-buffer island ring with ``tokens`` marked on the back edge."""
    c = DataflowCircuit("ring")
    a = c.add(first_cls("a"))
    b = c.add(second_cls("b"))
    c.connect(a, 0, b, 0)
    c.connect(b, 0, a, 0, tokens=tokens)
    return c


def test_clean_pipeline_is_clean():
    rep = run_lint(clean_pipeline(), cfcs=[])
    assert rep.ok, rep.format()
    assert rep.codes() == []


def test_st001_undriven_input():
    c = DataflowCircuit("dangling")
    src = c.add(Sequence("src", [1.0]))
    fu = c.add(FunctionalUnit("add", "fadd"))  # two live inputs
    sink = c.add(Sink("sink"))
    c.connect(src, 0, fu, 0)  # input 1 left undriven
    c.connect(fu, 0, sink, 0)
    rep = run_lint(c, cfcs=[])
    assert "ST001" in rep.codes()
    assert any("input port 1" in d.message for d in rep.by_code("ST001"))


def test_st001_unconsumed_output():
    c = DataflowCircuit("dangling")
    c.add(Sequence("src", [1.0]))  # output never consumed
    rep = run_lint(c, cfcs=[])
    assert "ST001" in rep.codes()
    assert any("unconsumed" in d.message for d in rep.by_code("ST001"))


def test_st002_widened_channel_through_buffer():
    c = clean_pipeline()
    # Mutation: widen the buffer's output channel 32 -> 64.
    out = c.out_channel(c.units["eb"], 0)
    out.width = 64
    rep = run_lint(c, cfcs=[])
    assert rep.codes() == ["ST002"]
    assert not rep.errors and len(rep.warnings) == 1
    # The rule is configurable: disabling it silences the finding,
    # promoting it turns the warning into an error.
    assert run_lint(c, cfcs=[],
                    config=LintConfig(disabled=["ST002"])).ok
    promoted = run_lint(c, cfcs=[],
                        config=LintConfig(severities={"ST002": "error"}))
    assert [d.code for d in promoted.errors] == ["ST002"]


def test_st003_implicit_fanout():
    c = clean_pipeline()
    sink2 = c.add(Sink("sink2"))
    # Bypass connect()'s double-drive guard: append a raw channel that
    # taps the source's output a second time.
    c.channels.append(Channel(
        cid=len(c.channels),
        src=PortRef("src", 0),
        dst=PortRef(sink2.name, 0),
    ))
    rep = run_lint(c, cfcs=[])
    assert "ST003" in rep.codes()
    assert any("implicit fan-out" in d.message for d in rep.by_code("ST003"))


def test_st003_implicit_fanin():
    c = clean_pipeline()
    extra = c.add(Sequence("src2", [9.0]))
    # Second driver onto the sink's single input port.
    c.channels.append(Channel(
        cid=len(c.channels),
        src=PortRef(extra.name, 0),
        dst=PortRef("sink", 0),
    ))
    rep = run_lint(c, cfcs=[])
    assert any("implicit fan-in" in d.message for d in rep.by_code("ST003"))


def test_st004_unreachable_island():
    c = clean_pipeline()
    # A buffered ring disconnected from the token sources.
    a = c.add(ElasticBuffer("island_a"))
    b = c.add(ElasticBuffer("island_b"))
    c.connect(a, 0, b, 0)
    c.connect(b, 0, a, 0, tokens=1)
    rep = run_lint(c, cfcs=[])
    assert "ST004" in rep.codes()
    flagged = {d.unit for d in rep.by_code("ST004")}
    assert flagged == {"island_a", "island_b"}


def test_st004_no_sources_at_all():
    rep = run_lint(ring(ElasticBuffer, ElasticBuffer), cfcs=[])
    assert any("no token sources" in d.message for d in rep.by_code("ST004"))


def test_st005_combinational_ring():
    # Two transparent FIFOs: both have a combinational bypass, so the
    # handshake ring has no sequential element.
    c = ring(TransparentFifo, TransparentFifo)
    rep = run_lint(c, cfcs=[])
    assert "ST005" in rep.codes()
    # Lint surfaces exactly what the compiled engine would die on.
    with pytest.raises(CombinationalCycleError):
        CompiledEngine(c)


def test_st005_removing_the_buffer_introduces_the_cycle():
    # With an ElasticBuffer on the ring the path is registered: clean.
    buffered = ring(ElasticBuffer, TransparentFifo)
    assert "ST005" not in run_lint(buffered, cfcs=[]).codes()
    CompiledEngine(buffered)  # builds fine
    # Mutation: swap the sequential element for a transparent one.
    bare = ring(TransparentFifo, TransparentFifo)
    assert "ST005" in run_lint(bare, cfcs=[]).codes()


def test_st006_token_dead_cycle():
    c = DataflowCircuit("dead")
    fu = c.add(FunctionalUnit("m", "fmul", latency_override=3,
                              const_ops={1: 2.0}))
    eb = c.add(ElasticBuffer("eb", slots=2))
    c.connect(fu, 0, eb, 0)
    c.connect(eb, 0, fu, 0)  # latency on the cycle, zero tokens
    cfc = CFC("loop", c, {"m", "eb"})
    rep = run_lint(c, cfcs=[cfc])
    assert "ST006" in rep.codes()
    # Marking one circulating token revives the cycle.
    c.channels[-1].attrs["tokens"] = 1
    rep2 = run_lint(c, cfcs=[CFC("loop", c, {"m", "eb"})])
    assert "ST006" not in rep2.codes()


def test_st007_saturated_ring():
    # Capacity on the ring: EB(2) + TF(1) = 3 slots.
    c = ring(ElasticBuffer, TransparentFifo, tokens=3)
    rep = run_lint(c, cfcs=[])
    assert "ST007" in rep.codes()
    assert any("saturated" in d.message for d in rep.by_code("ST007"))
    # One token fewer and the ring can breathe.
    c.channels[-1].attrs["tokens"] = 2
    assert "ST007" not in run_lint(c, cfcs=[]).codes()
