"""SARIF 2.1.0 serialization of lint reports."""

import json

from repro.lint import Diagnostic, LintReport, sarif_json, sarif_log
from repro.lint.registry import RULES
from repro.pipeline import lint_prepared, prepare_circuit


def _report():
    rep = LintReport(circuit="toy")
    rep.add(Diagnostic(code="FL001", severity="error",
                       message="cycle carries no token", unit="eb1"))
    rep.add(Diagnostic(code="ST002", severity="warning",
                       message="width drift", channel="a.0->b.0"))
    rep.add(Diagnostic(code="FL003", severity="info",
                       message="informational", unit="cc0"))
    return rep


def _rules_loaded():
    # Rule modules load lazily; SARIF rule metadata needs them registered.
    from repro.lint import rules_credit  # noqa: F401
    from repro.lint import rules_flow  # noqa: F401
    from repro.lint import rules_structural  # noqa: F401


def test_log_structure_and_rule_metadata():
    _rules_loaded()
    log = sarif_log([("gemm", "crush", _report())])
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    ids = [r["id"] for r in driver["rules"]]
    assert ids == sorted(ids)  # stable ordering
    assert set(ids) == set(RULES)
    # Paper anchors ride in the rule property bag.
    by_id = {r["id"]: r for r in driver["rules"]}
    assert "Eq. 1" in by_id["CR001"]["properties"]["paperAnchor"]
    assert by_id["FL001"]["defaultConfiguration"]["level"] == "error"


def test_results_carry_levels_locations_and_coordinates():
    _rules_loaded()
    log = sarif_log([("gemm", "crush", _report())])
    results = log["runs"][0]["results"]
    assert [r["level"] for r in results] == ["error", "warning", "note"]
    unit_loc = results[0]["locations"][0]["logicalLocations"][0]
    assert unit_loc == {"name": "eb1", "kind": "unit"}
    chan_loc = results[1]["locations"][0]["logicalLocations"][0]
    assert chan_loc == {"name": "a.0->b.0", "kind": "channel"}
    for r in results:
        assert r["properties"]["kernel"] == "gemm"
        assert r["properties"]["technique"] == "crush"
        assert r["ruleId"] in RULES
        # ruleIndex points back into the driver's rules array.
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert rules[r["ruleIndex"]]["id"] == r["ruleId"]


def test_multiple_reports_merge_into_one_run():
    _rules_loaded()
    log = sarif_log([
        ("gemm", "crush", _report()),
        ("atax", "naive", _report()),
    ])
    results = log["runs"][0]["results"]
    assert len(results) == 6
    kernels = {r["properties"]["kernel"] for r in results}
    assert kernels == {"gemm", "atax"}


def test_json_serialization_round_trips():
    _rules_loaded()
    text = sarif_json([("gemm", "crush", _report())])
    assert json.loads(text) == sarif_log([("gemm", "crush", _report())])


def test_clean_report_yields_empty_results():
    _rules_loaded()
    log = sarif_log([("gemm", "crush", LintReport(circuit="gemm"))])
    assert log["runs"][0]["results"] == []


def test_real_pipeline_report_serializes():
    prep = prepare_circuit("gemm", "crush", scale="small")
    rep = lint_prepared(prep)
    text = sarif_json([("gemm", "crush", rep)])
    log = json.loads(text)
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
