"""Figure 2: total-order sharing stretches the II; out-of-order keeps it.

M1 (latency 3) feeds M3 (latency 3); new inputs arrive every 2 cycles.
Sharing them on one unit:

* with the In-order discipline (fixed cyclic order M1, M3, M1, M3 ...),
  every M1 from iteration 2 on waits for the previous iteration's M3 —
  a dependency cycle of length 4, so the achieved II degrades to ~4
  (paper Figure 2a),
* with CRUSH's credit-based out-of-order access, the unit interleaves M1
  and M3 freely and the circuit sustains II = 2 (paper Figure 2b).
"""

import pytest

from repro.core import insert_sharing_wrapper
from repro.sim import Engine, Trace

from tests.helpers import fig2_circuit

N = 12


def run_and_measure(c, out, expected, m1="M1"):
    trace = Trace()
    eng = Engine(c, trace=trace)
    ch = trace.watch_unit_input(c, "out", 0)
    eng.run(lambda: out.count == len(expected), max_cycles=4000)
    assert out.received == expected
    gaps = trace.interarrival(ch)
    steady = gaps[3:]  # skip warm-up
    return sum(steady) / len(steady)


class TestFigure2:
    def test_pre_sharing_ii_is_two(self):
        c, m1, m3, out, expected = fig2_circuit(N, input_ii=2)
        ii = run_and_measure(c, out, expected)
        assert ii == pytest.approx(2.0, abs=0.2)

    def test_inorder_access_degrades_ii_to_at_least_four(self):
        # Paper: the ordering cycle (M1's full execution, M3's first stage,
        # back to M1) "forces the achievable II to be at least 4".
        c, m1, m3, out, expected = fig2_circuit(N, input_ii=2)
        insert_sharing_wrapper(
            c, [m1, m3], arbitration="fixed", fixed_order=[m1, m3],
            credits={m1: 3, m3: 3},
        )
        ii = run_and_measure(c, out, expected)
        assert ii >= 4.0

    def test_crush_out_of_order_access_maintains_ii_two(self):
        c, m1, m3, out, expected = fig2_circuit(N, input_ii=2)
        insert_sharing_wrapper(
            c, [m1, m3], priority=[m1, m3],
            credits={m1: 3, m3: 3},
        )
        ii = run_and_measure(c, out, expected)
        assert ii == pytest.approx(2.0, abs=0.3)

    def test_crush_total_time_beats_inorder(self):
        c1, m1, m3, out1, exp = fig2_circuit(N, input_ii=2)
        insert_sharing_wrapper(c1, [m1, m3], arbitration="fixed",
                               fixed_order=[m1, m3], credits={m1: 3, m3: 3})
        e1 = Engine(c1)
        e1.run(lambda: out1.count == N, max_cycles=4000)

        c2, m1, m3, out2, _ = fig2_circuit(N, input_ii=2)
        insert_sharing_wrapper(c2, [m1, m3], priority=[m1, m3],
                               credits={m1: 3, m3: 3})
        e2 = Engine(c2)
        e2.run(lambda: out2.count == N, max_cycles=4000)
        assert e2.cycle < e1.cycle
