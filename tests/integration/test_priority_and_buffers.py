"""Figures 4-6: priority/II interplay, the SCC rule, reconvergent buffering.

Figure 4: when op2 consumes op1's result, prioritizing op1 preserves the
II and prioritizing op2 penalizes it.  Figure 5: two operations in the
same SCC at equal offsets cannot share at all.  Figure 6: sharing does not
require additional buffers on reconvergent paths (Section 5.4).
"""

import pytest

from repro.analysis import cfc_of_units
from repro.circuit import (
    CreditCounter,
    DataflowCircuit,
    EagerFork,
    FunctionalUnit,
    Join,
    LazyFork,
    Sequence,
    Sink,
    TransparentFifo,
)
from repro.core import access_priority, insert_sharing_wrapper
from repro.sim import Engine, Trace


def paced_chain_circuit(n_tokens=12, input_ii=2, lat=2):
    """Figure 4d-style: paced source -> M1 -> M2 (M2 consumes M1)."""
    c = DataflowCircuit("fig4")
    src = c.add(Sequence("src", [float(i + 1) for i in range(n_tokens)]))
    cc = c.add(CreditCounter("pace_cc", 1))
    gate = c.add(Join("pace_gate", 2))
    lfork = c.add(LazyFork("pace_fork", 2))
    delay = c.add(FunctionalUnit("pace_delay", "pass", latency_override=input_ii - 1))
    fork = c.add(EagerFork("fork", 2))
    m1 = c.add(FunctionalUnit("M1", "fmul", latency_override=lat))
    m2 = c.add(FunctionalUnit("M2", "fmul", latency_override=lat))
    out = c.add(Sink("out"))
    c.connect(src, 0, gate, 0)
    c.connect(cc, 0, gate, 1, width=0)
    c.connect(gate, 0, lfork, 0)
    c.connect(lfork, 1, delay, 0)
    c.connect(delay, 0, cc, 0, width=0)
    c.connect(lfork, 0, fork, 0)
    c.connect(fork, 0, m1, 0)
    c.connect(fork, 1, m1, 1)
    c.connect(m1, 0, m2, 0)
    k = c.add(Sequence("k", [3.0] * n_tokens))
    c.connect(k, 0, m2, 1)
    c.connect(m2, 0, out, 0)
    c.validate()
    expected = [(i + 1) * (i + 1) * 3.0 for i in range(n_tokens)]
    return c, out, expected


def measured_ii(c, out, expected):
    tr = Trace()
    eng = Engine(c, trace=tr)
    ch = tr.watch_unit_input(c, "out", 0)
    eng.run(lambda: out.count == len(expected), max_cycles=5000)
    assert out.received == expected
    gaps = tr.interarrival(ch)[3:]
    return sum(gaps) / len(gaps)


class TestFigure4Priorities:
    def test_producer_first_preserves_ii(self):
        c, out, exp = paced_chain_circuit()
        insert_sharing_wrapper(c, ["M1", "M2"], priority=["M1", "M2"],
                               credits={"M1": 3, "M2": 3})
        assert measured_ii(c, out, exp) <= 2.1

    def test_consumer_first_penalizes_ii(self):
        c, out, exp = paced_chain_circuit()
        insert_sharing_wrapper(c, ["M1", "M2"], priority=["M2", "M1"],
                               credits={"M1": 3, "M2": 3})
        c2, out2, exp2 = paced_chain_circuit()
        insert_sharing_wrapper(c2, ["M1", "M2"], priority=["M1", "M2"],
                               credits={"M1": 3, "M2": 3})
        bad = measured_ii(c, out, exp)
        good = measured_ii(c2, out2, exp2)
        assert bad >= 2.4  # M2 ≺ M1 ignores the dependency (Fig. 4c/4f)
        assert bad > good

    def test_algorithm2_picks_the_producer(self):
        c, out, exp = paced_chain_circuit()
        cfc = cfc_of_units(c, ["fork", "M1", "M2"], name="cfc")
        assert access_priority(["M2", "M1"], [cfc]) == ["M1", "M2"]


class TestFigure6BufferSizing:
    def test_sharing_needs_no_extra_buffers(self):
        # Reconvergent fork -> (M1 | M2 via buffer) -> join.  Sharing M1/M2
        # must keep working with the SAME 2-slot fifo on the short path
        # (paper: t_max = |G|-1 <= II-1, no extra buffering required).
        def build():
            n = 10
            c = DataflowCircuit("fig6")
            src = c.add(Sequence("src", [float(i) for i in range(n)]))
            cc = c.add(CreditCounter("pace_cc", 1))
            gate = c.add(Join("pace_gate", 2))
            lfork = c.add(LazyFork("pace_fork", 2))
            delay = c.add(FunctionalUnit("pace_delay", "pass", latency_override=1))
            fork = c.add(EagerFork("fork", 3))
            m1 = c.add(FunctionalUnit("M1", "fmul", latency_override=2))
            m2 = c.add(FunctionalUnit("M2", "fmul", latency_override=2))
            buf = c.add(TransparentFifo("buf1", slots=2))
            join = c.add(FunctionalUnit("J", "fadd", latency_override=1))
            join2 = c.add(FunctionalUnit("J2", "fadd", latency_override=1))
            out = c.add(Sink("out"))
            c.connect(src, 0, gate, 0)
            c.connect(cc, 0, gate, 1, width=0)
            c.connect(gate, 0, lfork, 0)
            c.connect(lfork, 1, delay, 0)
            c.connect(delay, 0, cc, 0, width=0)
            # Input-side capacity: arbitration may postpone accepting a
            # token by < II cycles without stalling the producer (paper
            # Section 5.4); the slack FIFO provides the slot to wait in.
            inbuf = c.add(TransparentFifo("inbuf", slots=2))
            c.connect(lfork, 0, inbuf, 0)
            c.connect(inbuf, 0, fork, 0)
            c.connect(fork, 0, m1, 0)
            k1 = c.add(Sequence("k1", [2.0] * n))
            c.connect(k1, 0, m1, 1)
            c.connect(fork, 1, m2, 0)
            k2 = c.add(Sequence("k2", [3.0] * n))
            c.connect(k2, 0, m2, 1)
            c.connect(fork, 2, buf, 0)
            c.connect(m1, 0, join, 0)
            c.connect(m2, 0, join, 1)
            c.connect(join, 0, join2, 0)
            c.connect(buf, 0, join2, 1)
            c.connect(join2, 0, out, 0)
            c.validate()
            expected = [i * 2.0 + i * 3.0 + i for i in range(n)]
            return c, out, expected

        c, out, exp = build()
        base_ii = measured_ii(c, out, exp)
        c2, out2, exp2 = build()
        insert_sharing_wrapper(c2, ["M1", "M2"], priority=["M1", "M2"],
                               credits={"M1": 2, "M2": 2})
        # The paper's claim is that the pre-sharing buffers suffice — no
        # deadlock and no resizing (measured_ii also checks exact results).
        # Our wrapper realization adds one registered handoff on the result
        # path, so the steady-state II carries a small bounded overhead.
        shared_ii = measured_ii(c2, out2, exp2)
        assert shared_ii <= base_ii + 1.0


class TestTechniquesEndToEnd:
    @pytest.mark.parametrize("style", ["bb", "fast-token"])
    def test_pipeline_rows_consistent(self, style):
        from repro.pipeline import run_technique

        rows = {
            tech: run_technique("bicg", tech, style=style, scale="small")
            for tech in ("naive", "inorder", "crush")
        }
        naive, inorder, crush_ = rows["naive"], rows["inorder"], rows["crush"]
        assert crush_.dsp < naive.dsp
        assert inorder.dsp <= naive.dsp
        assert crush_.dsp == 5  # 1 fadd + 1 fmul
        # sharing must not cost more than a few percent in cycles
        assert crush_.cycles <= naive.cycles * 1.15
        assert naive.opt_time_s < inorder.opt_time_s

    def test_crush_beats_inorder_on_gsum_dsps(self):
        from repro.pipeline import run_technique

        inorder = run_technique("gsum", "inorder", scale="small")
        crush_ = run_technique("gsum", "crush", scale="small")
        assert crush_.dsp < inorder.dsp
        assert crush_.opt_time_s < inorder.opt_time_s


class TestGenerality:
    def test_crush_untouched_on_fast_token(self):
        # Section 6.5: CRUSH ports to a BB-free HLS style unmodified.
        from repro.pipeline import run_technique

        for kernel in ("gsum", "mvt"):
            row = run_technique(kernel, "crush", style="fast-token", scale="small")
            assert row.dsp == 5
