"""Robustness: idempotence, re-entry, and failure-injection scenarios."""

import pytest

from repro.analysis import critical_cfcs, place_buffers
from repro.circuit import CreditCounter, FunctionalUnit
from repro.core import crush, sharing_candidates
from repro.errors import DeadlockError, SharingError
from repro.frontend import lower_kernel, simulate_kernel
from repro.frontend.kernels import build
from repro.sim import Engine


class TestIdempotence:
    def test_crush_twice_second_pass_is_noop(self):
        low = lower_kernel(build("mvt", scale="small"), "bb")
        cfcs = critical_cfcs(low.circuit)
        place_buffers(low.circuit, cfcs)
        first = crush(low.circuit, cfcs)
        assert first.wrappers
        second = crush(low.circuit, cfcs)
        # Bundled shared units are not sharing candidates again.
        assert second.wrappers == []
        run = simulate_kernel(low, max_cycles=200_000)
        assert run.checked

    def test_candidates_exclude_bundled_units(self):
        low = lower_kernel(build("mvt", scale="small"), "bb")
        cfcs = critical_cfcs(low.circuit)
        place_buffers(low.circuit, cfcs)
        crush(low.circuit, cfcs)
        for name in sharing_candidates(low.circuit):
            assert not low.circuit.unit(name).bundled


class TestFailureInjection:
    def test_sharing_with_stale_name_fails_cleanly(self):
        low = lower_kernel(build("mvt", scale="small"), "bb")
        cfcs = critical_cfcs(low.circuit)
        place_buffers(low.circuit, cfcs)
        crush(low.circuit, cfcs)
        from repro.core import insert_sharing_wrapper

        with pytest.raises(Exception):
            insert_sharing_wrapper(low.circuit, ["fadd_0", "fadd_1"])

    def test_dropped_credit_deadlocks(self):
        """If a wrapper's credits can never return, the engine reports a
        deadlock rather than hanging (fault-injection on the credit loop)."""
        from repro.circuit import DataflowCircuit, Sequence, Sink
        from repro.core import insert_sharing_wrapper

        c = DataflowCircuit("t")
        names = []
        sinks = []
        for i in range(2):
            a = c.add(Sequence(f"a{i}", [1.0] * 6))
            b = c.add(Sequence(f"b{i}", [2.0] * 6))
            fu = c.add(FunctionalUnit(f"op{i}", "fmul"))
            s = c.add(Sink(f"s{i}"))
            c.connect(a, 0, fu, 0)
            c.connect(b, 0, fu, 1)
            c.connect(fu, 0, s, 0)
            names.append(fu.name)
            sinks.append(s)
        w = insert_sharing_wrapper(c, names, credits={n: 1 for n in names})
        # Sabotage: cut op0's credit-return path and starve it forever.
        cc = c.unit(w.credit_counters[0])
        ret = c.in_channel(cc, 0)
        lf = c.units[ret.src.unit]
        c.disconnect(ret)
        blackhole = c.add(Sink("blackhole"))
        c.connect(lf, ret.src.index, blackhole, 0)
        never = c.add(Sequence("never", []))
        c.connect(never, 0, cc, 0)
        with pytest.raises(DeadlockError):
            Engine(c, deadlock_window=32).run(
                lambda: all(s.count == 6 for s in sinks), max_cycles=5000
            )

    def test_engine_survives_zero_channel_circuit(self):
        from repro.circuit import DataflowCircuit

        c = DataflowCircuit("empty")
        eng = Engine(c)
        assert eng.run_cycles(3) == 0


class TestScaleStress:
    def test_wide_group_sharing(self):
        """16 independent ops on one unit: correct and deadlock-free."""
        from repro.circuit import DataflowCircuit, Sequence, Sink
        from repro.core import insert_sharing_wrapper

        c = DataflowCircuit("wide")
        names, sinks = [], []
        for i in range(16):
            a = c.add(Sequence(f"a{i}", [float(i), float(i + 1)]))
            b = c.add(Sequence(f"b{i}", [2.0, 2.0]))
            fu = c.add(FunctionalUnit(f"op{i}", "fmul"))
            s = c.add(Sink(f"s{i}"))
            c.connect(a, 0, fu, 0)
            c.connect(b, 0, fu, 1)
            c.connect(fu, 0, s, 0)
            names.append(fu.name)
            sinks.append(s)
        insert_sharing_wrapper(c, names, credits={n: 1 for n in names})
        Engine(c).run(lambda: all(s.count == 2 for s in sinks), max_cycles=5000)
        assert sinks[3].received == [6.0, 8.0]

    def test_deep_loop_nest(self):
        """A 4-deep nest lowers, simulates and shares correctly."""
        from repro.frontend import (
            Array, Const, For, IConst, Kernel, Load, Param, SetCarried,
            Store, Var, fadd,
        )

        k = Kernel(
            "deep", {"N": 2},
            [Array("a", "N"), Array("out", 1, role="out")],
            [
                For("i", IConst(0), Param("N"), carried={"s": Const(0.0)}, body=[
                    For("j", IConst(0), Param("N"),
                        carried={"t": Var("s")}, body=[
                        For("k", IConst(0), Param("N"),
                            carried={"u": Var("t")}, body=[
                            For("l", IConst(0), Param("N"),
                                carried={"v": Var("u")}, body=[
                                SetCarried("v", fadd(Var("v"),
                                                     Load("a", Var("l")))),
                            ]),
                            SetCarried("u", Var("v")),
                        ]),
                        SetCarried("t", Var("u")),
                    ]),
                    SetCarried("s", Var("t")),
                ]),
                Store("out", IConst(0), Var("s")),
            ],
        )
        low = lower_kernel(k, "bb")
        cfcs = critical_cfcs(low.circuit)
        place_buffers(low.circuit, cfcs)
        crush(low.circuit, cfcs)
        run = simulate_kernel(low, max_cycles=500_000)
        assert run.checked
