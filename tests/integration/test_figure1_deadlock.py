"""Figure 1: naive sharing deadlocks; CRUSH's mechanisms avoid it.

Reproduces all four panels of the paper's running example on the circuit
for ``a[i] = i*i*C2 + i*C1``:

* 1b — the naive wrapper (no credits, 1-slot output buffers) deadlocks by
  head-of-line blocking,
* 1c — credit-based access control (Equation 1) eliminates the deadlock,
* 1d — a fixed access order deadlocks when the grouped operations depend
  on each other,
* 1e — priority-based arbitration does not.
"""

import pytest

from repro.core import insert_sharing_wrapper
from repro.errors import DeadlockError
from repro.sim import Engine

from tests.helpers import fig1_circuit

N = 8


class TestPreSharing:
    def test_unshared_circuit_is_correct(self):
        c, out, expected = fig1_circuit(N, slack_slots=8)
        Engine(c).run(lambda: out.count == N, max_cycles=2000)
        assert out.received == expected


class TestFigure1b_NaiveDeadlock:
    def test_naive_sharing_deadlocks_by_head_of_line_blocking(self):
        c, out, _ = fig1_circuit(N, slack_slots=0)
        insert_sharing_wrapper(c, ["M2", "M3"], use_credits=False,
                               credits={"M2": 1, "M3": 1})
        with pytest.raises(DeadlockError) as e:
            Engine(c, deadlock_window=48).run(lambda: out.count == N, max_cycles=2000)
        # The diagnosis must implicate the wrapper's output side.
        text = "\n".join(e.value.blocked)
        assert "shr_" in text

    def test_deadlock_happens_after_partial_progress(self):
        c, out, expected = fig1_circuit(N, slack_slots=0)
        insert_sharing_wrapper(c, ["M2", "M3"], use_credits=False,
                               credits={"M2": 1, "M3": 1})
        eng = Engine(c, deadlock_window=48)
        with pytest.raises(DeadlockError):
            eng.run(lambda: out.count == N, max_cycles=2000)
        assert out.count < N  # it froze mid-run, not at the start


class TestFigure1c_CreditBased:
    def test_credits_eliminate_the_deadlock(self):
        c, out, expected = fig1_circuit(N, slack_slots=0)
        insert_sharing_wrapper(c, ["M2", "M3"], credits={"M2": 1, "M3": 1})
        Engine(c).run(lambda: out.count == N, max_cycles=2000)
        assert out.received == expected

    def test_equation1_is_what_saves_it(self):
        # Same wrapper but credits deliberately exceeding the OB slots is
        # rejected at construction (it would re-introduce the deadlock).
        from repro.errors import SharingError

        c, out, _ = fig1_circuit(N, slack_slots=0)
        with pytest.raises(SharingError, match="Equation 1"):
            insert_sharing_wrapper(
                c, ["M2", "M3"],
                credits={"M2": 2, "M3": 2},
                ob_slots={"M2": 1, "M3": 1},
            )


class TestFigure1d_FixedOrderDeadlock:
    def test_fixed_order_deadlocks_on_dependent_ops(self):
        # M3 needs M1's result; granting M3 first starves everyone.
        c, out, _ = fig1_circuit(N, slack_slots=8)
        insert_sharing_wrapper(
            c, ["M1", "M3"], arbitration="fixed", fixed_order=["M3", "M1"],
            credits={"M1": 2, "M3": 2},
        )
        with pytest.raises(DeadlockError):
            Engine(c, deadlock_window=48).run(lambda: out.count == N, max_cycles=2000)

    def test_lucky_fixed_order_works(self):
        # Granting the producer first happens to respect the dependency.
        c, out, expected = fig1_circuit(N, slack_slots=8)
        insert_sharing_wrapper(
            c, ["M1", "M3"], arbitration="fixed", fixed_order=["M1", "M3"],
            credits={"M1": 2, "M3": 2},
        )
        Engine(c).run(lambda: out.count == N, max_cycles=2000)
        assert out.received == expected


class TestFigure1e_PriorityArbitration:
    def test_priority_arbitration_never_blocks_on_absent_request(self):
        # Even prioritizing the CONSUMER (M3 over M1) stays deadlock-free:
        # M1 executes whenever M3 has no request.
        c, out, expected = fig1_circuit(N, slack_slots=8)
        insert_sharing_wrapper(
            c, ["M1", "M3"], priority=["M3", "M1"],
            credits={"M1": 2, "M3": 2},
        )
        Engine(c).run(lambda: out.count == N, max_cycles=2000)
        assert out.received == expected

    def test_sharing_m2_m3_preserves_results_in_order(self):
        c, out, expected = fig1_circuit(N, slack_slots=0)
        insert_sharing_wrapper(c, ["M2", "M3"], credits={"M2": 2, "M3": 2})
        Engine(c).run(lambda: out.count == N, max_cycles=2000)
        assert out.received == expected
