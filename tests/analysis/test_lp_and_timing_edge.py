"""Edge cases of the LP sizing and timing-buffer passes."""

from fractions import Fraction

import pytest

from repro.analysis import (
    cfc_of_units,
    critical_cfcs,
    insert_timing_buffers,
    slack_lp,
)
from repro.circuit import (
    DataflowCircuit,
    EagerFork,
    ElasticBuffer,
    FunctionalUnit,
    Merge,
    Sequence,
    Sink,
)


class TestSlackLP:
    def test_empty_cfc_gives_empty_slack(self):
        c = DataflowCircuit("t")
        s = c.add(Sequence("s", [1]))
        k = c.add(Sink("k"))
        c.connect(s, 0, k, 0)
        cfc = cfc_of_units(c, ["k"], name="solo")
        assert slack_lp(cfc) == {}

    def test_balanced_paths_get_zero_slack(self):
        # fork -> two identical-latency paths -> join: no slack anywhere.
        c = DataflowCircuit("t")
        src = c.add(Sequence("src", [1.0] * 4))
        fork = c.add(EagerFork("fork", 2))
        p1 = c.add(FunctionalUnit("p1", "pass", latency_override=3))
        p2 = c.add(FunctionalUnit("p2", "pass", latency_override=3))
        join = c.add(FunctionalUnit("join", "fadd", latency_override=1))
        out = c.add(Sink("out"))
        c.connect(src, 0, fork, 0)
        c.connect(fork, 0, p1, 0)
        c.connect(fork, 1, p2, 0)
        c.connect(p1, 0, join, 0)
        c.connect(p2, 0, join, 1)
        c.connect(join, 0, out, 0)
        cfc = cfc_of_units(c, ["fork", "p1", "p2", "join"], name="cfc")
        slack = slack_lp(cfc)
        assert all(v == pytest.approx(0.0, abs=1e-9) for v in slack.values())

    def test_chain_slack_equals_latency_difference(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("src", [1.0] * 4))
        fork = c.add(EagerFork("fork", 2))
        slow = c.add(FunctionalUnit("slow", "pass", latency_override=7))
        join = c.add(FunctionalUnit("join", "fadd", latency_override=1))
        out = c.add(Sink("out"))
        c.connect(src, 0, fork, 0)
        c.connect(fork, 0, slow, 0)
        c.connect(slow, 0, join, 0)
        c.connect(fork, 1, join, 1)
        c.connect(join, 0, out, 0)
        cfc = cfc_of_units(c, ["fork", "slow", "join"], name="cfc")
        assert sum(slack_lp(cfc).values()) == pytest.approx(7.0)


class TestTimingBuffers:
    def _chain(self, n):
        c = DataflowCircuit("t")
        src = c.add(Sequence("src", [1]))
        prev, port = src, 0
        for i in range(n):
            fu = c.add(FunctionalUnit(f"a{i}", "iadd", const_ops={1: 1}))
            c.connect(prev, port, fu, 0)
            prev, port = fu, 0
        s = c.add(Sink("s"))
        c.connect(prev, port, s, 0)
        return c

    def test_no_insertions_below_target(self):
        c = self._chain(2)
        assert insert_timing_buffers(c, target_cp_ns=20.0) == []

    def test_inserted_buffers_keep_semantics(self):
        from repro.sim import Engine

        c = self._chain(10)
        inserted = insert_timing_buffers(c, target_cp_ns=5.0)
        assert inserted
        sink = c.unit("s")
        Engine(c).run(lambda: sink.count == 1, max_cycles=100)
        assert sink.received == [11]

    def test_max_inserts_bound(self):
        c = self._chain(12)
        inserted = insert_timing_buffers(c, target_cp_ns=3.0, max_inserts=2)
        assert len(inserted) <= 2

    def test_data_scc_not_cut(self):
        # A 32-bit data ring: merge -> fadd -> buffer -> merge.  All wide
        # channels are in one SCC; the pass must not register them.
        c = DataflowCircuit("t")
        src = c.add(Sequence("src", [0.0]))
        m = c.add(Merge("m", 2))
        fu = c.add(FunctionalUnit("fu", "fadd"))
        k = c.add(Sequence("k", [1.0] * 10))
        eb = c.add(ElasticBuffer("eb", 2))
        c.connect(src, 0, m, 0)
        c.connect(m, 0, fu, 0)
        c.connect(k, 0, fu, 1)
        c.connect(fu, 0, eb, 0)
        c.connect(eb, 0, m, 1).attrs["tokens"] = 1
        before = set(c.units)
        insert_timing_buffers(c, target_cp_ns=0.1)
        ring_channels = [
            ch for ch in c.channels
            if {ch.src.unit, ch.dst.unit} <= {"m", "fu", "eb"}
        ]
        # The wide ring edges m->fu / fu->eb / eb->m are untouched.
        assert len(ring_channels) == 3
