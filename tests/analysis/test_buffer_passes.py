"""Buffer placement: cycle breaking, slack matching (LP + heuristic), timing."""

import pytest

from repro.analysis import (
    CFC,
    break_combinational_cycles,
    cfc_of_units,
    critical_cfcs,
    insert_timing_buffers,
    place_buffers,
    slack_lp,
    slack_match_cfc,
    sized_slots,
)
from repro.circuit import (
    DataflowCircuit,
    EagerFork,
    ElasticBuffer,
    FunctionalUnit,
    Merge,
    Sequence,
    Sink,
    TransparentFifo,
)
from repro.errors import AnalysisError
from repro.sim import Engine, Trace
from fractions import Fraction


def comb_ring_circuit():
    """A merge/pass ring with no sequential element (combinational cycle)."""
    c = DataflowCircuit("ring")
    src = c.add(Sequence("src", [1.0]))
    m = c.add(Merge("m", 2))
    p = c.add(FunctionalUnit("p", "pass"))
    f = c.add(EagerFork("f", 2))
    s = c.add(Sink("s"))
    c.connect(src, 0, m, 0)
    c.connect(m, 0, p, 0)
    c.connect(p, 0, f, 0)
    c.connect(f, 0, s, 0)
    c.connect(f, 1, m, 1)
    return c


def fork_join_skew_circuit(slow_latency=6):
    """fork -> (slow fadd path | direct path) -> fadd join: needs slack."""
    n = 10
    c = DataflowCircuit("skew")
    src = c.add(Sequence("src", [float(i) for i in range(n)]))
    fork = c.add(EagerFork("fork", 2))
    slow = c.add(FunctionalUnit("slow", "fadd", latency_override=slow_latency))
    k = c.add(Sequence("k", [0.0] * n))
    join = c.add(FunctionalUnit("join", "fadd", latency_override=1))
    out = c.add(Sink("out"))
    c.connect(src, 0, fork, 0)
    c.connect(fork, 0, slow, 0)
    c.connect(k, 0, slow, 1)
    c.connect(slow, 0, join, 0)
    c.connect(fork, 1, join, 1)
    c.connect(join, 0, out, 0)
    for u in (fork, slow, join):
        u.meta["cfc"] = "L0"
    return c, out


class TestCycleBreaking:
    def test_combinational_ring_gets_buffer(self):
        c = comb_ring_circuit()
        inserted = break_combinational_cycles(c)
        assert len(inserted) >= 1
        c.validate()

    def test_already_sequential_untouched(self):
        c = comb_ring_circuit()
        break_combinational_cycles(c)
        again = break_combinational_cycles(c)
        assert again == []

    def test_ring_with_buffer_not_touched(self):
        c = DataflowCircuit("ok")
        src = c.add(Sequence("src", [1.0]))
        m = c.add(Merge("m", 2))
        eb = c.add(ElasticBuffer("eb", 2))
        f = c.add(EagerFork("f", 2))
        s = c.add(Sink("s"))
        c.connect(src, 0, m, 0)
        c.connect(m, 0, eb, 0)
        c.connect(eb, 0, f, 0)
        c.connect(f, 0, s, 0)
        c.connect(f, 1, m, 1)
        assert break_combinational_cycles(c) == []


class TestSlackMatching:
    @pytest.mark.parametrize("method", ["lp", "heuristic"])
    def test_skewed_join_gets_fifo_and_full_throughput(self, method):
        c, out = fork_join_skew_circuit()
        cfcs = critical_cfcs(c)
        placed = slack_match_cfc(c, cfcs[0], method=method)
        assert placed, "the short path must receive a slack FIFO"
        c.validate()
        trace = Trace()
        eng = Engine(c, trace=trace)
        ch = trace.watch_unit_input(c, "out", 0)
        eng.run(lambda: out.count == 10, max_cycles=300)
        # With slack buffering the pipeline streams at II=1.
        assert trace.interarrival(ch) == [1] * 9

    def test_without_slack_throughput_suffers(self):
        c, out = fork_join_skew_circuit()
        trace = Trace()
        eng = Engine(c, trace=trace)
        ch = trace.watch_unit_input(c, "out", 0)
        eng.run(lambda: out.count == 10, max_cycles=300)
        assert max(trace.interarrival(ch)) > 1

    def test_lp_slack_values(self):
        c, _ = fork_join_skew_circuit(slow_latency=6)
        cfc = critical_cfcs(c)[0]
        slack = slack_lp(cfc)
        # Total imbalance equals the slow-path latency.
        assert sum(slack.values()) == pytest.approx(6.0)

    def test_sized_slots(self):
        assert sized_slots(0.0, Fraction(1)) == 0
        assert sized_slots(6.0, Fraction(1)) == 7
        assert sized_slots(6.0, Fraction(3)) == 3
        assert sized_slots(0.5, Fraction(10)) == 2


class TestPlaceBuffers:
    def test_full_pass_is_idempotent_on_clean_circuit(self):
        c, out = fork_join_skew_circuit()
        report = place_buffers(c, critical_cfcs(c))
        assert report.total_slots > 0
        report2 = place_buffers(c, critical_cfcs(c))
        assert report2.slack_fifos == []

    def test_report_counts(self):
        c = comb_ring_circuit()
        report = place_buffers(c, [], timing=False)
        assert report.cycle_breakers
        assert report.total_slots >= 2

    def test_unknown_method_rejected(self):
        c, _ = fork_join_skew_circuit()
        with pytest.raises(AnalysisError):
            slack_match_cfc(c, critical_cfcs(c)[0], method="magic")


class TestTimingBuffers:
    def test_long_comb_chain_gets_registered(self):
        c = DataflowCircuit("chain")
        src = c.add(Sequence("src", list(range(5))))
        prev, port = src, 0
        for i in range(8):
            fu = c.add(FunctionalUnit(f"a{i}", "iadd", const_ops={1: 1}))
            c.connect(prev, port, fu, 0)
            prev, port = fu, 0
        s = c.add(Sink("s"))
        c.connect(prev, port, s, 0)
        from repro.resources import critical_path_ns

        before = critical_path_ns(c)
        inserted = insert_timing_buffers(c, target_cp_ns=6.0)
        after = critical_path_ns(c)
        assert inserted
        assert after < before
        assert after <= 6.0 + 1e-9
        Engine(c).run(lambda: s.count == 5, max_cycles=100)
        assert s.received == [8, 9, 10, 11, 12]

    def test_respects_data_cycles(self):
        # A tight data SCC cannot be cut; pass must give up gracefully.
        c = comb_ring_circuit()
        break_combinational_cycles(c)
        inserted = insert_timing_buffers(c, target_cp_ns=0.5)
        # Whatever was inserted, the circuit stays valid.
        c.validate()
