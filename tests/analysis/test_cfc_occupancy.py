"""CFC extraction, II caching, and occupancy computation."""

from fractions import Fraction

import pytest

from repro.analysis import (
    CFC,
    cfc_of_units,
    critical_cfcs,
    group_occupancy_in_cfc,
    occupancy_map,
    unit_capacity,
)
from repro.circuit import (
    DataflowCircuit,
    ElasticBuffer,
    FunctionalUnit,
    Merge,
    Sequence,
    Sink,
)
from repro.errors import AnalysisError


def acc_loop_circuit(latency=10):
    """merge -> fadd -> buffer -> back to merge; entry and exit stubs."""
    c = DataflowCircuit("loop")
    src = c.add(Sequence("src", [0.0]))
    m = c.add(Merge("m", 2))
    fu = c.add(FunctionalUnit("acc", "fadd", latency_override=latency))
    k = c.add(Sequence("k", [1.0] * 100))
    eb = c.add(ElasticBuffer("eb", 2))
    c.connect(src, 0, m, 0)
    c.connect(m, 0, fu, 0)
    c.connect(k, 0, fu, 1)
    c.connect(fu, 0, eb, 0)
    back = c.connect(eb, 0, m, 1)
    back.attrs["tokens"] = 1
    for u in (m, fu, eb):
        u.meta["cfc"] = "L0"
    return c


class TestCFC:
    def test_critical_cfcs_collects_tags(self):
        c = acc_loop_circuit()
        cfcs = critical_cfcs(c)
        assert len(cfcs) == 1
        assert cfcs[0].name == "L0"
        assert cfcs[0].unit_names == {"m", "acc", "eb"}

    def test_no_tags_no_cfcs(self):
        c = DataflowCircuit("t")
        s = c.add(Sequence("s", [1]))
        k = c.add(Sink("k"))
        c.connect(s, 0, k, 0)
        assert critical_cfcs(c) == []

    def test_ii_of_accumulation_loop(self):
        c = acc_loop_circuit(latency=10)
        cfc = critical_cfcs(c)[0]
        # fadd(10) + elastic buffer(1) over 1 token.
        assert cfc.ii().ii == 11

    def test_ii_cached_until_invalidated(self):
        c = acc_loop_circuit()
        cfc = critical_cfcs(c)[0]
        first = cfc.ii()
        assert cfc.ii() is first
        cfc.invalidate()
        assert cfc.ii() is not first

    def test_cfc_of_units_unknown_name(self):
        c = acc_loop_circuit()
        with pytest.raises(AnalysisError, match="unknown"):
            cfc_of_units(c, ["ghost"])

    def test_internal_channels_exclude_boundary(self):
        c = acc_loop_circuit()
        cfc = critical_cfcs(c)[0]
        internal = cfc.internal_channels()
        # src->m and k->fu cross the boundary; m->fu, fu->eb, eb->m inside.
        assert len(internal) == 3

    def test_scc_graph_over_cfc(self):
        c = acc_loop_circuit()
        cfc = critical_cfcs(c)[0]
        g = cfc.scc_graph()
        assert g.same_scc("m", "acc")
        assert g.same_scc("acc", "eb")


class TestOccupancy:
    def test_unit_capacity_is_pipeline_depth(self):
        assert unit_capacity(FunctionalUnit("f", "fadd")) == 10
        assert unit_capacity(FunctionalUnit("f", "fmul")) == 4
        assert unit_capacity(FunctionalUnit("f", "iadd")) == 1

    def test_occupancy_is_latency_over_ii(self):
        c = acc_loop_circuit(latency=10)
        cfcs = critical_cfcs(c)
        occ = occupancy_map(c, cfcs)
        assert occ["acc"] == Fraction(10, 11)

    def test_op_outside_cfcs_has_zero_occupancy(self):
        c = acc_loop_circuit()
        extra = c.add(FunctionalUnit("lonely", "fmul"))
        s1 = c.add(Sequence("x", [1.0]))
        s2 = c.add(Sequence("y", [1.0]))
        k = c.add(Sink("o"))
        c.connect(s1, 0, extra, 0)
        c.connect(s2, 0, extra, 1)
        c.connect(extra, 0, k, 0)
        occ = occupancy_map(c, critical_cfcs(c))
        assert occ["lonely"] == 0

    def test_group_occupancy_sums_members_in_cfc(self):
        c = acc_loop_circuit(latency=10)
        cfc = critical_cfcs(c)[0]
        occ = occupancy_map(c, [cfc])
        total = group_occupancy_in_cfc(c, ["acc"], cfc)
        assert total == occ["acc"]
        # Units not in the CFC contribute nothing.
        assert group_occupancy_in_cfc(c, ["acc", "nonmember"], cfc) == occ["acc"]
