"""The static token-flow analyzer: wrapper views, deadlock-freedom, and
the predicted-vs-simulated II soundness bridge.

The exhaustive 33-pair simulation cross-check runs in CI as
``python -m repro analyze ii``; here the static side covers every pair
(cheap — no simulation) and the measurement bridge is exercised on a
representative subset containing both choice-free kernels (prediction
must be *exact*) and data-dependent ones (prediction must be *sound*).
"""

from fractions import Fraction

import pytest

from repro.analysis import analyze_circuit, measure_predictions, wrapper_views
from repro.frontend.kernels import KERNEL_NAMES
from repro.pipeline import TECHNIQUES, predict_ii, prepare_circuit

ALL_PAIRS = [(k, t) for k in KERNEL_NAMES for t in TECHNIQUES]


@pytest.fixture(scope="module")
def gemm_crush():
    return prepare_circuit("gemm", "crush", scale="small")


class TestWrapperViews:
    def test_views_from_decisions(self, gemm_crush):
        views = wrapper_views(gemm_crush.circuit, gemm_crush.decisions)
        assert views
        for v in views:
            assert v.size == len(v.joins) == len(v.output_buffers)
            assert v.credited
            assert all(op in "+".join(v.group) for op in v.group)
            assert v.shared_unit in gemm_crush.circuit.units

    def test_views_recovered_from_tags_alone(self, gemm_crush):
        # Without the decision record the wrapper structure is recovered
        # from unit name tags; group names are unknown (empty strings).
        with_dec = wrapper_views(gemm_crush.circuit, gemm_crush.decisions)
        bare = wrapper_views(gemm_crush.circuit, None)
        assert len(bare) == len(with_dec)
        by_base = {v.base: v for v in bare}
        for v in with_dec:
            b = by_base[v.base]
            assert b.size == v.size
            assert b.joins == v.joins
            assert b.output_buffers == v.output_buffers
            assert not any(b.group)


class TestStaticAnalysis:
    @pytest.mark.parametrize("kernel,technique", ALL_PAIRS,
                             ids=[f"{k}-{t}" for k, t in ALL_PAIRS])
    def test_every_pair_is_deadlock_free(self, kernel, technique):
        prep = prepare_circuit(kernel, technique, scale="small")
        analysis = predict_ii(prep)
        assert analysis.deadlock_free, [i.message for i in analysis.issues]
        assert not analysis.issues
        # Every performance-critical CFC gets a concrete prediction.
        for name, pred in analysis.predictions.items():
            assert pred.ii is not None and pred.ii >= 1, name

    def test_predictions_are_exact_fractions(self, gemm_crush):
        analysis = predict_ii(gemm_crush)
        assert analysis.ii is not None
        assert isinstance(analysis.ii, Fraction)

    def test_contention_bound_floor(self):
        # A wrapper serving N slots of one CFC cannot start more than one
        # of them per cycle: predicted II >= in-CFC slot count.
        prep = prepare_circuit("gemm", "crush", scale="small")
        analysis = predict_ii(prep)
        for pred in analysis.predictions.values():
            assert pred.ii >= max(1, pred.contention)

    def test_technique_invariance_on_clean_kernels(self):
        # Sharing (done right) must not change the predicted steady-state
        # II relative to the unshared naive build: Eq. 3 sizes credits so
        # the shared unit never throttles the loop.
        per_technique = {}
        for technique in TECHNIQUES:
            prep = prepare_circuit("atax", technique, scale="small")
            per_technique[technique] = predict_ii(prep).ii
        assert len(set(per_technique.values())) == 1, per_technique


class TestMeasurementBridge:
    #: Choice-free kernels: the static bound must match simulation
    #: exactly on every measurable CFC.
    CHOICE_FREE = [("atax", "crush"), ("gemm", "naive"), ("syr2k", "crush")]
    #: Data-dependent control flow: conservative bounds are acceptable,
    #: unsoundness is not.
    DATA_DEPENDENT = [("gsumif", "crush")]

    @pytest.mark.parametrize("kernel,technique", CHOICE_FREE + DATA_DEPENDENT,
                             ids=[f"{k}-{t}"
                                  for k, t in CHOICE_FREE + DATA_DEPENDENT])
    def test_simulated_ii_never_exceeds_prediction(self, kernel, technique):
        prep = prepare_circuit(kernel, technique, scale="small")
        analysis = predict_ii(prep)
        measurements = measure_predictions(prep.lowered, analysis)
        assert measurements
        for m in measurements:
            assert m.sound, (
                f"{kernel}/{technique} {m.cfc}: simulated II {m.simulated} "
                f"exceeds the static bound {m.predicted}"
            )
        if (kernel, technique) in self.CHOICE_FREE:
            measured = [m for m in measurements if m.simulated is not None]
            assert measured
            for m in measured:
                assert m.exact, (
                    f"{kernel}/{technique} {m.cfc}: choice-free prediction "
                    f"{m.predicted} != simulated {m.simulated}"
                )


class TestPipelineIntegration:
    def test_predicted_ii_round_trips_through_json(self):
        from repro.pipeline import TechniqueResult, run_technique

        row = run_technique("gemm", "crush", scale="small", simulate=False)
        assert row.predicted_ii  # gemm has a performance-critical CFC
        assert Fraction(row.predicted_ii) >= 1
        again = TechniqueResult.from_json(row.to_json())
        assert again.predicted_ii == row.predicted_ii
        assert again.flow_diags == row.flow_diags

    def test_predicted_ii_matches_standalone_analysis(self):
        from repro.pipeline import run_technique

        prep = prepare_circuit("gemm", "crush", scale="small")
        expected = str(analyze_circuit(
            prep.circuit, cfcs=prep.cfcs, decisions=prep.decisions
        ).ii)
        row = run_technique("gemm", "crush", scale="small", simulate=False)
        assert row.predicted_ii == expected

    def test_sweep_csv_carries_the_flow_columns(self):
        from repro.sweep.report import CSV_HEADERS

        assert "predicted_ii" in CSV_HEADERS
        assert "flow_diags" in CSV_HEADERS
