"""Static memory-dependence analyzer tests.

Three layers, matching the module's contract:

* verdict tests — the 11 affine paper kernels classify ``static-ok``
  with **zero** unknown pairs (CRUSH Sec. 2's static-disambiguation
  assumption, proved rather than assumed), the 3 irregular kernels
  classify ``lsq-required``;
* structural tests — static access sites line up one-to-one with the
  ``mem_site``-tagged memory ports of the lowered circuit, and every
  proved dependence is covered by the lowering's ``@dep`` gate;
* soundness gate — :func:`measure_dependences` replays every kernel
  under the alias-recording sanitizer and asserts no
  statically-``independent`` pair ever aliases at runtime, across
  techniques and backends.
"""

import pytest

from repro.analysis.memdep import (
    MEM_LSQ_REQUIRED,
    MEM_STATIC_OK,
    analyze_kernel,
    has_dataflow_path,
    load_is_dep_gated,
    measure_dependences,
    site_ports,
)
from repro.frontend import lower_kernel
from repro.frontend.kernels import KERNEL_NAMES, build
from repro.pipeline import TECHNIQUES, prepare_circuit

#: Kernels with data-dependent addressing; everything else is affine.
IRREGULAR = ("histogram", "spmv", "pointer_chase")
AFFINE = tuple(k for k in KERNEL_NAMES if k not in IRREGULAR)


class TestVerdicts:
    @pytest.mark.parametrize("name", AFFINE)
    def test_affine_kernels_prove_static_ok(self, name):
        """Every paper kernel is fully disambiguated: no unknown pairs
        at paper scale, so the paper's no-LSQ datapath is justified."""
        report = analyze_kernel(build(name, scale="paper"))
        assert report.mem_class == MEM_STATIC_OK
        assert report.unknown_pairs == []
        for p in report.pairs:
            assert p.verdict in ("independent", "ordered")

    @pytest.mark.parametrize("name", IRREGULAR)
    def test_irregular_kernels_need_lsq(self, name):
        report = analyze_kernel(build(name, scale="paper"))
        assert report.mem_class == MEM_LSQ_REQUIRED
        assert report.unknown_pairs
        for p in report.unknown_pairs:
            assert p.test == "non-affine"
            assert p.reason  # names the data-dependent value

    def test_atax_pair_breakdown(self):
        report = analyze_kernel(build("atax", scale="paper"))
        verdicts = sorted(p.verdict for p in report.pairs)
        assert verdicts == ["independent"] * 2 + ["ordered"] * 4

    def test_pointer_chase_result_store_is_single_instance(self):
        """The loop-external result store has no loop nest — one dynamic
        instance can never alias itself."""
        report = analyze_kernel(build("pointer_chase", scale="paper"))
        (self_out,) = [
            p for p in report.pairs
            if p.a == p.b and p.array == "out"
        ]
        assert self_out.verdict == "independent"
        assert self_out.test == "single-instance"

    def test_ordered_pairs_carry_distances(self):
        """Ordered verdicts over a shared nest expose a distance vector
        (possibly with ``*`` entries), independents never do."""
        for name in AFFINE:
            report = analyze_kernel(build(name, scale="paper"))
            for p in report.pairs:
                if p.verdict == "ordered" and p.common_loops:
                    assert p.distance is not None
                    assert len(p.distance) == p.common_loops
                if p.verdict == "independent":
                    assert p.distance is None

    def test_small_and_paper_scale_agree_on_class(self):
        """The classification is a property of the access pattern, not
        the problem size."""
        for name in KERNEL_NAMES:
            small = analyze_kernel(build(name, scale="small"))
            paper = analyze_kernel(build(name, scale="paper"))
            assert small.mem_class == paper.mem_class


class TestCircuitAlignment:
    @pytest.mark.parametrize("style", ["bb", "fast-token"])
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_sites_match_ports_one_to_one(self, name, style):
        """The extractor mirrors the lowering's walk order: every static
        site maps to exactly one ``mem_site``-tagged memory port."""
        low = lower_kernel(build(name, scale="small"), style)
        ports = site_ports(low.circuit)
        report = analyze_kernel(low.kernel)
        assert set(ports) == {a.site for a in report.accesses}

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_dependent_loads_are_gated(self, name):
        """Every load in a non-independent pair sharing a loop nest sits
        behind the lowering's memory-dependency join (MD001's invariant,
        checked directly)."""
        low = lower_kernel(build(name, scale="small"), "bb")
        ports = site_ports(low.circuit)
        report = analyze_kernel(low.kernel)
        for p in report.pairs:
            if p.verdict == "independent" or not p.common_loops:
                continue
            if {p.a_kind, p.b_kind} != {"load", "store"}:
                continue
            load_site = p.a if p.a_kind == "load" else p.b
            assert load_is_dep_gated(low.circuit, ports[load_site]), (
                f"{name}: {load_site} in pair {p.label()} is not gated"
            )

    def test_dataflow_path_finds_rmw_chains(self):
        """histogram's read-modify-write: the loaded bucket value flows
        into the store (MD002's invariant for distance-0 collisions).
        The reverse path also exists — through the ``@dep`` token gating
        the *next* iteration's load — but an unrelated port pair has
        neither."""
        low = lower_kernel(build("histogram", scale="small"), "bb")
        ports = site_ports(low.circuit)
        assert has_dataflow_path(low.circuit, ports["h#ld0"], ports["h#st0"])
        assert not has_dataflow_path(
            low.circuit, ports["h#st0"], ports["idx#ld0"]
        )


class TestSoundnessGate:
    """The PR's cross-validation: static ``independent`` verdicts are
    checked against recorded runtime address traces."""

    @pytest.mark.parametrize("technique", TECHNIQUES)
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_no_independent_pair_aliases(self, name, technique):
        prep = prepare_circuit(name, technique, scale="small")
        report = analyze_kernel(prep.lowered.kernel)
        measurements = measure_dependences(
            prep.lowered, report=report, backend="compiled",
        )
        assert measurements  # every kernel touches memory
        assert {(m.a, m.b) for m in measurements} == {
            (p.a, p.b) for p in report.pairs
        }
        for m in measurements:
            assert m.sound, (
                f"{name}/{technique}: independent pair {m.a} x {m.b} "
                f"aliased at address {m.witness_addr}"
            )
            # Ports actually issued addresses — the trace is not vacuous.
            assert m.a_addresses > 0 and m.b_addresses > 0

    @pytest.mark.parametrize("backend", ["event", "compiled", "codegen"])
    def test_backends_agree_on_footprints(self, backend):
        """The recorded address counts are a deterministic function of
        the kernel, not the engine."""
        prep = prepare_circuit("histogram", "crush", scale="small")
        got = measure_dependences(prep.lowered, backend=backend)
        key = [
            (m.a, m.b, m.observed_alias, m.a_addresses, m.b_addresses)
            for m in got
        ]
        base = measure_dependences(prep.lowered, backend="compiled")
        assert key == [
            (m.a, m.b, m.observed_alias, m.a_addresses, m.b_addresses)
            for m in base
        ]

    def test_histogram_buckets_do_collide(self):
        """Pigeonhole: 16 draws into 8 buckets must repeat, so the
        unknown self-store pair *observes* an alias — evidence the
        ``lsq-required`` class is not vacuous (and that an ``unknown``
        alias is expected, not a soundness failure)."""
        prep = prepare_circuit("histogram", "naive", scale="small")
        measurements = measure_dependences(prep.lowered, backend="compiled")
        (self_store,) = [
            m for m in measurements
            if m.a == m.b and m.a == "h#st0"
        ]
        assert self_store.verdict == "unknown"
        assert self_store.observed_alias
        assert self_store.witness_addr is not None
        assert self_store.sound  # only *independent* + alias is unsound
