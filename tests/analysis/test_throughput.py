"""Max-cycle-ratio II analysis."""

from fractions import Fraction

import pytest

from repro.analysis import (
    IIResult,
    WeightedEdge,
    cycle_metrics,
    find_tokenless_cycle,
    max_cycle_ratio,
)
from repro.errors import AnalysisError


def E(a, b, lat, tok=0):
    return WeightedEdge(a, b, lat, tok)


class TestMaxCycleRatio:
    def test_empty_graph_ii_one(self):
        assert max_cycle_ratio([]).ii == 1

    def test_acyclic_graph_ii_one(self):
        r = max_cycle_ratio([E("a", "b", 10), E("b", "c", 4)])
        assert r.ii == 1
        assert r.critical_cycle == []

    def test_single_cycle(self):
        # fadd accumulation loop: 11 cycles of latency, 1 token.
        r = max_cycle_ratio([E("m", "f", 0, 0), E("f", "b", 10, 0), E("b", "m", 1, 1)])
        assert r.ii == 11
        assert set(r.critical_cycle) == {"m", "f", "b"}

    def test_tokens_divide_latency(self):
        # 2 circulating tokens halve the II.
        r = max_cycle_ratio([E("a", "b", 10, 1), E("b", "a", 0, 1)])
        assert r.ii == Fraction(10, 2)

    def test_max_over_cycles(self):
        edges = [
            E("a", "b", 3, 0), E("b", "a", 0, 1),  # ratio 3
            E("c", "d", 20, 0), E("d", "c", 0, 1),  # ratio 20
        ]
        r = max_cycle_ratio(edges)
        assert r.ii == 20
        assert set(r.critical_cycle) == {"c", "d"}

    def test_fractional_ratio_exact(self):
        r = max_cycle_ratio([E("a", "b", 7, 1), E("b", "a", 0, 2)])
        assert r.ii == Fraction(7, 3)
        assert r.ii_int == 3

    def test_ii_never_below_one(self):
        r = max_cycle_ratio([E("a", "b", 0, 1), E("b", "a", 0, 1)])
        assert r.ii == 1

    def test_tokenless_latency_cycle_rejected(self):
        with pytest.raises(AnalysisError, match="structural deadlock"):
            max_cycle_ratio([E("a", "b", 5, 0), E("b", "a", 0, 0)])

    def test_tokenless_zero_latency_cycle_ok(self):
        # Pure combinational ring with no latency doesn't constrain II
        # (the structural pass deals with it, not the II analysis).
        r = max_cycle_ratio(
            [E("a", "b", 0, 0), E("b", "a", 0, 0), E("x", "y", 4, 1), E("y", "x", 0, 0)]
        )
        assert r.ii == 4

    def test_negative_weight_rejected(self):
        with pytest.raises(AnalysisError):
            max_cycle_ratio([E("a", "a", -1, 1)])

    def test_credit_cycle_model(self):
        # Sharing-wrapper credit loop: latency L+1, N credits -> II=(L+1)/N.
        L, N = 10, 3
        r = max_cycle_ratio(
            [E("cc", "join", 0, N), E("join", "fu", 0, 0), E("fu", "ob", L, 0),
             E("ob", "cc", 1, 0)]
        )
        assert r.ii == Fraction(L + 1, N)

    def test_parallel_edges_between_nodes(self):
        edges = [E("a", "b", 2, 1), E("a", "b", 8, 1), E("b", "a", 0, 0)]
        # With tokens on both a->b edges, the worse edge dominates: the
        # cycle through the 8-latency edge has ratio 8.
        r = max_cycle_ratio(edges)
        assert r.ii >= 8

    def test_brute_force_agreement_small_random(self):
        import itertools
        import random

        rng = random.Random(11)
        for _ in range(25):
            n = 4
            edges = []
            for a in range(n):
                for b in range(n):
                    if a != b and rng.random() < 0.5:
                        edges.append(E(a, b, rng.randrange(0, 6), rng.randrange(0, 3)))
            # Brute force: enumerate simple cycles via permutations.
            best = Fraction(1)
            ok = True
            adj = {}
            for e in edges:
                adj.setdefault(e.src, {})[e.dst] = max(
                    (x for x in [adj.get(e.src, {}).get(e.dst)] if x), default=None
                )
            # use networkx for cycle enumeration instead
            import networkx as nx

            g = nx.DiGraph()
            for e in edges:
                # keep the per-pair edge with max ratio potential: track all
                if g.has_edge(e.src, e.dst):
                    g[e.src][e.dst]["list"].append(e)
                else:
                    g.add_edge(e.src, e.dst, list=[e])
            tokenless_cycle = False
            for cyc in nx.simple_cycles(g):
                pairs = list(zip(cyc, cyc[1:] + cyc[:1]))
                # take the worst-case combination per edge position
                options = [g[a][b]["list"] for a, b in pairs]
                for combo in itertools.product(*options):
                    lat = sum(e.latency for e in combo)
                    tok = sum(e.tokens for e in combo)
                    if tok == 0:
                        if lat > 0:
                            tokenless_cycle = True
                        continue
                    best = max(best, Fraction(lat, tok))
            if tokenless_cycle:
                with pytest.raises(AnalysisError):
                    max_cycle_ratio(edges)
            else:
                assert max_cycle_ratio(edges).ii == best


class TestFindTokenlessCycle:
    """Non-raising liveness probe used by the token-flow analyzer."""

    def test_live_graph_returns_none(self):
        assert find_tokenless_cycle(
            [E("a", "b", 3, 0), E("b", "a", 1, 1)]
        ) is None

    def test_names_the_starved_cycle(self):
        cycle = find_tokenless_cycle([E("a", "b", 5, 0), E("b", "a", 0, 0)])
        assert cycle is not None
        assert set(cycle) == {"a", "b"}

    def test_single_node_self_loop(self):
        cycle = find_tokenless_cycle([E("a", "a", 2, 0)])
        assert cycle == ["a"]
        assert find_tokenless_cycle([E("a", "a", 2, 1)]) is None

    def test_zero_latency_ring_is_not_starved(self):
        # A combinational ring with neither latency nor tokens is the
        # structural pass' business, not a marked-graph deadlock.
        assert find_tokenless_cycle(
            [E("a", "b", 0, 0), E("b", "a", 0, 0)]
        ) is None

    def test_empty_graph(self):
        assert find_tokenless_cycle([]) is None


class TestCycleMetrics:
    def test_simple_sum(self):
        lat, tok = cycle_metrics(
            [E("a", "b", 3, 1), E("b", "a", 2, 1)], ["a", "b"]
        )
        assert (lat, tok) == (5, 2)

    def test_parallel_edges_maximize_the_cycle_ratio(self):
        # a->b has two routings: (lat 2, tok 0) at ratio 2/1 round the
        # cycle, (lat 9, tok 5) at ratio 9/6.  The worst-latency pick
        # would report 9/6; the binding combination is 2/1.
        lat, tok = cycle_metrics(
            [E("a", "b", 2, 0), E("a", "b", 9, 5), E("b", "a", 0, 1)],
            ["a", "b"],
        )
        assert (lat, tok) == (2, 1)
        assert max_cycle_ratio(
            [E("a", "b", 2, 0), E("a", "b", 9, 5), E("b", "a", 0, 1)]
        ).ii == Fraction(2, 1)

    def test_latency_tie_resolves_to_fewest_tokens(self):
        # Equal-latency parallel edges: the ratio-maximizing pick is the
        # one with fewer tokens (higher ratio contribution).
        lat, tok = cycle_metrics(
            [E("a", "b", 4, 3), E("a", "b", 4, 1), E("b", "a", 0, 0)],
            ["a", "b"],
        )
        assert (lat, tok) == (4, 1)

    def test_self_loop_cycle(self):
        assert cycle_metrics([E("a", "a", 7, 2)], ["a"]) == (7, 2)

    def test_missing_hop_raises(self):
        with pytest.raises(AnalysisError, match="has no edge"):
            cycle_metrics([E("a", "b", 1, 1)], ["a", "b"])


class TestExactFractions:
    def test_tie_between_cycles_is_exact(self):
        # Two cycles with the identical fractional ratio 7/2: the result
        # must be the exact Fraction, not a float approximation.
        r = max_cycle_ratio([
            E("a", "b", 7, 1), E("b", "a", 0, 1),
            E("c", "d", 14, 2), E("d", "c", 0, 2),
        ])
        assert r.ii == Fraction(7, 2)
        assert isinstance(r.ii, Fraction)

    def test_single_node_self_loop_ratio(self):
        r = max_cycle_ratio([E("a", "a", 9, 4)])
        assert r.ii == Fraction(9, 4)
        assert r.critical_cycle == ["a"]

    def test_near_tie_resolved_exactly(self):
        # 1000001/1000 vs 1000/1: floats would struggle to order these.
        r = max_cycle_ratio([
            E("a", "b", 1000001, 500), E("b", "a", 0, 500),
            E("c", "d", 1000, 1), E("d", "c", 0, 0),
        ])
        assert r.ii == Fraction(1000001, 1000)


def _brute_force_ratio(edges):
    """Exhaustive cycle enumeration oracle for small graphs.

    Returns (max ratio, tokenless-latency-cycle-exists).
    """
    import itertools

    import networkx as nx

    g = nx.DiGraph()
    for e in edges:
        if g.has_edge(e.src, e.dst):
            g[e.src][e.dst]["list"].append(e)
        else:
            g.add_edge(e.src, e.dst, list=[e])
    best = Fraction(1)
    tokenless = False
    for cyc in nx.simple_cycles(g):
        pairs = list(zip(cyc, cyc[1:] + cyc[:1]))
        options = [g[a][b]["list"] for a, b in pairs]
        for combo in itertools.product(*options):
            lat = sum(e.latency for e in combo)
            tok = sum(e.tokens for e in combo)
            if tok == 0:
                if lat > 0:
                    tokenless = True
                continue
            best = max(best, Fraction(lat, tok))
    return best, tokenless


class TestLawlerNeverUnderestimates:
    """Property: the Lawler iteration equals exhaustive cycle enumeration
    on every small random graph (and in particular never underestimates,
    which would make the static II bound unsound)."""

    def test_hypothesis_random_graphs(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings
        from hypothesis import strategies as st

        edge = st.tuples(
            st.integers(0, 4), st.integers(0, 4),
            st.integers(0, 8), st.integers(0, 3),
        )

        @settings(max_examples=150, deadline=None)
        @given(st.lists(edge, min_size=0, max_size=12))
        def check(raw):
            edges = [E(a, b, lat, tok) for a, b, lat, tok in raw]
            want, tokenless = _brute_force_ratio(edges)
            if tokenless:
                with pytest.raises(AnalysisError):
                    max_cycle_ratio(edges)
                assert find_tokenless_cycle(edges) is not None
            else:
                got = max_cycle_ratio(edges)
                assert got.ii == want
                assert find_tokenless_cycle(edges) is None
                if got.critical_cycle:
                    lat, tok = cycle_metrics(edges, got.critical_cycle)
                    assert tok > 0 and Fraction(lat, tok) == got.ii

        check()
