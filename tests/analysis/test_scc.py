"""SCC machinery: Tarjan, condensation order, in-SCC max distances."""

from repro.analysis import (
    SCCGraph,
    max_simple_distance,
    strongly_connected_components,
)


def adj(edges, nodes=None):
    succ = {}
    ns = set(nodes or [])
    for a, b in edges:
        succ.setdefault(a, []).append(b)
        ns.add(a)
        ns.add(b)
    for n in ns:
        succ.setdefault(n, [])
    return sorted(ns), succ


class TestTarjan:
    def test_acyclic_graph_all_singletons(self):
        nodes, succ = adj([("a", "b"), ("b", "c")])
        sccs = strongly_connected_components(nodes, succ)
        assert sorted(map(tuple, map(sorted, sccs))) == [("a",), ("b",), ("c",)]

    def test_simple_cycle_is_one_scc(self):
        nodes, succ = adj([("a", "b"), ("b", "c"), ("c", "a")])
        sccs = strongly_connected_components(nodes, succ)
        assert sorted(map(sorted, sccs)) == [["a", "b", "c"]]

    def test_two_cycles_bridge(self):
        nodes, succ = adj(
            [("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"), ("d", "c")]
        )
        sccs = {tuple(sorted(s)) for s in strongly_connected_components(nodes, succ)}
        assert sccs == {("a", "b"), ("c", "d")}

    def test_self_loop(self):
        nodes, succ = adj([("a", "a"), ("a", "b")])
        sccs = {tuple(sorted(s)) for s in strongly_connected_components(nodes, succ)}
        assert ("a",) in sccs and ("b",) in sccs

    def test_reverse_topological_emission(self):
        # Tarjan emits consumers before producers.
        nodes, succ = adj([("a", "b"), ("b", "c")])
        sccs = strongly_connected_components(nodes, succ)
        order = [s[0] for s in sccs]
        assert order.index("c") < order.index("a")

    def test_large_chain_no_recursion_limit(self):
        n = 5000
        edges = [(i, i + 1) for i in range(n)]
        nodes, succ = adj(edges)
        sccs = strongly_connected_components(nodes, succ)
        assert len(sccs) == n + 1

    def test_matches_networkx_on_dense_graph(self):
        import networkx as nx
        import random

        rng = random.Random(5)
        edges = [(rng.randrange(12), rng.randrange(12)) for _ in range(30)]
        nodes, succ = adj(edges, nodes=range(12))
        mine = {tuple(sorted(s)) for s in strongly_connected_components(nodes, succ)}
        g = nx.DiGraph(edges)
        g.add_nodes_from(range(12))
        ref = {tuple(sorted(s)) for s in nx.strongly_connected_components(g)}
        assert mine == ref


class TestSCCGraph:
    def test_topological_positions_follow_dependencies(self):
        nodes, succ = adj([("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"), ("d", "c")])
        g = SCCGraph(nodes, succ)
        assert g.topo_position("a") < g.topo_position("c")
        assert g.same_scc("a", "b")
        assert not g.same_scc("b", "c")

    def test_members(self):
        nodes, succ = adj([("a", "b"), ("b", "a")])
        g = SCCGraph(nodes, succ)
        assert sorted(g.members("a")) == ["a", "b"]

    def test_condensation_edges(self):
        nodes, succ = adj([("a", "b"), ("b", "a"), ("a", "c")])
        g = SCCGraph(nodes, succ)
        sa, sc = g.scc_of["a"], g.scc_of["c"]
        assert sc in g.succ_sccs[sa]


class TestMaxSimpleDistance:
    def test_direct_edge(self):
        nodes, succ = adj([("a", "b"), ("b", "a")])
        assert max_simple_distance(["a", "b"], succ, "a", "b") == 1

    def test_longest_of_two_paths(self):
        # a -> b -> c and a -> c, all inside one SCC via c -> a.
        nodes, succ = adj([("a", "b"), ("b", "c"), ("a", "c"), ("c", "a")])
        scc = ["a", "b", "c"]
        assert max_simple_distance(scc, succ, "a", "c") == 2

    def test_no_path_returns_none(self):
        nodes, succ = adj([("a", "b")])
        assert max_simple_distance(["a", "b"], succ, "b", "a") is None

    def test_same_node_zero(self):
        nodes, succ = adj([("a", "b"), ("b", "a")])
        assert max_simple_distance(["a", "b"], succ, "a", "a") == 0

    def test_restricted_to_scc_nodes(self):
        # Path a -> x -> b exists but x is outside the SCC set.
        nodes, succ = adj([("a", "x"), ("x", "b"), ("a", "b"), ("b", "a")])
        assert max_simple_distance(["a", "b"], succ, "a", "b") == 1

    def test_figure5_equal_distances(self):
        # Paper Figure 5: Buf1 has equal max distances to M1 and M2 (both
        # direct successors... here modeled as buf -> m1, buf -> m2,
        # m1/m2 -> join -> fork -> buf).
        edges = [
            ("fork", "m1"), ("fork", "m2"), ("m1", "join"), ("m2", "join"),
            ("join", "fork"), ("join", "buf"), ("buf", "fork"),
        ]
        nodes, succ = adj(edges)
        scc = ["fork", "m1", "m2", "join", "buf"]
        d1 = max_simple_distance(scc, succ, "buf", "m1")
        d2 = max_simple_distance(scc, succ, "buf", "m2")
        assert d1 == d2  # the R3 rejection witness
