"""CLI entry point and VCD export."""

import pytest

from repro.cli import main


class TestCLI:
    def test_kernels_lists_all(self, capsys):
        assert main(["kernels", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        for name in ("atax", "gsumif", "syr2k"):
            assert name in out
        assert "5 fadd" in out  # gsum census visible

    def test_run_crush(self, capsys):
        assert main(["run", "mvt", "crush", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "DSPs        : 5" in out
        assert "verified against reference" in out
        assert "groups" in out

    def test_run_no_sim(self, capsys):
        assert main(["run", "gemm", "naive", "--scale", "small", "--no-sim"]) == 0
        out = capsys.readouterr().out
        assert "cycles" not in out

    def test_run_unknown_kernel_is_clean_error(self, capsys):
        assert main(["run", "nonsense"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_wrapper_breakdown(self, capsys):
        assert main(["wrapper", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "Output buffers" in out
        assert "shared" in out

    def test_run_with_sanitize_and_lint_gate(self, capsys):
        assert main(["run", "gsum", "crush", "--scale", "small",
                     "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "lint" in out  # the pre-sim gate reports its counts
        assert "verified against reference" in out

    def test_module_invocation(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "kernels", "--scale", "small"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        assert "gemm" in proc.stdout


class TestVCD:
    def test_vcd_roundtrip(self, tmp_path):
        from repro.circuit import DataflowCircuit, FunctionalUnit, Sequence, Sink
        from repro.sim import Engine, Trace
        from repro.sim.vcd import write_vcd

        c = DataflowCircuit("vcd_demo")
        a = c.add(Sequence("a", [1.0, 2.0]))
        b = c.add(Sequence("b", [3.0, 4.0]))
        fu = c.add(FunctionalUnit("mul", "fmul"))
        s = c.add(Sink("out"))
        c.connect(a, 0, fu, 0)
        c.connect(b, 0, fu, 1)
        c.connect(fu, 0, s, 0)
        tr = Trace(record_all=True)
        Engine(c, trace=tr).run(lambda: s.count == 2, max_cycles=50)

        path = tmp_path / "run.vcd"
        n = write_vcd(c, tr, str(path))
        text = path.read_text()
        assert n == sum(len(v) for v in tr.fires.values())
        assert "$enddefinitions" in text
        assert "mul__0__to__out__0" in text
        # Every declared var toggles at least once.
        assert text.count("$var wire 1") == len(c.channels)

    def test_vcd_idents_unique(self):
        from repro.sim.vcd import _ident

        ids = {_ident(i) for i in range(500)}
        assert len(ids) == 500


class TestLintCLI:
    def test_lint_single_config_is_clean(self, capsys):
        assert main(["lint", "gsum", "crush", "--scale", "small"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_defaults_to_crush(self, capsys):
        assert main(["lint", "gsum", "--scale", "small"]) == 0
        assert "gsum/crush" in capsys.readouterr().out

    def test_lint_without_target_is_a_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "error" in capsys.readouterr().err

    def test_lint_json_output(self, capsys):
        import json

        assert main(["lint", "gsum", "crush", "--scale", "small",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["kernel"] == "gsum"
        assert payload[0]["technique"] == "crush"
        assert payload[0]["errors"] == 0
        assert payload[0]["diagnostics"] == []

    def test_lint_rule_overrides_are_accepted(self, capsys):
        assert main(["lint", "gsum", "crush", "--scale", "small",
                     "--rule", "ST002=off", "--rule", "ST004=error"]) == 0

    def test_lint_bad_rule_spec_is_a_clean_error(self, capsys):
        assert main(["lint", "gsum", "crush", "--rule", "ST002"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_lint_exit_codes_for_findings(self, capsys, monkeypatch):
        """Warnings exit 3 (4 under --strict); errors always exit 4."""
        import repro.pipeline as pipeline
        from repro.lint import Diagnostic, LintReport

        def fake_prepare(kernel, technique, style="bb", scale="paper"):
            return None

        severity = {"value": "warning"}

        def fake_lint(prep, config=None, expected_ii=None):
            rep = LintReport(circuit="fake")
            rep.add(Diagnostic(code="ST002", severity=severity["value"],
                               message="synthetic finding"))
            return rep

        monkeypatch.setattr(pipeline, "prepare_circuit", fake_prepare)
        monkeypatch.setattr(pipeline, "lint_prepared", fake_lint)
        assert main(["lint", "gsum", "crush"]) == 3
        assert main(["lint", "gsum", "crush", "--strict"]) == 4
        severity["value"] = "error"
        assert main(["lint", "gsum", "crush"]) == 4
        capsys.readouterr()


class TestAnalyzeCLI:
    def test_analyze_ii_exact_on_choice_free_kernel(self, capsys):
        assert main(["analyze", "ii", "--kernel", "gemm",
                     "--technique", "crush"]) == 0
        out = capsys.readouterr().out
        assert "exact" in out
        assert "0 unsound" in out

    def test_analyze_ii_static_only(self, capsys):
        assert main(["analyze", "ii", "--kernel", "atax",
                     "--technique", "crush", "--no-sim"]) == 0
        out = capsys.readouterr().out
        assert "static-only" in out

    def test_analyze_ii_json_rows(self, capsys):
        import json

        assert main(["analyze", "ii", "--kernel", "gemm",
                     "--technique", "naive", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and rows[0]["kernel"] == "gemm"
        assert rows[0]["status"] in ("exact", "sound")
        assert rows[0]["predicted_ii"] is not None

    def test_lint_sarif_format(self, capsys):
        import json

        assert main(["lint", "gemm", "crush", "--scale", "small",
                     "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_lint_golden_dir_arms_fl005(self, capsys, tmp_path):
        import json

        # A golden that undercuts the real predicted II makes FL005 fire.
        (tmp_path / "gemm-crush.json").write_text(
            json.dumps({"predicted_ii": "1"})
        )
        code = main(["lint", "gemm", "crush", "--scale", "small",
                     "--golden-dir", str(tmp_path)])
        assert code == 3  # FL005 is warning severity
        out = capsys.readouterr().out
        assert "FL005" in out

    def test_lint_golden_dir_with_matching_golden_is_clean(self, capsys):
        code = main(["lint", "gemm", "crush", "--scale", "small",
                     "--golden-dir", "tests/goldens"])
        assert code == 0

    def test_analyze_memdep_classifies_and_gates(self, capsys):
        assert main(["analyze", "memdep", "--kernel", "histogram",
                     "--technique", "crush"]) == 0
        out = capsys.readouterr().out
        assert "lsq-required" in out
        assert "0 unsound" in out

    def test_analyze_memdep_static_only_json(self, capsys):
        import json

        assert main(["analyze", "memdep", "--kernel", "atax",
                     "--technique", "naive", "--no-sim", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["kernel"] == "atax"
        assert rows[0]["memdep"]["mem_class"] == "static-ok"
        assert rows[0]["soundness"] == "skipped"
        assert rows[0]["measurements"] == []

    def test_analyze_memdep_sarif(self, capsys):
        import json

        assert main(["analyze", "memdep", "--kernel", "spmv",
                     "--technique", "naive", "--no-sim",
                     "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        assert results and all(
            r["ruleId"].startswith("MD") for r in results
        )

    def test_analyze_memdep_exits_4_on_md_error(self, capsys, monkeypatch):
        # Force a proved violation by making the MD003 findings errors.
        import dataclasses

        from repro.lint import RULES

        monkeypatch.setitem(
            RULES, "MD003",
            dataclasses.replace(RULES["MD003"], severity="error"),
        )
        code = main(["analyze", "memdep", "--kernel", "histogram",
                     "--technique", "naive", "--no-sim"])
        assert code == 4
        captured = capsys.readouterr()
        assert "proved memory-dependence violation" in captured.err
