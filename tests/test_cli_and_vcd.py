"""CLI entry point and VCD export."""

import pytest

from repro.cli import main


class TestCLI:
    def test_kernels_lists_all(self, capsys):
        assert main(["kernels", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        for name in ("atax", "gsumif", "syr2k"):
            assert name in out
        assert "5 fadd" in out  # gsum census visible

    def test_run_crush(self, capsys):
        assert main(["run", "mvt", "crush", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "DSPs        : 5" in out
        assert "verified against reference" in out
        assert "groups" in out

    def test_run_no_sim(self, capsys):
        assert main(["run", "gemm", "naive", "--scale", "small", "--no-sim"]) == 0
        out = capsys.readouterr().out
        assert "cycles" not in out

    def test_run_unknown_kernel_is_clean_error(self, capsys):
        assert main(["run", "nonsense"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_wrapper_breakdown(self, capsys):
        assert main(["wrapper", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "Output buffers" in out
        assert "shared" in out

    def test_module_invocation(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "kernels", "--scale", "small"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        assert "gemm" in proc.stdout


class TestVCD:
    def test_vcd_roundtrip(self, tmp_path):
        from repro.circuit import DataflowCircuit, FunctionalUnit, Sequence, Sink
        from repro.sim import Engine, Trace
        from repro.sim.vcd import write_vcd

        c = DataflowCircuit("vcd_demo")
        a = c.add(Sequence("a", [1.0, 2.0]))
        b = c.add(Sequence("b", [3.0, 4.0]))
        fu = c.add(FunctionalUnit("mul", "fmul"))
        s = c.add(Sink("out"))
        c.connect(a, 0, fu, 0)
        c.connect(b, 0, fu, 1)
        c.connect(fu, 0, s, 0)
        tr = Trace(record_all=True)
        Engine(c, trace=tr).run(lambda: s.count == 2, max_cycles=50)

        path = tmp_path / "run.vcd"
        n = write_vcd(c, tr, str(path))
        text = path.read_text()
        assert n == sum(len(v) for v in tr.fires.values())
        assert "$enddefinitions" in text
        assert "mul__0__to__out__0" in text
        # Every declared var toggles at least once.
        assert text.count("$var wire 1") == len(c.channels)

    def test_vcd_idents_unique(self):
        from repro.sim.vcd import _ident

        ids = {_ident(i) for i in range(500)}
        assert len(ids) == 500
