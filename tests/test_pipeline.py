"""The end-to-end pipeline API (one Table-2/3 row per call)."""

import pytest

from repro.errors import ReproError
from repro.pipeline import TECHNIQUES, run_technique


class TestRunTechnique:
    def test_row_fields_populated(self):
        row = run_technique("mvt", "crush", scale="small")
        assert row.kernel == "mvt" and row.technique == "crush"
        assert row.dsp == 5
        assert row.slices > 0 and row.lut > 0 and row.ff > 0
        assert row.cp_ns > 3.0
        assert row.cycles > 0
        assert row.exec_time_us == pytest.approx(
            row.cp_ns * row.cycles / 1000.0, rel=0.01
        )
        assert row.opt_time_s > 0
        assert row.groups and all(isinstance(g, list) for g in row.groups)
        assert row.estimate is not None

    def test_metrics_dict(self):
        row = run_technique("mvt", "naive", scale="small")
        m = row.metrics()
        assert set(m) == {
            "dsp", "slices", "lut", "ff", "cp_ns", "cycles",
            "exec_time_us", "opt_time_s",
        }

    def test_unknown_technique(self):
        with pytest.raises(ReproError, match="unknown technique"):
            run_technique("mvt", "telepathy")

    def test_simulate_false_skips_cycles(self):
        row = run_technique("mvt", "crush", scale="small", simulate=False)
        assert row.cycles == 0
        assert row.exec_time_us == 0
        assert row.dsp == 5

    def test_size_overrides_forwarded(self):
        small = run_technique("gemm", "naive", scale="small", simulate=True)
        smaller = run_technique(
            "gemm", "naive", scale="small", simulate=True, NI=2, NJ=2, NK=2
        )
        assert smaller.cycles < small.cycles

    def test_all_techniques_listed(self):
        assert TECHNIQUES == ("naive", "inorder", "crush")
