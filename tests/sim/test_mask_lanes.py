"""Mask-lane (MIMD) execution tests: divergence without scalar fallback.

The generated-loop batched engines promote from lockstep to mask-lane
execution at the first control divergence (`repro.sim.batched`): every
1-bit control signal becomes a per-lane bitmask integer and each lane
gets its own done/cycle-freeze bit.  These tests pin the promotion
contract:

* divergent batches (``gsumif``, and a synthetic load→branch circuit)
  stay lane-parallel — ``fallback_lanes == 0`` — yet remain bit-identical
  to scalar runs per lane, across lane counts up to 64;
* lanes frozen by an early ``done`` predicate never perturb survivors
  (hypothesis property);
* the mask-capable laned module has its own content-addressed disk-cache
  key and still promotes correctly when reloaded from disk;
* every golden configuration survives being *forced* through the mask
  loop from cycle 0 (``start_masked=True``) bit-identically.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import critical_cfcs, insert_timing_buffers, place_buffers
from repro.baselines import inorder_share, naive_share
from repro.circuit import (
    Branch,
    DataflowCircuit,
    ElasticBuffer,
    FunctionalUnit,
    LoadPort,
    Sequence,
    Sink,
)
from repro.core import crush
from repro.frontend import lower_kernel, simulate_kernel
from repro.frontend.kernels import KERNEL_NAMES, build
from repro.frontend.runner import default_inputs
from repro.frontend.interp import run_reference
from repro.pipeline import TECHNIQUES
from repro.sim import Memory, create_engine
from repro.sim.batched import BatchedCodegenEngine
from repro.sim.codegen import generate_source, source_key
from repro.sim.signal_graph import compile_schedule

PAIRS = [(k, t) for k in KERNEL_NAMES for t in TECHNIQUES]
SHARE = {"naive": naive_share, "inorder": inorder_share, "crush": crush}

#: Lane counts the issue calls out: small, a byte, and beyond the word
#: sizes any packed-bool representation would be tempted to assume.
LANE_COUNTS = (2, 8, 64)


def _prepare(kernel_name, technique, style="bb"):
    kernel = build(kernel_name, scale="small")
    lowered = lower_kernel(kernel, style=style)
    circuit = lowered.circuit
    cfcs = critical_cfcs(circuit)
    place_buffers(circuit, cfcs)
    SHARE[technique](circuit, cfcs)
    insert_timing_buffers(circuit)
    return lowered


def _lane_memories(kernel, seeds):
    memories, expected = [], []
    for s in seeds:
        inputs = default_inputs(kernel, seed=s)
        ref = run_reference(kernel, inputs)
        mem = Memory()
        for arr in kernel.arrays:
            size = arr.resolved_size(kernel.params)
            mem.allocate(arr.name, size, init=inputs[arr.name])
        memories.append(mem)
        expected.append(ref.writes)
    return memories, expected


def _run_batched(lowered, seeds, backend, start_masked=False):
    kernel = lowered.kernel
    memories, expected = _lane_memories(kernel, seeds)
    engine = create_engine(
        lowered.circuit, backend=backend, lanes=len(seeds), memories=memories,
    )
    end = lowered.end_sink

    def done_lane(lane):
        return (
            engine.sink_count(end, lane) >= 1
            and memories[lane].writes >= expected[lane]
        )

    cycles = engine.run_lanes(
        done_lane, max_cycles=2_000_000,
        uniform_done=(len(set(expected)) == 1),
        start_masked=start_masked,
    )
    return engine, memories, cycles


# ---------------------------------------------------------------------------
# gsumif: a real data-dependent kernel, across the issue's lane counts


@pytest.mark.parametrize("lanes", LANE_COUNTS)
def test_gsumif_mask_lanes_bit_identical_to_scalar(lanes):
    lowered = _prepare("gsumif", "crush")
    seeds = list(range(100, 100 + lanes))
    engine, memories, cycles = _run_batched(lowered, seeds, "codegen")
    # Distinct input sets must diverge — and stay lane-parallel.
    assert engine.mask_promotions == 1
    assert engine.fallback_lanes == 0
    assert engine.divergence is not None
    assert engine.done_mask == (1 << lanes) - 1
    for lane, seed in enumerate(seeds):
        want = simulate_kernel(lowered, seed=seed, backend="codegen")
        label = f"lane {lane} (seed {seed})"
        assert cycles[lane] == want.cycles, label
        assert engine.lane_fires[lane] == want.fires, label
        for name in want.arrays:
            assert np.array_equal(memories[lane].dump(name),
                                  want.arrays[name]), f"{label}: {name}"


# ---------------------------------------------------------------------------
# synthetic forced-divergence circuit: per-lane memory steers a branch


N_FLAGS = 12


def _divergent_circuit():
    """addr → load("flags") → branch.cond; branch steers data to 2 sinks.

    The branch condition is *loaded from memory*, so per-lane memories
    with different flag patterns force control divergence by
    construction — the minimal circuit whose lanes cannot stay lockstep.
    """
    c = DataflowCircuit("diverge")
    addr = c.add(Sequence("addr", [float(i) for i in range(N_FLAGS)]))
    data = c.add(Sequence("data", [float(10 + i) for i in range(N_FLAGS)]))
    buf = c.add(ElasticBuffer("buf", slots=2))
    load = c.add(LoadPort("load", "flags"))
    br = c.add(Branch("br"))
    st = c.add(Sink("st"))
    sf = c.add(Sink("sf"))
    c.connect(addr, 0, load, 0)
    c.connect(load, 0, br, 0)   # cond
    c.connect(data, 0, buf, 0)
    c.connect(buf, 0, br, 1)    # data
    c.connect(br, 0, st, 0)     # true side
    c.connect(br, 1, sf, 0)     # false side
    c.validate()
    return c


def _flag_pattern(lane):
    # Lane-dependent 0/1 pattern; lane 0 and lane 1 already differ at
    # flag 0, so any batch of >= 2 lanes diverges on the first branch.
    return [float((i * (lane + 1) + lane) % 3 == 0) for i in range(N_FLAGS)]


def _flags_memory(lane):
    mem = Memory()
    mem.allocate("flags", N_FLAGS, init=_flag_pattern(lane))
    return mem


@pytest.mark.parametrize("lanes", LANE_COUNTS)
@pytest.mark.parametrize("backend", ["compiled", "codegen"])
def test_synthetic_divergence_bit_identical_to_scalar(backend, lanes):
    c = _divergent_circuit()
    memories = [_flags_memory(lane) for lane in range(lanes)]
    engine = create_engine(c, backend=backend, lanes=lanes,
                           memories=memories)
    cycles = engine.run_lanes(
        lambda lane: (engine.sink_count("st", lane)
                      + engine.sink_count("sf", lane)) >= N_FLAGS,
        max_cycles=10_000, uniform_done=True,
    )
    assert engine.mask_promotions == 1
    assert engine.fallback_lanes == 0
    assert engine.divergence is not None
    assert "br" in engine.divergence.channel

    for lane in range(lanes):
        c_ref = _divergent_circuit()
        ref = create_engine(c_ref, backend=backend,
                            memory=_flags_memory(lane))
        st_u, sf_u = c_ref.units["st"], c_ref.units["sf"]
        ref_cycles = ref.run(
            lambda: st_u.count + sf_u.count >= N_FLAGS, max_cycles=10_000,
        )
        assert cycles[lane] == ref_cycles, lane
        assert engine.lane_fires[lane] == ref.total_fires, lane
        assert engine.sink_received("st", lane) == st_u.received, lane
        assert engine.sink_received("sf", lane) == sf_u.received, lane


# ---------------------------------------------------------------------------
# hypothesis: lanes frozen by early `done` never perturb the survivors


def _chain_circuit(values, slots):
    c = DataflowCircuit("chain")
    src = c.add(Sequence("src", list(values)))
    one = c.add(Sequence("one", [1.0] * len(values)))
    buf = c.add(ElasticBuffer("buf", slots=slots))
    fu = c.add(FunctionalUnit("fu", "fadd"))
    sink = c.add(Sink("out"))
    c.connect(src, 0, buf, 0)
    c.connect(buf, 0, fu, 0)
    c.connect(one, 0, fu, 1)
    c.connect(fu, 0, sink, 0)
    c.validate()
    return c


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        min_size=2, max_size=8,
    ),
    data=st.data(),
    slots=st.integers(min_value=1, max_value=3),
    backend=st.sampled_from(["compiled", "codegen"]),
)
def test_frozen_lanes_never_perturb_survivors(values, data, slots, backend):
    # Each lane stops after its own number of sink tokens; lanes with a
    # small target freeze early (partial done-mask → mask promotion) and
    # must coast without changing what the surviving lanes compute.
    lanes = data.draw(st.integers(min_value=2, max_value=5))
    targets = data.draw(st.lists(
        st.integers(min_value=1, max_value=len(values)),
        min_size=lanes, max_size=lanes,
    ))
    c = _chain_circuit(values, slots)
    engine = create_engine(c, backend=backend, lanes=lanes)
    cycles = engine.run_lanes(
        lambda lane: engine.sink_count("out", lane) >= targets[lane],
        max_cycles=5_000, uniform_done=False,
    )
    assert engine.fallback_lanes == 0
    if len(set(targets)) > 1:
        assert engine.mask_promotions == 1
    for lane, target in enumerate(targets):
        c_ref = _chain_circuit(values, slots)
        ref = create_engine(c_ref, backend=backend)
        sink = c_ref.units["out"]
        ref_cycles = ref.run(lambda: sink.count >= target, max_cycles=5_000)
        assert cycles[lane] == ref_cycles, lane
        assert engine.sink_count("out", lane) == target, lane
        assert engine.sink_received("out", lane) == sink.received, lane


# ---------------------------------------------------------------------------
# disk cache: the mask-capable laned module has its own key and survives
# a disk round-trip with the promotion machinery intact


@pytest.fixture
def codegen_cache(tmp_path, monkeypatch):
    import repro.sim.batched as bt
    import repro.sim.codegen as cg

    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "cgc"))
    monkeypatch.setattr(cg, "_MODULE_CACHE", type(cg._MODULE_CACHE)())
    monkeypatch.setattr(bt, "_INPROC_CACHE", type(bt._INPROC_CACHE)())
    return tmp_path / "cgc"


def test_mask_variant_has_its_own_cache_key(codegen_cache):
    c = _divergent_circuit()
    schedule = compile_schedule(c)
    scalar_src = generate_source(c, schedule)
    laned_src = generate_source(c, schedule, lanes=True)
    # The mask loop lives in the laned module only: a pre-mask scalar
    # module (or any module without make_mask_loop) can never be served
    # for a laned run, because the key hashes the full source.
    assert "make_mask_loop" in laned_src
    assert "make_mask_loop" not in scalar_src
    assert source_key(scalar_src) != source_key(laned_src)
    stripped = laned_src[:laned_src.index("def make_mask_loop")]
    assert source_key(stripped) != source_key(laned_src)


def test_disk_loaded_module_still_promotes(codegen_cache):
    def run_batch():
        memories = [_flags_memory(lane) for lane in range(3)]
        engine = BatchedCodegenEngine(
            _divergent_circuit(), lanes=3, memories=memories,
        )
        cycles = engine.run_lanes(
            lambda lane: (engine.sink_count("st", lane)
                          + engine.sink_count("sf", lane)) >= N_FLAGS,
            max_cycles=10_000, uniform_done=True,
        )
        received = [engine.sink_received("st", lane) for lane in range(3)]
        return engine, cycles, received

    import repro.sim.codegen as cg

    first, cycles_a, recv_a = run_batch()
    assert first.codegen_origin == "generated"
    assert first.mask_promotions == 1
    # Fresh in-process memo: the module must come back from disk with the
    # mask loop attached — a poisoned/stale artifact would fail here.
    cg._MODULE_CACHE.clear()
    second, cycles_b, recv_b = run_batch()
    assert second.codegen_key == first.codegen_key
    assert second.codegen_origin == "disk"
    assert second.mask_promotions == 1
    assert second.fallback_lanes == 0
    assert cycles_b == cycles_a
    assert recv_b == recv_a


# ---------------------------------------------------------------------------
# all 33 goldens forced through the mask loop from cycle 0


@pytest.mark.parametrize("kernel,technique", PAIRS,
                         ids=[f"{k}-{t}" for k, t in PAIRS])
def test_goldens_forced_mask_bit_identical(kernel, technique):
    # start_masked=True promotes before the first cycle: the whole run
    # executes in mask mode, so lockstep-only kernels also prove the
    # masked emitters bit-identical to scalar execution.
    lowered = _prepare(kernel, technique)
    seeds = [7, 11]
    engine, memories, cycles = _run_batched(
        lowered, seeds, "codegen", start_masked=True,
    )
    assert engine.mask_promotions == 1
    assert engine.fallback_lanes == 0
    for lane, seed in enumerate(seeds):
        want = simulate_kernel(lowered, seed=seed, backend="compiled")
        label = f"{kernel}-{technique} lane={lane}"
        assert cycles[lane] == want.cycles, label
        assert engine.lane_fires[lane] == want.fires, label
        assert memories[lane].writes == want.reference.writes, label
        for name in want.arrays:
            assert np.array_equal(memories[lane].dump(name),
                                  want.arrays[name]), f"{label}: {name}"
