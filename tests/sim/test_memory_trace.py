"""Memory model and trace utilities."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import Memory, Trace
from repro.sim.deadlock import diagnose
from repro.circuit import DataflowCircuit, ElasticBuffer, Sequence, Sink


class TestMemory:
    def test_allocate_read_write(self):
        m = Memory()
        m.allocate("a", 3, init=[1.0, 2.0, 3.0])
        assert m.read("a", 1) == 2.0
        m.write("a", 1, 9.0)
        assert m.read("a", 1) == 9.0
        assert m.reads == 2 and m.writes == 1

    def test_zero_init_default(self):
        m = Memory()
        m.allocate("a", 4)
        assert list(m.dump("a")) == [0.0, 0.0, 0.0, 0.0]

    def test_duplicate_allocation_rejected(self):
        m = Memory()
        m.allocate("a", 1)
        with pytest.raises(SimulationError, match="already"):
            m.allocate("a", 1)

    def test_unknown_array(self):
        m = Memory()
        with pytest.raises(SimulationError, match="unknown array"):
            m.read("ghost", 0)

    def test_bounds_checked(self):
        m = Memory()
        m.allocate("a", 2)
        with pytest.raises(SimulationError, match="out of bounds"):
            m.read("a", 2)
        with pytest.raises(SimulationError, match="out of bounds"):
            m.write("a", -1, 0.0)

    def test_init_length_checked(self):
        m = Memory()
        with pytest.raises(SimulationError, match="cells"):
            m.allocate("a", 3, init=[1.0])

    def test_dump_is_numpy_copy(self):
        m = Memory()
        m.allocate("a", 2, init=[1.0, 2.0])
        d = m.dump("a")
        assert isinstance(d, np.ndarray)
        d[0] = 99.0
        assert m.read("a", 0) == 1.0

    def test_arrays_listing(self):
        m = Memory()
        m.allocate("b", 1)
        m.allocate("a", 1)
        assert m.arrays() == ["a", "b"]


class TestTrace:
    def test_watch_unknown_port_raises(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("s", [1]))
        snk = c.add(Sink("o"))
        c.connect(src, 0, snk, 0)
        tr = Trace()
        with pytest.raises(KeyError):
            tr.watch_unit_input(c, "o", 3)

    def test_interarrival_empty(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("s", [1]))
        snk = c.add(Sink("o"))
        ch = c.connect(src, 0, snk, 0)
        tr = Trace()
        tr.watch_channel(ch)
        assert tr.interarrival(ch) == []


class TestDiagnose:
    def test_starved_message_when_nothing_pending(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("s", []))
        snk = c.add(Sink("o"))
        c.connect(src, 0, snk, 0)
        report = diagnose(c, [False], [True])
        assert any("starved" in line for line in report)

    def test_stuck_channel_reported(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("s", [1]))
        snk = c.add(Sink("o"))
        c.connect(src, 0, snk, 0)
        report = diagnose(c, [True], [False])
        assert any("stuck" in line for line in report)

    def test_many_stuck_channels_are_truncated_with_a_count(self):
        # 41 stuck channels: the report lists 32 and counts the rest.
        c = DataflowCircuit("t")
        src = c.add(Sequence("s", [1]))
        prev = src
        for i in range(40):
            eb = c.add(ElasticBuffer(f"eb{i}"))
            c.connect(prev, 0, eb, 0)
            prev = eb
        snk = c.add(Sink("o"))
        c.connect(prev, 0, snk, 0)
        n = len(c.channels)
        report = diagnose(c, [True] * n, [False] * n)
        stuck_lines = [line for line in report if "stuck on" in line]
        assert len(stuck_lines) == 32
        assert f"(+{n - 32} more stuck channels suppressed)" in report

    def test_few_stuck_channels_are_not_truncated(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("s", [1]))
        snk = c.add(Sink("o"))
        c.connect(src, 0, snk, 0)
        report = diagnose(c, [True], [False])
        assert not any("suppressed" in line for line in report)
