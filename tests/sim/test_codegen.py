"""Differential and cache tests for the specializing codegen backend.

The codegen backend (`repro.sim.codegen`) emits one flat specialized
Python module per circuit structure and must stay *bit-identical* to
the event-driven oracle — same cycle counts, same per-channel firing
traces, same final memory and sink state — on golden kernels (covered
three-ways in test_compiled.py), on randomized circuits in lockstep,
and with steady-state fast-forward enabled.  Also covered here: the
content-addressed generated-module cache (in-process, disk, and salted
invalidation), the observer restrictions, and the CLI's clean error
exits for unsupported combinations.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.circuit import (
    DataflowCircuit,
    EagerFork,
    ElasticBuffer,
    Entry,
    FunctionalUnit,
    Join,
    Sequence,
    Sink,
    TransparentFifo,
)
from repro.errors import SimulationError
from repro.frontend import simulate_kernel
from repro.sim import SimProfile, Trace, create_engine
from repro.sim.codegen import CodegenEngine, load_module
from repro.sim.fastforward import CHECK_EVERY
from repro.sim.signal_graph import compile_schedule

from .test_compiled import _prepare


@pytest.fixture
def codegen_cache(tmp_path, monkeypatch):
    """Isolated disk cache + empty in-process memo for every test."""
    import repro.sim.codegen as cg

    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "cgc"))
    monkeypatch.setattr(cg, "_MODULE_CACHE", type(cg._MODULE_CACHE)())
    return tmp_path / "cgc"


# ---------------------------------------------------------------------------
# hypothesis lockstep: event oracle vs codegen, cycle by cycle


def _lockstep_codegen(build_circuit, max_cycles=3_000):
    c1, done1 = build_circuit()
    c2, done2 = build_circuit()
    t1, t2 = Trace(record_all=True), Trace(record_all=True)
    e1 = create_engine(c1, backend="event", trace=t1)
    e2 = create_engine(c2, backend="codegen", trace=t2)
    for cycle in range(max_cycles):
        f1, f2 = e1.step(), e2.step()
        assert f1 == f2, f"fire count diverged at cycle {cycle}: {f1} != {f2}"
        if done1() and done2():
            break
    assert done1() and done2(), "circuits did not complete in lockstep"
    assert t1.fires == t2.fires
    for u1, u2 in zip(c1.units.values(), c2.units.values()):
        assert u1.state() == u2.state(), u1.name
    return c1, c2


values_strategy = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=1, max_size=10,
)


@settings(max_examples=25, deadline=None)
@given(values=values_strategy,
       stages=st.lists(
           st.tuples(st.sampled_from(["fadd", "fmul", "fsub"]),
                     st.floats(min_value=-4, max_value=4, allow_nan=False)),
           min_size=1, max_size=4),
       slots=st.integers(min_value=1, max_value=3),
       transparent=st.booleans())
def test_random_pipelines_lockstep_event_codegen(values, stages, slots,
                                                 transparent):
    def build_circuit():
        c = DataflowCircuit("rand")
        src = c.add(Sequence("src", list(values)))
        prev, port = src, 0
        for i, (op, const) in enumerate(stages):
            buf_cls = TransparentFifo if transparent else ElasticBuffer
            buf = c.add(buf_cls(f"buf{i}", slots=slots))
            fu = c.add(FunctionalUnit(f"fu{i}", op))
            k = c.add(Sequence(f"k{i}", [const] * len(values)))
            c.connect(prev, port, buf, 0)
            c.connect(buf, 0, fu, 0)
            c.connect(k, 0, fu, 1)
            prev, port = fu, 0
        sink = c.add(Sink("out"))
        c.connect(prev, port, sink, 0)
        c.validate()
        return c, lambda: sink.count == len(values)

    c1, c2 = _lockstep_codegen(build_circuit)
    assert c1.units["out"].received == c2.units["out"].received


@settings(max_examples=15, deadline=None)
@given(values=values_strategy,
       n_out=st.integers(min_value=2, max_value=4),
       latency=st.integers(min_value=0, max_value=6))
def test_random_fork_join_lockstep_event_codegen(values, n_out, latency):
    def build_circuit():
        c = DataflowCircuit("rand")
        src = c.add(Sequence("src", list(values)))
        f = c.add(EagerFork("f", n_out))
        j = c.add(Join("j", n_out))
        fu = c.add(FunctionalUnit("fu", "pass", latency_override=latency))
        sink = c.add(Sink("out"))
        c.connect(src, 0, f, 0)
        for i in range(n_out):
            b = c.add(ElasticBuffer(f"b{i}", slots=1 + i % 2))
            c.connect(f, i, b, 0)
            c.connect(b, 0, j, i)
        c.connect(j, 0, fu, 0)
        c.connect(fu, 0, sink, 0)
        c.validate()
        return c, lambda: sink.count == len(values)

    c1, c2 = _lockstep_codegen(build_circuit)
    assert c1.units["out"].received == c2.units["out"].received


# ---------------------------------------------------------------------------
# fast-forward: equivalence on kernels, engagement on a periodic stream


FF_KERNELS = ["gsum", "atax", "bicg", "mvt", "gesummv"]


@pytest.mark.parametrize("kernel", FF_KERNELS)
def test_fast_forward_equivalent_on_kernels(kernel):
    lowered = _prepare(kernel, "crush")
    plain = simulate_kernel(lowered, max_cycles=2_000_000,
                            backend="codegen", fast_forward=False)
    ff = simulate_kernel(lowered, max_cycles=2_000_000,
                         backend="codegen", fast_forward=True)
    assert plain.cycles == ff.cycles
    assert plain.fires == ff.fires
    assert set(plain.arrays) == set(ff.arrays)
    for name in plain.arrays:
        assert np.array_equal(plain.arrays[name], ff.arrays[name]), name


def _streaming_circuit(n_tokens):
    """Entry -> buffered FU pipeline -> Sink: II-1 periodic steady state."""
    c = DataflowCircuit("stream")
    prev = c.add(Entry("src", value=1.5, count=n_tokens))
    for i in range(4):
        buf = c.add(ElasticBuffer(f"b{i}", slots=2))
        fu = c.add(FunctionalUnit(f"fu{i}", "fneg"))
        c.connect(prev, 0, buf, 0)
        c.connect(buf, 0, fu, 0)
        prev = fu
    sink = c.add(Sink("out"))
    c.connect(prev, 0, sink, 0)
    c.validate()
    return c


def test_fast_forward_engages_and_is_exact_on_periodic_stream():
    n = 50 * CHECK_EVERY
    results = {}
    for ff in (False, True):
        c = _streaming_circuit(n)
        eng = create_engine(c, backend="codegen", fast_forward=ff)
        sink = c.units["out"]
        cycles = eng.run(lambda: sink.count >= n, max_cycles=10 * n)
        results[ff] = (cycles, eng.total_fires, tuple(sink.received))
        if ff:
            assert eng.ff_periods_applied > 0  # it actually fast-forwarded
    assert results[False] == results[True]


def test_fast_forward_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_FF", "1")
    eng = create_engine(_streaming_circuit(4), backend="codegen")
    assert eng.fast_forward
    monkeypatch.setenv("REPRO_SIM_FF", "0")
    eng = create_engine(_streaming_circuit(4), backend="codegen")
    assert not eng.fast_forward


# ---------------------------------------------------------------------------
# observer restrictions and backend plumbing


def test_codegen_rejects_profile():
    with pytest.raises(SimulationError, match="SimProfile"):
        create_engine(_streaming_circuit(4), backend="codegen",
                      profile=SimProfile())


def test_fast_forward_rejects_trace_and_sanitizer():
    with pytest.raises(SimulationError, match="Trace"):
        create_engine(_streaming_circuit(4), backend="codegen",
                      fast_forward=True, trace=Trace(record_all=True))
    with pytest.raises(SimulationError, match="[Ss]anitizer"):
        create_engine(_streaming_circuit(4), backend="codegen",
                      fast_forward=True, sanitize=True)


def test_fast_forward_requires_codegen_backend():
    for backend in ("event", "compiled"):
        with pytest.raises(SimulationError, match="codegen"):
            create_engine(_streaming_circuit(4), backend=backend,
                          fast_forward=True)


def test_codegen_rejects_non_catalogue_units():
    class OddFU(FunctionalUnit):
        pass

    c = DataflowCircuit("odd")
    src = c.add(Sequence("src", [1.0]))
    fu = c.add(OddFU("fu", "fneg"))
    sink = c.add(Sink("out"))
    c.connect(src, 0, fu, 0)
    c.connect(fu, 0, sink, 0)
    c.validate()
    with pytest.raises(SimulationError, match="OddFU"):
        create_engine(c, backend="codegen")
    # The compiled backend still accepts it (generic fallback).
    create_engine(c, backend="compiled")


def test_profile_cli_errors_cleanly_on_codegen(capsys):
    # Exit code 2 and a one-line error, not a traceback.
    rc = cli_main(["profile", "gsum", "--scale", "small",
                   "--sim-backend", "codegen"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "SimProfile" in err or "profile" in err


def test_run_cli_accepts_codegen_and_fast_forward(capsys):
    rc = cli_main(["run", "gsum", "crush", "--scale", "small",
                   "--sim-backend", "codegen", "--fast-forward"])
    assert rc == 0
    assert "codegen backend" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# generated-module cache: memory, disk, and salted invalidation


def test_module_cache_origins(codegen_cache):
    import repro.sim.codegen as cg

    e1 = create_engine(_streaming_circuit(4), backend="codegen")
    assert e1.codegen_origin == "generated"
    # Same structure, same process: served from the namespace memo.
    e2 = create_engine(_streaming_circuit(4), backend="codegen")
    assert e2.codegen_origin == "memory"
    assert e2.codegen_key == e1.codegen_key
    # Fresh process simulated by clearing the memo: marshalled bytecode
    # comes back from disk.
    cg._MODULE_CACHE.clear()
    e3 = create_engine(_streaming_circuit(4), backend="codegen")
    assert e3.codegen_origin == "disk"
    # The source is published next to the bytecode for inspection.
    py = list(codegen_cache.rglob("*.py"))
    assert len(py) == 1 and e1.codegen_key in py[0].name
    assert "def make_loop" in py[0].read_text()


def test_salted_source_change_invalidates_cache(codegen_cache, monkeypatch):
    """A repro source change must never serve stale generated code."""
    import repro.sim.codegen as cg
    import repro.sweep.cache as sweep_cache

    e1 = create_engine(_streaming_circuit(4), backend="codegen")
    assert e1.codegen_origin == "generated"
    # Simulate an edit to a repro module: the source salt changes.
    monkeypatch.setattr(sweep_cache, "_code_salt_cache", "poisoned-salt")
    cg._MODULE_CACHE.clear()
    e2 = create_engine(_streaming_circuit(4), backend="codegen")
    assert e2.codegen_key != e1.codegen_key
    assert e2.codegen_origin == "generated"  # disk entry no longer matches
    # Both keyed artifacts coexist; neither clobbered the other.
    assert len(list(codegen_cache.rglob("*.pyc"))) == 2


def test_disk_cache_corruption_is_self_healing(codegen_cache):
    import repro.sim.codegen as cg

    e1 = create_engine(_streaming_circuit(4), backend="codegen")
    pyc = list(codegen_cache.rglob("*.pyc"))[0]
    pyc.write_bytes(b"RCG1garbage")
    cg._MODULE_CACHE.clear()
    e2 = create_engine(_streaming_circuit(4), backend="codegen")
    assert e2.codegen_origin == "generated"  # recompiled, not crashed
    c = _streaming_circuit(4)
    sink = c.units["out"]
    eng = CodegenEngine(c)
    eng.run(lambda: sink.count >= 4, max_cycles=10_000)
    assert sink.count == 4


# ---------------------------------------------------------------------------
# schedule memoization (shared with the compiled backend)


def test_schedule_memoized_across_engines_and_backends():
    c1 = _streaming_circuit(4)
    c2 = _streaming_circuit(4)
    s1 = compile_schedule(c1)
    s2 = compile_schedule(c2)
    assert s1 is s2  # same structure hash -> same cached schedule
    e_compiled = create_engine(c1, backend="compiled")
    e_codegen = create_engine(c2, backend="codegen")
    assert e_codegen.schedule is s1
