"""Runtime handshake-protocol sanitizer tests (SAN001..SAN004).

The direct tests feed :meth:`HandshakeSanitizer.observe` synthetic
valid/ready/data/fired vectors (backend-independent and deterministic);
the integration tests run real kernels on both backends and assert the
sanitizer is a pure observer: zero violations and bit-identical results.
"""

import pytest

from repro.circuit import (
    Branch,
    DataflowCircuit,
    ElasticBuffer,
    Join,
    Merge,
    Sequence,
    Sink,
)
from repro.errors import LintError
from repro.frontend.runner import simulate_kernel
from repro.pipeline import prepare_circuit
from repro.sim import (
    CompiledEngine,
    Engine,
    HandshakeSanitizer,
    create_engine,
    sanitize_default,
)


def chain_circuit():
    """src -> eb -> sink: channel 0 is src->eb, channel 1 is eb->sink."""
    c = DataflowCircuit("chain")
    src = c.add(Sequence("src", [1.0, 2.0, 3.0]))
    eb = c.add(ElasticBuffer("eb", slots=2))
    sink = c.add(Sink("sink"))
    c.connect(src, 0, eb, 0)
    c.connect(eb, 0, sink, 0)
    return c


class TestObserve:
    def test_san001_valid_retracted(self):
        san = HandshakeSanitizer(chain_circuit())
        san.observe(0, [1, 0], [0, 0], [5.0, None], [0, 0])  # pending
        san.observe(1, [0, 0], [0, 0], [None, None], [0, 0])  # retracted!
        assert not san.ok
        assert [d.code for d in san.diagnostics] == ["SAN001"]
        assert san.diagnostics[0].cycle == 1
        with pytest.raises(LintError) as exc:
            san.raise_if_violations()
        assert exc.value.diagnostics

    def test_san002_data_changed_while_pending(self):
        san = HandshakeSanitizer(chain_circuit())
        san.observe(0, [1, 0], [0, 0], [5.0, None], [0, 0])
        san.observe(1, [1, 0], [0, 0], [6.0, None], [0, 0])  # mutated!
        assert [d.code for d in san.diagnostics] == ["SAN002"]

    def test_clean_transfer_has_no_violations(self):
        san = HandshakeSanitizer(chain_circuit())
        # Fired transfers release the persistence obligation.
        san.observe(0, [1, 0], [1, 0], [5.0, None], [1, 0])
        san.observe(1, [0, 1], [0, 1], [None, 5.0], [0, 1])
        san.observe_quiet()
        assert san.ok
        assert san.cycles_checked == 3
        san.raise_if_violations()  # no-op when clean

    def test_merge_outputs_are_exempt_from_hold(self):
        c = DataflowCircuit("m")
        a = c.add(Sequence("a", [1.0]))
        b = c.add(Sequence("b", [2.0]))
        m = c.add(Merge("m", 2))
        sink = c.add(Sink("sink"))
        c.connect(a, 0, m, 0)   # cid 0
        c.connect(b, 0, m, 1)   # cid 1
        c.connect(m, 0, sink, 0)  # cid 2: non-persistent producer
        san = HandshakeSanitizer(c)
        san.observe(0, [0, 0, 1], [0, 0, 0], [None, None, 1.0], [0, 0, 0])
        san.observe(1, [0, 0, 0], [0, 0, 0], [None] * 3, [0, 0, 0])
        assert san.ok  # a persistent producer would have tripped SAN001

    def test_san003_partial_join_fire(self):
        c = DataflowCircuit("j")
        a = c.add(Sequence("a", [1.0]))
        b = c.add(Sequence("b", [2.0]))
        j = c.add(Join("j", 2))
        sink = c.add(Sink("sink"))
        c.connect(a, 0, j, 0)
        c.connect(b, 0, j, 1)
        c.connect(j, 0, sink, 0)
        san = HandshakeSanitizer(c)
        # Only one of the join's three lockstep channels fires.
        san.observe(0, [1, 1, 1], [1, 1, 1], [1.0, 2.0, 1.0], [1, 0, 0])
        assert any(d.code == "SAN003" and "lockstep" in d.message
                   for d in san.diagnostics)

    def branch_circuit(self):
        c = DataflowCircuit("b")
        cond = c.add(Sequence("cond", [1.0]))
        data = c.add(Sequence("data", [5.0]))
        br = c.add(Branch("br"))
        t = c.add(Sink("t"))
        f = c.add(Sink("f"))
        c.connect(cond, 0, br, 0)  # cid 0
        c.connect(data, 0, br, 1)  # cid 1 (the routed data input)
        c.connect(br, 0, t, 0)     # cid 2
        c.connect(br, 1, f, 0)     # cid 3
        return c

    def test_san003_route_dropped_token(self):
        san = HandshakeSanitizer(self.branch_circuit())
        # Both inputs fire but no output does: the token vanished.
        san.observe(0, [1, 1, 0, 0], [1, 1, 0, 0],
                    [1.0, 5.0, None, None], [1, 1, 0, 0])
        assert any(d.code == "SAN003" and "fired 0 outputs" in d.message
                   for d in san.diagnostics)

    def test_san003_route_duplicated_token(self):
        san = HandshakeSanitizer(self.branch_circuit())
        # An output fires with no input token behind it.
        san.observe(0, [0, 0, 1, 0], [0, 0, 1, 0],
                    [None, None, 5.0, None], [0, 0, 1, 0])
        assert any(d.code == "SAN003" and "duplicated" in d.message
                   for d in san.diagnostics)


class TestFinish:
    def test_san004_tampered_buffer_occupancy(self):
        c = chain_circuit()
        eng = Engine(c, sanitize=True)
        eng.run_cycles(4)  # observe some real traffic, no finish yet
        assert eng.sanitizer is not None and eng.sanitizer.ok
        c.units["eb"]._q.append(99.0)  # token out of thin air
        eng.sanitizer.finish()
        codes = [d.code for d in eng.sanitizer.diagnostics]
        assert "SAN004" in codes
        assert any("queue occupancy" in d.message
                   for d in eng.sanitizer.diagnostics)

    def test_san004_tampered_sink_count(self):
        c = chain_circuit()
        eng = Engine(c, sanitize=True)
        eng.run_cycles(8)
        c.units["sink"].received.append(123.0)
        eng.sanitizer.finish()
        assert any(d.code == "SAN004" and "received count" in d.message
                   for d in eng.sanitizer.diagnostics)

    def test_clean_run_finishes_clean(self):
        c = chain_circuit()
        eng = Engine(c, sanitize=True)
        eng.run(lambda: len(c.units["sink"].received) == 3, max_cycles=100)
        assert eng.sanitizer.ok


class TestEnableSwitches:
    def test_sanitize_default_env_parsing(self, monkeypatch):
        for val, expect in [("1", True), ("true", True), ("YES", True),
                            ("on", True), ("0", False), ("", False),
                            ("off", False)]:
            monkeypatch.setenv("REPRO_SIM_SANITIZE", val)
            assert sanitize_default() is expect
        monkeypatch.delenv("REPRO_SIM_SANITIZE")
        assert sanitize_default() is False

    @pytest.mark.parametrize("backend", ["event", "compiled"])
    def test_env_enables_sanitizer_on_both_backends(self, monkeypatch,
                                                    backend):
        monkeypatch.setenv("REPRO_SIM_SANITIZE", "1")
        eng = create_engine(chain_circuit(), backend=backend)
        assert eng.sanitizer is not None
        monkeypatch.setenv("REPRO_SIM_SANITIZE", "0")
        eng = create_engine(chain_circuit(), backend=backend)
        assert eng.sanitizer is None

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SANITIZE", "1")
        assert CompiledEngine(chain_circuit(), sanitize=False).sanitizer \
            is None


DIFF_KERNELS = ["gsum", "gsumif", "atax", "bicg", "gemm"]


@pytest.mark.parametrize("kernel", DIFF_KERNELS)
def test_sanitized_runs_are_bit_identical_and_clean(kernel):
    """The sanitizer is a pure observer: enabling it changes nothing
    (same cycles, same fire count, results still reference-checked) and
    real pipeline circuits produce zero violations on both backends."""
    prep = prepare_circuit(kernel, "crush", scale="small")
    baseline = {}
    for backend in ("event", "compiled"):
        plain = simulate_kernel(prep.lowered, backend=backend,
                                sanitize=False)
        sane = simulate_kernel(prep.lowered, backend=backend, sanitize=True)
        assert plain.checked and sane.checked
        assert sane.cycles == plain.cycles
        assert sane.fires == plain.fires
        baseline[backend] = (sane.cycles, sane.fires)
    assert baseline["event"] == baseline["compiled"]


class TestAliasWatch:
    """SAN005: the opt-in alias check backing the static memory-
    dependence verdicts (``repro.analysis.memdep``)."""

    def _prep(self, kernel, technique="naive"):
        return prepare_circuit(kernel, technique, scale="small")

    def test_san005_fires_when_independent_claim_is_false(self):
        # Deliberately mislabel histogram's colliding self-store pair as
        # independent: 16 samples into 8 bins repeat by pigeonhole, so
        # the run must raise SAN005 regardless of seed.
        prep = self._prep("histogram")
        san = HandshakeSanitizer(
            prep.circuit,
            alias_pairs=[("store_h_0", "store_h_0", "h",
                          "h#st0 x h#st0")],
        )
        with pytest.raises(LintError) as exc:
            simulate_kernel(prep.lowered, sanitize=san)
        assert any(d.code == "SAN005" for d in exc.value.diagnostics)
        assert any("aliased at runtime" in d.message
                   for d in exc.value.diagnostics)
        # The witness address was recorded by the watcher.
        assert san.addresses_of("store_h_0")

    def test_san005_cross_pair_fires_on_shared_address(self):
        # Load and store of the same bucket array touch common cells.
        prep = self._prep("histogram")
        san = HandshakeSanitizer(
            prep.circuit,
            alias_pairs=[("load_h_0", "store_h_0", "h",
                          "h#ld0 x h#st0")],
        )
        with pytest.raises(LintError) as exc:
            simulate_kernel(prep.lowered, sanitize=san)
        assert any(d.code == "SAN005" for d in exc.value.diagnostics)

    def test_armed_but_clean_run_stays_bit_identical(self):
        # atax's truly independent pairs never alias: the armed watcher
        # is a pure observer — same cycles, same fires, no findings.
        prep = self._prep("atax", "crush")
        from repro.analysis.memdep import (
            analyze_kernel, measure_dependences, site_ports,
        )

        report = analyze_kernel(prep.lowered.kernel)
        ports = site_ports(prep.circuit)
        pairs = [
            (ports[p.a], ports[p.b], p.array, p.label())
            for p in report.independent_pairs
        ]
        assert pairs
        plain = simulate_kernel(prep.lowered, sanitize=False)
        san = HandshakeSanitizer(prep.circuit, alias_pairs=pairs)
        sane = simulate_kernel(prep.lowered, sanitize=san)
        assert san.ok
        assert sane.checked and plain.checked
        assert sane.cycles == plain.cycles
        assert sane.fires == plain.fires
        # Every memory port issued addresses — recording really ran.
        assert all(san.addresses_of(u) for u in set(ports.values()))
        # measure_dependences packages exactly this check per pair.
        for m in measure_dependences(prep.lowered, report=report):
            assert m.sound

    def test_unarmed_sanitizer_records_nothing(self):
        prep = self._prep("atax", "crush")
        san = HandshakeSanitizer(prep.circuit)  # no alias_pairs
        simulate_kernel(prep.lowered, sanitize=san)
        assert san.ok
        assert san.addresses_of("load_A_0") == {}

    def test_batched_engines_refuse_sanitizer_instances(self):
        from repro.errors import SimulationError
        from repro.frontend import simulate_kernel_batch

        prep = self._prep("atax", "crush")
        san = HandshakeSanitizer(prep.circuit)
        with pytest.raises(SimulationError, match="batched mode"):
            simulate_kernel_batch(prep.lowered, [1, 2], sanitize=san)

    def test_engine_rejects_foreign_circuit_sanitizer(self):
        from repro.errors import SimulationError

        other = HandshakeSanitizer(chain_circuit())
        prep = self._prep("atax", "crush")
        with pytest.raises(SimulationError, match="different circuit"):
            simulate_kernel(prep.lowered, sanitize=other)
