"""Engine stress scenarios: back-pressure waves, bursty sources, restarts."""

import pytest

from repro.circuit import (
    DataflowCircuit,
    EagerFork,
    ElasticBuffer,
    FunctionalUnit,
    Join,
    Merge,
    Sequence,
    Sink,
    TransparentFifo,
)
from repro.sim import Engine


class TestBackpressure:
    def test_wave_through_deep_buffer_chain(self):
        """A fast producer into a slow consumer: every buffer fills, then
        drains; the stream survives intact."""
        n = 30
        c = DataflowCircuit("t")
        src = c.add(Sequence("src", list(range(n))))
        prev, port = src, 0
        for i in range(6):
            b = c.add(TransparentFifo(f"b{i}", slots=2))
            c.connect(prev, port, b, 0)
            prev, port = b, 0
        choke = c.add(ElasticBuffer("choke", slots=1))  # II=2 bottleneck
        sink = c.add(Sink("out"))
        c.connect(prev, port, choke, 0)
        c.connect(choke, 0, sink, 0)
        eng = Engine(c)
        eng.run(lambda: sink.count == n, max_cycles=500)
        assert sink.received == list(range(n))
        assert eng.cycle >= 2 * n  # bottleneck really throttled

    def test_merge_fairness_under_contention(self):
        """Two saturating producers into one merge: priority starves the
        low-priority side only while the high side has tokens."""
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1] * 5))
        b = c.add(Sequence("b", [2] * 5))
        m = c.add(Merge("m", 2))
        sink = c.add(Sink("out"))
        c.connect(a, 0, m, 0)
        c.connect(b, 0, m, 1)
        c.connect(m, 0, sink, 0)
        Engine(c).run(lambda: sink.count == 10, max_cycles=100)
        # Port 0 wins while it has tokens; port 1 drains afterwards.
        assert sink.received == [1] * 5 + [2] * 5

    def test_diamond_with_unbalanced_reconvergence(self):
        n = 12
        c = DataflowCircuit("t")
        src = c.add(Sequence("src", [float(i) for i in range(n)]))
        fork = c.add(EagerFork("fork", 2))
        long = c.add(FunctionalUnit("long", "pass", latency_override=9))
        fifo = c.add(TransparentFifo("fifo", slots=10))
        join = c.add(Join("join", 2, data_mode="tuple"))
        sink = c.add(Sink("out"))
        c.connect(src, 0, fork, 0)
        c.connect(fork, 0, long, 0)
        c.connect(fork, 1, fifo, 0)
        c.connect(long, 0, join, 0)
        c.connect(fifo, 0, join, 1)
        c.connect(join, 0, sink, 0)
        Engine(c).run(lambda: sink.count == n, max_cycles=500)
        assert sink.received == [(float(i), float(i)) for i in range(n)]


class TestEngineLifecycle:
    def test_two_engines_same_topology_independent(self):
        def build():
            c = DataflowCircuit("t")
            src = c.add(Sequence("src", [1, 2, 3]))
            sink = c.add(Sink("out"))
            c.connect(src, 0, sink, 0)
            return c, sink

        c1, s1 = build()
        c2, s2 = build()
        e1, e2 = Engine(c1), Engine(c2)
        e1.run(lambda: s1.count == 3, max_cycles=10)
        assert s2.count == 0
        e2.run(lambda: s2.count == 3, max_cycles=10)

    def test_engine_reset_on_construction(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("src", [1, 2]))
        sink = c.add(Sink("out"))
        c.connect(src, 0, sink, 0)
        Engine(c).run(lambda: sink.count == 2, max_cycles=10)
        # Constructing a new engine resets all unit state.
        eng2 = Engine(c)
        assert sink.count == 0
        eng2.run(lambda: sink.count == 2, max_cycles=10)
        assert sink.received == [1, 2]
