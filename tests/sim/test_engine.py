"""Engine behaviour: two-phase semantics, completion, deadlock, limits."""

import pytest

from repro.circuit import (
    DataflowCircuit,
    ElasticBuffer,
    FunctionalUnit,
    Join,
    Merge,
    Sequence,
    Sink,
)
from repro.errors import DeadlockError, SimulationError
from repro.sim import Engine, Trace

from tests.helpers import streaming_pipeline


class TestBasics:
    def test_pipeline_end_to_end(self):
        c, sink = streaming_pipeline([1.0, 2.0, 3.0], [("fadd", 10.0), ("fmul", 2.0)])
        eng = Engine(c)
        cycles = eng.run(lambda: sink.count == 3, max_cycles=200)
        assert sink.received == [22.0, 24.0, 26.0]
        assert cycles == eng.cycle

    def test_latency_additivity(self):
        c, sink = streaming_pipeline([1.0], [("fadd", 0.0), ("fmul", 1.0)])
        eng = Engine(c)
        eng.run(lambda: sink.count == 1, max_cycles=100)
        assert eng.cycle == 10 + 4 + 1

    def test_total_fires_counted(self):
        c, sink = streaming_pipeline([1.0], [("fadd", 0.0)])
        eng = Engine(c)
        eng.run(lambda: sink.count == 1, max_cycles=100)
        # Channels: src->fu, k->fu, fu->sink = 3 transfers.
        assert eng.total_fires == 3

    def test_run_cycles_exact(self):
        c, sink = streaming_pipeline([1.0], [("fadd", 0.0)])
        eng = Engine(c)
        eng.run_cycles(5)
        assert eng.cycle == 5

    def test_validation_runs_at_construction(self):
        c = DataflowCircuit("t")
        c.add(Sequence("s", [1]))
        with pytest.raises(Exception):
            Engine(c)

    def test_max_cycles_guard(self):
        c, sink = streaming_pipeline([1.0], [("fadd", 0.0)])
        with pytest.raises(SimulationError, match="exceeded"):
            Engine(c).run(lambda: False, max_cycles=20)


class TestDeadlockDetection:
    def test_starvation_is_deadlock(self):
        # A join whose second input never arrives.
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1]))
        b = c.add(Sequence("b", []))
        j = c.add(Join("j", 2))
        s = c.add(Sink("s"))
        c.connect(a, 0, j, 0)
        c.connect(b, 0, j, 1)
        c.connect(j, 0, s, 0)
        with pytest.raises(DeadlockError) as e:
            Engine(c, deadlock_window=10).run(lambda: s.count == 1, max_cycles=1000)
        assert e.value.blocked  # diagnosis attached
        assert e.value.cycle is not None

    def test_pipeline_drain_is_not_deadlock(self):
        # A deep pipeline makes no channel fires for `latency` cycles while
        # draining; that must not trip the detector.
        c, sink = streaming_pipeline([1.0], [("fadd", 0.0)])
        eng = Engine(c, deadlock_window=8)
        eng.run(lambda: sink.count == 1, max_cycles=100)

    def test_circular_wait_is_detected_as_starvation(self):
        # j1 and j2 wait on each other's outputs; no token can ever enter
        # the ring, so the diagnosis reports starvation.
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1]))
        b = c.add(Sequence("b", [2]))
        j1 = c.add(Join("j1", 2))
        j2 = c.add(Join("j2", 2))
        b1 = c.add(ElasticBuffer("b1", 1))
        b2 = c.add(ElasticBuffer("b2", 1))
        c.connect(a, 0, j1, 0)
        c.connect(b, 0, j2, 0)
        c.connect(j1, 0, b1, 0)
        c.connect(b1, 0, j2, 1)
        c.connect(j2, 0, b2, 0)
        c.connect(b2, 0, j1, 1)
        c.validate()
        with pytest.raises(DeadlockError) as e:
            Engine(c, deadlock_window=10).run(lambda: False, max_cycles=500)
        assert any("stuck" in line or "starved" in line for line in e.value.blocked)


class TestEventDrivenCorrectness:
    def test_idle_circuit_settles(self):
        c, sink = streaming_pipeline([1.0], [("fadd", 0.0)])
        eng = Engine(c)
        eng.run(lambda: sink.count == 1, max_cycles=100)
        # After completion nothing changes; stepping is a no-op.
        fires = eng.run_cycles(10)
        assert fires == 0

    def test_merge_nondeterminism_resolved_consistently(self):
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1, 3]))
        b = c.add(Sequence("b", [2, 4]))
        m = c.add(Merge("m", 2))
        s = c.add(Sink("s"))
        c.connect(a, 0, m, 0)
        c.connect(b, 0, m, 1)
        c.connect(m, 0, s, 0)
        Engine(c).run(lambda: s.count == 4, max_cycles=50)
        assert sorted(s.received) == [1, 2, 3, 4]

    def test_trace_records_watched_fires(self):
        c, sink = streaming_pipeline([1.0, 2.0], [("fmul", 3.0)])
        tr = Trace()
        eng = Engine(c, trace=tr)
        ch = tr.watch_unit_output(c, "fu0", 0)
        eng.run(lambda: sink.count == 2, max_cycles=50)
        assert tr.cycles_of(ch) == [4, 5]

    def test_trace_record_all(self):
        c, sink = streaming_pipeline([1.0], [("fmul", 3.0)])
        tr = Trace(record_all=True)
        eng = Engine(c, trace=tr)
        eng.run(lambda: sink.count == 1, max_cycles=50)
        assert len(tr.fires) == len(c.channels)
