"""Differential tests for the compiled static-schedule backend.

The compiled backend (`repro.sim.compiled`) must be *bit-identical* to the
event-driven engine — same cycle counts, same per-channel firing traces,
same final memory state — on every golden (kernel, technique) pair and on
randomized circuits.  The event-driven engine is the oracle: it computes
the handshake fixpoint by iteration, with no knowledge of the static
schedule, so any divergence indicates a compilation bug.

Also covered here: the compiler's acyclicity check (a combinational cycle
must be rejected with a diagnostic naming the cycle), the profiling layer,
and backend selection plumbing.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import critical_cfcs, insert_timing_buffers, place_buffers
from repro.baselines import inorder_share, naive_share
from repro.circuit import (
    DataflowCircuit,
    ElasticBuffer,
    EagerFork,
    FunctionalUnit,
    Join,
    Merge,
    Sequence,
    Sink,
    TransparentFifo,
)
from repro.core import crush
from repro.errors import CombinationalCycleError, ReproError
from repro.frontend import lower_kernel, simulate_kernel
from repro.frontend.kernels import KERNEL_NAMES, build
from repro.pipeline import TECHNIQUES, run_technique
from repro.sim import BACKENDS, SimProfile, Trace, create_engine
from repro.sim.compiled import CompiledEngine

PAIRS = [(k, t) for k in KERNEL_NAMES for t in TECHNIQUES]

SHARE = {"naive": naive_share, "inorder": inorder_share, "crush": crush}


def _prepare(kernel_name, technique, style="bb"):
    """Lower one golden configuration exactly like the pipeline does."""
    kernel = build(kernel_name, scale="small")
    lowered = lower_kernel(kernel, style=style)
    circuit = lowered.circuit
    cfcs = critical_cfcs(circuit)
    place_buffers(circuit, cfcs)
    SHARE[technique](circuit, cfcs)
    insert_timing_buffers(circuit)
    return lowered


# ---------------------------------------------------------------------------
# all 33 golden (kernel, technique) pairs: cycles, traces, memory


@pytest.mark.parametrize("kernel,technique", PAIRS,
                         ids=[f"{k}-{t}" for k, t in PAIRS])
def test_backends_bit_identical_on_goldens(kernel, technique):
    lowered = _prepare(kernel, technique)
    runs, traces = {}, {}
    for backend in BACKENDS:
        trace = Trace(record_all=True)
        runs[backend] = simulate_kernel(
            lowered, max_cycles=2_000_000, backend=backend, trace=trace,
        )
        traces[backend] = trace
    ev = runs["event"]
    for backend, run in runs.items():
        assert ev.cycles == run.cycles, backend
        assert ev.fires == run.fires, backend
        # Per-channel firing trace: same channels, same cycle lists.
        assert traces["event"].fires == traces[backend].fires, backend
        # Final memory state, array by array, bit for bit.
        assert set(ev.arrays) == set(run.arrays), backend
        for name in ev.arrays:
            assert np.array_equal(ev.arrays[name], run.arrays[name]), \
                (backend, name)


def test_backends_bit_identical_fast_token_sample():
    # The fast-token style exercises mux/branch loops whose precise
    # comb_deps the compiler depends on; one pair per technique suffices
    # here (the bb sweep above covers the full kernel matrix).
    for technique in TECHNIQUES:
        lowered = _prepare("gsum", technique, style="fast-token")
        cycles = {
            backend: simulate_kernel(
                lowered, max_cycles=2_000_000, backend=backend
            ).cycles
            for backend in BACKENDS
        }
        assert len(set(cycles.values())) == 1, cycles


def test_compiled_has_no_generic_fallbacks_on_goldens():
    # Every catalogue unit must compile to a specialized closure; a
    # generic fallback would silently reintroduce per-eval dispatch cost.
    from repro.sim import Memory

    lowered = _prepare("atax", "crush")
    kernel = lowered.kernel
    memory = Memory()
    for arr in kernel.arrays:
        memory.allocate(arr.name, arr.resolved_size(kernel.params))
    engine = create_engine(lowered.circuit, backend="compiled",
                           memory=memory)
    assert engine.generic_units == []


# ---------------------------------------------------------------------------
# randomized circuits (hypothesis): lockstep per-cycle equivalence


def _lockstep_compare(build_circuit, max_cycles=3_000):
    """Build the same circuit twice, run both backends in lockstep."""
    c1, done1 = build_circuit()
    c2, done2 = build_circuit()
    t1, t2 = Trace(record_all=True), Trace(record_all=True)
    e1 = create_engine(c1, backend="event", trace=t1)
    e2 = create_engine(c2, backend="compiled", trace=t2)
    for cycle in range(max_cycles):
        f1, f2 = e1.step(), e2.step()
        assert f1 == f2, f"fire count diverged at cycle {cycle}: {f1} != {f2}"
        if done1() and done2():
            break
    assert done1() and done2(), "circuits did not complete in lockstep"
    assert t1.fires == t2.fires
    for u1, u2 in zip(c1.units.values(), c2.units.values()):
        assert u1.state() == u2.state(), u1.name
    return c1, c2


values_strategy = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=1, max_size=10,
)
stages_strategy = st.lists(
    st.tuples(st.sampled_from(["fadd", "fmul", "fsub"]),
              st.floats(min_value=-4, max_value=4, allow_nan=False)),
    min_size=1, max_size=4,
)


@settings(max_examples=25, deadline=None)
@given(values=values_strategy, stages=stages_strategy,
       slots=st.integers(min_value=1, max_value=3),
       transparent=st.booleans())
def test_random_pipelines_bit_identical(values, stages, slots, transparent):
    def build_circuit():
        c = DataflowCircuit("rand")
        src = c.add(Sequence("src", list(values)))
        prev, port = src, 0
        for i, (op, const) in enumerate(stages):
            buf_cls = TransparentFifo if transparent else ElasticBuffer
            buf = c.add(buf_cls(f"buf{i}", slots=slots))
            fu = c.add(FunctionalUnit(f"fu{i}", op))
            k = c.add(Sequence(f"k{i}", [const] * len(values)))
            c.connect(prev, port, buf, 0)
            c.connect(buf, 0, fu, 0)
            c.connect(k, 0, fu, 1)
            prev, port = fu, 0
        sink = c.add(Sink("out"))
        c.connect(prev, port, sink, 0)
        c.validate()
        return c, lambda: sink.count == len(values)

    c1, c2 = _lockstep_compare(build_circuit)
    s1 = c1.units["out"]
    s2 = c2.units["out"]
    assert s1.received == s2.received


@settings(max_examples=15, deadline=None)
@given(values=values_strategy,
       n_out=st.integers(min_value=2, max_value=4),
       latency=st.integers(min_value=0, max_value=6))
def test_random_fork_join_bit_identical(values, n_out, latency):
    def build_circuit():
        c = DataflowCircuit("rand")
        src = c.add(Sequence("src", list(values)))
        f = c.add(EagerFork("f", n_out))
        j = c.add(Join("j", n_out))
        fu = c.add(FunctionalUnit("fu", "pass", latency_override=latency))
        sink = c.add(Sink("out"))
        c.connect(src, 0, f, 0)
        for i in range(n_out):
            b = c.add(ElasticBuffer(f"b{i}", slots=1 + i % 2))
            c.connect(f, i, b, 0)
            c.connect(b, 0, j, i)
        c.connect(j, 0, fu, 0)
        c.connect(fu, 0, sink, 0)
        c.validate()
        return c, lambda: sink.count == len(values)

    c1, c2 = _lockstep_compare(build_circuit)
    assert c1.units["out"].received == c2.units["out"].received


# ---------------------------------------------------------------------------
# acyclicity check


def _comb_loop_circuit():
    """A handshake loop with no sequential element: a combinational cycle."""
    c = DataflowCircuit("loop")
    src = c.add(Sequence("src", [1.0]))
    m = c.add(Merge("m", 2))
    fu = c.add(FunctionalUnit("fu", "pass"))  # latency 0: fully comb
    f = c.add(EagerFork("f", 2))
    sink = c.add(Sink("out"))
    c.connect(src, 0, m, 0)
    c.connect(m, 0, fu, 0)
    c.connect(fu, 0, f, 0)
    c.connect(f, 0, sink, 0)
    c.connect(f, 1, m, 1)  # back-edge with no buffer
    c.validate()
    return c


def test_compiler_rejects_combinational_cycle():
    with pytest.raises(CombinationalCycleError) as exc:
        CompiledEngine(_comb_loop_circuit())
    msg = str(exc.value)
    # The diagnostic must name the cycle and suggest the fix.
    assert "combinational cycle" in msg
    assert "depends on" in msg
    assert "ElasticBuffer" in msg
    # Units on the loop are identified by name.
    assert "fu" in msg and "m" in msg


def test_buffered_loop_compiles():
    # The same loop with a sequential element on the back-edge is legal.
    c = DataflowCircuit("loop")
    src = c.add(Sequence("src", [1.0]))
    m = c.add(Merge("m", 2))
    fu = c.add(FunctionalUnit("fu", "pass"))
    f = c.add(EagerFork("f", 2))
    b = c.add(ElasticBuffer("b", slots=1))
    sink = c.add(Sink("out"))
    c.connect(src, 0, m, 0)
    c.connect(m, 0, fu, 0)
    c.connect(fu, 0, f, 0)
    c.connect(f, 0, sink, 0)
    c.connect(f, 1, b, 0)
    c.connect(b, 0, m, 1)
    c.validate()
    CompiledEngine(c)  # must not raise


# ---------------------------------------------------------------------------
# profiling layer


def test_profile_hook_on_instrumented_backends():
    # The codegen backend has no per-unit instrumentation points and
    # refuses a profile (covered in tests/sim/test_codegen.py); the
    # interpreted backends both drive it.
    lowered = _prepare("gsum", "crush")
    for backend in ("event", "compiled"):
        prof = SimProfile()
        run = simulate_kernel(
            lowered, max_cycles=2_000_000, backend=backend, profile=prof,
        )
        assert prof.backend == backend
        assert prof.cycles == run.cycles
        assert prof.fires == run.fires
        assert prof.total_evals > 0
        assert prof.wall_s > 0
        report = prof.report(top=3)
        assert backend in report
        assert "cycles/s" in report or "throughput" in report
        d = prof.to_dict()
        assert d["backend"] == backend
        assert d["cycles"] == run.cycles


def test_profile_hot_units_ranked():
    lowered = _prepare("gsum", "crush")
    prof = SimProfile()
    simulate_kernel(lowered, backend="compiled", profile=prof)
    hot = prof.hot_units(top=5)
    assert len(hot) <= 5
    counts = [n for _, n in hot]
    assert counts == sorted(counts, reverse=True)


# ---------------------------------------------------------------------------
# backend selection plumbing


def test_create_engine_rejects_unknown_backend():
    c = DataflowCircuit("t")
    src = c.add(Sequence("src", [1.0]))
    sink = c.add(Sink("out"))
    c.connect(src, 0, sink, 0)
    with pytest.raises(ReproError):
        create_engine(c, backend="verilator")


def test_run_technique_records_backend_provenance():
    for backend in BACKENDS:
        row = run_technique("gsum", "crush", scale="small",
                            sim_backend=backend)
        assert row.sim_backend == backend
    # All backends must produce the same row metrics.
    rows = [run_technique("gsum", "crush", scale="small", sim_backend=b)
            for b in BACKENDS]
    for row in rows[1:]:
        assert (rows[0].deterministic_metrics()
                == row.deterministic_metrics())
