"""Differential and contract tests for batched (lane-parallel) simulation.

The batched engines (`repro.sim.batched`) promise bit-identical results
to B scalar runs — per-lane cycle counts, fire counts, memory contents
and sink values — whether the batch runs lockstep (shared control, lane
tuples for data), promotes to mask-lane (MIMD) execution after a
:class:`LaneDivergence` (generated-loop backends), or re-executes each
lane on a scalar engine (event backend).  The scalar engines are the
oracle.

Also covered: the observer/fast-forward refusal contract (batched mode
rejects Trace/SimProfile/sanitizer/fast-forward with clean errors, the
profile CLI exits 2 on ``--lanes``), per-seed sweep cache rows
(batched-vs-scalar and warm-vs-cold equivalence), and the codegen disk
cache's laned/scalar key separation (a laned module must never poison a
scalar run, or vice versa).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import critical_cfcs, insert_timing_buffers, place_buffers
from repro.baselines import inorder_share, naive_share
from repro.circuit import (
    DataflowCircuit,
    ElasticBuffer,
    EagerFork,
    FunctionalUnit,
    Join,
    Sequence,
    Sink,
    TransparentFifo,
)
from repro.core import crush
from repro.errors import SimulationError
from repro.frontend import lower_kernel, simulate_kernel, simulate_kernel_batch
from repro.frontend.interp import run_reference
from repro.frontend.kernels import KERNEL_NAMES, build
from repro.frontend.runner import default_inputs
from repro.pipeline import TECHNIQUES, run_technique, run_technique_batch
from repro.sim import (
    BACKENDS,
    Memory,
    SimProfile,
    Trace,
    create_engine,
)
from repro.sim.batched import BatchedCodegenEngine
from repro.sim.codegen import CodegenEngine, generate_source, source_key
from repro.sim.signal_graph import compile_schedule

PAIRS = [(k, t) for k in KERNEL_NAMES for t in TECHNIQUES]
SHARE = {"naive": naive_share, "inorder": inorder_share, "crush": crush}

#: Distinct input sets; lane l of a B-lane batch simulates SEEDS[l].
SEEDS = (7, 11, 13, 17, 19, 23, 29)
LANE_COUNTS = (1, 2, 7)


def _prepare(kernel_name, technique, style="bb"):
    """Lower one golden configuration exactly like the pipeline does."""
    kernel = build(kernel_name, scale="small")
    lowered = lower_kernel(kernel, style=style)
    circuit = lowered.circuit
    cfcs = critical_cfcs(circuit)
    place_buffers(circuit, cfcs)
    SHARE[technique](circuit, cfcs)
    insert_timing_buffers(circuit)
    return lowered


def _lane_memories(kernel, seeds):
    """One initialized Memory + expected-writes target per seed."""
    memories, expected = [], []
    for s in seeds:
        inputs = default_inputs(kernel, seed=s)
        ref = run_reference(kernel, inputs)
        mem = Memory()
        for arr in kernel.arrays:
            size = arr.resolved_size(kernel.params)
            mem.allocate(arr.name, size, init=inputs[arr.name])
        memories.append(mem)
        expected.append(ref.writes)
    return memories, expected


def _run_batched(lowered, seeds, backend):
    """Drive one batched engine the way ``simulate_kernel_batch`` does."""
    kernel = lowered.kernel
    memories, expected = _lane_memories(kernel, seeds)
    engine = create_engine(
        lowered.circuit, backend=backend, lanes=len(seeds), memories=memories,
    )
    end = lowered.end_sink

    def done_lane(lane):
        return (
            engine.sink_count(end, lane) >= 1
            and memories[lane].writes >= expected[lane]
        )

    cycles = engine.run_lanes(
        done_lane, max_cycles=2_000_000,
        uniform_done=(len(set(expected)) == 1),
    )
    return engine, memories, cycles


# ---------------------------------------------------------------------------
# all 33 goldens x every backend x B in {1, 2, 7}: bit-identical to scalar


@pytest.mark.parametrize("kernel,technique", PAIRS,
                         ids=[f"{k}-{t}" for k, t in PAIRS])
def test_batched_bit_identical_on_goldens(kernel, technique):
    lowered = _prepare(kernel, technique)
    scalar = {
        s: simulate_kernel(lowered, seed=s, backend="compiled")
        for s in SEEDS[:max(LANE_COUNTS)]
    }
    for lanes in LANE_COUNTS:
        seeds = SEEDS[:lanes]
        for backend in BACKENDS:
            engine, memories, cycles = _run_batched(lowered, seeds, backend)
            for lane, seed in enumerate(seeds):
                want = scalar[seed]
                label = f"{backend} B={lanes} lane={lane}"
                assert cycles[lane] == want.cycles, label
                assert engine.lane_fires[lane] == want.fires, label
                assert memories[lane].writes == want.reference.writes, label
                for name in want.arrays:
                    got = memories[lane].dump(name)
                    assert np.array_equal(got, want.arrays[name]), (
                        f"{label}: array {name}"
                    )


def test_simulate_kernel_batch_matches_scalar_runs():
    lowered = _prepare("bicg", "crush")
    seeds = [7, 11, 13]
    runs = simulate_kernel_batch(lowered, seeds, backend="codegen")
    for seed, run in zip(seeds, runs):
        want = simulate_kernel(lowered, seed=seed, backend="codegen")
        assert run.cycles == want.cycles
        assert run.fires == want.fires
        assert run.checked
        for name in want.arrays:
            assert np.array_equal(run.arrays[name], want.arrays[name])


def test_run_technique_batch_rows_match_scalar():
    rows = run_technique_batch(
        "atax", "crush", seeds=[7, 11], scale="small", sim_backend="codegen",
    )
    for row in rows:
        want = run_technique(
            "atax", "crush", scale="small", sim_backend="codegen",
            seed=row.seed,
        )
        assert row.deterministic_metrics() == want.deterministic_metrics()
        assert row.seed == want.seed


# ---------------------------------------------------------------------------
# divergence mechanics (mask promotion, done-mask freezing, per-lane results)


def test_lockstep_kernel_runs_without_divergence():
    lowered = _prepare("atax", "crush")
    engine, _, _ = _run_batched(lowered, SEEDS[:3], "codegen")
    assert engine.fallback_lanes == 0
    assert engine.mask_promotions == 0
    assert engine.divergence is None
    assert engine.done_mask == 0b111


def test_divergent_kernel_promotes_to_mask_lanes():
    # gsumif branches on input data: distinct lanes must diverge, and the
    # engine must promote to mask-lane execution (no scalar fallback) yet
    # still deliver bit-exact per-lane results.
    lowered = _prepare("gsumif", "crush")
    engine, memories, cycles = _run_batched(lowered, SEEDS[:3], "codegen")
    assert engine.fallback_lanes == 0
    assert engine.mask_promotions == 1
    assert engine.divergence is not None
    assert engine.divergence.channel
    assert engine.divergence.cycle is not None
    assert engine.promotion_cycle == engine.divergence.cycle
    assert engine.done_mask == 0b111
    for lane, seed in enumerate(SEEDS[:3]):
        want = simulate_kernel(lowered, seed=seed, backend="codegen")
        assert cycles[lane] == want.cycles
        assert engine.lane_fires[lane] == want.fires
        for name in want.arrays:
            assert np.array_equal(memories[lane].dump(name),
                                  want.arrays[name])


def _chain_circuit(values):
    """values -> fadd(+1) -> sink; scalar-control, no memory."""
    c = DataflowCircuit("chain")
    src = c.add(Sequence("src", list(values)))
    one = c.add(Sequence("one", [1.0] * len(values)))
    buf = c.add(ElasticBuffer("buf", slots=2))
    fu = c.add(FunctionalUnit("fu", "fadd"))
    sink = c.add(Sink("out"))
    c.connect(src, 0, buf, 0)
    c.connect(buf, 0, fu, 0)
    c.connect(one, 0, fu, 1)
    c.connect(fu, 0, sink, 0)
    c.validate()
    return c


def test_partial_done_mask_freezes_lanes_via_mask_promotion():
    # Per-lane done predicates that complete at different times force a
    # partial done-mask: the engine must freeze early lanes exactly where
    # a scalar run with the same predicate would stop.
    values = [2.0, 3.0, 5.0, 8.0]
    targets = [1, 4, 2]  # lane l is done after targets[l] sink tokens
    c = _chain_circuit(values)
    engine = create_engine(c, backend="compiled", lanes=3)
    cycles = engine.run_lanes(
        lambda lane: engine.sink_count("out", lane) >= targets[lane],
        uniform_done=False,
    )
    assert engine.fallback_lanes == 0  # partial mask -> promotion, not scalar
    assert engine.mask_promotions == 1
    assert engine.divergence is not None
    assert engine.divergence.channel == "done"
    for lane, target in enumerate(targets):
        c_ref = _chain_circuit(values)
        ref = create_engine(c_ref, backend="compiled")
        sink = c_ref.units["out"]
        ref_cycles = ref.run(lambda: sink.count >= target)
        assert cycles[lane] == ref_cycles, lane
        assert engine.sink_count("out", lane) == target
        assert engine.sink_received("out", lane) == sink.received


# ---------------------------------------------------------------------------
# hypothesis: random circuits x lane counts, batched lanes == scalar run


values_strategy = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=1, max_size=10,
)
stages_strategy = st.lists(
    st.tuples(st.sampled_from(["fadd", "fmul", "fsub"]),
              st.floats(min_value=-4, max_value=4, allow_nan=False)),
    min_size=1, max_size=4,
)


def _pipeline_circuit(values, stages, slots, transparent):
    c = DataflowCircuit("rand")
    src = c.add(Sequence("src", list(values)))
    prev, port = src, 0
    for i, (op, const) in enumerate(stages):
        buf_cls = TransparentFifo if transparent else ElasticBuffer
        buf = c.add(buf_cls(f"buf{i}", slots=slots))
        fu = c.add(FunctionalUnit(f"fu{i}", op))
        k = c.add(Sequence(f"k{i}", [const] * len(values)))
        c.connect(prev, port, buf, 0)
        c.connect(buf, 0, fu, 0)
        c.connect(k, 0, fu, 1)
        prev, port = fu, 0
    sink = c.add(Sink("out"))
    c.connect(prev, port, sink, 0)
    c.validate()
    return c


def _assert_lanes_match_scalar(make_circuit, n_tokens, lanes, backend):
    c_ref = make_circuit()
    ref = create_engine(c_ref, backend="event")
    sink = c_ref.units["out"]
    ref_cycles = ref.run(lambda: sink.count >= n_tokens, max_cycles=3_000)

    c_b = make_circuit()
    engine = create_engine(c_b, backend=backend, lanes=lanes)
    cycles = engine.run_lanes(
        lambda lane: engine.sink_count("out", lane) >= n_tokens,
        max_cycles=3_000, uniform_done=True,
    )
    assert engine.fallback_lanes == 0
    for lane in range(lanes):
        assert cycles[lane] == ref_cycles, lane
        assert engine.lane_fires[lane] == ref.total_fires, lane
        assert engine.sink_received("out", lane) == sink.received, lane


@settings(max_examples=20, deadline=None)
@given(values=values_strategy, stages=stages_strategy,
       slots=st.integers(min_value=1, max_value=3),
       transparent=st.booleans(),
       lanes=st.integers(min_value=1, max_value=5),
       backend=st.sampled_from(["compiled", "codegen"]))
def test_random_pipelines_batched_lanes_match_scalar(
        values, stages, slots, transparent, lanes, backend):
    _assert_lanes_match_scalar(
        lambda: _pipeline_circuit(values, stages, slots, transparent),
        len(values), lanes, backend,
    )


@settings(max_examples=12, deadline=None)
@given(values=values_strategy,
       n_out=st.integers(min_value=2, max_value=4),
       latency=st.integers(min_value=0, max_value=6),
       lanes=st.integers(min_value=1, max_value=4))
def test_random_fork_join_batched_lanes_match_scalar(
        values, n_out, latency, lanes):
    def make_circuit():
        c = DataflowCircuit("rand")
        src = c.add(Sequence("src", list(values)))
        f = c.add(EagerFork("f", n_out))
        j = c.add(Join("j", n_out))
        fu = c.add(FunctionalUnit("fu", "pass", latency_override=latency))
        sink = c.add(Sink("out"))
        c.connect(src, 0, f, 0)
        for i in range(n_out):
            b = c.add(ElasticBuffer(f"b{i}", slots=1 + i % 2))
            c.connect(f, i, b, 0)
            c.connect(b, 0, j, i)
        c.connect(j, 0, fu, 0)
        c.connect(fu, 0, sink, 0)
        c.validate()
        return c

    _assert_lanes_match_scalar(make_circuit, len(values), lanes, "codegen")


# ---------------------------------------------------------------------------
# observer / fast-forward refusal contract


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_batched_refuses_observers(backend):
    c = _chain_circuit([1.0, 2.0])
    with pytest.raises(SimulationError, match="Trace"):
        create_engine(c, backend=backend, lanes=2, trace=Trace())
    with pytest.raises(SimulationError, match="SimProfile"):
        create_engine(c, backend=backend, lanes=2, profile=SimProfile())
    with pytest.raises(SimulationError, match="[Ss]anitizer"):
        create_engine(c, backend=backend, lanes=2, sanitize=True)
    with pytest.raises(SimulationError, match="fast-forward"):
        create_engine(c, backend=backend, lanes=2, fast_forward=True)


def test_batched_refuses_env_defaulted_observers(monkeypatch):
    c = _chain_circuit([1.0])
    monkeypatch.setenv("REPRO_SIM_SANITIZE", "1")
    with pytest.raises(SimulationError, match="[Ss]anitizer"):
        create_engine(c, backend="compiled", lanes=2)
    monkeypatch.delenv("REPRO_SIM_SANITIZE")
    monkeypatch.setenv("REPRO_SIM_FF", "1")
    with pytest.raises(SimulationError, match="fast-forward"):
        create_engine(c, backend="codegen", lanes=2)
    # Explicit opt-out must win over the environment, as in scalar mode.
    monkeypatch.setenv("REPRO_SIM_FF", "0")
    eng = create_engine(c, backend="codegen", lanes=2)
    assert eng.lanes == 2


def test_create_engine_lane_argument_validation():
    c = _chain_circuit([1.0])
    with pytest.raises(SimulationError, match="lanes"):
        create_engine(c, backend="compiled", lanes=0)
    with pytest.raises(SimulationError, match="memories"):
        create_engine(c, backend="compiled", memories=[Memory()])
    with pytest.raises(SimulationError, match="memor"):
        create_engine(c, backend="compiled", lanes=2, memory=Memory())
    # This circuit has no load/store ports: lane memories are meaningless.
    with pytest.raises(SimulationError, match="memor"):
        create_engine(c, backend="compiled", lanes=2,
                      memories=[Memory(), Memory()])
    # And a memory-using circuit must get exactly one memory per lane.
    lowered = _prepare("atax", "crush")
    memories, _ = _lane_memories(lowered.kernel, SEEDS[:2])
    with pytest.raises(SimulationError, match="per lane"):
        create_engine(lowered.circuit, backend="compiled", lanes=3,
                      memories=memories)


def test_profile_cli_rejects_lanes_with_exit_2(capsys):
    from repro.cli import main

    rc = main(["profile", "atax", "--lanes", "4"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "scalar-only" in err and "--lanes" in err


def test_run_cli_rejects_observers_with_multi_seed_batch(capsys):
    from repro.cli import main

    rc = main(["run", "atax", "crush", "--seeds", "7,11", "--sanitize"])
    assert rc == 2
    assert "scalar-only" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# sweep cache rows: batched == scalar, warm == cold, per input set


def test_batched_sweep_writes_scalar_equivalent_cache_rows(tmp_path):
    from repro.sweep import ResultCache, build_matrix, run_sweep

    jobs = build_matrix(
        kernels=["atax"], techniques=["crush"], scale="small",
        sim_backend="codegen", seeds=(7, 11, 13),
    )
    cache_scalar = ResultCache(tmp_path / "scalar")
    cache_batched = ResultCache(tmp_path / "batched")

    out_scalar = run_sweep(jobs, cache=cache_scalar).raise_on_failure()
    out_batched = run_sweep(
        jobs, cache=cache_batched, lanes=3
    ).raise_on_failure()

    for rec_s, rec_b in zip(out_scalar.records, out_batched.records):
        assert rec_s.job == rec_b.job
        assert (rec_s.result.deterministic_metrics()
                == rec_b.result.deterministic_metrics())

    # Content-addressed row files: same keys, one per input set.
    keys_scalar = sorted(p.name for p in (tmp_path / "scalar").glob("*/*.json"))
    keys_batched = sorted(p.name for p in (tmp_path / "batched").glob("*/*.json"))
    assert keys_scalar == keys_batched
    assert len(keys_scalar) == len(jobs)

    # Warm-vs-cold, both directions: a batched sweep fully hits a cache a
    # scalar sweep wrote, and vice versa.
    warm_b = run_sweep(jobs, cache=cache_scalar, lanes=3)
    assert warm_b.cache_hits == len(jobs)
    warm_s = run_sweep(jobs, cache=cache_batched)
    assert warm_s.cache_hits == len(jobs)


def test_batched_sweep_isolates_failing_batches(tmp_path):
    # A job doomed to fail (max_cycles far too small) must fail as its
    # own record without dragging down its batch siblings.
    from repro.sweep import ResultCache, SweepJob, run_sweep

    good = [SweepJob("atax", "crush", scale="small", sim_backend="codegen",
                     seed=s) for s in (7, 11)]
    bad = SweepJob("atax", "crush", scale="small", sim_backend="codegen",
                   seed=13, max_cycles=3)
    out = run_sweep(good + [bad], cache=ResultCache(tmp_path), lanes=4,
                    retries=0)
    assert [r.ok for r in out.records] == [True, True, False]
    assert out.records[2].error_type == "SimulationError"


# ---------------------------------------------------------------------------
# codegen disk cache: laned and scalar modules must never collide


@pytest.fixture
def codegen_cache(tmp_path, monkeypatch):
    """Isolated disk cache + empty in-process memos for every test."""
    import repro.sim.batched as bt
    import repro.sim.codegen as cg

    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "cgc"))
    monkeypatch.setattr(cg, "_MODULE_CACHE", type(cg._MODULE_CACHE)())
    monkeypatch.setattr(bt, "_INPROC_CACHE", type(bt._INPROC_CACHE)())
    return tmp_path / "cgc"


def test_laned_and_scalar_sources_have_distinct_keys(codegen_cache):
    c = _chain_circuit([1.0, 2.0])
    schedule = compile_schedule(c)
    scalar_src = generate_source(c, schedule)
    laned_src = generate_source(c, schedule, lanes=True)
    assert scalar_src != laned_src
    assert source_key(scalar_src) != source_key(laned_src)


def test_laned_module_cannot_poison_scalar_runs(codegen_cache):
    values = [1.0, 2.0, 3.0]
    # Populate the disk cache with the laned module first.
    c_b = _chain_circuit(values)
    batched = BatchedCodegenEngine(c_b, lanes=2)
    batched.run_lanes(
        lambda lane: batched.sink_count("out", lane) >= len(values),
        uniform_done=True,
    )
    # A scalar engine on the same circuit must get the scalar module...
    c_s = _chain_circuit(values)
    scalar = CodegenEngine(c_s)
    assert scalar.codegen_key != batched.codegen_key
    sink = c_s.units["out"]
    scalar.run(lambda: sink.count >= len(values))
    assert sink.received == batched.sink_received("out", 0)
    # ...and both modules coexist on disk under their own keys.
    cached = {p.stem for p in codegen_cache.glob("*/*.py")}
    assert {scalar.codegen_key, batched.codegen_key} <= cached


def test_batched_codegen_reloads_laned_module_from_disk(codegen_cache):
    import repro.sim.codegen as cg

    values = [4.0, 5.0]
    first = BatchedCodegenEngine(_chain_circuit(values), lanes=3)
    assert first.codegen_origin == "generated"
    # New in-process memo: the second construction must come from disk.
    cg._MODULE_CACHE.clear()
    second = BatchedCodegenEngine(_chain_circuit(values), lanes=3)
    assert second.codegen_key == first.codegen_key
    assert second.codegen_origin == "disk"
    # Same module object serves any lane count: it binds LB at runtime.
    third = BatchedCodegenEngine(_chain_circuit(values), lanes=5)
    assert third.codegen_key == first.codegen_key
    assert third.codegen_origin == "memory"
