"""Functional units: operator semantics, pipelining, single-enable stalls."""

import pytest

from repro.circuit import (
    DataflowCircuit,
    ElasticBuffer,
    FunctionalUnit,
    OPS,
    Sequence,
    Sink,
    op_spec,
)
from repro.errors import CircuitError
from repro.sim import Engine, Trace


def binary_op_circuit(op, a_vals, b_vals, **fu_kwargs):
    c = DataflowCircuit("t")
    a = c.add(Sequence("a", a_vals))
    b = c.add(Sequence("b", b_vals))
    fu = c.add(FunctionalUnit("fu", op, **fu_kwargs))
    sink = c.add(Sink("out"))
    c.connect(a, 0, fu, 0)
    c.connect(b, 0, fu, 1)
    c.connect(fu, 0, sink, 0)
    return c, fu, sink


class TestOperatorCatalogue:
    def test_spec_lookup(self):
        assert op_spec("fadd").latency == 10
        assert op_spec("fmul").latency == 4
        assert op_spec("iadd").latency == 0

    def test_unknown_op_rejected(self):
        with pytest.raises(CircuitError, match="unknown operator"):
            op_spec("bogus")
        with pytest.raises(CircuitError):
            FunctionalUnit("x", "bogus")

    def test_shareable_flags(self):
        shareable = {m for m, s in OPS.items() if s.shareable}
        assert {"fadd", "fsub", "fmul", "fdiv"} <= shareable
        assert "iadd" not in shareable
        assert "icmp_lt" not in shareable

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("fadd", 1.5, 2.25, 3.75),
            ("fsub", 5.0, 1.5, 3.5),
            ("fmul", 3.0, 4.0, 12.0),
            ("fdiv", 9.0, 3.0, 3.0),
            ("iadd", 3, 4, 7),
            ("imul", 3, 4, 12),
            ("icmp_lt", 3, 4, True),
            ("icmp_eq", 4, 4, True),
            ("fcmp_ge", 2.0, 3.0, False),
        ],
    )
    def test_operator_semantics(self, op, a, b, expected):
        c, _, sink = binary_op_circuit(op, [a], [b])
        Engine(c).run(lambda: sink.count == 1, max_cycles=100)
        assert sink.received == [expected]

    def test_fdiv_by_zero_raises(self):
        c, _, sink = binary_op_circuit("fdiv", [1.0], [0.0])
        with pytest.raises(CircuitError, match="division by zero"):
            Engine(c).run(lambda: sink.count == 1, max_cycles=100)


class TestPipelining:
    def test_latency_matches_spec(self):
        c, fu, sink = binary_op_circuit("fmul", [2.0], [3.0])
        eng = Engine(c)
        eng.run(lambda: sink.count == 1, max_cycles=50)
        assert eng.cycle == op_spec("fmul").latency + 1

    def test_ii_one_when_unobstructed(self):
        n = 5
        c, fu, sink = binary_op_circuit("fadd", [float(i) for i in range(n)], [0.0] * n)
        trace = Trace()
        eng = Engine(c, trace=trace)
        ch = trace.watch_unit_input(c, "out", 0)
        eng.run(lambda: sink.count == n, max_cycles=100)
        assert trace.interarrival(ch) == [1] * (n - 1)

    def test_latency_override(self):
        c, fu, sink = binary_op_circuit("fadd", [1.0], [1.0], latency_override=3)
        eng = Engine(c)
        eng.run(lambda: sink.count == 1, max_cycles=20)
        assert eng.cycle == 4

    def test_single_enable_stalls_whole_pipeline(self):
        # Two tokens in flight; the head stalls behind a 1-slot buffer with
        # a blocked consumer: the younger token must stall too (no
        # compaction), which is the head-of-line behaviour the paper relies
        # on (Section 6.3).
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1.0, 2.0, 3.0]))
        b = c.add(Sequence("b", [0.0, 0.0, 0.0]))
        fu = c.add(FunctionalUnit("fu", "fadd", latency_override=4))
        choke = c.add(ElasticBuffer("choke", slots=1))
        sink = c.add(Sink("out"))
        c.connect(a, 0, fu, 0)
        c.connect(b, 0, fu, 1)
        c.connect(fu, 0, choke, 0)
        c.connect(choke, 0, sink, 0)
        eng = Engine(c)
        eng.run(lambda: sink.count == 3, max_cycles=100)
        assert sink.received == [1.0, 2.0, 3.0]
        # With a 1-slot choke (II=2) the total run is longer than the
        # unobstructed 4 + 3 cycles.
        assert eng.cycle > 7

    def test_tokens_in_flight_property(self):
        c, fu, sink = binary_op_circuit("fadd", [1.0, 2.0], [0.0, 0.0])
        eng = Engine(c)
        eng.step()
        eng.step()
        assert fu.tokens_in_flight == 2
        eng.run(lambda: sink.count == 2, max_cycles=50)
        assert fu.tokens_in_flight == 0

    def test_quiescent_reporting(self):
        c, fu, sink = binary_op_circuit("fadd", [1.0], [1.0])
        eng = Engine(c)
        assert fu.quiescent()  # empty
        eng.step()
        assert not fu.quiescent()  # token draining toward the head
        eng.run(lambda: sink.count == 1, max_cycles=50)
        assert fu.quiescent()


class TestConstOperands:
    def test_const_slot_1(self):
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1, 2, 3]))
        fu = c.add(FunctionalUnit("fu", "iadd", const_ops={1: 10}))
        sink = c.add(Sink("out"))
        c.connect(a, 0, fu, 0)
        c.connect(fu, 0, sink, 0)
        Engine(c).run(lambda: sink.count == 3, max_cycles=50)
        assert sink.received == [11, 12, 13]

    def test_const_slot_0(self):
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1, 2]))
        fu = c.add(FunctionalUnit("fu", "isub", const_ops={0: 10}))
        sink = c.add(Sink("out"))
        c.connect(a, 0, fu, 0)
        c.connect(fu, 0, sink, 0)
        Engine(c).run(lambda: sink.count == 2, max_cycles=50)
        assert sink.received == [9, 8]

    def test_all_const_rejected(self):
        with pytest.raises(CircuitError, match="live operand"):
            FunctionalUnit("fu", "iadd", const_ops={0: 1, 1: 2})

    def test_bundled_with_consts_rejected(self):
        with pytest.raises(CircuitError):
            FunctionalUnit("fu", "fadd", bundled=True, const_ops={0: 1.0})

    def test_const_slot_out_of_range(self):
        with pytest.raises(CircuitError):
            FunctionalUnit("fu", "iadd", const_ops={5: 1})


class TestBundledForm:
    def test_bundled_unit_computes_tuple(self):
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [(2.0, 3.0), (4.0, 5.0)]))
        fu = c.add(FunctionalUnit("fu", "fmul", bundled=True))
        sink = c.add(Sink("out"))
        c.connect(a, 0, fu, 0)
        c.connect(fu, 0, sink, 0)
        Engine(c).run(lambda: sink.count == 2, max_cycles=50)
        assert sink.received == [6.0, 20.0]

    def test_bundled_has_single_port(self):
        fu = FunctionalUnit("fu", "fadd", bundled=True)
        assert fu.n_in == 1
