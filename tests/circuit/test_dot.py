"""DOT export sanity."""

from repro.circuit import DataflowCircuit, FunctionalUnit, Sequence, Sink, to_dot, write_dot


def test_dot_contains_units_and_edges(tmp_path):
    c = DataflowCircuit("demo")
    a = c.add(Sequence("a", [1.0]))
    b = c.add(Sequence("b", [2.0]))
    fu = c.add(FunctionalUnit("mul", "fmul"))
    s = c.add(Sink("out"))
    c.connect(a, 0, fu, 0)
    ch = c.connect(b, 0, fu, 1)
    ch.attrs["backedge"] = True
    c.connect(fu, 0, s, 0, width=0)
    dot = to_dot(c)
    assert 'digraph "demo"' in dot
    assert '"mul"' in dot and "box" in dot
    assert '"a" -> "mul"' in dot
    assert "color=red" in dot  # backedge highlighted
    assert "style=dashed" in dot  # dataless channel
    path = tmp_path / "c.dot"
    write_dot(c, str(path))
    assert path.read_text() == dot
