"""Channel and PortRef datatypes."""

from repro.circuit import Channel, PortRef
from repro.circuit.channel import COND_WIDTH, CTRL_WIDTH, DATA_WIDTH


class TestPortRef:
    def test_str(self):
        assert str(PortRef("fadd0", 1)) == "fadd0[1]"

    def test_hashable_and_equal(self):
        assert PortRef("a", 0) == PortRef("a", 0)
        assert len({PortRef("a", 0), PortRef("a", 0), PortRef("a", 1)}) == 2


class TestChannel:
    def test_label_without_name(self):
        ch = Channel(0, PortRef("a", 0), PortRef("b", 1))
        assert ch.label() == "a[0]->b[1]"

    def test_label_with_name(self):
        ch = Channel(0, PortRef("a", 0), PortRef("b", 1), name="acc")
        assert "acc" in ch.label() and "a[0]->b[1]" in ch.label()

    def test_default_width_and_attrs(self):
        ch = Channel(3, PortRef("a", 0), PortRef("b", 0))
        assert ch.width == DATA_WIDTH
        ch.attrs["tokens"] = 1
        assert ch.attrs == {"tokens": 1}

    def test_width_constants(self):
        assert DATA_WIDTH == 32 and COND_WIDTH == 1 and CTRL_WIDTH == 0
