"""Endpoints (Entry/Sequence/Sink/Constant), credit counters, memory ports."""

import pytest

from repro.circuit import (
    Constant,
    CreditCounter,
    DataflowCircuit,
    Entry,
    EagerFork,
    FunctionalUnit,
    Join,
    LoadPort,
    Sequence,
    Sink,
    StorePort,
)
from repro.errors import CircuitError, SimulationError
from repro.sim import Engine, Memory


class TestEndpoints:
    def test_entry_emits_exactly_count(self):
        c = DataflowCircuit("t")
        e = c.add(Entry("e", value=42, count=3))
        s = c.add(Sink("s"))
        c.connect(e, 0, s, 0)
        Engine(c).run_cycles(10)
        assert s.received == [42, 42, 42]
        assert e.emitted == 3

    def test_sequence_emits_in_order_then_stops(self):
        c = DataflowCircuit("t")
        e = c.add(Sequence("e", [1, 2, 3]))
        s = c.add(Sink("s"))
        c.connect(e, 0, s, 0)
        Engine(c).run_cycles(10)
        assert s.received == [1, 2, 3]

    def test_constant_fires_per_trigger(self):
        c = DataflowCircuit("t")
        trig = c.add(Sequence("t0", [None, None]))
        k = c.add(Constant("k", 7.5))
        s = c.add(Sink("s"))
        c.connect(trig, 0, k, 0)
        c.connect(k, 0, s, 0)
        Engine(c).run_cycles(10)
        assert s.received == [7.5, 7.5]

    def test_sink_last_raises_when_empty(self):
        s = Sink("s")
        with pytest.raises(CircuitError):
            _ = s.last

    def test_entry_negative_count_rejected(self):
        with pytest.raises(CircuitError):
            Entry("e", count=-1)


class TestCreditCounter:
    def _loop(self, initial, delay):
        """CC grant -> delay pipeline -> credit return; grants also counted."""
        c = DataflowCircuit("t")
        cc = c.add(CreditCounter("cc", initial))
        fork = c.add(EagerFork("f", 2))
        taken = c.add(Sink("taken"))
        lag = c.add(FunctionalUnit("lag", "pass", latency_override=delay))
        c.connect(cc, 0, fork, 0)
        c.connect(fork, 0, taken, 0)
        c.connect(fork, 1, lag, 0)
        c.connect(lag, 0, cc, 0)
        return c, cc, taken

    def test_grants_limited_by_credits(self):
        c, cc, taken = self._loop(initial=2, delay=6)
        eng = Engine(c)
        eng.run_cycles(4)
        assert taken.count == 2  # out of credits until returns come back
        assert cc.available == 0

    def test_returned_credit_usable_next_cycle(self):
        c, cc, taken = self._loop(initial=1, delay=1)
        eng = Engine(c)
        eng.run_cycles(12)
        # grant at t, return visible t+2 (1 pipe stage), regrant at t+3:
        # sustained rate is bounded, never more than one per 2 cycles.
        assert 3 <= taken.count <= 6

    def test_steady_state_throughput_with_enough_credits(self):
        c, cc, taken = self._loop(initial=4, delay=2)
        eng = Engine(c)
        eng.run_cycles(20)
        assert taken.count >= 15  # ~1 grant per cycle once warmed up

    def test_invariant_guard_rejects_extra_returns(self):
        # Returns arrive while the grant is blocked (join waits forever on
        # a silent second input): the count would exceed the initial value.
        c = DataflowCircuit("t")
        cc = c.add(CreditCounter("cc", 1))
        fake = c.add(Sequence("fake", [None, None, None]))
        never = c.add(Sequence("never", []))
        gate = c.add(Join("gate", 2))
        s = c.add(Sink("s"))
        c.connect(fake, 0, cc, 0)
        c.connect(cc, 0, gate, 0)
        c.connect(never, 0, gate, 1)
        c.connect(gate, 0, s, 0)
        with pytest.raises(CircuitError, match="escaped"):
            Engine(c).run_cycles(10)

    def test_initial_must_be_positive(self):
        with pytest.raises(CircuitError):
            CreditCounter("cc", 0)

    def test_initial_tokens_annotation(self):
        assert CreditCounter("cc", 3).initial_tokens == 3


class TestMemoryPorts:
    def test_load_reads_memory(self):
        c = DataflowCircuit("t")
        addr = c.add(Sequence("a", [0, 2, 1]))
        ld = c.add(LoadPort("ld", "arr"))
        s = c.add(Sink("s"))
        c.connect(addr, 0, ld, 0)
        c.connect(ld, 0, s, 0)
        mem = Memory()
        mem.allocate("arr", 3, init=[10.0, 11.0, 12.0])
        Engine(c, memory=mem).run(lambda: s.count == 3, max_cycles=50)
        assert s.received == [10.0, 12.0, 11.0]

    def test_load_latency(self):
        c = DataflowCircuit("t")
        addr = c.add(Sequence("a", [0]))
        ld = c.add(LoadPort("ld", "arr", latency=3))
        s = c.add(Sink("s"))
        c.connect(addr, 0, ld, 0)
        c.connect(ld, 0, s, 0)
        mem = Memory()
        mem.allocate("arr", 1, init=[5.0])
        eng = Engine(c, memory=mem)
        eng.run(lambda: s.count == 1, max_cycles=20)
        assert eng.cycle == 4

    def test_store_commits_at_fire_and_emits_done(self):
        c = DataflowCircuit("t")
        addr = c.add(Sequence("a", [1]))
        data = c.add(Sequence("d", [9.5]))
        st = c.add(StorePort("st", "arr"))
        s = c.add(Sink("done"))
        c.connect(addr, 0, st, 0)
        c.connect(data, 0, st, 1)
        c.connect(st, 0, s, 0)
        mem = Memory()
        mem.allocate("arr", 2)
        eng = Engine(c, memory=mem)
        eng.step()
        assert mem.dump("arr")[1] == 9.5  # committed on the firing edge
        eng.run(lambda: s.count == 1, max_cycles=10)

    def test_memory_required(self):
        c = DataflowCircuit("t")
        addr = c.add(Sequence("a", [0]))
        ld = c.add(LoadPort("ld", "arr"))
        s = c.add(Sink("s"))
        c.connect(addr, 0, ld, 0)
        c.connect(ld, 0, s, 0)
        with pytest.raises(SimulationError, match="memory"):
            Engine(c)

    def test_out_of_bounds_load(self):
        c = DataflowCircuit("t")
        addr = c.add(Sequence("a", [7]))
        ld = c.add(LoadPort("ld", "arr"))
        s = c.add(Sink("s"))
        c.connect(addr, 0, ld, 0)
        c.connect(ld, 0, s, 0)
        mem = Memory()
        mem.allocate("arr", 2)
        with pytest.raises(SimulationError, match="out of bounds"):
            Engine(c, memory=mem).run(lambda: s.count == 1, max_cycles=20)
