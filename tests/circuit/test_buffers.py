"""Elastic buffer and transparent FIFO semantics."""

import pytest

from repro.circuit import (
    DataflowCircuit,
    ElasticBuffer,
    FunctionalUnit,
    Sequence,
    Sink,
    TransparentFifo,
)
from repro.errors import CircuitError
from repro.sim import Engine, Trace


def buffered_stream(buf, n=6):
    c = DataflowCircuit("t")
    src = c.add(Sequence("s", list(range(n))))
    c.add(buf)
    sink = c.add(Sink("out"))
    c.connect(src, 0, buf, 0)
    c.connect(buf, 0, sink, 0)
    return c, sink


class TestElasticBuffer:
    def test_fifo_order(self):
        c, sink = buffered_stream(ElasticBuffer("b", slots=2))
        Engine(c).run(lambda: sink.count == 6, max_cycles=100)
        assert sink.received == list(range(6))

    def test_adds_one_cycle_latency(self):
        c, sink = buffered_stream(ElasticBuffer("b", slots=2), n=1)
        eng = Engine(c)
        eng.step()
        assert sink.count == 0  # token is inside the buffer
        eng.step()
        assert sink.count == 1

    def test_two_slots_sustain_full_throughput(self):
        c, sink = buffered_stream(ElasticBuffer("b", slots=2), n=6)
        trace = Trace()
        eng = Engine(c, trace=trace)
        ch = trace.watch_unit_input(c, "out", 0)
        eng.run(lambda: sink.count == 6, max_cycles=100)
        assert trace.interarrival(ch) == [1] * 5  # II = 1

    def test_one_slot_halves_throughput(self):
        c, sink = buffered_stream(ElasticBuffer("b", slots=1), n=6)
        trace = Trace()
        eng = Engine(c, trace=trace)
        ch = trace.watch_unit_input(c, "out", 0)
        eng.run(lambda: sink.count == 6, max_cycles=100)
        assert trace.interarrival(ch) == [2] * 5  # II = 2

    def test_capacity_respected_under_stall(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("s", list(range(10))))
        buf = c.add(ElasticBuffer("b", slots=3))
        gate = c.add(FunctionalUnit("g", "pass", latency_override=4))
        sink = c.add(Sink("out"))
        c.connect(src, 0, buf, 0)
        c.connect(buf, 0, gate, 0)
        c.connect(gate, 0, sink, 0)
        eng = Engine(c)
        for _ in range(40):
            eng.step()
            assert buf.occupancy <= 3
        assert sink.received == list(range(10))

    def test_zero_slots_rejected(self):
        with pytest.raises(CircuitError):
            ElasticBuffer("b", slots=0)


class TestTransparentFifo:
    def test_zero_latency_bypass(self):
        c, sink = buffered_stream(TransparentFifo("b", slots=2), n=1)
        eng = Engine(c)
        eng.step()
        assert sink.count == 1  # passed through combinationally

    def test_fifo_order_preserved(self):
        c, sink = buffered_stream(TransparentFifo("b", slots=3))
        Engine(c).run(lambda: sink.count == 6, max_cycles=100)
        assert sink.received == list(range(6))

    def test_queues_when_consumer_stalls(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("s", list(range(6))))
        buf = c.add(TransparentFifo("b", slots=4))
        gate = c.add(FunctionalUnit("g", "pass", latency_override=3))
        sink = c.add(Sink("out"))
        c.connect(src, 0, buf, 0)
        c.connect(buf, 0, gate, 0)
        c.connect(gate, 0, sink, 0)
        eng = Engine(c)
        eng.run(lambda: sink.count == 6, max_cycles=100)
        assert sink.received == list(range(6))

    def test_decouples_burst_from_slow_consumer(self):
        # A fifo of capacity k lets the producer run k tokens ahead.
        c = DataflowCircuit("t")
        src = c.add(Sequence("s", list(range(8))))
        buf = c.add(TransparentFifo("b", slots=4))
        slow = c.add(FunctionalUnit("g", "pass", latency_override=1))
        gate = c.add(ElasticBuffer("eb", slots=1))  # II=2 choke point
        sink = c.add(Sink("out"))
        c.connect(src, 0, buf, 0)
        c.connect(buf, 0, slow, 0)
        c.connect(slow, 0, gate, 0)
        c.connect(gate, 0, sink, 0)
        eng = Engine(c)
        eng.run_cycles(6)
        assert buf.occupancy >= 2  # producer ran ahead into the fifo
        eng.run(lambda: sink.count == 8, max_cycles=100)
        assert sink.received == list(range(8))

    def test_width_hint_recorded(self):
        assert TransparentFifo("b", slots=1, width_hint=4).width_hint == 4
        assert ElasticBuffer("b", slots=2, width_hint=0).width_hint == 0
