"""Netlist builder: deferred wiring, automatic forks and sinks."""

import pytest

from repro.circuit import (
    DataflowCircuit,
    EagerFork,
    FunctionalUnit,
    Netlist,
    Sequence,
    Sink,
)
from repro.errors import CircuitError
from repro.sim import Engine


class TestNetlist:
    def test_single_use_direct_channel(self):
        nl = Netlist(name="t")
        src = nl.add(Sequence("s", [1]))
        sink = nl.add(Sink("o"))
        nl.use((src, 0), sink, 0)
        c = nl.finalize()
        assert c.stats().get("EagerFork", 0) == 0

    def test_multi_use_inserts_fork(self):
        nl = Netlist(name="t")
        src = nl.add(Sequence("s", [3]))
        fu = nl.add(FunctionalUnit("m", "imul"))
        sink = nl.add(Sink("o"))
        nl.use((src, 0), fu, 0)
        nl.use((src, 0), fu, 1)
        nl.use((fu, 0), sink, 0)
        c = nl.finalize()
        assert c.stats()["EagerFork"] == 1
        Engine(c).run(lambda: sink.count == 1, max_cycles=20)
        assert sink.received == [9]

    def test_declared_unused_gets_sink(self):
        nl = Netlist(name="t")
        src = nl.add(Sequence("s", [1]))
        nl.declare((src, 0))
        c = nl.finalize()
        assert c.stats()["Sink"] == 1
        c.validate()

    def test_undeclared_unused_fails_validation(self):
        nl = Netlist(name="t")
        nl.add(Sequence("s", [1]))
        with pytest.raises(CircuitError):
            nl.finalize()

    def test_attrs_land_on_channel(self):
        nl = Netlist(name="t")
        src = nl.add(Sequence("s", [1]))
        sink = nl.add(Sink("o"))
        nl.use((src, 0), sink, 0, attrs={"tokens": 1})
        c = nl.finalize()
        assert c.channels[0].attrs["tokens"] == 1

    def test_attrs_with_fanout_land_on_fork_leg(self):
        nl = Netlist(name="t")
        src = nl.add(Sequence("s", [1]))
        s1, s2 = nl.add(Sink("a")), nl.add(Sink("b"))
        nl.use((src, 0), s1, 0, attrs={"tokens": 1})
        nl.use((src, 0), s2, 0)
        c = nl.finalize()
        annotated = [ch for ch in c.channels if ch.attrs.get("tokens")]
        assert len(annotated) == 1
        assert annotated[0].dst.unit == "a"

    def test_use_after_finalize_rejected(self):
        nl = Netlist(name="t")
        src = nl.add(Sequence("s", [1]))
        sink = nl.add(Sink("o"))
        nl.use((src, 0), sink, 0)
        nl.finalize()
        with pytest.raises(CircuitError, match="finalized"):
            nl.use((src, 0), sink, 0)

    def test_fork_inherits_meta(self):
        nl = Netlist(name="t")
        src = nl.add(Sequence("s", [1]))
        src.meta["cfc"] = "L0"
        s1, s2 = nl.add(Sink("a")), nl.add(Sink("b"))
        nl.use((src, 0), s1, 0)
        nl.use((src, 0), s2, 0)
        c = nl.finalize()
        fork = c.units_of_type(EagerFork)[0]
        assert fork.meta["cfc"] == "L0"

    def test_wraps_existing_circuit(self):
        base = DataflowCircuit("base")
        nl = Netlist(circuit=base)
        assert nl.finalize() is base
