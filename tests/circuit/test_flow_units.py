"""Handshake semantics of the token-routing units, observed via simulation."""

import pytest

from repro.circuit import (
    ArbiterMerge,
    Branch,
    DataflowCircuit,
    Demux,
    EagerFork,
    ElasticBuffer,
    FixedOrderMerge,
    FunctionalUnit,
    Join,
    LazyFork,
    Merge,
    Mux,
    Sequence,
    Sink,
)
from repro.errors import CircuitError
from repro.sim import Engine


def run(c, sink, count, max_cycles=500):
    eng = Engine(c)
    eng.run(lambda: sink.count >= count, max_cycles=max_cycles)
    return eng


class TestEagerFork:
    def test_duplicates_tokens(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("s", [1, 2, 3]))
        f = c.add(EagerFork("f", 3))
        sinks = [c.add(Sink(f"o{i}")) for i in range(3)]
        c.connect(src, 0, f, 0)
        for i, snk in enumerate(sinks):
            c.connect(f, i, snk, 0)
        run(c, sinks[0], 3)
        for snk in sinks:
            assert snk.received == [1, 2, 3]

    def test_eager_delivery_to_fast_consumer(self):
        # Output 0 goes straight to a sink; output 1 through a latency-5
        # pipeline.  The eager fork must deliver to the sink without
        # waiting for the slow side to become ready.
        c = DataflowCircuit("t")
        src = c.add(Sequence("s", [7]))
        f = c.add(EagerFork("f", 2))
        fast = c.add(Sink("fast"))
        slow_fu = c.add(FunctionalUnit("slow", "pass", latency_override=5))
        slow = c.add(Sink("slow_out"))
        c.connect(src, 0, f, 0)
        c.connect(f, 0, fast, 0)
        c.connect(f, 1, slow_fu, 0)
        c.connect(slow_fu, 0, slow, 0)
        eng = Engine(c)
        eng.step()
        assert fast.count == 1  # delivered on the very first cycle
        eng.run(lambda: slow.count == 1, max_cycles=50)

    def test_input_consumed_once_all_served(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("s", [1, 2]))
        f = c.add(EagerFork("f", 2))
        s1, s2 = c.add(Sink("s1")), c.add(Sink("s2"))
        c.connect(src, 0, f, 0)
        c.connect(f, 0, s1, 0)
        c.connect(f, 1, s2, 0)
        run(c, s2, 2)
        assert s1.received == s2.received == [1, 2]

    def test_needs_at_least_one_output(self):
        with pytest.raises(CircuitError):
            EagerFork("f", 0)


class TestLazyFork:
    def test_all_or_nothing(self):
        # One output blocked behind a full 1-slot buffer: the other output
        # must NOT receive the token early.
        c = DataflowCircuit("t")
        src = c.add(Sequence("s", [1, 2]))
        f = c.add(LazyFork("f", 2))
        buf = c.add(ElasticBuffer("b", slots=1))
        s1, s2 = c.add(Sink("s1")), c.add(Sink("s2"))
        c.connect(src, 0, f, 0)
        c.connect(f, 0, s1, 0)
        c.connect(f, 1, buf, 0)
        c.connect(buf, 0, s2, 0)
        eng = Engine(c)
        for _ in range(30):
            eng.step()
            # Lazy: both sides always saw the same number of tokens.
            assert s1.count in (s2.count, s2.count + 1)
        assert s1.received == [1, 2]


class TestJoin:
    def test_synchronizes_and_bundles(self):
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1, 2]))
        b = c.add(Sequence("b", [10, 20]))
        j = c.add(Join("j", 2, data_mode="tuple"))
        out = c.add(Sink("out"))
        c.connect(a, 0, j, 0)
        c.connect(b, 0, j, 1)
        c.connect(j, 0, out, 0)
        run(c, out, 2)
        assert out.received == [(1, 10), (2, 20)]

    def test_first_mode_forwards_port0(self):
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [5]))
        b = c.add(Sequence("b", [99]))
        j = c.add(Join("j", 2, data_mode="first"))
        out = c.add(Sink("out"))
        c.connect(a, 0, j, 0)
        c.connect(b, 0, j, 1)
        c.connect(j, 0, out, 0)
        run(c, out, 1)
        assert out.received == [5]

    def test_n_bundle_drops_trailing_inputs(self):
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1]))
        b = c.add(Sequence("b", [2]))
        ctl = c.add(Sequence("ctl", [None]))
        j = c.add(Join("j", 3, data_mode="tuple", n_bundle=2))
        out = c.add(Sink("out"))
        c.connect(a, 0, j, 0)
        c.connect(b, 0, j, 1)
        c.connect(ctl, 0, j, 2)
        c.connect(j, 0, out, 0)
        run(c, out, 1)
        assert out.received == [(1, 2)]

    def test_waits_for_all_inputs(self):
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1]))
        slow = c.add(FunctionalUnit("d", "pass", latency_override=4))
        b = c.add(Sequence("b", [2]))
        j = c.add(Join("j", 2))
        out = c.add(Sink("out"))
        c.connect(a, 0, j, 0)
        c.connect(b, 0, slow, 0)
        c.connect(slow, 0, j, 1)
        c.connect(j, 0, out, 0)
        eng = Engine(c)
        for _ in range(3):
            eng.step()
        assert out.count == 0  # second operand still in flight
        eng.run(lambda: out.count == 1, max_cycles=20)

    def test_bad_data_mode(self):
        with pytest.raises(CircuitError):
            Join("j", 2, data_mode="weird")


class TestMergeMux:
    def test_merge_forwards_any_input(self):
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1]))
        b = c.add(Sequence("b", [2]))
        m = c.add(Merge("m", 2))
        out = c.add(Sink("out"))
        c.connect(a, 0, m, 0)
        c.connect(b, 0, m, 1)
        c.connect(m, 0, out, 0)
        run(c, out, 2)
        assert sorted(out.received) == [1, 2]

    def test_merge_priority_is_port_order(self):
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1]))
        b = c.add(Sequence("b", [2]))
        m = c.add(Merge("m", 2))
        out = c.add(Sink("out"))
        c.connect(a, 0, m, 0)
        c.connect(b, 0, m, 1)
        c.connect(m, 0, out, 0)
        eng = Engine(c)
        eng.step()
        assert out.received == [1]  # port 0 first

    def test_mux_selects_by_control(self):
        c = DataflowCircuit("t")
        sel = c.add(Sequence("sel", [0, 1, 0]))
        a = c.add(Sequence("a", [10, 11]))
        b = c.add(Sequence("b", [20]))
        m = c.add(Mux("m", 2))
        out = c.add(Sink("out"))
        c.connect(sel, 0, m, 0)
        c.connect(a, 0, m, 1)
        c.connect(b, 0, m, 2)
        c.connect(m, 0, out, 0)
        run(c, out, 3)
        assert out.received == [10, 20, 11]

    def test_mux_select_out_of_range(self):
        c = DataflowCircuit("t")
        sel = c.add(Sequence("sel", [5]))
        a = c.add(Sequence("a", [10]))
        m = c.add(Mux("m", 1))
        out = c.add(Sink("out"))
        c.connect(sel, 0, m, 0)
        c.connect(a, 0, m, 1)
        c.connect(m, 0, out, 0)
        with pytest.raises(CircuitError, match="out of range"):
            Engine(c).run_cycles(3)


class TestBranchDemux:
    def test_branch_routes_by_condition(self):
        c = DataflowCircuit("t")
        cond = c.add(Sequence("c", [True, False, True]))
        data = c.add(Sequence("d", [1, 2, 3]))
        br = c.add(Branch("br"))
        t, f = c.add(Sink("t")), c.add(Sink("f"))
        c.connect(cond, 0, br, 0)
        c.connect(data, 0, br, 1)
        c.connect(br, 0, t, 0)
        c.connect(br, 1, f, 0)
        run(c, t, 2)
        assert t.received == [1, 3]
        assert f.received == [2]

    def test_demux_routes_by_index(self):
        c = DataflowCircuit("t")
        idx = c.add(Sequence("i", [2, 0, 1]))
        data = c.add(Sequence("d", ["a", "b", "c"]))
        dm = c.add(Demux("dm", 3))
        sinks = [c.add(Sink(f"o{i}")) for i in range(3)]
        c.connect(idx, 0, dm, 0)
        c.connect(data, 0, dm, 1)
        for i, s in enumerate(sinks):
            c.connect(dm, i, s, 0)
        run(c, sinks[1], 1)
        assert sinks[0].received == ["b"]
        assert sinks[1].received == ["c"]
        assert sinks[2].received == ["a"]


class TestArbiters:
    def _arb_circuit(self, arb):
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1, 2]))
        b = c.add(Sequence("b", [10]))
        c.add(arb)
        data, idx = c.add(Sink("data")), c.add(Sink("idx"))
        c.connect(a, 0, arb, 0)
        c.connect(b, 0, arb, 1)
        c.connect(arb, 0, data, 0)
        c.connect(arb, 1, idx, 0)
        return c, data, idx

    def test_priority_order_respected(self):
        arb = ArbiterMerge("arb", 2, priority=[1, 0])
        c, data, idx = self._arb_circuit(arb)
        run(c, data, 3)
        assert data.received == [10, 1, 2]
        assert idx.received == [1, 0, 0]

    def test_absent_request_does_not_block(self):
        # Input 1 has the highest priority but never produces a token:
        # input 0 must still be served (the paper's Figure 1e property).
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1, 2]))
        b = c.add(Sequence("b", []))
        arb = c.add(ArbiterMerge("arb", 2, priority=[1, 0]))
        data, idx = c.add(Sink("data")), c.add(Sink("idx"))
        c.connect(a, 0, arb, 0)
        c.connect(b, 0, arb, 1)
        c.connect(arb, 0, data, 0)
        c.connect(arb, 1, idx, 0)
        run(c, data, 2)
        assert data.received == [1, 2]

    def test_fixed_order_blocks_on_absent_request(self):
        # Fixed order [1, 0]: input 1 never arrives, so nothing is served
        # (the paper's Figure 1d failure mode).
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1, 2]))
        b = c.add(Sequence("b", []))
        arb = c.add(FixedOrderMerge("arb", 2, order=[1, 0]))
        data, idx = c.add(Sink("data")), c.add(Sink("idx"))
        c.connect(a, 0, arb, 0)
        c.connect(b, 0, arb, 1)
        c.connect(arb, 0, data, 0)
        c.connect(arb, 1, idx, 0)
        eng = Engine(c)
        eng.run_cycles(20)
        assert data.count == 0

    def test_fixed_order_cycles_through_order(self):
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1, 2]))
        b = c.add(Sequence("b", [10, 20]))
        arb = c.add(FixedOrderMerge("arb", 2, order=[0, 1]))
        data, idx = c.add(Sink("data")), c.add(Sink("idx"))
        c.connect(a, 0, arb, 0)
        c.connect(b, 0, arb, 1)
        c.connect(arb, 0, data, 0)
        c.connect(arb, 1, idx, 0)
        run(c, data, 4)
        assert data.received == [1, 10, 2, 20]

    def test_bad_priority_rejected(self):
        with pytest.raises(CircuitError):
            ArbiterMerge("arb", 2, priority=[0, 0])
        with pytest.raises(CircuitError):
            FixedOrderMerge("arb", 2, order=[2])
