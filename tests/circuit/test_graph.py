"""DataflowCircuit container: construction, validation, rewiring."""

import pytest

from repro.circuit import (
    DataflowCircuit,
    EagerFork,
    FunctionalUnit,
    Sequence,
    Sink,
)
from repro.errors import CircuitError


def two_unit_circuit():
    c = DataflowCircuit("t")
    src = c.add(Sequence("src", [1.0]))
    sink = c.add(Sink("sink"))
    return c, src, sink


class TestAddAndConnect:
    def test_duplicate_unit_name_rejected(self):
        c = DataflowCircuit("t")
        c.add(Sink("x"))
        with pytest.raises(CircuitError, match="duplicate"):
            c.add(Sink("x"))

    def test_connect_creates_channel(self):
        c, src, sink = two_unit_circuit()
        ch = c.connect(src, 0, sink, 0, name="lbl")
        assert ch.src.unit == "src" and ch.dst.unit == "sink"
        assert c.out_channel(src, 0) is ch
        assert c.in_channel(sink, 0) is ch
        assert "lbl" in ch.label()

    def test_double_drive_output_rejected(self):
        c, src, _ = two_unit_circuit()
        s2 = c.add(Sink("s2"))
        c.connect(src, 0, s2, 0)
        s3 = c.add(Sink("s3"))
        with pytest.raises(CircuitError, match="fork"):
            c.connect(src, 0, s3, 0)

    def test_double_drive_input_rejected(self):
        c, src, sink = two_unit_circuit()
        c.connect(src, 0, sink, 0)
        src2 = c.add(Sequence("src2", [2.0]))
        with pytest.raises(CircuitError, match="already driven"):
            c.connect(src2, 0, sink, 0)

    def test_port_out_of_range(self):
        c, src, sink = two_unit_circuit()
        with pytest.raises(CircuitError, match="out of range"):
            c.connect(src, 1, sink, 0)

    def test_connect_unknown_unit(self):
        c, src, _ = two_unit_circuit()
        other = Sink("ghost")
        with pytest.raises(CircuitError, match="not in circuit"):
            c.connect(src, 0, other, 0)

    def test_fresh_name_unique(self):
        c = DataflowCircuit("t")
        names = {c.fresh_name("buf") for _ in range(5)}
        assert len(names) == 5
        c.add(Sink(c.fresh_name("buf")))
        assert c.fresh_name("buf") not in c.units


class TestValidation:
    def test_valid_circuit_passes(self):
        c, src, sink = two_unit_circuit()
        c.connect(src, 0, sink, 0)
        c.validate()

    def test_undriven_input_reported(self):
        c, src, sink = two_unit_circuit()
        with pytest.raises(CircuitError, match="undriven"):
            c.validate()

    def test_unconsumed_output_reported(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("src", [1.0]))
        with pytest.raises(CircuitError, match="unconsumed"):
            c.validate()


class TestRewiring:
    def test_redirect_dst(self):
        c, src, sink = two_unit_circuit()
        ch = c.connect(src, 0, sink, 0)
        s2 = c.add(Sink("s2"))
        c.redirect_dst(ch, s2, 0)
        assert ch.dst.unit == "s2"
        assert c.in_channel(sink, 0) is None
        assert c.in_channel(s2, 0) is ch

    def test_redirect_src(self):
        c, src, sink = two_unit_circuit()
        ch = c.connect(src, 0, sink, 0)
        src2 = c.add(Sequence("src2", [2.0]))
        c.redirect_src(ch, src2, 0)
        assert ch.src.unit == "src2"
        assert c.out_channel(src, 0) is None

    def test_redirect_to_occupied_port_rejected(self):
        c, src, sink = two_unit_circuit()
        ch = c.connect(src, 0, sink, 0)
        src2 = c.add(Sequence("src2", [2.0]))
        s2 = c.add(Sink("s2"))
        ch2 = c.connect(src2, 0, s2, 0)
        with pytest.raises(CircuitError):
            c.redirect_dst(ch2, sink, 0)

    def test_remove_unit_requires_disconnection(self):
        c, src, sink = two_unit_circuit()
        ch = c.connect(src, 0, sink, 0)
        with pytest.raises(CircuitError, match="still connected"):
            c.remove_unit(src)
        c.disconnect(ch)
        c.remove_unit(src)
        assert "src" not in c

    def test_disconnect_frees_both_ports(self):
        c, src, sink = two_unit_circuit()
        ch = c.connect(src, 0, sink, 0)
        c.disconnect(ch)
        assert c.out_channel(src, 0) is None
        assert c.in_channel(sink, 0) is None
        c.connect(src, 0, sink, 0)  # re-usable


class TestViews:
    def test_successors_predecessors(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("src", [1.0]))
        fork = c.add(EagerFork("f", 2))
        s1, s2 = c.add(Sink("s1")), c.add(Sink("s2"))
        c.connect(src, 0, fork, 0)
        c.connect(fork, 0, s1, 0)
        c.connect(fork, 1, s2, 0)
        assert {u.name for u in c.successors(fork)} == {"s1", "s2"}
        assert [u.name for u in c.predecessors(fork)] == ["src"]

    def test_stats_counts_types(self):
        c = DataflowCircuit("t")
        c.add(Sink("a"))
        c.add(Sink("b"))
        c.add(FunctionalUnit("m", "fmul"))
        stats = c.stats()
        assert stats["Sink"] == 2
        assert stats["FunctionalUnit"] == 1
        assert stats["_units"] == 3

    def test_unit_graph_roundtrip(self):
        c, src, sink = two_unit_circuit()
        c.connect(src, 0, sink, 0)
        g = c.unit_graph()
        assert g.has_edge("src", "sink")
        assert set(g.nodes) == {"src", "sink"}
