"""Fast-token lowering of every benchmark: simulation + style deltas."""

import pytest

from repro.analysis import critical_cfcs, place_buffers
from repro.frontend import lower_kernel, simulate_kernel
from repro.frontend.kernels import KERNEL_NAMES, build


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_fast_token_simulates_and_verifies(name):
    lowered = lower_kernel(build(name, scale="small"), "fast-token")
    place_buffers(lowered.circuit, critical_cfcs(lowered.circuit))
    run = simulate_kernel(lowered, max_cycles=500_000)
    assert run.checked


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_fast_token_never_more_units_than_bb(name):
    bb = lower_kernel(build(name, scale="small"), "bb")
    ft = lower_kernel(build(name, scale="small"), "fast-token")
    assert len(ft.circuit.units) <= len(bb.circuit.units)


@pytest.mark.parametrize("name", ["atax", "gsum", "gemm"])
def test_fast_token_cycles_not_above_bb(name):
    rows = {}
    for style in ("bb", "fast-token"):
        lowered = lower_kernel(build(name, scale="small"), style)
        place_buffers(lowered.circuit, critical_cfcs(lowered.circuit))
        rows[style] = simulate_kernel(lowered, max_cycles=500_000).cycles
    assert rows["fast-token"] <= rows["bb"] * 1.02
