"""Lowering: structure of generated circuits and both styles."""

import pytest

from repro.analysis import critical_cfcs, place_buffers
from repro.circuit import (
    ArbiterMerge,
    Constant,
    ElasticBuffer,
    FunctionalUnit,
    LoadPort,
    Mux,
    StorePort,
)
from repro.errors import FrontendError
from repro.frontend import (
    Array,
    Const,
    For,
    IConst,
    If,
    Kernel,
    Let,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fcmp_ge,
    fmul,
    lower_kernel,
    simulate_kernel,
)
from repro.frontend.lower import (
    arrays_accessed,
    block_reads_writes,
    branch_assigned,
    has_nested_for,
)


def dot_kernel(n=4):
    return Kernel("dot", {"N": n},
                  [Array("a", "N"), Array("b", "N"), Array("out", 1, role="out")],
                  [For("i", IConst(0), Param("N"), carried={"s": Const(0.0)},
                       body=[SetCarried("s", fadd(Var("s"),
                             fmul(Load("a", Var("i")), Load("b", Var("i")))))]),
                   Store("out", IConst(0), Var("s"))])


class TestASTAnalysis:
    def test_block_reads_writes(self):
        body = [Let("x", fadd(Var("s"), Var("y"))),
                SetCarried("s", Var("x"))]
        reads, writes = block_reads_writes(body)
        assert reads == {"s", "y"}
        assert writes == {"s"}

    def test_nested_loop_locals_excluded(self):
        inner = For("j", IConst(0), Var("n"), carried={"t": Var("init")},
                    body=[SetCarried("t", fadd(Var("t"), Var("outer")))])
        reads, writes = block_reads_writes([inner])
        assert reads == {"n", "init", "outer"}
        assert writes == set()

    def test_leaked_write_rejected(self):
        inner = For("j", IConst(0), IConst(2), body=[SetCarried("z", Const(1.0))])
        with pytest.raises(FrontendError, match="non-carried"):
            block_reads_writes([inner])

    def test_arrays_accessed(self):
        body = [Store("y", Var("i"), fadd(Load("y", Var("i")), Load("a", Var("i"))))]
        loads, stores = arrays_accessed(body)
        assert loads == {"y", "a"}
        assert stores == {"y"}

    def test_branch_assigned_includes_lets(self):
        body = [If(fcmp_ge(Var("d"), Const(0.0)),
                   [Let("p", Var("d"))], [SetCarried("s", Var("d"))])]
        assert branch_assigned(body) == {"p", "s"}

    def test_has_nested_for(self):
        assert has_nested_for([For("i", IConst(0), IConst(1), body=[])])
        assert not has_nested_for([Store("a", IConst(0), Const(1.0))])


class TestLoweringStructure:
    def test_loop_header_uses_cmerge_and_muxes(self):
        low = lower_kernel(dot_kernel(), "bb")
        c = low.circuit
        assert c.units_of_type(ArbiterMerge)  # the control merge
        assert c.units_of_type(Mux)  # header muxes
        assert low.end_sink in c

    def test_cfc_tag_on_innermost_loop(self):
        low = lower_kernel(dot_kernel(), "bb")
        assert len(low.cfc_tags) == 1
        cfcs = critical_cfcs(low.circuit)
        assert len(cfcs) == 1
        fadds = [u.name for u in low.circuit.units_of_type(FunctionalUnit)
                 if u.op == "fadd"]
        assert any(f in cfcs[0].unit_names for f in fadds)

    def test_backedges_annotated(self):
        low = lower_kernel(dot_kernel(), "bb")
        back = [ch for ch in low.circuit.channels if ch.attrs.get("backedge")]
        assert back
        assert all(ch.attrs.get("tokens") == 1 for ch in back)

    def test_memory_ports_created(self):
        low = lower_kernel(dot_kernel(), "bb")
        assert len(low.circuit.units_of_type(LoadPort)) == 2
        assert len(low.circuit.units_of_type(StorePort)) == 1

    def test_bb_style_has_more_units_than_fast_token(self):
        bb = lower_kernel(dot_kernel(), "bb")
        ft = lower_kernel(dot_kernel(), "fast-token")
        assert len(bb.circuit.units) > len(ft.circuit.units)
        # Fast-token folds integer constants into operand slots.
        bb_consts = len(bb.circuit.units_of_type(Constant))
        ft_consts = len(ft.circuit.units_of_type(Constant))
        assert ft_consts < bb_consts

    def test_fp_constants_stay_tokens_in_fast_style(self):
        k = Kernel("t", {"N": 3},
                   [Array("a", "N"), Array("out", "N", role="out")],
                   [For("i", IConst(0), Param("N"), body=[
                       Store("out", Var("i"), fmul(Load("a", Var("i")), Const(2.0)))])])
        low = lower_kernel(k, "fast-token")
        fmuls = [u for u in low.circuit.units_of_type(FunctionalUnit) if u.op == "fmul"]
        assert fmuls[0].const_ops == {}  # shareable ops keep full operand shape
        assert fmuls[0].n_in == 2

    def test_unknown_style_rejected(self):
        with pytest.raises(FrontendError, match="style"):
            lower_kernel(dot_kernel(), "quantum")

    def test_zero_trip_loop_rejected(self):
        k = Kernel("z", {}, [Array("out", 1, role="out")],
                   [For("i", IConst(0), IConst(0), body=[
                       Store("out", IConst(0), Const(1.0))])])
        with pytest.raises(FrontendError, match="trip count"):
            lower_kernel(k, "bb")

    def test_loop_in_conditional_rejected(self):
        k = Kernel("z", {}, [Array("a", 1), Array("out", 1, role="out")],
                   [For("i", IConst(0), IConst(2), body=[
                       If(fcmp_ge(Load("a", IConst(0)), Const(0.0)),
                          [For("j", IConst(0), IConst(2), body=[])],
                          [])])])
        with pytest.raises(FrontendError, match="conditional"):
            lower_kernel(k, "bb")

    def test_array_sizes_resolution(self):
        low = lower_kernel(dot_kernel(5), "bb")
        assert low.array_sizes() == {"a": 5, "b": 5, "out": 1}


class TestMemoryDependencyThreads:
    def test_rmw_loop_gets_dep_gated_loads(self):
        k = Kernel("rmw", {"N": 4},
                   [Array("y", "N", role="inout"), Array("a", "N")],
                   [For("i", IConst(0), Param("N"), body=[
                       Store("y", Var("i"), fadd(Load("y", Var("i")),
                                                 Load("a", Var("i"))))])])
        low = lower_kernel(k, "bb")
        names = set(low.circuit.units)
        assert any(n.startswith("ldgate_y") for n in names)
        assert not any(n.startswith("ldgate_a") for n in names)

    def test_rmw_ii_reflects_memory_ordering(self):
        k = Kernel("rmw", {"N": 6},
                   [Array("y", "N", role="inout"), Array("a", "N")],
                   [For("i", IConst(0), Param("N"), body=[
                       Store("y", Var("i"), fadd(Load("y", Var("i")),
                                                 Load("a", Var("i"))))])])
        low = lower_kernel(k, "bb")
        cfcs = critical_cfcs(low.circuit)
        place_buffers(low.circuit, cfcs)
        ii = cfcs[0].ii().ii
        # load(2) + fadd(10) + store(1) + return >= 14
        assert ii >= 13

    def test_simulation_matches_reference(self):
        k = Kernel("rmw", {"N": 4},
                   [Array("y", "N", role="inout"), Array("a", "N")],
                   [For("r", IConst(0), IConst(3), body=[
                       For("i", IConst(0), Param("N"), body=[
                           Store("y", Var("i"), fadd(Load("y", Var("i")),
                                                     Load("a", Var("i"))))])])])
        low = lower_kernel(k, "bb")
        place_buffers(low.circuit, critical_cfcs(low.circuit))
        run = simulate_kernel(low, max_cycles=100000)
        assert run.checked
