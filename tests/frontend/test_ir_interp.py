"""Kernel IR helpers and the reference interpreter."""

import numpy as np
import pytest

from repro.errors import FrontendError
from repro.frontend import (
    Array,
    Const,
    For,
    IConst,
    If,
    Kernel,
    Let,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fcmp_ge,
    fmul,
    iadd,
    idx2,
    imul,
    run_reference,
)


class TestIR:
    def test_idx2_builds_row_major(self):
        e = idx2(Var("i"), Var("j"), Param("N"))
        k = Kernel("t", {"N": 4}, [Array("a", ("N", "N"))],
                   [For("i", IConst(0), IConst(2), body=[
                       For("j", IConst(0), IConst(2), body=[
                           Store("a", idx2(Var("i"), Var("j"), Param("N")),
                                 Const(1.0))])])])
        res = run_reference(k, {"a": np.zeros(16)})
        assert list(np.nonzero(res.arrays["a"])[0]) == [0, 1, 4, 5]

    def test_array_resolved_size(self):
        a = Array("x", ("N", "M"))
        assert a.resolved_size({"N": 3, "M": 5}) == 15
        assert Array("y", 7).resolved_size({}) == 7

    def test_with_params_override(self):
        k = Kernel("t", {"N": 4}, [], [])
        k2 = k.with_params(N=9)
        assert k2.params["N"] == 9 and k.params["N"] == 4
        with pytest.raises(FrontendError):
            k.with_params(Z=1)

    def test_kernel_array_lookup(self):
        k = Kernel("t", {}, [Array("a", 1)], [])
        assert k.array("a").size == 1
        with pytest.raises(FrontendError):
            k.array("b")


class TestInterpreter:
    def test_accumulation(self):
        k = Kernel("dot", {"N": 4},
                   [Array("a", "N"), Array("out", 1, role="out")],
                   [For("i", IConst(0), Param("N"), carried={"s": Const(0.0)},
                        body=[SetCarried("s", fadd(Var("s"), Load("a", Var("i"))))]),
                    Store("out", IConst(0), Var("s"))])
        res = run_reference(k, {"a": np.array([1.0, 2.0, 3.0, 4.0]), "out": np.zeros(1)})
        assert res.arrays["out"][0] == 10.0
        assert res.writes == 1
        assert res.op_counts["fadd"] == 4

    def test_conditional(self):
        k = Kernel("cond", {"N": 4},
                   [Array("a", "N"), Array("out", 1, role="out")],
                   [For("i", IConst(0), Param("N"), carried={"s": Const(0.0)},
                        body=[Let("d", Load("a", Var("i"))),
                              If(fcmp_ge(Var("d"), Const(0.0)),
                                 [SetCarried("s", fadd(Var("s"), Var("d")))],
                                 [])]),
                    Store("out", IConst(0), Var("s"))])
        res = run_reference(k, {"a": np.array([1.0, -5.0, 2.0, -1.0]), "out": np.zeros(1)})
        assert res.arrays["out"][0] == 3.0

    def test_if_else_branch_counts(self):
        k = Kernel("c2", {"N": 3},
                   [Array("a", "N"), Array("out", "N", role="out")],
                   [For("i", IConst(0), Param("N"), body=[
                       Let("d", Load("a", Var("i"))),
                       If(fcmp_ge(Var("d"), Const(0.0)),
                          [Store("out", Var("i"), Const(1.0))],
                          [Store("out", Var("i"), Const(-1.0))])])])
        res = run_reference(k, {"a": np.array([1.0, -1.0, 0.0]), "out": np.zeros(3)})
        assert list(res.arrays["out"]) == [1.0, -1.0, 1.0]

    def test_triangular_bounds(self):
        k = Kernel("tri", {"N": 4},
                   [Array("out", ("N", "N"), role="out")],
                   [For("i", IConst(0), Param("N"), body=[
                       For("j", IConst(0), iadd(Var("i"), IConst(1)), body=[
                           Store("out", idx2(Var("i"), Var("j"), Param("N")),
                                 Const(1.0))])])])
        res = run_reference(k, {"out": np.zeros(16)})
        assert res.writes == 1 + 2 + 3 + 4

    def test_unbound_variable_error(self):
        k = Kernel("bad", {}, [Array("out", 1, role="out")],
                   [Store("out", IConst(0), Var("ghost"))])
        with pytest.raises(FrontendError, match="unbound"):
            run_reference(k, {"out": np.zeros(1)})

    def test_set_carried_outside_loop_error(self):
        k = Kernel("bad", {}, [], [SetCarried("x", Const(1.0))])
        with pytest.raises(FrontendError, match="undeclared"):
            run_reference(k, {})

    def test_oob_read_error(self):
        k = Kernel("bad", {}, [Array("a", 2), Array("out", 1, role="out")],
                   [Store("out", IConst(0), Load("a", IConst(5)))])
        with pytest.raises(FrontendError, match="out of bounds"):
            run_reference(k, {"a": np.zeros(2), "out": np.zeros(1)})

    def test_inputs_not_mutated(self):
        k = Kernel("w", {}, [Array("a", 2, role="inout")],
                   [Store("a", IConst(0), Const(9.0))])
        a = np.array([1.0, 2.0])
        res = run_reference(k, {"a": a})
        assert a[0] == 1.0
        assert res.arrays["a"][0] == 9.0
