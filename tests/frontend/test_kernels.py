"""The benchmark suite: censuses, registry, end-to-end verification."""

import pytest

from repro.analysis import critical_cfcs, place_buffers
from repro.circuit import FunctionalUnit
from repro.errors import FrontendError
from repro.frontend import lower_kernel, run_reference, simulate_kernel, default_inputs
from repro.frontend.kernels import KERNEL_NAMES, SMALL_SIZES, build

#: Floating-point census of every kernel, exactly the paper's Table 2
#: "Functional units" column for the Naive technique.
PAPER_CENSUS = {
    "atax": {"fadd": 2, "fmul": 2},
    "bicg": {"fadd": 2, "fmul": 2},
    "gsum": {"fadd": 5, "fmul": 4},
    "gsumif": {"fadd": 7, "fmul": 4},
    "2mm": {"fadd": 2, "fmul": 4},
    "3mm": {"fadd": 3, "fmul": 3},
    "symm": {"fadd": 4, "fmul": 7},
    "gemm": {"fadd": 1, "fmul": 3},
    "gesummv": {"fadd": 3, "fmul": 4},
    "mvt": {"fadd": 2, "fmul": 2},
    "syr2k": {"fadd": 2, "fmul": 5},
    # Irregular-memory kernels (not in the paper's table): data-dependent
    # addressing, exercised by the memory-dependence analyzer.
    "histogram": {"fadd": 1},
    "spmv": {"fadd": 1, "fmul": 1},
    "pointer_chase": {"fadd": 1, "fmul": 1},
}

#: DSP counts implied by fadd=2, fmul=3 DSPs, matching Table 2 exactly.
PAPER_DSPS = {
    "atax": 10, "bicg": 10, "gsum": 22, "gsumif": 26, "2mm": 16,
    "3mm": 15, "symm": 29, "gemm": 11, "gesummv": 18, "mvt": 10, "syr2k": 19,
    "histogram": 2, "spmv": 5, "pointer_chase": 5,
}


def census(circuit):
    out = {}
    for u in circuit.units_of_type(FunctionalUnit):
        if u.spec.shareable:
            out[u.op] = out.get(u.op, 0) + 1
    return out


class TestRegistry:
    def test_all_names_listed(self):
        assert set(KERNEL_NAMES) == set(PAPER_CENSUS)
        assert set(SMALL_SIZES) == set(PAPER_CENSUS)

    def test_unknown_kernel(self):
        with pytest.raises(FrontendError, match="unknown kernel"):
            build("nonsense")

    def test_unknown_scale(self):
        with pytest.raises(FrontendError, match="scale"):
            build("gemm", scale="huge")

    def test_size_overrides(self):
        k = build("gemm", scale="small", NI=2)
        assert k.params["NI"] == 2


@pytest.mark.parametrize("name", KERNEL_NAMES)
class TestPerKernel:
    def test_census_matches_paper(self, name):
        low = lower_kernel(build(name, scale="small"), "bb")
        assert census(low.circuit) == PAPER_CENSUS[name]

    def test_census_same_in_fast_token(self, name):
        low = lower_kernel(build(name, scale="small"), "fast-token")
        assert census(low.circuit) == PAPER_CENSUS[name]

    def test_dsp_count_matches_paper(self, name):
        from repro.resources import estimate_circuit

        low = lower_kernel(build(name, scale="small"), "bb")
        place_buffers(low.circuit, critical_cfcs(low.circuit))
        assert estimate_circuit(low.circuit).dsp == PAPER_DSPS[name]

    def test_simulates_and_verifies(self, name):
        low = lower_kernel(build(name, scale="small"), "bb")
        place_buffers(low.circuit, critical_cfcs(low.circuit))
        run = simulate_kernel(low, max_cycles=500_000)
        assert run.checked
        assert run.cycles > 0

    def test_all_inner_loops_have_ii_above_one(self, name):
        # The paper's precondition: every kernel has II > 1, so units are
        # underutilized and shareable without performance penalty.
        low = lower_kernel(build(name, scale="small"), "bb")
        cfcs = critical_cfcs(low.circuit)
        place_buffers(low.circuit, cfcs)
        assert cfcs
        assert all(cfc.ii().ii > 1 for cfc in cfcs)


class TestDeterminism:
    def test_default_inputs_reproducible(self):
        k = build("gemm", scale="small")
        a = default_inputs(k, seed=3)
        b = default_inputs(k, seed=3)
        assert all((a[x] == b[x]).all() for x in a)

    def test_gsum_condition_actually_irregular(self):
        # The guarded branch must be taken for some inputs and not others,
        # otherwise the kernel degenerates to a regular one.
        k = build("gsum", scale="small")
        data = default_inputs(k)
        assert (data["a"] >= 0).any() and (data["a"] < 0).any()

    def test_reference_op_counts_scale_with_size(self):
        k_small = build("gemm", scale="small")
        k_big = build("gemm", scale="small", NI=6)
        r1 = run_reference(k_small, default_inputs(k_small))
        r2 = run_reference(k_big, default_inputs(k_big))
        assert r2.op_counts["fadd"] > r1.op_counts["fadd"]
