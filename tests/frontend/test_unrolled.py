"""The unrolled gesummv builder (Table 1 substrate)."""

import pytest

from repro.analysis import critical_cfcs, place_buffers
from repro.circuit import FunctionalUnit
from repro.core import crush
from repro.errors import FrontendError
from repro.frontend import lower_kernel, simulate_kernel
from repro.frontend.kernels.unrolled import gesummv_unrolled


def census(circuit):
    out = {}
    for u in circuit.units_of_type(FunctionalUnit):
        if u.spec.shareable:
            out[u.op] = out.get(u.op, 0) + 1
    return out


class TestUnrolledGesummv:
    def test_op_counts_scale_with_factor(self):
        k = gesummv_unrolled(factor=4, n=8)
        low = lower_kernel(k, "bb")
        c = census(low.circuit)
        # 2 MACs per lane + reduction trees (2*(factor-1)) + epilogue fadd.
        assert c["fadd"] == 2 * 4 + 2 * 3 + 1
        assert c["fmul"] == 2 * 4 + 2

    def test_factor_must_divide_n(self):
        with pytest.raises(FrontendError, match="multiple"):
            gesummv_unrolled(factor=3, n=8)

    def test_simulates_correctly_small(self):
        k = gesummv_unrolled(factor=3, n=6)
        low = lower_kernel(k, "bb")
        place_buffers(low.circuit, critical_cfcs(low.circuit))
        run = simulate_kernel(low, max_cycles=500_000)
        assert run.checked

    def test_crush_respects_r2_capacity(self):
        k = gesummv_unrolled(factor=6, n=6)
        low = lower_kernel(k, "bb")
        cfcs = critical_cfcs(low.circuit)
        place_buffers(low.circuit, cfcs)
        res = crush(low.circuit, cfcs)
        from repro.analysis import occupancy_map, group_occupancy_in_cfc, unit_capacity

        # Every group honors R2 in every CFC: Σ occupancy <= capacity.
        for group in res.shared_groups():
            for cfc in cfcs:
                members = [op for op in group if op in cfc.unit_names]
                if not members:
                    continue
                total = sum(res.occupancies[m] for m in members)
                cap = 10 if "fadd" in members[0] else 4
                assert total <= cap

    def test_crush_shares_down_dramatically(self):
        k = gesummv_unrolled(factor=8, n=8)
        low = lower_kernel(k, "bb")
        cfcs = critical_cfcs(low.circuit)
        place_buffers(low.circuit, cfcs)
        before = sum(census(low.circuit).values())
        crush(low.circuit, cfcs)
        after = sum(census(low.circuit).values())
        assert after <= before / 4
