"""Property tests for the sweep subsystem.

Two invariants everything else rests on:

* **cache-key determinism** — equal job descriptions always hash to the
  same key (keyword order of size overrides included), and changing any
  single field yields a different key;
* **lossless serialization** — ``TechniqueResult`` survives a JSON
  round trip bit-for-bit for any finite field values, so a cached row is
  indistinguishable from a freshly computed one.
"""

from hypothesis import given, settings, strategies as st

from repro.pipeline import TechniqueResult
from repro.resources import ResourceEstimate
from repro.sweep import SweepJob, cache_key

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-", min_size=1, max_size=12
)
overrides = st.dictionaries(names, st.integers(1, 1 << 20), max_size=4)

jobs = st.builds(
    SweepJob,
    kernel=names,
    technique=st.sampled_from(("naive", "inorder", "crush")),
    style=st.sampled_from(("bb", "fast-token")),
    scale=st.sampled_from(("small", "paper")),
    size_overrides=overrides.map(lambda d: tuple(d.items())),
    simulate=st.booleans(),
    max_cycles=st.integers(1, 1 << 40),
)

estimates = st.builds(
    ResourceEstimate,
    lut=st.integers(0, 1 << 24),
    ff=st.integers(0, 1 << 24),
    dsp=st.integers(0, 4096),
    slices=st.integers(0, 1 << 22),
    cp_ns=finite_floats,
    functional_units=st.dictionaries(
        st.sampled_from(("fadd", "fmul", "fdiv", "fsub")),
        st.integers(0, 256), max_size=4,
    ),
)

results = st.builds(
    TechniqueResult,
    kernel=names,
    technique=names,
    style=st.sampled_from(("bb", "fast-token")),
    fu_census=st.text(max_size=30),
    dsp=st.integers(0, 4096),
    slices=st.integers(0, 1 << 22),
    lut=st.integers(0, 1 << 24),
    ff=st.integers(0, 1 << 24),
    cp_ns=finite_floats,
    cycles=st.integers(0, 1 << 40),
    exec_time_us=finite_floats,
    opt_time_s=finite_floats,
    groups=st.lists(st.lists(names, max_size=4), max_size=4),
    estimate=st.one_of(st.none(), estimates),
)


@settings(max_examples=200, deadline=None)
@given(job=jobs)
def test_cache_key_is_deterministic(job):
    clone = SweepJob.from_dict(job.to_dict())
    assert clone == job
    assert cache_key(job, salt="s") == cache_key(clone, salt="s")


@settings(max_examples=100, deadline=None)
@given(base=overrides)
def test_cache_key_ignores_override_insertion_order(base):
    fwd = SweepJob(kernel="k", technique="crush",
                   size_overrides=tuple(base.items()))
    rev = SweepJob(kernel="k", technique="crush",
                   size_overrides=tuple(reversed(list(base.items()))))
    assert cache_key(fwd, salt="s") == cache_key(rev, salt="s")


FIELD_MUTATIONS = [
    lambda d: {**d, "kernel": d["kernel"] + "x"},
    lambda d: {**d, "technique": "inorder" if d["technique"] != "inorder"
               else "crush"},
    lambda d: {**d, "style": "bb" if d["style"] != "bb" else "fast-token"},
    lambda d: {**d, "scale": "small" if d["scale"] != "small" else "paper"},
    # "ZZ" is outside the generated alphabet, so it is always a new entry.
    lambda d: {**d, "size_overrides": d["size_overrides"] + [["ZZ", 1]]},
    lambda d: {**d, "simulate": not d["simulate"]},
    lambda d: {**d, "max_cycles": d["max_cycles"] + 1},
]


@settings(max_examples=100, deadline=None)
@given(job=jobs, mutation=st.sampled_from(FIELD_MUTATIONS))
def test_any_field_change_changes_the_key(job, mutation):
    mutated = SweepJob.from_dict(mutation(job.to_dict()))
    assert mutated != job
    assert cache_key(mutated, salt="s") != cache_key(job, salt="s")


@settings(max_examples=100, deadline=None)
@given(job=jobs)
def test_salt_change_changes_the_key(job):
    assert cache_key(job, salt="v1") != cache_key(job, salt="v2")


@settings(max_examples=200, deadline=None)
@given(result=results)
def test_technique_result_json_round_trip(result):
    back = TechniqueResult.from_json(result.to_json())
    assert back == result
    # and the canonical serialized form is stable, too
    assert back.to_json() == result.to_json()


@settings(max_examples=100, deadline=None)
@given(result=results)
def test_metrics_views_are_consistent(result):
    metrics = result.metrics()
    det = result.deterministic_metrics()
    assert set(metrics) - set(det) == {"opt_time_s"}
    assert all(metrics[k] == det[k] for k in det)
