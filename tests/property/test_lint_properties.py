"""Property-based tests tying static lint to the compiled backend.

The contract the lint subsystem advertises: a circuit with no lint
*errors* is safe to hand to :class:`CompiledEngine` — in particular it
never dies with :class:`CombinationalCycleError` at build time (that is
exactly what ST005 screens for).  We generate random fully-connected
choice-free circuits (chains, joins, forks, buffers, pipelined and
combinational operators) and check both directions of the agreement.
"""

from hypothesis import given, settings, strategies as st

from repro.circuit import (
    DataflowCircuit,
    EagerFork,
    ElasticBuffer,
    FunctionalUnit,
    Join,
    Sequence,
    Sink,
    TransparentFifo,
)
from repro.errors import CombinationalCycleError
from repro.lint import run_lint
from repro.sim import CompiledEngine

STEPS = st.lists(
    st.sampled_from(["eb", "tf", "pass", "fadd", "fmul", "join", "fork"]),
    min_size=0,
    max_size=12,
)


def build_choice_free(n_sources, steps):
    """Grow a random choice-free DAG; every port ends up connected."""
    c = DataflowCircuit("random")
    open_outs = []
    for i in range(n_sources):
        u = c.add(Sequence(f"src{i}", [1.0, 2.0]))
        open_outs.append((u, 0))
    for i, kind in enumerate(steps):
        if kind == "join":
            if len(open_outs) < 2:
                continue
            a = open_outs.pop(0)
            b = open_outs.pop(0)
            u = c.add(Join(f"j{i}", 2))
            c.connect(a[0], a[1], u, 0)
            c.connect(b[0], b[1], u, 1)
            open_outs.append((u, 0))
        elif kind == "fork":
            a = open_outs.pop(0)
            u = c.add(EagerFork(f"f{i}", 2))
            c.connect(a[0], a[1], u, 0)
            open_outs.extend([(u, 0), (u, 1)])
        elif kind in ("eb", "tf"):
            a = open_outs.pop(0)
            cls = ElasticBuffer if kind == "eb" else TransparentFifo
            u = c.add(cls(f"b{i}"))
            c.connect(a[0], a[1], u, 0)
            open_outs.append((u, 0))
        else:  # unary view of a functional unit (second operand folded)
            a = open_outs.pop(0)
            const = {} if kind == "pass" else {1: 2.0}
            u = c.add(FunctionalUnit(f"u{i}", kind, const_ops=const or None))
            c.connect(a[0], a[1], u, 0)
            open_outs.append((u, 0))
    for i, (u, p) in enumerate(open_outs):
        s = c.add(Sink(f"sink{i}"))
        c.connect(u, p, s, 0)
    return c


@settings(max_examples=40, deadline=None)
@given(n_sources=st.integers(1, 3), steps=STEPS)
def test_lint_clean_choice_free_circuits_compile(n_sources, steps):
    c = build_choice_free(n_sources, steps)
    rep = run_lint(c, cfcs=[])
    # Fully-connected acyclic choice-free circuits must lint clean...
    assert not rep.errors, rep.format()
    # ...and the compiled backend must accept them (no cycle error).
    CompiledEngine(c)


def _with_ring(n_sources, steps, registered):
    """The random DAG plus a disjoint feedback ring; ``registered``
    selects whether the ring contains a sequential element."""
    c = build_choice_free(n_sources, steps)
    a = c.add(TransparentFifo("ring_a"))
    cls = ElasticBuffer if registered else TransparentFifo
    b = c.add(cls("ring_b"))
    c.connect(a, 0, b, 0)
    c.connect(b, 0, a, 0, tokens=1)
    return c


@settings(max_examples=40, deadline=None)
@given(n_sources=st.integers(1, 2), steps=STEPS)
def test_st005_agrees_with_compiled_engine(n_sources, steps):
    """Lint's ST005 verdict and CompiledEngine's build-time
    CombinationalCycleError must agree exactly, whatever surrounds the
    ring."""
    # Transparent through both arms: ST005 fires, the engine refuses.
    bad = _with_ring(n_sources, steps, registered=False)
    assert "ST005" in run_lint(bad, cfcs=[]).codes()
    try:
        CompiledEngine(bad)
        raise AssertionError("expected CombinationalCycleError")
    except CombinationalCycleError:
        pass
    # One registered arm: both verdicts clear.
    good = _with_ring(n_sources, steps, registered=True)
    assert "ST005" not in run_lint(good, cfcs=[]).codes()
    CompiledEngine(good)
