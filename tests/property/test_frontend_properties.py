"""Property-based tests: random kernels, lowering == reference semantics.

The strongest frontend invariant: for randomly generated loop nests with
random expression DAGs, conditionals and memory read-modify-writes, the
simulated circuit (in both lowering styles) computes exactly what the
reference interpreter computes, and never deadlocks.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis import critical_cfcs, place_buffers
from repro.frontend import (
    Array,
    Const,
    For,
    IConst,
    If,
    Kernel,
    Let,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    lower_kernel,
    simulate_kernel,
)
from repro.frontend.ir import Bin


def random_expr(rng, depth, names):
    if depth <= 0 or rng.random() < 0.3:
        choice = rng.random()
        if choice < 0.5:
            return Load("a", Var("i"))
        if choice < 0.8 and names:
            return Var(rng.choice(names))
        return Const(round(rng.uniform(-1.5, 1.5), 2))
    op = rng.choice(["fadd", "fsub", "fmul"])
    return Bin(op, random_expr(rng, depth - 1, names),
               random_expr(rng, depth - 1, names))


def random_kernel(seed):
    rng = random.Random(seed)
    n = rng.randint(2, 5)
    body = [Let("d", Load("a", Var("i")))]
    names = ["d"]
    stmts = rng.randint(1, 3)
    for _ in range(stmts):
        kind = rng.random()
        if kind < 0.4:
            body.append(SetCarried("s", Bin("fadd", Var("s"),
                                            random_expr(rng, 2, names))))
        elif kind < 0.7:
            cond = Bin("fcmp_ge", Var("d"), Const(0.0))
            body.append(If(cond,
                           [SetCarried("s", Bin("fadd", Var("s"),
                                                random_expr(rng, 1, names)))],
                           [SetCarried("s", Bin("fmul", Var("s"),
                                                Const(0.9)))] if rng.random() < 0.5 else []))
        else:
            # Memory read-modify-write on a second array.
            body.append(Store("y", Var("i"), Bin("fadd",
                        Load("y", Var("i")), random_expr(rng, 1, names))))
    return Kernel(
        f"rand{seed}",
        {"N": n},
        [Array("a", "N"), Array("y", "N", role="inout"),
         Array("out", 1, role="out")],
        [
            For("i", IConst(0), Param("N"), carried={"s": Const(0.0)},
                body=body),
            Store("out", IConst(0), Var("s")),
        ],
    )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000), style=st.sampled_from(["bb", "fast-token"]))
def test_random_kernels_simulate_to_reference(seed, style):
    kernel = random_kernel(seed)
    lowered = lower_kernel(kernel, style)
    place_buffers(lowered.circuit, critical_cfcs(lowered.circuit))
    run = simulate_kernel(lowered, max_cycles=300_000)
    assert run.checked


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_random_kernels_survive_crush(seed):
    from repro.core import crush

    kernel = random_kernel(seed)
    lowered = lower_kernel(kernel, "bb")
    cfcs = critical_cfcs(lowered.circuit)
    place_buffers(lowered.circuit, cfcs)
    crush(lowered.circuit, cfcs)
    run = simulate_kernel(lowered, max_cycles=300_000)
    assert run.checked


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_random_kernels_survive_inorder(seed):
    from repro.baselines import inorder_share

    kernel = random_kernel(seed)
    lowered = lower_kernel(kernel, "bb")
    cfcs = critical_cfcs(lowered.circuit)
    place_buffers(lowered.circuit, cfcs)
    inorder_share(lowered.circuit, cfcs)
    run = simulate_kernel(lowered, max_cycles=300_000)
    assert run.checked
