"""Property tests: static dependence verdicts vs exhaustive enumeration.

The prover's contract, checked against brute force over randomly
generated affine access pairs on small constant-bound loop nests:

* a verdict is never ``unknown`` for affine subscripts on enumerable
  domains (the ladder always decides);
* ``independent`` implies the two sites' address footprints are
  disjoint (no collision exists at all — the soundness direction the
  runtime sanitizer cross-checks);
* ``ordered`` implies a collision exists, the recorded witness
  iterations really do evaluate to the same address, and every concrete
  entry of the distance vector matches the witness difference.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.memdep import (
    Affine,
    LoopDim,
    MemAccess,
    _iterate_domain,
    _verdict_for_pair,
    analyze_kernel,
)
from repro.frontend.kernels import KERNEL_NAMES, build


def nest(sizes, tag):
    """A constant-bound loop nest ``for i0 in 0..sizes[0]: ...``."""
    return tuple(
        LoopDim(
            key=f"i{d}#{tag}{d}", var=f"i{d}",
            lo=Affine.constant(0), hi=Affine.constant(n),
            min_value=0, max_value=n - 1,
        )
        for d, n in enumerate(sizes)
    )


def affine_over(dims, coeffs, const):
    form = Affine.constant(const)
    for dim, c in zip(dims, coeffs):
        form = form.add(Affine.var(dim.key).scale(c))
    return form


def access(site, kind, dims, coeffs, const, seq=0):
    return MemAccess(
        site=site, kind=kind, array="x", seq=seq, loops=dims,
        index=affine_over(dims, coeffs, const),
    )


def footprint(acc):
    return {acc.index.evaluate(env) for env in _iterate_domain(acc.loops)}


def check_witness(verdict, a, b):
    """The recorded witness iterations collide, at the recorded distance."""
    it_a, it_b = verdict.witness
    env_a = {d.key: v for d, v in zip(a.loops, it_a)}
    env_b = {d.key: v for d, v in zip(b.loops, it_b)}
    assert a.index.evaluate(env_a) == b.index.evaluate(env_b)
    assert verdict.distance is not None
    assert len(verdict.distance) == verdict.common_loops
    for i, d in enumerate(verdict.distance):
        if d is not None:  # None = dimension unconstrained (``*``)
            assert it_b[i] - it_a[i] == d


@settings(max_examples=250, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 5), min_size=0, max_size=2),
    ca=st.lists(st.integers(-3, 3), min_size=2, max_size=2),
    cb=st.lists(st.integers(-3, 3), min_size=3, max_size=3),
    ka=st.integers(-6, 6),
    kb=st.integers(-6, 6),
    extra=st.integers(0, 4),
)
def test_cross_pair_verdict_matches_enumeration(
    sizes, ca, cb, ka, kb, extra
):
    common = nest(sizes, "c")
    loops_b = common + (nest([extra], "inner") if extra else ())
    a = access("x#st0", "store", common, ca, ka, seq=0)
    b = access("x#ld0", "load", loops_b, cb, kb, seq=1)

    v = _verdict_for_pair(a, b)
    assert v.verdict != "unknown"
    assert v.common_loops == len(common)

    collide = bool(footprint(a) & footprint(b))
    assert (v.verdict == "ordered") == collide
    if v.verdict == "ordered":
        check_witness(v, a, b)


@settings(max_examples=250, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 5), min_size=0, max_size=3),
    coeffs=st.lists(st.integers(-3, 3), min_size=3, max_size=3),
    const=st.integers(-6, 6),
)
def test_self_pair_verdict_matches_enumeration(sizes, coeffs, const):
    dims = nest(sizes, "s")
    acc = access("x#st0", "store", dims, coeffs, const)

    v = _verdict_for_pair(acc, acc)
    assert v.verdict != "unknown"

    addrs = [
        acc.index.evaluate(env) for env in _iterate_domain(acc.loops)
    ]
    repeats = len(addrs) != len(set(addrs))
    assert (v.verdict == "ordered") == repeats
    if not dims:
        assert v.test == "single-instance"
    if v.verdict == "ordered":
        check_witness(v, acc, acc)
        # Output dependences are reported lexicographically positive.
        it_a, it_b = v.witness
        assert it_a < it_b


def test_builtin_kernel_verdicts_survive_brute_force():
    """Every affine pair of every built-in kernel (small scale, so the
    domains stay enumerable) agrees with exhaustive enumeration."""
    for name in KERNEL_NAMES:
        report = analyze_kernel(build(name, scale="small"))
        for p in report.pairs:
            a, b = report.access(p.a), report.access(p.b)
            if not (a.affine and b.affine):
                assert p.verdict == "unknown"
                continue
            assert p.verdict != "unknown"
            if a.site == b.site:
                addrs = [
                    a.index.evaluate(env)
                    for env in _iterate_domain(a.loops)
                ]
                collide = len(addrs) != len(set(addrs))
            else:
                collide = bool(footprint(a) & footprint(b))
            assert (p.verdict == "ordered") == collide, (
                f"{name}: {p.label()} verdict {p.verdict} ({p.test}) "
                "contradicts enumeration"
            )
