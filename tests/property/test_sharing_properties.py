"""Property-based tests on the sharing machinery.

The master invariant of CRUSH: for *any* set of independent same-type
operations, any priority permutation, and any credit allocation satisfying
Equation 1, the shared circuit is deadlock-free and produces exactly the
results of the unshared circuit.
"""

from hypothesis import given, settings, strategies as st

from repro.circuit import DataflowCircuit, FunctionalUnit, Sequence, Sink
from repro.core import insert_sharing_wrapper
from repro.frontend.interp import run_reference
from repro.sim import Engine


def build_parallel_ops(n_ops, tokens_per_op, op="fmul"):
    """n independent streams, each through its own operator."""
    c = DataflowCircuit("t")
    sinks = []
    names = []
    expected = []
    for i in range(n_ops):
        vals = [float(i * 10 + k) for k in range(tokens_per_op)]
        const = float(i + 2)
        a = c.add(Sequence(f"a{i}", vals))
        k = c.add(Sequence(f"k{i}", [const] * tokens_per_op))
        fu = c.add(FunctionalUnit(f"op{i}", op))
        s = c.add(Sink(f"s{i}"))
        c.connect(a, 0, fu, 0)
        c.connect(k, 0, fu, 1)
        c.connect(fu, 0, s, 0)
        sinks.append(s)
        names.append(f"op{i}")
        expected.append([v * const for v in vals])
    c.validate()
    return c, names, sinks, expected


@settings(max_examples=30, deadline=None)
@given(
    n_ops=st.integers(min_value=2, max_value=5),
    tokens=st.integers(min_value=1, max_value=6),
    credit_seed=st.integers(min_value=0, max_value=10_000),
    prio_seed=st.integers(min_value=0, max_value=10_000),
)
def test_sharing_preserves_semantics_for_any_config(
    n_ops, tokens, credit_seed, prio_seed
):
    import random

    c, names, sinks, expected = build_parallel_ops(n_ops, tokens)
    rng = random.Random(credit_seed)
    credits = {nm: rng.randint(1, 4) for nm in names}
    prio = list(names)
    random.Random(prio_seed).shuffle(prio)
    insert_sharing_wrapper(c, names, priority=prio, credits=credits)
    Engine(c).run(
        lambda: all(s.count == tokens for s in sinks), max_cycles=50_000
    )
    for s, exp in zip(sinks, expected):
        assert s.received == exp


@settings(max_examples=20, deadline=None)
@given(
    n_ops=st.integers(min_value=2, max_value=4),
    tokens=st.integers(min_value=1, max_value=5),
    order_seed=st.integers(min_value=0, max_value=10_000),
)
def test_fixed_order_safe_for_independent_ops(n_ops, tokens, order_seed):
    # With *independent* operations a fixed order cannot deadlock (each op
    # produces a request every iteration); results must stay correct.
    import random

    c, names, sinks, expected = build_parallel_ops(n_ops, tokens)
    order = list(names)
    random.Random(order_seed).shuffle(order)
    insert_sharing_wrapper(
        c, names, arbitration="fixed", fixed_order=order,
        credits={nm: 2 for nm in names},
    )
    Engine(c).run(
        lambda: all(s.count == tokens for s in sinks), max_cycles=50_000
    )
    for s, exp in zip(sinks, expected):
        assert s.received == exp


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=4),
    style=st.sampled_from(["bb", "fast-token"]),
)
def test_random_kernel_crush_equivalence(seed, n, style):
    """Random small reduction kernels: CRUSH-shared circuit == reference."""
    import random

    from repro.analysis import critical_cfcs, place_buffers
    from repro.core import crush
    from repro.frontend import (
        Array,
        Const,
        For,
        IConst,
        Kernel,
        Load,
        Param,
        SetCarried,
        Store,
        Var,
        lower_kernel,
        simulate_kernel,
    )
    from repro.frontend.ir import Bin

    rng = random.Random(seed)
    ops = ["fadd", "fmul"]
    expr = Load("a", Var("i"))
    for _ in range(rng.randint(1, 3)):
        expr = Bin(rng.choice(ops), expr, Const(round(rng.uniform(0.5, 2.0), 2)))
    k = Kernel(
        "rand",
        {"N": n},
        [Array("a", "N"), Array("out", 1, role="out")],
        [
            For("i", IConst(0), Param("N"), carried={"s": Const(0.0)},
                body=[SetCarried("s", Bin("fadd", Var("s"), expr))]),
            Store("out", IConst(0), Var("s")),
        ],
    )
    low = lower_kernel(k, style)
    cfcs = critical_cfcs(low.circuit)
    place_buffers(low.circuit, cfcs)
    crush(low.circuit, cfcs)
    run = simulate_kernel(low, max_cycles=200_000)
    assert run.checked
