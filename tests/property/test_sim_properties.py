"""Property-based tests (hypothesis) on the simulation substrate.

Invariants checked on randomized structures:
* token conservation and FIFO ordering through arbitrary buffer chains,
* fork/join round-trips preserve the token stream,
* pipelined operators preserve count and order for any latency,
* the credit counter never exceeds its initial credit bound.
"""

from hypothesis import given, settings, strategies as st

from repro.circuit import (
    CreditCounter,
    DataflowCircuit,
    EagerFork,
    ElasticBuffer,
    FunctionalUnit,
    Join,
    LazyFork,
    Sequence,
    Sink,
    TransparentFifo,
)
from repro.sim import Engine

values_strategy = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=12
)

buffer_chain_strategy = st.lists(
    st.tuples(st.sampled_from(["eb", "tf"]), st.integers(min_value=1, max_value=4)),
    min_size=1,
    max_size=5,
)


@settings(max_examples=40, deadline=None)
@given(values=values_strategy, chain=buffer_chain_strategy)
def test_buffer_chains_preserve_stream(values, chain):
    c = DataflowCircuit("t")
    src = c.add(Sequence("src", values))
    prev, port = src, 0
    for i, (kind, slots) in enumerate(chain):
        if kind == "eb":
            u = c.add(ElasticBuffer(f"b{i}", slots=slots))
        else:
            u = c.add(TransparentFifo(f"b{i}", slots=slots))
        c.connect(prev, port, u, 0)
        prev, port = u, 0
    sink = c.add(Sink("out"))
    c.connect(prev, port, sink, 0)
    Engine(c).run(lambda: sink.count == len(values), max_cycles=10_000)
    assert sink.received == values


@settings(max_examples=30, deadline=None)
@given(values=values_strategy, n_out=st.integers(min_value=2, max_value=5),
       lazy=st.booleans())
def test_fork_copies_to_every_output(values, n_out, lazy):
    c = DataflowCircuit("t")
    src = c.add(Sequence("src", values))
    fork_cls = LazyFork if lazy else EagerFork
    f = c.add(fork_cls("f", n_out))
    sinks = [c.add(Sink(f"s{i}")) for i in range(n_out)]
    c.connect(src, 0, f, 0)
    for i, s in enumerate(sinks):
        c.connect(f, i, s, 0)
    Engine(c).run(
        lambda: all(s.count == len(values) for s in sinks), max_cycles=10_000
    )
    for s in sinks:
        assert s.received == values


@settings(max_examples=30, deadline=None)
@given(values=values_strategy, latency=st.integers(min_value=0, max_value=12))
def test_pipelined_op_preserves_order_any_latency(values, latency):
    c = DataflowCircuit("t")
    src = c.add(Sequence("src", values))
    fu = c.add(FunctionalUnit("fu", "pass", latency_override=latency))
    sink = c.add(Sink("out"))
    c.connect(src, 0, fu, 0)
    c.connect(fu, 0, sink, 0)
    eng = Engine(c)
    eng.run(lambda: sink.count == len(values), max_cycles=10_000)
    assert sink.received == values
    assert eng.cycle == latency + len(values)  # II = 1, latency additive


@settings(max_examples=30, deadline=None)
@given(
    a=values_strategy,
    skew=st.integers(min_value=0, max_value=8),
)
def test_join_pairs_streams_in_order(a, skew):
    b = [x + 1.0 for x in a]
    c = DataflowCircuit("t")
    sa = c.add(Sequence("a", a))
    sb = c.add(Sequence("b", b))
    lag = c.add(FunctionalUnit("lag", "pass", latency_override=max(1, skew)))
    j = c.add(Join("j", 2, data_mode="tuple"))
    sink = c.add(Sink("out"))
    c.connect(sa, 0, j, 0)
    c.connect(sb, 0, lag, 0)
    c.connect(lag, 0, j, 1)
    c.connect(j, 0, sink, 0)
    Engine(c).run(lambda: sink.count == len(a), max_cycles=10_000)
    assert sink.received == list(zip(a, b))


@settings(max_examples=25, deadline=None)
@given(
    initial=st.integers(min_value=1, max_value=5),
    delay=st.integers(min_value=1, max_value=6),
    cycles=st.integers(min_value=5, max_value=60),
)
def test_credit_count_never_exceeds_initial(initial, delay, cycles):
    c = DataflowCircuit("t")
    cc = c.add(CreditCounter("cc", initial))
    f = c.add(LazyFork("f", 2))
    taken = c.add(Sink("taken"))
    lag = c.add(FunctionalUnit("lag", "pass", latency_override=delay))
    c.connect(cc, 0, f, 0)
    c.connect(f, 0, taken, 0)
    c.connect(f, 1, lag, 0)
    c.connect(lag, 0, cc, 0)
    eng = Engine(c)
    for _ in range(cycles):
        eng.step()
        assert 0 <= cc.available <= initial
    # Outstanding grants are bounded by the credit count at all times.
    returned = cc.available + (initial - cc.available)
    assert returned == initial
