"""Property-based exhaustive verification: Equation 1 in full generality.

For random group sizes, priorities and credit allocations satisfying
Equation 1, the credit-based wrapper is *model-checked* deadlock-free —
every reachable state, every environment stalling schedule.  The same
topology with the naive wrapper (no credits) and a reconvergent consumer
exhibits reachable deadlocks.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.circuit import DataflowCircuit, FunctionalUnit, Sequence, Sink
from repro.core import insert_sharing_wrapper
from repro.verify import explore, make_environment_nondeterministic


def joined_consumer_circuit(n_ops, tokens, latency=2):
    """n ops off one value stream whose results reconverge in a join chain —
    the head-of-line-blocking-prone topology of the paper's Figure 1."""
    c = DataflowCircuit("t")
    names = []
    from repro.circuit import EagerFork

    src = c.add(Sequence("src", [float(k + 1) for k in range(tokens)]))
    fork = c.add(EagerFork("fork", n_ops))
    c.connect(src, 0, fork, 0)
    outs = []
    for i in range(n_ops):
        k = c.add(Sequence(f"k{i}", [float(i + 2)] * tokens))
        fu = c.add(FunctionalUnit(f"op{i}", "fmul", latency_override=latency))
        # Skew operand arrival (as Figure 1's M3 waits on M1's result):
        # later ops see their operands several cycles later, so an eager
        # arbiter issues the early op repeatedly first — the HOL setup.
        if i == 0:
            c.connect(fork, i, fu, 0)
        else:
            lag = c.add(
                FunctionalUnit(f"lag{i}", "pass", latency_override=latency + 1)
            )
            c.connect(fork, i, lag, 0)
            c.connect(lag, 0, fu, 0)
        c.connect(k, 0, fu, 1)
        names.append(fu.name)
        outs.append(fu)
    # Reconverge: pairwise joins into a single sink.
    prev = outs[0]
    for i, fu in enumerate(outs[1:]):
        j = c.add(FunctionalUnit(f"join{i}", "fadd", latency_override=1))
        c.connect(prev, 0, j, 0)
        c.connect(fu, 0, j, 1)
        prev = j
    sink = c.add(Sink("out"))
    c.connect(prev, 0, sink, 0)
    c.validate()
    return c, names


@settings(max_examples=12, deadline=None)
@given(
    n_ops=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_equation1_wrappers_exhaustively_deadlock_free(n_ops, seed):
    rng = random.Random(seed)
    c, names = joined_consumer_circuit(n_ops, tokens=2)
    credits = {nm: rng.randint(1, 2) for nm in names}
    prio = list(names)
    rng.shuffle(prio)
    insert_sharing_wrapper(c, names, priority=prio, credits=credits)
    make_environment_nondeterministic(c)
    result = explore(c, max_states=40_000)
    assert result.completed, "state budget exhausted"
    assert result.deadlock_free, (credits, prio)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_naive_wrapper_on_same_topology_deadlocks(seed):
    c, names = joined_consumer_circuit(2, tokens=3, latency=3)
    insert_sharing_wrapper(c, names, use_credits=False,
                           credits={nm: 1 for nm in names})
    make_environment_nondeterministic(c)
    result = explore(c, max_states=40_000)
    assert result.completed
    assert not result.deadlock_free
    assert result.counterexample is not None
