"""Property-based tests on the analysis layer."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    SCCGraph,
    WeightedEdge,
    max_cycle_ratio,
    strongly_connected_components,
)
from repro.errors import AnalysisError


graph_strategy = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=0, max_size=24
)


def to_adj(edges, n=8):
    succ = {i: [] for i in range(n)}
    for a, b in edges:
        succ[a].append(b)
    return succ


@settings(max_examples=60, deadline=None)
@given(edges=graph_strategy)
def test_sccs_partition_the_nodes(edges):
    succ = to_adj(edges)
    sccs = strongly_connected_components(range(8), succ)
    flat = [n for s in sccs for n in s]
    assert sorted(flat) == list(range(8))


@settings(max_examples=60, deadline=None)
@given(edges=graph_strategy)
def test_sccs_match_networkx(edges):
    import networkx as nx

    succ = to_adj(edges)
    mine = {tuple(sorted(s)) for s in strongly_connected_components(range(8), succ)}
    g = nx.DiGraph(edges)
    g.add_nodes_from(range(8))
    ref = {tuple(sorted(s)) for s in nx.strongly_connected_components(g)}
    assert mine == ref


@settings(max_examples=60, deadline=None)
@given(edges=graph_strategy)
def test_condensation_order_is_topological(edges):
    succ = to_adj(edges)
    g = SCCGraph(list(range(8)), succ)
    for u in range(8):
        for v in succ[u]:
            if not g.same_scc(u, v):
                assert g.topo_position(u) < g.topo_position(v)


weighted_graph_strategy = st.lists(
    st.tuples(
        st.integers(0, 4),
        st.integers(0, 4),
        st.integers(0, 8),   # latency
        st.integers(0, 3),   # tokens
    ),
    min_size=1,
    max_size=14,
)


@settings(max_examples=60, deadline=None)
@given(raw=weighted_graph_strategy)
def test_mcr_equals_brute_force(raw):
    import itertools

    import networkx as nx

    edges = [WeightedEdge(a, b, lat, tok) for a, b, lat, tok in raw]
    g = nx.DiGraph()
    for e in edges:
        if g.has_edge(e.src, e.dst):
            g[e.src][e.dst]["list"].append(e)
        else:
            g.add_edge(e.src, e.dst, list=[e])
    best = Fraction(1)
    tokenless = False
    for cyc in nx.simple_cycles(g):
        pairs = list(zip(cyc, cyc[1:] + cyc[:1]))
        options = [g[a][b]["list"] for a, b in pairs]
        for combo in itertools.product(*options):
            lat = sum(e.latency for e in combo)
            tok = sum(e.tokens for e in combo)
            if tok == 0:
                if lat > 0:
                    tokenless = True
                continue
            best = max(best, Fraction(lat, tok))
    if tokenless:
        try:
            max_cycle_ratio(edges)
            raised = False
        except AnalysisError:
            raised = True
        assert raised
    else:
        assert max_cycle_ratio(edges).ii == best


@settings(max_examples=40, deadline=None)
@given(raw=weighted_graph_strategy, extra_lat=st.integers(1, 5))
def test_mcr_monotone_in_latency(raw, extra_lat):
    edges = [WeightedEdge(a, b, lat, tok) for a, b, lat, tok in raw]
    try:
        base = max_cycle_ratio(edges).ii
    except AnalysisError:
        return
    bumped = [
        WeightedEdge(e.src, e.dst, e.latency + extra_lat, e.tokens) for e in edges
    ]
    try:
        more = max_cycle_ratio(bumped).ii
    except AnalysisError:
        return  # a zero-latency tokenless cycle became latency-positive
    assert more >= base
