"""Shared pytest configuration."""

import sys
from pathlib import Path

import pytest

# Make `tests.helpers` importable regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from fresh pipeline runs "
             "instead of comparing against them (run without -n)",
    )


@pytest.fixture
def regen_goldens(request) -> bool:
    return request.config.getoption("--regen-goldens")
