"""Shared pytest configuration."""

import sys
from pathlib import Path

# Make `tests.helpers` importable regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
