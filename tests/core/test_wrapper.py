"""Sharing wrapper construction and runtime behaviour."""

import pytest

from repro.circuit import (
    ArbiterMerge,
    CreditCounter,
    DataflowCircuit,
    Demux,
    FixedOrderMerge,
    FunctionalUnit,
    LazyFork,
    Sequence,
    Sink,
)
from repro.core import check_credit_constraint, insert_sharing_wrapper
from repro.errors import SharingError
from repro.sim import Engine

from tests.helpers import fig1_circuit


def two_muls_circuit(n=6):
    c = DataflowCircuit("t")
    a = c.add(Sequence("a", [float(i) for i in range(n)]))
    b = c.add(Sequence("b", [float(i) for i in range(n)]))
    k1 = c.add(Sequence("k1", [2.0] * n))
    k2 = c.add(Sequence("k2", [3.0] * n))
    m1 = c.add(FunctionalUnit("m1", "fmul"))
    m2 = c.add(FunctionalUnit("m2", "fmul"))
    s1, s2 = c.add(Sink("s1")), c.add(Sink("s2"))
    c.connect(a, 0, m1, 0)
    c.connect(k1, 0, m1, 1)
    c.connect(b, 0, m2, 0)
    c.connect(k2, 0, m2, 1)
    c.connect(m1, 0, s1, 0)
    c.connect(m2, 0, s2, 0)
    c.validate()
    return c, s1, s2, n


class TestConstruction:
    def test_replaces_ops_with_one_shared_unit(self):
        c, s1, s2, n = two_muls_circuit()
        w = insert_sharing_wrapper(c, ["m1", "m2"])
        assert "m1" not in c and "m2" not in c
        shared = [
            u for u in c.units_of_type(FunctionalUnit) if u.bundled
        ]
        assert len(shared) == 1 and shared[0].op == "fmul"
        assert w.size == 2
        assert set(w.all_unit_names()) <= set(c.units)

    def test_structure_matches_figure3(self):
        c, *_ = two_muls_circuit()
        w = insert_sharing_wrapper(c, ["m1", "m2"], credits={"m1": 2, "m2": 2})
        assert isinstance(c.unit(w.arbiter), ArbiterMerge)
        assert isinstance(c.unit(w.output_buffers[0]).__class__, type)
        assert len(w.joins) == 2
        assert len(w.credit_counters) == 2
        assert len(w.lazy_forks) == 2
        assert isinstance(c.unit(w.lazy_forks[0]), LazyFork)
        ccs = [c.unit(n) for n in w.credit_counters]
        assert all(isinstance(u, CreditCounter) and u.initial == 2 for u in ccs)

    def test_functional_equivalence(self):
        c, s1, s2, n = two_muls_circuit()
        insert_sharing_wrapper(c, ["m1", "m2"], credits={"m1": 2, "m2": 2})
        Engine(c).run(lambda: s1.count == n and s2.count == n, max_cycles=500)
        assert s1.received == [i * 2.0 for i in range(n)]
        assert s2.received == [i * 3.0 for i in range(n)]

    def test_group_of_three(self):
        c = DataflowCircuit("t")
        sinks = []
        names = []
        for i in range(3):
            a = c.add(Sequence(f"a{i}", [1.0, 2.0]))
            k = c.add(Sequence(f"k{i}", [float(i + 1)] * 2))
            m = c.add(FunctionalUnit(f"m{i}", "fmul"))
            s = c.add(Sink(f"s{i}"))
            c.connect(a, 0, m, 0)
            c.connect(k, 0, m, 1)
            c.connect(m, 0, s, 0)
            sinks.append(s)
            names.append(f"m{i}")
        w = insert_sharing_wrapper(c, names)
        assert isinstance(c.unit(w.arbiter), ArbiterMerge)
        Engine(c).run(lambda: all(s.count == 2 for s in sinks), max_cycles=200)
        assert sinks[2].received == [3.0, 6.0]

    def test_fixed_order_variant(self):
        c, s1, s2, n = two_muls_circuit()
        w = insert_sharing_wrapper(
            c, ["m1", "m2"], arbitration="fixed", fixed_order=["m1", "m2"]
        )
        assert isinstance(c.unit(w.arbiter), FixedOrderMerge)
        Engine(c).run(lambda: s1.count == n and s2.count == n, max_cycles=500)

    def test_naive_variant_has_no_credits(self):
        c, s1, s2, n = two_muls_circuit()
        w = insert_sharing_wrapper(c, ["m1", "m2"], use_credits=False)
        assert w.credit_counters == []
        assert w.lazy_forks == []
        assert not c.units_of_type(CreditCounter)


class TestValidationRules:
    def test_group_of_one_rejected(self):
        c, *_ = two_muls_circuit()
        with pytest.raises(SharingError, match="at least 2"):
            insert_sharing_wrapper(c, ["m1"])

    def test_mixed_types_rejected(self):
        c, *_ = two_muls_circuit()
        extra = c.add(FunctionalUnit("add1", "fadd"))
        x = c.add(Sequence("x", [1.0]))
        y = c.add(Sequence("y", [1.0]))
        s = c.add(Sink("sx"))
        c.connect(x, 0, extra, 0)
        c.connect(y, 0, extra, 1)
        c.connect(extra, 0, s, 0)
        with pytest.raises(SharingError, match="R1"):
            insert_sharing_wrapper(c, ["m1", "add1"])

    def test_non_fu_rejected(self):
        c, s1, *_ = two_muls_circuit()
        with pytest.raises(SharingError, match="not a shareable"):
            insert_sharing_wrapper(c, ["s1", "m2"])

    def test_bad_priority_rejected(self):
        c, *_ = two_muls_circuit()
        with pytest.raises(SharingError, match="permutation"):
            insert_sharing_wrapper(c, ["m1", "m2"], priority=["m1", "m1"])

    def test_equation1_enforced(self):
        c, *_ = two_muls_circuit()
        with pytest.raises(SharingError, match="Equation 1"):
            insert_sharing_wrapper(
                c, ["m1", "m2"], credits={"m1": 3, "m2": 1},
                ob_slots={"m1": 2, "m2": 1},
            )

    def test_check_credit_constraint_direct(self):
        check_credit_constraint({"a": 2}, {"a": 2})
        with pytest.raises(SharingError):
            check_credit_constraint({"a": 3}, {"a": 2})
        with pytest.raises(SharingError, match="at least one credit"):
            check_credit_constraint({"a": 0}, {"a": 2})

    def test_unknown_arbitration(self):
        c, *_ = two_muls_circuit()
        with pytest.raises(SharingError, match="arbitration"):
            insert_sharing_wrapper(c, ["m1", "m2"], arbitration="coinflip")


class TestCreditThroughput:
    def _shared_fig1(self, credits):
        c, out, expected = fig1_circuit(n_tokens=10, slack_slots=10)
        insert_sharing_wrapper(
            c, ["M2", "M3"], credits={"M2": credits, "M3": credits}
        )
        return c, out, expected

    def test_more_credits_more_throughput(self):
        # Paper Section 4.1: with 1 credit each, at most 2 of 3 pipeline
        # stages can be used; more credits restore utilization.
        c1, out1, exp = self._shared_fig1(credits=1)
        e1 = Engine(c1)
        e1.run(lambda: out1.count == 10, max_cycles=1000)
        c2, out2, _ = self._shared_fig1(credits=3)
        e2 = Engine(c2)
        e2.run(lambda: out2.count == 10, max_cycles=1000)
        assert out1.received == out2.received == exp
        assert e2.cycle < e1.cycle

    def test_results_keep_program_order_per_op(self):
        c, out, expected = self._shared_fig1(credits=2)
        Engine(c).run(lambda: out.count == 10, max_cycles=1000)
        assert out.received == expected
