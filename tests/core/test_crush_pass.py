"""The top-level CRUSH pass on lowered kernels."""

from repro.analysis import critical_cfcs, place_buffers
from repro.circuit import CreditCounter, FunctionalUnit
from repro.core import crush
from repro.frontend import lower_kernel, simulate_kernel
from repro.frontend.kernels import build


def prepared(name, style="bb"):
    low = lower_kernel(build(name, scale="small"), style)
    cfcs = critical_cfcs(low.circuit)
    place_buffers(low.circuit, cfcs)
    return low, cfcs


class TestCrushPass:
    def test_gemm_collapses_to_one_unit_per_type(self):
        low, cfcs = prepared("gemm")
        res = crush(low.circuit, cfcs)
        shared = [u for u in low.circuit.units_of_type(FunctionalUnit) if u.bundled]
        assert {u.op for u in shared} == {"fmul"}  # 1 fadd stays unshared
        census = {}
        for u in low.circuit.units_of_type(FunctionalUnit):
            if u.spec.shareable:
                census[u.op] = census.get(u.op, 0) + 1
        assert census == {"fadd": 1, "fmul": 1}

    def test_result_records_decisions(self):
        low, cfcs = prepared("gesummv")
        res = crush(low.circuit, cfcs)
        assert res.units_removed() > 0
        assert res.shared_groups()
        for g in res.shared_groups():
            key = res.group_key(g)
            assert sorted(res.priorities[key]) == sorted(g)
            assert set(res.credits[key]) == set(g)
            assert all(v >= 1 for v in res.credits[key].values())
        assert res.opt_time_s > 0

    def test_credits_follow_equation3(self):
        low, cfcs = prepared("gemm")
        res = crush(low.circuit, cfcs)
        for w in res.wrappers:
            for op, n_cc in w.credits.items():
                occ = res.occupancies.get(op, 0)
                import math

                assert n_cc == max(1, math.ceil(occ) + 1)
                assert w.ob_slots[op] >= n_cc  # Equation 1

    def test_shared_circuit_simulates_correctly(self):
        low, cfcs = prepared("atax")
        crush(low.circuit, cfcs)
        run = simulate_kernel(low, max_cycles=200000)
        assert run.checked and not run.mismatches

    def test_crush_on_fast_token_style(self):
        low, cfcs = prepared("bicg", style="fast-token")
        res = crush(low.circuit, cfcs)
        assert res.shared_groups()
        run = simulate_kernel(low, max_cycles=200000)
        assert run.checked

    def test_no_candidates_is_a_noop(self):
        low, cfcs = prepared("gemm")
        res = crush(low.circuit, cfcs, candidates=[])
        assert res.groups == []
        assert res.wrappers == []
        assert not any(isinstance(u, CreditCounter) for u in low.circuit.units.values())
