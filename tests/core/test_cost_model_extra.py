"""Equation 2 behaviour at the system level: when sharing stops paying."""

from repro.core import SharingCostModel, default_cost_model


class TestEquation2Systemic:
    def test_group_cost_zero_for_empty(self):
        cm = default_cost_model()
        assert cm.group_cost("fadd", 0) == 0.0

    def test_total_cost_monotone_in_sharing_for_fp(self):
        """For fadds, fewer groups is always cheaper in Eq. 2's terms."""
        cm = default_cost_model()
        n = 8
        partitions = {
            "all singleton": [1] * n,
            "pairs": [2] * (n // 2),
            "one group": [n],
        }
        costs = {k: cm.total_cost("fadd", v) for k, v in partitions.items()}
        assert costs["one group"] < costs["pairs"] < costs["all singleton"]

    def test_crossover_exists_for_cheap_ops(self):
        """A synthetic op cheaper than the wrapper never merges: the cost
        curve against group size has its minimum at singletons — exactly
        the paper's integer-adder example."""
        cm = SharingCostModel(
            unit_cost=lambda t: 30.0,
            wrapper_cost=lambda t, n: 50.0 + 45.0 * n,
        )
        n = 6
        assert cm.total_cost("iadd", [1] * n) < cm.total_cost("iadd", [n])
        assert not cm.merge_reduces_cost("iadd", 1, 1)

    def test_dsp_weight_drives_fp_sharing(self):
        """Even if the wrapper's LUT cost exceeded the fmul's LUTs, the DSP
        weight keeps the merge profitable — DSPs are the scarce resource."""
        from repro.resources import (
            DSP_WEIGHT,
            unit_equivalent_cost,
            wrapper_equivalent_cost,
        )

        fmul_cost = unit_equivalent_cost("fmul")
        assert fmul_cost > DSP_WEIGHT * 3 * 0.9  # DSP term dominates
        for n in range(2, 12):
            saved = fmul_cost * (n - 1)
            assert wrapper_equivalent_cost("fmul", n) < saved
