"""Output-buffer elision (the paper's Section 6.4 extension)."""

import pytest

from repro.circuit import DataflowCircuit, FunctionalUnit, Sequence, Sink
from repro.core import insert_sharing_wrapper
from repro.core.elision import ElisionResult, elide_output_buffers
from repro.errors import SharingError
from repro.resources import estimate_circuit
from repro.sim import Engine
from repro.verify import explore, make_environment_nondeterministic

from tests.helpers import fig1_circuit


def sink_consumers_circuit(n=3, tokens=4):
    """Shared ops draining straight into sinks: every OB is elidable."""
    c = DataflowCircuit("t")
    names, sinks = [], []
    for i in range(n):
        a = c.add(Sequence(f"a{i}", [float(k) for k in range(tokens)]))
        b = c.add(Sequence(f"b{i}", [float(i + 1)] * tokens))
        fu = c.add(FunctionalUnit(f"op{i}", "fmul"))
        s = c.add(Sink(f"s{i}"))
        c.connect(a, 0, fu, 0)
        c.connect(b, 0, fu, 1)
        c.connect(fu, 0, s, 0)
        names.append(fu.name)
        sinks.append(s)
    w = insert_sharing_wrapper(c, names, credits={nm: 2 for nm in names})
    return c, w, sinks, tokens


class TestStructuralElision:
    def test_removes_all_obs_with_sink_consumers(self):
        c, w, sinks, tokens = sink_consumers_circuit()
        before = estimate_circuit(c)
        result = elide_output_buffers(c, [w], mode="structural")
        after = estimate_circuit(c)
        assert result.count == 3
        assert w.output_buffers == []
        assert after.lut < before.lut  # the paper's motivation: LUT savings
        Engine(c).run(lambda: all(s.count == tokens for s in sinks),
                      max_cycles=2000)
        assert sinks[1].received == [0.0, 2.0, 4.0, 6.0]

    def test_keeps_obs_with_real_consumers(self):
        c, out, _ = fig1_circuit(4, slack_slots=0)
        w = insert_sharing_wrapper(c, ["M2", "M3"],
                                   credits={"M2": 1, "M3": 1})
        result = elide_output_buffers(c, [w], mode="structural")
        # M2/M3 feed a join — not always-ready, so nothing may be removed.
        assert result.count == 0
        assert len(result.kept) == 2

    def test_unknown_mode_rejected(self):
        c, w, *_ = sink_consumers_circuit()
        with pytest.raises(SharingError, match="mode"):
            elide_output_buffers(c, [w], mode="hopeful")

    def test_idempotent(self):
        c, w, sinks, tokens = sink_consumers_circuit()
        elide_output_buffers(c, [w], mode="structural")
        again = elide_output_buffers(c, [w], mode="structural")
        assert again.count == 0


class TestVerifiedElision:
    def test_verifier_distinguishes_load_bearing_from_redundant(self):
        # Figure 1's join consumer: M2's OB is load-bearing (its token must
        # wait for the much later M3 result — removing it re-enables
        # head-of-line blocking), while M3's OB is genuinely redundant (the
        # join is always ready for it by the time it arrives).  The model
        # checker proves exactly that split — a removal the structural rule
        # could never justify.
        c, out, _ = fig1_circuit(3, slack_slots=0)
        w = insert_sharing_wrapper(c, ["M2", "M3"],
                                   credits={"M2": 1, "M3": 1})
        make_environment_nondeterministic(c)
        ob_m2, ob_m3 = list(w.output_buffers)
        result = elide_output_buffers(c, [w], mode="verify", max_states=60_000)
        assert result.kept == [ob_m2]
        assert result.removed == [ob_m3]
        # The optimized circuit remains verified deadlock-free.
        assert explore(c, max_states=60_000)

    def test_verifier_allows_safe_removal(self):
        c, w, sinks, tokens = sink_consumers_circuit(n=2, tokens=2)
        make_environment_nondeterministic(c)
        result = elide_output_buffers(c, [w], mode="verify", max_states=60_000)
        # Environment sinks may stall, but with 2 credits and the branch
        # holding the head token the wrapper still cannot deadlock: the
        # checker proves the OBs removable even under stalling.
        assert result.count + len(result.kept) == 2
        assert explore(c, max_states=120_000)
