"""Algorithm 1 (grouping: R1/R2/R3), Algorithm 2 (priority), Eq. 2/3."""

from fractions import Fraction

import pytest

from repro.analysis import cfc_of_units, critical_cfcs, occupancy_map
from repro.circuit import (
    DataflowCircuit,
    EagerFork,
    ElasticBuffer,
    FunctionalUnit,
    Merge,
    Sequence,
    Sink,
)
from repro.core import (
    SharingCostModel,
    access_priority,
    allocate_credits,
    check_r1,
    check_r2,
    check_r3,
    credits_for_op,
    output_buffer_slots,
    sharing_candidates,
    sharing_groups,
)


def chain_cfc_circuit():
    """A loop CFC where f1 feeds f2 (different SCC positions) plus an
    accumulator cycle through f2: merge -> f1 -> f2 -> eb -> merge."""
    c = DataflowCircuit("t")
    src = c.add(Sequence("src", [0.0]))
    m = c.add(Merge("m", 2))
    f1 = c.add(FunctionalUnit("f1", "fmul"))
    k = c.add(Sequence("k", [1.0] * 50))
    f2 = c.add(FunctionalUnit("f2", "fmul"))
    k2 = c.add(Sequence("k2", [1.0] * 50))
    eb = c.add(ElasticBuffer("eb", 2))
    c.connect(src, 0, m, 0)
    c.connect(m, 0, f1, 0)
    c.connect(k, 0, f1, 1)
    c.connect(f1, 0, f2, 0)
    c.connect(k2, 0, f2, 1)
    c.connect(f2, 0, eb, 0)
    c.connect(eb, 0, m, 1).attrs["tokens"] = 1
    for u in (m, f1, f2, eb):
        u.meta["cfc"] = "L0"
    return c


def same_scc_circuit():
    """Figure 5-like: M1 and M2 in one SCC at equal offsets."""
    c = DataflowCircuit("t")
    src = c.add(Sequence("src", [0.0]))
    m = c.add(Merge("m", 2))
    fork = c.add(EagerFork("fork", 2))
    m1 = c.add(FunctionalUnit("m1", "fmul"))
    m2 = c.add(FunctionalUnit("m2", "fmul"))
    k1 = c.add(Sequence("k1", [1.0] * 50))
    k2 = c.add(Sequence("k2", [1.0] * 50))
    join = c.add(FunctionalUnit("join", "fadd"))
    eb = c.add(ElasticBuffer("eb", 2))
    c.connect(src, 0, m, 0)
    c.connect(m, 0, fork, 0)
    c.connect(fork, 0, m1, 0)
    c.connect(k1, 0, m1, 1)
    c.connect(fork, 1, m2, 0)
    c.connect(k2, 0, m2, 1)
    c.connect(m1, 0, join, 0)
    c.connect(m2, 0, join, 1)
    c.connect(join, 0, eb, 0)
    c.connect(eb, 0, m, 1).attrs["tokens"] = 1
    for u in (m, fork, m1, m2, join, eb):
        u.meta["cfc"] = "L0"
    return c


class TestR1:
    def test_same_type_passes(self):
        c = chain_cfc_circuit()
        assert check_r1(c, ["f1", "f2"])

    def test_mixed_type_fails(self):
        c = same_scc_circuit()
        assert not check_r1(c, ["m1", "join"])

    def test_mixed_latency_fails(self):
        c = DataflowCircuit("t")
        a = c.add(FunctionalUnit("a", "fmul"))
        b = c.add(FunctionalUnit("b", "fmul", latency_override=2))
        assert not check_r1(c, ["a", "b"])


class TestR2:
    def test_within_capacity_passes(self):
        c = chain_cfc_circuit()
        cfc = critical_cfcs(c)[0]
        occ = occupancy_map(c, [cfc])
        # II = lat(f1)+lat(f2)+1 = 9; each fmul occupancy 4/9; sum < 4.
        assert check_r2(c, ["f1", "f2"], cfc, occ)

    def test_beyond_capacity_fails(self):
        c = chain_cfc_circuit()
        cfc = critical_cfcs(c)[0]
        # Pretend each op fills the whole unit.
        occ = {"f1": Fraction(3), "f2": Fraction(3)}
        assert not check_r2(c, ["f1", "f2"], cfc, occ)

    def test_ops_outside_cfc_unconstrained(self):
        c = chain_cfc_circuit()
        cfc = critical_cfcs(c)[0]
        assert check_r2(c, ["x", "y"], cfc, {})


class TestR3:
    def test_different_sccs_pass(self):
        # f1 and f2 chained: both are in the loop SCC here... build the
        # chain circuit: f1 and f2 ARE in the same SCC (cycle through both),
        # but their distances from other members differ by one hop.
        c = chain_cfc_circuit()
        cfc = critical_cfcs(c)[0]
        assert check_r3(c, ["f1", "f2"], cfc)

    def test_equal_offsets_fail(self):
        # Figure 5: every other SCC member sits at the same max distance to
        # m1 and m2 -> reject.
        c = same_scc_circuit()
        cfc = critical_cfcs(c)[0]
        assert not check_r3(c, ["m1", "m2"], cfc)

    def test_single_member_trivially_passes(self):
        c = same_scc_circuit()
        cfc = critical_cfcs(c)[0]
        assert check_r3(c, ["m1"], cfc)


class TestAlgorithm1:
    def test_merges_compatible_ops(self):
        c = chain_cfc_circuit()
        cfcs = critical_cfcs(c)
        occ = occupancy_map(c, cfcs)
        groups = sharing_groups(c, cfcs, occ)
        assert [sorted(g) for g in groups] == [["f1", "f2"]]

    def test_r3_keeps_same_offset_ops_apart(self):
        c = same_scc_circuit()
        cfcs = critical_cfcs(c)
        occ = occupancy_map(c, cfcs)
        groups = sharing_groups(c, cfcs, occ, candidates=["m1", "m2"])
        assert sorted(map(sorted, groups)) == [["m1"], ["m2"]]

    def test_candidates_default_to_fp_ops(self):
        c = same_scc_circuit()
        assert sharing_candidates(c) == ["join", "m1", "m2"]

    def test_cost_model_can_veto(self):
        c = chain_cfc_circuit()
        cfcs = critical_cfcs(c)
        occ = occupancy_map(c, cfcs)
        never = SharingCostModel(
            unit_cost=lambda t: 0.0, wrapper_cost=lambda t, n: 1e9
        )
        groups = sharing_groups(c, cfcs, occ, cost_model=never)
        assert all(len(g) == 1 for g in groups)


class TestAlgorithm2:
    def test_producer_prioritized(self):
        c = chain_cfc_circuit()
        cfcs = critical_cfcs(c)
        # f1 and f2 share one SCC here; also test the cross-SCC case below.
        prio = access_priority(["f2", "f1"], cfcs)
        assert sorted(prio) == ["f1", "f2"]

    def test_cross_scc_topological_order(self):
        # Build: loop SCC {m, acc, eb}; downstream op f2 in a later SCC.
        c = DataflowCircuit("t")
        src = c.add(Sequence("src", [0.0]))
        m = c.add(Merge("m", 2))
        acc = c.add(FunctionalUnit("acc", "fadd"))
        k = c.add(Sequence("k", [1.0] * 10))
        eb = c.add(ElasticBuffer("eb", 2))
        fork = c.add(EagerFork("fork", 2))
        post = c.add(FunctionalUnit("post", "fadd"))
        k2 = c.add(Sequence("k2", [1.0] * 10))
        s = c.add(Sink("s"))
        c.connect(src, 0, m, 0)
        c.connect(m, 0, acc, 0)
        c.connect(k, 0, acc, 1)
        c.connect(acc, 0, fork, 0)
        c.connect(fork, 0, eb, 0)
        c.connect(eb, 0, m, 1).attrs["tokens"] = 1
        c.connect(fork, 1, post, 0)
        c.connect(k2, 0, post, 1)
        c.connect(post, 0, s, 0)
        for u in (m, acc, eb, fork, post):
            u.meta["cfc"] = "L0"
        cfcs = critical_cfcs(c)
        # post consumes acc's results: acc must come first.
        assert access_priority(["post", "acc"], cfcs) == ["acc", "post"]
        assert access_priority(["acc", "post"], cfcs) == ["acc", "post"]

    def test_ops_in_no_common_cfc_keep_order(self):
        prio = access_priority(["b", "a"], [])
        assert prio == ["b", "a"]


class TestCreditsAndCost:
    def test_equation3(self):
        assert credits_for_op(Fraction(0)) == 1
        assert credits_for_op(Fraction(10, 11)) == 2
        assert credits_for_op(Fraction(3, 2)) == 3
        assert credits_for_op(Fraction(2)) == 3

    def test_negative_occupancy_rejected(self):
        with pytest.raises(ValueError):
            credits_for_op(Fraction(-1))

    def test_allocate_and_ob_slots(self):
        creds = allocate_credits(["a", "b"], {"a": Fraction(10, 11)})
        assert creds == {"a": 2, "b": 1}
        assert output_buffer_slots(creds) == creds

    def test_cost_model_equation2(self):
        cm = SharingCostModel(
            unit_cost=lambda t: 100.0, wrapper_cost=lambda t, n: 10.0 * n
        )
        # 4 singletons: 4 units, no wrappers.
        assert cm.total_cost("fadd", [1, 1, 1, 1]) == 400.0
        # One group of 4: 1 unit + wrapper(4).
        assert cm.total_cost("fadd", [4]) == 140.0
        assert cm.merge_reduces_cost("fadd", 2, 2)

    def test_cost_model_vetoes_cheap_ops(self):
        cm = SharingCostModel(
            unit_cost=lambda t: 5.0, wrapper_cost=lambda t, n: 10.0 * n
        )
        assert not cm.merge_reduces_cost("iadd", 1, 1)

    def test_default_cost_model_shares_fp_not_int(self):
        from repro.core import default_cost_model

        cm = default_cost_model()
        assert cm.merge_reduces_cost("fadd", 1, 1)
        assert cm.merge_reduces_cost("fmul", 3, 3)
        assert not cm.merge_reduces_cost("iadd", 1, 1)
