"""Standalone wrapper characterization (Figures 9/10 substrate)."""

import pytest

from repro.core.standalone import (
    build_shared_standalone,
    build_standalone_group,
    paper_credits,
    shared_group_resources,
    unshared_group_resources,
    wrapper_component_breakdown,
)
from repro.sim import Engine


class TestBuilders:
    def test_group_builder_valid_and_simulable(self):
        c, names = build_standalone_group(3, "fmul", tokens=2)
        assert len(names) == 3
        sinks = [c.unit(f"s{i}") for i in range(3)]
        Engine(c).run(lambda: all(s.count == 2 for s in sinks), max_cycles=200)

    def test_shared_standalone_functional(self):
        c, wrapper = build_shared_standalone(4, "fadd")
        assert wrapper is not None and wrapper.size == 4
        sinks = [c.unit(f"s{i}") for i in range(4)]
        Engine(c).run(lambda: all(s.count == 4 for s in sinks), max_cycles=2000)
        assert sinks[2].received == [2.0, 3.0, 4.0, 5.0]

    def test_single_op_returns_no_wrapper(self):
        c, wrapper = build_shared_standalone(1, "fadd")
        assert wrapper is None

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            build_shared_standalone(2, "fadd", strategy="magic")

    def test_paper_credit_sizing(self):
        # Φ = lat/|G|, N_CC = ceil(Φ)+1: fadd lat 10.
        assert paper_credits(2) == 6
        assert paper_credits(5) == 3
        assert paper_credits(10) == 2
        assert paper_credits(13) == 2


class TestResources:
    def test_sharing_two_fadds_already_pays(self):
        assert shared_group_resources(2).lut < unshared_group_resources(2).lut
        assert shared_group_resources(2).ff < unshared_group_resources(2).ff

    def test_shared_dsp_constant(self):
        for n in (2, 5, 9):
            assert shared_group_resources(n).dsp == 2  # one fadd

    def test_inorder_wrapper_more_ffs_than_crush(self):
        for n in (3, 7):
            assert (
                shared_group_resources(n, strategy="inorder").ff
                >= shared_group_resources(n, strategy="crush").ff
            )

    def test_breakdown_covers_all_components(self):
        bd = wrapper_component_breakdown(5)
        assert set(bd) == {
            "Credit counters", "Joins", "Branch", "Shared unit",
            "Condition buffer", "Merges and muxes", "Output buffers",
        }
        assert bd["Shared unit"].dsp == 2
        assert bd["Output buffers"].lut > 0

    def test_breakdown_sums_to_total(self):
        bd = wrapper_component_breakdown(6)
        total = shared_group_resources(6)
        assert sum(v.lut for v in bd.values()) == total.lut
        assert sum(v.ff for v in bd.values()) == total.ff
