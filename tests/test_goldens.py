"""Golden regression tests for the full pipeline.

Every ``(kernel, technique)`` pair has a committed small-scale golden
under ``tests/goldens/<kernel>-<technique>.json`` holding the
deterministic metric set (dsp / slices / lut / ff / cp_ns / cycles, plus
the functional-unit census).  A fresh ``run_technique`` execution must
reproduce the goldens bit-for-bit: the pipeline is deterministic (this is
also what the sweep cache and the differential parallel tests rely on),
so *any* drift here is a behavior change that must be reviewed.

After an intentional change, regenerate with

    python -m pytest tests/test_goldens.py --regen-goldens -q

and commit the diff.  ``opt_time_s`` is wall-clock and deliberately not
part of the goldens.
"""

import json
from pathlib import Path

import pytest

from repro.frontend.kernels import KERNEL_NAMES
from repro.pipeline import TECHNIQUES, run_technique

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_METRICS = ("dsp", "slices", "lut", "ff", "cp_ns", "cycles")

PAIRS = [(k, t) for k in KERNEL_NAMES for t in TECHNIQUES]


def golden_path(kernel: str, technique: str) -> Path:
    return GOLDEN_DIR / f"{kernel}-{technique}.json"


def observed_metrics(kernel: str, technique: str) -> dict:
    row = run_technique(kernel, technique, style="bb", scale="small")
    data = {m: getattr(row, m) for m in GOLDEN_METRICS}
    data["fu_census"] = row.fu_census
    # The statically predicted steady-state II (exact Fraction string) is
    # part of the golden: drift means the token-flow abstraction changed.
    data["predicted_ii"] = row.predicted_ii
    # The memory-dependence classification is part of the golden too:
    # drift means the dependence prover's verdicts changed.
    data["mem_class"] = row.mem_class
    data["memdep_diags"] = row.memdep_diags
    return data


@pytest.mark.parametrize("kernel,technique", PAIRS,
                         ids=[f"{k}-{t}" for k, t in PAIRS])
def test_golden_metrics(kernel, technique, regen_goldens):
    path = golden_path(kernel, technique)
    got = observed_metrics(kernel, technique)

    if regen_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(got, indent=2, sort_keys=True) + "\n")
        return

    assert path.is_file(), (
        f"missing golden {path.name}; regenerate with "
        f"`python -m pytest tests/test_goldens.py --regen-goldens`"
    )
    want = json.loads(path.read_text())
    assert got == want, (
        f"{kernel}/{technique} drifted from its golden {path.name}; if the "
        f"change is intentional, rerun with --regen-goldens and commit"
    )


def test_goldens_cover_every_pair():
    """No stale or missing golden files relative to the current suite."""
    expected = {golden_path(k, t).name for k, t in PAIRS}
    actual = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert actual == expected
