"""Table renderers and figure data emitters."""

from repro.reporting import (
    Series,
    ascii_scatter,
    average_improvement,
    dominates,
    geomean_ratio,
    pareto_front,
    render_table,
    series_csv,
    write_csv,
)


class TestTables:
    def test_render_aligns_columns(self):
        out = render_table(["name", "value"], [["a", 1], ["long", 23.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len({len(l) for l in lines[1:2] + lines[3:]}) == 1

    def test_write_csv(self, tmp_path):
        p = tmp_path / "t.csv"
        write_csv(str(p), ["a", "b"], [[1, 2], [3, 4]])
        assert p.read_text().splitlines()[0] == "a,b"
        assert len(p.read_text().splitlines()) == 3

    def test_average_improvement(self):
        base = {"k1": {"dsp": 10}, "k2": {"dsp": 20}}
        ours = {"k1": {"dsp": 5}, "k2": {"dsp": 10}}
        assert average_improvement(base, ours, "dsp") == -50.0

    def test_average_improvement_skips_missing(self):
        base = {"k1": {"dsp": 10}, "k2": {"dsp": 0}}
        ours = {"k1": {"dsp": 5}}
        assert average_improvement(base, ours, "dsp") == -50.0

    def test_geomean_ratio(self):
        assert geomean_ratio([(1.0, 2.0), (1.0, 0.5)]) == 1.0
        assert geomean_ratio([]) == 1.0


class TestFigures:
    def test_series_and_csv(self):
        s = Series("a")
        s.add(1, 2, label="p1")
        s.add(3, 4, label="p2")
        rows = series_csv([s])
        assert rows == [("a", "p1", 1.0, 2.0), ("a", "p2", 3.0, 4.0)]

    def test_ascii_scatter_renders(self):
        s1 = Series("crush")
        s1.add(0.5, 0.3)
        s2 = Series("naive")
        s2.add(1.0, 1.0)
        art = ascii_scatter([s1, s2], title="tradeoff", xlabel="exec", ylabel="ff")
        assert "tradeoff" in art
        assert "o=crush" in art and "x=naive" in art
        assert "o" in art.splitlines()[3] or any("o" in l for l in art.splitlines())

    def test_ascii_scatter_empty(self):
        assert "(no data)" in ascii_scatter([Series("e")], title="t")

    def test_pareto_front(self):
        pts = [(1.0, 3.0), (2.0, 1.0), (3.0, 2.0), (0.5, 4.0)]
        front = pareto_front(pts)
        assert (3.0, 2.0) not in front
        assert (2.0, 1.0) in front and (0.5, 4.0) in front

    def test_dominates(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (1.0, 3.0))
        assert not dominates((1.0, 3.0), (2.0, 1.0))
        assert not dominates((1.0, 1.0), (1.0, 1.0))
