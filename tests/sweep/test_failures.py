"""Failure isolation: one bad configuration cannot take down a sweep.

Jobs that raise, hang past the per-job timeout, or kill their worker
process outright must be *captured* as structured ``failed`` records —
error type and message preserved, one retry burned — while every other
row of the sweep completes normally.
"""

import os
import time

from repro.sweep import (
    SweepJob,
    build_matrix,
    execute_job,
    run_sweep,
)

OK_JOB = SweepJob(kernel="gsum", technique="crush", scale="small")


def _faulty_worker(job):
    if job.kernel == "atax":
        raise ValueError("injected failure for atax")
    return execute_job(job)


def _hanging_worker(job):
    if job.kernel == "atax":
        time.sleep(60.0)
    return execute_job(job)


def _dying_worker(job):
    if job.kernel == "atax":
        os._exit(17)  # simulates a hard native crash (no Python traceback)
    return execute_job(job)


def reference_metrics():
    return execute_job(OK_JOB).deterministic_metrics()


def test_raising_job_is_captured_not_fatal():
    jobs = [SweepJob(kernel="atax", technique="crush", scale="small"), OK_JOB]
    outcome = run_sweep(jobs, workers=2, retries=1, worker_fn=_faulty_worker)

    bad, good = outcome.records
    assert bad.status == "failed"
    assert bad.error_type == "ValueError"
    assert "injected failure for atax" in bad.error
    assert bad.attempts == 2  # the configured single retry was used
    assert bad.result is None

    assert good.ok
    assert good.attempts == 1
    assert good.result.deterministic_metrics() == reference_metrics()


def test_timed_out_job_is_captured_not_fatal():
    jobs = [SweepJob(kernel="atax", technique="crush", scale="small"), OK_JOB]
    outcome = run_sweep(jobs, workers=2, timeout=8.0, retries=0,
                        worker_fn=_hanging_worker)

    hung, good = outcome.records
    assert hung.status == "failed"
    assert hung.error_type == "SweepTimeoutError"
    assert "timeout" in hung.error
    assert hung.attempts == 1

    assert good.ok
    assert good.result.deterministic_metrics() == reference_metrics()


def test_dead_worker_is_captured_not_fatal():
    jobs = [SweepJob(kernel="atax", technique="crush", scale="small"), OK_JOB]
    outcome = run_sweep(jobs, workers=2, retries=0, worker_fn=_dying_worker)

    dead, good = outcome.records
    assert dead.status == "failed"
    assert dead.error_type == "WorkerCrashed"
    assert good.ok


def test_unknown_kernel_fails_through_real_worker():
    """The realistic failure: a bad config through the default pipeline."""
    jobs = [SweepJob(kernel="no-such-kernel", technique="crush",
                     scale="small"), OK_JOB]
    outcome = run_sweep(jobs, workers=2, retries=0)

    bad, good = outcome.records
    assert bad.status == "failed"
    assert "no-such-kernel" in bad.error
    assert good.ok


def test_serial_path_captures_failures_too():
    jobs = [SweepJob(kernel="atax", technique="crush", scale="small"), OK_JOB]
    outcome = run_sweep(jobs, workers=0, retries=1, worker_fn=_faulty_worker)

    bad, good = outcome.records
    assert bad.status == "failed"
    assert bad.error_type == "ValueError"
    assert bad.attempts == 2
    assert good.ok


def test_raise_on_failure_reports_every_failed_row():
    jobs = build_matrix(kernels=("atax", "gsum"), techniques=("crush",),
                        scale="small")
    outcome = run_sweep(jobs, workers=0, retries=0, worker_fn=_faulty_worker)
    try:
        outcome.raise_on_failure()
    except RuntimeError as exc:
        assert "atax/crush" in str(exc)
        assert "injected failure" in str(exc)
    else:
        raise AssertionError("raise_on_failure did not raise")
