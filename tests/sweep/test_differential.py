"""Differential tests: the parallel sweep is a refactoring, not a change.

A process-pool sweep must produce *bit-identical* deterministic metrics
to the serial in-process path, for the same matrix, independent of worker
count and submission order; a warm-cache run must equal the cold run.
(``opt_time_s`` is wall-clock and excluded by construction — see
``TechniqueResult.deterministic_metrics``.)
"""

import pytest

from repro.sweep import ResultCache, build_matrix, run_sweep

# Two regular kernels plus gsum (irregular, the paper's hard case).
MATRIX = build_matrix(kernels=("atax", "bicg", "gsum"), scale="small")


def fingerprint(outcome):
    """Deterministic per-job signature, keyed so ordering cannot matter."""
    assert not outcome.failed_records
    return {
        record.job: (
            record.result.deterministic_metrics(),
            record.result.fu_census,
            record.result.groups,
        )
        for record in outcome.records
    }


@pytest.fixture(scope="module")
def serial_outcome():
    return run_sweep(MATRIX, workers=0)


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    return ResultCache(tmp_path_factory.mktemp("sweep-cache"))


@pytest.fixture(scope="module")
def parallel_outcome(cache):
    # Submit in a scrambled order to decouple results from submission.
    shuffled = MATRIX[1::2] + MATRIX[::-2]
    assert shuffled != MATRIX and set(shuffled) == set(MATRIX)
    return run_sweep(shuffled, workers=4, cache=cache)


def test_parallel_matches_serial(serial_outcome, parallel_outcome):
    assert fingerprint(parallel_outcome) == fingerprint(serial_outcome)


def test_records_follow_submission_order(parallel_outcome):
    shuffled = MATRIX[1::2] + MATRIX[::-2]
    assert [r.job for r in parallel_outcome.records] == shuffled


def test_worker_count_invariance(serial_outcome):
    sub = [j for j in MATRIX if j.kernel in ("atax", "bicg")]
    two = run_sweep(sub, workers=2)
    want = fingerprint(serial_outcome)
    assert fingerprint(two) == {j: want[j] for j in sub}


def test_warm_cache_equals_cold(serial_outcome, cache, parallel_outcome):
    warm = run_sweep(MATRIX, workers=4, cache=cache)
    assert warm.cache_hits == len(MATRIX)
    assert warm.cache_misses == 0
    assert fingerprint(warm) == fingerprint(serial_outcome)


def test_serial_path_also_hits_cache(serial_outcome, cache, parallel_outcome):
    warm = run_sweep(MATRIX, workers=0, cache=cache)
    assert warm.cache_hits == len(MATRIX)
    assert fingerprint(warm) == fingerprint(serial_outcome)
