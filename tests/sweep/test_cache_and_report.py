"""Unit tests for the persistent cache and the sweep reporters/writers."""

import io
import json

from repro.pipeline import TechniqueResult
from repro.sweep import (
    ProgressReporter,
    ResultCache,
    SweepJob,
    cache_key,
    code_salt,
    load_outcome,
    run_sweep,
    summarize,
    write_outputs,
)

JOB = SweepJob(kernel="gsum", technique="crush", scale="small")


def make_result(**overrides) -> TechniqueResult:
    base = dict(
        kernel="gsum", technique="crush", style="bb",
        fu_census="1 fadd 1 fmul", dsp=5, slices=588, lut=1528, ff=1720,
        cp_ns=5.9, cycles=417, exec_time_us=2.5, opt_time_s=0.09,
        groups=[["fadd_0", "fadd_1"]],
    )
    base.update(overrides)
    return TechniqueResult(**base)


def test_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(JOB) is None
    cache.put(JOB, make_result())
    got = cache.get(JOB)
    assert got is not None
    assert got.to_dict() == make_result().to_dict()
    assert len(cache) == 1


def test_key_depends_on_every_job_field(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(JOB, make_result())
    for other in (
        SweepJob(kernel="atax", technique="crush", scale="small"),
        SweepJob(kernel="gsum", technique="naive", scale="small"),
        SweepJob(kernel="gsum", technique="crush", scale="paper"),
        SweepJob(kernel="gsum", technique="crush", scale="small",
                 style="fast-token"),
        SweepJob(kernel="gsum", technique="crush", scale="small",
                 size_overrides=(("n", 8),)),
        SweepJob(kernel="gsum", technique="crush", scale="small",
                 simulate=False),
    ):
        assert cache.get(other) is None


def test_key_depends_on_code_salt():
    assert cache_key(JOB) == cache_key(JOB, salt=code_salt())
    assert cache_key(JOB, salt="other-code-version") != cache_key(JOB)


def test_corrupt_entry_is_a_miss_not_an_error(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put(JOB, make_result())
    path.write_text("{ not json")
    assert cache.get(JOB) is None
    # and a fresh put repairs it
    cache.put(JOB, make_result())
    assert cache.get(JOB) is not None


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(JOB, make_result())
    assert cache.clear() == 1
    assert len(cache) == 0
    assert cache.get(JOB) is None


def _tiny_outcome(tmp_path):
    def worker(job):
        if job.technique == "naive":
            raise ValueError("boom")
        return make_result(technique=job.technique)

    jobs = [JOB, SweepJob(kernel="gsum", technique="naive", scale="small")]
    return run_sweep(jobs, workers=0, retries=0, worker_fn=worker,
                     cache=ResultCache(tmp_path / "cache"))


def test_write_and_reload_outputs(tmp_path):
    outcome = _tiny_outcome(tmp_path)
    paths = write_outputs(outcome, tmp_path / "results", basename="unit")
    assert paths["json"].is_file() and paths["csv"].is_file()

    loaded = load_outcome(paths["json"])
    assert [r.to_dict() for r in loaded.records] == \
        [r.to_dict() for r in outcome.records]

    header, *rows = paths["csv"].read_text().strip().splitlines()
    assert header.startswith("kernel,technique")
    assert len(rows) == 2
    assert "failed" in rows[1] and "boom" in rows[1]


def test_progress_reporter_and_summary(tmp_path):
    stream = io.StringIO()
    outcome = _tiny_outcome(tmp_path)
    reporter = ProgressReporter(total=len(outcome.records), stream=stream)
    for record in outcome.records:
        reporter(record)
    reporter.summary(outcome)
    text = stream.getvalue()
    assert "gsum/crush/bb/small" in text
    assert "FAILED" in text and "ValueError: boom" in text
    assert "1 failed" in text

    # a fully-cached warm sweep reports hits and no speedup line
    warm = run_sweep([JOB], workers=0,
                     cache=ResultCache(tmp_path / "cache"))
    assert warm.cache_hits == 1
    assert "1 cache hits" in summarize(warm)
    assert "speedup" not in summarize(warm)


def test_outcome_json_is_valid_json(tmp_path):
    outcome = _tiny_outcome(tmp_path)
    paths = write_outputs(outcome, tmp_path / "results")
    data = json.loads(paths["json"].read_text())
    assert data["failed"] == 1
    assert len(data["records"]) == 2
