"""Shared circuit builders used across the test suite and examples.

The Figure-1 and Figure-2 builders replicate the paper's running examples;
they are imported both by the integration tests and by the runnable
examples, so the demonstrated behaviour is exactly what the tests pin down.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.circuit import (
    DataflowCircuit,
    EagerFork,
    ElasticBuffer,
    FunctionalUnit,
    Sequence,
    Sink,
    TransparentFifo,
)

FIG1_C1 = 3.0
FIG1_C2 = 5.0


def fig1_circuit(n_tokens: int = 8, slack_slots: int = 0):
    """The paper's Figure 1a circuit: ``a[i] = i*i*C2 + i*C1``.

    ``M1 = i*i``, ``M3 = M1*C2``, ``M2 = i*C1`` (all latency-3 multipliers,
    as drawn), joined by a latency-3 adder into a sink.  ``slack_slots``
    optionally buffers the short M2→add path (the pre-sharing circuit needs
    it for full throughput; the naive-sharing deadlock demo must leave it
    at 0, matching the 1-slot output buffers of Figure 1b).

    Returns (circuit, result_sink, expected_results).
    """
    c = DataflowCircuit("fig1")
    src = c.add(Sequence("src", [float(i) for i in range(n_tokens)]))
    fork = c.add(EagerFork("fork", 4))
    m1 = c.add(FunctionalUnit("M1", "fmul", latency_override=3))
    m2 = c.add(FunctionalUnit("M2", "fmul", latency_override=3))
    m3 = c.add(FunctionalUnit("M3", "fmul", latency_override=3))
    c1 = c.add(Sequence("c1", [FIG1_C1] * n_tokens))
    c2 = c.add(Sequence("c2", [FIG1_C2] * n_tokens))
    add = c.add(FunctionalUnit("ADD", "fadd", latency_override=3))
    out = c.add(Sink("out"))
    aux_pass = c.add(FunctionalUnit("p0", "pass"))
    aux_sink = c.add(Sink("aux"))

    c.connect(src, 0, fork, 0)
    c.connect(fork, 0, m1, 0)
    c.connect(fork, 1, m1, 1)
    c.connect(fork, 2, m2, 0)
    c.connect(c1, 0, m2, 1)
    c.connect(fork, 3, aux_pass, 0)
    c.connect(aux_pass, 0, aux_sink, 0)
    c.connect(m1, 0, m3, 0)
    c.connect(c2, 0, m3, 1)
    if slack_slots:
        fifo = c.add(TransparentFifo("slack", slots=slack_slots))
        c.connect(m2, 0, fifo, 0)
        c.connect(fifo, 0, add, 0)
    else:
        c.connect(m2, 0, add, 0)
    c.connect(m3, 0, add, 1)
    c.connect(add, 0, out, 0)
    c.validate()
    expected = [i * i * FIG1_C2 + i * FIG1_C1 for i in range(n_tokens)]
    return c, out, expected


def fig2_circuit(n_tokens: int = 10, input_ii: int = 2):
    """The Figure 2 scenario: M1 (lat 3) feeds M3 (lat 3); they share a unit.

    A new input token arrives every ``input_ii`` cycles (modelled by a
    latency-``input_ii`` source pipeline).  Returns
    (circuit, m1_like_name, m3_like_name, result_sink, expected).
    """
    from repro.circuit import CreditCounter, Join, LazyFork

    c = DataflowCircuit("fig2")
    src = c.add(Sequence("src", [float(i + 1) for i in range(n_tokens)]))
    # Rate limiter: a 1-credit loop of round-trip latency ``input_ii``
    # admits exactly one token every input_ii cycles.  The fork must be
    # lazy: the credit may only start its return trip when the data copy
    # actually leaves (the same reason the sharing wrapper uses lazy forks).
    cc = c.add(CreditCounter("pace_cc", 1))
    gate = c.add(Join("pace_gate", 2))
    pace_fork = c.add(LazyFork("pace_fork", 2))
    delay = c.add(FunctionalUnit("pace_delay", "pass", latency_override=input_ii - 1))
    fork = c.add(EagerFork("fork", 2))
    m1 = c.add(FunctionalUnit("M1", "fmul", latency_override=3))
    m3 = c.add(FunctionalUnit("M3", "fmul", latency_override=3))
    k = c.add(Sequence("k", [2.0] * n_tokens))
    out = c.add(Sink("out"))
    c.connect(src, 0, gate, 0)
    c.connect(cc, 0, gate, 1, width=0)
    c.connect(gate, 0, pace_fork, 0)
    c.connect(pace_fork, 1, delay, 0)
    c.connect(delay, 0, cc, 0, width=0)
    c.connect(pace_fork, 0, fork, 0)
    c.connect(fork, 0, m1, 0)
    c.connect(fork, 1, m1, 1)
    c.connect(m1, 0, m3, 0)
    c.connect(k, 0, m3, 1)
    c.connect(m3, 0, out, 0)
    c.validate()
    expected = [(i + 1) * (i + 1) * 2.0 for i in range(n_tokens)]
    return c, "M1", "M3", out, expected


def streaming_pipeline(values: List[float], ops: List[Tuple[str, float]]):
    """values -> op1(const) -> op2(const) ... -> sink; returns (circuit, sink)."""
    c = DataflowCircuit("pipeline")
    src = c.add(Sequence("src", list(values)))
    prev, port = src, 0
    for i, (op, const) in enumerate(ops):
        fu = c.add(FunctionalUnit(f"fu{i}", op))
        k = c.add(Sequence(f"k{i}", [const] * len(values)))
        c.connect(prev, port, fu, 0)
        c.connect(k, 0, fu, 1)
        prev, port = fu, 0
    sink = c.add(Sink("out"))
    c.connect(prev, port, sink, 0)
    c.validate()
    return c, sink
