"""Resource library, circuit estimation, and timing model."""

import pytest

from repro.circuit import (
    ArbiterMerge,
    CreditCounter,
    DataflowCircuit,
    ElasticBuffer,
    EagerFork,
    FunctionalUnit,
    Sequence,
    Sink,
    TransparentFifo,
)
from repro.resources import (
    DEVICE_DSPS,
    Resources,
    critical_path_ns,
    equivalent_cost,
    estimate_circuit,
    functional_unit_resources,
    slice_estimate,
    unit_equivalent_cost,
    unit_resources,
    wrapper_equivalent_cost,
)


class TestLibrary:
    def test_fp_dsp_costs_match_xilinx(self):
        # These two constants reproduce every DSP count in Tables 1-3.
        assert functional_unit_resources("fadd").dsp == 2
        assert functional_unit_resources("fmul").dsp == 3
        assert functional_unit_resources("iadd").dsp == 0
        assert functional_unit_resources("imul").dsp == 0  # LUT-mapped

    def test_resources_arithmetic(self):
        r = Resources(1, 2, 3) + Resources(10, 20, 30)
        assert (r.lut, r.ff, r.dsp) == (11, 22, 33)
        assert Resources(1, 1, 1).scaled(4) == Resources(4, 4, 4)

    def test_buffer_cost_scales_with_width_and_depth(self):
        small = unit_resources(TransparentFifo("a", slots=1, width_hint=1))
        big = unit_resources(TransparentFifo("b", slots=4, width_hint=32))
        assert big.ff > small.ff and big.lut > small.lut

    def test_inorder_arbiter_has_more_ffs(self):
        plain = ArbiterMerge("a", 4)
        ordered = ArbiterMerge("b", 4)
        ordered.meta["order_state"] = True
        assert unit_resources(ordered).ff > unit_resources(plain).ff

    def test_arbiter_cost_grows_with_group_size(self):
        small = unit_resources(ArbiterMerge("a", 2))
        big = unit_resources(ArbiterMerge("b", 8))
        assert big.lut > small.lut

    def test_testbench_units_are_free(self):
        assert unit_resources(Sequence("s", [1])) == Resources(0, 0, 0)
        assert unit_resources(Sink("s")) == Resources(0, 0, 0)

    def test_equivalent_cost_weights_dsps(self):
        heavy = equivalent_cost(Resources(0, 0, 2))
        light = equivalent_cost(Resources(100, 100, 0))
        assert heavy > light

    def test_wrapper_cost_monotone_in_group_size(self):
        costs = [wrapper_equivalent_cost("fadd", n) for n in range(2, 10)]
        assert all(b > a for a, b in zip(costs, costs[1:]))
        assert wrapper_equivalent_cost("fadd", 1) == 0.0

    def test_sharing_fadd_pays_sharing_iadd_does_not(self):
        # Paper Section 4.3: sharing integer adders is never beneficial.
        for n in range(2, 8):
            save_fadd = unit_equivalent_cost("fadd") * (n - 1)
            assert wrapper_equivalent_cost("fadd", n) < save_fadd
        save_iadd = unit_equivalent_cost("iadd")
        assert wrapper_equivalent_cost("iadd", 2) > save_iadd


class TestEstimate:
    def _circuit(self):
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1.0]))
        b = c.add(Sequence("b", [1.0]))
        f1 = c.add(FunctionalUnit("f1", "fadd"))
        f2 = c.add(FunctionalUnit("f2", "fmul"))
        s = c.add(Sink("s"))
        c.connect(a, 0, f1, 0)
        c.connect(b, 0, f1, 1)
        k = c.add(Sequence("k", [2.0]))
        c.connect(f1, 0, f2, 0)
        c.connect(k, 0, f2, 1)
        c.connect(f2, 0, s, 0)
        return c

    def test_estimate_aggregates(self):
        est = estimate_circuit(self._circuit())
        assert est.dsp == 5
        assert est.lut >= 470
        assert est.functional_units == {"fadd": 1, "fmul": 1}
        assert est.fu_summary() == "1 fadd 1 fmul"
        assert est.fits_device

    def test_device_capacity_check(self):
        c = DataflowCircuit("t")
        prev_units = []
        # 301 fadds = 602 DSPs > 600.
        for i in range(301):
            a = c.add(Sequence(f"a{i}", [1.0]))
            b = c.add(Sequence(f"b{i}", [1.0]))
            f = c.add(FunctionalUnit(f"f{i}", "fadd"))
            s = c.add(Sink(f"s{i}"))
            c.connect(a, 0, f, 0)
            c.connect(b, 0, f, 1)
            c.connect(f, 0, s, 0)
        est = estimate_circuit(c)
        assert est.dsp > DEVICE_DSPS
        assert not est.fits_device

    def test_slice_estimate_monotone(self):
        assert slice_estimate(4000, 2000) > slice_estimate(1000, 2000)
        assert slice_estimate(0, 0) == 0


class TestTiming:
    def test_cp_at_least_fu_stage_delay(self):
        c = DataflowCircuit("t")
        a = c.add(Sequence("a", [1.0]))
        b = c.add(Sequence("b", [1.0]))
        f = c.add(FunctionalUnit("f", "fadd"))
        s = c.add(Sink("s"))
        c.connect(a, 0, f, 0)
        c.connect(b, 0, f, 1)
        c.connect(f, 0, s, 0)
        assert critical_path_ns(c) >= 3.3

    def test_cp_grows_with_comb_chain(self):
        def chain(n):
            c = DataflowCircuit("t")
            src = c.add(Sequence("src", [1]))
            prev, port = src, 0
            for i in range(n):
                fu = c.add(FunctionalUnit(f"a{i}", "iadd", const_ops={1: 1}))
                c.connect(prev, port, fu, 0)
                prev, port = fu, 0
            s = c.add(Sink("s"))
            c.connect(prev, port, s, 0)
            return critical_path_ns(c)

        assert chain(6) > chain(2) > chain(1)

    def test_registers_cut_the_path(self):
        c = DataflowCircuit("t")
        src = c.add(Sequence("src", [1]))
        a1 = c.add(FunctionalUnit("a1", "iadd", const_ops={1: 1}))
        eb = c.add(ElasticBuffer("eb", 2))
        a2 = c.add(FunctionalUnit("a2", "iadd", const_ops={1: 1}))
        s = c.add(Sink("s"))
        c.connect(src, 0, a1, 0)
        c.connect(a1, 0, eb, 0)
        c.connect(eb, 0, a2, 0)
        c.connect(a2, 0, s, 0)
        cut = critical_path_ns(c)
        c2 = DataflowCircuit("t2")
        src = c2.add(Sequence("src", [1]))
        a1 = c2.add(FunctionalUnit("a1", "iadd", const_ops={1: 1}))
        a2 = c2.add(FunctionalUnit("a2", "iadd", const_ops={1: 1}))
        s = c2.add(Sink("s"))
        c2.connect(src, 0, a1, 0)
        c2.connect(a1, 0, a2, 0)
        c2.connect(a2, 0, s, 0)
        assert cut < critical_path_ns(c2)
