"""Table 2: Naive vs In-order vs CRUSH on the 11-kernel suite (BB-style).

Regenerates the paper's main comparison: functional-unit census, DSPs,
slices, LUTs, FFs, CP, cycle count, execution time and optimization time
per (kernel, technique), plus the two "Average improvement" summary rows.

Expected shapes (paper Section 6.3):
* CRUSH shares every kernel down to 1 fadd + 1 fmul (5 DSPs) with a cycle
  overhead of a few percent at most;
* In-order matches CRUSH on regular kernels but cannot share gsum's /
  gsumif's chained operations (more DSPs left);
* CRUSH's optimization time is far below In-order's (the paper reports
  -90% on average) and close to Naive's.
"""

import pytest

from repro.analysis import critical_cfcs, place_buffers
from repro.core import crush
from repro.frontend import lower_kernel
from repro.frontend.kernels import KERNEL_NAMES, build

from _support import emit_table, get_row, improvement_summary, results_path, table_rows

TECHS = ("naive", "inorder", "crush")


@pytest.fixture(scope="module")
def rows():
    return table_rows("bb", TECHS)


def test_table2_generate(rows, benchmark):
    # Benchmark the CRUSH pass itself on a representative kernel (this is
    # the quantity the table's Opt. time column reports).
    def crush_pass():
        low = lower_kernel(build("gesummv", scale="paper"), "bb")
        cfcs = critical_cfcs(low.circuit)
        place_buffers(low.circuit, cfcs)
        return crush(low.circuit, cfcs)

    benchmark.pedantic(crush_pass, rounds=3, iterations=1)

    text = emit_table(rows, "table2", "Table 2 — Naive vs In-order vs CRUSH (BB-organized circuits)")
    vs_naive = improvement_summary(rows, "naive", "crush")
    vs_inorder = improvement_summary(rows, "inorder", "crush")
    summary = (
        f"Average improvement of CRUSH vs Naive:    "
        f"Slices {vs_naive['slices']:+.0f}%  LUTs {vs_naive['lut']:+.0f}%  "
        f"FFs {vs_naive['ff']:+.0f}%  DSPs {vs_naive['dsp']:+.0f}%  "
        f"Opt.time {vs_naive['opt_time_s']:+.0f}%  Exec.time {vs_naive['exec_time_us']:+.0f}%\n"
        f"Average improvement of CRUSH vs In-order: "
        f"Slices {vs_inorder['slices']:+.0f}%  LUTs {vs_inorder['lut']:+.0f}%  "
        f"FFs {vs_inorder['ff']:+.0f}%  DSPs {vs_inorder['dsp']:+.0f}%  "
        f"Opt.time {vs_inorder['opt_time_s']:+.0f}%  Exec.time {vs_inorder['exec_time_us']:+.0f}%"
    )
    with open(results_path("table2_summary.txt"), "w") as f:
        f.write(summary + "\n")
    print("\n" + text)
    print(summary)


class TestTable2Shapes:
    @pytest.fixture(autouse=True)
    def _rows(self, rows):
        self.by = {(r.kernel, r.technique): r for r in rows}

    def test_crush_shares_everything_on_every_kernel(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for k in KERNEL_NAMES:
            assert self.by[(k, "crush")].dsp == 5, k
            assert self.by[(k, "crush")].fu_census == "1 fadd 1 fmul", k

    def test_inorder_cannot_share_gsum_chains(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert self.by[("gsum", "inorder")].dsp >= 15
        assert self.by[("gsumif", "inorder")].dsp >= 11
        # On chain-free kernels In-order shares fully too.
        for k in ("atax", "bicg", "mvt", "gemm"):
            assert self.by[(k, "inorder")].dsp == 5, k

    def test_cycle_overhead_is_small(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for k in KERNEL_NAMES:
            naive = self.by[(k, "naive")].cycles
            shared = self.by[(k, "crush")].cycles
            assert shared <= naive * 1.12, (k, naive, shared)

    def test_opt_time_far_below_inorder(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        total_inorder = sum(self.by[(k, "inorder")].opt_time_s for k in KERNEL_NAMES)
        total_crush = sum(self.by[(k, "crush")].opt_time_s for k in KERNEL_NAMES)
        assert total_crush < total_inorder * 0.35  # paper: -90% on average

    def test_dsp_reduction_vs_naive_matches_paper_scale(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        red = improvement_summary(
            [self.by[(k, t)] for k in KERNEL_NAMES for t in ("naive", "crush")],
            "naive", "crush",
        )["dsp"]
        # Paper: -66% average DSP reduction vs Naive.
        assert red <= -55.0
