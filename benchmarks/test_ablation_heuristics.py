"""Ablations: the grouping rules (Algorithm 1) and priority (Algorithm 2).

* **R2 off** — ignoring the occupancy/capacity rule merges more operations
  than the shared unit can sustain; the II (and the cycle count) degrades.
* **Priority reversed** — ordering consumers above producers (the opposite
  of Algorithm 2) degrades the II on dependency-heavy kernels; CRUSH's
  priority matches the paper's claim of maintaining performance.
"""

import pytest

from repro.analysis import (
    break_combinational_cycles,
    critical_cfcs,
    insert_timing_buffers,
    occupancy_map,
    place_buffers,
)
from repro.core import (
    access_priority,
    allocate_credits,
    insert_sharing_wrapper,
    sharing_candidates,
    sharing_groups,
)
from repro.frontend import lower_kernel, simulate_kernel
from repro.frontend.kernels import build
from repro.reporting import render_table

from _support import results_path


def prepared(kernel_name):
    lowered = lower_kernel(build(kernel_name, scale="paper"), "bb")
    cfcs = critical_cfcs(lowered.circuit)
    place_buffers(lowered.circuit, cfcs)
    return lowered, cfcs


def share_and_run(kernel_name, groups_fn=None, priority_fn=None,
                  max_cycles=6_000_000):
    lowered, cfcs = prepared(kernel_name)
    occ = occupancy_map(lowered.circuit, cfcs)
    if groups_fn is None:
        groups = sharing_groups(lowered.circuit, cfcs, occ)
    else:
        groups = groups_fn(lowered.circuit, cfcs, occ)
    for group in groups:
        if len(group) < 2:
            continue
        prio = access_priority(group, cfcs)
        if priority_fn is not None:
            prio = priority_fn(prio)
        insert_sharing_wrapper(
            lowered.circuit, group, priority=prio,
            credits=allocate_credits(group, occ),
        )
    break_combinational_cycles(lowered.circuit)
    insert_timing_buffers(lowered.circuit)
    return simulate_kernel(lowered, max_cycles=max_cycles).cycles


def test_ablation_r2_capacity_rule(benchmark):
    """Merging beyond the unit's capacity (R2 off) must cost throughput."""
    kernel = "gesummv"

    def all_in_one(circuit, cfcs, occ):
        by_type = {}
        for op in sharing_candidates(circuit):
            by_type.setdefault(circuit.unit(op).op, []).append(op)
        return list(by_type.values())

    def measure():
        lowered, _ = prepared(kernel)
        base = simulate_kernel(lowered, max_cycles=6_000_000).cycles
        with_r2 = share_and_run(kernel)
        # Oversubscribe: fold *everything* into one group per type AND use
        # a much smaller kernel... gesummv's Eq.3 already saturates; build
        # an artificially low-II variant by shrinking the loop so the fadds
        # would need more than the unit capacity.
        return base, with_r2

    base, with_r2 = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert with_r2 <= base * 1.06

    # Directly exhibit the R2 failure on a low-II circuit: two latency-10
    # adders in a II≈11 loop have occupancy ~1 each and share fine; in a
    # II≈2 stream they have occupancy 5 each (sum > capacity 10 per 2 ops
    # at II 2 -> a single unit cannot sustain both).
    from repro.circuit import DataflowCircuit, FunctionalUnit, Sequence, Sink
    from repro.sim import Engine

    def stream_pair(shared):
        c = DataflowCircuit("r2")
        sinks = []
        for i in range(2):
            a = c.add(Sequence(f"a{i}", [float(k) for k in range(40)]))
            b = c.add(Sequence(f"b{i}", [1.0] * 40))
            fu = c.add(FunctionalUnit(f"op{i}", "fadd"))
            s = c.add(Sink(f"s{i}"))
            c.connect(a, 0, fu, 0)
            c.connect(b, 0, fu, 1)
            c.connect(fu, 0, s, 0)
            sinks.append(s)
        if shared:
            insert_sharing_wrapper(c, ["op0", "op1"],
                                   credits={"op0": 11, "op1": 11})
        eng = Engine(c)
        eng.run(lambda: all(s.count == 40 for s in sinks), max_cycles=10_000)
        return eng.cycle

    unshared = stream_pair(False)
    oversubscribed = stream_pair(True)
    # Each op alone needs II=1; sharing both on one unit halves throughput.
    assert oversubscribed >= unshared * 1.6
    with open(results_path("ablation_r2.txt"), "w") as f:
        f.write(
            f"R2 ablation: II=1 streams, 2 fadds: unshared {unshared} cycles, "
            f"shared-over-capacity {oversubscribed} cycles "
            f"({oversubscribed / unshared:.2f}x)\n"
            f"{kernel}: naive {base} cycles, CRUSH-with-R2 {with_r2} cycles\n"
        )


def test_ablation_priority_rule(benchmark):
    """Algorithm 2's producer-first priority vs the reversed priority."""
    rows = []

    def measure():
        out = {}
        for kernel in ("gemm", "gesummv"):
            lowered, _ = prepared(kernel)
            base = simulate_kernel(lowered, max_cycles=6_000_000).cycles
            good = share_and_run(kernel)
            bad = share_and_run(kernel, priority_fn=lambda p: list(reversed(p)))
            out[kernel] = (base, good, bad)
        return out

    data = benchmark.pedantic(measure, rounds=1, iterations=1)
    for kernel, (base, good, bad) in data.items():
        rows.append([kernel, base, good, bad])
    text = render_table(
        ["kernel", "naive cycles", "Algorithm 2 priority", "reversed priority"],
        rows, title="Ablation — access priority (paper Algorithm 2 / Figure 4)",
    )
    with open(results_path("ablation_priority.txt"), "w") as f:
        f.write(text + "\n")
    print("\n" + text)
    for kernel, (base, good, bad) in data.items():
        assert good <= base * 1.06, kernel     # Algorithm 2 preserves the II
        assert bad >= good * 0.98, kernel      # reversing never helps
