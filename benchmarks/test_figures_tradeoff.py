"""Figures 7, 8 and 11: FF/DSP vs execution-time trade-off scatter plots.

Each figure normalizes CRUSH's per-kernel (exec time, FF) and (exec time,
DSP) pairs to a baseline — Naive (Fig. 7), In-order (Fig. 8), Fast token
(Fig. 11) — and the paper's claim is that CRUSH's points sit on or below
the baseline's Pareto front (ratios ≤ 1 on the resource axis, ~1 on the
time axis).  Emitted as CSV series plus an ASCII scatter.
"""

import statistics

import pytest

from repro.frontend.kernels import KERNEL_NAMES
from repro.reporting import Series, ascii_scatter, series_csv, write_csv

from _support import get_row, results_path


def tradeoff_series(style, base_tech, metric):
    s = Series("CRUSH")
    for k in KERNEL_NAMES:
        base = get_row(k, base_tech, style=style)
        ours = get_row(k, "crush", style=style)
        if getattr(base, metric) == 0 or base.exec_time_us == 0:
            continue
        s.add(
            ours.exec_time_us / base.exec_time_us,
            getattr(ours, metric) / getattr(base, metric),
            label=k,
        )
    return s


def emit_figure(name, style, base_tech, base_label):
    artifacts = {}
    for metric, axis in (("ff", "FF ratio"), ("dsp", "DSP ratio")):
        s = tradeoff_series(style, base_tech, metric)
        base = Series(base_label, points=[(1.0, 1.0)] * 1, labels=["baseline"])
        art = ascii_scatter(
            [s, base], title=f"{name}: {axis} vs Exec. time ratio "
            f"(normalized to {base_label})",
            xlabel="Exec. time ratio", ylabel=axis,
        )
        avg = statistics.mean(y for _, y in s.points)
        art += f"\n   Average({axis}) = {avg:.2f}"
        write_csv(
            results_path(f"{name}_{metric}.csv"),
            ["series", "kernel", "exec_ratio", f"{metric}_ratio"],
            series_csv([s]),
        )
        artifacts[metric] = (s, avg, art)
    with open(results_path(f"{name}.txt"), "w") as f:
        for metric, (_, _, art) in artifacts.items():
            f.write(art + "\n\n")
    return artifacts


def test_figure7_crush_vs_naive(benchmark):
    artifacts = benchmark.pedantic(
        emit_figure, args=("figure7", "bb", "naive", "Naive"),
        rounds=1, iterations=1,
    )
    _, avg_ff, art = artifacts["ff"]
    print("\n" + art)
    _, avg_dsp, art2 = artifacts["dsp"]
    print("\n" + art2)
    # Paper: Average(FFs)=0.68, Average(DSPs)=0.34.
    assert avg_ff <= 0.90
    assert avg_dsp <= 0.45
    # Pareto: no CRUSH point may be dominated by the baseline point (1,1).
    for (x, y) in artifacts["dsp"][0].points:
        assert not (1.0 <= x and 1.0 <= y and (1.0 < x or 1.0 < y))


def test_figure8_crush_vs_inorder(benchmark):
    artifacts = benchmark.pedantic(
        emit_figure, args=("figure8", "bb", "inorder", "In-order"),
        rounds=1, iterations=1,
    )
    _, avg_ff, art = artifacts["ff"]
    print("\n" + art)
    # Paper: Average(FFs)=0.85, Average(DSPs)=0.88 — smaller deltas, since
    # In-order already shares most kernels fully.
    assert avg_ff <= 1.0
    _, avg_dsp, _ = artifacts["dsp"]
    assert avg_dsp <= 1.0
    # CRUSH must strictly win on the kernels In-order cannot share.
    for kernel in ("gsum", "gsumif"):
        base = get_row(kernel, "inorder", style="bb")
        ours = get_row(kernel, "crush", style="bb")
        assert ours.dsp < base.dsp


def test_figure11_crush_vs_fast_token(benchmark):
    artifacts = benchmark.pedantic(
        emit_figure, args=("figure11", "fast-token", "naive", "Fast token"),
        rounds=1, iterations=1,
    )
    _, avg_ff, art = artifacts["ff"]
    print("\n" + art)
    _, avg_dsp, _ = artifacts["dsp"]
    # Paper: Average(FFs)=0.71, Average(DSPs)=0.34.
    assert avg_ff <= 0.90
    assert avg_dsp <= 0.45
