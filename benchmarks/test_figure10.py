"""Figure 10: resource breakdown of CRUSH's wrapper by component.

For group sizes 2..13 (credits by Equation 3 with Φ = lat/|G|), the LUT
and FF cost of each wrapper building block.  Expected shapes: LUT cost
grows with |G|; output buffers dominate the wrapper's LUTs (~half at
|G| = 7); the wrapper's total FF cost stays well below the shared
floating-point adder's own FFs.
"""

import pytest

from repro.core.standalone import wrapper_component_breakdown
from repro.reporting import render_table, write_csv

from _support import results_path

SIZES = list(range(2, 14))
COMPONENTS = [
    "Credit counters", "Joins", "Branch", "Shared unit",
    "Condition buffer", "Merges and muxes", "Output buffers",
]


def compute_breakdowns():
    return {n: wrapper_component_breakdown(n, "fadd") for n in SIZES}


def test_figure10_wrapper_breakdown(benchmark):
    data = benchmark.pedantic(compute_breakdowns, rounds=1, iterations=1)

    rows_lut, rows_ff, csv_rows = [], [], []
    for n in SIZES:
        bd = data[n]
        rows_lut.append([n] + [bd[c].lut for c in COMPONENTS])
        rows_ff.append([n] + [bd[c].ff for c in COMPONENTS])
        for c in COMPONENTS:
            csv_rows.append([n, c, bd[c].lut, bd[c].ff])
    headers = ["|G|"] + COMPONENTS
    text = render_table(headers, rows_lut, title="Figure 10 — LUT breakdown")
    text += "\n\n" + render_table(headers, rows_ff, title="Figure 10 — FF breakdown")
    with open(results_path("figure10.txt"), "w") as f:
        f.write(text + "\n")
    write_csv(results_path("figure10.csv"),
              ["group_size", "component", "lut", "ff"], csv_rows)
    print("\n" + text)

    def wrapper_lut(n):
        return sum(data[n][c].lut for c in COMPONENTS if c != "Shared unit")

    def wrapper_ff(n):
        return sum(data[n][c].ff for c in COMPONENTS if c != "Shared unit")

    # Wrapper LUT cost grows with the group size.
    assert wrapper_lut(13) > wrapper_lut(6) > wrapper_lut(2)
    # Output buffers dominate the wrapper's LUTs at |G| = 7 (paper: ~50%).
    share = data[7]["Output buffers"].lut / wrapper_lut(7)
    assert share >= 0.35
    # The sharing circuit is not FF-demanding: far fewer FFs than the
    # shared floating-point adder itself.
    for n in SIZES:
        assert wrapper_ff(n) < data[n]["Shared unit"].ff
