"""Figure 9: shared-vs-unshared cost ratio as the group size grows.

For 1..13 shared floating-point adders, the ratio of (one shared unit +
wrapper) to (|G| dedicated units), for CRUSH and the In-order wrapper,
in LUTs and FFs.  Expected shapes: ratios fall well below 1 and keep
decreasing with |G|; CRUSH and In-order wrappers cost about the same, with
CRUSH slightly more LUTs and In-order slightly more FFs.
"""

import pytest

from repro.core.standalone import shared_group_resources, unshared_group_resources
from repro.reporting import Series, ascii_scatter, series_csv, write_csv

from _support import results_path

SIZES = list(range(1, 14))


def compute_ratios():
    out = {}
    for strategy in ("crush", "inorder"):
        lut = Series(f"{strategy}-lut")
        ff = Series(f"{strategy}-ff")
        for n in SIZES:
            shared = shared_group_resources(n, "fadd", strategy)
            unshared = unshared_group_resources(n, "fadd")
            lut.add(n, shared.lut / unshared.lut)
            ff.add(n, shared.ff / unshared.ff)
        out[strategy] = (lut, ff)
    return out


def test_figure9_wrapper_cost_ratio(benchmark):
    data = benchmark.pedantic(compute_ratios, rounds=1, iterations=1)
    crush_lut, crush_ff = data["crush"]
    inorder_lut, inorder_ff = data["inorder"]

    art = ascii_scatter(
        [crush_lut, inorder_lut], title="Figure 9 (top): LUT ratio vs #shared fadds",
        xlabel="#shared fadds", ylabel="LUT ratio",
    )
    art += "\n" + ascii_scatter(
        [crush_ff, inorder_ff], title="Figure 9 (bottom): FF ratio vs #shared fadds",
        xlabel="#shared fadds", ylabel="FF ratio",
    )
    with open(results_path("figure9.txt"), "w") as f:
        f.write(art + "\n")
    write_csv(
        results_path("figure9.csv"),
        ["series", "label", "group_size", "ratio"],
        series_csv([crush_lut, crush_ff, inorder_lut, inorder_ff]),
    )
    print("\n" + art)

    # Sharing pays: the ratio drops below 1 from |G| = 2 on and decreases.
    for series in (crush_lut, crush_ff):
        ratios = dict(series.points)
        assert ratios[1] == 1.0
        assert all(ratios[n] < 1.0 for n in SIZES[1:])
        assert ratios[13] < ratios[2]
    # The two wrappers cost roughly the same (paper: "only a minor
    # difference"); In-order carries more FFs, CRUSH at most as many.
    for n in SIZES[1:]:
        c_ff = dict(crush_ff.points)[n]
        i_ff = dict(inorder_ff.points)[n]
        assert c_ff <= i_ff
        assert abs(dict(crush_lut.points)[n] - dict(inorder_lut.points)[n]) < 0.12
