"""Shared infrastructure for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper.  Rows
are computed once per pytest session (cached here) and shared between the
table benches and the figure benches that re-plot the same data.  Every
bench writes its artifacts (rendered table + CSV series) into
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from repro.frontend.kernels import KERNEL_NAMES
from repro.pipeline import TechniqueResult, run_technique
from repro.reporting import render_table, write_csv

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_row_cache: Dict[Tuple[str, str, str, str], TechniqueResult] = {}


def results_path(name: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return os.path.join(RESULTS_DIR, name)


def get_row(kernel: str, technique: str, style: str = "bb",
            scale: str = "paper") -> TechniqueResult:
    key = (kernel, technique, style, scale)
    if key not in _row_cache:
        _row_cache[key] = run_technique(kernel, technique, style=style, scale=scale)
    return _row_cache[key]


def table_rows(style: str, techniques, scale: str = "paper") -> List[TechniqueResult]:
    rows = []
    for kernel in KERNEL_NAMES:
        for tech in techniques:
            rows.append(get_row(kernel, tech, style=style, scale=scale))
    return rows


TABLE_HEADERS = [
    "Benchmark", "Technique", "Functional units", "DSPs", "Slices",
    "LUTs", "FFs", "CP (ns)", "Cycles", "Exec. time (us)", "Opt. time (s)",
]

TECH_LABEL = {"naive": "Naive", "inorder": "In-order", "crush": "CRUSH",
              "fast-token-naive": "Fast token"}


def emit_table(rows: List[TechniqueResult], path_base: str, title: str,
               label_naive: str = "Naive") -> str:
    table = []
    for r in rows:
        label = TECH_LABEL.get(r.technique, r.technique)
        if r.technique == "naive" and label_naive != "Naive":
            label = label_naive
        table.append([
            r.kernel, label, r.fu_census, r.dsp, r.slices, r.lut, r.ff,
            r.cp_ns, r.cycles, r.exec_time_us, r.opt_time_s,
        ])
    text = render_table(TABLE_HEADERS, table, title=title)
    with open(results_path(path_base + ".txt"), "w") as f:
        f.write(text + "\n")
    write_csv(results_path(path_base + ".csv"), TABLE_HEADERS, table)
    return text


def improvement_summary(rows: List[TechniqueResult], base_tech: str,
                        our_tech: str) -> Dict[str, float]:
    """Paper-style 'Average improvement' percentages of our vs base."""
    from repro.reporting import average_improvement

    base = {r.kernel: r.metrics() for r in rows if r.technique == base_tech}
    ours = {r.kernel: r.metrics() for r in rows if r.technique == our_tech}
    return {
        metric: round(average_improvement(base, ours, metric), 1)
        for metric in ("slices", "lut", "ff", "dsp", "opt_time_s", "exec_time_us")
    }
