"""Shared infrastructure for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper.  Rows
are produced through the ``repro.sweep`` subsystem: an in-process dict
gives session-local reuse (table benches and figure benches share rows),
and a persistent on-disk :class:`ResultCache` under
``benchmarks/results/cache/`` makes warm re-runs near-instant across
pytest sessions.  Set ``REPRO_SWEEP_JOBS=N`` to fan cache misses out over
``N`` worker processes, or ``REPRO_SWEEP_NO_CACHE=1`` to force fresh
pipeline runs.  Every bench writes its artifacts (rendered table + CSV
series) into ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.frontend.kernels import KERNEL_NAMES
from repro.pipeline import TechniqueResult
from repro.reporting import render_table, write_csv
from repro.sweep import ResultCache, SweepJob, execute_job, run_sweep

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
CACHE_DIR = os.path.join(RESULTS_DIR, "cache")

_row_cache: Dict[Tuple[str, str, str, str], TechniqueResult] = {}
_persistent: Optional[ResultCache] = None


def results_path(name: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return os.path.join(RESULTS_DIR, name)


def _cache_disabled() -> bool:
    return os.environ.get("REPRO_SWEEP_NO_CACHE", "") not in ("", "0")


def persistent_cache() -> Optional[ResultCache]:
    """The cross-session result cache, or ``None`` when disabled."""
    global _persistent
    if _cache_disabled():
        return None
    if _persistent is None:
        _persistent = ResultCache(
            os.environ.get("REPRO_SWEEP_CACHE") or CACHE_DIR
        )
    return _persistent


def _sweep_workers() -> int:
    try:
        return int(os.environ.get("REPRO_SWEEP_JOBS", "0"))
    except ValueError:
        return 0


def get_row(kernel: str, technique: str, style: str = "bb",
            scale: str = "paper") -> TechniqueResult:
    key = (kernel, technique, style, scale)
    if key not in _row_cache:
        job = SweepJob(kernel=kernel, technique=technique, style=style,
                       scale=scale)
        cache = persistent_cache()
        row = cache.get(job) if cache is not None else None
        if row is None:
            row = execute_job(job)
            if cache is not None:
                cache.put(job, row)
        _row_cache[key] = row
    return _row_cache[key]


def table_rows(style: str, techniques, scale: str = "paper") -> List[TechniqueResult]:
    jobs = [
        SweepJob(kernel=kernel, technique=tech, style=style, scale=scale)
        for kernel in KERNEL_NAMES
        for tech in techniques
    ]
    fresh = [
        j for j in jobs
        if (j.kernel, j.technique, j.style, j.scale) not in _row_cache
    ]
    if fresh:
        outcome = run_sweep(
            fresh,
            workers=_sweep_workers(),
            cache=persistent_cache(),
        )
        outcome.raise_on_failure()
        for record in outcome.records:
            j = record.job
            _row_cache[(j.kernel, j.technique, j.style, j.scale)] = record.result
    return [get_row(j.kernel, j.technique, style=j.style, scale=j.scale)
            for j in jobs]


TABLE_HEADERS = [
    "Benchmark", "Technique", "Functional units", "DSPs", "Slices",
    "LUTs", "FFs", "CP (ns)", "Cycles", "Exec. time (us)", "Opt. time (s)",
]

TECH_LABEL = {"naive": "Naive", "inorder": "In-order", "crush": "CRUSH",
              "fast-token-naive": "Fast token"}


def emit_table(rows: List[TechniqueResult], path_base: str, title: str,
               label_naive: str = "Naive") -> str:
    table = []
    for r in rows:
        label = TECH_LABEL.get(r.technique, r.technique)
        if r.technique == "naive" and label_naive != "Naive":
            label = label_naive
        table.append([
            r.kernel, label, r.fu_census, r.dsp, r.slices, r.lut, r.ff,
            r.cp_ns, r.cycles, r.exec_time_us, r.opt_time_s,
        ])
    text = render_table(TABLE_HEADERS, table, title=title)
    with open(results_path(path_base + ".txt"), "w") as f:
        f.write(text + "\n")
    write_csv(results_path(path_base + ".csv"), TABLE_HEADERS, table)
    return text


def improvement_summary(rows: List[TechniqueResult], base_tech: str,
                        our_tech: str) -> Dict[str, float]:
    """Paper-style 'Average improvement' percentages of our vs base."""
    from repro.reporting import average_improvement

    base = {r.kernel: r.metrics() for r in rows if r.technique == base_tech}
    ours = {r.kernel: r.metrics() for r in rows if r.technique == our_tech}
    return {
        metric: round(average_improvement(base, ours, metric), 1)
        for metric in ("slices", "lut", "ff", "dsp", "opt_time_s", "exec_time_us")
    }
