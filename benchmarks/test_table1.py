"""Table 1: unrolled gesummv exceeds the device without sharing; CRUSH fits.

Paper numbers (Kintex-7 xc7k160t):
    No sharing:  76k/101k LUTs (75%),  115k/202k FFs (57%),  790/600 DSPs (132%)
    CRUSH:       46k/101k (45%),        45k/202k (22%),        60/600 (10%)

The reproduced shape: Naive DSPs exceed the 600-DSP capacity; CRUSH brings
them an order of magnitude down and the kernel fits.
"""

from repro.analysis import critical_cfcs, place_buffers
from repro.core import crush
from repro.frontend import lower_kernel
from repro.frontend.kernels.unrolled import gesummv_unrolled
from repro.resources import DEVICE_DSPS, DEVICE_FFS, DEVICE_LUTS, estimate_circuit
from repro.reporting import render_table

from _support import results_path

UNROLL = 75


def _build(shared: bool):
    kernel = gesummv_unrolled(factor=UNROLL, n=UNROLL)
    lowered = lower_kernel(kernel, "bb")
    cfcs = critical_cfcs(lowered.circuit)
    place_buffers(lowered.circuit, cfcs)
    result = None
    if shared:
        result = crush(lowered.circuit, cfcs)
    return estimate_circuit(lowered.circuit), result


def test_table1_gesummv_unrolled(benchmark):
    naive_est, _ = _build(shared=False)
    crush_est, crush_result = benchmark.pedantic(
        _build, args=(True,), rounds=1, iterations=1
    )

    def pct(x, cap):
        return f"{x}/{cap} ({100 * x / cap:.0f}%)"

    rows = [
        ["No sharing", pct(naive_est.lut, DEVICE_LUTS),
         pct(naive_est.ff, DEVICE_FFS), pct(naive_est.dsp, DEVICE_DSPS)],
        ["CRUSH", pct(crush_est.lut, DEVICE_LUTS),
         pct(crush_est.ff, DEVICE_FFS), pct(crush_est.dsp, DEVICE_DSPS)],
    ]
    text = render_table(
        ["Technique", "LUTs", "FFs", "DSPs"], rows,
        title=f"Table 1 — gesummv unrolled x{UNROLL} on xc7k160t",
    )
    with open(results_path("table1.txt"), "w") as f:
        f.write(text + "\n")
    print("\n" + text)

    # The paper's headline shape: without sharing the kernel does not fit
    # (DSPs beyond capacity); with CRUSH it fits with room to spare.
    assert naive_est.dsp > DEVICE_DSPS
    assert not naive_est.fits_device
    assert crush_est.fits_device
    assert crush_est.dsp <= DEVICE_DSPS * 0.25
    assert crush_est.dsp < naive_est.dsp / 5
    assert crush_result.units_removed() > 200
