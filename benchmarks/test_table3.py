"""Table 3: CRUSH on fast-token-delivery circuits (generality, Section 6.5).

The fast-token style has no notion of basic blocks, so the total-order
baseline does not apply — the comparison is the pre-sharing fast-token
circuit vs the same circuit optimized by unmodified CRUSH.  Expected
shapes: the same ~66% DSP reduction as on BB-organized circuits, FF
savings, and near-zero execution-time change; fast-token cycle counts at
or below the BB-style ones.
"""

import pytest

from repro.frontend.kernels import KERNEL_NAMES

from _support import emit_table, get_row, improvement_summary, results_path, table_rows

TECHS = ("naive", "crush")


@pytest.fixture(scope="module")
def rows():
    return table_rows("fast-token", TECHS)


def test_table3_generate(rows, benchmark):
    from repro.analysis import critical_cfcs, place_buffers
    from repro.core import crush
    from repro.frontend import lower_kernel
    from repro.frontend.kernels import build

    def crush_pass():
        low = lower_kernel(build("gesummv", scale="paper"), "fast-token")
        cfcs = critical_cfcs(low.circuit)
        place_buffers(low.circuit, cfcs)
        return crush(low.circuit, cfcs)

    benchmark.pedantic(crush_pass, rounds=3, iterations=1)

    text = emit_table(
        rows, "table3",
        "Table 3 — Fast-token circuits without and with CRUSH",
        label_naive="Fast token",
    )
    summary = improvement_summary(rows, "naive", "crush")
    with open(results_path("table3_summary.txt"), "w") as f:
        f.write(
            f"Average improvement of CRUSH vs Fast token: "
            f"Slices {summary['slices']:+.0f}%  LUTs {summary['lut']:+.0f}%  "
            f"FFs {summary['ff']:+.0f}%  DSPs {summary['dsp']:+.0f}%  "
            f"Opt.time {summary['opt_time_s']:+.0f}%  "
            f"Exec.time {summary['exec_time_us']:+.0f}%\n"
        )
    print("\n" + text)


class TestTable3Shapes:
    @pytest.fixture(autouse=True)
    def _rows(self, rows):
        self.by = {(r.kernel, r.technique): r for r in rows}

    def test_crush_unmodified_shares_everything(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for k in KERNEL_NAMES:
            assert self.by[(k, "crush")].dsp == 5, k

    def test_dsp_reduction_matches_bb_results(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        red = improvement_summary(
            [self.by[(k, t)] for k in KERNEL_NAMES for t in TECHS],
            "naive", "crush",
        )["dsp"]
        assert red <= -55.0  # paper: -66%

    def test_fast_token_cycles_not_above_bb(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        worse = 0
        for k in KERNEL_NAMES:
            bb = get_row(k, "naive", style="bb").cycles
            ft = self.by[(k, "naive")].cycles
            if ft > bb * 1.02:
                worse += 1
        # Fast-token delivery is the leaner style; allow isolated noise.
        assert worse <= 2

    def test_exec_time_roughly_preserved(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for k in KERNEL_NAMES:
            naive = self.by[(k, "naive")].cycles
            shared = self.by[(k, "crush")].cycles
            assert shared <= naive * 1.12, k
