"""Ablation: credit allocation (Equation 3) — why Φ+1, not less, not more.

Two experiments:

1. **Throughput** — a paced stream (II = 4) through two shared latency-10
   multipliers (occupancy Φ = 2.5 each).  One credit per operation
   throttles the shared unit far below the input rate; Equation 3
   (ceil(Φ)+1 = 4) restores the full rate; extra credits add nothing.
2. **Cost** — the same sweep on the gesummv kernel shows the other side:
   credits beyond Eq. 3 buy no cycles while paying for larger output
   buffers (paper Section 5.4: "naively assigning many credits incurs a
   high output buffer cost").
"""

import math

import pytest

from repro.analysis import (
    break_combinational_cycles,
    critical_cfcs,
    insert_timing_buffers,
    occupancy_map,
    place_buffers,
)
from repro.circuit import (
    CreditCounter,
    DataflowCircuit,
    EagerFork,
    FunctionalUnit,
    Join,
    LazyFork,
    Sequence,
    Sink,
    TransparentFifo,
)
from repro.core import access_priority, insert_sharing_wrapper, sharing_groups, allocate_credits
from repro.frontend import lower_kernel, simulate_kernel
from repro.frontend.kernels import build
from repro.reporting import render_table
from repro.sim import Engine

from _support import results_path

KERNEL = "gesummv"
N_TOKENS = 30
INPUT_II = 4
LAT = 10


def paced_two_op_stream(credits_per_op):
    """Paced source -> fork -> two independent latency-10 fmuls (shared)."""
    c = DataflowCircuit("ab")
    src = c.add(Sequence("src", [float(i) for i in range(N_TOKENS)]))
    cc = c.add(CreditCounter("pace_cc", 1))
    gate = c.add(Join("pace_gate", 2))
    lf = c.add(LazyFork("pace_fork", 2))
    delay = c.add(FunctionalUnit("pace_delay", "pass", latency_override=INPUT_II - 1))
    buf = c.add(TransparentFifo("inbuf", slots=2))
    fork = c.add(EagerFork("fork", 2))
    m1 = c.add(FunctionalUnit("M1", "fmul", latency_override=LAT))
    m2 = c.add(FunctionalUnit("M2", "fmul", latency_override=LAT))
    k1 = c.add(Sequence("k1", [2.0] * N_TOKENS))
    k2 = c.add(Sequence("k2", [3.0] * N_TOKENS))
    s1, s2 = c.add(Sink("s1")), c.add(Sink("s2"))
    c.connect(src, 0, gate, 0)
    c.connect(cc, 0, gate, 1, width=0)
    c.connect(gate, 0, lf, 0)
    c.connect(lf, 1, delay, 0)
    c.connect(delay, 0, cc, 0, width=0)
    c.connect(lf, 0, buf, 0)
    c.connect(buf, 0, fork, 0)
    c.connect(fork, 0, m1, 0)
    c.connect(k1, 0, m1, 1)
    c.connect(fork, 1, m2, 0)
    c.connect(k2, 0, m2, 1)
    c.connect(m1, 0, s1, 0)
    c.connect(m2, 0, s2, 0)
    if credits_per_op:
        insert_sharing_wrapper(
            c, ["M1", "M2"],
            credits={"M1": credits_per_op, "M2": credits_per_op},
        )
    eng = Engine(c)
    eng.run(lambda: s1.count == N_TOKENS and s2.count == N_TOKENS,
            max_cycles=20_000)
    assert s1.received == [i * 2.0 for i in range(N_TOKENS)]
    return eng.cycle


def shared_kernel_run(extra_credits):
    lowered = lower_kernel(build(KERNEL, scale="paper"), "bb")
    cfcs = critical_cfcs(lowered.circuit)
    place_buffers(lowered.circuit, cfcs)
    occ = occupancy_map(lowered.circuit, cfcs)
    groups = sharing_groups(lowered.circuit, cfcs, occ)
    from repro.resources import estimate_circuit

    for group in groups:
        if len(group) < 2:
            continue
        credits = {
            op: max(1, math.ceil(occ.get(op, 0)) + 1 + extra_credits)
            for op in group
        }
        insert_sharing_wrapper(
            lowered.circuit, group,
            priority=access_priority(group, cfcs), credits=credits,
        )
    break_combinational_cycles(lowered.circuit)
    insert_timing_buffers(lowered.circuit)
    sim = simulate_kernel(lowered, max_cycles=4_000_000)
    return sim.cycles, estimate_circuit(lowered.circuit)


def test_ablation_credit_throughput(benchmark):
    eq3 = max(1, math.ceil(LAT / INPUT_II) + 1)  # Φ = 10/4 -> 4 credits

    def sweep():
        return {
            "unshared": paced_two_op_stream(0),
            "1 credit": paced_two_op_stream(1),
            "2 credits": paced_two_op_stream(2),
            f"Eq.3 ({eq3})": paced_two_op_stream(eq3),
            f"{eq3 + 4} credits": paced_two_op_stream(eq3 + 4),
        }

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(
        ["credits per op", "total cycles"], list(cycles.items()),
        title="Ablation — credit count vs throughput "
              f"(paced II={INPUT_II} stream, two shared lat-{LAT} fmuls)",
    )
    with open(results_path("ablation_credits_throughput.txt"), "w") as f:
        f.write(text + "\n")
    print("\n" + text)

    base = cycles["unshared"]
    assert cycles["1 credit"] > base * 1.5       # starved wrapper throttles
    assert cycles[f"Eq.3 ({eq3})"] <= base * 1.10  # Eq. 3 restores the rate
    assert cycles[f"{eq3 + 4} credits"] >= cycles[f"Eq.3 ({eq3})"] * 0.95


def test_ablation_credit_cost(benchmark):
    def sweep():
        return {extra: shared_kernel_run(extra) for extra in (0, 2, 6)}

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = [
        [f"Eq.3 + {extra}", cycles, est.lut, est.ff]
        for extra, (cycles, est) in rows.items()
    ]
    text = render_table(
        ["credits", "cycles", "LUTs", "FFs"], table,
        title=f"Ablation — credit over-allocation cost on {KERNEL}",
    )
    with open(results_path("ablation_credits_cost.txt"), "w") as f:
        f.write(text + "\n")
    print("\n" + text)
    # Extra credits do not improve cycles but inflate buffer FFs/LUTs.
    assert rows[6][0] >= rows[0][0] * 0.97
    assert rows[6][1].ff > rows[0][1].ff
    assert rows[6][1].lut > rows[0][1].lut
