"""Simulation-backend throughput benchmark.

Measures, for each of the three simulation backends on three
representative Table 2 kernels in one process:

* **setup** — engine construction time, cold (first engine on the
  structure: schedule levelization, and for codegen source emission +
  compilation) and warm (second engine: schedule memo and generated-
  module cache hits), and
* **steady-state throughput** — cycles/sec over the engine run loop
  only, measured on a warm engine.

A fourth column benchmarks the codegen backend with steady-state
fast-forward on the kernels, and a dedicated periodic streaming circuit
records the fast-forward headline speedup (the kernels' phase changes
limit how long any one period survives; the streaming circuit is the
shape fast-forward exists for).  A fifth column measures the batched
(lane-parallel) codegen backend at 8 lanes of distinct input sets,
reporting per-dataset throughput against a lanes=1 batch.  A dedicated
``divergent_lanes`` section runs ``gsumif`` — whose data-dependent
branch diverges immediately, so pre-mask the batch fell back to scalar
and gained nothing — at 64 lanes of divergent seeds, reporting
per-dataset throughput against the 64 scalar codegen runs it replaces
and against the event backend's sequential per-lane path.  On fully
divergent control the mask loop's per-lane data work stays Python-level
(bit-scan loops over fired/valid lanes), so per-dataset cost lands at
~parity with scalar codegen; the asserted floors pin that parity (no
regression back toward the fallback's per-lane engine setup cost) and
the multiple over sequential event execution.

Results land in ``BENCH_sim.json`` at the repo root so the simulator's
perf trajectory accumulates PR over PR.  The schema keeps the
historical ``geomean_speedup_compiled_vs_event`` key.  Correctness
assertions (identical cycle counts across all backends) are gating;
the speedup floors are asserted here but CI runs this file as a
non-gating step and uploads the artifact.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time

import pytest

from repro.analysis import critical_cfcs, insert_timing_buffers, place_buffers
from repro.circuit import (
    DataflowCircuit,
    ElasticBuffer,
    Entry,
    FunctionalUnit,
    Sink,
)
from repro.core import crush
from repro.frontend import lower_kernel, simulate_kernel, simulate_kernel_batch
from repro.frontend.kernels import build
from repro.frontend.runner import default_inputs
from repro.sim import Memory, create_engine

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT = os.path.join(REPO_ROOT, "BENCH_sim.json")

#: Representative Table 2 kernels: small (atax), medium (bicg), and the
#: suite's cycle-count heavyweight (gemm, ~82k cycles at paper scale).
KERNELS = ("atax", "bicg", "gemm")
SCALE = "paper"
BACKENDS_MEASURED = ("event", "compiled", "codegen")

#: Lane count for the batched-throughput column; seeds are distinct so
#: every lane simulates a different input set (the interesting case).
LANES = 8
LANE_SEEDS = tuple(range(7, 7 + LANES))

#: Divergent-control benchmark: gsumif's branch depends on loaded data,
#: so lanes with distinct seeds diverge within a few cycles and the
#: whole run executes in mask-lane mode.
DIVERGENT_KERNEL = "gsumif"
DIVERGENT_LANES = 64
DIVERGENT_SEEDS = tuple(range(100, 100 + DIVERGENT_LANES))


def _prepare(kernel_name: str):
    """Lower + share one kernel exactly like the evaluation pipeline."""
    kernel = build(kernel_name, scale=SCALE)
    lowered = lower_kernel(kernel, style="bb")
    circuit = lowered.circuit
    cfcs = critical_cfcs(circuit)
    place_buffers(circuit, cfcs)
    crush(circuit, cfcs)
    insert_timing_buffers(circuit)
    return lowered


def _fresh_memory(lowered):
    kernel = lowered.kernel
    inputs = default_inputs(kernel)
    memory = Memory()
    for arr in kernel.arrays:
        memory.allocate(arr.name, arr.resolved_size(kernel.params),
                        init=inputs[arr.name])
    return memory


def _time_setup(lowered, backend: str) -> float:
    """Time one engine construction (units are reset again before runs)."""
    memory = _fresh_memory(lowered)
    t0 = time.perf_counter()
    create_engine(lowered.circuit, backend=backend, memory=memory)
    return time.perf_counter() - t0


def _measure(lowered, backend: str, fast_forward: bool = False,
             repeats: int = 2):
    setup_cold = _time_setup(lowered, backend)
    setup_warm = _time_setup(lowered, backend)
    # The run's own engine build now hits every per-structure cache, so
    # run.sim_wall_s is warm steady-state throughput; best-of-``repeats``
    # damps scheduler noise (cycle counts are identical by construction).
    wall = math.inf
    for _ in range(repeats):
        run = simulate_kernel(lowered, max_cycles=4_000_000, backend=backend,
                              fast_forward=fast_forward or None)
        wall = min(wall, run.sim_wall_s)
    return {
        "cycles": run.cycles,
        "fires": run.fires,
        "setup_cold_s": round(setup_cold, 4),
        "setup_warm_s": round(setup_warm, 4),
        "sim_wall_s": round(wall, 4),
        "cycles_per_sec": round(run.cycles / wall, 1),
    }


def _measure_lanes(lowered, repeats: int = 2):
    """Batched-codegen throughput: LANES distinct input sets per pass.

    ``simulate_kernel_batch`` times ``run_lanes`` only, so the laned
    module compile (cached after the first call) never pollutes the
    number.  The figure of merit is *datasets per second*: a lanes=B
    batch finishes B input sets in one wall interval, so per-dataset
    speedup over the lanes=1 batch is ``B * wall_1 / wall_B``.
    """
    walls = {}
    cycles = {}
    for label, seeds in (("lanes1", LANE_SEEDS[:1]), ("lanes8", LANE_SEEDS)):
        wall = math.inf
        for _ in range(repeats):
            runs = simulate_kernel_batch(
                lowered, seeds, max_cycles=4_000_000, backend="codegen"
            )
            wall = min(wall, runs[0].sim_wall_s)
        walls[label] = wall
        cycles[label] = [r.cycles for r in runs]
    # Affine kernels are lane-lockstep: every lane costs the scalar
    # cycle count, so datasets/sec is a pure wall-clock comparison.
    assert len(set(cycles["lanes8"])) == 1, cycles
    assert cycles["lanes8"][0] == cycles["lanes1"][0], cycles
    return {
        "lanes": LANES,
        "cycles": cycles["lanes8"][0],
        "sim_wall_s_lanes1": round(walls["lanes1"], 4),
        "sim_wall_s_lanes8": round(walls["lanes8"], 4),
        "datasets_per_sec_lanes1": round(1.0 / walls["lanes1"], 2),
        "datasets_per_sec_lanes8": round(LANES / walls["lanes8"], 2),
        "speedup_per_dataset": round(
            LANES * walls["lanes1"] / walls["lanes8"], 2
        ),
    }


def _measure_divergent(lowered, repeats: int = 2):
    """Mask-lane throughput on control-divergent input sets.

    Two figures of merit: per-dataset speedup over running the same
    seeds one at a time on the scalar codegen backend (the work the
    batch replaces — mask mode holds ~parity here, because the
    per-lane data plane is Python-level either way), and per-dataset
    speedup over the event backend's sequential per-lane batch (where
    lane batching genuinely multiplies throughput).  Gating
    correctness: every lane must match its scalar run bit-for-bit with
    zero scalar-fallback lanes and exactly one mask promotion per
    batch.
    """
    scalar_wall = 0.0
    scalar = {}
    for seed in DIVERGENT_SEEDS:
        run = simulate_kernel(lowered, max_cycles=4_000_000,
                              backend="codegen", seed=seed)
        scalar_wall += run.sim_wall_s
        scalar[seed] = (run.cycles, run.fires)
    event_runs = simulate_kernel_batch(
        lowered, DIVERGENT_SEEDS, max_cycles=4_000_000, backend="event"
    )
    event_wall = event_runs[0].sim_wall_s
    wall = math.inf
    for _ in range(repeats):
        runs = simulate_kernel_batch(
            lowered, DIVERGENT_SEEDS, max_cycles=4_000_000, backend="codegen"
        )
        wall = min(wall, runs[0].sim_wall_s)
    for seed, run in zip(DIVERGENT_SEEDS, runs):
        assert run.fallback_lanes == 0, (seed, run.fallback_lanes)
        assert run.mask_promotions == 1, (seed, run.mask_promotions)
        assert (run.cycles, run.fires) == scalar[seed], seed
    cycles = [c for c, _ in scalar.values()]
    return {
        "kernel": DIVERGENT_KERNEL,
        "lanes": DIVERGENT_LANES,
        "divergence": runs[0].divergence,
        "cycles_min": min(cycles),
        "cycles_max": max(cycles),
        "sim_wall_s_scalar_sum": round(scalar_wall, 4),
        "sim_wall_s_event_sequential": round(event_wall, 4),
        "sim_wall_s_lanes64": round(wall, 4),
        "speedup_per_dataset": round(scalar_wall / wall, 2),
        "speedup_vs_event_sequential": round(event_wall / wall, 2),
    }


def _geomean(values):
    return round(math.exp(sum(math.log(v) for v in values) / len(values)), 2)


@pytest.fixture(scope="module")
def measurements():
    out = {}
    for name in KERNELS:
        lowered = _prepare(name)
        per = {b: _measure(lowered, b) for b in BACKENDS_MEASURED}
        per["codegen_ff"] = _measure(lowered, "codegen", fast_forward=True)
        per["codegen_lanes"] = _measure_lanes(lowered)
        out[name] = per
    return out


def _streaming_circuit(n_tokens: int) -> DataflowCircuit:
    """Entry -> buffered FU chain -> Sink: a long II-1 periodic steady
    state, the shape fast-forward is built for."""
    c = DataflowCircuit("stream")
    prev = c.add(Entry("src", value=1.5, count=n_tokens))
    for i in range(6):
        buf = c.add(ElasticBuffer(f"b{i}", slots=2))
        fu = c.add(FunctionalUnit(f"fu{i}", "fneg"))
        c.connect(prev, 0, buf, 0)
        c.connect(buf, 0, fu, 0)
        prev = fu
    sink = c.add(Sink("out"))
    c.connect(prev, 0, sink, 0)
    c.validate()
    return c


@pytest.fixture(scope="module")
def divergent_measurement():
    return _measure_divergent(_prepare(DIVERGENT_KERNEL))


@pytest.fixture(scope="module")
def stream_measurement():
    n = 200_000
    out = {}
    for label, ff in (("codegen", False), ("codegen_ff", True)):
        c = _streaming_circuit(n)
        sink = c.units["out"]
        eng = create_engine(c, backend="codegen", fast_forward=ff)
        t0 = time.perf_counter()
        cycles = eng.run(lambda: sink.count >= n, max_cycles=10 * n)
        wall = time.perf_counter() - t0
        out[label] = {
            "cycles": cycles,
            "fires": eng.total_fires,
            "sink_tail": sink.received[-1],
            "sim_wall_s": round(wall, 4),
            "cycles_per_sec": round(cycles / wall, 1),
            "ff_periods_applied": eng.ff_periods_applied,
        }
    return out


def test_backends_agree_on_bench_kernels(measurements):
    for name, per_backend in measurements.items():
        cycles = {b: m["cycles"] for b, m in per_backend.items()}
        fires = {b: m["fires"] for b, m in per_backend.items()
                 if "fires" in m}
        assert len(set(cycles.values())) == 1, (name, cycles)
        assert len(set(fires.values())) == 1, (name, fires)


def test_fast_forward_never_slows_kernels(measurements):
    """Regression guard: fast-forward may fail to find a period on the
    kernels, but its probe governor must keep the overhead small.  The
    floor leaves ~10% headroom because the ratio of two best-of-2 wall
    clocks jitters by several percent on a loaded host (observed
    0.94–1.04 on an unchanged scalar module)."""
    for name, per in measurements.items():
        ratio = (per["codegen_ff"]["cycles_per_sec"]
                 / per["codegen"]["cycles_per_sec"])
        assert ratio >= 0.90, (name, round(ratio, 3))


def test_batched_lanes_speedup_per_dataset(measurements):
    """Lane-parallelism floor: 8 input sets per pass must finish each
    dataset at least 3x faster than running them one at a time."""
    for name, per in measurements.items():
        assert per["codegen_lanes"]["speedup_per_dataset"] >= 3.0, (
            name, per["codegen_lanes"])


def test_divergent_mask_lanes_speedup_per_dataset(divergent_measurement):
    """Divergent-control floors.  On fully divergent control the mask
    loop's data plane degenerates to per-lane Python bit-scan work, so
    vs scalar codegen the honest per-dataset figure is ~1x (measured
    1.0x; the win over the pre-mask scalar fallback is structural —
    zero per-lane engine setup, divergence counters, bit-identity under
    one engine — not wall clock).  The parity floor guards against
    regressing below the fallback it replaced; the event-sequential
    floor pins the multiple where lane batching genuinely pays
    (measured ~3.8x)."""
    assert divergent_measurement["speedup_per_dataset"] >= 0.7, (
        divergent_measurement)
    assert divergent_measurement["speedup_vs_event_sequential"] >= 2.0, (
        divergent_measurement)


def test_fast_forward_exact_and_engaged_on_stream(stream_measurement):
    plain, ff = (stream_measurement["codegen"],
                 stream_measurement["codegen_ff"])
    assert ff["cycles"] == plain["cycles"]
    assert ff["fires"] == plain["fires"]
    assert ff["sink_tail"] == plain["sink_tail"]
    assert ff["ff_periods_applied"] > 0


def test_write_bench_artifact(measurements, stream_measurement,
                              divergent_measurement):
    kernels = {}
    sp_compiled, sp_codegen, sp_lanes = [], [], []
    for name, per in measurements.items():
        spc = round(per["compiled"]["cycles_per_sec"]
                    / per["event"]["cycles_per_sec"], 2)
        spg = round(per["codegen"]["cycles_per_sec"]
                    / per["event"]["cycles_per_sec"], 2)
        spf = round(per["codegen_ff"]["cycles_per_sec"]
                    / per["codegen"]["cycles_per_sec"], 2)
        spl = per["codegen_lanes"]["speedup_per_dataset"]
        sp_compiled.append(spc)
        sp_codegen.append(spg)
        sp_lanes.append(spl)
        kernels[name] = dict(
            per,
            cycles=per["codegen"]["cycles"],
            speedup_compiled_vs_event=spc,
            speedup_codegen_vs_event=spg,
            speedup_ff_vs_codegen=spf,
            speedup_lanes8_per_dataset=spl,
        )
    geo_compiled = _geomean(sp_compiled)
    geo_codegen = _geomean(sp_codegen)
    geo_lanes = _geomean(sp_lanes)
    stream_speedup = round(
        stream_measurement["codegen_ff"]["cycles_per_sec"]
        / stream_measurement["codegen"]["cycles_per_sec"], 2,
    )
    artifact = {
        "bench": "sim_backend_throughput",
        "scale": SCALE,
        "style": "bb",
        "technique": "crush",
        "mode": "single process; setup = engine construction (cold then "
                "warm), cycles/sec measured over the engine run loop on a "
                "warm engine",
        "python": platform.python_version(),
        "kernels": kernels,
        "geomean_speedup_compiled_vs_event": geo_compiled,
        "geomean_speedup_codegen_vs_event": geo_codegen,
        "geomean_speedup_lanes8_per_dataset": geo_lanes,
        "divergent_lanes": divergent_measurement,
        "fast_forward_stream": {
            "circuit": "Entry -> 6x(ElasticBuffer(2) -> fneg) -> Sink, "
                       "200k tokens",
            "codegen": stream_measurement["codegen"],
            "codegen_ff": {k: v for k, v in
                           stream_measurement["codegen_ff"].items()
                           if k != "sink_tail"},
            "speedup_ff_vs_codegen": stream_speedup,
        },
    }
    for per in artifact["fast_forward_stream"].values():
        if isinstance(per, dict):
            per.pop("sink_tail", None)
    with open(ARTIFACT, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    # Perf floors: the compiled backend must never lose to the event
    # oracle; the specialized codegen backend carries the ISSUE targets.
    assert geo_compiled >= 1.0
    assert geo_codegen >= 3.5, sp_codegen
    assert min(sp_lanes) >= 3.0, sp_lanes
    assert stream_speedup >= 10.0, stream_measurement
