"""Simulation-backend throughput benchmark.

Measures cycles/sec of both simulation backends on three representative
Table 2 kernels (cold: engines built fresh, persistent caches unused,
one process) and writes the result to ``BENCH_sim.json`` at the repo
root, so the simulator's perf trajectory accumulates PR over PR.

The correctness assertions (identical cycle counts across backends) are
gating; the recorded throughput numbers are informational — CI runs this
as a non-gating step and uploads the artifact.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time

import pytest

from repro.analysis import critical_cfcs, insert_timing_buffers, place_buffers
from repro.core import crush
from repro.frontend import lower_kernel, simulate_kernel
from repro.frontend.kernels import build
from repro.sim import BACKENDS

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT = os.path.join(REPO_ROOT, "BENCH_sim.json")

#: Representative Table 2 kernels: small (atax), medium (bicg), and the
#: suite's cycle-count heavyweight (gemm, ~82k cycles at paper scale).
KERNELS = ("atax", "bicg", "gemm")
SCALE = "paper"


def _prepare(kernel_name: str):
    """Lower + share one kernel exactly like the evaluation pipeline."""
    kernel = build(kernel_name, scale=SCALE)
    lowered = lower_kernel(kernel, style="bb")
    circuit = lowered.circuit
    cfcs = critical_cfcs(circuit)
    place_buffers(circuit, cfcs)
    crush(circuit, cfcs)
    insert_timing_buffers(circuit)
    return lowered


def _measure(lowered, backend: str):
    t0 = time.perf_counter()
    run = simulate_kernel(lowered, max_cycles=4_000_000, backend=backend)
    total = time.perf_counter() - t0
    return {
        "cycles": run.cycles,
        "fires": run.fires,
        "sim_wall_s": round(run.sim_wall_s, 4),
        # setup = reference execution + memory init + engine build
        # (for the compiled backend: the one-time schedule compilation).
        "setup_s": round(total - run.sim_wall_s, 4),
        "cycles_per_sec": round(run.cycles / run.sim_wall_s, 1),
    }


@pytest.fixture(scope="module")
def measurements():
    out = {}
    for name in KERNELS:
        lowered = _prepare(name)
        out[name] = {b: _measure(lowered, b) for b in BACKENDS}
    return out


def test_backends_agree_on_bench_kernels(measurements):
    for name, per_backend in measurements.items():
        cycles = {b: m["cycles"] for b, m in per_backend.items()}
        assert len(set(cycles.values())) == 1, (name, cycles)


def test_write_bench_artifact(measurements):
    kernels = {}
    speedups = []
    for name, per_backend in measurements.items():
        sp = round(
            per_backend["compiled"]["cycles_per_sec"]
            / per_backend["event"]["cycles_per_sec"], 2,
        )
        speedups.append(sp)
        kernels[name] = {
            "cycles": per_backend["compiled"]["cycles"],
            "event": per_backend["event"],
            "compiled": per_backend["compiled"],
            "speedup_compiled_vs_event": sp,
        }
    geomean = round(
        math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 2
    )
    artifact = {
        "bench": "sim_backend_throughput",
        "scale": SCALE,
        "style": "bb",
        "technique": "crush",
        "mode": "cold, single process; cycles/sec measured over the "
                "engine run loop (setup reported separately)",
        "python": platform.python_version(),
        "kernels": kernels,
        "geomean_speedup_compiled_vs_event": geomean,
    }
    with open(ARTIFACT, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    # The compiled backend must never be slower than the event oracle.
    assert geomean >= 1.0
