#!/usr/bin/env python
"""Quickstart: share the functional units of a kernel with CRUSH.

Builds the gemm kernel, lowers it to a dataflow circuit, applies CRUSH,
and compares resources and simulated cycle counts against the unshared
(Naive) circuit — a miniature of the paper's Table 2 methodology.

Run:  python examples/quickstart.py
"""

from repro.analysis import critical_cfcs, place_buffers
from repro.core import crush
from repro.frontend import lower_kernel, simulate_kernel
from repro.frontend.kernels import build
from repro.resources import estimate_circuit


def run(technique: str):
    kernel = build("gemm", scale="small", NI=6, NJ=6, NK=6)
    lowered = lower_kernel(kernel, style="bb")
    cfcs = critical_cfcs(lowered.circuit)
    place_buffers(lowered.circuit, cfcs)

    decisions = None
    if technique == "crush":
        decisions = crush(lowered.circuit, cfcs)

    sim = simulate_kernel(lowered)  # checks results against the C semantics
    est = estimate_circuit(lowered.circuit)
    return est, sim, decisions


def main():
    naive_est, naive_sim, _ = run("naive")
    crush_est, crush_sim, decisions = run("crush")

    print("gemm (6x6x6), BB-organized dataflow circuit\n")
    print(f"{'':10s} {'FUs':>16s} {'DSPs':>5s} {'LUTs':>6s} {'FFs':>6s} {'cycles':>7s}")
    print(f"{'Naive':10s} {naive_est.fu_summary():>16s} {naive_est.dsp:5d} "
          f"{naive_est.lut:6d} {naive_est.ff:6d} {naive_sim.cycles:7d}")
    print(f"{'CRUSH':10s} {crush_est.fu_summary():>16s} {crush_est.dsp:5d} "
          f"{crush_est.lut:6d} {crush_est.ff:6d} {crush_sim.cycles:7d}")

    print("\nCRUSH decisions:")
    for group in decisions.groups:
        if len(group) < 2:
            continue
        key = decisions.group_key(group)
        print(f"  group   : {group}")
        print(f"  priority: {decisions.priorities[key]}")
        print(f"  credits : {decisions.credits[key]}  (Eq. 3: N_CC = Φ + 1)")
    overhead = 100 * (crush_sim.cycles - naive_sim.cycles) / naive_sim.cycles
    print(f"\nDSPs {naive_est.dsp} -> {crush_est.dsp}, "
          f"cycle overhead {overhead:+.1f}% — sharing is almost free "
          "when the II leaves the units underutilized.")


if __name__ == "__main__":
    main()
