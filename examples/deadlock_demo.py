#!/usr/bin/env python
"""The paper's Figure 1, live: how sharing deadlocks and how CRUSH avoids it.

Four experiments on the circuit for ``a[i] = i*i*C2 + i*C1``:

1. naive sharing of M2/M3 (no credits)        -> head-of-line DEADLOCK
2. credit-based sharing of M2/M3 (Eq. 1)      -> completes, same results
3. fixed-order sharing of M1/M3 (order M3,M1) -> order-induced DEADLOCK
4. priority arbitration of M1/M3              -> completes, same results

Run:  python examples/deadlock_demo.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from helpers import fig1_circuit  # the exact circuit the test suite pins down

from repro.core import insert_sharing_wrapper
from repro.errors import DeadlockError
from repro.sim import Engine

N = 8


def experiment(title, build_and_share):
    circuit, sink, expected = build_and_share()
    print(f"--- {title}")
    try:
        engine = Engine(circuit, deadlock_window=48)
        engine.run(lambda: sink.count == N, max_cycles=4000)
        ok = sink.received == expected
        print(f"    completed in {engine.cycle} cycles, "
              f"results {'correct' if ok else 'WRONG'}\n")
    except DeadlockError as exc:
        print(f"    DEADLOCK at cycle {exc.cycle}; first blocked tokens:")
        for line in exc.blocked[:3]:
            print(f"      {line}")
        print()


def naive():
    c, sink, expected = fig1_circuit(N, slack_slots=0)
    insert_sharing_wrapper(c, ["M2", "M3"], use_credits=False,
                           credits={"M2": 1, "M3": 1})
    return c, sink, expected


def credits():
    c, sink, expected = fig1_circuit(N, slack_slots=0)
    insert_sharing_wrapper(c, ["M2", "M3"], credits={"M2": 2, "M3": 2})
    return c, sink, expected


def fixed_order():
    c, sink, expected = fig1_circuit(N, slack_slots=8)
    insert_sharing_wrapper(c, ["M1", "M3"], arbitration="fixed",
                           fixed_order=["M3", "M1"],
                           credits={"M1": 2, "M3": 2})
    return c, sink, expected


def priority():
    c, sink, expected = fig1_circuit(N, slack_slots=8)
    insert_sharing_wrapper(c, ["M1", "M3"], priority=["M3", "M1"],
                           credits={"M1": 2, "M3": 2})
    return c, sink, expected


def main():
    print(__doc__)
    experiment("Figure 1b: naive sharing (no credits)", naive)
    experiment("Figure 1c: credit-based sharing (CRUSH)", credits)
    experiment("Figure 1d: fixed access order M3 before M1", fixed_order)
    experiment("Figure 1e: priority arbitration (CRUSH)", priority)


if __name__ == "__main__":
    main()
