#!/usr/bin/env python
"""Writing your own kernel and comparing all three sharing strategies.

Defines a small "weighted residual" kernel in the frontend IR — a guarded
accumulation mixing a polynomial chain (which total-order sharing cannot
share) with independent reductions (which it can) — then runs the Naive,
In-order and CRUSH pipelines on it.

Run:  python examples/custom_kernel.py
"""

from repro.analysis import critical_cfcs, place_buffers
from repro.baselines import inorder_share
from repro.core import crush
from repro.frontend import (
    Array,
    Const,
    For,
    IConst,
    If,
    Kernel,
    Let,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fcmp_ge,
    fmul,
    lower_kernel,
    simulate_kernel,
)
from repro.resources import estimate_circuit


def weighted_residual() -> Kernel:
    """pos += w[i]*(x[i]*x[i]+c) when x[i] >= 0 ; neg += w[i]*x[i] otherwise."""
    return Kernel(
        name="weighted_residual",
        params={"N": 40},
        arrays=[
            Array("x", "N"),
            Array("w", "N"),
            Array("out", 2, role="out"),
        ],
        body=[
            For("i", IConst(0), Param("N"),
                carried={"pos": Const(0.0), "neg": Const(0.0)},
                body=[
                    Let("xi", Load("x", Var("i"))),
                    Let("wi", Load("w", Var("i"))),
                    If(fcmp_ge(Var("xi"), Const(0.0)),
                       [SetCarried("pos", fadd(Var("pos"), fmul(Var("wi"),
                            fadd(fmul(Var("xi"), Var("xi")), Const(0.5)))))],
                       [SetCarried("neg", fadd(Var("neg"),
                            fmul(Var("wi"), Var("xi"))))]),
                ]),
            Store("out", IConst(0), Var("pos")),
            Store("out", IConst(1), Var("neg")),
        ],
    )


def run(technique: str):
    lowered = lower_kernel(weighted_residual(), "bb")
    cfcs = critical_cfcs(lowered.circuit)
    place_buffers(lowered.circuit, cfcs)
    if technique == "inorder":
        share = inorder_share(lowered.circuit, cfcs)
    elif technique == "crush":
        share = crush(lowered.circuit, cfcs)
    else:
        share = None
    sim = simulate_kernel(lowered)
    est = estimate_circuit(lowered.circuit)
    opt = getattr(share, "opt_time_s", 0.0)
    return est, sim, opt


def main():
    print("weighted_residual (N=40): guarded polynomial + two reductions\n")
    print(f"{'technique':10s} {'FUs':>16s} {'DSPs':>5s} {'cycles':>7s} {'opt time':>9s}")
    for technique in ("naive", "inorder", "crush"):
        est, sim, opt = run(technique)
        print(f"{technique:10s} {est.fu_summary():>16s} {est.dsp:5d} "
              f"{sim.cycles:7d} {opt:8.3f}s")
    print("\nEvery run is checked against the kernel's reference semantics;")
    print("In-order shares less (the polynomial chain resists a total order)")
    print("and spends more optimization time (global re-analysis per decision).")


if __name__ == "__main__":
    main()
