#!/usr/bin/env python
"""The paper's Table 1 scenario: unrolled gesummv vs the FPGA's DSP budget.

Unrolling multiplies the floating-point units; without sharing the design
blows past the Kintex-7's 600 DSP blocks, with CRUSH it fits easily.
The default unroll factor here is 25 so the script finishes in seconds;
pass a factor on the command line (the paper uses 75 — see
``benchmarks/test_table1.py`` for the full-size run).

Run:  python examples/gesummv_unroll.py [factor]
"""

import sys

from repro.analysis import critical_cfcs, place_buffers
from repro.core import crush
from repro.frontend import lower_kernel
from repro.frontend.kernels.unrolled import gesummv_unrolled
from repro.resources import DEVICE_DSPS, DEVICE_FFS, DEVICE_LUTS, estimate_circuit


def build(factor, shared):
    kernel = gesummv_unrolled(factor=factor, n=factor)
    lowered = lower_kernel(kernel, "bb")
    cfcs = critical_cfcs(lowered.circuit)
    place_buffers(lowered.circuit, cfcs)
    groups = None
    if shared:
        groups = crush(lowered.circuit, cfcs).groups
    return estimate_circuit(lowered.circuit), groups


def main():
    factor = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    print(f"gesummv, inner loop unrolled x{factor} "
          f"(target: Kintex-7 xc7k160t, {DEVICE_DSPS} DSPs)\n")

    naive, _ = build(factor, shared=False)
    shared, groups = build(factor, shared=True)

    def row(label, est):
        fit = "fits" if est.fits_device else "DOES NOT FIT"
        print(f"{label:12s} {est.fu_summary():>22s}  "
              f"DSP {est.dsp:4d}/{DEVICE_DSPS} ({100*est.dsp/DEVICE_DSPS:3.0f}%)  "
              f"LUT {est.lut:6d}/{DEVICE_LUTS}  FF {est.ff:6d}/{DEVICE_FFS}  [{fit}]")

    row("No sharing", naive)
    row("CRUSH", shared)

    sizes = sorted((len(g) for g in groups if len(g) > 1), reverse=True)
    print(f"\nCRUSH formed {len(sizes)} sharing groups of sizes {sizes};")
    print("group sizes are bounded by rule R2: the summed token occupancy "
          "inside the inner loop may not exceed the unit's pipeline depth.")


if __name__ == "__main__":
    main()
