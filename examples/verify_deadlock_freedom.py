#!/usr/bin/env python
"""Exhaustive verification of CRUSH's deadlock-freedom claim.

Trace-based tests show one schedule; this explores EVERY reachable circuit
state under EVERY environment stalling pattern (explicit-state model
checking, the technique the paper cites [50] for proving dataflow-circuit
properties):

* the naive sharing wrapper has reachable deadlock states, and the checker
  produces a concrete environment schedule leading to one;
* the credit-based wrapper (Equation 1) has none — deadlock freedom holds
  over the full state space, not just on the schedules we happened to run.

Run:  python examples/verify_deadlock_freedom.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from helpers import fig1_circuit

from repro.core import insert_sharing_wrapper
from repro.verify import explore, make_environment_nondeterministic

N = 3  # tokens per source — keeps the exact exploration to a few hundred states


def check(label, use_credits):
    circuit, _, _ = fig1_circuit(N, slack_slots=0)
    insert_sharing_wrapper(
        circuit, ["M2", "M3"],
        use_credits=use_credits, credits={"M2": 1, "M3": 1},
    )
    make_environment_nondeterministic(circuit)
    result = explore(circuit, max_states=60_000)
    verdict = "DEADLOCK-FREE" if result.deadlock_free else "DEADLOCKS"
    print(f"{label:28s}: {verdict}  "
          f"({result.states_explored} states explored, "
          f"{result.deadlock_states} deadlock states)")
    if result.counterexample:
        print(f"    counterexample: {len(result.counterexample)} cycles of "
              f"environment choices, e.g. {result.counterexample[:4]} ...")
    return result


def main():
    print(__doc__)
    naive = check("naive wrapper (Fig. 1b)", use_credits=False)
    credit = check("credit wrapper (Fig. 1c)", use_credits=True)
    assert not naive.deadlock_free
    assert credit.deadlock_free and credit.completed
    print("\nEquation 1 (credits <= output-buffer slots) makes head-of-line")
    print("blocking structurally impossible — verified over every reachable")
    print("state and every environment behaviour, not just one simulation.")


if __name__ == "__main__":
    main()
