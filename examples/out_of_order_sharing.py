#!/usr/bin/env python
"""The paper's Figure 2: why out-of-order access to a shared unit matters.

M1 (latency 3) feeds M3 (latency 3); a new input arrives every 2 cycles.
When they share one unit:

* under a total token order, every M1 from iteration 2 on must wait for
  the previous iteration's M3 — the achieved II degrades to >= 4;
* under CRUSH's credit-based out-of-order access the unit interleaves the
  two operations freely and the circuit keeps II = 2.

Run:  python examples/out_of_order_sharing.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from helpers import fig2_circuit

from repro.core import insert_sharing_wrapper
from repro.sim import Engine, Trace

N = 12


def schedule(share: str):
    circuit, m1, m3, out, expected = fig2_circuit(N, input_ii=2)
    if share == "in-order":
        wrapper = insert_sharing_wrapper(
            circuit, [m1, m3], arbitration="fixed", fixed_order=[m1, m3],
            credits={m1: 3, m3: 3})
    elif share == "crush":
        wrapper = insert_sharing_wrapper(
            circuit, [m1, m3], priority=[m1, m3],
            credits={m1: 3, m3: 3})
    else:
        wrapper = None
    trace = Trace()
    engine = Engine(circuit, trace=trace)
    out_ch = trace.watch_unit_input(circuit, "out", 0)
    engine.run(lambda: out.count == N, max_cycles=4000)
    assert out.received == expected, "results diverged!"

    gaps = trace.interarrival(out_ch)[3:]
    ii = sum(gaps) / len(gaps)
    return ii, engine.cycle


def main():
    print(__doc__)
    for label in ("unshared", "in-order", "crush"):
        ii, total = schedule(label)
        print(f"{label:10s}: steady-state II = {ii:.2f}, total {total} cycles")
    print("\nThe in-order schedule matches the paper's Figure 2a (II >= 4);")
    print("CRUSH achieves the Figure 2b schedule (II = 2) by letting M1 run")
    print("ahead while the previous iteration's M3 is still waiting.")


if __name__ == "__main__":
    main()
