"""Algorithm 2: the access-priority heuristic (paper Section 5.3).

Within a sharing group, the arbitration priority must follow the data
dependencies, or arbitration delays the producer and stretches the II
(the paper's Figure 4 examples).  The heuristic bubble-sorts the group's
priority list: for each adjacent pair that lives in one performance-critical
CFC but in *different* SCCs of it, the pair is ordered by the topological
order of the SCC condensation — producers (earlier SCCs) get higher
priority.  Operations in the same SCC (or never co-resident in a CFC) keep
their relative order: any priority is acceptable for them.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..analysis import CFC


def priority_constraints(
    group: Sequence[str], cfcs: Sequence[CFC]
) -> List[Tuple[str, str]]:
    """Must-precede pairs ``(producer, consumer)`` implied by Algorithm 2.

    For each pair of group members, the first CFC containing both in
    *different* SCCs of its condensation orders them by topological
    position — the same decision procedure :func:`access_priority` sorts
    with.  Any access-priority list that honors every returned pair
    (producer listed before consumer) is a valid Algorithm-2 assignment;
    ``repro.lint`` rule ``CR002`` checks built arbiters against these
    pairs.
    """
    pairs: List[Tuple[str, str]] = []
    n = len(group)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = group[i], group[j]
            for cfc in cfcs:
                if a not in cfc.unit_names or b not in cfc.unit_names:
                    continue
                sccg = cfc.scc_graph()
                if sccg.same_scc(a, b):
                    continue  # this CFC does not constrain the pair
                if sccg.topo_position(a) <= sccg.topo_position(b):
                    pairs.append((a, b))
                else:
                    pairs.append((b, a))
                break  # first deciding CFC wins (matches access_priority)
    return pairs


def access_priority(group: Sequence[str], cfcs: Sequence[CFC]) -> List[str]:
    """Return the group ordered highest-priority first (Algorithm 2)."""
    prio = list(group)
    n = len(prio)
    modified = True
    passes = 0
    while modified and passes <= n + 1:
        modified = False
        passes += 1
        for i in range(1, n):
            a, b = prio[i - 1], prio[i]
            for cfc in cfcs:
                if a not in cfc.unit_names or b not in cfc.unit_names:
                    continue
                sccg = cfc.scc_graph()
                if sccg.same_scc(a, b):
                    continue
                if sccg.topo_position(a) > sccg.topo_position(b):
                    prio[i - 1], prio[i] = b, a
                    modified = True
                break  # first CFC containing both decides (deterministic)
    return prio
