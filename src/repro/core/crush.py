"""The top-level CRUSH pass: groups → priorities → credits → wrappers.

This is the pipeline the paper evaluates (Section 6.1): given a buffered
dataflow circuit and its performance-critical CFCs,

1. compute per-CFC IIs and token occupancies,
2. form sharing groups with Algorithm 1 (rules R1/R2/R3 + the Equation-2
   cost model),
3. assign each group an access priority with Algorithm 2,
4. allocate credits by Equation 3 and size output buffers by Equation 1,
5. rewrite the circuit, replacing each multi-operation group with a
   credit-based sharing wrapper.

The result records every decision plus the measured optimization time, the
quantity the paper's Tables 2-3 report in the ``Opt. time`` column.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis import CFC, break_combinational_cycles, critical_cfcs, occupancy_map
from ..analysis.occupancy import group_occupancy_in_cfc
from ..circuit import DataflowCircuit
from .cost import SharingCostModel, default_cost_model
from .credits import allocate_credits, output_buffer_slots
from .groups import sharing_candidates, sharing_groups
from .priority import access_priority, priority_constraints
from .wrapper import SharingWrapper, insert_sharing_wrapper


@dataclass
class CrushResult:
    """Everything the CRUSH pass decided and did."""

    groups: List[List[str]]
    priorities: Dict[str, List[str]] = field(default_factory=dict)
    credits: Dict[str, Dict[str, int]] = field(default_factory=dict)
    wrappers: List[SharingWrapper] = field(default_factory=list)
    occupancies: Dict[str, Fraction] = field(default_factory=dict)
    #: Per group key: the Algorithm-2 must-precede pairs the access
    #: priority has to honor (recorded at decision time, before the
    #: rewrite removes the grouped units — ``repro.lint`` rule CR002
    #: checks the built arbiters against these).
    order_constraints: Dict[str, List[Tuple[str, str]]] = field(
        default_factory=dict
    )
    #: Per group key: the worst-case (max over CFCs) summed steady-state
    #: occupancy of the group — rule R2's left-hand side, re-checked by
    #: ``repro.lint`` rule CR003 against the live shared unit's capacity.
    group_load: Dict[str, Fraction] = field(default_factory=dict)
    opt_time_s: float = 0.0

    def units_removed(self) -> int:
        """Functional units eliminated by sharing."""
        return sum(len(g) - 1 for g in self.groups if len(g) > 1)

    def shared_groups(self) -> List[List[str]]:
        return [g for g in self.groups if len(g) > 1]

    def group_key(self, group: Sequence[str]) -> str:
        return "+".join(group)


def crush(
    circuit: DataflowCircuit,
    cfcs: Optional[Sequence[CFC]] = None,
    candidates: Optional[Sequence[str]] = None,
    cost_model: Optional[SharingCostModel] = None,
) -> CrushResult:
    """Apply CRUSH to ``circuit`` in place and return the decision record.

    ``cfcs`` defaults to the frontend-tagged performance-critical CFCs;
    ``candidates`` to every shareable (floating-point) functional unit;
    ``cost_model`` to the FPGA-calibrated Equation-2 model.
    """
    t0 = time.perf_counter()
    if cfcs is None:
        cfcs = critical_cfcs(circuit)
    if cost_model is None:
        cost_model = default_cost_model()
    if candidates is None:
        candidates = sharing_candidates(circuit)

    occ = occupancy_map(circuit, cfcs)
    groups = sharing_groups(
        circuit, cfcs, occ, candidates=candidates, cost_model=cost_model
    )
    result = CrushResult(groups=groups, occupancies=occ)
    for group in groups:
        if len(group) < 2:
            continue
        prio = access_priority(group, cfcs)
        creds = allocate_credits(group, occ)
        obs = output_buffer_slots(creds)
        key = result.group_key(group)
        # Decision-time records for the static lint layer: the rewrite
        # below removes the grouped units, so anything that needs the
        # pre-rewrite graph must be captured now.
        result.order_constraints[key] = priority_constraints(group, cfcs)
        result.group_load[key] = max(
            (
                group_occupancy_in_cfc(circuit, group, cfc)
                for cfc in cfcs
                if cfc.ii().ii > 0
            ),
            default=Fraction(0),
        )
        wrapper = insert_sharing_wrapper(
            circuit,
            group,
            priority=prio,
            credits=creds,
            ob_slots=obs,
            arbitration="priority",
        )
        result.priorities[key] = prio
        result.credits[key] = creds
        result.wrappers.append(wrapper)
    if result.wrappers:
        # When grouped operations feed each other, the wrapper's output path
        # (transparent OB, lazy fork) loops combinationally back into its
        # input path (join, arbiter); a pipeline register breaks the loop,
        # exactly as hardware would require.  The timing pass then registers
        # the operand/result chains the wrapper lengthened; the arbitration
        # logic itself stays combinational, so a residual CP overhead that
        # grows with the group size remains (paper Section 6.4).
        break_combinational_cycles(circuit)
        from ..analysis import insert_timing_buffers

        insert_timing_buffers(circuit)
    result.opt_time_s = time.perf_counter() - t0
    return result
