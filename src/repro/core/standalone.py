"""Standalone sharing wrappers: isolated synthesis of the sharing logic.

The paper's Figures 9 and 10 synthesize the sharing wrapper *in isolation*
(each building block of Figure 3 on its own) to characterize its cost as
the group size grows.  This module builds exactly that: ``|G|`` operations
of one type fed by independent streams, wrapped by the requested strategy,
with per-component resource breakdowns.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..circuit import DataflowCircuit, FunctionalUnit, Sequence, Sink, op_spec
from ..resources import Resources, estimate_units, unit_resources
from .wrapper import SharingWrapper, insert_sharing_wrapper


def build_standalone_group(
    n: int, op: str = "fadd", tokens: int = 4
) -> Tuple[DataflowCircuit, list]:
    """``n`` independent operations of one type with stream sources/sinks."""
    c = DataflowCircuit(f"standalone_{op}_{n}")
    names = []
    for i in range(n):
        a = c.add(Sequence(f"a{i}", [float(k) for k in range(tokens)]))
        b = c.add(Sequence(f"b{i}", [float(i)] * tokens))
        fu = c.add(FunctionalUnit(f"op{i}", op))
        s = c.add(Sink(f"s{i}"))
        c.connect(a, 0, fu, 0)
        c.connect(b, 0, fu, 1)
        c.connect(fu, 0, s, 0)
        names.append(fu.name)
    c.validate()
    return c, names


def paper_credits(n: int, op: str = "fadd") -> int:
    """Figure 10's credit sizing: Φ_op = lat_op / |G|, N_CC = ceil(Φ)+1."""
    lat = op_spec(op).latency
    return max(1, math.ceil(lat / max(1, n)) + 1)


def build_shared_standalone(
    n: int,
    op: str = "fadd",
    strategy: str = "crush",
) -> Tuple[DataflowCircuit, Optional[SharingWrapper]]:
    """A standalone group shared by CRUSH or the In-order strategy.

    ``n == 1`` returns the unshared single unit (no wrapper).
    """
    c, names = build_standalone_group(n, op)
    if n < 2:
        return c, None
    n_cc = paper_credits(n, op)
    credits = {nm: n_cc for nm in names}
    wrapper = insert_sharing_wrapper(c, names, credits=credits)
    if strategy == "inorder":
        wrapper.arbitration = "inorder"
        c.units[wrapper.arbiter].meta["order_state"] = True
    elif strategy != "crush":
        raise ValueError(f"unknown strategy {strategy!r}")
    return c, wrapper


def shared_group_resources(
    n: int, op: str = "fadd", strategy: str = "crush"
) -> Resources:
    """Total resources of the shared unit plus its wrapper (Figure 9)."""
    c, wrapper = build_shared_standalone(n, op, strategy)
    if wrapper is None:
        return unit_resources(c.units[f"op0"])
    units = [c.units[nm] for nm in wrapper.all_unit_names()]
    return estimate_units(units)


def unshared_group_resources(n: int, op: str = "fadd") -> Resources:
    """Resources of ``n`` dedicated units (the not-sharing alternative)."""
    from ..resources import functional_unit_resources

    return functional_unit_resources(op).scaled(n)


#: Figure 10's legend: component label -> wrapper-record attribute.
_COMPONENTS = {
    "Credit counters": "credit_counters",
    "Joins": "joins",
    "Branch": None,  # handled specially (single unit)
    "Shared unit": None,
    "Condition buffer": None,
    "Merges and muxes": None,
    "Output buffers": "output_buffers",
}


def wrapper_component_breakdown(
    n: int, op: str = "fadd"
) -> Dict[str, Resources]:
    """Per-component resources of a CRUSH wrapper (the paper's Figure 10)."""
    c, wrapper = build_shared_standalone(n, op, "crush")
    if wrapper is None:
        return {"Shared unit": unit_resources(c.units["op0"])}
    by_name = c.units
    out: Dict[str, Resources] = {}
    out["Credit counters"] = estimate_units(
        by_name[nm] for nm in wrapper.credit_counters
    )
    out["Joins"] = estimate_units(by_name[nm] for nm in wrapper.joins)
    out["Branch"] = unit_resources(by_name[wrapper.branch])
    out["Shared unit"] = unit_resources(by_name[wrapper.shared_unit])
    out["Condition buffer"] = unit_resources(by_name[wrapper.cond_buffer])
    out["Merges and muxes"] = unit_resources(by_name[wrapper.arbiter])
    out["Output buffers"] = estimate_units(
        by_name[nm] for nm in wrapper.output_buffers
    ) + estimate_units(by_name[nm] for nm in wrapper.lazy_forks)
    return out

