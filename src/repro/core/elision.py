"""Output-buffer elision: the paper's Section 6.4 extension, implemented.

The output buffers dominate the sharing wrapper's LUT cost (~half at
|G| = 7, Figure 10).  The paper observes: *"if we can prove (e.g., using
model checking [50]) that the output is always ready to take tokens
computed by the shared unit, then the output buffer is redundant and can
be removed to save resources."*

This pass does exactly that, with two proof engines:

* ``mode="structural"`` — an output buffer is elidable when its
  (transitive, 1-to-1) consumer chain ends in an always-ready unit
  (a sink).  Sound, cheap, conservative.
* ``mode="verify"`` — remove the buffer on a deep copy of the circuit and
  *model-check* the result over every environment schedule
  (:mod:`repro.verify`); apply the removal only if the state space remains
  deadlock-free.  Sound for the finite configuration explored; intended
  for small circuits (the same scope as the model checker).

Either way, removal preserves Equation 1's spirit: with the buffer gone,
the head-of-line token waits at the branch — which is safe exactly when
the consumer can always drain it.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..circuit import DataflowCircuit, Sink, TransparentFifo, Unit
from ..errors import SharingError
from .wrapper import SharingWrapper


@dataclass
class ElisionResult:
    """Which output buffers were removed, and how it was justified."""

    removed: List[str] = field(default_factory=list)
    kept: List[str] = field(default_factory=list)
    mode: str = "structural"

    @property
    def count(self) -> int:
        return len(self.removed)


def _always_ready(circuit: DataflowCircuit, unit: Unit) -> bool:
    """Conservatively: sinks (and environment sinks) are always ready."""
    from ..verify import StallingSink

    if isinstance(unit, Sink):
        return True
    if isinstance(unit, StallingSink):
        # The environment may stall; never structurally elidable.
        return False
    return False


def _splice_out_buffer(circuit: DataflowCircuit, ob_name: str) -> None:
    """Remove a 1-in/1-out buffer, joining its neighbour channels."""
    ob = circuit.unit(ob_name)
    in_ch = circuit.in_channel(ob, 0)
    out_ch = circuit.out_channel(ob, 0)
    if in_ch is None or out_ch is None:
        raise SharingError(f"{ob_name!r} is not fully connected")
    dst_unit = circuit.units[out_ch.dst.unit]
    dst_port = out_ch.dst.index
    circuit.disconnect(out_ch)
    circuit.redirect_dst(in_ch, dst_unit, dst_port)
    circuit.remove_unit(ob)


def elide_output_buffers(
    circuit: DataflowCircuit,
    wrappers: Sequence[SharingWrapper],
    mode: str = "structural",
    max_states: int = 40_000,
) -> ElisionResult:
    """Remove provably redundant wrapper output buffers in place.

    ``mode="verify"`` requires the circuit to already carry
    :class:`~repro.verify.StallingSink` environment outputs and to be
    finite (see :func:`repro.verify.explore`).
    """
    if mode not in ("structural", "verify"):
        raise SharingError(f"unknown elision mode {mode!r}")
    result = ElisionResult(mode=mode)
    for wrapper in wrappers:
        for ob_name in list(wrapper.output_buffers):
            if ob_name not in circuit.units:
                continue
            if mode == "structural":
                ok = _structurally_safe(circuit, ob_name)
            else:
                ok = _verified_safe(circuit, ob_name, max_states)
            if ok:
                _splice_out_buffer(circuit, ob_name)
                wrapper.output_buffers.remove(ob_name)
                result.removed.append(ob_name)
            else:
                result.kept.append(ob_name)
    circuit.validate()
    return result


def _structurally_safe(circuit: DataflowCircuit, ob_name: str) -> bool:
    """The buffer's consumer (past the lazy fork's data leg) is a sink."""
    from ..circuit import LazyFork

    ob = circuit.unit(ob_name)
    out_ch = circuit.out_channel(ob, 0)
    if out_ch is None:
        return False
    consumer = circuit.units[out_ch.dst.unit]
    if isinstance(consumer, LazyFork):
        data_ch = circuit.out_channel(consumer, 0)
        if data_ch is None:
            return False
        consumer = circuit.units[data_ch.dst.unit]
    return _always_ready(circuit, consumer)


def _verified_safe(
    circuit: DataflowCircuit, ob_name: str, max_states: int
) -> bool:
    """Model-check a copy of the circuit with the buffer removed."""
    from ..verify import explore

    trial = copy.deepcopy(circuit)
    _splice_out_buffer(trial, ob_name)
    verdict = explore(trial, max_states=max_states)
    return bool(verdict)
