"""Construction of the credit-based sharing wrapper (paper Fig. 3, Sec. 4.3).

Given a sharing group ``G = {op_1 .. op_|G|}`` of same-type functional
units, the wrapper replaces them with:

* per operation: a ``Join_i`` synchronizing op_i's operands with a credit
  from its ``CreditCounter CC_i`` (``N_CC,i`` initial credits),
* a priority **arbiter merge** selecting which ready operation issues
  (out-of-order across operations; never blocked by an absent request),
* one **shared unit** executing the selected operand bundle,
* a **condition buffer** remembering issue order so the **branch** (demux)
  steers each result to the right operation's **output buffer** ``OB_i``
  (``N_OB,i`` slots),
* per operation: a **lazy fork** that releases the result to the original
  successor and *simultaneously* returns the credit to ``CC_i`` — lazily,
  so a credit is never returned before the OB slot is actually freed.

Deadlock freedom rests on Equation 1, ``N_CC,i <= N_OB,i``: every token the
shared unit holds is guaranteed a free slot in its destination output
buffer, so the head of the line can never stall (no head-of-line blocking),
and the priority arbiter never lets a missing request starve a present one.

``arbitration="fixed"`` swaps the priority arbiter for a strict cyclic-order
controller — the scheme of the paper's Figure 1d and of the In-order
baseline — used to demonstrate order-induced deadlock and to model the
prior work's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..circuit import (
    ArbiterMerge,
    CreditCounter,
    DataflowCircuit,
    Demux,
    ElasticBuffer,
    FixedOrderMerge,
    FunctionalUnit,
    Join,
    LazyFork,
    TransparentFifo,
)
from ..errors import SharingError


@dataclass
class SharingWrapper:
    """Record of one inserted wrapper (consumed by resource estimation)."""

    group: List[str]
    op_type: str
    shared_unit: str
    arbiter: str
    cond_buffer: str
    branch: str
    joins: List[str]
    credit_counters: List[str]
    output_buffers: List[str]
    lazy_forks: List[str]
    credits: Dict[str, int]
    ob_slots: Dict[str, int]
    arbitration: str = "priority"

    @property
    def size(self) -> int:
        return len(self.group)

    def all_unit_names(self) -> List[str]:
        return (
            [self.shared_unit, self.arbiter, self.cond_buffer, self.branch]
            + self.joins
            + self.credit_counters
            + self.output_buffers
            + self.lazy_forks
        )


def check_credit_constraint(credits: Dict[str, int], ob_slots: Dict[str, int]) -> None:
    """Enforce Equation 1: ``N_CC,i <= N_OB,i`` for every operation."""
    for op, n_cc in credits.items():
        n_ob = ob_slots[op]
        if n_cc > n_ob:
            raise SharingError(
                f"credit constraint violated for {op!r}: N_CC={n_cc} > "
                f"N_OB={n_ob} (Equation 1) — head-of-line deadlock possible"
            )
        if n_cc < 1:
            raise SharingError(f"{op!r} needs at least one credit")


def insert_sharing_wrapper(
    circuit: DataflowCircuit,
    group: Sequence[str],
    priority: Optional[Sequence[str]] = None,
    credits: Optional[Dict[str, int]] = None,
    ob_slots: Optional[Dict[str, int]] = None,
    arbitration: str = "priority",
    fixed_order: Optional[Sequence[str]] = None,
    use_credits: bool = True,
) -> SharingWrapper:
    """Replace the group's functional units with one credit-based wrapper.

    ``priority`` lists the group's operations highest-priority first
    (default: group order).  ``credits`` maps each operation to ``N_CC``
    (default 1); ``ob_slots`` to ``N_OB`` (default: equal to the credits,
    the paper's Figure 3 configuration).  ``arbitration`` is ``"priority"``
    (CRUSH) or ``"fixed"`` (strict cyclic order following ``fixed_order``,
    default round-robin over ``group``).

    ``use_credits=False`` builds the paper's *naive* wrapper (Figure 1b):
    no credit counters, results drain straight from the output buffers.
    This variant is vulnerable to head-of-line deadlock and exists to
    demonstrate and test exactly that failure.
    """
    group = list(group)
    if len(group) < 2:
        raise SharingError("a sharing group needs at least 2 operations")
    ops: List[FunctionalUnit] = []
    for name in group:
        u = circuit.unit(name)
        if not isinstance(u, FunctionalUnit) or u.bundled:
            raise SharingError(f"{name!r} is not a shareable functional unit")
        ops.append(u)
    op_type = ops[0].op
    latency = ops[0].latency
    n_operands = ops[0].n_in
    for u in ops[1:]:
        if u.op != op_type or u.latency != latency:
            raise SharingError(
                f"group mixes operation types: {ops[0].describe()} vs "
                f"{u.describe()} (rule R1)"
            )

    credits = {name: int((credits or {}).get(name, 1)) for name in group}
    if ob_slots is None:
        ob_slots = dict(credits)
    else:
        ob_slots = {name: int(ob_slots.get(name, credits[name])) for name in group}
    if use_credits:
        check_credit_constraint(credits, ob_slots)

    if priority is None:
        priority = list(group)
    if sorted(priority) != sorted(group):
        raise SharingError("priority must be a permutation of the group")

    base = circuit.fresh_name(f"shr_{op_type}_")
    n = len(group)

    # --- per-operation front end: Join_i + CC_i ----------------------------
    joins: List[Join] = []
    ccs: List[CreditCounter] = []
    for i, (name, u) in enumerate(zip(group, ops)):
        extra = 1 if use_credits else 0
        join = circuit.add(
            Join(f"{base}join{i}", n_operands + extra, data_mode="tuple", n_bundle=n_operands)
        )
        for p in range(n_operands):
            ch = circuit.in_channel(u, p)
            if ch is None:
                raise SharingError(f"{name!r} operand {p} is unconnected")
            circuit.redirect_dst(ch, join, p)
        if use_credits:
            cc = circuit.add(CreditCounter(f"{base}cc{i}", credits[name]))
            grant = circuit.connect(cc, 0, join, n_operands, width=0)
            grant.attrs["tokens"] = credits[name]
            ccs.append(cc)
        joins.append(join)

    # --- arbiter, shared unit, condition buffer, branch --------------------
    if arbitration == "priority":
        prio_idx = [group.index(nm) for nm in priority]
        arb = circuit.add(ArbiterMerge(f"{base}arb", n, priority=prio_idx))
    elif arbitration == "fixed":
        order = list(fixed_order) if fixed_order is not None else list(group)
        order_idx = [group.index(nm) for nm in order]
        arb = circuit.add(FixedOrderMerge(f"{base}arb", n, order=order_idx))
    else:
        raise SharingError(f"unknown arbitration scheme {arbitration!r}")

    shared = circuit.add(
        FunctionalUnit(
            f"{base}unit", op_type, bundled=True, latency_override=latency
        )
    )
    # The condition buffer must hold one entry per in-flight computation:
    # with credits that is bounded by the total credit count; the naive
    # wrapper has no such bound, so it gets pipeline-depth + buffering
    # capacity.  It is a *registered* FIFO: the issue index always arrives
    # ahead of the multi-cycle shared-unit result, so the register costs no
    # latency on the result path while keeping the arbiter→branch index
    # path off the critical combinational chain.
    if use_credits:
        cond_slots = max(2, sum(credits.values()))
    else:
        cond_slots = max(2, latency) + sum(ob_slots.values())
    cond = circuit.add(
        ElasticBuffer(
            f"{base}cond", slots=cond_slots, width_hint=max(1, (n - 1).bit_length())
        )
    )
    demux = circuit.add(Demux(f"{base}branch", n))

    for i, join in enumerate(joins):
        circuit.connect(join, 0, arb, i)
    circuit.connect(arb, 0, shared, 0)
    circuit.connect(arb, 1, cond, 0, width=max(1, n.bit_length()))
    circuit.connect(cond, 0, demux, 0, width=max(1, n.bit_length()))
    circuit.connect(shared, 0, demux, 1)

    # --- per-operation back end: OB_i + lazy fork + credit return ----------
    obs: List[TransparentFifo] = []
    lfs: List[LazyFork] = []
    for i, (name, u) in enumerate(zip(group, ops)):
        ob = circuit.add(TransparentFifo(f"{base}ob{i}", slots=ob_slots[name]))
        circuit.connect(demux, i, ob, 0)
        out_ch = circuit.out_channel(u, 0)
        if out_ch is None:
            raise SharingError(f"{name!r} output is unconnected")
        if use_credits:
            lf = circuit.add(LazyFork(f"{base}lf{i}", 2))
            circuit.connect(ob, 0, lf, 0)
            circuit.redirect_src(out_ch, lf, 0)
            circuit.connect(lf, 1, ccs[i], 0, width=0)
            lfs.append(lf)
        else:
            circuit.redirect_src(out_ch, ob, 0)
        obs.append(ob)

    # --- retire the original units ------------------------------------------
    for u in ops:
        circuit.remove_unit(u)

    wrapper = SharingWrapper(
        group=group,
        op_type=op_type,
        shared_unit=shared.name,
        arbiter=arb.name,
        cond_buffer=cond.name,
        branch=demux.name,
        joins=[j.name for j in joins],
        credit_counters=[c.name for c in ccs],
        output_buffers=[o.name for o in obs],
        lazy_forks=[f.name for f in lfs],
        credits=credits,
        ob_slots=ob_slots,
        arbitration=arbitration,
    )
    for uname in wrapper.all_unit_names():
        circuit.units[uname].meta["wrapper"] = base
    circuit.validate()
    return wrapper
