"""The sharing cost model: Equation 2 of the paper (Section 4.3).

    cost(T) = C_T * |groups|  +  Σ_{G_i} C_WP(|G_i|)

The first term is what sharing *saves*: one physical unit of type ``T`` per
non-empty group instead of one per operation.  The second term is what
sharing *costs*: selection/arbitration/buffer logic growing with the group
size.  The model is deliberately platform-parametric — ``C_T`` and
``C_WP`` are injected, so FPGAs (DSP-weighted) and ASICs (area-weighted)
both fit.  The greedy grouping heuristic (Algorithm 1) consults
:meth:`SharingCostModel.merge_reduces_cost` before merging two groups, which
is what stops it from, e.g., sharing cheap integer adders whose wrapper
would cost more than the adders themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence


@dataclass
class SharingCostModel:
    """Equation 2 with injected platform parameters.

    ``unit_cost(T)`` is one shared unit's resource cost ``C_T``;
    ``wrapper_cost(T, size)`` is ``C_WP(|G|)`` (a group of size 1 costs 0:
    an unshared operation needs no wrapper).
    """

    unit_cost: Callable[[str], float]
    wrapper_cost: Callable[[str, int], float]

    def group_cost(self, op_type: str, size: int) -> float:
        if size < 1:
            return 0.0
        wrapper = self.wrapper_cost(op_type, size) if size > 1 else 0.0
        return self.unit_cost(op_type) + wrapper

    def total_cost(self, op_type: str, group_sizes: Sequence[int]) -> float:
        """Equation 2 for one operation type."""
        return sum(self.group_cost(op_type, s) for s in group_sizes if s > 0)

    def merge_reduces_cost(self, op_type: str, size_a: int, size_b: int) -> bool:
        before = self.group_cost(op_type, size_a) + self.group_cost(op_type, size_b)
        after = self.group_cost(op_type, size_a + size_b)
        return after < before


def default_cost_model() -> SharingCostModel:
    """Cost model backed by the FPGA resource library (DSP-weighted).

    A unit's cost is its DSP count weighted heavily (DSPs are the scarce
    resource on the paper's Kintex-7 target: 600 DSPs vs. 101k LUTs) plus
    its LUT/FF cost; the wrapper's cost is the summed LUT/FF cost of its
    dataflow units.  Imported lazily to keep ``repro.core`` free of a hard
    dependency on the resource library.
    """
    from ..resources.library import unit_equivalent_cost, wrapper_equivalent_cost

    return SharingCostModel(
        unit_cost=unit_equivalent_cost,
        wrapper_cost=wrapper_equivalent_cost,
    )
