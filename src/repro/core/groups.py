"""Algorithm 1: the sharing-group heuristic (paper Section 5.2).

Start with one singleton group per sharing candidate and greedily merge
pairs of groups; a merge ``G = G_i ∪ G_j`` is accepted only when

* **R1** — every operation in ``G`` has the same type (and latency),
* **R2** — in every performance-critical CFC, the summed token occupancy of
  ``G``'s members inside that CFC stays within the shared unit's capacity
  (its pipeline depth): the unit physically cannot sustain more, so
  exceeding it would stretch the II,
* **R3** — no CFC has an SCC containing two of ``G``'s operations whose
  "activation offsets" coincide: if some other SCC member ``u`` has *equal*
  maximum distances to both operations, the two become executable
  simultaneously every iteration and arbitration necessarily delays one of
  them, stretching the II (the paper's Figure 5).  SCCs too large to
  enumerate distances for are treated conservatively (merge rejected),

and when the merge reduces the Equation-2 cost.  The loop repeats until no
pair can merge.  Everything here is local graph analysis — no global
re-optimization per decision, which is where CRUSH's ~90% optimization-time
saving over the In-order baseline comes from.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence

from ..circuit import DataflowCircuit, FunctionalUnit
from ..errors import SharingError
from ..analysis import (
    CFC,
    MAX_SCC_ENUMERATION,
    max_simple_distance,
    unit_capacity,
)
from .cost import SharingCostModel


def sharing_candidates(circuit: DataflowCircuit) -> List[str]:
    """All shareable functional units (the expensive floating-point ops)."""
    return sorted(
        u.name
        for u in circuit.units.values()
        if isinstance(u, FunctionalUnit) and not u.bundled and u.spec.shareable
    )


def check_r1(circuit: DataflowCircuit, group: Sequence[str]) -> bool:
    """R1: one operation type (same mnemonic and latency) per group."""
    ops = [circuit.unit(n) for n in group]
    if not all(isinstance(u, FunctionalUnit) for u in ops):
        return False
    first = ops[0]
    return all(u.op == first.op and u.latency == first.latency for u in ops)


def check_r2(
    circuit: DataflowCircuit,
    group: Sequence[str],
    cfc: CFC,
    occupancies: Mapping[str, Fraction],
) -> bool:
    """R2: summed occupancy of the group inside the CFC <= unit capacity."""
    members = [n for n in group if n in cfc.unit_names]
    if not members:
        return True
    total = sum((occupancies.get(n, Fraction(0)) for n in members), Fraction(0))
    capacity = unit_capacity(circuit.unit(members[0]))
    return total <= capacity


def check_r3(circuit: DataflowCircuit, group: Sequence[str], cfc: CFC) -> bool:
    """R3: reject groups whose members sit at equal offsets in one SCC."""
    in_cfc = [n for n in group if n in cfc.unit_names]
    if len(in_cfc) < 2:
        return True
    sccg = cfc.scc_graph()
    succ = cfc.successors_map()
    by_scc: Dict[int, List[str]] = {}
    for n in in_cfc:
        by_scc.setdefault(sccg.scc_of[n], []).append(n)
    for sid, members in by_scc.items():
        if len(members) < 2:
            continue
        scc_nodes = sccg.sccs[sid]
        if len(scc_nodes) > MAX_SCC_ENUMERATION:
            return False  # cannot certify; be conservative
        others = [u for u in scc_nodes if u not in members]
        for a_i in range(len(members)):
            for b_i in range(a_i + 1, len(members)):
                op_a, op_b = members[a_i], members[b_i]
                for u in others:
                    da = max_simple_distance(scc_nodes, succ, u, op_a)
                    db = max_simple_distance(scc_nodes, succ, u, op_b)
                    if da == db:
                        return False
    return True


def sharing_groups(
    circuit: DataflowCircuit,
    cfcs: Sequence[CFC],
    occupancies: Mapping[str, Fraction],
    candidates: Optional[Sequence[str]] = None,
    cost_model: Optional[SharingCostModel] = None,
) -> List[List[str]]:
    """Run Algorithm 1; returns the non-empty sharing groups.

    Groups are lists of unit names; singleton groups mean "do not share".
    """
    if candidates is None:
        candidates = sharing_candidates(circuit)
    for name in candidates:
        u = circuit.unit(name)
        if not isinstance(u, FunctionalUnit):
            raise SharingError(f"candidate {name!r} is not a functional unit")
    groups: List[List[str]] = [[op] for op in candidates]

    def cost_ok(g_i: List[str], g_j: List[str]) -> bool:
        if cost_model is None:
            return True
        op_type = circuit.unit(g_i[0]).op
        return cost_model.merge_reduces_cost(op_type, len(g_i), len(g_j))

    modified = True
    while modified:
        modified = False
        for i in range(len(groups)):
            if not groups[i]:
                continue
            for j in range(i + 1, len(groups)):
                if not groups[j]:
                    continue
                union = groups[i] + groups[j]
                if not check_r1(circuit, union):
                    continue
                if any(
                    not check_r2(circuit, union, cfc, occupancies) for cfc in cfcs
                ):
                    continue
                if any(not check_r3(circuit, union, cfc) for cfc in cfcs):
                    continue
                if not cost_ok(groups[i], groups[j]):
                    continue
                groups[i] = union
                groups[j] = []
                modified = True
    return [g for g in groups if g]
