"""Credit allocation: Equation 3 of the paper (Section 5.4).

For each operation ``op`` in a sharing group, the initial credit count is

    N_CC,op = Φ_op + 1

where ``Φ_op = lat_op / II`` is the operation's token occupancy.  ``Φ_op``
credits keep the shared unit as full as the pre-sharing pipeline was; the
extra credit hides the one-cycle credit-return latency and covers the token
that waits in the output buffer for its (arbitration-delayed) successor.
Output buffers get ``N_OB = N_CC`` slots, the tightest sizing that honors
the deadlock-freedom constraint of Equation 1.

Occupancies are fractional; credits are physical tokens, so we allocate
``ceil(Φ_op) + 1``.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Mapping, Sequence


def credits_for_op(occupancy: Fraction) -> int:
    """Equation 3, rounded up to whole credits (minimum 1)."""
    if occupancy < 0:
        raise ValueError(f"negative occupancy {occupancy}")
    return max(1, math.ceil(occupancy) + 1)


def allocate_credits(
    group: Sequence[str], occupancies: Mapping[str, Fraction]
) -> Dict[str, int]:
    """Per-operation initial credit counts for one sharing group."""
    return {op: credits_for_op(occupancies.get(op, Fraction(0))) for op in group}


def output_buffer_slots(credits: Mapping[str, int]) -> Dict[str, int]:
    """``N_OB = N_CC`` (Equation 1 met with equality, as in Figure 3)."""
    return dict(credits)
