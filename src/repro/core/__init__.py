"""CRUSH: credit-based functional-unit sharing (the paper's contribution)."""

from .cost import SharingCostModel, default_cost_model
from .elision import ElisionResult, elide_output_buffers
from .credits import allocate_credits, credits_for_op, output_buffer_slots
from .crush import CrushResult, crush
from .groups import (
    check_r1,
    check_r2,
    check_r3,
    sharing_candidates,
    sharing_groups,
)
from .priority import access_priority
from .wrapper import SharingWrapper, check_credit_constraint, insert_sharing_wrapper

__all__ = [
    "CrushResult",
    "ElisionResult",
    "elide_output_buffers",
    "SharingCostModel",
    "SharingWrapper",
    "access_priority",
    "allocate_credits",
    "check_credit_constraint",
    "check_r1",
    "check_r2",
    "check_r3",
    "credits_for_op",
    "crush",
    "default_cost_model",
    "insert_sharing_wrapper",
    "output_buffer_slots",
    "sharing_candidates",
    "sharing_groups",
]
