"""Memory ports: fixed-latency load/store pipelines against a flat store.

The paper's kernels access on-chip BRAM through Dynamatic's memory
controller; the access patterns are regular enough that no load-store queue
is involved, so we model memory as per-array flat value stores accessed by
pipelined load ports (default latency 2, one access per cycle) and store
ports (write commits when the address/data pair fires; a dataless *done*
token emerges one cycle later for sequencing).

The simulation engine injects the shared :class:`~repro.sim.memory.Memory`
instance into every port before the run starts (attribute ``memory``).
"""

from __future__ import annotations

from ...errors import CircuitError, SimulationError
from ..unit import PortCtx, Unit

LOAD_LATENCY = 2
STORE_LATENCY = 1


class _MemoryPort(Unit):
    needs_memory = True

    def __init__(self, name: str, array: str):
        super().__init__(name)
        self.array = array
        self.memory = None

    def _mem(self):
        if self.memory is None:
            raise SimulationError(
                f"memory port {self.name!r} was not bound to a memory model"
            )
        return self.memory


class LoadPort(_MemoryPort):
    """Pipelined read: address in, value out, ``latency`` cycles later."""

    def __init__(self, name: str, array: str, latency: int = LOAD_LATENCY):
        super().__init__(name, array)
        if latency < 1:
            raise CircuitError(f"load {name!r}: latency must be >= 1")
        self.latency = latency
        self.n_in = 1
        self.n_out = 1
        self._pipe = [None] * latency

    def reset(self):
        self._pipe = [None] * self.latency

    def state(self):
        return tuple(self._pipe)

    def set_state(self, state):
        self._pipe = list(state)

    def in_port_name(self, i):
        return "addr"

    def comb_deps(self):
        # Registered head cuts the valid/data path; address ready depends
        # only on the head's backpressure.
        return [[]], [[("out", 0)]]

    def eval_comb(self, ctx: PortCtx):
        head = self._pipe[-1]
        has_head = head is not None
        ctx.set_out(0, has_head, head[0] if has_head else None)
        advance = (not has_head) or ctx.out_ready(0)
        ctx.set_in_ready(0, advance)

    def tick(self, ctx: PortCtx):
        head = self._pipe[-1]
        advance = (head is None) or ctx.fired_out(0)
        if not advance:
            return
        new = None
        if ctx.fired_in(0):
            addr = int(ctx.in_data(0))
            new = (self._mem().read(self.array, addr),)
        self._pipe = [new] + self._pipe[:-1]

    def quiescent(self) -> bool:
        if self._pipe[-1] is not None:
            return True
        return all(s is None for s in self._pipe)


class StorePort(_MemoryPort):
    """Write port: joins (addr, data), commits the write when they fire,
    and emits a dataless done token ``STORE_LATENCY`` cycles later."""

    latency = STORE_LATENCY

    def __init__(self, name: str, array: str):
        super().__init__(name, array)
        self.n_in = 2
        self.n_out = 1
        self._pipe = [None] * STORE_LATENCY

    def reset(self):
        self._pipe = [None] * STORE_LATENCY

    def state(self):
        return tuple(self._pipe)

    def set_state(self, state):
        self._pipe = list(state)

    def in_port_name(self, i):
        return ("addr", "data")[i]

    def out_port_name(self, i):
        return "done"

    def comb_deps(self):
        # Registered done token cuts the valid path; each input's ready
        # joins on the other input's valid plus the head's backpressure.
        return [[]], [[("out", 0), ("in", 1)], [("out", 0), ("in", 0)]]

    def eval_comb(self, ctx: PortCtx):
        head = self._pipe[-1]
        has_head = head is not None
        ctx.set_out(0, has_head, None)
        advance = (not has_head) or ctx.out_ready(0)
        av = ctx.in_valid(0)
        dv = ctx.in_valid(1)
        ctx.set_in_ready(0, advance and dv)
        ctx.set_in_ready(1, advance and av)

    def tick(self, ctx: PortCtx):
        head = self._pipe[-1]
        advance = (head is None) or ctx.fired_out(0)
        if not advance:
            return
        new = None
        if ctx.fired_in(0):
            addr = int(ctx.in_data(0))
            self._mem().write(self.array, addr, ctx.in_data(1))
            new = True
        self._pipe = [new] + self._pipe[:-1]

    def quiescent(self) -> bool:
        if self._pipe[-1] is not None:
            return True
        return all(s is None for s in self._pipe)
