"""Circuit boundary units: token sources, sinks, and constants."""

from __future__ import annotations

from typing import List, Optional

from ...errors import CircuitError
from ..unit import PortCtx, Unit


class Entry(Unit):
    """Emits ``count`` tokens carrying ``value`` and then stays silent.

    A kernel circuit has a single ``Entry(count=1)`` start token; test
    circuits use larger counts to model streaming inputs (e.g. the ``i``
    tokens arriving every II cycles in the paper's Figure 1).
    """

    def __init__(self, name: str, value=None, count: int = 1):
        super().__init__(name)
        if count < 0:
            raise CircuitError(f"entry {name!r}: negative token count")
        self.n_in = 0
        self.n_out = 1
        self.value = value
        self.count = count
        self._remaining = count

    def reset(self):
        self._remaining = self.count

    def state(self):
        return self._remaining

    def set_state(self, state):
        self._remaining = state

    def eval_comb(self, ctx: PortCtx):
        ctx.set_out(0, self._remaining > 0, self.value)

    def tick(self, ctx: PortCtx):
        if ctx.fired_out(0):
            self._remaining -= 1

    @property
    def emitted(self) -> int:
        return self.count - self._remaining


class Sequence(Unit):
    """Emits the given token values one by one (test helper)."""

    def __init__(self, name: str, values):
        super().__init__(name)
        self.n_in = 0
        self.n_out = 1
        self.values = list(values)
        self._pos = 0

    def reset(self):
        self._pos = 0

    def state(self):
        return self._pos

    def set_state(self, state):
        self._pos = state

    def eval_comb(self, ctx: PortCtx):
        live = self._pos < len(self.values)
        ctx.set_out(0, live, self.values[self._pos] if live else None)

    def tick(self, ctx: PortCtx):
        if ctx.fired_out(0):
            self._pos += 1


class Sink(Unit):
    """Always-ready consumer; records everything it swallows.

    The kernel runner reads results and completion counts from sinks.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self.n_in = 1
        self.n_out = 0
        self.received: List = []

    def reset(self):
        self.received = []

    def state(self):
        return tuple(self.received)

    def set_state(self, state):
        self.received = list(state)

    def comb_deps(self):
        # Always ready: the ready drive is constant.
        return [], [[]]

    def eval_comb(self, ctx: PortCtx):
        ctx.set_in_ready(0, True)

    def tick(self, ctx: PortCtx):
        if ctx.fired_in(0):
            self.received.append(ctx.in_data(0))

    @property
    def count(self) -> int:
        return len(self.received)

    @property
    def last(self):
        if not self.received:
            raise CircuitError(f"sink {self.name!r} received no tokens")
        return self.received[-1]


class Constant(Unit):
    """Emits ``value`` each time its control input delivers a token.

    In BB-organized circuits constants are activated by the basic block's
    control token (Dynamatic style); the fast-token lowering bakes constants
    into operand slots instead and instantiates far fewer of these.
    """

    def __init__(self, name: str, value):
        super().__init__(name)
        self.n_in = 1
        self.n_out = 1
        self.value = value

    def eval_comb(self, ctx: PortCtx):
        iv = ctx.in_valid(0)
        ctx.set_out(0, iv, self.value)
        ctx.set_in_ready(0, ctx.out_ready(0))
