"""Buffers: token storage that breaks combinational paths and adds slack.

Two flavours, matching the roles buffers play in Dynamatic circuits
(paper Section 2.1 and [34]):

:class:`ElasticBuffer`
    Registers both the valid and the ready path (a token spends at least one
    cycle inside).  Placed on every graph cycle so the handshake network has
    no combinational loop, and on reconvergent paths for slack matching.

:class:`TransparentFifo`
    Zero-latency capacity: tokens pass through combinationally when the
    consumer is ready, otherwise they queue.  The sharing wrapper's output
    buffers (``OB_i`` in Figure 3) and condition buffer are of this kind, so
    sharing adds no latency on the result path while still guaranteeing the
    shared unit's head-of-line token always finds a free slot.
"""

from __future__ import annotations

from collections import deque

from ...errors import CircuitError
from ..unit import PortCtx, Unit


class ElasticBuffer(Unit):
    """``slots``-deep FIFO with registered output valid and input ready.

    With ``slots >= 2`` the buffer sustains one token per cycle; a 1-slot
    elastic buffer halves throughput (a fact exercised by the unit tests).
    """

    latency = 1

    def __init__(self, name: str, slots: int = 2, width_hint: int = 32):
        super().__init__(name)
        if slots < 1:
            raise CircuitError(f"buffer {name!r} needs >= 1 slots")
        self.n_in = 1
        self.n_out = 1
        self.slots = slots
        #: Data width in bits assumed by the resource model (0 = dataless).
        self.width_hint = width_hint
        self._q = deque()

    def reset(self):
        self._q.clear()

    def state(self):
        return tuple(self._q)

    def set_state(self, state):
        self._q = deque(state)

    def comb_deps(self):
        # Registered on both sides: valid/data and ready are functions of
        # the stored queue only.  This is what makes the elastic buffer a
        # legal cycle-breaker for the static scheduler.
        return [[]], [[]]

    def eval_comb(self, ctx: PortCtx):
        has = len(self._q) > 0
        ctx.set_out(0, has, self._q[0] if has else None)
        ctx.set_in_ready(0, len(self._q) < self.slots)

    def tick(self, ctx: PortCtx):
        if ctx.fired_out(0):
            self._q.popleft()
        if ctx.fired_in(0):
            self._q.append(ctx.in_data(0))

    @property
    def occupancy(self) -> int:
        return len(self._q)


class TransparentFifo(Unit):
    """``slots``-deep FIFO with a combinational bypass when empty.

    Adds capacity but no latency.  The input ready is a function of the
    registered occupancy only, so the FIFO breaks the ready path.
    """

    latency = 0

    def __init__(self, name: str, slots: int = 1, width_hint: int = 32):
        super().__init__(name)
        if slots < 1:
            raise CircuitError(f"fifo {name!r} needs >= 1 slots")
        self.n_in = 1
        self.n_out = 1
        self.slots = slots
        #: Data width in bits assumed by the resource model (0 = dataless).
        self.width_hint = width_hint
        self._q = deque()

    def reset(self):
        self._q.clear()

    def state(self):
        return tuple(self._q)

    def set_state(self, state):
        self._q = deque(state)

    def comb_deps(self):
        # The empty-FIFO bypass keeps the valid/data path combinational;
        # the ready path is a function of registered occupancy only.
        return [[("in", 0)]], [[]]

    def eval_comb(self, ctx: PortCtx):
        if self._q:
            ctx.set_out(0, True, self._q[0])
        else:
            iv = ctx.in_valid(0)
            ctx.set_out(0, iv, ctx.in_data(0) if iv else None)
        ctx.set_in_ready(0, len(self._q) < self.slots)

    def tick(self, ctx: PortCtx):
        if self._q:
            if ctx.fired_out(0):
                self._q.popleft()
            if ctx.fired_in(0):
                self._q.append(ctx.in_data(0))
        else:
            # Empty: a simultaneous in+out fire is a pure bypass.
            if ctx.fired_in(0) and not ctx.fired_out(0):
                self._q.append(ctx.in_data(0))

    @property
    def occupancy(self) -> int:
        return len(self._q)
