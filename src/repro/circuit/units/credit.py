"""Credit counters: the heart of CRUSH's deadlock avoidance (paper 4.1).

A credit counter ``CC_i`` starts with ``N_CC,i`` dataless credit tokens.  A
computation is issued by consuming one credit (through the wrapper's join);
a credit is returned when the corresponding result leaves the operation's
output buffer.  Because ``N_CC,i <= N_OB,i`` (Equation 1), every token inside
the shared unit is guaranteed a free output-buffer slot, so the head of the
line can never be blocked -- head-of-line deadlock is structurally impossible.

Per Section 4.3, a credit returned in cycle ``k`` only becomes usable in
cycle ``k+1`` (the grant valid is a function of the *registered* count),
which avoids a combinational loop through the wrapper.
"""

from __future__ import annotations

from ...errors import CircuitError
from ..unit import PortCtx, Unit


class CreditCounter(Unit):
    """Sequential counter granting up to ``initial`` outstanding credits.

    Ports: ``in0`` = credit return (dataless), ``out0`` = credit grant
    (dataless).  The grant output is valid whenever the registered count is
    positive; the return input is always ready.
    """

    def __init__(self, name: str, initial: int):
        super().__init__(name)
        if initial < 1:
            raise CircuitError(f"credit counter {name!r} needs >= 1 credits")
        self.n_in = 1
        self.n_out = 1
        self.initial = initial
        self.initial_tokens = initial
        self._count = initial

    def reset(self):
        self._count = self.initial

    def state(self):
        return self._count

    def set_state(self, state):
        self._count = state

    def in_port_name(self, i):
        return "return"

    def out_port_name(self, i):
        return "grant"

    def comb_deps(self):
        # Grant valid is a function of the *registered* count (Section
        # 4.3) and the return side is always ready: both paths are cut.
        return [[]], [[]]

    def eval_comb(self, ctx: PortCtx):
        ctx.set_out(0, self._count > 0, None)
        ctx.set_in_ready(0, True)

    def tick(self, ctx: PortCtx):
        if ctx.fired_out(0):
            self._count -= 1
        if ctx.fired_in(0):
            self._count += 1
        if not 0 <= self._count <= self.initial:
            raise CircuitError(
                f"credit counter {self.name!r}: count {self._count} escaped "
                f"[0, {self.initial}] -- more credits returned than granted"
            )

    @property
    def available(self) -> int:
        return self._count
