"""Functional units: arithmetic/compare operators with pipeline semantics.

The operator catalogue mirrors what Dynamatic instantiates for the paper's
benchmarks.  Latencies follow Dynamatic's Kintex-7 operator library (fadd ~10
cycles, fmul ~4 cycles at a 6 ns clock target); DSP costs follow the Xilinx
floating-point IP (fadd = 2 DSPs, fmul = 3 DSPs), which exactly reproduces
every DSP count in the paper's Tables 1-3.

A pipelined unit has a *single enable* for the whole pipeline: when the
result at the head of the line cannot leave, every stage stalls.  The paper
(Section 6.3) attributes the occasional cycle-count difference between the
naive and shared circuits to exactly this head-of-line behaviour, so we model
it faithfully.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ...errors import CircuitError
from ..unit import PortCtx, Unit


@dataclass(frozen=True)
class OpSpec:
    """Static description of one operator type.

    ``latency`` is the pipeline depth in cycles (0 = combinational);
    ``n_in`` the operand count; ``fn`` the Python evaluation function;
    ``shareable`` marks the expensive operators the sharing passes consider.
    """

    mnemonic: str
    latency: int
    n_in: int
    fn: Callable
    shareable: bool = False


def _fdiv(a, b):
    if b == 0:
        raise CircuitError("floating-point division by zero in simulation")
    return a / b


#: Operator catalogue.  Floating-point operators are the sharing candidates.
OPS: Dict[str, OpSpec] = {
    spec.mnemonic: spec
    for spec in [
        OpSpec("fadd", 10, 2, lambda a, b: a + b, shareable=True),
        OpSpec("fsub", 10, 2, lambda a, b: a - b, shareable=True),
        OpSpec("fmul", 4, 2, lambda a, b: a * b, shareable=True),
        OpSpec("fdiv", 28, 2, _fdiv, shareable=True),
        OpSpec("fneg", 1, 1, lambda a: -a),
        OpSpec("fcmp_ge", 2, 2, lambda a, b: a >= b),
        OpSpec("fcmp_gt", 2, 2, lambda a, b: a > b),
        OpSpec("fcmp_le", 2, 2, lambda a, b: a <= b),
        OpSpec("fcmp_lt", 2, 2, lambda a, b: a < b),
        OpSpec("iadd", 0, 2, lambda a, b: a + b),
        OpSpec("isub", 0, 2, lambda a, b: a - b),
        OpSpec("imul", 0, 2, lambda a, b: a * b),
        OpSpec("icmp_lt", 0, 2, lambda a, b: a < b),
        OpSpec("icmp_le", 0, 2, lambda a, b: a <= b),
        OpSpec("icmp_eq", 0, 2, lambda a, b: a == b),
        OpSpec("icmp_ne", 0, 2, lambda a, b: a != b),
        OpSpec("and", 0, 2, lambda a, b: bool(a) and bool(b)),
        OpSpec("or", 0, 2, lambda a, b: bool(a) or bool(b)),
        OpSpec("not", 0, 1, lambda a: not a),
        OpSpec("pass", 0, 1, lambda a: a),
    ]
}


def op_spec(mnemonic: str) -> OpSpec:
    try:
        return OPS[mnemonic]
    except KeyError:
        raise CircuitError(f"unknown operator {mnemonic!r}") from None


class FunctionalUnit(Unit):
    """One operator instance.

    ``bundled=True`` turns the unit into the *shared* form used inside a
    sharing wrapper: it has a single input carrying the full operand tuple
    (produced by the wrapper's join/mux front end) instead of one port per
    operand.

    ``const_ops`` folds constants into operand slots (fast-token-style
    lowering: no separate constant units): ``{1: 5.0}`` makes a two-operand
    unit with a single physical input (slot 0) and the literal ``5.0`` in
    slot 1.

    Combinational operators (latency 0) forward results within the cycle;
    pipelined operators shift an internal ``latency``-deep register chain
    gated by a single enable.
    """

    def __init__(
        self,
        name: str,
        op: str,
        bundled: bool = False,
        latency_override: Optional[int] = None,
        const_ops: Optional[Dict[int, object]] = None,
    ):
        super().__init__(name)
        self.spec = op_spec(op)
        self.op = op
        self.bundled = bundled
        self.const_ops = dict(const_ops or {})
        self.latency = (
            self.spec.latency if latency_override is None else latency_override
        )
        if bundled and self.const_ops:
            raise CircuitError(f"{name!r}: shared units cannot fold constants")
        if any(not 0 <= k < self.spec.n_in for k in self.const_ops):
            raise CircuitError(f"{name!r}: const operand slot out of range")
        if len(self.const_ops) >= self.spec.n_in:
            raise CircuitError(f"{name!r}: at least one live operand required")
        self.n_in = 1 if bundled else self.spec.n_in - len(self.const_ops)
        self.n_out = 1
        self._pipe = [None] * self.latency

    def reset(self):
        self._pipe = [None] * self.latency

    def state(self):
        return tuple(self._pipe)

    def set_state(self, state):
        self._pipe = list(state)

    # -- helpers -------------------------------------------------------------
    def _operands(self, ctx: PortCtx):
        if self.bundled:
            d = ctx.in_data(0)
            if not isinstance(d, tuple):
                d = (d,)
            return d
        if not self.const_ops:
            return tuple(ctx.in_data(i) for i in range(self.n_in))
        operands = []
        live = 0
        for slot in range(self.spec.n_in):
            if slot in self.const_ops:
                operands.append(self.const_ops[slot])
            else:
                operands.append(ctx.in_data(live))
                live += 1
        return tuple(operands)

    def _compute(self, operands):
        try:
            return self.spec.fn(*operands)
        except CircuitError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            raise CircuitError(
                f"{self.describe()} failed on operands {operands!r}: {exc}"
            ) from exc

    # -- combinational operators ----------------------------------------------
    def _eval_comb_zero(self, ctx: PortCtx):
        valids = [ctx.in_valid(i) for i in range(self.n_in)]
        all_v = all(valids)
        d = self._compute(self._operands(ctx)) if all_v else None
        ctx.set_out(0, all_v, d)
        ordy = ctx.out_ready(0)
        for i in range(self.n_in):
            others = all(valids[j] for j in range(self.n_in) if j != i)
            ctx.set_in_ready(i, ordy and others)

    def comb_deps(self):
        if self.latency == 0:
            return super().comb_deps()
        # Pipelined: the head register cuts the valid/data path.  Input i's
        # ready depends on the head's backpressure and on the *other*
        # operands being present (the shared single-enable join), but not
        # on input i's own valid.
        bwd = [
            [("out", 0)] + [("in", j) for j in range(self.n_in) if j != i]
            for i in range(self.n_in)
        ]
        return [[]], bwd

    def needs_tick(self) -> bool:
        return self.latency > 0

    # -- pipelined operators ----------------------------------------------------
    def eval_comb(self, ctx: PortCtx):
        if self.latency == 0:
            self._eval_comb_zero(ctx)
            return
        head = self._pipe[-1]
        has_head = head is not None
        ctx.set_out(0, has_head, head[0] if has_head else None)
        advance = (not has_head) or ctx.out_ready(0)
        valids = [ctx.in_valid(i) for i in range(self.n_in)]
        for i in range(self.n_in):
            others = all(valids[j] for j in range(self.n_in) if j != i)
            ctx.set_in_ready(i, advance and others)

    def tick(self, ctx: PortCtx):
        if self.latency == 0:
            return
        head = self._pipe[-1]
        advance = (head is None) or ctx.fired_out(0)
        if not advance:
            return
        took_input = ctx.fired_in(0)
        new = (self._compute(self._operands(ctx)),) if took_input else None
        self._pipe = [new] + self._pipe[:-1]

    def quiescent(self) -> bool:
        if self.latency == 0:
            return True
        # Internal progress is possible only while the head slot is free and
        # some earlier stage still carries a token (single-enable pipeline).
        if self._pipe[-1] is not None:
            return True
        return all(s is None for s in self._pipe)

    @property
    def tokens_in_flight(self) -> int:
        return sum(1 for s in self._pipe if s is not None)

    def describe(self) -> str:
        tag = "shared " if self.bundled else ""
        return f"{tag}{self.op}({self.name}, lat={self.latency})"
