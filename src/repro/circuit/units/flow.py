"""Token-routing units: forks, joins, merges, muxes, branches.

Semantics follow the elastic-circuit conventions used by Dynamatic
(paper Section 2.1): tokens transfer on valid & ready; forks duplicate,
joins synchronize, merges select nondeterministically (here: by a fixed,
documented priority), muxes select by a control token, branches steer by a
condition token.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...errors import CircuitError
from ..unit import PortCtx, Unit


class EagerFork(Unit):
    """Fork that forwards the token to each successor as soon as it is ready.

    The input token is consumed once *every* output has taken its copy; a
    ``sent`` flag per output remembers which copies were already delivered.
    This is Dynamatic's default fork and what the paper's Figure 1 uses.
    """

    def __init__(self, name: str, n: int):
        super().__init__(name)
        if n < 1:
            raise CircuitError(f"fork {name!r} needs >= 1 outputs, got {n}")
        self.n_in = 1
        self.n_out = n
        self._sent = [False] * n

    def reset(self):
        self._sent = [False] * self.n_out

    def state(self):
        return tuple(self._sent)

    def set_state(self, state):
        self._sent = list(state)

    def comb_deps(self):
        # Each output's valid/data depend only on the input token (and the
        # registered ``sent`` flags); the input ready collects every
        # output's ready.  The default blob would wire out[i] -> out[j]
        # ready dependencies that eval_comb never has, creating false
        # combinational cycles when two fork outputs reconverge at a join.
        fwd = [[("in", 0)] for _ in range(self.n_out)]
        bwd = [[("out", j) for j in range(self.n_out)]]
        return fwd, bwd

    def eval_comb(self, ctx: PortCtx):
        iv = ctx.in_valid(0)
        d = ctx.in_data(0) if iv else None
        sent = self._sent
        all_done = True
        for i in range(self.n_out):
            ctx.set_out(i, iv and not sent[i], d)
            if not (sent[i] or ctx.out_ready(i)):
                all_done = False
        ctx.set_in_ready(0, all_done)

    def tick(self, ctx: PortCtx):
        if ctx.fired_in(0):
            for i in range(self.n_out):
                self._sent[i] = False
        else:
            for i in range(self.n_out):
                if ctx.fired_out(i):
                    self._sent[i] = True


class LazyFork(Unit):
    """Fork that transfers to *all* successors in the same cycle or not at all.

    The paper requires a lazy fork at the sharing wrapper's output so a
    credit is never returned before the output-buffer slot is actually freed
    (Section 4.3).
    """

    def __init__(self, name: str, n: int):
        super().__init__(name)
        self.n_in = 1
        self.n_out = n

    def eval_comb(self, ctx: PortCtx):
        iv = ctx.in_valid(0)
        d = ctx.in_data(0) if iv else None
        readies = [ctx.out_ready(i) for i in range(self.n_out)]
        all_ready = all(readies)
        for i in range(self.n_out):
            others = all(readies[j] for j in range(self.n_out) if j != i)
            ctx.set_out(i, iv and others, d)
        ctx.set_in_ready(0, all_ready)


class Join(Unit):
    """Synchronize ``n`` tokens; fires all inputs and the output together.

    ``data_mode`` selects the output payload: ``"first"`` forwards input 0's
    data (used when the other inputs are control tokens, e.g. credits) and
    ``"tuple"`` bundles input data into a tuple (used by the sharing
    wrapper to carry an operation's full operand set through the arbiter).
    With ``n_bundle`` set, only the first ``n_bundle`` inputs contribute to
    the tuple — the sharing wrapper joins (operands..., credit) and the
    dataless credit must not leak into the operand bundle.
    """

    def __init__(self, name: str, n: int, data_mode: str = "first", n_bundle=None):
        super().__init__(name)
        if data_mode not in ("first", "tuple"):
            raise CircuitError(f"join {name!r}: bad data_mode {data_mode!r}")
        self.n_in = n
        self.n_out = 1
        self.data_mode = data_mode
        self.n_bundle = n if n_bundle is None else n_bundle
        if not 1 <= self.n_bundle <= n:
            raise CircuitError(f"join {name!r}: bad n_bundle {n_bundle!r}")

    def eval_comb(self, ctx: PortCtx):
        valids = [ctx.in_valid(i) for i in range(self.n_in)]
        all_v = all(valids)
        if all_v:
            if self.data_mode == "tuple":
                d = tuple(ctx.in_data(i) for i in range(self.n_bundle))
            else:
                d = ctx.in_data(0)
        else:
            d = None
        ctx.set_out(0, all_v, d)
        ordy = ctx.out_ready(0)
        for i in range(self.n_in):
            others = all(valids[j] for j in range(self.n_in) if j != i)
            ctx.set_in_ready(i, ordy and others)


class Merge(Unit):
    """Propagate a token from any valid input; lowest port index wins.

    Dynamatic uses merges at loop headers, where by construction at most one
    input carries a token at a time, so the priority never matters there.
    """

    def __init__(self, name: str, n: int):
        super().__init__(name)
        self.n_in = n
        self.n_out = 1

    def eval_comb(self, ctx: PortCtx):
        sel = -1
        for i in range(self.n_in):
            if ctx.in_valid(i):
                sel = i
                break
        ordy = ctx.out_ready(0)
        ctx.set_out(0, sel >= 0, ctx.in_data(sel) if sel >= 0 else None)
        for i in range(self.n_in):
            ctx.set_in_ready(i, ordy and i == sel)


class ArbiterMerge(Unit):
    """The sharing wrapper's priority arbiter (paper Section 4.2, Figure 1e).

    Selects among ``n`` request inputs by a *priority* permutation (position
    0 = highest priority); crucially, an absent request never blocks a
    present one.  Two outputs fire atomically: ``out0`` carries the selected
    data (the operand bundle), ``out1`` carries the selected input index
    (consumed by the condition buffer that later steers the result).
    """

    def __init__(self, name: str, n: int, priority: Optional[Sequence[int]] = None):
        super().__init__(name)
        self.n_in = n
        self.n_out = 2
        prio = list(priority) if priority is not None else list(range(n))
        if sorted(prio) != list(range(n)):
            raise CircuitError(
                f"arbiter {name!r}: priority must be a permutation of 0..{n - 1}"
            )
        self.priority = prio

    def out_port_name(self, i):
        return ("data", "index")[i]

    def eval_comb(self, ctx: PortCtx):
        sel = -1
        for i in self.priority:
            if ctx.in_valid(i):
                sel = i
                break
        r0 = ctx.out_ready(0)
        r1 = ctx.out_ready(1)
        found = sel >= 0
        ctx.set_out(0, found and r1, ctx.in_data(sel) if found else None)
        ctx.set_out(1, found and r0, sel if found else None)
        for i in range(self.n_in):
            ctx.set_in_ready(i, r0 and r1 and i == sel)


class FixedOrderMerge(Unit):
    """A merge that grants access in a *fixed cyclic order* (paper Figure 1d).

    Used to model the total-order-based baseline's access controller and to
    demonstrate the deadlock that a fixed order causes when the operations
    that share the unit depend on each other.  ``order`` lists input indices
    in grant order; the grant pointer only advances when the granted input
    fires.  Outputs are the same (data, index) pair as :class:`ArbiterMerge`.
    """

    def __init__(self, name: str, n: int, order: Sequence[int]):
        super().__init__(name)
        self.n_in = n
        self.n_out = 2
        self.order = list(order)
        if not self.order or any(not 0 <= i < n for i in self.order):
            raise CircuitError(f"fixed-order merge {name!r}: bad order {order!r}")
        self._pos = 0

    def reset(self):
        self._pos = 0

    def state(self):
        return self._pos

    def set_state(self, state):
        self._pos = state

    def out_port_name(self, i):
        return ("data", "index")[i]

    def eval_comb(self, ctx: PortCtx):
        sel = self.order[self._pos]
        v = ctx.in_valid(sel)
        r0 = ctx.out_ready(0)
        r1 = ctx.out_ready(1)
        ctx.set_out(0, v and r1, ctx.in_data(sel) if v else None)
        ctx.set_out(1, v and r0, sel if v else None)
        for i in range(self.n_in):
            ctx.set_in_ready(i, r0 and r1 and i == sel and v)

    def tick(self, ctx: PortCtx):
        sel = self.order[self._pos]
        if ctx.fired_in(sel):
            self._pos = (self._pos + 1) % len(self.order)


class Mux(Unit):
    """Data selector: input 0 is the select token, inputs 1..n carry data.

    The select token and the selected data token are consumed together;
    non-selected inputs are left untouched.
    """

    def __init__(self, name: str, n: int):
        super().__init__(name)
        if n < 1:
            raise CircuitError(f"mux {name!r} needs >= 1 data inputs")
        self.n_in = n + 1
        self.n_out = 1
        self.n_data = n

    def in_port_name(self, i):
        return "sel" if i == 0 else f"d{i - 1}"

    def comb_deps(self):
        # A data input's ready depends only on the select token and the
        # output's ready — never on the *other* data inputs' valids.  The
        # default blob would add those, closing a false combinational cycle
        # through loops where a branch output re-enters the mux.
        ins = [("in", j) for j in range(self.n_in)]
        fwd = [list(ins)]
        bwd = [ins + [("out", 0)]]  # select ready reads dv (all valids)
        bwd += [[("in", 0), ("out", 0)] for _ in range(self.n_data)]
        return fwd, bwd

    def eval_comb(self, ctx: PortCtx):
        sv = ctx.in_valid(0)
        sel = -1
        if sv:
            sel = int(ctx.in_data(0))
            if not 0 <= sel < self.n_data:
                raise CircuitError(
                    f"mux {self.name!r}: select value {sel} out of range"
                )
        dv = sel >= 0 and ctx.in_valid(1 + sel)
        ordy = ctx.out_ready(0)
        ctx.set_out(0, dv, ctx.in_data(1 + sel) if dv else None)
        ctx.set_in_ready(0, ordy and dv)
        for i in range(self.n_data):
            ctx.set_in_ready(1 + i, ordy and sv and i == sel)


class Branch(Unit):
    """Two-way steer: routes the data token by the condition token's value.

    Output 0 receives the token when the condition is true, output 1 when it
    is false.  Condition and data are consumed together.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self.n_in = 2
        self.n_out = 2

    def in_port_name(self, i):
        return ("cond", "data")[i]

    def out_port_name(self, i):
        return ("true", "false")[i]

    def comb_deps(self):
        # Output valids are a function of the two input tokens alone (the
        # non-taken side simply stays invalid); only the *readies* observe
        # the downstream readies.  The default blob's out->out ready edges
        # would make each output depend on its sibling, which closes a
        # false cycle when both sides reconverge (e.g. through a mux).
        ins = [("in", 0), ("in", 1)]
        outs = [("out", 0), ("out", 1)]
        fwd = [list(ins), list(ins)]
        bwd = [ins + outs, ins + outs]
        return fwd, bwd

    def eval_comb(self, ctx: PortCtx):
        cv = ctx.in_valid(0)
        dv = ctx.in_valid(1)
        both = cv and dv
        tgt = -1
        if cv:
            tgt = 0 if ctx.in_data(0) else 1
        d = ctx.in_data(1) if dv else None
        ctx.set_out(0, both and tgt == 0, d)
        ctx.set_out(1, both and tgt == 1, d)
        tr = tgt >= 0 and ctx.out_ready(tgt)
        ctx.set_in_ready(0, dv and tr)
        ctx.set_in_ready(1, cv and tr)


class Demux(Unit):
    """N-way steer by an integer index token (generalized branch).

    The sharing wrapper's result-distribution "branch" (paper Figure 3) is a
    demux keyed by the condition buffer's stored operation index.
    """

    def __init__(self, name: str, n: int):
        super().__init__(name)
        self.n_in = 2
        self.n_out = n

    def in_port_name(self, i):
        return ("index", "data")[i]

    def comb_deps(self):
        # Same shape as Branch: output valids read only the index and data
        # tokens, readies read everything (the taken output is data-chosen).
        ins = [("in", 0), ("in", 1)]
        outs = [("out", j) for j in range(self.n_out)]
        fwd = [list(ins) for _ in range(self.n_out)]
        bwd = [ins + outs, ins + outs]
        return fwd, bwd

    def eval_comb(self, ctx: PortCtx):
        sv = ctx.in_valid(0)
        dv = ctx.in_valid(1)
        both = sv and dv
        tgt = -1
        if sv:
            tgt = int(ctx.in_data(0))
            if not 0 <= tgt < self.n_out:
                raise CircuitError(
                    f"demux {self.name!r}: index {tgt} out of range"
                )
        d = ctx.in_data(1) if dv else None
        for i in range(self.n_out):
            ctx.set_out(i, both and i == tgt, d)
        tr = tgt >= 0 and ctx.out_ready(tgt)
        ctx.set_in_ready(0, dv and tr)
        ctx.set_in_ready(1, sv and tr)
