"""Unit catalogue for dataflow circuits."""

from .buffers import ElasticBuffer, TransparentFifo
from .credit import CreditCounter
from .endpoints import Constant, Entry, Sequence, Sink
from .flow import (
    ArbiterMerge,
    Branch,
    Demux,
    EagerFork,
    FixedOrderMerge,
    Join,
    LazyFork,
    Merge,
    Mux,
)
from .functional import OPS, FunctionalUnit, OpSpec, op_spec
from .memory import LoadPort, StorePort

__all__ = [
    "ArbiterMerge",
    "Branch",
    "Constant",
    "CreditCounter",
    "Demux",
    "EagerFork",
    "ElasticBuffer",
    "Entry",
    "FixedOrderMerge",
    "FunctionalUnit",
    "Join",
    "LazyFork",
    "LoadPort",
    "Merge",
    "Mux",
    "OPS",
    "OpSpec",
    "Sequence",
    "Sink",
    "StorePort",
    "TransparentFifo",
    "op_spec",
]
