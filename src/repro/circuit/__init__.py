"""Dataflow circuit intermediate representation.

Circuits are graphs of handshake units connected by valid/ready channels
(paper Section 2.1).  This package provides the unit catalogue, the graph
container, the value-level :class:`Netlist` builder, and DOT export.
"""

from .builder import Netlist, Value
from .channel import Channel, PortRef, COND_WIDTH, CTRL_WIDTH, DATA_WIDTH
from .dot import to_dot, write_dot
from .graph import DataflowCircuit
from .unit import PortCtx, Unit
from .units import (
    ArbiterMerge,
    Branch,
    Constant,
    CreditCounter,
    Demux,
    EagerFork,
    ElasticBuffer,
    Entry,
    FixedOrderMerge,
    FunctionalUnit,
    Join,
    LazyFork,
    LoadPort,
    Merge,
    Mux,
    OPS,
    OpSpec,
    Sequence,
    Sink,
    StorePort,
    TransparentFifo,
    op_spec,
)

__all__ = [
    "ArbiterMerge",
    "Branch",
    "Channel",
    "Constant",
    "CreditCounter",
    "COND_WIDTH",
    "CTRL_WIDTH",
    "DATA_WIDTH",
    "DataflowCircuit",
    "Demux",
    "EagerFork",
    "ElasticBuffer",
    "Entry",
    "FixedOrderMerge",
    "FunctionalUnit",
    "Join",
    "LazyFork",
    "LoadPort",
    "Merge",
    "Mux",
    "Netlist",
    "OPS",
    "OpSpec",
    "PortCtx",
    "PortRef",
    "Sequence",
    "Sink",
    "StorePort",
    "TransparentFifo",
    "Unit",
    "Value",
    "op_spec",
    "to_dot",
    "write_dot",
]
