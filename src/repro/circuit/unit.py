"""Base class for dataflow units and the simulation port context.

Every unit type in the library derives from :class:`Unit` and implements the
two halves of synchronous handshake semantics:

``eval_comb(ctx)``
    The *combinational* half.  Reads the current input ``valid``/``data``
    values and output ``ready`` values through ``ctx`` and drives the
    output ``valid``/``data`` and input ``ready`` values.  The simulator
    calls this repeatedly within one cycle until all handshake signals reach
    a fixpoint, so implementations must be pure functions of
    (sequential state, observed signals).

``tick(ctx)``
    The *sequential* half.  Called once per cycle after the fixpoint, with
    ``ctx.fired_in(i)`` / ``ctx.fired_out(i)`` telling which ports actually
    transferred a token this cycle.  This is where internal state (FIFO
    contents, pipeline registers, credit counts) is updated.

Units are identified by name; port counts are fixed at construction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class PortCtx:
    """Fast accessor binding a unit's ports to the engine's signal arrays.

    The engine allocates one entry per channel in the flat lists ``valid``,
    ``ready``, ``data`` and ``fired``, then creates one ``PortCtx`` per unit
    holding the channel indices of that unit's input and output ports.
    Unconnected optional ports map to index ``-1`` and behave as
    never-valid / never-ready.

    The setters drive the engine's event-driven fixpoint: when a write
    actually changes a signal, the unit at the channel's *other* end is
    queued for re-evaluation (``cons_unit``/``prod_unit`` map channels to
    schedule slots, ``dirty``/``queue`` are the engine's work list).
    """

    __slots__ = (
        "valid",
        "ready",
        "data",
        "fired",
        "in_ch",
        "out_ch",
        "cons_unit",
        "prod_unit",
        "dirty",
        "queue",
    )

    def __init__(self, valid, ready, data, fired, in_ch, out_ch,
                 cons_unit, prod_unit, dirty, queue):
        self.valid = valid
        self.ready = ready
        self.data = data
        self.fired = fired
        self.in_ch = in_ch
        self.out_ch = out_ch
        self.cons_unit = cons_unit
        self.prod_unit = prod_unit
        self.dirty = dirty
        self.queue = queue

    # --- input side -------------------------------------------------------
    def in_valid(self, i: int) -> bool:
        ch = self.in_ch[i]
        return ch >= 0 and self.valid[ch]

    def in_data(self, i: int):
        return self.data[self.in_ch[i]]

    def set_in_ready(self, i: int, r: bool) -> None:
        ch = self.in_ch[i]
        if ch >= 0 and self.ready[ch] != r:
            self.ready[ch] = r
            u = self.prod_unit[ch]
            if u >= 0 and not self.dirty[u]:
                self.dirty[u] = 1
                self.queue.append(u)

    def fired_in(self, i: int) -> bool:
        ch = self.in_ch[i]
        return ch >= 0 and self.fired[ch]

    # --- output side ------------------------------------------------------
    def out_ready(self, i: int) -> bool:
        ch = self.out_ch[i]
        return ch >= 0 and self.ready[ch]

    def set_out(self, i: int, v: bool, d=None) -> None:
        ch = self.out_ch[i]
        if ch >= 0 and (self.valid[ch] != v or self.data[ch] != d):
            self.valid[ch] = v
            self.data[ch] = d
            u = self.cons_unit[ch]
            if u >= 0 and not self.dirty[u]:
                self.dirty[u] = 1
                self.queue.append(u)

    def fired_out(self, i: int) -> bool:
        ch = self.out_ch[i]
        return ch >= 0 and self.fired[ch]


class Unit:
    """Abstract dataflow unit.

    Subclasses define ``n_in`` / ``n_out`` (possibly per instance) and the
    handshake semantics.  ``latency`` is the number of pipeline cycles from
    input transfer to result availability (0 = purely combinational) and is
    consumed by the throughput analysis; units whose latency depends on
    parameters override the attribute per instance.
    """

    #: number of input / output ports; subclasses set these in __init__.
    n_in: int = 0
    n_out: int = 0
    #: sequential latency in cycles as seen by the II analysis.
    latency: int = 0
    #: initial token count contributed to graph cycles through this unit
    #: (e.g. an elastic buffer holds slots for tokens; a credit counter
    #: starts with N credits).  Used by the throughput analysis.
    initial_tokens: int = 0

    def __init__(self, name: str):
        if not name:
            raise ValueError("unit name must be non-empty")
        self.name = name
        #: Free-form annotations set by lowering/optimization passes
        #: (e.g. ``{"cfc": "loop2", "bb": 3}``); never read by the simulator.
        self.meta: dict = {}

    # --- simulation hooks --------------------------------------------------
    def reset(self) -> None:
        """Restore the unit's sequential state to its power-on value."""

    def eval_comb(self, ctx: PortCtx) -> None:
        """Drive output valid/data and input ready from state + signals."""
        raise NotImplementedError

    def tick(self, ctx: PortCtx) -> None:
        """Commit sequential state after the handshake fixpoint."""

    def state(self):
        """Snapshot of the unit's mutable sequential state (None if pure).

        Used by the explicit-state model checker (:mod:`repro.verify`) to
        hash, compare and restore circuit states.  Stateful subclasses
        override this together with :meth:`set_state`.
        """
        return None

    def set_state(self, state) -> None:
        """Restore a snapshot produced by :meth:`state`."""
        if state is not None:
            raise NotImplementedError(f"{self.describe()} cannot restore state")

    def quiescent(self) -> bool:
        """True when the unit cannot make internal progress without I/O.

        The deadlock detector declares a deadlock only when no channel has
        fired for a while *and* every unit is quiescent (a pipelined unit
        draining an internal bubble is progress even without channel
        activity).
        """
        return True

    # --- static scheduling metadata -----------------------------------------
    def comb_deps(self):
        """Signal-level combinational dependencies, for static scheduling.

        Returns ``(fwd, bwd)``:

        * ``fwd[i]`` — the signals that output ``i``'s valid/data are a
          combinational function of;
        * ``bwd[i]`` — the signals that input ``i``'s ready is a
          combinational function of.

        Signals are named from this unit's perspective: ``("in", j)`` is
        input ``j``'s incoming valid/data, ``("out", j)`` is output ``j``'s
        incoming ready.  Signals cut by a register (read from sequential
        state only) must be omitted — buffers override this to declare
        that they break the valid and/or ready path.

        The default is the conservative fully-combinational unit: every
        driven signal depends on every observable signal, except that an
        output's valid/data never depend on that same output's ready
        (the elastic-circuit handshake invariant every unit in the
        catalogue obeys; a valid that waited for its own ready could
        deadlock the protocol).  Two contracts matter for subclasses:

        * an override may only *remove* dependencies that ``eval_comb``
          genuinely does not read for that signal;
        * any unit whose ``eval_comb`` calls into data values (not just
          valid/ready bits) must keep the corresponding ``("in", j)``
          dependencies on every signal it drives, so a static scheduler
          never runs it before those data values are final.
        """
        ins = [("in", j) for j in range(self.n_in)]
        outs = [("out", j) for j in range(self.n_out)]
        fwd = [
            ins + [("out", j) for j in range(self.n_out) if j != i]
            for i in range(self.n_out)
        ]
        bwd = [ins + outs for _ in range(self.n_in)]
        return fwd, bwd

    def needs_tick(self) -> bool:
        """True when :meth:`tick` can have an effect and must be called.

        Used by the simulation backends to skip the per-cycle tick of
        purely combinational units.  Subclasses whose ``tick`` is
        conditionally inert (e.g. a zero-latency operator) may override.
        """
        return type(self).tick is not Unit.tick

    # --- static description -------------------------------------------------
    def in_port_name(self, i: int) -> str:
        return f"in{i}"

    def out_port_name(self, i: int) -> str:
        return f"out{i}"

    def describe(self) -> str:
        return f"{type(self).__name__}({self.name})"

    def __repr__(self):
        return f"<{self.describe()}>"


def named_ports(names: Sequence[str]):
    """Helper for subclasses with fixed, named ports."""

    def port_name(self, i: int, _names=tuple(names)) -> str:
        return _names[i] if i < len(_names) else f"p{i}"

    return port_name
