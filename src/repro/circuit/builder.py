"""Netlist builder: value-level circuit construction with automatic forks.

Lowering passes and test fixtures think in terms of *values* (a producer
output port) consumed by any number of inputs.  The :class:`Netlist` records
every use and, at :meth:`Netlist.finalize`, materializes the handshake
structure: a direct channel for single-consumer values, an
:class:`~repro.circuit.units.EagerFork` for multi-consumer values, and a
:class:`~repro.circuit.units.Sink` for produced-but-unused values (dataflow
tokens must always be consumed or the producer would stall forever).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import CircuitError
from .channel import DATA_WIDTH
from .graph import DataflowCircuit
from .unit import Unit
from .units import EagerFork, Sink

#: A value is one output port of one unit.
Value = Tuple[Unit, int]


class Netlist:
    """Deferred wiring layer on top of :class:`DataflowCircuit`."""

    def __init__(self, circuit: Optional[DataflowCircuit] = None, name: str = "circuit"):
        self.circuit = circuit if circuit is not None else DataflowCircuit(name)
        # producer port -> list of (consumer unit, consumer port, width, label)
        self._uses: Dict[Tuple[str, int], List[Tuple[Unit, int, int, Optional[str]]]] = {}
        self._producers: Dict[Tuple[str, int], Value] = {}
        self._finalized = False

    # ------------------------------------------------------------------ build
    def add(self, unit: Unit) -> Unit:
        return self.circuit.add(unit)

    def fresh(self, prefix: str) -> str:
        return self.circuit.fresh_name(prefix)

    def use(
        self,
        value: Value,
        dst: Unit,
        dst_port: int,
        width: int = DATA_WIDTH,
        name: Optional[str] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        """Record that ``dst.in[dst_port]`` consumes ``value``.

        ``attrs`` annotate the materialized channel (e.g. backedge token
        counts); with fan-out, they land on the fork→consumer leg.
        """
        if self._finalized:
            raise CircuitError("netlist already finalized")
        src, src_port = value
        key = (src.name, src_port)
        self._producers[key] = value
        self._uses.setdefault(key, []).append((dst, dst_port, width, name, attrs))

    def declare(self, value: Value) -> None:
        """Register a producer port that may end up with zero uses.

        Finalize will attach a :class:`Sink` to it if nothing consumed it.
        """
        src, src_port = value
        key = (src.name, src_port)
        self._producers.setdefault(key, value)
        self._uses.setdefault(key, [])

    # --------------------------------------------------------------- finalize
    def finalize(self) -> DataflowCircuit:
        """Materialize forks/sinks and return the validated circuit."""
        if self._finalized:
            return self.circuit
        self._finalized = True
        c = self.circuit
        for key, uses in self._uses.items():
            src, src_port = self._producers[key]
            if not uses:
                sink = c.add(Sink(c.fresh_name(f"sink_{src.name}_")))
                c.connect(src, src_port, sink, 0)
            elif len(uses) == 1:
                dst, dport, width, label, attrs = uses[0]
                ch = c.connect(src, src_port, dst, dport, width=width, name=label)
                if attrs:
                    ch.attrs.update(attrs)
            else:
                fork = c.add(EagerFork(c.fresh_name(f"fork_{src.name}_"), len(uses)))
                fork.meta.update(src.meta)
                width = max(u[2] for u in uses)
                c.connect(src, src_port, fork, 0, width=width)
                for i, (dst, dport, w, label, attrs) in enumerate(uses):
                    ch = c.connect(fork, i, dst, dport, width=w, name=label)
                    if attrs:
                        ch.attrs.update(attrs)
        c.validate()
        return c
