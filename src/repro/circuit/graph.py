"""The dataflow circuit container.

A :class:`DataflowCircuit` is a directed graph whose nodes are
:class:`~repro.circuit.unit.Unit` instances and whose edges are
:class:`~repro.circuit.channel.Channel` handshake links.  The container
enforces structural sanity (unique names, single driver / single consumer
per port) and offers the graph views used by the analysis and sharing
passes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import CircuitError
from .channel import Channel, PortRef, DATA_WIDTH
from .unit import Unit


class DataflowCircuit:
    """A mutable dataflow circuit graph."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.units: Dict[str, Unit] = {}
        self.channels: List[Channel] = []
        # port -> channel maps; key is (unit_name, port_index)
        self._out_map: Dict[Tuple[str, int], Channel] = {}
        self._in_map: Dict[Tuple[str, int], Channel] = {}
        self._name_counters: Dict[str, int] = {}

    # ------------------------------------------------------------------ build
    def add(self, unit: Unit) -> Unit:
        """Add a unit; its name must be unique within the circuit."""
        if unit.name in self.units:
            raise CircuitError(f"duplicate unit name {unit.name!r}")
        self.units[unit.name] = unit
        return unit

    def fresh_name(self, prefix: str) -> str:
        """Generate a unique unit name with the given prefix."""
        n = self._name_counters.get(prefix, 0)
        while True:
            candidate = f"{prefix}{n}"
            n += 1
            if candidate not in self.units:
                self._name_counters[prefix] = n
                return candidate

    def connect(
        self,
        src: Unit,
        src_port: int,
        dst: Unit,
        dst_port: int,
        width: int = DATA_WIDTH,
        name: Optional[str] = None,
        **attrs,
    ) -> Channel:
        """Create a channel from ``src.out[src_port]`` to ``dst.in[dst_port]``."""
        self._check_port(src, src_port, src.n_out, "output")
        self._check_port(dst, dst_port, dst.n_in, "input")
        skey = (src.name, src_port)
        dkey = (dst.name, dst_port)
        if skey in self._out_map:
            raise CircuitError(
                f"output port {src.name}[{src_port}] already drives "
                f"{self._out_map[skey].dst}; insert a fork to duplicate tokens"
            )
        if dkey in self._in_map:
            raise CircuitError(
                f"input port {dst.name}[{dst_port}] already driven by "
                f"{self._in_map[dkey].src}"
            )
        ch = Channel(
            cid=len(self.channels),
            src=PortRef(src.name, src_port),
            dst=PortRef(dst.name, dst_port),
            width=width,
            name=name,
            attrs=dict(attrs),
        )
        self.channels.append(ch)
        self._out_map[skey] = ch
        self._in_map[dkey] = ch
        return ch

    def _check_port(self, unit: Unit, port: int, limit: int, kind: str) -> None:
        if unit.name not in self.units:
            raise CircuitError(f"unit {unit.name!r} not in circuit {self.name!r}")
        if not 0 <= port < limit:
            raise CircuitError(
                f"{kind} port {port} out of range for {unit.describe()} "
                f"(has {limit})"
            )

    # -------------------------------------------------------------- accessors
    def unit(self, name: str) -> Unit:
        try:
            return self.units[name]
        except KeyError:
            raise CircuitError(f"no unit named {name!r}") from None

    def out_channel(self, unit: Unit, port: int) -> Optional[Channel]:
        return self._out_map.get((unit.name, port))

    def in_channel(self, unit: Unit, port: int) -> Optional[Channel]:
        return self._in_map.get((unit.name, port))

    def out_channels(self, unit: Unit) -> List[Channel]:
        return [
            self._out_map[(unit.name, i)]
            for i in range(unit.n_out)
            if (unit.name, i) in self._out_map
        ]

    def in_channels(self, unit: Unit) -> List[Channel]:
        return [
            self._in_map[(unit.name, i)]
            for i in range(unit.n_in)
            if (unit.name, i) in self._in_map
        ]

    def successors(self, unit: Unit) -> List[Unit]:
        return [self.units[ch.dst.unit] for ch in self.out_channels(unit)]

    def predecessors(self, unit: Unit) -> List[Unit]:
        return [self.units[ch.src.unit] for ch in self.in_channels(unit)]

    def units_of_type(self, cls) -> List[Unit]:
        return [u for u in self.units.values() if isinstance(u, cls)]

    # -------------------------------------------------------------- rewiring
    def disconnect(self, ch: Channel) -> None:
        """Remove a channel; both endpoint ports become free."""
        self.channels.remove(ch)
        self._out_map.pop((ch.src.unit, ch.src.index), None)
        self._in_map.pop((ch.dst.unit, ch.dst.index), None)

    def redirect_dst(self, ch: Channel, dst: Unit, dst_port: int) -> Channel:
        """Re-point a channel's consumer end to a different input port."""
        self._check_port(dst, dst_port, dst.n_in, "input")
        dkey = (dst.name, dst_port)
        if dkey in self._in_map:
            raise CircuitError(f"input port {dst.name}[{dst_port}] already driven")
        self._in_map.pop((ch.dst.unit, ch.dst.index), None)
        ch.dst = PortRef(dst.name, dst_port)
        self._in_map[dkey] = ch
        return ch

    def redirect_src(self, ch: Channel, src: Unit, src_port: int) -> Channel:
        """Re-point a channel's producer end to a different output port."""
        self._check_port(src, src_port, src.n_out, "output")
        skey = (src.name, src_port)
        if skey in self._out_map:
            raise CircuitError(f"output port {src.name}[{src_port}] already drives")
        self._out_map.pop((ch.src.unit, ch.src.index), None)
        ch.src = PortRef(src.name, src_port)
        self._out_map[skey] = ch
        return ch

    def remove_unit(self, unit: Unit) -> None:
        """Remove a unit; all its ports must already be disconnected."""
        for i in range(unit.n_in):
            if (unit.name, i) in self._in_map:
                raise CircuitError(f"{unit.name} input {i} still connected")
        for i in range(unit.n_out):
            if (unit.name, i) in self._out_map:
                raise CircuitError(f"{unit.name} output {i} still connected")
        del self.units[unit.name]

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Check that every port of every unit is connected exactly once."""
        problems = []
        for u in self.units.values():
            for i in range(u.n_in):
                if (u.name, i) not in self._in_map:
                    problems.append(
                        f"{u.describe()} input {u.in_port_name(i)!r} undriven"
                    )
            for i in range(u.n_out):
                if (u.name, i) not in self._out_map:
                    problems.append(
                        f"{u.describe()} output {u.out_port_name(i)!r} unconsumed"
                    )
        for ch in self.channels:
            if ch.src.unit not in self.units or ch.dst.unit not in self.units:
                problems.append(f"channel {ch.label()} references missing unit")
        if problems:
            raise CircuitError(
                f"circuit {self.name!r} is malformed:\n  " + "\n  ".join(problems)
            )

    # ------------------------------------------------------------- graph view
    def unit_graph(self):
        """Return the circuit as a ``networkx.MultiDiGraph`` over unit names.

        Edge data carries the :class:`Channel` under key ``"channel"``.
        """
        import networkx as nx

        g = nx.MultiDiGraph()
        g.add_nodes_from(self.units)
        for ch in self.channels:
            g.add_edge(ch.src.unit, ch.dst.unit, channel=ch)
        return g

    def stats(self) -> Dict[str, int]:
        """Unit-count statistics by type name (used in reports and tests)."""
        counts: Dict[str, int] = {}
        for u in self.units.values():
            key = type(u).__name__
            counts[key] = counts.get(key, 0) + 1
        counts["_units"] = len(self.units)
        counts["_channels"] = len(self.channels)
        return counts

    def __len__(self):
        return len(self.units)

    def __contains__(self, name: str):
        return name in self.units
