"""Graphviz DOT export for dataflow circuits (debugging / documentation)."""

from __future__ import annotations

from .graph import DataflowCircuit

_SHAPES = {
    "FunctionalUnit": "box",
    "EagerFork": "triangle",
    "LazyFork": "invtriangle",
    "Join": "house",
    "Merge": "trapezium",
    "ArbiterMerge": "trapezium",
    "FixedOrderMerge": "trapezium",
    "Mux": "invtrapezium",
    "Branch": "diamond",
    "Demux": "diamond",
    "ElasticBuffer": "rectangle",
    "TransparentFifo": "rectangle",
    "CreditCounter": "circle",
    "LoadPort": "cylinder",
    "StorePort": "cylinder",
}


def to_dot(circuit: DataflowCircuit) -> str:
    """Render the circuit as a DOT digraph string."""
    lines = [f'digraph "{circuit.name}" {{', "  rankdir=TB;"]
    for u in circuit.units.values():
        shape = _SHAPES.get(type(u).__name__, "ellipse")
        label = u.describe().replace('"', "'")
        lines.append(f'  "{u.name}" [shape={shape}, label="{label}"];')
    for ch in circuit.channels:
        style = "dashed" if ch.width == 0 else "solid"
        attrs = [f"style={style}"]
        if ch.attrs.get("backedge"):
            attrs.append("color=red")
        if ch.name:
            attrs.append(f'label="{ch.name}"')
        lines.append(
            f'  "{ch.src.unit}" -> "{ch.dst.unit}" [{", ".join(attrs)}];'
        )
    lines.append("}")
    return "\n".join(lines)


def write_dot(circuit: DataflowCircuit, path: str) -> None:
    with open(path, "w") as f:
        f.write(to_dot(circuit))
