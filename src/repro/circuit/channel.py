"""Channels: the handshake links between dataflow units.

A channel carries a token stream from exactly one output port of a producer
unit to exactly one input port of a consumer unit.  At the hardware level a
channel is a bundle of ``data`` wires plus a ``valid``/``ready`` handshake
pair; a token is *transferred* on a rising clock edge where both ``valid``
and ``ready`` are high.  The simulator (``repro.sim``) models exactly this
protocol; the static representation here only records the endpoints and the
data width (used by the resource model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Conventional widths used by the frontend and the resource model.
DATA_WIDTH = 32  #: width of integer / floating-point data channels
COND_WIDTH = 1  #: width of condition (boolean) channels
CTRL_WIDTH = 0  #: dataless control-token channels (credits, BB start tokens)


@dataclass(frozen=True)
class PortRef:
    """A reference to one port of one unit.

    ``unit`` is the unit *name* (names are unique within a circuit), ``index``
    is the port position within the unit's input or output port list.
    """

    unit: str
    index: int

    def __str__(self):
        return f"{self.unit}[{self.index}]"


@dataclass
class Channel:
    """A point-to-point handshake link between two ports.

    Attributes
    ----------
    cid:
        Dense integer id assigned by the owning circuit; used by the
        simulator to index its signal arrays.
    src / dst:
        Producer output port and consumer input port.
    width:
        Data width in bits.  ``0`` denotes a dataless control token channel.
    name:
        Optional label for traces and DOT output.
    """

    cid: int
    src: PortRef
    dst: PortRef
    width: int = DATA_WIDTH
    name: Optional[str] = None
    #: Extra key/value annotations (e.g. ``{"backedge": True}``) used by the
    #: analysis passes.  Annotations never affect simulation semantics.
    attrs: dict = field(default_factory=dict)

    def label(self) -> str:
        """Human-readable identification used in traces and error messages."""
        base = f"{self.src}->{self.dst}"
        return f"{self.name} ({base})" if self.name else base
