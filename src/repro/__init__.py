"""repro: a Python reproduction of CRUSH (ASPLOS'25).

CRUSH is a credit-based strategy for sharing functional units in
dynamically scheduled HLS dataflow circuits (Xu & Josipović, ASPLOS 2025).
This package reimplements the full system stack the paper depends on:

* :mod:`repro.circuit` — the dataflow circuit IR (units, handshake channels),
* :mod:`repro.sim` — a cycle-accurate handshake simulator with deadlock
  detection (the ModelSim substitute),
* :mod:`repro.analysis` — SCC/CFC analysis, max-cycle-ratio II, token
  occupancy, buffer placement (the MILP substitute),
* :mod:`repro.core` — CRUSH itself: the credit-based sharing wrapper,
  the grouping heuristic (Algorithm 1), the priority heuristic
  (Algorithm 2), credit allocation (Eq. 3) and the cost model (Eq. 2),
* :mod:`repro.baselines` — Naive (no sharing) and In-order
  (total-token-order sharing, the prior work),
* :mod:`repro.frontend` — a loop-nest kernel IR with two lowering styles
  (BB-organized and fast-token) and the paper's 11 benchmarks,
* :mod:`repro.resources` — FPGA resource/timing models (the Vivado
  substitute),
* :mod:`repro.pipeline` — the end-to-end evaluation used by the
  benchmark harness to regenerate the paper's tables and figures,
* :mod:`repro.sweep` — parallel evaluation sweeps over the
  (kernel × technique × style × scale) matrix with a persistent
  on-disk result cache (``python -m repro sweep``).

Quickstart::

    from repro.pipeline import run_technique
    row = run_technique("gemm", "crush", scale="small")
    print(row.fu_census, row.dsp, row.cycles)
"""

from . import (
    analysis,
    baselines,
    circuit,
    core,
    frontend,
    reporting,
    resources,
    sim,
    sweep,
)
from .errors import (
    AnalysisError,
    CircuitError,
    ConvergenceError,
    DeadlockError,
    FrontendError,
    ReproError,
    SharingError,
    SimulationError,
)
from .pipeline import TECHNIQUES, TechniqueResult, run_technique

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "CircuitError",
    "ConvergenceError",
    "DeadlockError",
    "FrontendError",
    "ReproError",
    "SharingError",
    "SimulationError",
    "TECHNIQUES",
    "TechniqueResult",
    "analysis",
    "baselines",
    "circuit",
    "core",
    "frontend",
    "reporting",
    "resources",
    "run_technique",
    "sim",
    "sweep",
]
