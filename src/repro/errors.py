"""Exception hierarchy for the CRUSH reproduction library."""


class ReproError(Exception):
    """Base class for all library errors."""


class CircuitError(ReproError):
    """Raised for malformed circuits (dangling ports, duplicate names, ...)."""


class SimulationError(ReproError):
    """Raised when the simulator cannot make sense of the circuit."""


class DeadlockError(SimulationError):
    """Raised when the simulated circuit reaches a deadlock.

    Attributes
    ----------
    cycle:
        Simulation cycle at which the deadlock was declared.
    blocked:
        A list of human-readable descriptions of blocked units, useful for
        diagnosing the dependency cycle that caused the deadlock.
    """

    def __init__(self, message, cycle=None, blocked=None):
        super().__init__(message)
        self.cycle = cycle
        self.blocked = list(blocked or [])


class ConvergenceError(SimulationError):
    """Raised when combinational handshake signals do not reach a fixpoint.

    This indicates a combinational cycle, i.e. a graph cycle with no
    sequential element on it; buffer placement is supposed to prevent this.
    """


class CombinationalCycleError(SimulationError):
    """Raised by the compiled backend when static scheduling finds a
    combinational cycle in the handshake signal graph.

    The event-driven engine discovers the same defect only dynamically (as a
    :class:`ConvergenceError` after thousands of wasted evaluations); the
    static scheduler proves it up front and names the offending signal path.

    Attributes
    ----------
    path:
        Human-readable descriptions of the signals on the cycle, in
        dependency order.
    """

    def __init__(self, message, path=None):
        super().__init__(message)
        self.path = list(path or [])


class LaneDivergence(Exception):
    """Internal control-flow signal of the batched (lane-parallel) engines.

    Raised *inside* a lockstep batched pass when the lanes stop agreeing on
    a control decision — a branch condition or mux/demux select whose
    per-lane values differ in effect, or a ``done`` predicate satisfied by
    some lanes but not others.  It never escapes to callers: the
    generated-loop engines catch it and *promote* the batch to mask-lane
    (MIMD) execution, the event backend re-executes every lane on a scalar
    engine; both are bit-identical by construction.  Deliberately *not* a
    :class:`ReproError` so generic error handlers cannot swallow it.

    Attributes
    ----------
    channel:
        Human-readable name of the diverging control site
        (``"<unit>.<port>"``), or ``"done"`` for a partial done-mask.
    values:
        The per-lane values that disagreed (tuple, lane index = dataset).
    cycle:
        Simulation cycle of the divergence; filled in by the catching
        engine (the raise site works on unsynced loop locals).
    """

    def __init__(self, channel=None, values=None, cycle=None):
        super().__init__(channel)
        self.channel = channel
        self.values = tuple(values) if values is not None else None
        self.cycle = cycle

    def __str__(self):
        if self.channel is None:
            return "lane divergence"
        at = f" at cycle {self.cycle}" if self.cycle is not None else ""
        vals = f": per-lane values {self.values}" if self.values else ""
        return f"lanes diverged on {self.channel}{at}{vals}"


class AnalysisError(ReproError):
    """Raised by the performance-analysis passes."""


class SharingError(ReproError):
    """Raised by the sharing passes (CRUSH and baselines)."""


class FrontendError(ReproError):
    """Raised when lowering a kernel description to a dataflow circuit."""


class LintError(ReproError):
    """Raised when static lint (or the runtime handshake sanitizer) finds
    violations and the caller asked for them to be fatal.

    Attributes
    ----------
    diagnostics:
        The :class:`repro.lint.Diagnostic` objects behind the failure
        (empty when the error wraps an internal rule fault).
    """

    def __init__(self, message, diagnostics=None):
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])
