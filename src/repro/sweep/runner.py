"""Fan-out execution of sweep jobs with failure isolation.

``run_sweep`` takes a list of :class:`SweepJob` and produces one
:class:`SweepRecord` per job, in submission order, regardless of worker
count or completion order:

* cache hits are answered from the persistent :class:`ResultCache`
  without spawning anything;
* misses run either in-process (``workers=0``, the serial reference
  path) or in dedicated child processes (``workers >= 1``) so that a
  crashing or deadlocking configuration is *captured* — error type and
  message preserved in a ``failed`` record — instead of taking the whole
  sweep down;
* each child is subject to a per-job wall-clock ``timeout`` and each
  failing job is retried ``retries`` times before its failure is
  recorded.

Child processes prefer the ``fork`` start method (cheap on Linux, and
lets tests inject worker functions that need not survive pickling);
``spawn`` is the fallback where ``fork`` is unavailable.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..pipeline import TechniqueResult, run_technique, run_technique_batch
from .cache import ResultCache
from .job import SweepJob

STATUS_OK = "ok"
STATUS_FAILED = "failed"


class SweepTimeoutError(Exception):
    """A sweep job exceeded its per-job wall-clock budget."""


def execute_job(job: SweepJob) -> TechniqueResult:
    """The default worker: one full pipeline run for one job."""
    return run_technique(
        job.kernel,
        job.technique,
        style=job.style,
        scale=job.scale,
        simulate=job.simulate,
        max_cycles=job.max_cycles,
        sim_backend=job.sim_backend,
        seed=job.seed,
        **job.overrides,
    )


def execute_batch(jobs: List[SweepJob]) -> List[TechniqueResult]:
    """The batched worker: jobs differing only in seed, one lane each.

    One lane-parallel simulation replaces ``len(jobs)`` scalar pipeline
    runs; the returned rows are bit-identical to what
    :func:`execute_job` would produce per job (same preparation, same
    per-seed cycle counts — guaranteed by the batched engines).
    """
    first = jobs[0]
    return run_technique_batch(
        first.kernel,
        first.technique,
        seeds=[j.seed for j in jobs],
        style=first.style,
        scale=first.scale,
        max_cycles=first.max_cycles,
        sim_backend=first.sim_backend,
        **first.overrides,
    )


@dataclass
class SweepRecord:
    """The outcome of one job: a result row or a preserved failure."""

    job: SweepJob
    status: str
    result: Optional[TechniqueResult] = None
    cached: bool = False
    error_type: Optional[str] = None
    error: Optional[str] = None
    wall_time_s: float = 0.0
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job": self.job.to_dict(),
            "status": self.status,
            "cached": self.cached,
            "result": self.result.to_dict() if self.result else None,
            "error_type": self.error_type,
            "error": self.error,
            "wall_time_s": self.wall_time_s,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepRecord":
        res = data.get("result")
        return cls(
            job=SweepJob.from_dict(data["job"]),
            status=data["status"],
            result=TechniqueResult.from_dict(res) if res else None,
            cached=data.get("cached", False),
            error_type=data.get("error_type"),
            error=data.get("error"),
            wall_time_s=data.get("wall_time_s", 0.0),
            attempts=data.get("attempts", 0),
        )


@dataclass
class SweepOutcome:
    """All records of one sweep plus its aggregate accounting."""

    records: List[SweepRecord] = field(default_factory=list)
    workers: int = 0
    wall_time_s: float = 0.0

    @property
    def ok_records(self) -> List[SweepRecord]:
        return [r for r in self.records if r.ok]

    @property
    def failed_records(self) -> List[SweepRecord]:
        return [r for r in self.records if not r.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.records if not r.cached)

    @property
    def executed_time_s(self) -> float:
        """Sum of per-job execution wall times (the serial-cost estimate)."""
        return sum(r.wall_time_s for r in self.records if not r.cached)

    @property
    def speedup(self) -> float:
        """Aggregate speedup of this sweep vs running every miss serially."""
        if self.wall_time_s <= 0:
            return 1.0
        return self.executed_time_s / self.wall_time_s

    def results(self) -> List[TechniqueResult]:
        """Successful rows, in submission order."""
        return [r.result for r in self.records if r.ok and r.result]

    def raise_on_failure(self) -> "SweepOutcome":
        """Turn failed rows back into an exception (for benches/tests)."""
        if self.failed_records:
            lines = [
                f"{r.job.label()}: {r.error_type}: {r.error}"
                for r in self.failed_records
            ]
            raise RuntimeError(
                "sweep had %d failed job(s):\n  %s"
                % (len(lines), "\n  ".join(lines))
            )
        return self


def run_sweep(
    jobs: List[SweepJob],
    workers: int = 0,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    worker_fn: Callable[[SweepJob], TechniqueResult] = execute_job,
    on_record: Optional[Callable[[SweepRecord], None]] = None,
    lanes: Optional[int] = None,
) -> SweepOutcome:
    """Run every job, answering from ``cache`` where possible.

    ``workers=0`` executes misses serially in-process (no timeout
    enforcement — the serial reference path); ``workers >= 1`` fans them
    out over that many isolated child processes.  The returned records
    are in submission order independent of completion order.

    ``lanes=B`` (with ``B >= 2``) groups cache-missed jobs that differ
    only in ``seed`` into lane-parallel batches of up to ``B``: one
    batched simulation (:func:`execute_batch`) replaces up to ``B``
    scalar pipeline runs, while every job still gets its own record and
    its own per-seed cache row — warm reruns hit the cache identically
    either way.  A failing batch is transparently retried job by job on
    the scalar path (full ``retries`` budget), so failure isolation is
    no coarser than without lanes.  Batching applies only with the
    default ``worker_fn`` — a custom worker has unknown semantics and
    runs per job.  Per-job ``wall_time_s`` of a batch is the chunk's
    wall clock divided evenly over its lanes when the chunk ran
    lane-parallel, and proportionally to per-lane cycle counts when it
    fell back to sequential scalar execution (see
    :func:`_record_batch_ok`).
    """
    t_start = time.perf_counter()
    records: Dict[int, SweepRecord] = {}
    misses: List = []

    for index, job in enumerate(jobs):
        hit = cache.get(job) if cache is not None else None
        if hit is not None:
            record = SweepRecord(
                job=job, status=STATUS_OK, result=hit, cached=True,
                wall_time_s=0.0, attempts=0,
            )
            records[index] = record
            if on_record:
                on_record(record)
        else:
            misses.append((index, job))

    if misses and lanes and lanes > 1 and worker_fn is execute_job:
        chunks, misses = _plan_batches(misses, lanes)
        if chunks:
            if workers <= 0:
                leftover = _run_batches_serial(
                    chunks, records, cache, on_record
                )
            else:
                leftover = _run_batches_pool(
                    chunks, workers, timeout, records, cache, on_record
                )
            misses = sorted(misses + leftover)

    if misses and workers <= 0:
        _run_serial(misses, worker_fn, retries, records, cache, on_record)
    elif misses:
        _run_pool(misses, workers, worker_fn, timeout, retries, records,
                  cache, on_record)

    return SweepOutcome(
        records=[records[i] for i in range(len(jobs))],
        workers=workers,
        wall_time_s=time.perf_counter() - t_start,
    )


# --------------------------------------------------------------------------
# lane-parallel batches


def _plan_batches(misses: List, lanes: int):
    """Split cache-misses into batchable chunks and scalar leftovers.

    Only simulating jobs batch (a ``simulate=False`` job has no per-seed
    work to share), chunks never exceed ``lanes``, and a chunk of one is
    pointless — it stays on the scalar path.
    """
    groups: Dict[tuple, List] = {}
    scalar: List = []
    for index, job in misses:
        if job.simulate:
            groups.setdefault(job.batch_key(), []).append((index, job))
        else:
            scalar.append((index, job))
    chunks: List[List] = []
    for members in groups.values():
        for i in range(0, len(members), lanes):
            chunk = members[i:i + lanes]
            if len(chunk) > 1:
                chunks.append(chunk)
            else:
                scalar.extend(chunk)
    scalar.sort()
    return chunks, scalar


def _record_batch_ok(chunk: List, results: List[TechniqueResult],
                     wall: float, records, cache, on_record) -> None:
    """Record one OK row per batched job, splitting the chunk's wall clock.

    A lane-parallel chunk is one simulation pass, so its wall clock is
    shared evenly — every job cost ``wall / lanes``.  A chunk that fell
    back to per-lane scalar execution (``fallback_lanes > 0`` — only the
    event backend still does this) ran its lanes *sequentially*: an even
    split would credit a long lane with a short lane's time and overstate
    the batch's throughput, so the wall clock is split proportionally to
    each lane's simulated cycles instead.
    """
    n = len(chunk)
    if any(r.fallback_lanes for r in results):
        total = sum(r.cycles for r in results)
        walls = [
            wall * r.cycles / total if total else wall / n for r in results
        ]
    else:
        walls = [wall / n] * n
    for (index, job), result, per in zip(chunk, results, walls):
        _record_done(
            SweepRecord(
                job=job, status=STATUS_OK, result=result,
                wall_time_s=per, attempts=1,
            ),
            index, records, cache, on_record,
        )


def _run_batches_serial(chunks: List, records, cache, on_record) -> List:
    """In-process batch execution; returns jobs needing the scalar path."""
    leftover: List = []
    for chunk in chunks:
        t0 = time.perf_counter()
        try:
            results = execute_batch([job for _, job in chunk])
        except Exception:
            # Any lane failing fails the whole batch; isolate by retrying
            # every lane individually on the scalar path.
            leftover.extend(chunk)
            continue
        _record_batch_ok(
            chunk, results, time.perf_counter() - t0,
            records, cache, on_record,
        )
    return leftover


def _batch_child_entry(conn, jobs: List[SweepJob]) -> None:
    try:
        results = execute_batch(jobs)
        conn.send(("ok", [r.to_dict() for r in results]))
    except BaseException as exc:  # preserved, not propagated: isolation
        conn.send((
            "error",
            type(exc).__name__,
            str(exc),
            traceback.format_exc(limit=10),
        ))
    finally:
        conn.close()


def _run_batches_pool(chunks: List, workers: int,
                      timeout: Optional[float], records, cache,
                      on_record) -> List:
    """Batch chunks over child processes; returns scalar-path leftovers.

    A chunk that errors, times out, or crashes is *not* retried as a
    batch — its jobs fall back to the scalar pool, which owns the retry
    budget.  The per-chunk timeout equals the per-job timeout: a batch
    is one simulation pass, not ``lanes`` sequential ones.
    """
    ctx = _mp_context()
    pending = deque(chunks)
    running: List[list] = []  # [chunk, proc, conn, started, deadline]
    leftover: List = []

    try:
        while pending or running:
            while pending and len(running) < workers:
                chunk = pending.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_batch_child_entry,
                    args=(child_conn, [job for _, job in chunk]),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                now = time.perf_counter()
                running.append([
                    chunk, proc, parent_conn, now,
                    (now + timeout) if timeout is not None else None,
                ])

            poll = 0.5
            now = time.perf_counter()
            for st in running:
                if st[4] is not None:
                    poll = min(poll, max(st[4] - now, 0.0))
            multiprocessing.connection.wait(
                [st[1].sentinel for st in running], timeout=poll,
            )

            now = time.perf_counter()
            still: List[list] = []
            for st in running:
                chunk, proc, conn, started, deadline = st
                message = None
                if conn.poll():
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        message = None
                    proc.join()
                elif deadline is not None and now >= deadline:
                    _kill(proc)
                elif proc.is_alive():
                    still.append(st)
                    continue
                else:
                    proc.join()
                conn.close()
                if message is not None and message[0] == "ok":
                    _record_batch_ok(
                        chunk,
                        [TechniqueResult.from_dict(d) for d in message[1]],
                        now - started, records, cache, on_record,
                    )
                else:
                    leftover.extend(chunk)
            running = still
    finally:
        for st in running:
            _kill(st[1])
            st[2].close()
    return leftover


# --------------------------------------------------------------------------
# serial path


def _record_done(
    record: SweepRecord,
    index: int,
    records: Dict[int, SweepRecord],
    cache: Optional[ResultCache],
    on_record: Optional[Callable[[SweepRecord], None]],
) -> None:
    if record.ok and record.result is not None and cache is not None:
        cache.put(record.job, record.result)
    records[index] = record
    if on_record:
        on_record(record)


def _run_serial(
    misses: List,
    worker_fn: Callable[[SweepJob], TechniqueResult],
    retries: int,
    records: Dict[int, SweepRecord],
    cache: Optional[ResultCache],
    on_record: Optional[Callable[[SweepRecord], None]],
) -> None:
    for index, job in misses:
        spent = 0.0
        record = None
        for attempt in range(1, retries + 2):
            t0 = time.perf_counter()
            try:
                result = worker_fn(job)
            except Exception as exc:
                spent += time.perf_counter() - t0
                record = SweepRecord(
                    job=job, status=STATUS_FAILED,
                    error_type=type(exc).__name__, error=str(exc),
                    wall_time_s=spent, attempts=attempt,
                )
                continue
            spent += time.perf_counter() - t0
            record = SweepRecord(
                job=job, status=STATUS_OK, result=result,
                wall_time_s=spent, attempts=attempt,
            )
            break
        _record_done(record, index, records, cache, on_record)


# --------------------------------------------------------------------------
# process-pool path


def _child_entry(conn, worker_fn: Callable[[SweepJob], TechniqueResult],
                 job: SweepJob) -> None:
    try:
        result = worker_fn(job)
        conn.send(("ok", result.to_dict()))
    except BaseException as exc:  # preserved, not propagated: isolation
        conn.send((
            "error",
            type(exc).__name__,
            str(exc),
            traceback.format_exc(limit=10),
        ))
    finally:
        conn.close()


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


@dataclass
class _Running:
    index: int
    job: SweepJob
    process: Any
    conn: Any
    started: float
    deadline: Optional[float]
    attempt: int
    spent: float  # wall time burned by earlier attempts


def _kill(proc) -> None:
    if proc.is_alive():
        proc.terminate()
        proc.join(1.0)
        if proc.is_alive():
            proc.kill()
            proc.join()


def _reap(state: _Running, now: float,
          timeout: Optional[float]) -> Optional[SweepRecord]:
    """Inspect one running child; return its record once it is done."""
    proc, conn = state.process, state.conn
    elapsed = state.spent + (now - state.started)

    if conn.poll():
        try:
            message = conn.recv()
        except (EOFError, OSError):
            message = None
        proc.join()
        if message is not None and message[0] == "ok":
            return SweepRecord(
                job=state.job, status=STATUS_OK,
                result=TechniqueResult.from_dict(message[1]),
                wall_time_s=elapsed, attempts=state.attempt,
            )
        if message is not None:
            _, etype, emsg, _tb = message
            return SweepRecord(
                job=state.job, status=STATUS_FAILED,
                error_type=etype, error=emsg,
                wall_time_s=elapsed, attempts=state.attempt,
            )
        return SweepRecord(
            job=state.job, status=STATUS_FAILED,
            error_type="WorkerCrashed",
            error="worker exited without reporting a result",
            wall_time_s=elapsed, attempts=state.attempt,
        )

    if state.deadline is not None and now >= state.deadline:
        _kill(proc)
        return SweepRecord(
            job=state.job, status=STATUS_FAILED,
            error_type=SweepTimeoutError.__name__,
            error=f"job exceeded the per-job timeout ({timeout}s)",
            wall_time_s=elapsed, attempts=state.attempt,
        )

    if not proc.is_alive():
        proc.join()
        return SweepRecord(
            job=state.job, status=STATUS_FAILED,
            error_type="WorkerCrashed",
            error=f"worker process died with exit code {proc.exitcode}",
            wall_time_s=elapsed, attempts=state.attempt,
        )
    return None


def _run_pool(
    misses: List,
    workers: int,
    worker_fn: Callable[[SweepJob], TechniqueResult],
    timeout: Optional[float],
    retries: int,
    records: Dict[int, SweepRecord],
    cache: Optional[ResultCache],
    on_record: Optional[Callable[[SweepRecord], None]],
) -> None:
    ctx = _mp_context()
    # Queue entries: (index, job, attempt, wall time spent by earlier tries).
    pending = deque((index, job, 1, 0.0) for index, job in misses)
    running: List[_Running] = []

    def spawn(index: int, job: SweepJob, attempt: int,
              spent: float) -> _Running:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_entry, args=(child_conn, worker_fn, job),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        now = time.perf_counter()
        return _Running(
            index=index, job=job, process=proc, conn=parent_conn,
            started=now,
            deadline=(now + timeout) if timeout is not None else None,
            attempt=attempt, spent=spent,
        )

    try:
        while pending or running:
            while pending and len(running) < workers:
                running.append(spawn(*pending.popleft()))

            # Sleep until a child exits or the earliest deadline passes.
            poll = 0.5
            now = time.perf_counter()
            for st in running:
                if st.deadline is not None:
                    poll = min(poll, max(st.deadline - now, 0.0))
            multiprocessing.connection.wait(
                [st.process.sentinel for st in running], timeout=poll,
            )

            now = time.perf_counter()
            still_running: List[_Running] = []
            for st in running:
                record = _reap(st, now, timeout)
                if record is None:
                    still_running.append(st)
                    continue
                st.conn.close()
                if not record.ok and record.attempts <= retries:
                    # Retry: requeue at the front with the attempt count
                    # and the wall time it has already burned.
                    pending.appendleft((
                        st.index, st.job, record.attempts + 1,
                        record.wall_time_s,
                    ))
                else:
                    _record_done(record, st.index, records, cache, on_record)
            running = still_running
    finally:
        for st in running:
            _kill(st.process)
            st.conn.close()
