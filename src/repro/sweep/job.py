"""Sweep job descriptions and evaluation-matrix builders.

A :class:`SweepJob` is a frozen, hashable description of one
``run_technique`` invocation — one row of the paper's Tables 2/3 or one
point of an ablation.  Matrices (the cross product the paper evaluates)
are built with :func:`build_matrix`, optionally filtered down to a subset
of kernels/techniques/styles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ReproError
from ..frontend.kernels import KERNEL_NAMES
from ..pipeline import TECHNIQUES

STYLES = ("bb", "fast-token")
SCALES = ("small", "paper")


@dataclass(frozen=True)
class SweepJob:
    """One (kernel, technique, style, scale) pipeline evaluation.

    ``size_overrides`` is stored as a sorted tuple of ``(name, value)``
    pairs so the job stays hashable and its canonical form is independent
    of keyword order.
    """

    kernel: str
    technique: str
    style: str = "bb"
    scale: str = "paper"
    size_overrides: Tuple[Tuple[str, int], ...] = ()
    simulate: bool = True
    max_cycles: int = 4_000_000
    #: Simulation backend (``"event"`` / ``"compiled"``; None = default).
    #: Part of the cache key: backends are bit-identical, but a cached row
    #: must record which engine actually produced it.
    sim_backend: Optional[str] = None
    #: Input-data seed (``cycles`` depends on it for data-dependent
    #: kernels).  Jobs differing only in seed are candidates for one
    #: lane-parallel batched simulation (``run_sweep(..., lanes=B)``);
    #: their cache rows stay per-seed either way.
    seed: int = 7

    def __post_init__(self) -> None:
        normalized = tuple(sorted(
            (str(k), int(v)) for k, v in dict(self.size_overrides).items()
        ))
        object.__setattr__(self, "size_overrides", normalized)

    @property
    def overrides(self) -> Dict[str, int]:
        return dict(self.size_overrides)

    def label(self) -> str:
        parts = [self.kernel, self.technique, self.style, self.scale]
        if self.size_overrides:
            parts.append(",".join(f"{k}={v}" for k, v in self.size_overrides))
        if self.seed != 7:
            parts.append(f"seed={self.seed}")
        return "/".join(parts)

    def batch_key(self) -> Tuple:
        """Everything but the seed: jobs sharing it prepare, lint and
        estimate the same circuit and may run as lanes of one batched
        simulation."""
        return (
            self.kernel, self.technique, self.style, self.scale,
            self.size_overrides, self.simulate, self.max_cycles,
            self.sim_backend,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kernel": self.kernel,
            "technique": self.technique,
            "style": self.style,
            "scale": self.scale,
            "size_overrides": [list(kv) for kv in self.size_overrides],
            "simulate": self.simulate,
            "max_cycles": self.max_cycles,
            "sim_backend": self.sim_backend,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepJob":
        return cls(
            kernel=data["kernel"],
            technique=data["technique"],
            style=data.get("style", "bb"),
            scale=data.get("scale", "paper"),
            size_overrides=tuple(
                (k, v) for k, v in data.get("size_overrides", [])
            ),
            simulate=data.get("simulate", True),
            max_cycles=data.get("max_cycles", 4_000_000),
            sim_backend=data.get("sim_backend"),
            seed=data.get("seed", 7),
        )


def build_matrix(
    kernels: Optional[Sequence[str]] = None,
    techniques: Optional[Sequence[str]] = None,
    styles: Sequence[str] = ("bb",),
    scale: str = "paper",
    size_overrides: Optional[Mapping[str, int]] = None,
    simulate: bool = True,
    sim_backend: Optional[str] = None,
    seeds: Sequence[int] = (7,),
) -> List[SweepJob]:
    """The cross product of kernels × techniques × styles × seeds.

    ``kernels``/``techniques`` default to the full paper suite; unknown
    names raise so a typo in a CLI filter fails loudly instead of
    silently sweeping nothing.  ``seeds`` multiplies the matrix by one
    input data set per seed (seed-adjacent jobs batch into one
    lane-parallel simulation when the sweep runs with ``lanes``).
    """
    kernels = list(kernels) if kernels else list(KERNEL_NAMES)
    techniques = list(techniques) if techniques else list(TECHNIQUES)
    for k in kernels:
        if k not in KERNEL_NAMES:
            raise ReproError(f"unknown kernel {k!r}; use {KERNEL_NAMES}")
    for t in techniques:
        if t not in TECHNIQUES:
            raise ReproError(f"unknown technique {t!r}; use {TECHNIQUES}")
    for s in styles:
        if s not in STYLES:
            raise ReproError(f"unknown style {s!r}; use {STYLES}")
    overrides = tuple(sorted((size_overrides or {}).items()))
    return [
        SweepJob(
            kernel=k,
            technique=t,
            style=s,
            scale=scale,
            size_overrides=overrides,
            simulate=simulate,
            sim_backend=sim_backend,
            seed=seed,
        )
        for k in kernels
        for t in techniques
        for s in styles
        for seed in seeds
    ]


def table2_matrix(scale: str = "paper") -> List[SweepJob]:
    """The Table 2 matrix: all kernels × all techniques, BB style."""
    return build_matrix(styles=("bb",), scale=scale)


def table3_matrix(scale: str = "paper") -> List[SweepJob]:
    """The Table 3 matrix: all kernels × all techniques, fast-token style."""
    return build_matrix(styles=("fast-token",), scale=scale)


def dedupe(jobs: Iterable[SweepJob]) -> List[SweepJob]:
    """Drop duplicate jobs, keeping first-seen order."""
    seen = set()
    out: List[SweepJob] = []
    for job in jobs:
        if job not in seen:
            seen.add(job)
            out.append(job)
    return out
