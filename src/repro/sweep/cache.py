"""Persistent on-disk result cache for sweep jobs.

Results are keyed by a SHA-256 content hash of the full job description
*plus a code-version salt* — a hash over the source of every ``repro``
module that can influence a pipeline result.  Editing the compiler, the
simulator, or the resource models therefore invalidates every cached row
automatically; editing the sweep machinery itself (which only schedules
work) does not.

Each entry is one JSON file ``<cache_dir>/<key[:2]>/<key>.json`` written
atomically, so concurrent sweeps sharing a cache directory can never
observe a torn entry.  Only successful results are cached — failures are
always retried on the next sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from ..pipeline import TechniqueResult
from .job import SweepJob

#: Bump to force a global cache invalidation on semantic changes that the
#: source hash cannot see (e.g. a data-file change).
CACHE_SCHEMA_VERSION = 1

_code_salt_cache: Optional[str] = None


def default_cache_dir() -> Path:
    """``$REPRO_SWEEP_CACHE`` or ``~/.cache/crush-repro/sweep``."""
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME", os.path.expanduser("~/.cache"))
    return Path(xdg) / "crush-repro" / "sweep"


def code_salt() -> str:
    """Hash of every repro source file that can affect a pipeline result.

    The ``sweep`` package itself is excluded: it orchestrates jobs but
    cannot change what ``run_technique`` computes.
    """
    global _code_salt_cache
    if _code_salt_cache is None:
        pkg_root = Path(__file__).resolve().parent.parent
        sweep_root = pkg_root / "sweep"
        digest = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            if sweep_root in path.parents:
                continue
            digest.update(str(path.relative_to(pkg_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_salt_cache = digest.hexdigest()
    return _code_salt_cache


def cache_key(job: SweepJob, salt: Optional[str] = None) -> str:
    """Deterministic content hash of a job description + code version."""
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "salt": code_salt() if salt is None else salt,
        "job": job.to_dict(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Content-addressed store of ``TechniqueResult`` rows on disk."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 salt: Optional[str] = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.salt = code_salt() if salt is None else salt
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.json"

    def key_for(self, job: SweepJob) -> str:
        return cache_key(job, salt=self.salt)

    def get(self, job: SweepJob) -> Optional[TechniqueResult]:
        path = self._path(self.key_for(job))
        try:
            data = json.loads(path.read_text())
            result = TechniqueResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError):
            # Missing, torn, or schema-incompatible entry: treat as a miss.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, job: SweepJob, result: TechniqueResult) -> Path:
        key = self.key_for(job)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry: Dict[str, Any] = {
            "key": key,
            "schema": CACHE_SCHEMA_VERSION,
            "job": job.to_dict(),
            "result": result.to_dict(),
        }
        # Atomic publish: concurrent writers race benignly (same content).
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(entry, f, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
