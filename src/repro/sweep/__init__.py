"""Parallel evaluation sweeps with a persistent result cache.

The paper's whole evaluation is a matrix of independent
``(kernel, technique, style, scale)`` pipeline runs.  This package fans
those runs out across worker processes, memoizes every successful row in
a content-addressed on-disk cache (so warm re-runs are near-instant
across sessions), and isolates failures so one crashing or deadlocking
configuration cannot take down a sweep.

Entry points: ``python -m repro sweep`` on the command line,
:func:`run_sweep` from Python, and ``benchmarks/_support`` (which routes
every table/figure bench through the same cache).
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    cache_key,
    code_salt,
    default_cache_dir,
)
from .job import (
    SCALES,
    STYLES,
    SweepJob,
    build_matrix,
    dedupe,
    table2_matrix,
    table3_matrix,
)
from .report import (
    CSV_HEADERS,
    ProgressReporter,
    load_outcome,
    outcome_to_dict,
    record_csv_row,
    summarize,
    write_outputs,
)
from .runner import (
    STATUS_FAILED,
    STATUS_OK,
    SweepOutcome,
    SweepRecord,
    SweepTimeoutError,
    execute_batch,
    execute_job,
    run_sweep,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CSV_HEADERS",
    "ProgressReporter",
    "ResultCache",
    "SCALES",
    "STATUS_FAILED",
    "STATUS_OK",
    "STYLES",
    "SweepJob",
    "SweepOutcome",
    "SweepRecord",
    "SweepTimeoutError",
    "build_matrix",
    "cache_key",
    "code_salt",
    "dedupe",
    "default_cache_dir",
    "execute_batch",
    "execute_job",
    "load_outcome",
    "outcome_to_dict",
    "record_csv_row",
    "run_sweep",
    "summarize",
    "table2_matrix",
    "table3_matrix",
    "write_outputs",
]
