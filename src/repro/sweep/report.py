"""Progress reporting and artifact serialization for sweeps.

The reporter prints one line per finished job (status, wall time, cache
hit/miss) and a final accounting summary; the writers serialize a full
:class:`SweepOutcome` to JSON (lossless, reloadable) and CSV (one metric
row per job) under ``benchmarks/results/`` or any other directory.
"""

from __future__ import annotations

import csv
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO

from .runner import SweepOutcome, SweepRecord

CSV_HEADERS = [
    "kernel", "technique", "style", "scale", "size_overrides", "status",
    "cached", "dsp", "slices", "lut", "ff", "cp_ns", "cycles",
    "exec_time_us", "opt_time_s", "lint_errors", "lint_warnings",
    "predicted_ii", "flow_diags", "mem_class", "memdep_diags",
    "sim_backend", "fallback_lanes", "mask_promotions", "divergence",
    "fu_census", "error_type", "error", "wall_time_s", "attempts",
]


class ProgressReporter:
    """Streams one line per finished job; collects summary counters."""

    def __init__(self, total: int, stream: Optional[TextIO] = None,
                 quiet: bool = False) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stdout
        self.quiet = quiet
        self.done = 0

    def __call__(self, record: SweepRecord) -> None:
        self.done += 1
        if self.quiet:
            return
        if record.cached:
            status = "hit   "
        elif record.ok:
            status = "ok    "
        else:
            status = "FAILED"
        line = (f"[{self.done:3d}/{self.total}] {status} "
                f"{record.job.label():40s} {record.wall_time_s:7.2f}s")
        if record.attempts > 1:
            line += f"  ({record.attempts} attempts)"
        if not record.ok:
            line += f"  {record.error_type}: {record.error}"
        print(line, file=self.stream)

    def summary(self, outcome: SweepOutcome) -> str:
        text = summarize(outcome)
        if not self.quiet:
            print(text, file=self.stream)
        return text


def summarize(outcome: SweepOutcome) -> str:
    """Human-readable accounting for one finished sweep."""
    n = len(outcome.records)
    failed = len(outcome.failed_records)
    lines = [
        f"sweep: {n} jobs "
        f"({outcome.cache_hits} cache hits, {outcome.cache_misses} misses, "
        f"{failed} failed) "
        f"with {outcome.workers} worker(s)",
        f"  wall time      : {outcome.wall_time_s:.2f} s",
        f"  executed time  : {outcome.executed_time_s:.2f} s "
        f"(sum over cache misses)",
    ]
    if outcome.cache_misses:
        lines.append(
            f"  aggregate speedup vs serial: {outcome.speedup:.2f}x"
        )
    if failed:
        lines.append("  failed jobs:")
        for r in outcome.failed_records:
            lines.append(f"    {r.job.label()}: {r.error_type}: {r.error}")
    return "\n".join(lines)


def record_csv_row(record: SweepRecord) -> List[Any]:
    job = record.job
    res = record.result
    overrides = ",".join(f"{k}={v}" for k, v in job.size_overrides)
    metric = (lambda name: getattr(res, name) if res is not None else "")
    return [
        job.kernel, job.technique, job.style, job.scale, overrides,
        record.status, int(record.cached),
        metric("dsp"), metric("slices"), metric("lut"), metric("ff"),
        metric("cp_ns"), metric("cycles"), metric("exec_time_us"),
        metric("opt_time_s"), metric("lint_errors"), metric("lint_warnings"),
        metric("predicted_ii"), metric("flow_diags"),
        metric("mem_class"), metric("memdep_diags"),
        metric("sim_backend"), metric("fallback_lanes"),
        metric("mask_promotions"), metric("divergence"),
        res.fu_census if res is not None else "",
        record.error_type or "", record.error or "",
        round(record.wall_time_s, 4), record.attempts,
    ]


def outcome_to_dict(outcome: SweepOutcome) -> Dict[str, Any]:
    return {
        "workers": outcome.workers,
        "wall_time_s": outcome.wall_time_s,
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
        "failed": len(outcome.failed_records),
        "records": [r.to_dict() for r in outcome.records],
    }


def load_outcome(path) -> SweepOutcome:
    """Reload a sweep JSON artifact written by :func:`write_outputs`."""
    data = json.loads(Path(path).read_text())
    return SweepOutcome(
        records=[SweepRecord.from_dict(r) for r in data["records"]],
        workers=data.get("workers", 0),
        wall_time_s=data.get("wall_time_s", 0.0),
    )


def write_outputs(outcome: SweepOutcome, out_dir, basename: str = "sweep",
                  ) -> Dict[str, Path]:
    """Write ``<basename>.json`` and ``<basename>.csv`` under ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    json_path = out / f"{basename}.json"
    csv_path = out / f"{basename}.csv"
    json_path.write_text(
        json.dumps(outcome_to_dict(outcome), indent=2, sort_keys=True) + "\n"
    )
    with open(csv_path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(CSV_HEADERS)
        for record in outcome.records:
            writer.writerow(record_csv_row(record))
    return {"json": json_path, "csv": csv_path}
