"""Steady-state fast-forward for the codegen backend.

CRUSH circuits settle into periodic steady state (the paper's II
analysis is precisely about that): after the pipeline fills, the entire
handshake/occupancy state vector repeats with some period P.  Once that
happens, simulating each period again computes nothing new — the only
quantities that change are *monotone counters* that never feed back into
the handshake dynamics.  This module detects the repetition and advances
those counters analytically, whole periods at a time.

Soundness argument (see DESIGN.md §6 for the full version):

* The projected state — all channel valid/ready/data signals, pending
  activation and carry flags, the quiet flag, every unit's sequential
  state except the monotone ``Entry._remaining`` / ``Sink.received``,
  and the full memory contents — determines the next cycle completely,
  *except* for the ``Entry`` occupancy predicate ``remaining > 0``.
  When two cycles project equally, the circuit evolves identically from
  both as long as that predicate keeps the value it had during the
  recorded period.
* ``remaining`` is non-increasing, so the predicate holds through a
  whole replayed period iff the entry either emits nothing in the
  period or retains at least one token at its end — the **margin rule**
  checked before every replayed period.  When it fails, fast-forward
  stops and cycle-accurate simulation resumes from the (exact) boundary
  state.
* The excluded counters are write-only to the dynamics: no unit reads
  ``cycle``, ``total_fires``, ``Sink.received`` or the memory
  read/write counters.  The user-supplied ``done()`` predicate *does*
  read them, so replay applies each recorded cycle's effects
  individually and re-evaluates ``done()`` / ``max_cycles`` / the
  deadlock window at exactly the per-cycle cadence of the real loop.
* If a terminal condition triggers mid-period, the partially applied
  period is **rewound** and those cycles are re-simulated for real, so
  the terminal state (including mid-period memory transients and
  signal values) is bit-identical to a run without fast-forward.

Observers are incompatible by construction: a ``Trace``,
``HandshakeSanitizer`` or ``SimProfile`` needs every cycle, and the
engine refuses to combine them with fast-forward.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from ..circuit import Entry, Sink

#: Cycles between state-repetition checks (detected periods are
#: multiples of this, which is fine: any multiple of the true period is
#: itself a period of the orbit).
CHECK_EVERY = 64

#: Snapshot table bound; oldest snapshots are evicted beyond this.
MAX_SNAPSHOTS = 512


def project_state(eng) -> str:
    """Canonical projection of the engine state for period detection.

    Includes everything that feeds back into the handshake dynamics
    (signals, pending activation/carry flags, unit state, memory
    contents) and excludes the monotone counters that do not.
    """
    parts: List[str] = [
        bytes(eng.valid).hex(),
        bytes(eng.ready).hex(),
        repr(eng.data),
        bytes(eng._aflags).hex(),
        bytes(eng._kflags).hex(),
        "q" if eng._quiet else "a",
    ]
    for u in eng._units:
        if isinstance(u, (Entry, Sink)):
            continue
        parts.append(repr(u.state()))
    mem = eng.memory
    if mem is not None:
        for name in mem.arrays():
            parts.append(repr(mem._arrays[name]))
    return "\x1e".join(parts)


def _record_period(eng, loop, done, max_cycles, window, period):
    """Simulate one period for real, capturing per-cycle effects.

    Returns ``(effects, status)``; a non-zero status means a terminal
    condition fired during the recording and the run is over.
    """
    entries = eng._ff_entries
    sinks = eng._ff_sinks
    mem = eng.memory
    effects = []
    for _ in range(period):
        e0 = [e._remaining for e in entries]
        s0 = [len(s.received) for s in sinks]
        r0, w0 = (mem.reads, mem.writes) if mem is not None else (0, 0)
        f0 = eng.total_fires
        status, _ = loop(1, done, max_cycles, window, None, None)
        if status:
            return None, status
        effects.append((
            eng.total_fires - f0,
            eng._idle_cycles == 0,
            tuple(e0[i] - e._remaining for i, e in enumerate(entries)),
            tuple(tuple(s.received[s0[i]:]) for i, s in enumerate(sinks)),
            (mem.reads - r0, mem.writes - w0) if mem is not None else (0, 0),
        ))
    return effects, 0


def _replay(eng, done, max_cycles, window, effects) -> None:
    """Apply recorded periods analytically while it stays sound.

    Periods are applied in *bulk* (one set of counter updates per
    period), which is valid because every quantity ``done()`` may read
    is monotone: if ``done()`` is still false after a whole period, it
    was false at every cycle inside it.  When a terminal condition
    lands inside a period -- ``done()`` flips, ``max_cycles`` or the
    deadlock window would be crossed -- the replay stops *at the period
    boundary before it* (rewinding the last bulk update if needed), so
    the caller re-simulates those final cycles for real and reaches the
    terminal state bit-identically.
    """
    entries = eng._ff_entries
    sinks = eng._ff_sinks
    mem = eng.memory
    period = len(effects)
    tot_fires = sum(cyc[0] for cyc in effects)
    ent_total = [
        sum(cyc[2][i] for cyc in effects) for i in range(len(entries))
    ]
    sink_concat = [
        tuple(v for cyc in effects for v in cyc[3][i])
        for i in range(len(sinks))
    ]
    dr_tot = sum(cyc[4][0] for cyc in effects)
    dw_tot = sum(cyc[4][1] for cyc in effects)

    progress = [cyc[1] for cyc in effects]
    if not any(progress):
        return  # idle only grows: re-simulate into the deadlock check
    prefix_quiet = 0
    while not progress[prefix_quiet]:
        prefix_quiet += 1
    max_run = run = 0
    for p in progress:
        run = 0 if p else run + 1
        if run > max_run:
            max_run = run
    trail_quiet = 0
    for p in reversed(progress):
        if p:
            break
        trail_quiet += 1

    while True:
        # Margin rule: every emitting entry must retain a token through
        # the period, so its occupancy predicate cannot flip mid-replay.
        if any(
            d and e._remaining - d < 1 for e, d in zip(entries, ent_total)
        ):
            return
        if eng.cycle + period > max_cycles:
            return
        # Would the deadlock window be crossed inside this period?
        if eng._idle_cycles + prefix_quiet >= window or max_run >= window:
            return
        if done():
            return
        saved_idle = eng._idle_cycles
        eng.total_fires += tot_fires
        for e, d in zip(entries, ent_total):
            if d:
                e._remaining -= d
        for s, vals in zip(sinks, sink_concat):
            if vals:
                s.received.extend(vals)
        if mem is not None:
            mem.reads += dr_tot
            mem.writes += dw_tot
        eng.cycle += period
        eng._idle_cycles = trail_quiet
        if done():
            # ``done()`` flipped inside (or exactly at the end of) this
            # period: rewind it and let the caller re-simulate it.
            eng.total_fires -= tot_fires
            for e, d in zip(entries, ent_total):
                if d:
                    e._remaining += d
            for s, vals in zip(sinks, sink_concat):
                if vals:
                    del s.received[len(s.received) - len(vals):]
            if mem is not None:
                mem.reads -= dr_tot
                mem.writes -= dw_tot
            eng.cycle -= period
            eng._idle_cycles = saved_idle
            return


def run_fast_forward(eng, done, max_cycles: int) -> int:
    """Drive ``eng`` to completion with periodic-state fast-forward.

    Returns the generated loop's status code (1 = done, 2 = deadlock,
    3 = max_cycles); the engine raises the matching error for 2/3.
    """
    loop = eng._loop
    window = eng.deadlock_window
    eng._ff_entries = [u for u in eng._units if isinstance(u, Entry)]
    eng._ff_sinks = [u for u in eng._units if isinstance(u, Sink)]
    snapshots: "OrderedDict[str, int]" = OrderedDict()
    enabled = True
    while True:
        status, _ = loop(
            CHECK_EVERY, done, max_cycles, window, None, None
        )
        if status:
            return status
        if not enabled:
            continue
        blob = project_state(eng)
        seen_at = snapshots.get(blob)
        if seen_at is None:
            snapshots[blob] = eng.cycle
            if len(snapshots) > MAX_SNAPSHOTS:
                snapshots.popitem(last=False)
            continue
        period = eng.cycle - seen_at
        effects, status = _record_period(
            eng, loop, done, max_cycles, window, period
        )
        if status:
            return status
        if project_state(eng) != blob:
            # The match was between states that only *looked* equal at
            # checkpoint granularity; forget everything and keep looking.
            snapshots.clear()
            eng.ff_periods_applied = getattr(eng, "ff_periods_applied", 0)
            continue
        before = eng.cycle
        _replay(eng, done, max_cycles, window, effects)
        eng.ff_periods_applied = (
            getattr(eng, "ff_periods_applied", 0)
            + (eng.cycle - before) // period
        )
        # Whatever stopped the replay (entry margin, or a terminal
        # condition rewound to its period boundary), the remaining work
        # is a wind-down: finish cycle-accurately.
        enabled = False
        snapshots.clear()
