"""Steady-state fast-forward for the codegen backend.

CRUSH circuits settle into periodic steady state (the paper's II
analysis is precisely about that): after the pipeline fills, the entire
handshake/occupancy state vector repeats with some period P.  Once that
happens, simulating each period again computes nothing new — the only
quantities that change are *monotone counters* that never feed back into
the handshake dynamics.  This module detects the repetition and advances
those counters analytically, whole periods at a time.

Soundness argument (see DESIGN.md §6 for the full version):

* The projected state — all channel valid/ready/data signals, pending
  activation and carry flags, the quiet flag, every unit's sequential
  state except the monotone ``Entry._remaining`` / ``Sink.received``,
  and the full memory contents — determines the next cycle completely,
  *except* for the ``Entry`` occupancy predicate ``remaining > 0``.
  When two cycles project equally, the circuit evolves identically from
  both as long as that predicate keeps the value it had during the
  recorded period.
* ``remaining`` is non-increasing, so the predicate holds through a
  whole replayed period iff the entry either emits nothing in the
  period or retains at least one token at its end — the **margin rule**
  checked before every replayed period.  When it fails, fast-forward
  stops and cycle-accurate simulation resumes from the (exact) boundary
  state.
* The excluded counters are write-only to the dynamics: no unit reads
  ``cycle``, ``total_fires``, ``Sink.received`` or the memory
  read/write counters.  The user-supplied ``done()`` predicate *does*
  read them, so replay applies each recorded cycle's effects
  individually and re-evaluates ``done()`` / ``max_cycles`` / the
  deadlock window at exactly the per-cycle cadence of the real loop.
* If a terminal condition triggers mid-period, the partially applied
  period is **rewound** and those cycles are re-simulated for real, so
  the terminal state (including mid-period memory transients and
  signal values) is bit-identical to a run without fast-forward.

Observers are incompatible by construction: a ``Trace``,
``HandshakeSanitizer`` or ``SimProfile`` needs every cycle, and the
engine refuses to combine them with fast-forward.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from ..circuit import Entry, Sink

#: Cycles between the first state-repetition checks (detected periods
#: are differences of probed cycles, which is fine: any multiple of the
#: true period is itself a period of the orbit).
CHECK_EVERY = 64

#: Snapshot table bound; oldest snapshots are evicted beyond this.
MAX_SNAPSHOTS = 512

#: Probe-cadence backoff.  Every probe that finds nothing grows the next
#: simulation chunk by this factor (capped at :data:`MAX_CHECK_EVERY`),
#: so a circuit that never settles into a detectable period — e.g. one
#: whose memory contents keep changing, which makes every projection
#: unique — pays for a logarithmic number of probes instead of one per
#: 64 cycles.  Period detection does not need uniform cadence: a state
#: matches a snapshot whenever their cycle difference is a multiple of
#: the true period, whatever the gaps in between.
CHECK_GROWTH = 1.25
MAX_CHECK_EVERY = 4096

#: Give up probing once its measured wall-clock cost exceeds this
#: fraction of the total run so far.  Probing is pure speculation: when
#: no period has been found yet, disabling it costs nothing but the
#: chance of a later match, and keeps the fast-forward overhead on
#: never-periodic kernels bounded (the BENCH gate is >= 0.95x of the
#: plain codegen run).  Once a period *has* been applied, probing is
#: already over (the remaining run is a cycle-accurate wind-down).
PROBE_BUDGET_FRACTION = 0.04

#: Probes exempt from the budget.  Small circuits are projected faster
#: than they simulate 64 cycles, but right after startup the elapsed
#: denominator is so small that a single probe could trip the governor
#: before a short period had any chance to repeat.
PROBE_GRACE = 4

#: Hard cap on fruitless probes.  With the geometric cadence this many
#: probes stretch over thousands of cycles; a circuit that has not
#: repeated by then (typically because ongoing memory writes make every
#: projection unique) is not going to, and the wall-clock governor
#: alone would keep spending its full budget share forever on long
#: runs.
MAX_FRUITLESS_PROBES = 16


def project_state(eng) -> str:
    """Canonical projection of the engine state for period detection.

    Includes everything that feeds back into the handshake dynamics
    (signals, pending activation/carry flags, unit state, memory
    contents) and excludes the monotone counters that do not.
    """
    parts: List[str] = [
        bytes(eng.valid).hex(),
        bytes(eng.ready).hex(),
        repr(eng.data),
        bytes(eng._aflags).hex(),
        bytes(eng._kflags).hex(),
        "q" if eng._quiet else "a",
    ]
    for u in eng._units:
        if isinstance(u, (Entry, Sink)):
            continue
        parts.append(repr(u.state()))
    mem = eng.memory
    if mem is not None:
        for name in mem.arrays():
            parts.append(repr(mem._arrays[name]))
    return "\x1e".join(parts)


def _record_period(eng, loop, done, max_cycles, window, period):
    """Simulate one period for real, capturing per-cycle effects.

    Returns ``(effects, status)``; a non-zero status means a terminal
    condition fired during the recording and the run is over.
    """
    entries = eng._ff_entries
    sinks = eng._ff_sinks
    mem = eng.memory
    effects = []
    for _ in range(period):
        e0 = [e._remaining for e in entries]
        s0 = [len(s.received) for s in sinks]
        r0, w0 = (mem.reads, mem.writes) if mem is not None else (0, 0)
        f0 = eng.total_fires
        status, _ = loop(1, done, max_cycles, window, None, None)
        if status:
            return None, status
        effects.append((
            eng.total_fires - f0,
            eng._idle_cycles == 0,
            tuple(e0[i] - e._remaining for i, e in enumerate(entries)),
            tuple(tuple(s.received[s0[i]:]) for i, s in enumerate(sinks)),
            (mem.reads - r0, mem.writes - w0) if mem is not None else (0, 0),
        ))
    return effects, 0


def _replay(eng, done, max_cycles, window, effects) -> None:
    """Apply recorded periods analytically while it stays sound.

    Periods are applied in *bulk* (one set of counter updates per
    period), which is valid because every quantity ``done()`` may read
    is monotone: if ``done()`` is still false after a whole period, it
    was false at every cycle inside it.  When a terminal condition
    lands inside a period -- ``done()`` flips, ``max_cycles`` or the
    deadlock window would be crossed -- the replay stops *at the period
    boundary before it* (rewinding the last bulk update if needed), so
    the caller re-simulates those final cycles for real and reaches the
    terminal state bit-identically.
    """
    entries = eng._ff_entries
    sinks = eng._ff_sinks
    mem = eng.memory
    period = len(effects)
    tot_fires = sum(cyc[0] for cyc in effects)
    ent_total = [
        sum(cyc[2][i] for cyc in effects) for i in range(len(entries))
    ]
    sink_concat = [
        tuple(v for cyc in effects for v in cyc[3][i])
        for i in range(len(sinks))
    ]
    dr_tot = sum(cyc[4][0] for cyc in effects)
    dw_tot = sum(cyc[4][1] for cyc in effects)

    progress = [cyc[1] for cyc in effects]
    if not any(progress):
        return  # idle only grows: re-simulate into the deadlock check
    prefix_quiet = 0
    while not progress[prefix_quiet]:
        prefix_quiet += 1
    max_run = run = 0
    for p in progress:
        run = 0 if p else run + 1
        if run > max_run:
            max_run = run
    trail_quiet = 0
    for p in reversed(progress):
        if p:
            break
        trail_quiet += 1

    while True:
        # Margin rule: every emitting entry must retain a token through
        # the period, so its occupancy predicate cannot flip mid-replay.
        if any(
            d and e._remaining - d < 1 for e, d in zip(entries, ent_total)
        ):
            return
        if eng.cycle + period > max_cycles:
            return
        # Would the deadlock window be crossed inside this period?
        if eng._idle_cycles + prefix_quiet >= window or max_run >= window:
            return
        if done():
            return
        saved_idle = eng._idle_cycles
        eng.total_fires += tot_fires
        for e, d in zip(entries, ent_total):
            if d:
                e._remaining -= d
        for s, vals in zip(sinks, sink_concat):
            if vals:
                s.received.extend(vals)
        if mem is not None:
            mem.reads += dr_tot
            mem.writes += dw_tot
        eng.cycle += period
        eng._idle_cycles = trail_quiet
        if done():
            # ``done()`` flipped inside (or exactly at the end of) this
            # period: rewind it and let the caller re-simulate it.
            eng.total_fires -= tot_fires
            for e, d in zip(entries, ent_total):
                if d:
                    e._remaining += d
            for s, vals in zip(sinks, sink_concat):
                if vals:
                    del s.received[len(s.received) - len(vals):]
            if mem is not None:
                mem.reads -= dr_tot
                mem.writes -= dw_tot
            eng.cycle -= period
            eng._idle_cycles = saved_idle
            return


def run_fast_forward(eng, done, max_cycles: int) -> int:
    """Drive ``eng`` to completion with periodic-state fast-forward.

    Returns the generated loop's status code (1 = done, 2 = deadlock,
    3 = max_cycles); the engine raises the matching error for 2/3.
    """
    from time import perf_counter

    loop = eng._loop
    window = eng.deadlock_window
    eng._ff_entries = [u for u in eng._units if isinstance(u, Entry)]
    eng._ff_sinks = [u for u in eng._units if isinstance(u, Sink)]
    snapshots: "OrderedDict[str, int]" = OrderedDict()
    enabled = True
    chunk = float(CHECK_EVERY)
    t_start = perf_counter()
    t_probe = 0.0
    while True:
        status, _ = loop(
            int(chunk) if enabled else max(max_cycles - eng.cycle, CHECK_EVERY),
            done, max_cycles, window, None, None,
        )
        if status:
            return status
        if not enabled:
            continue
        # Probe-overhead governor: projecting the state (and re-entering
        # the generated loop every ``chunk`` cycles) has a real cost; on
        # kernels that never repeat it is pure loss.  Back the cadence
        # off geometrically and stop probing outright once the measured
        # probe time crosses its budget share of the run.
        chunk = min(chunk * CHECK_GROWTH, float(MAX_CHECK_EVERY))
        t0 = perf_counter()
        blob = project_state(eng)
        t_probe += perf_counter() - t0
        n_probes = len(snapshots) + 1
        if blob not in snapshots and (
            n_probes > MAX_FRUITLESS_PROBES
            or (
                n_probes > PROBE_GRACE
                and t_probe
                > PROBE_BUDGET_FRACTION * (perf_counter() - t_start)
            )
        ):
            enabled = False
            snapshots.clear()
            continue
        seen_at = snapshots.get(blob)
        if seen_at is None:
            snapshots[blob] = eng.cycle
            if len(snapshots) > MAX_SNAPSHOTS:
                snapshots.popitem(last=False)
            continue
        period = eng.cycle - seen_at
        effects, status = _record_period(
            eng, loop, done, max_cycles, window, period
        )
        if status:
            return status
        if project_state(eng) != blob:
            # The match was between states that only *looked* equal at
            # checkpoint granularity; forget everything and keep looking.
            snapshots.clear()
            eng.ff_periods_applied = getattr(eng, "ff_periods_applied", 0)
            continue
        before = eng.cycle
        _replay(eng, done, max_cycles, window, effects)
        eng.ff_periods_applied = (
            getattr(eng, "ff_periods_applied", 0)
            + (eng.cycle - before) // period
        )
        # Whatever stopped the replay (entry margin, or a terminal
        # condition rewound to its period boundary), the remaining work
        # is a wind-down: finish cycle-accurately.
        enabled = False
        snapshots.clear()
