"""Simulation observability: where do the simulator's cycles go?

A :class:`SimProfile` can be handed to either simulation backend
(``Engine(..., profile=p)`` / ``CompiledEngine(..., profile=p)``, or
``create_engine(..., profile=p)``).  The engine then runs an instrumented
step loop that accumulates

* per-unit combinational evaluation counts (which units the simulator
  actually touches — the event engine's sparsity and the compiled
  backend's activation gating make this far from uniform),
* per-phase wall-clock time: combinational settling, the fire scan, and
  the sequential tick phase,
* total instrumented wall-clock and cycle counts, from which
  :attr:`cycles_per_sec` derives the headline throughput number.

Profiling costs a couple of timer calls per cycle, so it is opt-in; an
engine without a profile runs the uninstrumented step loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class SimProfile:
    """Accumulator for one engine run's hot-loop statistics."""

    def __init__(self):
        self.backend: str = "?"
        self.unit_names: List[str] = []
        self.eval_counts: List[int] = []
        self.tick_counts: List[int] = []
        #: Wall-clock seconds per phase of the instrumented step loop.
        self.comb_s: float = 0.0
        self.fire_s: float = 0.0
        self.tick_s: float = 0.0
        #: Total instrumented wall-clock (sum of full step() durations).
        self.wall_s: float = 0.0
        self.cycles: int = 0
        self.fires: int = 0
        #: Cycles the compiled backend's quiet-cycle fast path skipped.
        self.quiet_cycles: int = 0

    # Called once by the engine that adopts this profile.
    def bind(self, unit_names: List[str], backend: str) -> None:
        self.backend = backend
        self.unit_names = list(unit_names)
        self.eval_counts = [0] * len(self.unit_names)
        self.tick_counts = [0] * len(self.unit_names)

    # ------------------------------------------------------------- derived
    @property
    def total_evals(self) -> int:
        return sum(self.eval_counts)

    @property
    def cycles_per_sec(self) -> float:
        return self.cycles / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def evals_per_cycle(self) -> float:
        return self.total_evals / self.cycles if self.cycles else 0.0

    def hot_units(self, top: int = 10) -> List[Tuple[str, int]]:
        """The ``top`` most-evaluated units, hottest first."""
        pairs = sorted(
            zip(self.unit_names, self.eval_counts),
            key=lambda nc: nc[1],
            reverse=True,
        )
        return [(n, c) for n, c in pairs[:top] if c > 0]

    # ------------------------------------------------------------- output
    def report(self, top: int = 10) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"backend          {self.backend}",
            f"cycles           {self.cycles}",
            f"channel fires    {self.fires}",
            f"unit evals       {self.total_evals}"
            f"  ({self.evals_per_cycle:.1f}/cycle)",
        ]
        if self.quiet_cycles:
            lines.append(f"quiet cycles     {self.quiet_cycles} (fast path)")
        lines.append(f"wall time        {self.wall_s * 1e3:.1f} ms")
        if self.wall_s > 0:
            lines.append(f"throughput       {self.cycles_per_sec:,.0f} cycles/s")
        phases = [
            ("comb settle", self.comb_s),
            ("fire scan", self.fire_s),
            ("tick", self.tick_s),
        ]
        accounted = sum(s for _, s in phases)
        phases.append(("other", max(0.0, self.wall_s - accounted)))
        for label, secs in phases:
            share = 100.0 * secs / self.wall_s if self.wall_s > 0 else 0.0
            lines.append(f"  {label:<12} {secs * 1e3:8.1f} ms  {share:5.1f}%")
        hot = self.hot_units(top)
        if hot:
            lines.append(f"hottest units (top {len(hot)}):")
            width = max(len(n) for n, _ in hot)
            for name, count in hot:
                per = count / self.cycles if self.cycles else 0.0
                lines.append(f"  {name:<{width}}  {count:>10}  {per:6.2f}/cycle")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "backend": self.backend,
            "cycles": self.cycles,
            "fires": self.fires,
            "total_evals": self.total_evals,
            "evals_per_cycle": self.evals_per_cycle,
            "quiet_cycles": self.quiet_cycles,
            "wall_s": self.wall_s,
            "comb_s": self.comb_s,
            "fire_s": self.fire_s,
            "tick_s": self.tick_s,
            "cycles_per_sec": self.cycles_per_sec,
            "hot_units": self.hot_units(),
        }
