"""Static handshake signal graph shared by the compiled backend and lint.

Every channel contributes two signal nodes: node ``2*cid`` is the channel's
forward signal (valid/data, driven by the producer) and node ``2*cid + 1``
is its backward signal (ready, driven by the consumer).  Each unit declares
through :meth:`~repro.circuit.unit.Unit.comb_deps` which observed signals
each of its driven signals combinationally depends on; registered paths
contribute no edges, which is what makes the graph acyclic in a legal
elastic circuit.

:class:`~repro.sim.compiled.CompiledEngine` levelizes this graph into its
static evaluation schedule; ``repro.lint`` walks the same graph to surface
combinational handshake cycles (rule ``ST005``) *before* anyone tries to
build an engine.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import CombinationalCycleError, SimulationError


@dataclass
class SignalGraph:
    """Handshake signal dependency graph of one circuit.

    ``units`` / ``slot_of`` / ``in_chs`` / ``out_chs`` capture the unit
    enumeration the graph was built against (deterministic: insertion
    order of ``circuit.units``); ``deps_of[node]`` lists the signal nodes
    that ``node`` combinationally depends on and ``driver[node]`` is the
    unit slot driving it (-1 for undriven nodes, e.g. id gaps left by
    rewrites).
    """

    nch: int
    units: List = field(default_factory=list)
    slot_of: Dict[str, int] = field(default_factory=dict)
    in_chs: List[List[int]] = field(default_factory=list)
    out_chs: List[List[int]] = field(default_factory=list)
    deps_of: List[List[int]] = field(default_factory=list)
    driver: List[int] = field(default_factory=list)

    @property
    def n_nodes(self) -> int:
        return 2 * self.nch


def build_signal_graph(circuit) -> SignalGraph:
    """Build the signal dependency graph for ``circuit``.

    Raises :class:`~repro.errors.SimulationError` when a unit's
    ``comb_deps()`` is malformed (wrong shape or invalid signal token).
    """
    nch = max((ch.cid for ch in circuit.channels), default=-1) + 1
    names = list(circuit.units)
    slot_of = {n: i for i, n in enumerate(names)}
    units = [circuit.units[n] for n in names]

    in_chs: List[List[int]] = []
    out_chs: List[List[int]] = []
    for u in units:
        in_chs.append([
            ch.cid if (ch := circuit.in_channel(u, i)) is not None else -1
            for i in range(u.n_in)
        ])
        out_chs.append([
            ch.cid if (ch := circuit.out_channel(u, i)) is not None else -1
            for i in range(u.n_out)
        ])

    n_nodes = 2 * nch
    deps_of: List[List[int]] = [[] for _ in range(n_nodes)]
    driver = [-1] * n_nodes

    def tok_node(s: int, tok) -> int:
        u = units[s]
        try:
            kind, j = tok
        except (TypeError, ValueError):
            kind, j = None, None
        if kind == "in" and 0 <= j < u.n_in:
            ch = in_chs[s][j]
            return 2 * ch if ch >= 0 else -1
        if kind == "out" and 0 <= j < u.n_out:
            ch = out_chs[s][j]
            return 2 * ch + 1 if ch >= 0 else -1
        raise SimulationError(
            f"{u.describe()}: comb_deps() returned invalid signal "
            f"token {tok!r}"
        )

    for s, u in enumerate(units):
        fwd, bwd = u.comb_deps()
        if len(fwd) != u.n_out or len(bwd) != u.n_in:
            raise SimulationError(
                f"{u.describe()}: comb_deps() shape mismatch "
                f"(got {len(fwd)} fwd / {len(bwd)} bwd for "
                f"{u.n_out} outputs / {u.n_in} inputs)"
            )
        for i, deps in enumerate(fwd):
            co = out_chs[s][i]
            if co < 0:
                continue
            node = 2 * co
            driver[node] = s
            deps_of[node] = [
                n for tok in deps if (n := tok_node(s, tok)) >= 0
            ]
        for i, deps in enumerate(bwd):
            ci = in_chs[s][i]
            if ci < 0:
                continue
            node = 2 * ci + 1
            driver[node] = s
            deps_of[node] = [
                n for tok in deps if (n := tok_node(s, tok)) >= 0
            ]

    return SignalGraph(
        nch=nch, units=units, slot_of=slot_of,
        in_chs=in_chs, out_chs=out_chs,
        deps_of=deps_of, driver=driver,
    )


def levelize(sg: SignalGraph):
    """Kahn topological levelization with longest-path ranks.

    Returns ``(rank, children, indeg, seen)``.  ``seen < sg.n_nodes``
    means a combinational cycle: the surviving nodes (``indeg[n] > 0``)
    are exactly the nodes on or downstream of a cycle.
    """
    n_nodes = sg.n_nodes
    deps_of = sg.deps_of
    children: List[List[int]] = [[] for _ in range(n_nodes)]
    indeg = [0] * n_nodes
    for node in range(n_nodes):
        for d in deps_of[node]:
            children[d].append(node)
            indeg[node] += 1
    rank = [0] * n_nodes
    q = deque(n for n in range(n_nodes) if indeg[n] == 0)
    seen = 0
    while q:
        n = q.popleft()
        seen += 1
        r1 = rank[n] + 1
        for m in children[n]:
            if rank[m] < r1:
                rank[m] = r1
            indeg[m] -= 1
            if indeg[m] == 0:
                q.append(m)
    return rank, children, indeg, seen


def signal_cycle_path(circuit, deps_of, indeg) -> List[str]:
    """Extract one combinational cycle from a failed levelization.

    Returns human-readable signal descriptions in dependency order
    (``["valid of a.out0 -> b.in0", ...]``).
    """
    by_cid = {ch.cid: ch for ch in circuit.channels}

    def describe(node: int) -> str:
        ch = by_cid[node >> 1]
        sig = "ready" if node & 1 else "valid"
        return f"{sig} of {ch.label()}"

    start = next(n for n in range(len(indeg)) if indeg[n] > 0)
    pos: Dict[int, int] = {}
    path: List[int] = []
    cur = start
    while cur not in pos:
        pos[cur] = len(path)
        path.append(cur)
        cur = next(d for d in deps_of[cur] if indeg[d] > 0)
    cycle = path[pos[cur]:]
    return [describe(n) for n in cycle]


def combinational_cycle_error(
    circuit, deps_of, indeg
) -> CombinationalCycleError:
    """Build the :class:`CombinationalCycleError` for a failed levelization."""
    lines = signal_cycle_path(circuit, deps_of, indeg)
    msg = (
        f"cannot compile a static schedule for circuit "
        f"{circuit.name!r}: combinational cycle through "
        f"{len(lines)} handshake signal(s):\n    "
        + "\n    -> depends on ".join(lines + [lines[0]])
        + "\n  insert a sequential element (e.g. an ElasticBuffer) on "
        "this path, or fix the offending unit's comb_deps()"
    )
    return CombinationalCycleError(msg, path=lines)


def find_combinational_cycle(circuit) -> Optional[List[str]]:
    """Return one combinational handshake cycle in ``circuit``, or None.

    The returned list holds the signal descriptions on the cycle, in
    dependency order — the same path :class:`CompiledEngine` would report
    through :class:`~repro.errors.CombinationalCycleError` at build time.
    """
    sg = build_signal_graph(circuit)
    _rank, _children, indeg, seen = levelize(sg)
    if seen == sg.n_nodes:
        return None
    return signal_cycle_path(circuit, sg.deps_of, indeg)


# ---------------------------------------------------------------------------
# Levelized schedule, memoized per circuit structure.
#
# Both static backends (compiled, codegen) start from the same derived data:
# the occurrence schedule, the per-signal activation lists and the clock-edge
# maps.  All of it is a pure function of the circuit *structure* — unit
# enumeration, per-unit ``comb_deps`` and channel connectivity — and none of
# it references unit objects, so identical-structure circuits (every rerun of
# the same (kernel, technique, style, scale) configuration) can share one
# schedule.  ``compile_schedule`` memoizes on :func:`structure_key` within
# the process, which removes re-levelization from sweep differential tests
# and repeated engine builds.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CircuitSchedule:
    """Index-level evaluation schedule shared by same-structure circuits.

    Holds no unit objects — only names, channel indices and activation
    tables — so one instance can safely back engines over *different*
    circuit instances with the same structure.
    """

    key: str
    nch: int
    names: Tuple[str, ...]
    in_chs: Tuple[Tuple[int, ...], ...]
    out_chs: Tuple[Tuple[int, ...], ...]
    cons_unit: Tuple[int, ...]
    prod_unit: Tuple[int, ...]
    n_ranks: int
    #: Occurrence k evaluates unit ``occ_units[k]``; ascending rank order.
    occ_units: Tuple[int, ...]
    occs_of_unit: Tuple[Tuple[int, ...], ...]
    #: Forward/backward activation lists: occurrence indices to activate
    #: when channel c's valid/data (resp. ready) signal changes.
    f_act: Tuple[Tuple[int, ...], ...]
    b_act: Tuple[Tuple[int, ...], ...]
    tickable: bytes
    has_quiescent: bytes
    #: Tickable unit slots adjacent to channel c (consumer then producer).
    tick_mark: Tuple[Tuple[int, ...], ...]

    @property
    def n_occ(self) -> int:
        return len(self.occ_units)

    @property
    def n_units(self) -> int:
        return len(self.names)


def structure_key(circuit) -> str:
    """Content hash of everything the static schedule depends on.

    Covers the unit enumeration (names and order), each unit's port counts,
    declared combinational dependencies, tick/quiescence capabilities, and
    the full channel connectivity.  Unit *parameters* that cannot change the
    schedule (buffer depths, operand constants, merge priorities) are
    deliberately excluded — they alter evaluation results, not evaluation
    order.
    """
    from ..circuit import Unit as _Unit

    h = hashlib.sha256()
    h.update(str(max((ch.cid for ch in circuit.channels), default=-1)).encode())
    for name in circuit.units:
        u = circuit.units[name]
        h.update(b"\0u")
        h.update(name.encode())
        h.update(
            f"|{type(u).__module__}.{type(u).__qualname__}"
            f"|{u.n_in}|{u.n_out}"
            f"|{int(u.needs_tick())}"
            f"|{int(type(u).quiescent is not _Unit.quiescent)}"
            f"|{u.comb_deps()!r}".encode()
        )
        for i in range(u.n_in):
            ch = circuit.in_channel(u, i)
            h.update(f"|i{ch.cid if ch is not None else -1}".encode())
        for i in range(u.n_out):
            ch = circuit.out_channel(u, i)
            h.update(f"|o{ch.cid if ch is not None else -1}".encode())
    return h.hexdigest()


#: Process-local schedule memo (small: one entry per distinct structure).
_SCHEDULE_CACHE: "OrderedDict[str, CircuitSchedule]" = OrderedDict()
_SCHEDULE_CACHE_MAX = 128


def compile_schedule(circuit) -> CircuitSchedule:
    """Levelize ``circuit`` into its static schedule (memoized).

    Raises :class:`~repro.errors.CombinationalCycleError` when the circuit
    has a combinational handshake cycle; failures are never cached.
    """
    key = structure_key(circuit)
    cached = _SCHEDULE_CACHE.get(key)
    if cached is not None:
        _SCHEDULE_CACHE.move_to_end(key)
        return cached

    sg = build_signal_graph(circuit)
    nch = sg.nch
    units = sg.units
    n_units = len(units)
    in_chs, out_chs = sg.in_chs, sg.out_chs
    n_nodes = sg.n_nodes
    driver = sg.driver

    cons_unit = [-1] * nch
    prod_unit = [-1] * nch
    for ch in circuit.channels:
        cons_unit[ch.cid] = sg.slot_of[ch.dst.unit]
        prod_unit[ch.cid] = sg.slot_of[ch.src.unit]

    rank, children, indeg, seen = levelize(sg)
    if seen != n_nodes:
        raise combinational_cycle_error(circuit, sg.deps_of, indeg)

    # One evaluation of unit u per distinct rank among its driven signals;
    # evaluating at rank r finalizes all signals of rank <= r.
    occ_ranks: List[List[int]] = []
    for s in range(n_units):
        driven = [2 * c for c in out_chs[s] if c >= 0]
        driven += [2 * c + 1 for c in in_chs[s] if c >= 0]
        occ_ranks.append(sorted({rank[n] for n in driven}))
    sched = sorted((r, s) for s in range(n_units) for r in occ_ranks[s])
    n_ranks = 1 + max((r for r, _ in sched), default=-1)
    occ_index = {(s, r): k for k, (r, s) in enumerate(sched)}
    occ_units = tuple(s for _, s in sched)
    occs_of_unit: List[List[int]] = [[] for _ in range(n_units)]
    for k, s in enumerate(occ_units):
        occs_of_unit[s].append(k)

    # Per-signal activation lists: a change of channel c's forward (resp.
    # backward) signal activates the occurrence that finalizes each signal
    # depending on it.  Dependents always have a strictly greater rank, so
    # in-pass activations only ever point forward.
    f_act: List[Tuple[int, ...]] = [()] * nch
    b_act: List[Tuple[int, ...]] = [()] * nch
    for node in range(n_nodes):
        kids = children[node]
        if not kids:
            continue
        acts = tuple(sorted({occ_index[(driver[m], rank[m])] for m in kids}))
        if node & 1:
            b_act[node >> 1] = acts
        else:
            f_act[node >> 1] = acts

    from ..circuit import Unit as _Unit

    tickable = bytes(1 if u.needs_tick() else 0 for u in units)
    has_quiescent = bytes(
        1 if type(u).quiescent is not _Unit.quiescent else 0 for u in units
    )
    tick_mark: List[Tuple[int, ...]] = []
    for c in range(nch):
        ms = []
        i = cons_unit[c]
        if i >= 0 and tickable[i]:
            ms.append(i)
        i = prod_unit[c]
        if i >= 0 and tickable[i] and i not in ms:
            ms.append(i)
        tick_mark.append(tuple(ms))

    schedule = CircuitSchedule(
        key=key,
        nch=nch,
        names=tuple(circuit.units),
        in_chs=tuple(tuple(cs) for cs in in_chs),
        out_chs=tuple(tuple(cs) for cs in out_chs),
        cons_unit=tuple(cons_unit),
        prod_unit=tuple(prod_unit),
        n_ranks=n_ranks,
        occ_units=occ_units,
        occs_of_unit=tuple(tuple(ks) for ks in occs_of_unit),
        f_act=tuple(f_act),
        b_act=tuple(b_act),
        tickable=tickable,
        has_quiescent=has_quiescent,
        tick_mark=tuple(tick_mark),
    )
    _SCHEDULE_CACHE[key] = schedule
    while len(_SCHEDULE_CACHE) > _SCHEDULE_CACHE_MAX:
        _SCHEDULE_CACHE.popitem(last=False)
    return schedule
