"""Static handshake signal graph shared by the compiled backend and lint.

Every channel contributes two signal nodes: node ``2*cid`` is the channel's
forward signal (valid/data, driven by the producer) and node ``2*cid + 1``
is its backward signal (ready, driven by the consumer).  Each unit declares
through :meth:`~repro.circuit.unit.Unit.comb_deps` which observed signals
each of its driven signals combinationally depends on; registered paths
contribute no edges, which is what makes the graph acyclic in a legal
elastic circuit.

:class:`~repro.sim.compiled.CompiledEngine` levelizes this graph into its
static evaluation schedule; ``repro.lint`` walks the same graph to surface
combinational handshake cycles (rule ``ST005``) *before* anyone tries to
build an engine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import CombinationalCycleError, SimulationError


@dataclass
class SignalGraph:
    """Handshake signal dependency graph of one circuit.

    ``units`` / ``slot_of`` / ``in_chs`` / ``out_chs`` capture the unit
    enumeration the graph was built against (deterministic: insertion
    order of ``circuit.units``); ``deps_of[node]`` lists the signal nodes
    that ``node`` combinationally depends on and ``driver[node]`` is the
    unit slot driving it (-1 for undriven nodes, e.g. id gaps left by
    rewrites).
    """

    nch: int
    units: List = field(default_factory=list)
    slot_of: Dict[str, int] = field(default_factory=dict)
    in_chs: List[List[int]] = field(default_factory=list)
    out_chs: List[List[int]] = field(default_factory=list)
    deps_of: List[List[int]] = field(default_factory=list)
    driver: List[int] = field(default_factory=list)

    @property
    def n_nodes(self) -> int:
        return 2 * self.nch


def build_signal_graph(circuit) -> SignalGraph:
    """Build the signal dependency graph for ``circuit``.

    Raises :class:`~repro.errors.SimulationError` when a unit's
    ``comb_deps()`` is malformed (wrong shape or invalid signal token).
    """
    nch = max((ch.cid for ch in circuit.channels), default=-1) + 1
    names = list(circuit.units)
    slot_of = {n: i for i, n in enumerate(names)}
    units = [circuit.units[n] for n in names]

    in_chs: List[List[int]] = []
    out_chs: List[List[int]] = []
    for u in units:
        in_chs.append([
            ch.cid if (ch := circuit.in_channel(u, i)) is not None else -1
            for i in range(u.n_in)
        ])
        out_chs.append([
            ch.cid if (ch := circuit.out_channel(u, i)) is not None else -1
            for i in range(u.n_out)
        ])

    n_nodes = 2 * nch
    deps_of: List[List[int]] = [[] for _ in range(n_nodes)]
    driver = [-1] * n_nodes

    def tok_node(s: int, tok) -> int:
        u = units[s]
        try:
            kind, j = tok
        except (TypeError, ValueError):
            kind, j = None, None
        if kind == "in" and 0 <= j < u.n_in:
            ch = in_chs[s][j]
            return 2 * ch if ch >= 0 else -1
        if kind == "out" and 0 <= j < u.n_out:
            ch = out_chs[s][j]
            return 2 * ch + 1 if ch >= 0 else -1
        raise SimulationError(
            f"{u.describe()}: comb_deps() returned invalid signal "
            f"token {tok!r}"
        )

    for s, u in enumerate(units):
        fwd, bwd = u.comb_deps()
        if len(fwd) != u.n_out or len(bwd) != u.n_in:
            raise SimulationError(
                f"{u.describe()}: comb_deps() shape mismatch "
                f"(got {len(fwd)} fwd / {len(bwd)} bwd for "
                f"{u.n_out} outputs / {u.n_in} inputs)"
            )
        for i, deps in enumerate(fwd):
            co = out_chs[s][i]
            if co < 0:
                continue
            node = 2 * co
            driver[node] = s
            deps_of[node] = [
                n for tok in deps if (n := tok_node(s, tok)) >= 0
            ]
        for i, deps in enumerate(bwd):
            ci = in_chs[s][i]
            if ci < 0:
                continue
            node = 2 * ci + 1
            driver[node] = s
            deps_of[node] = [
                n for tok in deps if (n := tok_node(s, tok)) >= 0
            ]

    return SignalGraph(
        nch=nch, units=units, slot_of=slot_of,
        in_chs=in_chs, out_chs=out_chs,
        deps_of=deps_of, driver=driver,
    )


def levelize(sg: SignalGraph):
    """Kahn topological levelization with longest-path ranks.

    Returns ``(rank, children, indeg, seen)``.  ``seen < sg.n_nodes``
    means a combinational cycle: the surviving nodes (``indeg[n] > 0``)
    are exactly the nodes on or downstream of a cycle.
    """
    n_nodes = sg.n_nodes
    deps_of = sg.deps_of
    children: List[List[int]] = [[] for _ in range(n_nodes)]
    indeg = [0] * n_nodes
    for node in range(n_nodes):
        for d in deps_of[node]:
            children[d].append(node)
            indeg[node] += 1
    rank = [0] * n_nodes
    q = deque(n for n in range(n_nodes) if indeg[n] == 0)
    seen = 0
    while q:
        n = q.popleft()
        seen += 1
        r1 = rank[n] + 1
        for m in children[n]:
            if rank[m] < r1:
                rank[m] = r1
            indeg[m] -= 1
            if indeg[m] == 0:
                q.append(m)
    return rank, children, indeg, seen


def signal_cycle_path(circuit, deps_of, indeg) -> List[str]:
    """Extract one combinational cycle from a failed levelization.

    Returns human-readable signal descriptions in dependency order
    (``["valid of a.out0 -> b.in0", ...]``).
    """
    by_cid = {ch.cid: ch for ch in circuit.channels}

    def describe(node: int) -> str:
        ch = by_cid[node >> 1]
        sig = "ready" if node & 1 else "valid"
        return f"{sig} of {ch.label()}"

    start = next(n for n in range(len(indeg)) if indeg[n] > 0)
    pos: Dict[int, int] = {}
    path: List[int] = []
    cur = start
    while cur not in pos:
        pos[cur] = len(path)
        path.append(cur)
        cur = next(d for d in deps_of[cur] if indeg[d] > 0)
    cycle = path[pos[cur]:]
    return [describe(n) for n in cycle]


def combinational_cycle_error(
    circuit, deps_of, indeg
) -> CombinationalCycleError:
    """Build the :class:`CombinationalCycleError` for a failed levelization."""
    lines = signal_cycle_path(circuit, deps_of, indeg)
    msg = (
        f"cannot compile a static schedule for circuit "
        f"{circuit.name!r}: combinational cycle through "
        f"{len(lines)} handshake signal(s):\n    "
        + "\n    -> depends on ".join(lines + [lines[0]])
        + "\n  insert a sequential element (e.g. an ElasticBuffer) on "
        "this path, or fix the offending unit's comb_deps()"
    )
    return CombinationalCycleError(msg, path=lines)


def find_combinational_cycle(circuit) -> Optional[List[str]]:
    """Return one combinational handshake cycle in ``circuit``, or None.

    The returned list holds the signal descriptions on the cycle, in
    dependency order — the same path :class:`CompiledEngine` would report
    through :class:`~repro.errors.CombinationalCycleError` at build time.
    """
    sg = build_signal_graph(circuit)
    _rank, _children, indeg, seen = levelize(sg)
    if seen == sg.n_nodes:
        return None
    return signal_cycle_path(circuit, sg.deps_of, indeg)
