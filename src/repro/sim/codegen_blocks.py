"""Per-unit-type source emitters for the codegen simulation backend.

Each emitter renders one unit's combinational evaluation (or clock-edge
transition) as straight-line Python statements over *local variables*:
channel ``c``'s forward signal lives in locals ``v{c}``/``d{c}``, its
backward signal in ``r{c}``, and occurrence ``k``'s activation flag in
``a{k}``.  The blocks are exact source-level transcriptions of the
specialized closures in :mod:`repro.sim.compiled` — same driven values,
same change-detection points, same activation semantics — with every
dynamic structure (activation lists, port index loops, priority orders)
unrolled into constants, so the hot loop runs no closure calls, no dict
dispatch and no attribute lookups on the fast path.

Clock-edge blocks run in two passes (see the compiled backend): the
``tk`` pass commits sequential state reading the cycle's pristine
fixpoint — no signal local is written during that pass, so ``fired`` of
channel ``c`` is simply ``(v{c} and r{c})`` and needs no storage — and
the ``pk`` pass recomputes the ticked unit's driven signals with the
usual change detection.  Pipelined units additionally report their carry
flag (can the unit progress without any channel firing?) into the
persistent local ``k{slot}``.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from ..circuit import (
    ArbiterMerge,
    Branch,
    Constant,
    CreditCounter,
    Demux,
    EagerFork,
    ElasticBuffer,
    Entry,
    FixedOrderMerge,
    FunctionalUnit,
    Join,
    LazyFork,
    LoadPort,
    Merge,
    Mux,
    Sequence,
    Sink,
    StorePort,
    TransparentFifo,
)


#: Members per group-activity flag.  The generated loop guards the
#: combinational section and the fire scan hierarchically: ``GROUP``
#: consecutive occurrences (channels) share one ``ga{g}`` (``fg{g}``)
#: flag, set here at every activation (signal write) site, so a fully
#: idle group costs one check instead of ``GROUP``.
GROUP = 8


def _acts(sched, node_acts) -> List[str]:
    """Activation stores for one signal change: static ``a{k} = 1`` lines
    plus the group-activity flags covering them."""
    lines = [f"ga{g} = 1" for g in sorted({k // GROUP for k in node_acts})]
    lines += [f"a{k} = 1" for k in node_acts]
    return lines


def _fire_flag(c) -> str:
    """Fire-scan group flag store for a write to channel ``c``'s signals."""
    return f"fg{c // GROUP} = 1"


def _fwd_change(sched, co, extra_cond=None) -> List[str]:
    """Standard forward-signal change detection for channel ``co``.

    Assumes the new value/data are in ``nv``/``nd``.
    """
    lines = [f"if v{co} != nv or d{co} != nd:"]
    lines += [f"    v{co} = nv", f"    d{co} = nd", f"    {_fire_flag(co)}"]
    lines += [f"    {s}" for s in _acts(sched, sched.f_act[co])]
    return lines


def _bwd_change(sched, ci) -> List[str]:
    """Standard backward-signal change detection for channel ``ci``.

    Assumes the new ready value is in ``nr``.
    """
    lines = [f"if r{ci} != nr:"]
    lines += [f"    r{ci} = nr", f"    {_fire_flag(ci)}"]
    lines += [f"    {s}" for s in _acts(sched, sched.b_act[ci])]
    return lines


def _miss_scan(chs) -> List[str]:
    """Unrolled count of not-valid inputs into ``miss``/``last``."""
    lines = ["miss = 0", "last = -1"]
    for i, c in enumerate(chs):
        lines += [f"if not v{c}:", "    miss += 1", f"    last = {i}"]
    return lines


def _fu_operands(s: int, u: FunctionalUnit, ics) -> str:
    """Operand-tuple expression for a plain or const-folded FU."""
    if not u.const_ops:
        return "(" + ", ".join(f"d{c}" for c in ics) + ("," if len(ics) == 1 else "") + ")"
    parts = []
    live = 0
    for slot in range(u.spec.n_in):
        if slot in u.const_ops:
            parts.append(f"uc{s}_{slot}")
        else:
            parts.append(f"d{ics[live]}")
            live += 1
    return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"


# ---------------------------------------------------------------------------
# Combinational evaluation blocks (one per occurrence of the unit).
# ---------------------------------------------------------------------------


def eval_elastic_buffer(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"q = u{s}._q"]
    lines += ["if q:", "    nv = 1", "    nd = q[0]",
              "else:", "    nv = 0", "    nd = None"]
    lines += _fwd_change(sched, co)
    lines += [f"nr = len(q) < {u.slots}"]
    lines += _bwd_change(sched, ci)
    return lines


def eval_transparent_fifo(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"q = u{s}._q"]
    lines += ["if q:", "    nv = 1", "    nd = q[0]",
              "else:", f"    nv = v{ci}",
              f"    nd = d{ci} if nv else None"]
    lines += _fwd_change(sched, co)
    lines += [f"nr = len(q) < {u.slots}"]
    lines += _bwd_change(sched, ci)
    return lines


def eval_credit_counter(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"nv = 1 if u{s}._count > 0 else 0"]
    lines += [f"if v{co} != nv:", f"    v{co} = nv",
              f"    {_fire_flag(co)}"]
    lines += [f"    {x}" for x in _acts(sched, sched.f_act[co])]
    lines += [f"if not r{ci}:", f"    r{ci} = 1", f"    {_fire_flag(ci)}"]
    lines += [f"    {x}" for x in _acts(sched, sched.b_act[ci])]
    return lines


def eval_entry(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    lines = [f"nv = 1 if u{s}._remaining > 0 else 0", f"nd = uv{s}"]
    lines += _fwd_change(sched, co)
    return lines


def eval_sequence(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    lines = [f"sv = u{s}.values", f"sp = u{s}._pos"]
    lines += ["if sp < len(sv):", "    nv = 1", "    nd = sv[sp]",
              "else:", "    nv = 0", "    nd = None"]
    lines += _fwd_change(sched, co)
    return lines


def eval_sink(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    lines = [f"if not r{ci}:", f"    r{ci} = 1", f"    {_fire_flag(ci)}"]
    lines += [f"    {x}" for x in _acts(sched, sched.b_act[ci])]
    return lines


def eval_constant(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"nv = v{ci}", f"nd = uv{s}"]
    lines += _fwd_change(sched, co)
    lines += [f"nr = r{co}"]
    lines += _bwd_change(sched, ci)
    return lines


def eval_eager_fork(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    lines = [f"iv = v{ci}", f"nd = d{ci} if iv else None",
             f"sent = u{s}._sent", "adone = True"]
    for i, co in enumerate(oc):
        lines += [f"nv = iv and not sent[{i}]"]
        lines += _fwd_change(sched, co)
        lines += [f"if not (sent[{i}] or r{co}):", "    adone = False"]
    lines += ["nr = adone"]
    lines += _bwd_change(sched, ci)
    return lines


def eval_lazy_fork(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    lines = [f"iv = v{ci}", f"nd = d{ci} if iv else None",
             "miss = 0", "last = -1"]
    for i, co in enumerate(oc):
        lines += [f"if not r{co}:", "    miss += 1", f"    last = {i}"]
    for i, co in enumerate(oc):
        lines += [
            f"nv = iv and (miss == 0 or (miss == 1 and last == {i}))"
        ]
        lines += _fwd_change(sched, co)
    lines += ["nr = miss == 0"]
    lines += _bwd_change(sched, ci)
    return lines


def eval_join(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    lines = _miss_scan(ic)
    if u.data_mode == "tuple":
        bundle = ic[: u.n_bundle]
        tup = ", ".join(f"d{c}" for c in bundle)
        if len(bundle) == 1:
            tup += ","
        data = f"({tup})"
    else:
        data = f"d{ic[0]}"
    lines += ["if miss == 0:", f"    nd = {data}", "    nv = 1",
              "else:", "    nd = None", "    nv = 0"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}"]
    for i, ci in enumerate(ic):
        lines += [
            f"nr = ordy and (miss == 0 or (miss == 1 and last == {i}))"
        ]
        lines += _bwd_change(sched, ci)
    return lines


def eval_merge(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    lines = []
    for i, c in enumerate(ic):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} v{c}:", f"    sel = {i}", "    nv = 1",
                  f"    nd = d{c}"]
    lines += ["else:", "    sel = -1", "    nv = 0", "    nd = None"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}"]
    for i, ci in enumerate(ic):
        lines += [f"nr = ordy and sel == {i}"]
        lines += _bwd_change(sched, ci)
    return lines


def eval_arbiter_merge(s, u, ic, oc, sched) -> List[str]:
    o0, o1 = oc
    lines = []
    for j, i in enumerate(u.priority):
        kw = "if" if j == 0 else "elif"
        lines += [f"{kw} v{ic[i]}:", f"    sel = {i}", f"    sd = d{ic[i]}"]
    lines += ["else:", "    sel = -1", "    sd = None"]
    lines += [f"ro0 = r{o0}", f"ro1 = r{o1}", "found = sel >= 0"]
    lines += ["nv = found and ro1", "nd = sd"]
    lines += _fwd_change(sched, o0)
    lines += ["nv = found and ro0", "nd = sel if found else None"]
    lines += _fwd_change(sched, o1)
    lines += ["g = ro0 and ro1"]
    for i, ci in enumerate(ic):
        lines += [f"nr = g and sel == {i}"]
        lines += _bwd_change(sched, ci)
    return lines


def _fom_signals(s, u, ic, oc, sched) -> List[str]:
    """Shared FixedOrderMerge output/ready recompute (eval and pk)."""
    o0, o1 = oc
    lines = [f"sel = u{s}.order[u{s}._pos]"]
    for i, c in enumerate(ic):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} sel == {i}:", f"    sv = v{c}", f"    sd = d{c}"]
    lines += ["else:", "    sv = 0", "    sd = None"]
    lines += [f"ro0 = r{o0}", f"ro1 = r{o1}"]
    lines += ["nv = sv and ro1", "nd = sd if sv else None"]
    lines += _fwd_change(sched, o0)
    lines += ["nv = sv and ro0", "nd = sel if sv else None"]
    lines += _fwd_change(sched, o1)
    lines += ["g = ro0 and ro1"]
    for i, ci in enumerate(ic):
        lines += [f"nr = g and sel == {i} and sv"]
        lines += _bwd_change(sched, ci)
    return lines


def eval_fixed_order_merge(s, u, ic, oc, sched) -> List[str]:
    return _fom_signals(s, u, ic, oc, sched)


def eval_mux(s, u, ic, oc, sched) -> List[str]:
    cs = ic[0]
    dchs = ic[1:]
    co = oc[0]
    nd = u.n_data
    lines = [f"sv = v{cs}", "sel = -1"]
    lines += ["if sv:", f"    sel = int(d{cs})",
              f"    if not 0 <= sel < {nd}:",
              "        raise CircuitError(",
              f"            \"mux {u.name!r}: select value %d out of range\""
              " % sel)"]
    lines += ["dv = False", "nd = None"]
    for i, c in enumerate(dchs):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} sel == {i}:", f"    dv = v{c}",
                  f"    nd = d{c} if dv else None"]
    lines += ["if dv:", "    nv = 1", "else:", "    nv = 0", "    nd = None"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}", "nr = ordy and dv"]
    lines += _bwd_change(sched, cs)
    for i, ci in enumerate(dchs):
        lines += [f"nr = ordy and sv and {i} == sel"]
        lines += _bwd_change(sched, ci)
    return lines


def eval_branch(s, u, ic, oc, sched) -> List[str]:
    cc, cd = ic
    ot, of_ = oc
    lines = [f"cv = v{cc}", f"dv = v{cd}", "both = cv and dv", "tgt = -1"]
    lines += ["if cv:", f"    tgt = 0 if d{cc} else 1"]
    lines += [f"nd = d{cd} if dv else None"]
    lines += ["nv = both and tgt == 0"]
    lines += _fwd_change(sched, ot)
    lines += ["nv = both and tgt == 1"]
    lines += _fwd_change(sched, of_)
    lines += ["if tgt == 0:", f"    tr = r{ot}",
              "elif tgt == 1:", f"    tr = r{of_}",
              "else:", "    tr = False"]
    lines += ["nr = dv and tr"]
    lines += _bwd_change(sched, cc)
    lines += ["nr = cv and tr"]
    lines += _bwd_change(sched, cd)
    return lines


def eval_demux(s, u, ic, oc, sched) -> List[str]:
    ci0, ci1 = ic
    n = u.n_out
    lines = [f"sv = v{ci0}", f"dv = v{ci1}", "both = sv and dv", "tgt = -1"]
    lines += ["if sv:", f"    tgt = int(d{ci0})",
              f"    if not 0 <= tgt < {n}:",
              "        raise CircuitError(",
              f"            \"demux {u.name!r}: index %d out of range\""
              " % tgt)"]
    lines += [f"nd = d{ci1} if dv else None"]
    for i, co in enumerate(oc):
        lines += [f"nv = both and tgt == {i}"]
        lines += _fwd_change(sched, co)
    for i, co in enumerate(oc):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} tgt == {i}:", f"    tr = r{co}"]
    lines += ["else:", "    tr = False"]
    lines += ["nr = dv and tr"]
    lines += _bwd_change(sched, ci0)
    lines += ["nr = sv and tr"]
    lines += _bwd_change(sched, ci1)
    return lines


def _fu_result(s, u, ic) -> str:
    """Expression computing the FU result from the data locals."""
    if u.bundled:
        return f"cp{s}(_t if isinstance(_t, tuple) else (_t,))"
    return f"cp{s}({_fu_operands(s, u, ic)})"


def eval_functional(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    if u.latency == 0:
        lines = _miss_scan(ic)
        lines += ["if miss == 0:", "    nv = 1"]
        if u.bundled:
            lines += [f"    _t = d{ic[0]}"]
        lines += [f"    nd = {_fu_result(s, u, ic)}"]
        lines += ["else:", "    nv = 0", "    nd = None"]
        lines += _fwd_change(sched, co)
        lines += [f"ordy = r{co}"]
        for i, ci in enumerate(ic):
            lines += [
                f"nr = ordy and (miss == 0 or (miss == 1 and last == {i}))"
            ]
            lines += _bwd_change(sched, ci)
        return lines

    lines = [f"head = u{s}._pipe[-1]"]
    lines += ["if head is not None:", "    nv = 1", "    nd = head[0]",
              f"    adv = r{co}",
              "else:", "    nv = 0", "    nd = None", "    adv = True"]
    lines += _fwd_change(sched, co)
    lines += _miss_scan(ic)
    for i, ci in enumerate(ic):
        lines += [
            f"nr = adv and (miss == 0 or (miss == 1 and last == {i}))"
        ]
        lines += _bwd_change(sched, ci)
    return lines


def eval_load_port(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"head = u{s}._pipe[-1]"]
    lines += ["if head is not None:", "    nv = 1", "    nd = head[0]",
              f"    nr = r{co}",
              "else:", "    nv = 0", "    nd = None", "    nr = True"]
    lines += _fwd_change(sched, co)
    lines += _bwd_change(sched, ci)
    return lines


def eval_store_port(s, u, ic, oc, sched) -> List[str]:
    ca, cd = ic
    co = oc[0]
    lines = [f"head = u{s}._pipe[-1]"]
    lines += ["if head is not None:", "    nv = 1", f"    adv = r{co}",
              "else:", "    nv = 0", "    adv = True"]
    lines += [f"if v{co} != nv or d{co} is not None:",
              f"    v{co} = nv", f"    d{co} = None", f"    {_fire_flag(co)}"]
    lines += [f"    {x}" for x in _acts(sched, sched.f_act[co])]
    lines += [f"av = v{ca}", f"dv = v{cd}"]
    lines += ["nr = adv and dv"]
    lines += _bwd_change(sched, ca)
    lines += ["nr = adv and av"]
    lines += _bwd_change(sched, cd)
    return lines


# ---------------------------------------------------------------------------
# Clock-edge blocks.  ``tk`` commits state against the pristine fixpoint
# (channel c fired iff ``v{c} and r{c}``; no signal local is written in
# this pass); ``pk`` recomputes the unit's driven signals and, for
# pipelined units, refreshes the persistent carry flag ``k{slot}``.
# ---------------------------------------------------------------------------


def tick_elastic_buffer(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    return [
        f"q = u{s}._q",
        f"if v{co} and r{co}:",
        "    q.popleft()",
        f"if v{ci} and r{ci}:",
        f"    q.append(d{ci})",
    ]


def tick_transparent_fifo(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    return [
        f"q = u{s}._q",
        "if q:",
        f"    if v{co} and r{co}:",
        "        q.popleft()",
        f"    if v{ci} and r{ci}:",
        f"        q.append(d{ci})",
        f"elif (v{ci} and r{ci}) and not (v{co} and r{co}):",
        f"    q.append(d{ci})",
    ]


def tick_credit_counter(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    initial = u.initial
    return [
        f"c_ = u{s}._count",
        f"if v{co} and r{co}:",
        "    c_ -= 1",
        f"if v{ci} and r{ci}:",
        "    c_ += 1",
        f"u{s}._count = c_",
        f"if not 0 <= c_ <= {initial}:",
        "    raise CircuitError(",
        f"        \"credit counter {u.name!r}: count %d escaped \"",
        f"        \"[0, {initial}] -- more credits returned than granted\""
        " % c_)",
    ]


def tick_entry(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    return [f"if v{co} and r{co}:", f"    u{s}._remaining -= 1"]


def tick_sequence(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    return [f"if v{co} and r{co}:", f"    u{s}._pos += 1"]


def tick_sink(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    return [f"if v{ci} and r{ci}:", f"    u{s}.received.append(d{ci})"]


def tick_eager_fork(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    lines = [f"sent = u{s}._sent", f"if v{ci} and r{ci}:"]
    lines += [f"    sent[{i}] = False" for i in range(u.n_out)]
    lines += ["else:"]
    for i, co in enumerate(oc):
        lines += [f"    if v{co} and r{co}:", f"        sent[{i}] = True"]
    return lines


def tick_fixed_order_merge(s, u, ic, oc, sched) -> List[str]:
    lines = [f"order = u{s}.order", f"sel = order[u{s}._pos]"]
    for i, c in enumerate(ic):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} sel == {i}:", f"    fsel = v{c} and r{c}"]
    lines += ["else:", "    fsel = False"]
    lines += ["if fsel:", f"    u{s}._pos = (u{s}._pos + 1) % len(order)"]
    return lines


def _pipe_shift(s, u, ic, oc, sched, new_lines) -> List[str]:
    """Shared stall-or-shift skeleton for pipelined units.

    ``new_lines`` computes ``new`` from the fired input(s); the shift
    rebinds ``_pipe`` exactly like the other two backends do.
    """
    co = oc[0]
    lines = [f"pipe = u{s}._pipe"]
    lines += [f"if pipe[-1] is not None and not (v{co} and r{co}):",
              f"    adv{s} = 0",
              "else:",
              f"    adv{s} = 1"]
    lines += [f"    {x}" for x in new_lines]
    lines += [f"    u{s}._pipe = [new] + pipe[:-1]"]
    return lines


def tick_functional(s, u, ic, oc, sched) -> List[str]:
    ci0 = ic[0]
    if u.bundled:
        new_lines = [
            f"if v{ci0} and r{ci0}:",
            f"    _t = d{ci0}",
            f"    new = ({_fu_result(s, u, ic)},)",
            "else:",
            "    new = None",
        ]
    else:
        new_lines = [
            f"if v{ci0} and r{ci0}:",
            f"    new = ({_fu_result(s, u, ic)},)",
            "else:",
            "    new = None",
        ]
    return _pipe_shift(s, u, ic, oc, sched, new_lines)


def tick_load_port(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    new_lines = [
        f"if v{ci} and r{ci}:",
        f"    new = (mrd({u.array!r}, int(d{ci})),)",
        "else:",
        "    new = None",
    ]
    return _pipe_shift(s, u, ic, oc, sched, new_lines)


def tick_store_port(s, u, ic, oc, sched) -> List[str]:
    ca, cd = ic
    new_lines = [
        f"if v{ca} and r{ca}:",
        f"    mwr({u.array!r}, int(d{ca}), d{cd})",
        "    new = True",
        "else:",
        "    new = None",
    ]
    return _pipe_shift(s, u, ic, oc, sched, new_lines)


def _carry_refresh(s) -> List[str]:
    """Post-recompute carry flag refresh for a pipelined unit."""
    return [
        f"if u{s}._pipe[-1] is not None:",
        f"    k{s} = 0",
        "else:",
        f"    k{s} = 0",
        f"    for st_ in u{s}._pipe:",
        "        if st_ is not None:",
        f"            k{s} = 1",
        "            break",
    ]


def post_elastic_buffer(s, u, ic, oc, sched) -> List[str]:
    return eval_elastic_buffer(s, u, ic, oc, sched)


def post_transparent_fifo(s, u, ic, oc, sched) -> List[str]:
    return eval_transparent_fifo(s, u, ic, oc, sched)


def post_credit_counter(s, u, ic, oc, sched) -> List[str]:
    return eval_credit_counter(s, u, ic, oc, sched)


def post_entry(s, u, ic, oc, sched) -> List[str]:
    return eval_entry(s, u, ic, oc, sched)


def post_sequence(s, u, ic, oc, sched) -> List[str]:
    return eval_sequence(s, u, ic, oc, sched)


def post_sink(s, u, ic, oc, sched) -> List[str]:
    return eval_sink(s, u, ic, oc, sched)


def post_eager_fork(s, u, ic, oc, sched) -> List[str]:
    return eval_eager_fork(s, u, ic, oc, sched)


def post_fixed_order_merge(s, u, ic, oc, sched) -> List[str]:
    return _fom_signals(s, u, ic, oc, sched)


def _stall_guarded(s, body) -> List[str]:
    """Skip the recompute when the apply pass stalled (head blocked)."""
    lines = [f"if adv{s}:"]
    lines += [f"    {x}" for x in body]
    lines += ["else:", f"    k{s} = 0"]
    return lines


def post_functional(s, u, ic, oc, sched) -> List[str]:
    body = eval_functional(s, u, ic, oc, sched) + _carry_refresh(s)
    return _stall_guarded(s, body)


def post_load_port(s, u, ic, oc, sched) -> List[str]:
    body = eval_load_port(s, u, ic, oc, sched) + _carry_refresh(s)
    return _stall_guarded(s, body)


def post_store_port(s, u, ic, oc, sched) -> List[str]:
    body = eval_store_port(s, u, ic, oc, sched) + _carry_refresh(s)
    return _stall_guarded(s, body)


# ---------------------------------------------------------------------------
# Laned (batched) block variants.
#
# The lane-parallel generator (``generate_source(..., lanes=True)``) keeps
# every *control* signal scalar — one shared valid/ready bit per channel,
# exactly as above — and widens only the *data* signals: a valid channel's
# ``d{c}`` local holds a tuple of ``LB`` per-lane values (lane index =
# dataset), an invalid channel's stays ``None``.  Under the lockstep
# assumption (all lanes make the same control decisions every cycle) the
# scalar emitters above are already lane-correct for every unit whose
# logic only moves data around: queues hold lane tuples, change detection
# compares them, sinks append them.  Only four kinds of sites need laned
# overrides, collected here:
#
# * **data entering control** (Branch condition, Mux/Demux select): the
#   per-lane values must agree in effect; a disagreement raises
#   :class:`~repro.errors.LaneDivergence`, which the batched engine turns
#   into a bit-exact per-lane scalar re-execution.
# * **scalar data sources** (Sequence values, ArbiterMerge/FixedOrderMerge
#   select outputs): broadcast to lane tuples via constants prepared in
#   the generated prologue (``usq{s}``/``lsel{s}``; ``uv{s}`` is simply
#   *bound* as a tuple, so Entry/Constant reuse the scalar emitters).
# * **per-lane computation** (FunctionalUnit results, LoadPort reads,
#   StorePort writes): mapped across the lane tuples, with loads/stores
#   dispatched through the per-lane ``mrd``/``mwr`` method lists.
# * **tuple-mode Join**: per-lane operand bundles are ``zip``s of the
#   input lane tuples.
# ---------------------------------------------------------------------------


def _lane_fu_compute(s, u, ic) -> List[str]:
    """Statements leaving the per-lane FU results tuple in ``nd``."""
    if u.bundled:
        return [
            f"nd = tuple(cp{s}(_t if isinstance(_t, tuple) else (_t,))"
            f" for _t in d{ic[0]})"
        ]
    if not u.const_ops:
        args = ", ".join(f"d{c}" for c in ic)
        return [f"nd = tuple(map(cp{s}, zip({args})))"]
    parts = []
    live = 0
    for slot in range(u.spec.n_in):
        if slot in u.const_ops:
            parts.append(f"uc{s}_{slot}")
        else:
            parts.append(f"_o[{live}]")
            live += 1
    tup = ", ".join(parts) + ("," if len(parts) == 1 else "")
    if live == 0:
        return [f"_r = cp{s}(({tup}))", "nd = (_r,) * LB"]
    args = ", ".join(f"d{c}" for c in ic)
    return [f"nd = tuple(cp{s}(({tup})) for _o in zip({args}))"]


def lane_eval_sequence(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    lines = [f"sv = usq{s}", f"sp = u{s}._pos"]
    lines += ["if sp < len(sv):", "    nv = 1", "    nd = sv[sp]",
              "else:", "    nv = 0", "    nd = None"]
    lines += _fwd_change(sched, co)
    return lines


def lane_eval_join(s, u, ic, oc, sched) -> List[str]:
    if u.data_mode != "tuple":
        return eval_join(s, u, ic, oc, sched)
    co = oc[0]
    lines = _miss_scan(ic)
    bundle = ic[: u.n_bundle]
    args = ", ".join(f"d{c}" for c in bundle)
    lines += ["if miss == 0:", f"    nd = tuple(zip({args}))", "    nv = 1",
              "else:", "    nd = None", "    nv = 0"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}"]
    for i, ci in enumerate(ic):
        lines += [
            f"nr = ordy and (miss == 0 or (miss == 1 and last == {i}))"
        ]
        lines += _bwd_change(sched, ci)
    return lines


def lane_eval_arbiter_merge(s, u, ic, oc, sched) -> List[str]:
    o0, o1 = oc
    lines = []
    for j, i in enumerate(u.priority):
        kw = "if" if j == 0 else "elif"
        lines += [f"{kw} v{ic[i]}:", f"    sel = {i}", f"    sd = d{ic[i]}"]
    lines += ["else:", "    sel = -1", "    sd = None"]
    lines += [f"ro0 = r{o0}", f"ro1 = r{o1}", "found = sel >= 0"]
    lines += ["nv = found and ro1", "nd = sd"]
    lines += _fwd_change(sched, o0)
    lines += ["nv = found and ro0", f"nd = lsel{s}[sel] if found else None"]
    lines += _fwd_change(sched, o1)
    lines += ["g = ro0 and ro1"]
    for i, ci in enumerate(ic):
        lines += [f"nr = g and sel == {i}"]
        lines += _bwd_change(sched, ci)
    return lines


def _lane_fom_signals(s, u, ic, oc, sched) -> List[str]:
    o0, o1 = oc
    lines = [f"sel = u{s}.order[u{s}._pos]"]
    for i, c in enumerate(ic):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} sel == {i}:", f"    sv = v{c}", f"    sd = d{c}"]
    lines += ["else:", "    sv = 0", "    sd = None"]
    lines += [f"ro0 = r{o0}", f"ro1 = r{o1}"]
    lines += ["nv = sv and ro1", "nd = sd if sv else None"]
    lines += _fwd_change(sched, o0)
    lines += ["nv = sv and ro0", f"nd = lsel{s}[sel] if sv else None"]
    lines += _fwd_change(sched, o1)
    lines += ["g = ro0 and ro1"]
    for i, ci in enumerate(ic):
        lines += [f"nr = g and sel == {i} and sv"]
        lines += _bwd_change(sched, ci)
    return lines


def lane_eval_fixed_order_merge(s, u, ic, oc, sched) -> List[str]:
    return _lane_fom_signals(s, u, ic, oc, sched)


def lane_eval_mux(s, u, ic, oc, sched) -> List[str]:
    cs = ic[0]
    dchs = ic[1:]
    co = oc[0]
    n = u.n_data
    lines = [f"sv = v{cs}", "sel = -1"]
    lines += [
        "if sv:",
        f"    _x = d{cs}",
        "    sel = int(_x[0])",
        # Fast path: one C-speed scan when all lanes carry the same
        # object/value (the overwhelmingly common lockstep case).
        "    if _x.count(_x[0]) != len(_x):",
        "        for _y in _x:",
        "            if int(_y) != sel:",
        f"                raise LaneDivergence({u.name + '.sel'!r}, _x)",
        f"    if not 0 <= sel < {n}:",
        "        raise CircuitError(",
        f"            \"mux {u.name!r}: select value %d out of range\""
        " % sel)",
    ]
    lines += ["dv = False", "nd = None"]
    for i, c in enumerate(dchs):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} sel == {i}:", f"    dv = v{c}",
                  f"    nd = d{c} if dv else None"]
    lines += ["if dv:", "    nv = 1", "else:", "    nv = 0", "    nd = None"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}", "nr = ordy and dv"]
    lines += _bwd_change(sched, cs)
    for i, ci in enumerate(dchs):
        lines += [f"nr = ordy and sv and {i} == sel"]
        lines += _bwd_change(sched, ci)
    return lines


def lane_eval_branch(s, u, ic, oc, sched) -> List[str]:
    cc, cd = ic
    ot, of_ = oc
    lines = [f"cv = v{cc}", f"dv = v{cd}", "both = cv and dv", "tgt = -1"]
    lines += [
        "if cv:",
        f"    _x = d{cc}",
        "    if _x[0]:",
        "        tgt = 0",
        "        if not all(_x):",
        f"            raise LaneDivergence({u.name + '.cond'!r}, _x)",
        "    else:",
        "        tgt = 1",
        "        if any(_x):",
        f"            raise LaneDivergence({u.name + '.cond'!r}, _x)",
    ]
    lines += [f"nd = d{cd} if dv else None"]
    lines += ["nv = both and tgt == 0"]
    lines += _fwd_change(sched, ot)
    lines += ["nv = both and tgt == 1"]
    lines += _fwd_change(sched, of_)
    lines += ["if tgt == 0:", f"    tr = r{ot}",
              "elif tgt == 1:", f"    tr = r{of_}",
              "else:", "    tr = False"]
    lines += ["nr = dv and tr"]
    lines += _bwd_change(sched, cc)
    lines += ["nr = cv and tr"]
    lines += _bwd_change(sched, cd)
    return lines


def lane_eval_demux(s, u, ic, oc, sched) -> List[str]:
    ci0, ci1 = ic
    n = u.n_out
    lines = [f"sv = v{ci0}", f"dv = v{ci1}", "both = sv and dv", "tgt = -1"]
    lines += [
        "if sv:",
        f"    _x = d{ci0}",
        "    tgt = int(_x[0])",
        "    if _x.count(_x[0]) != len(_x):",
        "        for _y in _x:",
        "            if int(_y) != tgt:",
        f"                raise LaneDivergence({u.name + '.index'!r}, _x)",
        f"    if not 0 <= tgt < {n}:",
        "        raise CircuitError(",
        f"            \"demux {u.name!r}: index %d out of range\""
        " % tgt)",
    ]
    lines += [f"nd = d{ci1} if dv else None"]
    for i, co in enumerate(oc):
        lines += [f"nv = both and tgt == {i}"]
        lines += _fwd_change(sched, co)
    for i, co in enumerate(oc):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} tgt == {i}:", f"    tr = r{co}"]
    lines += ["else:", "    tr = False"]
    lines += ["nr = dv and tr"]
    lines += _bwd_change(sched, ci0)
    lines += ["nr = sv and tr"]
    lines += _bwd_change(sched, ci1)
    return lines


def lane_eval_functional(s, u, ic, oc, sched) -> List[str]:
    if u.latency != 0:
        # Pipelined eval only moves the head tuple around: lane-agnostic.
        return eval_functional(s, u, ic, oc, sched)
    co = oc[0]
    lines = _miss_scan(ic)
    lines += ["if miss == 0:", "    nv = 1"]
    lines += ["    " + x for x in _lane_fu_compute(s, u, ic)]
    lines += ["else:", "    nv = 0", "    nd = None"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}"]
    for i, ci in enumerate(ic):
        lines += [
            f"nr = ordy and (miss == 0 or (miss == 1 and last == {i}))"
        ]
        lines += _bwd_change(sched, ci)
    return lines


def lane_tick_functional(s, u, ic, oc, sched) -> List[str]:
    ci0 = ic[0]
    new_lines = [f"if v{ci0} and r{ci0}:"]
    new_lines += ["    " + x for x in _lane_fu_compute(s, u, ic)]
    new_lines += ["    new = (nd,)", "else:", "    new = None"]
    return _pipe_shift(s, u, ic, oc, sched, new_lines)


def lane_tick_load_port(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    new_lines = [
        f"if v{ci} and r{ci}:",
        f"    new = (tuple(_f({u.array!r}, int(_a))"
        f" for _f, _a in zip(mrd, d{ci})),)",
        "else:",
        "    new = None",
    ]
    return _pipe_shift(s, u, ic, oc, sched, new_lines)


def lane_tick_store_port(s, u, ic, oc, sched) -> List[str]:
    ca, cd = ic
    new_lines = [
        f"if v{ca} and r{ca}:",
        f"    for _f, _a, _x in zip(mwr, d{ca}, d{cd}):",
        f"        _f({u.array!r}, int(_a), _x)",
        "    new = True",
        "else:",
        "    new = None",
    ]
    return _pipe_shift(s, u, ic, oc, sched, new_lines)


def lane_post_fixed_order_merge(s, u, ic, oc, sched) -> List[str]:
    return _lane_fom_signals(s, u, ic, oc, sched)


def lane_post_functional(s, u, ic, oc, sched) -> List[str]:
    body = lane_eval_functional(s, u, ic, oc, sched) + _carry_refresh(s)
    return _stall_guarded(s, body)


#: Combinational block emitters by catalogue type.
EVAL_BLOCKS = {
    ElasticBuffer: eval_elastic_buffer,
    TransparentFifo: eval_transparent_fifo,
    CreditCounter: eval_credit_counter,
    Entry: eval_entry,
    Sequence: eval_sequence,
    Sink: eval_sink,
    Constant: eval_constant,
    EagerFork: eval_eager_fork,
    LazyFork: eval_lazy_fork,
    Join: eval_join,
    Merge: eval_merge,
    ArbiterMerge: eval_arbiter_merge,
    FixedOrderMerge: eval_fixed_order_merge,
    Mux: eval_mux,
    Branch: eval_branch,
    Demux: eval_demux,
    FunctionalUnit: eval_functional,
    LoadPort: eval_load_port,
    StorePort: eval_store_port,
}

#: Clock-edge (apply, post) block emitters by catalogue type.
TICK_BLOCKS = {
    ElasticBuffer: (tick_elastic_buffer, post_elastic_buffer),
    TransparentFifo: (tick_transparent_fifo, post_transparent_fifo),
    CreditCounter: (tick_credit_counter, post_credit_counter),
    Entry: (tick_entry, post_entry),
    Sequence: (tick_sequence, post_sequence),
    Sink: (tick_sink, post_sink),
    EagerFork: (tick_eager_fork, post_eager_fork),
    FixedOrderMerge: (tick_fixed_order_merge, post_fixed_order_merge),
    FunctionalUnit: (tick_functional, post_functional),
    LoadPort: (tick_load_port, post_load_port),
    StorePort: (tick_store_port, post_store_port),
}

#: Pipelined types whose post pass maintains a carry flag ``k{slot}``.
CARRY_TYPES = (FunctionalUnit, LoadPort, StorePort)

#: Laned combinational emitters: scalar blocks are lane-correct for every
#: type not overridden here (control stays scalar; data tuples flow
#: through unchanged).
LANE_EVAL_BLOCKS = dict(EVAL_BLOCKS)
LANE_EVAL_BLOCKS.update({
    Sequence: lane_eval_sequence,
    Join: lane_eval_join,
    ArbiterMerge: lane_eval_arbiter_merge,
    FixedOrderMerge: lane_eval_fixed_order_merge,
    Mux: lane_eval_mux,
    Branch: lane_eval_branch,
    Demux: lane_eval_demux,
    FunctionalUnit: lane_eval_functional,
})

#: Laned clock-edge (apply, post) emitters.  Sequence needs its post
#: overridden too: the scalar post re-reads ``u.values`` (scalar data)
#: where the laned comb pass reads the broadcast ``usq`` tuples.
LANE_TICK_BLOCKS = dict(TICK_BLOCKS)
LANE_TICK_BLOCKS.update({
    Sequence: (tick_sequence, lane_eval_sequence),
    FixedOrderMerge: (tick_fixed_order_merge, lane_post_fixed_order_merge),
    FunctionalUnit: (lane_tick_functional, lane_post_functional),
    LoadPort: (lane_tick_load_port, post_load_port),
    StorePort: (lane_tick_store_port, post_store_port),
})


# ---------------------------------------------------------------------------
# Mask-lane (MIMD) block variants.
#
# After the first data→control divergence the batched engine *promotes*
# the whole pass from lockstep to mask mode (``make_mask_loop`` in the
# same generated module) instead of falling back to scalar.  The signal
# representation changes:
#
# * every 1-bit control signal — ``v{c}``, ``r{c}``, fire bits — becomes
#   a **lane bitmask integer** (bit ``l`` = lane ``l``), so control
#   algebra is pure bitwise arithmetic on big ints (``nv = va & vb``,
#   ``sf = (sf | fired) & ~fi``, ...);
# * every data local is **always** a full-width lane tuple (``ztup``,
#   a shared ``(None,) * LB``, stands in where no lane is valid); a
#   lane's slot is meaningful only where the channel's valid bit is set;
# * per-unit sequential state is **per lane**: queues are lists of
#   ``LB`` deques, counters lists of ``LB`` ints, pipelines lists of
#   ``LB`` stage lists — held in per-slot dicts (``rt._mstate``) built
#   by :func:`mask_state` at promotion, with derived occupancy *masks*
#   (``qn``/``qf``/``cz``/``env``/``sqv``/``hv``/``kc``/``sf``/``fs``)
#   maintained incrementally so the combinational pass stays bitwise;
# * clock-edge blocks iterate **set bits only** (``_b = _m & -_m``), so
#   per-cycle data work is proportional to the lanes that actually
#   fired, and everything is gated by the ``live`` mask — a lane whose
#   ``done`` predicate held has its bit cleared and coasts with frozen
#   state instead of aborting the batch.
#
# Exactness: in any lane ``l``, the projections of these masks/tuples
# evolve exactly like the scalar engine's signals on that lane's inputs
# (each emitter is the scalar emitter's logic applied lane-wise), so a
# mask-mode batch is bit-identical to B scalar runs — including after a
# mid-cycle promotion, because the combinational pass never mutates unit
# state and re-arming every activation flag recomputes the fixpoint from
# scratch, exactly like engine initialization does.
# ---------------------------------------------------------------------------


def _bitloop(mask_expr: str, body: List[str]) -> List[str]:
    """Iterate the set bits of ``mask_expr``: ``_b`` = bit, ``_i`` = lane."""
    lines = [f"_m = {mask_expr}", "while _m:",
             "    _b = _m & -_m", "    _m &= _m - 1",
             "    _i = _b.bit_length() - 1"]
    lines += ["    " + x for x in body]
    return lines


def _blend_fill(sources) -> List[str]:
    """Fill the preallocated ``_l`` list per (mask_expr, lane_expr)."""
    lines: List[str] = []
    for mask, expr in sources:
        lines += _bitloop(mask, [f"_l[_i] = {expr}"])
    return lines


def _mand(exprs) -> str:
    """Bitwise-AND expression over ``exprs`` (``FULL`` when empty)."""
    return " & ".join(exprs) if exprs else "FULL"


def mask_eval_elastic_buffer(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"nv = qn{s}", f"nd = tuple(qh{s}) if nv else ztup"]
    lines += _fwd_change(sched, co)
    lines += [f"nr = FULL & ~qf{s}"]
    lines += _bwd_change(sched, ci)
    return lines


def mask_eval_transparent_fifo(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"_qn = qn{s}", f"nv = _qn | (v{ci} & ~_qn)"]
    # Partial-occupancy blend: start from the denser side (C-speed list
    # copy) and patch only the sparse side's lanes, instead of a
    # per-lane conditional over all LB lanes.
    lines += ["if _qn == 0:", f"    nd = d{ci} if nv else ztup",
              "elif _qn == FULL:", f"    nd = tuple(qh{s})",
              "else:",
              f"    _dc = d{ci}", f"    _qh = qh{s}",
              "    _em = FULL & ~_qn",
              "    if _em.bit_count() <= _qn.bit_count():",
              "        _l = list(_qh)"]
    lines += ["        " + x for x in _bitloop("_em", ["_l[_i] = _dc[_i]"])]
    lines += ["    else:",
              "        _l = list(_dc)"]
    lines += ["        " + x for x in _bitloop("_qn", ["_l[_i] = _qh[_i]"])]
    lines += ["    nd = tuple(_l)"]
    lines += _fwd_change(sched, co)
    lines += [f"nr = FULL & ~qf{s}"]
    lines += _bwd_change(sched, ci)
    return lines


def mask_eval_credit_counter(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"nv = cz{s}"]
    lines += [f"if v{co} != nv:", f"    v{co} = nv", f"    {_fire_flag(co)}"]
    lines += [f"    {x}" for x in _acts(sched, sched.f_act[co])]
    lines += [f"if r{ci} != FULL:", f"    r{ci} = FULL",
              f"    {_fire_flag(ci)}"]
    lines += [f"    {x}" for x in _acts(sched, sched.b_act[ci])]
    return lines


def mask_eval_entry(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    lines = [f"nv = env{s}", f"nd = uv{s}"]
    lines += _fwd_change(sched, co)
    return lines


def mask_eval_sequence(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    lines = [f"nv = sqv{s}", f"nd = tuple(sqh{s}) if nv else ztup"]
    lines += _fwd_change(sched, co)
    return lines


def mask_eval_sink(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    lines = [f"if r{ci} != FULL:", f"    r{ci} = FULL",
             f"    {_fire_flag(ci)}"]
    lines += [f"    {x}" for x in _acts(sched, sched.b_act[ci])]
    return lines


def mask_eval_constant(s, u, ic, oc, sched) -> List[str]:
    # Pure mask pass-through: the scalar emitter's statements are already
    # lane-exact when v/r are masks and ``uv`` is a broadcast tuple.
    return eval_constant(s, u, ic, oc, sched)


def mask_eval_eager_fork(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    lines = [f"iv = v{ci}", f"nd = d{ci}"]
    for i, co in enumerate(oc):
        lines += [f"nv = iv & ~sf{s}_{i}"]
        lines += _fwd_change(sched, co)
    terms = " & ".join(f"(sf{s}_{i} | r{co})" for i, co in enumerate(oc))
    lines += [f"nr = {terms}"]
    lines += _bwd_change(sched, ci)
    return lines


def mask_eval_lazy_fork(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    lines = [f"iv = v{ci}", f"nd = d{ci}"]
    for i, co in enumerate(oc):
        others = _mand([f"r{c2}" for j, c2 in enumerate(oc) if j != i])
        lines += [f"nv = iv & {others}"]
        lines += _fwd_change(sched, co)
    lines += [f"nr = {_mand([f'r{c2}' for c2 in oc])}"]
    lines += _bwd_change(sched, ci)
    return lines


def mask_eval_join(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    lines = [f"av = {_mand([f'v{c}' for c in ic])}"]
    if u.data_mode == "tuple":
        args = ", ".join(f"d{c}" for c in ic[: u.n_bundle])
        lines += ["if av:", f"    nd = tuple(zip({args}))",
                  "else:", "    nd = ztup"]
    else:
        lines += [f"nd = d{ic[0]}"]
    lines += ["nv = av"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}"]
    for i, ci in enumerate(ic):
        others = [f"v{c}" for j, c in enumerate(ic) if j != i]
        lines += [f"nr = {_mand(['ordy'] + others)}"]
        lines += _bwd_change(sched, ci)
    return lines


def mask_eval_merge(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    lines = ["_t = 0"]
    for i, c in enumerate(ic):
        lines += [f"p{i} = v{c} & ~_t", f"_t |= v{c}"]
    lines += ["nv = _t"]
    lines += ["if nv == p0:", f"    nd = d{ic[0]} if nv else ztup",
              "else:", "    _l = [None] * LB"]
    lines += ["    " + x for x in _blend_fill(
        [(f"p{i}", f"d{c}[_i]") for i, c in enumerate(ic)]
    )]
    lines += ["    nd = tuple(_l)"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}"]
    for i, ci in enumerate(ic):
        lines += [f"nr = ordy & p{i}"]
        lines += _bwd_change(sched, ci)
    return lines


def mask_eval_arbiter_merge(s, u, ic, oc, sched) -> List[str]:
    o0, o1 = oc
    first = u.priority[0]
    lines = ["_t = 0"]
    for i in u.priority:
        lines += [f"p{i} = v{ic[i]} & ~_t", f"_t |= v{ic[i]}"]
    lines += ["found = _t", f"ro0 = r{o0}", f"ro1 = r{o1}"]
    lines += ["if found == 0:", "    sd = ztup", "    si = ztup",
              f"elif p{first} == found:", f"    sd = d{ic[first]}",
              f"    si = lsel{s}[{first}]",
              "else:", "    _l = [None] * LB"]
    lines += ["    " + x for x in _blend_fill(
        [(f"p{i}", f"d{ic[i]}[_i]") for i in range(u.n_in)]
    )]
    lines += ["    sd = tuple(_l)", "    _l = [None] * LB"]
    lines += ["    " + x for x in _blend_fill(
        [(f"p{i}", str(i)) for i in range(u.n_in)]
    )]
    lines += ["    si = tuple(_l)"]
    lines += ["nv = found & ro1", "nd = sd"]
    lines += _fwd_change(sched, o0)
    lines += ["nv = found & ro0", "nd = si"]
    lines += _fwd_change(sched, o1)
    lines += ["g = ro0 & ro1"]
    for i, ci in enumerate(ic):
        lines += [f"nr = g & p{i}"]
        lines += _bwd_change(sched, ci)
    return lines


def mask_eval_fixed_order_merge(s, u, ic, oc, sched) -> List[str]:
    o0, o1 = oc
    terms = " | ".join(
        f"(fs{s}_{i} & v{c})" for i, c in enumerate(ic)
    )
    lines = [f"sv = {terms}", f"ro0 = r{o0}", f"ro1 = r{o1}"]
    lines += ["if sv == 0:", "    sd = ztup", "    si = ztup"]
    for i, c in enumerate(ic):
        lines += [f"elif fs{s}_{i} == FULL:", f"    sd = d{c}",
                  f"    si = lsel{s}[{i}]"]
    lines += ["else:", "    _l = [None] * LB"]
    lines += ["    " + x for x in _blend_fill(
        [(f"fs{s}_{i} & sv", f"d{c}[_i]") for i, c in enumerate(ic)]
    )]
    lines += ["    sd = tuple(_l)", "    _l = [None] * LB"]
    lines += ["    " + x for x in _blend_fill(
        [(f"fs{s}_{i} & sv", str(i)) for i in range(u.n_in)]
    )]
    lines += ["    si = tuple(_l)"]
    lines += ["nv = sv & ro1", "nd = sd"]
    lines += _fwd_change(sched, o0)
    lines += ["nv = sv & ro0", "nd = si"]
    lines += _fwd_change(sched, o1)
    lines += ["g = ro0 & ro1"]
    for i, ci in enumerate(ic):
        lines += [f"nr = g & fs{s}_{i} & v{ci}"]
        lines += _bwd_change(sched, ci)
    return lines


def mask_eval_mux(s, u, ic, oc, sched) -> List[str]:
    cs = ic[0]
    dchs = ic[1:]
    co = oc[0]
    n = u.n_data
    lines = [f"svm = v{cs}", f"_sm = [0] * {n}"]
    scan = _bitloop("svm", [
        "_j = int(_x[_i])",
        f"if not 0 <= _j < {n}:",
        "    raise CircuitError(",
        f"        \"mux {u.name!r}: select value %d out of range\" % _j)",
        "_sm[_j] |= _b",
    ])
    lines += ["if svm:", f"    _x = d{cs}"]
    lines += ["    " + x for x in scan]
    dv_terms = " | ".join(
        f"(_sm[{i}] & v{c})" for i, c in enumerate(dchs)
    )
    lines += [f"dvm = {dv_terms}", "nv = dvm"]
    lines += ["if dvm == 0:", "    nd = ztup"]
    for i, c in enumerate(dchs):
        lines += [f"elif _sm[{i}] == svm:", f"    nd = d{c}"]
    lines += ["else:", "    _l = [None] * LB"]
    lines += ["    " + x for x in _blend_fill(
        [(f"_sm[{i}] & v{c}", f"d{c}[_i]") for i, c in enumerate(dchs)]
    )]
    lines += ["    nd = tuple(_l)"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}", "nr = ordy & dvm"]
    lines += _bwd_change(sched, cs)
    for i, ci in enumerate(dchs):
        lines += [f"nr = ordy & _sm[{i}]"]
        lines += _bwd_change(sched, ci)
    return lines


def mask_eval_branch(s, u, ic, oc, sched) -> List[str]:
    cc, cd = ic
    ot, of_ = oc
    lines = [f"cvm = v{cc}", f"dvm = v{cd}", "both = cvm & dvm", "tm = 0"]
    scan = _bitloop("cvm", ["if _x[_i]:", "    tm |= _b"])
    lines += ["if cvm:", f"    _x = d{cc}",
              "    if cvm == FULL and all(_x):",
              "        tm = FULL",
              "    elif not (cvm == FULL and not any(_x)):"]
    lines += ["        " + x for x in scan]
    lines += ["fm = cvm & ~tm", f"nd = d{cd}"]
    lines += ["nv = both & tm"]
    lines += _fwd_change(sched, ot)
    lines += ["nv = both & fm"]
    lines += _fwd_change(sched, of_)
    lines += [f"tr = (tm & r{ot}) | (fm & r{of_})"]
    lines += ["nr = dvm & tr"]
    lines += _bwd_change(sched, cc)
    lines += ["nr = cvm & tr"]
    lines += _bwd_change(sched, cd)
    return lines


def mask_eval_demux(s, u, ic, oc, sched) -> List[str]:
    ci0, ci1 = ic
    n = u.n_out
    lines = [f"svm = v{ci0}", f"dvm = v{ci1}", "both = svm & dvm",
             f"_sm = [0] * {n}"]
    scan = _bitloop("svm", [
        "_j = int(_x[_i])",
        f"if not 0 <= _j < {n}:",
        "    raise CircuitError(",
        f"        \"demux {u.name!r}: index %d out of range\" % _j)",
        "_sm[_j] |= _b",
    ])
    lines += ["if svm:", f"    _x = d{ci0}"]
    lines += ["    " + x for x in scan]
    lines += [f"nd = d{ci1}"]
    for i, co in enumerate(oc):
        lines += [f"nv = both & _sm[{i}]"]
        lines += _fwd_change(sched, co)
    tr = " | ".join(f"(_sm[{i}] & r{co})" for i, co in enumerate(oc))
    lines += [f"tr = {tr}"]
    lines += ["nr = dvm & tr"]
    lines += _bwd_change(sched, ci0)
    lines += ["nr = svm & tr"]
    lines += _bwd_change(sched, ci1)
    return lines


def _mask_fu_lane_expr(s, u, ics) -> List[str]:
    """Statements computing one lane's FU result into ``_l[_i]``."""
    if u.bundled:
        return [f"_t = d{ics[0]}[_i]",
                f"_l[_i] = cp{s}(_t if isinstance(_t, tuple) else (_t,))"]
    parts = []
    live = 0
    for slot in range(u.spec.n_in):
        if slot in u.const_ops:
            parts.append(f"uc{s}_{slot}")
        else:
            parts.append(f"d{ics[live]}[_i]")
            live += 1
    tup = ", ".join(parts) + ("," if len(parts) == 1 else "")
    return [f"_l[_i] = cp{s}(({tup}))"]


def mask_eval_functional(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    if u.latency == 0:
        lines = [f"av = {_mand([f'v{c}' for c in ic])}", "nv = av"]
        lines += ["if av == 0:", "    nd = ztup", "elif av == FULL:"]
        lines += ["    " + x for x in _lane_fu_compute(s, u, ic)]
        lines += ["else:", "    _l = [None] * LB"]
        lines += ["    " + x
                  for x in _bitloop("av", _mask_fu_lane_expr(s, u, ic))]
        lines += ["    nd = tuple(_l)"]
        lines += _fwd_change(sched, co)
        lines += [f"ordy = r{co}"]
        for i, ci in enumerate(ic):
            others = [f"v{c}" for j, c in enumerate(ic) if j != i]
            lines += [f"nr = {_mand(['ordy'] + others)}"]
            lines += _bwd_change(sched, ci)
        return lines

    lines = [f"nv = hv{s}", f"nd = tuple(ph{s}) if nv else ztup"]
    lines += _fwd_change(sched, co)
    lines += [f"advm = r{co} | (FULL & ~hv{s})"]
    for i, ci in enumerate(ic):
        others = [f"v{c}" for j, c in enumerate(ic) if j != i]
        lines += [f"nr = {_mand(['advm'] + others)}"]
        lines += _bwd_change(sched, ci)
    return lines


def mask_eval_load_port(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"nv = hv{s}", f"nd = tuple(ph{s}) if nv else ztup"]
    lines += _fwd_change(sched, co)
    lines += [f"nr = r{co} | (FULL & ~hv{s})"]
    lines += _bwd_change(sched, ci)
    return lines


def mask_eval_store_port(s, u, ic, oc, sched) -> List[str]:
    ca, cd = ic
    co = oc[0]
    lines = [f"nv = hv{s}"]
    lines += [f"if v{co} != nv:", f"    v{co} = nv", f"    d{co} = ztup",
              f"    {_fire_flag(co)}"]
    lines += [f"    {x}" for x in _acts(sched, sched.f_act[co])]
    lines += [f"advm = r{co} | (FULL & ~hv{s})"]
    lines += [f"nr = advm & v{cd}"]
    lines += _bwd_change(sched, ca)
    lines += [f"nr = advm & v{ca}"]
    lines += _bwd_change(sched, cd)
    return lines


# -- mask clock-edge blocks -------------------------------------------------


def mask_tick_elastic_buffer(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"fo = v{co} & r{co} & live", f"fi = v{ci} & r{ci} & live"]
    pop_body = [
        f"_ql = q{s}[_i]",
        "_ql.popleft()",
        "if _ql:",
        "    _h[_i] = _ql[0]",
        "else:",
        "    _h[_i] = None",
        f"    qn{s} &= ~_b",
    ]
    lines += ["if fo:", f"    _h = qh{s}"]
    lines += ["    " + x for x in _bitloop("fo", pop_body)]
    lines += [f"    qf{s} &= ~fo"]
    app_body = [
        f"_ql = q{s}[_i]",
        "_ql.append(_d[_i])",
        "if len(_ql) == 1:",
        "    _h[_i] = _d[_i]",
        f"    qn{s} |= _b",
        f"if len(_ql) == {u.slots}:",
        f"    qf{s} |= _b",
    ]
    lines += ["if fi:", f"    _h = qh{s}", f"    _d = d{ci}"]
    lines += ["    " + x for x in _bitloop("fi", app_body)]
    return lines


def mask_tick_transparent_fifo(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"fo = v{co} & r{co} & live", f"fi = v{ci} & r{ci} & live",
             f"_qn0 = qn{s}",
             "pm = _qn0 & fo",
             "am = fi & (_qn0 | (FULL & ~fo))"]
    pop_body = [
        f"_ql = q{s}[_i]",
        "_ql.popleft()",
        "if _ql:",
        "    _h[_i] = _ql[0]",
        "else:",
        "    _h[_i] = None",
        f"    qn{s} &= ~_b",
    ]
    lines += ["if pm:", f"    _h = qh{s}"]
    lines += ["    " + x for x in _bitloop("pm", pop_body)]
    lines += [f"    qf{s} &= ~pm"]
    app_body = [
        f"_ql = q{s}[_i]",
        "_ql.append(_d[_i])",
        "if len(_ql) == 1:",
        "    _h[_i] = _d[_i]",
        f"    qn{s} |= _b",
        f"if len(_ql) == {u.slots}:",
        f"    qf{s} |= _b",
    ]
    lines += ["if am:", f"    _h = qh{s}", f"    _d = d{ci}"]
    lines += ["    " + x for x in _bitloop("am", app_body)]
    return lines


def mask_tick_credit_counter(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    initial = u.initial
    body = [
        f"_x = c{s}[_i]",
        "if fo & _b:",
        "    _x -= 1",
        "if fi & _b:",
        "    _x += 1",
        f"c{s}[_i] = _x",
        "if _x:",
        f"    cz{s} |= _b",
        "else:",
        f"    cz{s} &= ~_b",
        f"if not 0 <= _x <= {initial}:",
        "    raise CircuitError(",
        f"        \"credit counter {u.name!r}: count %d escaped \"",
        f"        \"[0, {initial}] -- more credits returned than granted\""
        " % _x)",
    ]
    lines = [f"fo = v{co} & r{co} & live", f"fi = v{ci} & r{ci} & live",
             "if fo | fi:"]
    lines += ["    " + x for x in _bitloop("fo | fi", body)]
    return lines


def mask_tick_entry(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    body = [f"_x = rem{s}[_i] - 1", f"rem{s}[_i] = _x",
            "if not _x:", f"    env{s} &= ~_b"]
    lines = [f"fo = v{co} & r{co} & live", "if fo:"]
    lines += ["    " + x for x in _bitloop("fo", body)]
    return lines


def mask_tick_sequence(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    body = [f"_x = pos{s}[_i] + 1", f"pos{s}[_i] = _x",
            f"if _x < len(uvq{s}):",
            f"    sqh{s}[_i] = uvq{s}[_x]",
            "else:",
            f"    sqh{s}[_i] = None",
            f"    sqv{s} &= ~_b"]
    lines = [f"fo = v{co} & r{co} & live", "if fo:"]
    lines += ["    " + x for x in _bitloop("fo", body)]
    return lines


def mask_tick_sink(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    lines = [f"fi = v{ci} & r{ci} & live", "if fi:", f"    _d = d{ci}"]
    lines += ["    " + x
              for x in _bitloop("fi", [f"recv{s}[_i].append(_d[_i])"])]
    return lines


def mask_tick_eager_fork(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    lines = [f"fi = v{ci} & r{ci} & live"]
    for i, co in enumerate(oc):
        lines += [f"sf{s}_{i} = (sf{s}_{i} | (v{co} & r{co} & live))"
                  " & ~fi"]
    return lines


def mask_tick_fixed_order_merge(s, u, ic, oc, sched) -> List[str]:
    length = len(u.order)
    terms = " | ".join(
        f"(fs{s}_{i} & v{c} & r{c})" for i, c in enumerate(ic)
    )
    body = [f"_x = (pos{s}[_i] + 1) % {length}", f"pos{s}[_i] = _x"]
    for i in range(u.n_in):
        kw = "if" if i == 0 else "elif"
        body += [f"{kw} fs{s}_{i} & _b:", f"    fs{s}_{i} &= ~_b"]
    body += [f"_n = uord{s}[_x]"]
    for i in range(u.n_in):
        kw = "if" if i == 0 else "elif"
        body += [f"{kw} _n == {i}:", f"    fs{s}_{i} |= _b"]
    lines = [f"ff = ({terms}) & live", "if ff:"]
    lines += ["    " + x for x in _bitloop("ff", body)]
    return lines


def _mask_pipe_shift(s, u, oc, fire_ch, new_body) -> List[str]:
    """Per-lane stall-or-shift for pipelined units under the live mask.

    ``new_body`` computes the firing lane's new stage value into ``_nw``
    (lane index ``_i``); non-shifting (stalled or dead) lanes keep their
    pipes, exactly like the scalar skeleton.  Lanes with an empty pipe
    and no arriving token are excluded up front — their shift would
    push ``None`` through ``None``s, an identity — so a single busy
    lane never drags the whole batch through per-lane list traffic.
    """
    co = oc[0]
    body = ["if fi & _b:"]
    body += ["    " + x for x in new_body]
    body += ["else:", "    _nw = None",
             f"_pl = pipe{s}[_i]",
             "_pl.insert(0, _nw)",
             "_ov = _pl.pop()",
             f"_c = pn{s}[_i]",
             "if _nw is not None:",
             "    _c += 1",
             "if _ov is not None:",
             "    _c -= 1",
             f"pn{s}[_i] = _c",
             "_hd = _pl[-1]",
             f"ph{s}[_i] = _hd",
             "if _hd is not None:",
             f"    hv{s} |= _b",
             f"    kc{s} &= ~_b",
             "elif _c:",
             f"    hv{s} &= ~_b",
             f"    kc{s} |= _b",
             "else:",
             f"    hv{s} &= ~_b",
             f"    kc{s} &= ~_b"]
    lines = [f"fo = v{co} & r{co} & live",
             f"fi = v{fire_ch} & r{fire_ch} & live",
             f"sh = live & (fo | (FULL & ~hv{s})) & (fo | fi | kc{s})",
             "if sh:"]
    lines += ["    " + x for x in _bitloop("sh", body)]
    return lines


def mask_tick_functional(s, u, ic, oc, sched) -> List[str]:
    if u.bundled:
        new_body = [f"_t = d{ic[0]}[_i]",
                    f"_nw = cp{s}(_t if isinstance(_t, tuple) else (_t,))"]
    else:
        parts = []
        live_in = 0
        for slot in range(u.spec.n_in):
            if slot in u.const_ops:
                parts.append(f"uc{s}_{slot}")
            else:
                parts.append(f"d{ic[live_in]}[_i]")
                live_in += 1
        tup = ", ".join(parts) + ("," if len(parts) == 1 else "")
        new_body = [f"_nw = cp{s}(({tup}))"]
    return _mask_pipe_shift(s, u, oc, ic[0], new_body)


def mask_tick_load_port(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    new_body = [f"_nw = mrd[_i]({u.array!r}, int(d{ci}[_i]))"]
    return _mask_pipe_shift(s, u, oc, ci, new_body)


def mask_tick_store_port(s, u, ic, oc, sched) -> List[str]:
    ca, cd = ic
    new_body = [f"mwr[_i]({u.array!r}, int(d{ca}[_i]), d{cd}[_i])",
                "_nw = True"]
    return _mask_pipe_shift(s, u, oc, ca, new_body)


#: Mask-mode combinational emitters (complete: every catalogue type).
MASK_EVAL_BLOCKS = {
    ElasticBuffer: mask_eval_elastic_buffer,
    TransparentFifo: mask_eval_transparent_fifo,
    CreditCounter: mask_eval_credit_counter,
    Entry: mask_eval_entry,
    Sequence: mask_eval_sequence,
    Sink: mask_eval_sink,
    Constant: mask_eval_constant,
    EagerFork: mask_eval_eager_fork,
    LazyFork: mask_eval_lazy_fork,
    Join: mask_eval_join,
    Merge: mask_eval_merge,
    ArbiterMerge: mask_eval_arbiter_merge,
    FixedOrderMerge: mask_eval_fixed_order_merge,
    Mux: mask_eval_mux,
    Branch: mask_eval_branch,
    Demux: mask_eval_demux,
    FunctionalUnit: mask_eval_functional,
    LoadPort: mask_eval_load_port,
    StorePort: mask_eval_store_port,
}

#: Mask-mode clock-edge (apply, post) emitters; the post pass is the
#: mask eval block (idempotent recompute; carries refresh in the apply).
MASK_TICK_BLOCKS = {
    ElasticBuffer: (mask_tick_elastic_buffer, mask_eval_elastic_buffer),
    TransparentFifo: (mask_tick_transparent_fifo,
                      mask_eval_transparent_fifo),
    CreditCounter: (mask_tick_credit_counter, mask_eval_credit_counter),
    Entry: (mask_tick_entry, mask_eval_entry),
    Sequence: (mask_tick_sequence, mask_eval_sequence),
    Sink: (mask_tick_sink, mask_eval_sink),
    EagerFork: (mask_tick_eager_fork, mask_eval_eager_fork),
    FixedOrderMerge: (mask_tick_fixed_order_merge,
                      mask_eval_fixed_order_merge),
    FunctionalUnit: (mask_tick_functional, mask_eval_functional),
    LoadPort: (mask_tick_load_port, mask_eval_load_port),
    StorePort: (mask_tick_store_port, mask_eval_store_port),
}

assert set(MASK_EVAL_BLOCKS) == set(EVAL_BLOCKS)
assert set(MASK_TICK_BLOCKS) == set(TICK_BLOCKS)


# -- mask state: per-slot dict contract + promotion transform ---------------


def mask_int_names(u) -> List[str]:
    """Persisted bitmask locals of unit ``u`` (dict key = local suffix).

    These are loaded into loop locals in the mask-loop prologue and
    written back in its epilogue; list-valued state (queues, heads,
    counters, pipes) is mutated in place and needs no sync.
    """
    if isinstance(u, (ElasticBuffer, TransparentFifo)):
        return ["qn", "qf"]
    if isinstance(u, CreditCounter):
        return ["cz"]
    if isinstance(u, Entry):
        return ["env"]
    if isinstance(u, Sequence):
        return ["sqv"]
    if isinstance(u, EagerFork):
        return [f"sf_{i}" for i in range(u.n_out)]
    if isinstance(u, FixedOrderMerge):
        return [f"fs_{i}" for i in range(u.n_in)]
    if isinstance(u, (LoadPort, StorePort)):
        return ["hv", "kc"]
    if isinstance(u, FunctionalUnit) and u.latency > 0:
        return ["hv", "kc"]
    return []


def mask_obj_names(u) -> List[str]:
    """In-place (list-valued) mask-state members of unit ``u``."""
    if isinstance(u, (ElasticBuffer, TransparentFifo)):
        return ["q", "qh"]
    if isinstance(u, CreditCounter):
        return ["c"]
    if isinstance(u, Entry):
        return ["rem"]
    if isinstance(u, Sequence):
        return ["pos", "sqh"]
    if isinstance(u, Sink):
        return ["recv"]
    if isinstance(u, FixedOrderMerge):
        return ["pos"]
    if isinstance(u, (LoadPort, StorePort)):
        return ["pipe", "ph", "pn"]
    if isinstance(u, FunctionalUnit) and u.latency > 0:
        return ["pipe", "ph", "pn"]
    return []


def mask_local(name: str, s: int) -> str:
    """Loop-local spelling of mask-state member ``name`` of slot ``s``
    (``"qn"`` → ``qn{s}``, indexed ``"sf_0"`` → ``sf{s}_0``)."""
    if "_" in name:
        head, tail = name.split("_", 1)
        return f"{head}{s}_{tail}"
    return f"{name}{s}"


def _lval(e, lane: int):
    """Lane projection of a lockstep datum (lane tuple or shared scalar)."""
    return e[lane] if type(e) is tuple else e


def mask_state(u, lb: int, full: int) -> Optional[dict]:
    """Per-lane mask state of ``u``, promoted from its lockstep state.

    Called at the lockstep→mask promotion point: the unit holds valid
    lockstep state (every lane identical up to the per-lane data slots of
    its queued/piped lane tuples), and the returned dict seeds the
    mask-loop locals declared by :func:`mask_int_names` /
    :func:`mask_obj_names`.  Returns ``None`` for stateless types.
    """
    if isinstance(u, (ElasticBuffer, TransparentFifo)):
        qs = [deque(_lval(e, l) for e in u._q) for l in range(lb)]
        return {
            "q": qs,
            "qh": [q[0] if q else None for q in qs],
            "qn": full if u._q else 0,
            "qf": full if len(u._q) >= u.slots else 0,
        }
    if isinstance(u, CreditCounter):
        return {"c": [u._count] * lb,
                "cz": full if u._count > 0 else 0}
    if isinstance(u, Entry):
        return {"rem": [u._remaining] * lb,
                "env": full if u._remaining > 0 else 0}
    if isinstance(u, Sequence):
        p = u._pos
        head = u.values[p] if p < len(u.values) else None
        return {"pos": [p] * lb, "sqh": [head] * lb,
                "sqv": full if p < len(u.values) else 0}
    if isinstance(u, Sink):
        return {"recv": [[_lval(e, l) for e in u.received]
                         for l in range(lb)]}
    if isinstance(u, EagerFork):
        return {f"sf_{i}": (full if sent else 0)
                for i, sent in enumerate(u._sent)}
    if isinstance(u, FixedOrderMerge):
        sel = u.order[u._pos]
        state = {f"fs_{i}": (full if i == sel else 0)
                 for i in range(u.n_in)}
        state["pos"] = [u._pos] * lb
        return state
    if isinstance(u, (LoadPort, StorePort)) or (
        isinstance(u, FunctionalUnit) and u.latency > 0
    ):
        # FU/LoadPort stages are ``(lane_tuple,)``; StorePort stages are
        # the bare marker ``True`` (no result data).
        def stage(e, l):
            if e is None:
                return None
            return _lval(e[0], l) if type(e) is tuple else e

        pipes = [[stage(e, l) for e in u._pipe] for l in range(lb)]
        head = u._pipe[-1]
        carry = head is None and any(e is not None for e in u._pipe)
        occupied = sum(1 for e in u._pipe if e is not None)
        return {
            "pipe": pipes,
            "ph": [stage(head, l) for l in range(lb)],
            "pn": [occupied] * lb,
            "hv": full if head is not None else 0,
            "kc": full if carry else 0,
        }
    return None
