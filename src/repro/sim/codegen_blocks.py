"""Per-unit-type source emitters for the codegen simulation backend.

Each emitter renders one unit's combinational evaluation (or clock-edge
transition) as straight-line Python statements over *local variables*:
channel ``c``'s forward signal lives in locals ``v{c}``/``d{c}``, its
backward signal in ``r{c}``, and occurrence ``k``'s activation flag in
``a{k}``.  The blocks are exact source-level transcriptions of the
specialized closures in :mod:`repro.sim.compiled` — same driven values,
same change-detection points, same activation semantics — with every
dynamic structure (activation lists, port index loops, priority orders)
unrolled into constants, so the hot loop runs no closure calls, no dict
dispatch and no attribute lookups on the fast path.

Clock-edge blocks run in two passes (see the compiled backend): the
``tk`` pass commits sequential state reading the cycle's pristine
fixpoint — no signal local is written during that pass, so ``fired`` of
channel ``c`` is simply ``(v{c} and r{c})`` and needs no storage — and
the ``pk`` pass recomputes the ticked unit's driven signals with the
usual change detection.  Pipelined units additionally report their carry
flag (can the unit progress without any channel firing?) into the
persistent local ``k{slot}``.
"""

from __future__ import annotations

from typing import List

from ..circuit import (
    ArbiterMerge,
    Branch,
    Constant,
    CreditCounter,
    Demux,
    EagerFork,
    ElasticBuffer,
    Entry,
    FixedOrderMerge,
    FunctionalUnit,
    Join,
    LazyFork,
    LoadPort,
    Merge,
    Mux,
    Sequence,
    Sink,
    StorePort,
    TransparentFifo,
)


#: Members per group-activity flag.  The generated loop guards the
#: combinational section and the fire scan hierarchically: ``GROUP``
#: consecutive occurrences (channels) share one ``ga{g}`` (``fg{g}``)
#: flag, set here at every activation (signal write) site, so a fully
#: idle group costs one check instead of ``GROUP``.
GROUP = 8


def _acts(sched, node_acts) -> List[str]:
    """Activation stores for one signal change: static ``a{k} = 1`` lines
    plus the group-activity flags covering them."""
    lines = [f"ga{g} = 1" for g in sorted({k // GROUP for k in node_acts})]
    lines += [f"a{k} = 1" for k in node_acts]
    return lines


def _fire_flag(c) -> str:
    """Fire-scan group flag store for a write to channel ``c``'s signals."""
    return f"fg{c // GROUP} = 1"


def _fwd_change(sched, co, extra_cond=None) -> List[str]:
    """Standard forward-signal change detection for channel ``co``.

    Assumes the new value/data are in ``nv``/``nd``.
    """
    lines = [f"if v{co} != nv or d{co} != nd:"]
    lines += [f"    v{co} = nv", f"    d{co} = nd", f"    {_fire_flag(co)}"]
    lines += [f"    {s}" for s in _acts(sched, sched.f_act[co])]
    return lines


def _bwd_change(sched, ci) -> List[str]:
    """Standard backward-signal change detection for channel ``ci``.

    Assumes the new ready value is in ``nr``.
    """
    lines = [f"if r{ci} != nr:"]
    lines += [f"    r{ci} = nr", f"    {_fire_flag(ci)}"]
    lines += [f"    {s}" for s in _acts(sched, sched.b_act[ci])]
    return lines


def _miss_scan(chs) -> List[str]:
    """Unrolled count of not-valid inputs into ``miss``/``last``."""
    lines = ["miss = 0", "last = -1"]
    for i, c in enumerate(chs):
        lines += [f"if not v{c}:", "    miss += 1", f"    last = {i}"]
    return lines


def _fu_operands(s: int, u: FunctionalUnit, ics) -> str:
    """Operand-tuple expression for a plain or const-folded FU."""
    if not u.const_ops:
        return "(" + ", ".join(f"d{c}" for c in ics) + ("," if len(ics) == 1 else "") + ")"
    parts = []
    live = 0
    for slot in range(u.spec.n_in):
        if slot in u.const_ops:
            parts.append(f"uc{s}_{slot}")
        else:
            parts.append(f"d{ics[live]}")
            live += 1
    return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"


# ---------------------------------------------------------------------------
# Combinational evaluation blocks (one per occurrence of the unit).
# ---------------------------------------------------------------------------


def eval_elastic_buffer(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"q = u{s}._q"]
    lines += ["if q:", "    nv = 1", "    nd = q[0]",
              "else:", "    nv = 0", "    nd = None"]
    lines += _fwd_change(sched, co)
    lines += [f"nr = len(q) < {u.slots}"]
    lines += _bwd_change(sched, ci)
    return lines


def eval_transparent_fifo(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"q = u{s}._q"]
    lines += ["if q:", "    nv = 1", "    nd = q[0]",
              "else:", f"    nv = v{ci}",
              f"    nd = d{ci} if nv else None"]
    lines += _fwd_change(sched, co)
    lines += [f"nr = len(q) < {u.slots}"]
    lines += _bwd_change(sched, ci)
    return lines


def eval_credit_counter(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"nv = 1 if u{s}._count > 0 else 0"]
    lines += [f"if v{co} != nv:", f"    v{co} = nv",
              f"    {_fire_flag(co)}"]
    lines += [f"    {x}" for x in _acts(sched, sched.f_act[co])]
    lines += [f"if not r{ci}:", f"    r{ci} = 1", f"    {_fire_flag(ci)}"]
    lines += [f"    {x}" for x in _acts(sched, sched.b_act[ci])]
    return lines


def eval_entry(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    lines = [f"nv = 1 if u{s}._remaining > 0 else 0", f"nd = uv{s}"]
    lines += _fwd_change(sched, co)
    return lines


def eval_sequence(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    lines = [f"sv = u{s}.values", f"sp = u{s}._pos"]
    lines += ["if sp < len(sv):", "    nv = 1", "    nd = sv[sp]",
              "else:", "    nv = 0", "    nd = None"]
    lines += _fwd_change(sched, co)
    return lines


def eval_sink(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    lines = [f"if not r{ci}:", f"    r{ci} = 1", f"    {_fire_flag(ci)}"]
    lines += [f"    {x}" for x in _acts(sched, sched.b_act[ci])]
    return lines


def eval_constant(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"nv = v{ci}", f"nd = uv{s}"]
    lines += _fwd_change(sched, co)
    lines += [f"nr = r{co}"]
    lines += _bwd_change(sched, ci)
    return lines


def eval_eager_fork(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    lines = [f"iv = v{ci}", f"nd = d{ci} if iv else None",
             f"sent = u{s}._sent", "adone = True"]
    for i, co in enumerate(oc):
        lines += [f"nv = iv and not sent[{i}]"]
        lines += _fwd_change(sched, co)
        lines += [f"if not (sent[{i}] or r{co}):", "    adone = False"]
    lines += ["nr = adone"]
    lines += _bwd_change(sched, ci)
    return lines


def eval_lazy_fork(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    lines = [f"iv = v{ci}", f"nd = d{ci} if iv else None",
             "miss = 0", "last = -1"]
    for i, co in enumerate(oc):
        lines += [f"if not r{co}:", "    miss += 1", f"    last = {i}"]
    for i, co in enumerate(oc):
        lines += [
            f"nv = iv and (miss == 0 or (miss == 1 and last == {i}))"
        ]
        lines += _fwd_change(sched, co)
    lines += ["nr = miss == 0"]
    lines += _bwd_change(sched, ci)
    return lines


def eval_join(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    lines = _miss_scan(ic)
    if u.data_mode == "tuple":
        bundle = ic[: u.n_bundle]
        tup = ", ".join(f"d{c}" for c in bundle)
        if len(bundle) == 1:
            tup += ","
        data = f"({tup})"
    else:
        data = f"d{ic[0]}"
    lines += ["if miss == 0:", f"    nd = {data}", "    nv = 1",
              "else:", "    nd = None", "    nv = 0"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}"]
    for i, ci in enumerate(ic):
        lines += [
            f"nr = ordy and (miss == 0 or (miss == 1 and last == {i}))"
        ]
        lines += _bwd_change(sched, ci)
    return lines


def eval_merge(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    lines = []
    for i, c in enumerate(ic):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} v{c}:", f"    sel = {i}", "    nv = 1",
                  f"    nd = d{c}"]
    lines += ["else:", "    sel = -1", "    nv = 0", "    nd = None"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}"]
    for i, ci in enumerate(ic):
        lines += [f"nr = ordy and sel == {i}"]
        lines += _bwd_change(sched, ci)
    return lines


def eval_arbiter_merge(s, u, ic, oc, sched) -> List[str]:
    o0, o1 = oc
    lines = []
    for j, i in enumerate(u.priority):
        kw = "if" if j == 0 else "elif"
        lines += [f"{kw} v{ic[i]}:", f"    sel = {i}", f"    sd = d{ic[i]}"]
    lines += ["else:", "    sel = -1", "    sd = None"]
    lines += [f"ro0 = r{o0}", f"ro1 = r{o1}", "found = sel >= 0"]
    lines += ["nv = found and ro1", "nd = sd"]
    lines += _fwd_change(sched, o0)
    lines += ["nv = found and ro0", "nd = sel if found else None"]
    lines += _fwd_change(sched, o1)
    lines += ["g = ro0 and ro1"]
    for i, ci in enumerate(ic):
        lines += [f"nr = g and sel == {i}"]
        lines += _bwd_change(sched, ci)
    return lines


def _fom_signals(s, u, ic, oc, sched) -> List[str]:
    """Shared FixedOrderMerge output/ready recompute (eval and pk)."""
    o0, o1 = oc
    lines = [f"sel = u{s}.order[u{s}._pos]"]
    for i, c in enumerate(ic):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} sel == {i}:", f"    sv = v{c}", f"    sd = d{c}"]
    lines += ["else:", "    sv = 0", "    sd = None"]
    lines += [f"ro0 = r{o0}", f"ro1 = r{o1}"]
    lines += ["nv = sv and ro1", "nd = sd if sv else None"]
    lines += _fwd_change(sched, o0)
    lines += ["nv = sv and ro0", "nd = sel if sv else None"]
    lines += _fwd_change(sched, o1)
    lines += ["g = ro0 and ro1"]
    for i, ci in enumerate(ic):
        lines += [f"nr = g and sel == {i} and sv"]
        lines += _bwd_change(sched, ci)
    return lines


def eval_fixed_order_merge(s, u, ic, oc, sched) -> List[str]:
    return _fom_signals(s, u, ic, oc, sched)


def eval_mux(s, u, ic, oc, sched) -> List[str]:
    cs = ic[0]
    dchs = ic[1:]
    co = oc[0]
    nd = u.n_data
    lines = [f"sv = v{cs}", "sel = -1"]
    lines += ["if sv:", f"    sel = int(d{cs})",
              f"    if not 0 <= sel < {nd}:",
              "        raise CircuitError(",
              f"            \"mux {u.name!r}: select value %d out of range\""
              " % sel)"]
    lines += ["dv = False", "nd = None"]
    for i, c in enumerate(dchs):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} sel == {i}:", f"    dv = v{c}",
                  f"    nd = d{c} if dv else None"]
    lines += ["if dv:", "    nv = 1", "else:", "    nv = 0", "    nd = None"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}", "nr = ordy and dv"]
    lines += _bwd_change(sched, cs)
    for i, ci in enumerate(dchs):
        lines += [f"nr = ordy and sv and {i} == sel"]
        lines += _bwd_change(sched, ci)
    return lines


def eval_branch(s, u, ic, oc, sched) -> List[str]:
    cc, cd = ic
    ot, of_ = oc
    lines = [f"cv = v{cc}", f"dv = v{cd}", "both = cv and dv", "tgt = -1"]
    lines += ["if cv:", f"    tgt = 0 if d{cc} else 1"]
    lines += [f"nd = d{cd} if dv else None"]
    lines += ["nv = both and tgt == 0"]
    lines += _fwd_change(sched, ot)
    lines += ["nv = both and tgt == 1"]
    lines += _fwd_change(sched, of_)
    lines += ["if tgt == 0:", f"    tr = r{ot}",
              "elif tgt == 1:", f"    tr = r{of_}",
              "else:", "    tr = False"]
    lines += ["nr = dv and tr"]
    lines += _bwd_change(sched, cc)
    lines += ["nr = cv and tr"]
    lines += _bwd_change(sched, cd)
    return lines


def eval_demux(s, u, ic, oc, sched) -> List[str]:
    ci0, ci1 = ic
    n = u.n_out
    lines = [f"sv = v{ci0}", f"dv = v{ci1}", "both = sv and dv", "tgt = -1"]
    lines += ["if sv:", f"    tgt = int(d{ci0})",
              f"    if not 0 <= tgt < {n}:",
              "        raise CircuitError(",
              f"            \"demux {u.name!r}: index %d out of range\""
              " % tgt)"]
    lines += [f"nd = d{ci1} if dv else None"]
    for i, co in enumerate(oc):
        lines += [f"nv = both and tgt == {i}"]
        lines += _fwd_change(sched, co)
    for i, co in enumerate(oc):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} tgt == {i}:", f"    tr = r{co}"]
    lines += ["else:", "    tr = False"]
    lines += ["nr = dv and tr"]
    lines += _bwd_change(sched, ci0)
    lines += ["nr = sv and tr"]
    lines += _bwd_change(sched, ci1)
    return lines


def _fu_result(s, u, ic) -> str:
    """Expression computing the FU result from the data locals."""
    if u.bundled:
        return f"cp{s}(_t if isinstance(_t, tuple) else (_t,))"
    return f"cp{s}({_fu_operands(s, u, ic)})"


def eval_functional(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    if u.latency == 0:
        lines = _miss_scan(ic)
        lines += ["if miss == 0:", "    nv = 1"]
        if u.bundled:
            lines += [f"    _t = d{ic[0]}"]
        lines += [f"    nd = {_fu_result(s, u, ic)}"]
        lines += ["else:", "    nv = 0", "    nd = None"]
        lines += _fwd_change(sched, co)
        lines += [f"ordy = r{co}"]
        for i, ci in enumerate(ic):
            lines += [
                f"nr = ordy and (miss == 0 or (miss == 1 and last == {i}))"
            ]
            lines += _bwd_change(sched, ci)
        return lines

    lines = [f"head = u{s}._pipe[-1]"]
    lines += ["if head is not None:", "    nv = 1", "    nd = head[0]",
              f"    adv = r{co}",
              "else:", "    nv = 0", "    nd = None", "    adv = True"]
    lines += _fwd_change(sched, co)
    lines += _miss_scan(ic)
    for i, ci in enumerate(ic):
        lines += [
            f"nr = adv and (miss == 0 or (miss == 1 and last == {i}))"
        ]
        lines += _bwd_change(sched, ci)
    return lines


def eval_load_port(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    lines = [f"head = u{s}._pipe[-1]"]
    lines += ["if head is not None:", "    nv = 1", "    nd = head[0]",
              f"    nr = r{co}",
              "else:", "    nv = 0", "    nd = None", "    nr = True"]
    lines += _fwd_change(sched, co)
    lines += _bwd_change(sched, ci)
    return lines


def eval_store_port(s, u, ic, oc, sched) -> List[str]:
    ca, cd = ic
    co = oc[0]
    lines = [f"head = u{s}._pipe[-1]"]
    lines += ["if head is not None:", "    nv = 1", f"    adv = r{co}",
              "else:", "    nv = 0", "    adv = True"]
    lines += [f"if v{co} != nv or d{co} is not None:",
              f"    v{co} = nv", f"    d{co} = None", f"    {_fire_flag(co)}"]
    lines += [f"    {x}" for x in _acts(sched, sched.f_act[co])]
    lines += [f"av = v{ca}", f"dv = v{cd}"]
    lines += ["nr = adv and dv"]
    lines += _bwd_change(sched, ca)
    lines += ["nr = adv and av"]
    lines += _bwd_change(sched, cd)
    return lines


# ---------------------------------------------------------------------------
# Clock-edge blocks.  ``tk`` commits state against the pristine fixpoint
# (channel c fired iff ``v{c} and r{c}``; no signal local is written in
# this pass); ``pk`` recomputes the unit's driven signals and, for
# pipelined units, refreshes the persistent carry flag ``k{slot}``.
# ---------------------------------------------------------------------------


def tick_elastic_buffer(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    return [
        f"q = u{s}._q",
        f"if v{co} and r{co}:",
        "    q.popleft()",
        f"if v{ci} and r{ci}:",
        f"    q.append(d{ci})",
    ]


def tick_transparent_fifo(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    return [
        f"q = u{s}._q",
        "if q:",
        f"    if v{co} and r{co}:",
        "        q.popleft()",
        f"    if v{ci} and r{ci}:",
        f"        q.append(d{ci})",
        f"elif (v{ci} and r{ci}) and not (v{co} and r{co}):",
        f"    q.append(d{ci})",
    ]


def tick_credit_counter(s, u, ic, oc, sched) -> List[str]:
    ci, co = ic[0], oc[0]
    initial = u.initial
    return [
        f"c_ = u{s}._count",
        f"if v{co} and r{co}:",
        "    c_ -= 1",
        f"if v{ci} and r{ci}:",
        "    c_ += 1",
        f"u{s}._count = c_",
        f"if not 0 <= c_ <= {initial}:",
        "    raise CircuitError(",
        f"        \"credit counter {u.name!r}: count %d escaped \"",
        f"        \"[0, {initial}] -- more credits returned than granted\""
        " % c_)",
    ]


def tick_entry(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    return [f"if v{co} and r{co}:", f"    u{s}._remaining -= 1"]


def tick_sequence(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    return [f"if v{co} and r{co}:", f"    u{s}._pos += 1"]


def tick_sink(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    return [f"if v{ci} and r{ci}:", f"    u{s}.received.append(d{ci})"]


def tick_eager_fork(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    lines = [f"sent = u{s}._sent", f"if v{ci} and r{ci}:"]
    lines += [f"    sent[{i}] = False" for i in range(u.n_out)]
    lines += ["else:"]
    for i, co in enumerate(oc):
        lines += [f"    if v{co} and r{co}:", f"        sent[{i}] = True"]
    return lines


def tick_fixed_order_merge(s, u, ic, oc, sched) -> List[str]:
    lines = [f"order = u{s}.order", f"sel = order[u{s}._pos]"]
    for i, c in enumerate(ic):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} sel == {i}:", f"    fsel = v{c} and r{c}"]
    lines += ["else:", "    fsel = False"]
    lines += ["if fsel:", f"    u{s}._pos = (u{s}._pos + 1) % len(order)"]
    return lines


def _pipe_shift(s, u, ic, oc, sched, new_lines) -> List[str]:
    """Shared stall-or-shift skeleton for pipelined units.

    ``new_lines`` computes ``new`` from the fired input(s); the shift
    rebinds ``_pipe`` exactly like the other two backends do.
    """
    co = oc[0]
    lines = [f"pipe = u{s}._pipe"]
    lines += [f"if pipe[-1] is not None and not (v{co} and r{co}):",
              f"    adv{s} = 0",
              "else:",
              f"    adv{s} = 1"]
    lines += [f"    {x}" for x in new_lines]
    lines += [f"    u{s}._pipe = [new] + pipe[:-1]"]
    return lines


def tick_functional(s, u, ic, oc, sched) -> List[str]:
    ci0 = ic[0]
    if u.bundled:
        new_lines = [
            f"if v{ci0} and r{ci0}:",
            f"    _t = d{ci0}",
            f"    new = ({_fu_result(s, u, ic)},)",
            "else:",
            "    new = None",
        ]
    else:
        new_lines = [
            f"if v{ci0} and r{ci0}:",
            f"    new = ({_fu_result(s, u, ic)},)",
            "else:",
            "    new = None",
        ]
    return _pipe_shift(s, u, ic, oc, sched, new_lines)


def tick_load_port(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    new_lines = [
        f"if v{ci} and r{ci}:",
        f"    new = (mrd({u.array!r}, int(d{ci})),)",
        "else:",
        "    new = None",
    ]
    return _pipe_shift(s, u, ic, oc, sched, new_lines)


def tick_store_port(s, u, ic, oc, sched) -> List[str]:
    ca, cd = ic
    new_lines = [
        f"if v{ca} and r{ca}:",
        f"    mwr({u.array!r}, int(d{ca}), d{cd})",
        "    new = True",
        "else:",
        "    new = None",
    ]
    return _pipe_shift(s, u, ic, oc, sched, new_lines)


def _carry_refresh(s) -> List[str]:
    """Post-recompute carry flag refresh for a pipelined unit."""
    return [
        f"if u{s}._pipe[-1] is not None:",
        f"    k{s} = 0",
        "else:",
        f"    k{s} = 0",
        f"    for st_ in u{s}._pipe:",
        "        if st_ is not None:",
        f"            k{s} = 1",
        "            break",
    ]


def post_elastic_buffer(s, u, ic, oc, sched) -> List[str]:
    return eval_elastic_buffer(s, u, ic, oc, sched)


def post_transparent_fifo(s, u, ic, oc, sched) -> List[str]:
    return eval_transparent_fifo(s, u, ic, oc, sched)


def post_credit_counter(s, u, ic, oc, sched) -> List[str]:
    return eval_credit_counter(s, u, ic, oc, sched)


def post_entry(s, u, ic, oc, sched) -> List[str]:
    return eval_entry(s, u, ic, oc, sched)


def post_sequence(s, u, ic, oc, sched) -> List[str]:
    return eval_sequence(s, u, ic, oc, sched)


def post_sink(s, u, ic, oc, sched) -> List[str]:
    return eval_sink(s, u, ic, oc, sched)


def post_eager_fork(s, u, ic, oc, sched) -> List[str]:
    return eval_eager_fork(s, u, ic, oc, sched)


def post_fixed_order_merge(s, u, ic, oc, sched) -> List[str]:
    return _fom_signals(s, u, ic, oc, sched)


def _stall_guarded(s, body) -> List[str]:
    """Skip the recompute when the apply pass stalled (head blocked)."""
    lines = [f"if adv{s}:"]
    lines += [f"    {x}" for x in body]
    lines += ["else:", f"    k{s} = 0"]
    return lines


def post_functional(s, u, ic, oc, sched) -> List[str]:
    body = eval_functional(s, u, ic, oc, sched) + _carry_refresh(s)
    return _stall_guarded(s, body)


def post_load_port(s, u, ic, oc, sched) -> List[str]:
    body = eval_load_port(s, u, ic, oc, sched) + _carry_refresh(s)
    return _stall_guarded(s, body)


def post_store_port(s, u, ic, oc, sched) -> List[str]:
    body = eval_store_port(s, u, ic, oc, sched) + _carry_refresh(s)
    return _stall_guarded(s, body)


# ---------------------------------------------------------------------------
# Laned (batched) block variants.
#
# The lane-parallel generator (``generate_source(..., lanes=True)``) keeps
# every *control* signal scalar — one shared valid/ready bit per channel,
# exactly as above — and widens only the *data* signals: a valid channel's
# ``d{c}`` local holds a tuple of ``LB`` per-lane values (lane index =
# dataset), an invalid channel's stays ``None``.  Under the lockstep
# assumption (all lanes make the same control decisions every cycle) the
# scalar emitters above are already lane-correct for every unit whose
# logic only moves data around: queues hold lane tuples, change detection
# compares them, sinks append them.  Only four kinds of sites need laned
# overrides, collected here:
#
# * **data entering control** (Branch condition, Mux/Demux select): the
#   per-lane values must agree in effect; a disagreement raises
#   :class:`~repro.errors.LaneDivergence`, which the batched engine turns
#   into a bit-exact per-lane scalar re-execution.
# * **scalar data sources** (Sequence values, ArbiterMerge/FixedOrderMerge
#   select outputs): broadcast to lane tuples via constants prepared in
#   the generated prologue (``usq{s}``/``lsel{s}``; ``uv{s}`` is simply
#   *bound* as a tuple, so Entry/Constant reuse the scalar emitters).
# * **per-lane computation** (FunctionalUnit results, LoadPort reads,
#   StorePort writes): mapped across the lane tuples, with loads/stores
#   dispatched through the per-lane ``mrd``/``mwr`` method lists.
# * **tuple-mode Join**: per-lane operand bundles are ``zip``s of the
#   input lane tuples.
# ---------------------------------------------------------------------------


def _lane_fu_compute(s, u, ic) -> List[str]:
    """Statements leaving the per-lane FU results tuple in ``nd``."""
    if u.bundled:
        return [
            f"nd = tuple(cp{s}(_t if isinstance(_t, tuple) else (_t,))"
            f" for _t in d{ic[0]})"
        ]
    if not u.const_ops:
        args = ", ".join(f"d{c}" for c in ic)
        return [f"nd = tuple(map(cp{s}, zip({args})))"]
    parts = []
    live = 0
    for slot in range(u.spec.n_in):
        if slot in u.const_ops:
            parts.append(f"uc{s}_{slot}")
        else:
            parts.append(f"_o[{live}]")
            live += 1
    tup = ", ".join(parts) + ("," if len(parts) == 1 else "")
    if live == 0:
        return [f"_r = cp{s}(({tup}))", "nd = (_r,) * LB"]
    args = ", ".join(f"d{c}" for c in ic)
    return [f"nd = tuple(cp{s}(({tup})) for _o in zip({args}))"]


def lane_eval_sequence(s, u, ic, oc, sched) -> List[str]:
    co = oc[0]
    lines = [f"sv = usq{s}", f"sp = u{s}._pos"]
    lines += ["if sp < len(sv):", "    nv = 1", "    nd = sv[sp]",
              "else:", "    nv = 0", "    nd = None"]
    lines += _fwd_change(sched, co)
    return lines


def lane_eval_join(s, u, ic, oc, sched) -> List[str]:
    if u.data_mode != "tuple":
        return eval_join(s, u, ic, oc, sched)
    co = oc[0]
    lines = _miss_scan(ic)
    bundle = ic[: u.n_bundle]
    args = ", ".join(f"d{c}" for c in bundle)
    lines += ["if miss == 0:", f"    nd = tuple(zip({args}))", "    nv = 1",
              "else:", "    nd = None", "    nv = 0"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}"]
    for i, ci in enumerate(ic):
        lines += [
            f"nr = ordy and (miss == 0 or (miss == 1 and last == {i}))"
        ]
        lines += _bwd_change(sched, ci)
    return lines


def lane_eval_arbiter_merge(s, u, ic, oc, sched) -> List[str]:
    o0, o1 = oc
    lines = []
    for j, i in enumerate(u.priority):
        kw = "if" if j == 0 else "elif"
        lines += [f"{kw} v{ic[i]}:", f"    sel = {i}", f"    sd = d{ic[i]}"]
    lines += ["else:", "    sel = -1", "    sd = None"]
    lines += [f"ro0 = r{o0}", f"ro1 = r{o1}", "found = sel >= 0"]
    lines += ["nv = found and ro1", "nd = sd"]
    lines += _fwd_change(sched, o0)
    lines += ["nv = found and ro0", f"nd = lsel{s}[sel] if found else None"]
    lines += _fwd_change(sched, o1)
    lines += ["g = ro0 and ro1"]
    for i, ci in enumerate(ic):
        lines += [f"nr = g and sel == {i}"]
        lines += _bwd_change(sched, ci)
    return lines


def _lane_fom_signals(s, u, ic, oc, sched) -> List[str]:
    o0, o1 = oc
    lines = [f"sel = u{s}.order[u{s}._pos]"]
    for i, c in enumerate(ic):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} sel == {i}:", f"    sv = v{c}", f"    sd = d{c}"]
    lines += ["else:", "    sv = 0", "    sd = None"]
    lines += [f"ro0 = r{o0}", f"ro1 = r{o1}"]
    lines += ["nv = sv and ro1", "nd = sd if sv else None"]
    lines += _fwd_change(sched, o0)
    lines += ["nv = sv and ro0", f"nd = lsel{s}[sel] if sv else None"]
    lines += _fwd_change(sched, o1)
    lines += ["g = ro0 and ro1"]
    for i, ci in enumerate(ic):
        lines += [f"nr = g and sel == {i} and sv"]
        lines += _bwd_change(sched, ci)
    return lines


def lane_eval_fixed_order_merge(s, u, ic, oc, sched) -> List[str]:
    return _lane_fom_signals(s, u, ic, oc, sched)


def lane_eval_mux(s, u, ic, oc, sched) -> List[str]:
    cs = ic[0]
    dchs = ic[1:]
    co = oc[0]
    n = u.n_data
    lines = [f"sv = v{cs}", "sel = -1"]
    lines += [
        "if sv:",
        f"    _x = d{cs}",
        "    sel = int(_x[0])",
        # Fast path: one C-speed scan when all lanes carry the same
        # object/value (the overwhelmingly common lockstep case).
        "    if _x.count(_x[0]) != len(_x):",
        "        for _y in _x:",
        "            if int(_y) != sel:",
        "                raise LaneDivergence",
        f"    if not 0 <= sel < {n}:",
        "        raise CircuitError(",
        f"            \"mux {u.name!r}: select value %d out of range\""
        " % sel)",
    ]
    lines += ["dv = False", "nd = None"]
    for i, c in enumerate(dchs):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} sel == {i}:", f"    dv = v{c}",
                  f"    nd = d{c} if dv else None"]
    lines += ["if dv:", "    nv = 1", "else:", "    nv = 0", "    nd = None"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}", "nr = ordy and dv"]
    lines += _bwd_change(sched, cs)
    for i, ci in enumerate(dchs):
        lines += [f"nr = ordy and sv and {i} == sel"]
        lines += _bwd_change(sched, ci)
    return lines


def lane_eval_branch(s, u, ic, oc, sched) -> List[str]:
    cc, cd = ic
    ot, of_ = oc
    lines = [f"cv = v{cc}", f"dv = v{cd}", "both = cv and dv", "tgt = -1"]
    lines += [
        "if cv:",
        f"    _x = d{cc}",
        "    if _x[0]:",
        "        tgt = 0",
        "        if not all(_x):",
        "            raise LaneDivergence",
        "    else:",
        "        tgt = 1",
        "        if any(_x):",
        "            raise LaneDivergence",
    ]
    lines += [f"nd = d{cd} if dv else None"]
    lines += ["nv = both and tgt == 0"]
    lines += _fwd_change(sched, ot)
    lines += ["nv = both and tgt == 1"]
    lines += _fwd_change(sched, of_)
    lines += ["if tgt == 0:", f"    tr = r{ot}",
              "elif tgt == 1:", f"    tr = r{of_}",
              "else:", "    tr = False"]
    lines += ["nr = dv and tr"]
    lines += _bwd_change(sched, cc)
    lines += ["nr = cv and tr"]
    lines += _bwd_change(sched, cd)
    return lines


def lane_eval_demux(s, u, ic, oc, sched) -> List[str]:
    ci0, ci1 = ic
    n = u.n_out
    lines = [f"sv = v{ci0}", f"dv = v{ci1}", "both = sv and dv", "tgt = -1"]
    lines += [
        "if sv:",
        f"    _x = d{ci0}",
        "    tgt = int(_x[0])",
        "    if _x.count(_x[0]) != len(_x):",
        "        for _y in _x:",
        "            if int(_y) != tgt:",
        "                raise LaneDivergence",
        f"    if not 0 <= tgt < {n}:",
        "        raise CircuitError(",
        f"            \"demux {u.name!r}: index %d out of range\""
        " % tgt)",
    ]
    lines += [f"nd = d{ci1} if dv else None"]
    for i, co in enumerate(oc):
        lines += [f"nv = both and tgt == {i}"]
        lines += _fwd_change(sched, co)
    for i, co in enumerate(oc):
        kw = "if" if i == 0 else "elif"
        lines += [f"{kw} tgt == {i}:", f"    tr = r{co}"]
    lines += ["else:", "    tr = False"]
    lines += ["nr = dv and tr"]
    lines += _bwd_change(sched, ci0)
    lines += ["nr = sv and tr"]
    lines += _bwd_change(sched, ci1)
    return lines


def lane_eval_functional(s, u, ic, oc, sched) -> List[str]:
    if u.latency != 0:
        # Pipelined eval only moves the head tuple around: lane-agnostic.
        return eval_functional(s, u, ic, oc, sched)
    co = oc[0]
    lines = _miss_scan(ic)
    lines += ["if miss == 0:", "    nv = 1"]
    lines += ["    " + x for x in _lane_fu_compute(s, u, ic)]
    lines += ["else:", "    nv = 0", "    nd = None"]
    lines += _fwd_change(sched, co)
    lines += [f"ordy = r{co}"]
    for i, ci in enumerate(ic):
        lines += [
            f"nr = ordy and (miss == 0 or (miss == 1 and last == {i}))"
        ]
        lines += _bwd_change(sched, ci)
    return lines


def lane_tick_functional(s, u, ic, oc, sched) -> List[str]:
    ci0 = ic[0]
    new_lines = [f"if v{ci0} and r{ci0}:"]
    new_lines += ["    " + x for x in _lane_fu_compute(s, u, ic)]
    new_lines += ["    new = (nd,)", "else:", "    new = None"]
    return _pipe_shift(s, u, ic, oc, sched, new_lines)


def lane_tick_load_port(s, u, ic, oc, sched) -> List[str]:
    ci = ic[0]
    new_lines = [
        f"if v{ci} and r{ci}:",
        f"    new = (tuple(_f({u.array!r}, int(_a))"
        f" for _f, _a in zip(mrd, d{ci})),)",
        "else:",
        "    new = None",
    ]
    return _pipe_shift(s, u, ic, oc, sched, new_lines)


def lane_tick_store_port(s, u, ic, oc, sched) -> List[str]:
    ca, cd = ic
    new_lines = [
        f"if v{ca} and r{ca}:",
        f"    for _f, _a, _x in zip(mwr, d{ca}, d{cd}):",
        f"        _f({u.array!r}, int(_a), _x)",
        "    new = True",
        "else:",
        "    new = None",
    ]
    return _pipe_shift(s, u, ic, oc, sched, new_lines)


def lane_post_fixed_order_merge(s, u, ic, oc, sched) -> List[str]:
    return _lane_fom_signals(s, u, ic, oc, sched)


def lane_post_functional(s, u, ic, oc, sched) -> List[str]:
    body = lane_eval_functional(s, u, ic, oc, sched) + _carry_refresh(s)
    return _stall_guarded(s, body)


#: Combinational block emitters by catalogue type.
EVAL_BLOCKS = {
    ElasticBuffer: eval_elastic_buffer,
    TransparentFifo: eval_transparent_fifo,
    CreditCounter: eval_credit_counter,
    Entry: eval_entry,
    Sequence: eval_sequence,
    Sink: eval_sink,
    Constant: eval_constant,
    EagerFork: eval_eager_fork,
    LazyFork: eval_lazy_fork,
    Join: eval_join,
    Merge: eval_merge,
    ArbiterMerge: eval_arbiter_merge,
    FixedOrderMerge: eval_fixed_order_merge,
    Mux: eval_mux,
    Branch: eval_branch,
    Demux: eval_demux,
    FunctionalUnit: eval_functional,
    LoadPort: eval_load_port,
    StorePort: eval_store_port,
}

#: Clock-edge (apply, post) block emitters by catalogue type.
TICK_BLOCKS = {
    ElasticBuffer: (tick_elastic_buffer, post_elastic_buffer),
    TransparentFifo: (tick_transparent_fifo, post_transparent_fifo),
    CreditCounter: (tick_credit_counter, post_credit_counter),
    Entry: (tick_entry, post_entry),
    Sequence: (tick_sequence, post_sequence),
    Sink: (tick_sink, post_sink),
    EagerFork: (tick_eager_fork, post_eager_fork),
    FixedOrderMerge: (tick_fixed_order_merge, post_fixed_order_merge),
    FunctionalUnit: (tick_functional, post_functional),
    LoadPort: (tick_load_port, post_load_port),
    StorePort: (tick_store_port, post_store_port),
}

#: Pipelined types whose post pass maintains a carry flag ``k{slot}``.
CARRY_TYPES = (FunctionalUnit, LoadPort, StorePort)

#: Laned combinational emitters: scalar blocks are lane-correct for every
#: type not overridden here (control stays scalar; data tuples flow
#: through unchanged).
LANE_EVAL_BLOCKS = dict(EVAL_BLOCKS)
LANE_EVAL_BLOCKS.update({
    Sequence: lane_eval_sequence,
    Join: lane_eval_join,
    ArbiterMerge: lane_eval_arbiter_merge,
    FixedOrderMerge: lane_eval_fixed_order_merge,
    Mux: lane_eval_mux,
    Branch: lane_eval_branch,
    Demux: lane_eval_demux,
    FunctionalUnit: lane_eval_functional,
})

#: Laned clock-edge (apply, post) emitters.  Sequence needs its post
#: overridden too: the scalar post re-reads ``u.values`` (scalar data)
#: where the laned comb pass reads the broadcast ``usq`` tuples.
LANE_TICK_BLOCKS = dict(TICK_BLOCKS)
LANE_TICK_BLOCKS.update({
    Sequence: (tick_sequence, lane_eval_sequence),
    FixedOrderMerge: (tick_fixed_order_merge, lane_post_fixed_order_merge),
    FunctionalUnit: (lane_tick_functional, lane_post_functional),
    LoadPort: (lane_tick_load_port, post_load_port),
    StorePort: (lane_tick_store_port, post_store_port),
})
