"""Flat memory model backing the load/store ports during simulation."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..errors import SimulationError


class Memory:
    """Per-array flat value stores with bounds checking and access counters.

    Arrays are addressed by flattened integer indices (the frontend lowers
    multi-dimensional accesses to row-major flat addresses).  Reads of cells
    never written return the initial contents.
    """

    def __init__(self):
        self._arrays: Dict[str, List[float]] = {}
        self.reads = 0
        self.writes = 0

    def allocate(self, name: str, size: int, init: Optional[Iterable] = None) -> None:
        if name in self._arrays:
            raise SimulationError(f"array {name!r} already allocated")
        if size < 0:
            raise SimulationError(f"array {name!r}: negative size")
        if init is None:
            cells = [0.0] * size
        else:
            cells = [float(x) for x in init]
            if len(cells) != size:
                raise SimulationError(
                    f"array {name!r}: init has {len(cells)} cells, expected {size}"
                )
        self._arrays[name] = cells

    def _cells(self, name: str) -> List[float]:
        try:
            return self._arrays[name]
        except KeyError:
            raise SimulationError(f"unknown array {name!r}") from None

    def read(self, name: str, addr: int) -> float:
        cells = self._cells(name)
        if not 0 <= addr < len(cells):
            raise SimulationError(
                f"read out of bounds: {name}[{addr}] (size {len(cells)})"
            )
        self.reads += 1
        return cells[addr]

    def write(self, name: str, addr: int, value) -> None:
        cells = self._cells(name)
        if not 0 <= addr < len(cells):
            raise SimulationError(
                f"write out of bounds: {name}[{addr}] (size {len(cells)})"
            )
        self.writes += 1
        cells[addr] = float(value)

    def dump(self, name: str) -> np.ndarray:
        """Snapshot an array's contents as a NumPy vector."""
        return np.array(self._cells(name), dtype=float)

    def snapshot(self) -> Dict[str, List[float]]:
        """Copy of every array's cells (batched engines snapshot initial
        contents so per-lane re-execution can restart from scratch)."""
        return {name: list(cells) for name, cells in self._arrays.items()}

    def restore(self, snap: Dict[str, List[float]]) -> None:
        """Restore cells from a :meth:`snapshot`; resets access counters."""
        for name, cells in snap.items():
            self._arrays[name][:] = cells
        self.reads = 0
        self.writes = 0

    def arrays(self) -> List[str]:
        return sorted(self._arrays)
