"""Batched (lane-parallel) multi-input simulation.

One batched engine evaluates ``B`` independent input sets — *lanes* —
of the same circuit in a single pass.  The representation exploits the
structure of Monte-Carlo sweeps over a dataflow circuit: the circuit and
therefore the *control* behaviour is shared, only the data differs.

* **Control signals stay scalar.**  Each channel has one shared
  valid/ready bit, one activation schedule, one fire scan — exactly the
  scalar codegen loop (:mod:`repro.sim.codegen`), reused verbatim.
* **Data signals are lane tuples.**  A valid channel's data local holds
  a tuple of ``B`` per-lane values; functional units map their compute
  across the tuples, load/store ports dispatch through per-lane
  :class:`~repro.sim.memory.Memory` objects, sinks append whole lane
  tuples.
* **Lockstep is checked, not assumed.**  Everywhere data feeds a control
  decision (branch condition, mux/demux select, the per-lane ``done``
  predicate) the generated code verifies the lanes agree; a disagreement
  raises :class:`~repro.errors.LaneDivergence`.  The generated-loop
  engines catch it (loop exit status 4) and **promote the batch to
  mask-lane (MIMD) execution**: the same module's ``make_mask_loop``
  re-runs the pass with every 1-bit control signal packed as a per-lane
  bitmask integer, per-unit sequential state split per lane
  (:func:`~repro.sim.codegen_blocks.mask_state`), and a ``live`` mask
  giving each lane its own done/cycle-freeze bit.  Lanes keep executing
  in parallel through arbitrary control divergence; nothing falls back
  to scalar.  Batched results are **bit-identical to B scalar runs by
  construction**: in lockstep because every lane's values evolve exactly
  as they would alone (shared control is *verified* equal), and in mask
  mode because every masked block is the scalar block's logic applied
  lane-wise under the lane's own control bits.  The promotion itself is
  sound because the combinational pass never mutates unit state and the
  engine re-arms every activation flag first, so the mask loop's first
  pass recomputes the fixpoint from scratch — exactly like engine
  initialization.  (The event backend has no generated loop; it simply
  runs every lane sequentially on scalar engines.)

Per-lane termination uses a done-mask: the engine tracks which lanes
have satisfied their ``done`` predicate.  In lockstep the mask can only
go from empty to full in one step (per-lane completion cycles are
recorded then); a *partial* mask is itself a divergence and promotes to
mask mode, where the finished lanes' ``live`` bits are cleared and they
coast with frozen state while the rest run to completion.

Three batched backends mirror the scalar trio:

``BatchedCodegenEngine``
    Runs the laned generated module, content-addressed in the same disk
    cache as scalar modules (laned and scalar sources always differ, so
    their keys can never collide).
``BatchedCompiledEngine``
    Runs the same laned program but compiles it in-process only (no disk
    artifacts), mirroring the scalar compiled backend's contract.
``BatchedEventEngine``
    The reference: always executes lanes sequentially on the scalar
    event engine.  Slow and trivially correct — the differential anchor.

Observers are refused up front: a ``Trace``/``SimProfile``/sanitizer
observes one circuit execution, and a batched pass is ``B`` of them
folded together; fast-forward is a scalar-codegen feature.  Use scalar
runs (``lanes=None``) for observed simulations.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence

from ..circuit import DataflowCircuit, Sink
from ..errors import (
    CircuitError,
    DeadlockError,
    LaneDivergence,
    SimulationError,
)
from .codegen import (
    CodegenEngine,
    fast_forward_default,
    generate_source,
    load_module,
    source_key,
    unsupported_units,
)
from .codegen_blocks import mask_state
from .compiled import CompiledEngine
from .deadlock import diagnose
from .engine import DEFAULT_DEADLOCK_WINDOW, Engine
from .memory import Memory
from .sanitize import sanitize_default
from .signal_graph import compile_schedule

#: Environment variable giving ``run``/``sweep`` their ``--lanes``
#: default, matching the ``REPRO_SIM_BACKEND``/``REPRO_SIM_FF``
#: convention.
LANES_ENV = "REPRO_SIM_LANES"


def lanes_default() -> Optional[int]:
    """``--lanes`` default from ``$REPRO_SIM_LANES`` (None unless set).

    ``1`` (and unset/empty) means scalar execution — no batching; a
    malformed value fails loudly rather than silently running scalar.
    """
    raw = os.environ.get(LANES_ENV, "").strip()
    if not raw:
        return None
    try:
        lanes = int(raw)
    except ValueError:
        raise SimulationError(
            f"{LANES_ENV} wants a positive integer, got {raw!r}"
        ) from None
    if lanes < 1:
        raise SimulationError(
            f"{LANES_ENV} wants a positive integer, got {lanes}"
        )
    return lanes if lanes > 1 else None


#: In-process namespace memo for the compiled (no-disk) batched backend.
_INPROC_CACHE: "OrderedDict[str, dict]" = OrderedDict()
_INPROC_CACHE_MAX = 32


def _load_inprocess(source: str):
    """Compile a laned module in-process; never touches the disk cache."""
    key = hashlib.sha256(source.encode()).hexdigest()
    ns = _INPROC_CACHE.get(key)
    if ns is not None:
        _INPROC_CACHE.move_to_end(key)
        return ns, "memory"
    ns = {"CircuitError": CircuitError, "LaneDivergence": LaneDivergence}
    exec(compile(source, "<laned>", "exec"), ns)
    _INPROC_CACHE[key] = ns
    while len(_INPROC_CACHE) > _INPROC_CACHE_MAX:
        _INPROC_CACHE.popitem(last=False)
    return ns, "generated"


class BatchedEngineBase:
    """Validation, per-lane bookkeeping and the scalar fallback."""

    backend = "?"
    #: Scalar engine family the fallback (and the event backend) runs.
    scalar_backend = "?"

    def _init_batched(
        self,
        circuit: DataflowCircuit,
        lanes: int,
        memories: Optional[Sequence[Memory]],
        trace,
        profile,
        sanitize: Optional[bool],
        fast_forward: Optional[bool],
        deadlock_window: int,
    ) -> None:
        if not isinstance(lanes, int) or lanes < 1:
            raise SimulationError(
                f"lanes must be a positive integer (got {lanes!r})"
            )
        if trace is not None:
            raise SimulationError(
                "batched mode cannot drive a Trace: a trace observes one "
                "execution and a batched pass folds several together; "
                "run lanes=None (scalar) to trace"
            )
        if profile is not None:
            raise SimulationError(
                "batched mode cannot drive a SimProfile: the lane-parallel "
                "loop has no per-unit instrumentation points; profile a "
                "scalar run (lanes=None) instead"
            )
        # Reject a pre-built HandshakeSanitizer instance too (truthy
        # non-bool), not just sanitize=True.
        if (
            sanitize is True
            or (sanitize is not None and sanitize is not False)
            or (sanitize is None and sanitize_default())
        ):
            raise SimulationError(
                "batched mode cannot drive the HandshakeSanitizer: it "
                "checks one execution's handshake contract per cycle; "
                "drop --sanitize/REPRO_SIM_SANITIZE or run scalar "
                "(lanes=None)"
            )
        if fast_forward is True or (
            fast_forward is None and fast_forward_default()
        ):
            raise SimulationError(
                "fast-forward is a scalar codegen feature and cannot be "
                "combined with batched lanes (lanes already amortize "
                "steady-state cost); drop --fast-forward/REPRO_SIM_FF "
                "or run scalar (lanes=None)"
            )
        circuit.validate()
        self.circuit = circuit
        self.lanes = lanes
        self.deadlock_window = deadlock_window

        needs_mem = any(
            getattr(u, "needs_memory", False)
            for u in circuit.units.values()
        )
        mems = list(memories) if memories else []
        if needs_mem:
            if len(mems) != lanes:
                raise SimulationError(
                    f"batched run needs one Memory per lane "
                    f"({lanes} lanes, got {len(mems)})"
                )
        elif mems:
            raise SimulationError(
                "memories given but no unit of this circuit uses a memory"
            )
        self.memories: List[Memory] = mems
        #: Initial per-lane memory contents, for per-lane re-execution
        #: (the event backend's strategy; never needed after a mask-mode
        #: promotion, which continues in place).
        self._mem0 = [m.snapshot() for m in mems]
        self._sink_names = [
            n for n, u in circuit.units.items() if isinstance(u, Sink)
        ]

        #: Bit l set once lane l's ``done`` predicate held.
        self.done_mask = 0
        self.lane_cycles: List[int] = [0] * lanes
        self._lane_fires: List[int] = [0] * lanes
        #: Lanes re-executed on a scalar engine after a divergence
        #: (0 = the whole batch ran lane-parallel; the generated-loop
        #: engines keep this 0 even under divergence, via mask mode).
        self.fallback_lanes = 0
        #: Lockstep→mask promotions performed (0 = stayed lockstep).
        self.mask_promotions = 0
        #: Cycle of the first promotion, or None.
        self.promotion_cycle: Optional[int] = None
        #: The :class:`LaneDivergence` that triggered it, or None.
        self.divergence: Optional[LaneDivergence] = None
        self._divergence: Optional[LaneDivergence] = None
        self._masked = False
        self._fb_lane: Optional[int] = None
        self._fb_done: Dict[int, Dict[str, list]] = {}

    # ------------------------------------------------------- per-lane views
    @property
    def lane_fires(self) -> List[int]:
        return list(self._lane_fires)

    def sink_count(self, name: str, lane: int) -> int:
        """Number of tokens lane ``lane`` delivered to sink ``name``."""
        if self._fb_lane is not None or self._fb_done:
            if lane == self._fb_lane:
                return len(self.circuit.units[name].received)
            got = self._fb_done.get(lane)
            return len(got[name]) if got is not None else 0
        # Lockstep: every append carries one value per lane.
        return len(self.circuit.units[name].received)

    def sink_received(self, name: str, lane: int) -> list:
        """Values lane ``lane`` delivered to sink ``name``, in order."""
        if self._fb_lane is not None or self._fb_done:
            if lane == self._fb_lane:
                return list(self.circuit.units[name].received)
            got = self._fb_done.get(lane)
            return list(got[name]) if got is not None else []
        return [t[lane] for t in self.circuit.units[name].received]

    # --------------------------------------------------------- the fallback
    def _scalar_engine(self, lane: int):
        mem = self.memories[lane] if self.memories else None
        if self.scalar_backend == "event":
            return Engine(
                self.circuit, memory=mem, sanitize=False,
                deadlock_window=self.deadlock_window,
            )
        if self.scalar_backend == "compiled":
            return CompiledEngine(
                self.circuit, memory=mem, sanitize=False,
                deadlock_window=self.deadlock_window,
            )
        return CodegenEngine(
            self.circuit, memory=mem, sanitize=False,
            deadlock_window=self.deadlock_window, fast_forward=False,
        )

    def _run_per_lane(
        self,
        done_lane: Callable[[int], bool],
        max_cycles: int,
    ) -> List[int]:
        """Run every lane on a scalar engine; bit-exact by construction.

        Restores each lane's memory to its initial contents first, so the
        path is correct both as the from-scratch strategy (event backend)
        and as the fallback after a partially executed lockstep attempt.
        """
        for mem, snap in zip(self.memories, self._mem0):
            mem.restore(snap)
        self.fallback_lanes = self.lanes
        self._fb_done = {}
        lane_cycles: List[int] = []
        for lane in range(self.lanes):
            self._fb_lane = lane
            try:
                eng = self._scalar_engine(lane)
                cycles = eng.run(
                    (lambda l=lane: done_lane(l)), max_cycles=max_cycles
                )
            finally:
                # Snapshot even on error: completed lanes stay readable.
                self._fb_done[lane] = {
                    n: list(self.circuit.units[n].received)
                    for n in self._sink_names
                }
                self._fb_lane = None
            self._fb_done[lane] = {
                n: list(self.circuit.units[n].received)
                for n in self._sink_names
            }
            lane_cycles.append(cycles)
            self._lane_fires[lane] = eng.total_fires
            self.lane_cycles[lane] = cycles
            self.done_mask |= 1 << lane
        return list(lane_cycles)


class _LanedLoopEngine(BatchedEngineBase):
    """Common machinery of the two lane-parallel generated-loop engines."""

    def __init__(
        self,
        circuit: DataflowCircuit,
        lanes: int,
        memories: Optional[Sequence[Memory]] = None,
        trace=None,
        profile=None,
        sanitize: Optional[bool] = None,
        fast_forward: Optional[bool] = None,
        deadlock_window: int = DEFAULT_DEADLOCK_WINDOW,
    ):
        self._init_batched(
            circuit, lanes, memories, trace, profile, sanitize,
            fast_forward, deadlock_window,
        )
        schedule = compile_schedule(circuit)
        self.schedule = schedule
        units = [circuit.units[n] for n in schedule.names]
        self._units = units
        for u in units:
            u.reset()

        nch = schedule.nch
        self.valid = bytearray(nch)
        self.ready = bytearray(nch)
        self.fired = bytearray(nch)
        self.data: List = [None] * nch
        self._zeros = bytes(nch)
        self._aflags = bytearray(b"\x01" * schedule.n_occ)
        self._kflags = bytearray(schedule.n_units)
        self._quiet = False
        self.cycle = 0
        self.total_fires = 0
        self._idle_cycles = 0
        self._mrd = [m.read for m in self.memories]
        self._mwr = [m.write for m in self.memories]

        self._slot_of: Dict[str, int] = {
            n: i for i, n in enumerate(schedule.names)
        }

        # Mask-mode (MIMD) state; populated by ``_promote``.
        self._mv: Optional[List[int]] = None
        self._mr: Optional[List[int]] = None
        self._mstate: Optional[List[Optional[dict]]] = None
        self._live = 0
        self._fa = 0
        self._mask_loop = None

        source = generate_source(circuit, schedule, lanes=True)
        ns, key, origin = self._load(source)
        self.codegen_key = key
        self.codegen_origin = origin
        self._ns = ns
        self._loop = ns["make_loop"](self)

    def _load(self, source: str):  # pragma: no cover - overridden
        raise NotImplementedError

    # -------------------------------------------------- mask-mode lane views
    def sink_count(self, name: str, lane: int) -> int:
        if self._masked:
            return len(self._mstate[self._slot_of[name]]["recv"][lane])
        return super().sink_count(name, lane)

    def sink_received(self, name: str, lane: int) -> list:
        if self._masked:
            return list(self._mstate[self._slot_of[name]]["recv"][lane])
        return super().sink_received(name, lane)

    # ------------------------------------------------------------- promotion
    def _promote(self) -> None:
        """Switch from the lockstep loop to the mask-lane (MIMD) loop.

        Sound at any point where the lockstep loop stopped — after a
        completed cycle (partial done-mask) or mid-combinational-pass
        (data→control divergence) — because the combinational pass never
        mutates unit state: promoting the synced signal arrays to lane
        masks and re-arming every activation flag makes the mask loop's
        first pass recompute the handshake fixpoint from scratch, with
        semantics identical to engine initialization.
        """
        lb = self.lanes
        full = (1 << lb) - 1
        zt = (None,) * lb
        # Control bits -> lane bitmasks; data locals -> always lane
        # tuples (``zt`` stands in wherever no lane is valid).
        self._mv = [full if b else 0 for b in self.valid]
        self._mr = [full if b else 0 for b in self.ready]
        self.data = [zt if d is None else d for d in self.data]
        self._mstate = [mask_state(u, lb, full) for u in self._units]
        self._aflags[:] = b"\x01" * len(self._aflags)
        self._quiet = False
        # Lanes already retired by a partial done-mask coast from the
        # start; everyone else is checked on first fire activity.
        self._live = full & ~self.done_mask
        self._fa = self._live
        baseline = self.total_fires
        for lane in range(lb):
            # In lockstep every lane saw every channel fire, so each
            # lane's own fire count *is* the shared total so far.
            self._lane_fires[lane] = baseline
            if self.done_mask >> lane & 1:
                self.lane_cycles[lane] = self.cycle
        self.mask_promotions += 1
        if self.promotion_cycle is None:
            self.promotion_cycle = self.cycle
        self._masked = True
        self._mask_loop = self._ns["make_mask_loop"](self)

    def _raise_mask_status(self, status: int, max_cycles: int) -> None:
        if status == 2:
            liv = self._live
            valid = bytearray(1 if m & liv else 0 for m in self._mv)
            ready = bytearray(1 if m & liv else 0 for m in self._mr)
            blocked = diagnose(self.circuit, valid, ready)
            raise DeadlockError(
                f"deadlock at cycle {self.cycle}: no activity for "
                f"{self._idle_cycles} cycles across the "
                f"{liv.bit_count()} live lane(s)\n  "
                + "\n  ".join(blocked),
                cycle=self.cycle,
                blocked=blocked,
            )
        if status == 3:
            raise SimulationError(
                f"simulation exceeded {max_cycles} cycles without "
                f"completing ({self.total_fires} transfers so far)"
            )

    def _run_masked(
        self,
        done_lane: Callable[[int], bool],
        max_cycles: int,
    ) -> List[int]:
        while True:
            budget = max(max_cycles - self.cycle, 0) + 1
            status, _ = self._mask_loop(
                budget, done_lane, max_cycles, self.deadlock_window
            )
            if status == 1:
                return list(self.lane_cycles)
            self._raise_mask_status(status, max_cycles)

    def _raise_status(self, status: int, max_cycles: int) -> None:
        if status == 2:
            blocked = diagnose(self.circuit, self.valid, self.ready)
            raise DeadlockError(
                f"deadlock at cycle {self.cycle}: no activity for "
                f"{self._idle_cycles} cycles\n  " + "\n  ".join(blocked),
                cycle=self.cycle,
                blocked=blocked,
            )
        if status == 3:
            raise SimulationError(
                f"simulation exceeded {max_cycles} cycles without "
                f"completing ({self.total_fires} transfers so far)"
            )

    def run_lanes(
        self,
        done_lane: Callable[[int], bool],
        max_cycles: int = 1_000_000,
        uniform_done: bool = False,
        start_masked: bool = False,
    ) -> List[int]:
        """Run until every lane's ``done_lane(l)`` holds; per-lane cycles.

        ``uniform_done=True`` promises that under lockstep execution the
        predicate is lane-independent (true whenever it only reads lane
        counters the lockstep pass advances uniformly — per-lane memory
        read/write counts against equal targets, shared sink counts), so
        checking lane 0 suffices.  Without the promise every lane is
        checked each cycle and a *partial* done-mask — some lanes done,
        others not — is itself a divergence.

        Divergence (loop exit status 4, or the partial done-mask raise)
        *promotes* the batch to mask-lane execution: the run continues
        in place with per-lane control bitmasks, no lane ever re-runs on
        a scalar engine, and ``fallback_lanes`` stays 0.

        In mask mode ``done_lane`` is re-checked only for lanes with a
        fire into a ``Sink`` or ``StorePort`` since their previous
        check: predicates must observe lane progress through sink
        receptions and/or memory writes (as the kernel runner's and all
        repo predicates do) — both are monotone and advance exactly on
        those fires, so no completion can be missed.

        ``start_masked=True`` is a test hook: promote before the first
        cycle (the pristine state — everything armed, nothing fired — is
        exactly what promotion produces) so lockstep-only workloads can
        be forced through the mask loop for differential testing.
        """
        full = (1 << self.lanes) - 1
        rng = range(self.lanes)

        if start_masked and not self._masked:
            self._promote()
        if self._masked:
            return self._run_masked(done_lane, max_cycles)

        if uniform_done:
            def done() -> bool:
                return done_lane(0)
        else:
            def done() -> bool:
                mask = 0
                for l in rng:
                    if done_lane(l):
                        mask |= 1 << l
                if mask == full:
                    return True
                if mask:
                    # Caught by the generated loop's status-4 handler.
                    self.done_mask = mask
                    raise LaneDivergence(
                        "done", tuple(bool(mask >> l & 1) for l in rng)
                    )
                return False

        while True:
            budget = max(max_cycles - self.cycle, 0) + 1
            status, _ = self._loop(
                budget, done, max_cycles, self.deadlock_window,
                None, None,
            )
            if status == 1:
                break
            if status == 4:
                exc = self._divergence
                if exc is not None and exc.cycle is None:
                    exc.cycle = self.cycle
                self.divergence = exc
                self._promote()
                return self._run_masked(done_lane, max_cycles)
            self._raise_status(status, max_cycles)

        self.done_mask = full
        self.lane_cycles = [self.cycle] * self.lanes
        self._lane_fires = [self.total_fires] * self.lanes
        return list(self.lane_cycles)


class BatchedCodegenEngine(_LanedLoopEngine):
    """Lane-parallel generated loop, disk-cached like scalar codegen."""

    backend = "codegen"
    scalar_backend = "codegen"

    def _load(self, source: str):
        key = source_key(source)
        ns, origin = load_module(source, key=key)
        return ns, key, origin


class BatchedCompiledEngine(_LanedLoopEngine):
    """Lane-parallel generated loop, compiled in-process (no disk cache)."""

    backend = "compiled"
    scalar_backend = "compiled"

    def _load(self, source: str):
        ns, origin = _load_inprocess(source)
        return ns, source_key(source), origin


class BatchedEventEngine(BatchedEngineBase):
    """Reference batched backend: lanes run sequentially on the event
    engine.  No lane-parallelism — the differential anchor the two
    lockstep engines are tested against."""

    backend = "event"
    scalar_backend = "event"

    def __init__(
        self,
        circuit: DataflowCircuit,
        lanes: int,
        memories: Optional[Sequence[Memory]] = None,
        trace=None,
        profile=None,
        sanitize: Optional[bool] = None,
        fast_forward: Optional[bool] = None,
        deadlock_window: int = DEFAULT_DEADLOCK_WINDOW,
    ):
        self._init_batched(
            circuit, lanes, memories, trace, profile, sanitize,
            fast_forward, deadlock_window,
        )

    def run_lanes(
        self,
        done_lane: Callable[[int], bool],
        max_cycles: int = 1_000_000,
        uniform_done: bool = False,
        start_masked: bool = False,
    ) -> List[int]:
        # ``start_masked`` is accepted for API parity and ignored: the
        # event backend has no generated loop to promote.
        cycles = self._run_per_lane(done_lane, max_cycles)
        self.fallback_lanes = 0  # by design, not a divergence
        return cycles


#: Batched engine classes by (scalar) backend name.
BATCHED_BACKENDS = {
    "event": BatchedEventEngine,
    "compiled": BatchedCompiledEngine,
    "codegen": BatchedCodegenEngine,
}


def create_batched_engine(
    circuit: DataflowCircuit,
    backend: str,
    lanes: int,
    memories: Optional[Sequence[Memory]] = None,
    **kwargs,
):
    """Instantiate the batched engine mirroring scalar ``backend``."""
    try:
        cls = BATCHED_BACKENDS[backend]
    except KeyError:
        raise SimulationError(
            f"unknown simulation backend {backend!r}; "
            f"choose from {sorted(BATCHED_BACKENDS)}"
        ) from None
    return cls(circuit, lanes, memories=memories, **kwargs)
