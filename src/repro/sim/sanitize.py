"""Runtime handshake-protocol sanitizer (``--sanitize`` / ``REPRO_SIM_SANITIZE``).

Latency-insensitive correctness rests on a per-channel contract that the
engines *assume* but never check:

* **hold** — once a producer asserts ``valid`` it must keep it asserted
  until the transfer is accepted (``valid & ready``);
* **stability** — the data value must not change while ``valid`` is
  pending;
* **conservation** — tokens are neither dropped nor duplicated: lockstep
  units (joins, lazy forks, zero-latency FUs) fire all their ports in the
  same cycle, routing units (branch/demux) fire exactly one output per
  input token, and every stateful unit's final occupancy must equal its
  fire-count imbalance.

This module implements an opt-in observer enforcing that contract on
every channel every cycle, on **both** simulation backends.  It is a pure
observer — it never writes a signal and never perturbs evaluation order —
so a sanitized run is bit-identical (same cycles, same traces) to an
unsanitized one.  Violations are reported as ``repro.lint`` diagnostics
(codes ``SAN001``–``SAN005``) and surfaced as a
:class:`~repro.errors.LintError` at the end of :meth:`BaseEngine.run`.

``SAN005`` is the opt-in *alias* check backing the static
memory-dependence analyzer (:mod:`repro.analysis.memdep`): construct the
sanitizer with ``alias_pairs`` — the (load, store) site pairs the
analyzer proved ``independent`` — and it records every address each
memory port issues, raising the moment two supposedly-independent sites
touch a common cell.  Recording is armed only when ``alias_pairs`` is
passed, so ordinary sanitized runs pay nothing for it; armed or not, the
sanitizer remains a pure observer and runs stay bit-identical.

Components that are *non-persistent* by construction — merges and
arbiters (whose selected input can be displaced before the grant) and
lazy forks (whose output valid combinationally depends on sibling
readiness) — are exempt from the hold/stability assertions, exactly as in
latency-insensitive design practice; conservation still applies to them.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..circuit import (
    ArbiterMerge,
    Branch,
    CreditCounter,
    Demux,
    EagerFork,
    ElasticBuffer,
    Entry,
    FixedOrderMerge,
    FunctionalUnit,
    Join,
    LazyFork,
    LoadPort,
    Merge,
    Mux,
    Sequence,
    Sink,
    StorePort,
    TransparentFifo,
)
from ..errors import LintError
from ..lint.diagnostics import Diagnostic

#: Environment variable enabling the sanitizer for every engine built
#: without an explicit ``sanitize=`` argument.
SANITIZE_ENV = "REPRO_SIM_SANITIZE"

#: Unit types whose outputs are non-persistent (may withdraw valid or
#: switch data before a transfer completes) and therefore exempt from the
#: hold/stability checks.
_NON_PERSISTENT = (Merge, ArbiterMerge, FixedOrderMerge, LazyFork)


def sanitize_default() -> bool:
    """True when ``REPRO_SIM_SANITIZE`` asks for sanitized simulation."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


class HandshakeSanitizer:
    """Per-cycle latency-insensitive contract checker for one circuit.

    The engine calls :meth:`observe` once per simulated cycle at the
    combinational fixpoint (fired flags set, ticks not yet applied), or
    :meth:`observe_quiet` on provably-unchanged cycles, then
    :meth:`finish` once at the end of the run.
    """

    #: Diagnostics kept in full; further violations only bump the count.
    MAX_DIAGNOSTICS = 64

    def __init__(
        self,
        circuit,
        alias_pairs: Optional[
            List[Tuple[str, str, str, str]]
        ] = None,
    ) -> None:
        self.circuit = circuit
        nch = max((ch.cid for ch in circuit.channels), default=-1) + 1
        self._live = sorted(ch.cid for ch in circuit.channels)
        self._label_of: Dict[int, str] = {
            ch.cid: ch.label() for ch in circuit.channels
        }

        #: Per-channel: 1 = valid was pending (asserted, unfired) at the
        #: end of the previous observed cycle and the producer is held to
        #: the persistence contract.
        self._pend = bytearray(nch)
        self._pdata: List = [None] * nch
        #: Per-channel fire counts for the conservation checks.
        self.fire_counts = [0] * nch

        hold = bytearray(nch)
        for ch in circuit.channels:
            src = circuit.units[ch.src.unit]
            hold[ch.cid] = 0 if isinstance(src, _NON_PERSISTENT) else 1
        self._hold = hold

        # Lockstep groups: every listed channel must fire in the same
        # cycle as the others.  Routing groups: when the input channel
        # fires exactly one of the outputs must fire, and no output may
        # fire without the input.
        lockstep: List[Tuple[str, Tuple[int, ...]]] = []
        route: List[Tuple[str, int, Tuple[int, ...]]] = []
        for u in circuit.units.values():
            ins = [
                ch.cid
                for i in range(u.n_in)
                if (ch := circuit.in_channel(u, i)) is not None
            ]
            outs = [
                ch.cid
                for i in range(u.n_out)
                if (ch := circuit.out_channel(u, i)) is not None
            ]
            if isinstance(u, Join):
                lockstep.append((u.name, tuple(ins + outs)))
            elif isinstance(u, LazyFork):
                lockstep.append((u.name, tuple(ins + outs)))
            elif isinstance(u, FunctionalUnit):
                if u.latency == 0:
                    lockstep.append((u.name, tuple(ins + outs)))
                elif len(ins) > 1:
                    lockstep.append((u.name, tuple(ins)))
            elif isinstance(u, (Branch, Demux)):
                if len(ins) == 2:
                    lockstep.append((u.name, tuple(ins)))
                if ins and outs:
                    route.append((u.name, ins[-1], tuple(outs)))
            elif isinstance(u, StorePort) and len(ins) == 2:
                lockstep.append((u.name, tuple(ins)))
        self._lockstep = lockstep
        self._route = route

        # SAN005 alias watching — armed only when ``alias_pairs`` is
        # given (a list of (unit_a, unit_b, array, pair_label) tuples of
        # statically-independent memory-port pairs; unit_a == unit_b
        # marks a self pair, violated by any address hit twice).  When
        # armed, *every* memory port's issued addresses are recorded so
        # measurement bridges can read footprints of unlisted pairs too.
        self._alias_watch = alias_pairs is not None
        self._addr_counts: Dict[str, Dict[int, int]] = {}
        self._alias_channels: List[Tuple[int, str]] = []
        self._alias_rules: Dict[str, List[Tuple[int, str, str, str]]] = {}
        self._alias_seen: List[bool] = []
        if self._alias_watch:
            for u in circuit.units.values():
                if isinstance(u, (LoadPort, StorePort)):
                    ch = circuit.in_channel(u, 0)
                    if ch is not None:
                        self._alias_channels.append((ch.cid, u.name))
                        self._addr_counts[u.name] = {}
            for idx, (ua, ub, array, label) in enumerate(alias_pairs or []):
                self._alias_seen.append(False)
                self._alias_rules.setdefault(ua, []).append(
                    (idx, ub, array, label)
                )
                if ub != ua:
                    self._alias_rules.setdefault(ub, []).append(
                        (idx, ua, array, label)
                    )

        self.diagnostics: List[Diagnostic] = []
        self.violation_count = 0
        self.cycles_checked = 0
        self._finished = False

    # ------------------------------------------------------------- reporting
    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def _emit(
        self,
        code: str,
        message: str,
        unit: Optional[str] = None,
        cid: Optional[int] = None,
        cycle: Optional[int] = None,
    ) -> None:
        self.violation_count += 1
        if len(self.diagnostics) >= self.MAX_DIAGNOSTICS:
            return
        self.diagnostics.append(Diagnostic(
            code=code,
            severity="error",
            message=message,
            unit=unit,
            channel=self._label_of.get(cid) if cid is not None else None,
            source="sanitize",
            cycle=cycle,
        ))

    def addresses_of(self, unit: str) -> Dict[int, int]:
        """Observed ``address -> issue count`` for one memory port.

        Only populated when the sanitizer was armed with
        ``alias_pairs``; empty for unknown / non-memory units.
        """
        return dict(self._addr_counts.get(unit, {}))

    def raise_if_violations(self) -> None:
        """Raise :class:`LintError` when any violation was observed."""
        if self.ok:
            return
        shown = [d.format() for d in self.diagnostics[:8]]
        extra = self.violation_count - len(shown)
        if extra > 0:
            shown.append(f"(+{extra} more violation(s))")
        raise LintError(
            f"handshake sanitizer: {self.violation_count} protocol "
            f"violation(s) in circuit {self.circuit.name!r}:\n  "
            + "\n  ".join(shown),
            diagnostics=self.diagnostics,
        )

    # ------------------------------------------------------------- observing
    def observe(self, cycle, valid, ready, data, fired) -> None:
        """Check one cycle's fixpoint (fired flags set, pre-tick)."""
        pend = self._pend
        pdata = self._pdata
        hold = self._hold
        fires = self.fire_counts
        for c in self._live:
            f = fired[c]
            v = valid[c]
            if f:
                fires[c] += 1
            if pend[c]:
                if not v:
                    self._emit(
                        "SAN001",
                        "valid retracted before acceptance on "
                        f"{self._label_of[c]}",
                        cid=c, cycle=cycle,
                    )
                elif data[c] != pdata[c]:
                    self._emit(
                        "SAN002",
                        f"data changed while valid pending on "
                        f"{self._label_of[c]} "
                        f"({pdata[c]!r} -> {data[c]!r})",
                        cid=c, cycle=cycle,
                    )
            pend[c] = 1 if (v and not f and hold[c]) else 0
            if v:
                pdata[c] = data[c]

        if self._alias_watch:
            for c, uname in self._alias_channels:
                if not fired[c]:
                    continue
                addr = int(data[c])
                counts = self._addr_counts[uname]
                n = counts.get(addr, 0) + 1
                counts[addr] = n
                for idx, other, array, label in self._alias_rules.get(
                    uname, ()
                ):
                    if self._alias_seen[idx]:
                        continue
                    if other == uname:
                        hit = n >= 2
                    else:
                        hit = addr in self._addr_counts.get(other, ())
                    if hit:
                        self._alias_seen[idx] = True
                        self._emit(
                            "SAN005",
                            f"statically-independent pair {label} of "
                            f"array {array!r} aliased at runtime: "
                            f"address {addr} reached both sites",
                            unit=uname, cid=c, cycle=cycle,
                        )

        for name, cids in self._lockstep:
            first = bool(fired[cids[0]])
            for c in cids[1:]:
                if bool(fired[c]) != first:
                    self._emit(
                        "SAN003",
                        f"lockstep unit {name!r} fired only part of its "
                        "ports this cycle (token dropped or duplicated)",
                        unit=name, cid=c, cycle=cycle,
                    )
                    break
        for name, cin, couts in self._route:
            n_out = 0
            for c in couts:
                if fired[c]:
                    n_out += 1
            if fired[cin]:
                if n_out != 1:
                    self._emit(
                        "SAN003",
                        f"routing unit {name!r} fired {n_out} outputs for "
                        "one input token (expected exactly 1)",
                        unit=name, cid=cin, cycle=cycle,
                    )
            elif n_out:
                self._emit(
                    "SAN003",
                    f"routing unit {name!r} fired an output with no input "
                    "token (token duplicated)",
                    unit=name, cid=cin, cycle=cycle,
                )
        self.cycles_checked += 1

    def observe_quiet(self) -> None:
        """Account for a provably-unchanged cycle (no signal changed, so
        no new violation is possible)."""
        self.cycles_checked += 1

    # -------------------------------------------------------------- finishing
    def finish(self) -> None:
        """End-of-run conservation: every stateful unit's occupancy must
        equal its fire-count imbalance."""
        if self._finished:
            return
        self._finished = True
        circuit = self.circuit
        fires = self.fire_counts

        def fin(u, i):
            ch = circuit.in_channel(u, i)
            return fires[ch.cid] if ch is not None else 0

        def fout(u, i):
            ch = circuit.out_channel(u, i)
            return fires[ch.cid] if ch is not None else 0

        def bad(u, expect, got, what):
            self._emit(
                "SAN004",
                f"token conservation broken at {u.describe()}: {what} "
                f"is {got} but fire counts imply {expect}",
                unit=u.name,
            )

        for u in circuit.units.values():
            if isinstance(u, (ElasticBuffer, TransparentFifo)):
                expect = fin(u, 0) - fout(u, 0)
                if len(u._q) != expect:
                    bad(u, expect, len(u._q), "queue occupancy")
            elif isinstance(u, CreditCounter):
                expect = u.initial - (fout(u, 0) - fin(u, 0))
                if u._count != expect:
                    bad(u, expect, u._count, "credit count")
            elif isinstance(u, Sink):
                expect = fin(u, 0)
                if len(u.received) != expect:
                    bad(u, expect, len(u.received), "received count")
            elif isinstance(u, Entry):
                expect = fout(u, 0)
                got = u.count - u._remaining
                if got != expect:
                    bad(u, expect, got, "emitted count")
            elif isinstance(u, Sequence):
                expect = fout(u, 0)
                if u._pos != expect:
                    bad(u, expect, u._pos, "emitted count")
            elif isinstance(u, EagerFork):
                base = fin(u, 0)
                for i in range(u.n_out):
                    expect = base + (1 if u._sent[i] else 0)
                    got = fout(u, i)
                    if got != expect:
                        bad(u, expect, got, f"output {i} fire count")
            elif isinstance(u, (FunctionalUnit, LoadPort, StorePort)):
                if u.latency == 0:
                    continue
                in_flight = sum(1 for st in u._pipe if st is not None)
                expect = fin(u, 0) - fout(u, 0)
                if in_flight != expect:
                    bad(u, expect, in_flight, "pipeline occupancy")
