"""Execution traces: which channel fired in which cycle.

Schedule-level assertions in the tests (e.g. reproducing the paper's
Figure 2 schedules) observe *when* specific units start computations; the
:class:`Trace` records firing cycles for watched channels, or for every
channel when ``record_all`` is set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..circuit import Channel, DataflowCircuit


class Trace:
    """Firing-cycle recorder.

    ``watch`` registers channels of interest before the run; during the run
    the engine appends every watched firing.  ``fires_of`` retrieves the
    cycles at which a unit's input or output port transferred a token.
    """

    def __init__(self, record_all: bool = False):
        self.record_all = record_all
        self._watched: Set[int] = set()
        self.fires: Dict[int, List[int]] = {}

    def watch_channel(self, ch: Channel) -> None:
        self._watched.add(ch.cid)
        self.fires.setdefault(ch.cid, [])

    def watch_unit_input(self, circuit: DataflowCircuit, unit_name: str, port: int = 0):
        ch = circuit.in_channel(circuit.unit(unit_name), port)
        if ch is None:
            raise KeyError(f"{unit_name} input {port} is unconnected")
        self.watch_channel(ch)
        return ch

    def watch_unit_output(self, circuit: DataflowCircuit, unit_name: str, port: int = 0):
        ch = circuit.out_channel(circuit.unit(unit_name), port)
        if ch is None:
            raise KeyError(f"{unit_name} output {port} is unconnected")
        self.watch_channel(ch)
        return ch

    @property
    def active(self) -> bool:
        """True when the trace can record anything at all.

        The engines skip all per-fire trace work when this is False, so an
        unused ``Trace()`` costs nothing on the hot path.
        """
        return self.record_all or bool(self._watched)

    # Called by the engine; kept tiny because it is on the hot path.  The
    # lists for watched channels are preallocated by ``watch_channel``, so
    # the common case is a single dict lookup + append (no setdefault
    # allocating and discarding a list on every fire).
    def record(self, cid: int, cycle: int) -> None:
        lst = self.fires.get(cid)
        if lst is not None:
            lst.append(cycle)
        elif self.record_all:
            self.fires[cid] = [cycle]

    def cycles_of(self, ch: Channel) -> List[int]:
        return self.fires.get(ch.cid, [])

    def interarrival(self, ch: Channel) -> List[int]:
        """Gaps between consecutive firings — the observed II sequence."""
        cyc = self.fires.get(ch.cid, [])
        return [b - a for a, b in zip(cyc, cyc[1:])]
