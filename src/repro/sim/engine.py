"""Cycle-accurate simulation of handshake dataflow circuits.

Each simulated cycle has two phases, mirroring synchronous hardware:

1. **Combinational fixpoint** — units' ``eval_comb`` functions are
   re-evaluated until the valid/ready/data signal vectors stabilize.  The
   evaluation is *event-driven*: a unit is (re)evaluated only when one of
   the signals it observes changed, or when its own sequential state
   changed at the previous clock edge.  Buffer placement guarantees no
   combinational cycle; a diverging evaluation (oscillating, i.e. a
   combinational loop) raises :class:`~repro.errors.ConvergenceError`.
2. **Clock edge** — a channel *fires* where valid & ready; the ``tick`` of
   every unit that fired a port or has in-flight pipeline state commits its
   sequential state.

The engine also watches for deadlock: if no channel fires and no unit makes
internal pipeline progress for ``deadlock_window`` consecutive cycles, the
run aborts with a :class:`~repro.errors.DeadlockError` carrying a diagnosis
of the blocking structure (see :mod:`repro.sim.deadlock`).

This module holds the *event-driven* engine — the reference semantics.  A
second backend (:mod:`repro.sim.compiled`) compiles the circuit into a
static evaluation schedule and replays it; it must be bit-identical to this
one and is differentially tested against it.  Shared machinery (the run
loop, deadlock accounting, memory binding) lives in :class:`BaseEngine`.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

from ..circuit import DataflowCircuit, PortCtx

if TYPE_CHECKING:
    from .sanitize import HandshakeSanitizer
from ..errors import ConvergenceError, DeadlockError, SimulationError
from .deadlock import diagnose
from .memory import Memory
from .profile import SimProfile
from .trace import Trace

#: Cycles without any activity after which a deadlock is declared.  Must
#: exceed the deepest pipeline (an FU can drain internally for its full
#: latency without firing a channel).
DEFAULT_DEADLOCK_WINDOW = 96


class BaseEngine:
    """Common harness shared by the event-driven and compiled backends.

    Subclasses implement ``step()`` (one clock cycle, returning the number
    of channel fires) and maintain ``cycle`` / ``total_fires`` /
    ``_idle_cycles``; everything above the per-cycle hot loop — the run
    loop, deadlock detection, memory binding, profile adoption — is
    identical across backends and lives here.
    """

    #: Backend name reported by profiles and the CLI.
    backend = "?"

    def _init_common(
        self,
        circuit: DataflowCircuit,
        memory: Optional[Memory],
        trace: Optional[Trace],
        deadlock_window: int,
        profile: Optional[SimProfile],
        sanitize: Union[bool, "HandshakeSanitizer", None] = None,
    ) -> None:
        circuit.validate()
        self.circuit = circuit
        self.memory = memory
        self.trace = trace
        self.profile = profile
        self.deadlock_window = deadlock_window
        self.cycle = 0
        self.total_fires = 0
        self._idle_cycles = 0
        # Opt-in handshake-protocol sanitizer (--sanitize /
        # REPRO_SIM_SANITIZE).  A pure observer: it never writes a signal,
        # so sanitized runs stay bit-identical to unsanitized ones.  A
        # pre-built HandshakeSanitizer instance (e.g. one armed with
        # alias_pairs for SAN005) may be passed in place of a bool.
        from .sanitize import HandshakeSanitizer, sanitize_default

        if isinstance(sanitize, HandshakeSanitizer):
            if sanitize.circuit is not circuit:
                raise SimulationError(
                    "sanitize= was given a HandshakeSanitizer built for a "
                    "different circuit"
                )
            self.sanitizer: Optional[HandshakeSanitizer] = sanitize
        else:
            if sanitize is None:
                sanitize = sanitize_default()
            self.sanitizer = HandshakeSanitizer(circuit) if sanitize else None

    def _reset_units(self, units) -> None:
        """Power-on reset + memory binding for every unit."""
        for u in units:
            u.reset()
            if getattr(u, "needs_memory", False):
                if self.memory is None:
                    raise SimulationError(
                        f"{u.describe()} needs a memory model but none given"
                    )
                u.memory = self.memory

    def _adopt_profile(self, units) -> None:
        """Switch to the instrumented step loop when a profile was given."""
        if self.profile is not None:
            self.profile.bind([u.name for u in units], self.backend)
            self.step = self._step_profiled

    # ---------------------------------------------------------------- step
    def step(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def _step_profiled(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    # ----------------------------------------------------------------- run
    def run(
        self,
        done: Callable[[], bool],
        max_cycles: int = 1_000_000,
    ) -> int:
        """Run until ``done()`` holds; return the cycle count.

        Raises :class:`DeadlockError` when the circuit freezes and
        :class:`SimulationError` when ``max_cycles`` is exhausted.
        """
        while not done():
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles without "
                    f"completing ({self.total_fires} transfers so far)"
                )
            self.step()
            if self._idle_cycles >= self.deadlock_window:
                blocked = diagnose(self.circuit, self.valid, self.ready)
                raise DeadlockError(
                    f"deadlock at cycle {self.cycle}: no activity for "
                    f"{self._idle_cycles} cycles\n  " + "\n  ".join(blocked),
                    cycle=self.cycle,
                    blocked=blocked,
                )
        if self.sanitizer is not None:
            # End-of-run conservation checks, then fail loudly if any
            # protocol violation was observed along the way.
            self.sanitizer.finish()
            self.sanitizer.raise_if_violations()
        return self.cycle

    def run_cycles(self, n: int) -> int:
        """Advance exactly ``n`` cycles (no deadlock abort); return fires."""
        fires = 0
        for _ in range(n):
            fires += self.step()
        return fires


class Engine(BaseEngine):
    """Event-driven simulator for one :class:`DataflowCircuit` instance."""

    backend = "event"

    def __init__(
        self,
        circuit: DataflowCircuit,
        memory: Optional[Memory] = None,
        trace: Optional[Trace] = None,
        deadlock_window: int = DEFAULT_DEADLOCK_WINDOW,
        profile: Optional[SimProfile] = None,
        sanitize: Union[bool, "HandshakeSanitizer", None] = None,
    ):
        self._init_common(
            circuit, memory, trace, deadlock_window, profile, sanitize
        )

        # Channel ids can be sparse after rewrites (removed units leave
        # gaps), so size the signal arrays by the largest id in use.
        nch = max((ch.cid for ch in circuit.channels), default=-1) + 1
        self.valid: List[bool] = [False] * nch
        self.ready: List[bool] = [False] * nch
        self.data: List = [None] * nch
        self.fired: List[bool] = [False] * nch

        names = list(circuit.units)
        self._slot_of: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self._units = [circuit.units[n] for n in names]
        n_units = len(self._units)

        # Channel endpoint maps for change notification.
        self._cons_unit = [-1] * nch
        self._prod_unit = [-1] * nch
        for ch in circuit.channels:
            self._cons_unit[ch.cid] = self._slot_of[ch.dst.unit]
            self._prod_unit[ch.cid] = self._slot_of[ch.src.unit]

        #: Channel ids actually in use, in ascending order (skips the gaps
        #: left by rewrites so the fire scan never touches dead slots).
        self._live_cids = sorted(ch.cid for ch in circuit.channels)

        self._dirty = bytearray(n_units)
        self._queue: deque = deque()

        self._ctxs: List[PortCtx] = []
        for u in self._units:
            in_ch = [
                ch.cid if (ch := circuit.in_channel(u, i)) is not None else -1
                for i in range(u.n_in)
            ]
            out_ch = [
                ch.cid if (ch := circuit.out_channel(u, i)) is not None else -1
                for i in range(u.n_out)
            ]
            self._ctxs.append(
                PortCtx(
                    self.valid, self.ready, self.data, self.fired,
                    in_ch, out_ch,
                    self._cons_unit, self._prod_unit,
                    self._dirty, self._queue,
                )
            )

        #: Units whose ``quiescent()`` can be False (internal pipelines).
        from ..circuit import Unit as _Unit

        self._pipeline_units = [
            i for i, u in enumerate(self._units)
            if type(u).quiescent is not _Unit.quiescent
        ]

        #: Per-slot flag: does this unit's ``tick`` ever do anything?
        #: Ticking a stateless unit is a no-op and re-evaluating it next
        #: cycle cannot change any signal (eval_comb is pure), so the
        #: clock edge skips such units entirely.
        self._tickable = bytearray(
            1 if u.needs_tick() else 0 for u in self._units
        )
        #: Scratch membership flags for the per-cycle tick list.
        self._tick_pend = bytearray(n_units)

        self.max_evals_per_cycle = 60 * n_units + 200

        self._reset_units(self._units)

        # First cycle evaluates everything.
        self._seed_all()
        self._adopt_profile(self._units)

    def _seed_all(self) -> None:
        for i in range(len(self._units)):
            if not self._dirty[i]:
                self._dirty[i] = 1
                self._queue.append(i)

    def _mark(self, i: int) -> None:
        if not self._dirty[i]:
            self._dirty[i] = 1
            self._queue.append(i)

    # ------------------------------------------------------------------- step
    def step(self) -> int:
        """Simulate one clock cycle; return the number of channel fires."""
        units, ctxs = self._units, self._ctxs
        dirty, queue = self._dirty, self._queue

        evals = 0
        while queue:
            i = queue.popleft()
            dirty[i] = 0
            units[i].eval_comb(ctxs[i])
            evals += 1
            if evals > self.max_evals_per_cycle:
                raise ConvergenceError(
                    f"handshake signals did not stabilize at cycle "
                    f"{self.cycle} ({evals} evaluations); the circuit "
                    "likely has a combinational cycle (missing buffer)"
                )

        valid, ready, fired = self.valid, self.ready, self.fired
        cons, prod = self._cons_unit, self._prod_unit
        tickable, pend = self._tickable, self._tick_pend
        trace = self.trace
        rec = trace.record if trace is not None and trace.active else None
        cyc = self.cycle
        fires = 0
        fired_now: List[int] = []
        tlist: List[int] = []
        for c in self._live_cids:
            if valid[c] and ready[c]:
                fired[c] = True
                fired_now.append(c)
                fires += 1
                i = cons[c]
                if tickable[i] and not pend[i]:
                    pend[i] = 1
                    tlist.append(i)
                i = prod[c]
                if tickable[i] and not pend[i]:
                    pend[i] = 1
                    tlist.append(i)
                if rec is not None:
                    rec(c, cyc)

        if self.sanitizer is not None:
            # Observe at the cycle fixpoint: fired flags are set, ticks
            # have not yet rewritten any signal.
            self.sanitizer.observe(cyc, valid, ready, self.data, fired)

        progress = fires > 0
        for i in self._pipeline_units:
            if not units[i].quiescent():
                if not pend[i]:
                    pend[i] = 1
                    tlist.append(i)
                progress = True

        # Canonical (ascending-slot) tick order so both backends commit
        # sequential state — in particular same-cycle memory accesses — in
        # the same deterministic order.
        tlist.sort()
        for i in tlist:
            pend[i] = 0
            units[i].tick(ctxs[i])
            self._mark(i)  # state may have changed; re-evaluate next cycle
        # Fired flags must not leak into the next cycle's ticks; clear only
        # the channels that actually fired (the rest are already False).
        for c in fired_now:
            fired[c] = False

        self.total_fires += fires
        self._idle_cycles = 0 if progress else self._idle_cycles + 1
        self.cycle += 1
        return fires

    # ----------------------------------------------------- instrumented step
    def _step_profiled(self) -> int:
        """``step`` with per-phase timers and per-unit eval counts."""
        prof = self.profile
        units, ctxs = self._units, self._ctxs
        dirty, queue = self._dirty, self._queue
        counts = prof.eval_counts

        t0 = perf_counter()
        evals = 0
        while queue:
            i = queue.popleft()
            dirty[i] = 0
            units[i].eval_comb(ctxs[i])
            counts[i] += 1
            evals += 1
            if evals > self.max_evals_per_cycle:
                raise ConvergenceError(
                    f"handshake signals did not stabilize at cycle "
                    f"{self.cycle} ({evals} evaluations); the circuit "
                    "likely has a combinational cycle (missing buffer)"
                )
        t1 = perf_counter()

        valid, ready, fired = self.valid, self.ready, self.fired
        cons, prod = self._cons_unit, self._prod_unit
        tickable, pend = self._tickable, self._tick_pend
        trace = self.trace
        rec = trace.record if trace is not None and trace.active else None
        cyc = self.cycle
        fires = 0
        fired_now: List[int] = []
        tlist: List[int] = []
        for c in self._live_cids:
            if valid[c] and ready[c]:
                fired[c] = True
                fired_now.append(c)
                fires += 1
                i = cons[c]
                if tickable[i] and not pend[i]:
                    pend[i] = 1
                    tlist.append(i)
                i = prod[c]
                if tickable[i] and not pend[i]:
                    pend[i] = 1
                    tlist.append(i)
                if rec is not None:
                    rec(c, cyc)
        t2 = perf_counter()

        if self.sanitizer is not None:
            self.sanitizer.observe(cyc, valid, ready, self.data, fired)

        progress = fires > 0
        for i in self._pipeline_units:
            if not units[i].quiescent():
                if not pend[i]:
                    pend[i] = 1
                    tlist.append(i)
                progress = True

        tlist.sort()
        tcounts = prof.tick_counts
        for i in tlist:
            pend[i] = 0
            units[i].tick(ctxs[i])
            tcounts[i] += 1
            self._mark(i)
        for c in fired_now:
            fired[c] = False
        t3 = perf_counter()

        prof.comb_s += t1 - t0
        prof.fire_s += t2 - t1
        prof.tick_s += t3 - t2
        prof.wall_s += t3 - t0
        prof.cycles += 1
        prof.fires += fires

        self.total_fires += fires
        self._idle_cycles = 0 if progress else self._idle_cycles + 1
        self.cycle += 1
        return fires
