"""Cycle-accurate simulation of handshake dataflow circuits.

Each simulated cycle has two phases, mirroring synchronous hardware:

1. **Combinational fixpoint** — units' ``eval_comb`` functions are
   re-evaluated until the valid/ready/data signal vectors stabilize.  The
   evaluation is *event-driven*: a unit is (re)evaluated only when one of
   the signals it observes changed, or when its own sequential state
   changed at the previous clock edge.  Buffer placement guarantees no
   combinational cycle; a diverging evaluation (oscillating, i.e. a
   combinational loop) raises :class:`~repro.errors.ConvergenceError`.
2. **Clock edge** — a channel *fires* where valid & ready; the ``tick`` of
   every unit that fired a port or has in-flight pipeline state commits its
   sequential state.

The engine also watches for deadlock: if no channel fires and no unit makes
internal pipeline progress for ``deadlock_window`` consecutive cycles, the
run aborts with a :class:`~repro.errors.DeadlockError` carrying a diagnosis
of the blocking structure (see :mod:`repro.sim.deadlock`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from ..circuit import DataflowCircuit, PortCtx
from ..errors import ConvergenceError, DeadlockError, SimulationError
from .deadlock import diagnose
from .memory import Memory
from .trace import Trace

#: Cycles without any activity after which a deadlock is declared.  Must
#: exceed the deepest pipeline (an FU can drain internally for its full
#: latency without firing a channel).
DEFAULT_DEADLOCK_WINDOW = 96


class Engine:
    """Simulator for one :class:`DataflowCircuit` instance."""

    def __init__(
        self,
        circuit: DataflowCircuit,
        memory: Optional[Memory] = None,
        trace: Optional[Trace] = None,
        deadlock_window: int = DEFAULT_DEADLOCK_WINDOW,
    ):
        circuit.validate()
        self.circuit = circuit
        self.memory = memory
        self.trace = trace
        self.deadlock_window = deadlock_window

        # Channel ids can be sparse after rewrites (removed units leave
        # gaps), so size the signal arrays by the largest id in use.
        nch = max((ch.cid for ch in circuit.channels), default=-1) + 1
        self.valid: List[bool] = [False] * nch
        self.ready: List[bool] = [False] * nch
        self.data: List = [None] * nch
        self.fired: List[bool] = [False] * nch

        names = list(circuit.units)
        self._slot_of: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self._units = [circuit.units[n] for n in names]
        n_units = len(self._units)

        # Channel endpoint maps for change notification.
        self._cons_unit = [-1] * nch
        self._prod_unit = [-1] * nch
        for ch in circuit.channels:
            self._cons_unit[ch.cid] = self._slot_of[ch.dst.unit]
            self._prod_unit[ch.cid] = self._slot_of[ch.src.unit]

        self._dirty = bytearray(n_units)
        self._queue: deque = deque()

        self._ctxs: List[PortCtx] = []
        for u in self._units:
            in_ch = [
                ch.cid if (ch := circuit.in_channel(u, i)) is not None else -1
                for i in range(u.n_in)
            ]
            out_ch = [
                ch.cid if (ch := circuit.out_channel(u, i)) is not None else -1
                for i in range(u.n_out)
            ]
            self._ctxs.append(
                PortCtx(
                    self.valid, self.ready, self.data, self.fired,
                    in_ch, out_ch,
                    self._cons_unit, self._prod_unit,
                    self._dirty, self._queue,
                )
            )

        #: Units whose ``quiescent()`` can be False (internal pipelines).
        from ..circuit import Unit as _Unit

        self._pipeline_units = [
            i for i, u in enumerate(self._units)
            if type(u).quiescent is not _Unit.quiescent
        ]

        self.max_evals_per_cycle = 60 * n_units + 200

        self.cycle = 0
        self.total_fires = 0
        self._idle_cycles = 0

        for u in self._units:
            u.reset()
            if getattr(u, "needs_memory", False):
                if memory is None:
                    raise SimulationError(
                        f"{u.describe()} needs a memory model but none given"
                    )
                u.memory = memory

        # First cycle evaluates everything.
        self._seed_all()

    def _seed_all(self) -> None:
        for i in range(len(self._units)):
            if not self._dirty[i]:
                self._dirty[i] = 1
                self._queue.append(i)

    def _mark(self, i: int) -> None:
        if not self._dirty[i]:
            self._dirty[i] = 1
            self._queue.append(i)

    # ------------------------------------------------------------------- step
    def step(self) -> int:
        """Simulate one clock cycle; return the number of channel fires."""
        units, ctxs = self._units, self._ctxs
        dirty, queue = self._dirty, self._queue

        evals = 0
        while queue:
            i = queue.popleft()
            dirty[i] = 0
            units[i].eval_comb(ctxs[i])
            evals += 1
            if evals > self.max_evals_per_cycle:
                raise ConvergenceError(
                    f"handshake signals did not stabilize at cycle "
                    f"{self.cycle} ({evals} evaluations); the circuit "
                    "likely has a combinational cycle (missing buffer)"
                )

        valid, ready, fired = self.valid, self.ready, self.fired
        fires = 0
        trace = self.trace
        tick_units = set()
        mark = tick_units.add
        for c in range(len(fired)):
            f = valid[c] and ready[c]
            fired[c] = f
            if f:
                fires += 1
                mark(self._cons_unit[c])
                mark(self._prod_unit[c])
                if trace is not None:
                    trace.record(c, self.cycle)

        progress = fires > 0
        for i in self._pipeline_units:
            if not units[i].quiescent():
                tick_units.add(i)
                progress = True

        for i in tick_units:
            units[i].tick(ctxs[i])
            self._mark(i)  # state may have changed; re-evaluate next cycle
        # Fired flags must not leak into the next cycle's ticks.
        if tick_units:
            for c in range(len(fired)):
                fired[c] = False

        self.total_fires += fires
        self._idle_cycles = 0 if progress else self._idle_cycles + 1
        self.cycle += 1
        return fires

    # -------------------------------------------------------------------- run
    def run(
        self,
        done: Callable[[], bool],
        max_cycles: int = 1_000_000,
    ) -> int:
        """Run until ``done()`` holds; return the cycle count.

        Raises :class:`DeadlockError` when the circuit freezes and
        :class:`SimulationError` when ``max_cycles`` is exhausted.
        """
        while not done():
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles without "
                    f"completing ({self.total_fires} transfers so far)"
                )
            self.step()
            if self._idle_cycles >= self.deadlock_window:
                blocked = diagnose(self.circuit, self.valid, self.ready)
                raise DeadlockError(
                    f"deadlock at cycle {self.cycle}: no activity for "
                    f"{self._idle_cycles} cycles\n  " + "\n  ".join(blocked),
                    cycle=self.cycle,
                    blocked=blocked,
                )
        return self.cycle

    def run_cycles(self, n: int) -> int:
        """Advance exactly ``n`` cycles (no deadlock abort); return fires."""
        fires = 0
        for _ in range(n):
            fires += self.step()
        return fires
