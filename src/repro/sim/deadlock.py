"""Deadlock diagnosis: explain *why* no token can move.

When the engine observes a long quiescent window it calls
:func:`diagnose`, which inspects the frozen handshake state and produces a
human-readable account of the blocking structure — including, when one
exists, the cyclic chain of stuck channels (the execution dependency cycle
of the paper's Figure 1b/1d examples).
"""

from __future__ import annotations

from typing import List, Sequence

from ..circuit import DataflowCircuit


def diagnose(
    circuit: DataflowCircuit,
    valid: Sequence[bool],
    ready: Sequence[bool],
) -> List[str]:
    """Return a description of the blocked state.

    A channel is *stuck* when its producer asserts valid but its consumer
    never becomes ready.  The wait-for graph has an edge from the stuck
    channel's consumer to the producers it is itself waiting on; a cycle in
    this graph is the deadlock cycle.
    """
    stuck = [
        ch for ch in circuit.channels if valid[ch.cid] and not ready[ch.cid]
    ]
    report = []
    if not stuck:
        report.append(
            "no channel holds a pending token; the circuit is starved "
            "(some unit waits for inputs that will never arrive)"
        )
    for ch in stuck[:32]:
        report.append(
            f"token stuck on {ch.label()}: consumer "
            f"{circuit.units[ch.dst.unit].describe()} is not ready"
        )
    if len(stuck) > 32:
        report.append(f"(+{len(stuck) - 32} more stuck channels suppressed)")
    cycle = _find_cycle(circuit, stuck)
    if cycle:
        report.append("dependency cycle: " + " -> ".join(cycle + [cycle[0]]))
    return report


def _find_cycle(circuit: DataflowCircuit, stuck) -> List[str]:
    """Find a cycle among the units connected by stuck channels."""
    import networkx as nx

    g = nx.DiGraph()
    for ch in stuck:
        g.add_edge(ch.src.unit, ch.dst.unit)
    try:
        edges = nx.find_cycle(g)
    except nx.NetworkXNoCycle:
        return []
    return [e[0] for e in edges]
