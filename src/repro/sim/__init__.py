"""Cycle-accurate handshake simulation (the ModelSim substitute)."""

from .engine import DEFAULT_DEADLOCK_WINDOW, Engine
from .memory import Memory
from .trace import Trace

__all__ = ["DEFAULT_DEADLOCK_WINDOW", "Engine", "Memory", "Trace"]
