"""Cycle-accurate handshake simulation (the ModelSim substitute).

Two interchangeable backends simulate the same two-phase handshake
semantics:

``"event"``
    :class:`Engine` — the event-driven reference implementation: a dirty
    queue drives ``eval_comb`` re-evaluation to a per-cycle fixpoint.

``"compiled"``
    :class:`CompiledEngine` — compiles the circuit once into a static
    rank-ordered evaluation schedule and replays it, with activation
    gating and a big-integer fire scan.  Bit-identical to the event
    engine (differentially tested) and several times faster, so it is
    the default.

Select a backend with :func:`create_engine`, the ``--sim-backend`` CLI
flag, or the ``REPRO_SIM_BACKEND`` environment variable.

Both backends accept ``sanitize=True`` (or ``REPRO_SIM_SANITIZE=1``) to
run the opt-in handshake-protocol sanitizer
(:class:`~repro.sim.sanitize.HandshakeSanitizer`): every channel is
checked each cycle for the latency-insensitive contract — valid held
until accepted, data stable while pending, no token dropped or
duplicated — with violations reported as ``repro.lint`` diagnostics.
"""

import os

from ..errors import SimulationError
from .compiled import CompiledEngine
from .engine import DEFAULT_DEADLOCK_WINDOW, BaseEngine, Engine
from .memory import Memory
from .profile import SimProfile
from .sanitize import SANITIZE_ENV, HandshakeSanitizer, sanitize_default
from .trace import Trace

#: Available simulation backends, by name.
BACKENDS = {
    "event": Engine,
    "compiled": CompiledEngine,
}

#: Backend used when none is requested explicitly.  Overridable through
#: the environment so a whole test run can be pinned to one backend.
DEFAULT_BACKEND = os.environ.get("REPRO_SIM_BACKEND", "compiled")


def create_engine(circuit, backend=None, **kwargs):
    """Instantiate the requested simulation backend for ``circuit``.

    ``backend`` is ``"event"``, ``"compiled"`` or ``None`` (use
    :data:`DEFAULT_BACKEND`); remaining keyword arguments (``memory``,
    ``trace``, ``deadlock_window``, ``profile``) are forwarded to the
    engine constructor.
    """
    name = backend or DEFAULT_BACKEND
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise SimulationError(
            f"unknown simulation backend {name!r}; "
            f"choose from {sorted(BACKENDS)}"
        ) from None
    return cls(circuit, **kwargs)


__all__ = [
    "BACKENDS",
    "BaseEngine",
    "CompiledEngine",
    "DEFAULT_BACKEND",
    "DEFAULT_DEADLOCK_WINDOW",
    "Engine",
    "HandshakeSanitizer",
    "Memory",
    "SANITIZE_ENV",
    "SimProfile",
    "Trace",
    "create_engine",
    "sanitize_default",
]
