"""Cycle-accurate handshake simulation (the ModelSim substitute).

Three interchangeable backends simulate the same two-phase handshake
semantics:

``"event"``
    :class:`Engine` — the event-driven reference implementation: a dirty
    queue drives ``eval_comb`` re-evaluation to a per-cycle fixpoint.

``"compiled"``
    :class:`CompiledEngine` — compiles the circuit once into a static
    rank-ordered evaluation schedule and replays it through specialized
    per-unit closures, with activation gating and a big-integer fire
    scan.  Bit-identical to the event engine (differentially tested)
    and several times faster, so it is the default.

``"codegen"``
    :class:`CodegenEngine` — emits specialized Python source for the
    whole circuit from the same levelized schedule (one flat cycle loop,
    unit logic inlined over local variables; no closure calls or dict
    dispatch on the hot path), ``exec``'d and cached on disk under a
    content-addressed key.  Bit-identical to both other backends
    (differentially tested on all goldens and under hypothesis
    lockstep).  Supports opt-in steady-state fast-forward
    (``fast_forward=True`` / ``--fast-forward`` / ``REPRO_SIM_FF=1``):
    once the full handshake/occupancy state vector is detected to
    repeat with period P, whole periods are applied analytically
    instead of simulated.  Fast-forward and :class:`SimProfile` are
    rejected with clear errors when incompatible observers are attached.

Select a backend with :func:`create_engine`, the ``--sim-backend`` CLI
flag, or the ``REPRO_SIM_BACKEND`` environment variable.

All backends accept ``sanitize=True`` (or ``REPRO_SIM_SANITIZE=1``) to
run the opt-in handshake-protocol sanitizer
(:class:`~repro.sim.sanitize.HandshakeSanitizer`): every channel is
checked each cycle for the latency-insensitive contract — valid held
until accepted, data stable while pending, no token dropped or
duplicated — with violations reported as ``repro.lint`` diagnostics.
"""

import os

from ..errors import SimulationError
from .batched import (
    BATCHED_BACKENDS,
    LANES_ENV,
    BatchedCodegenEngine,
    BatchedCompiledEngine,
    BatchedEventEngine,
    create_batched_engine,
    lanes_default,
)
from .codegen import FF_ENV, CodegenEngine, fast_forward_default
from .compiled import CompiledEngine
from .engine import DEFAULT_DEADLOCK_WINDOW, BaseEngine, Engine
from .memory import Memory
from .profile import SimProfile
from .sanitize import SANITIZE_ENV, HandshakeSanitizer, sanitize_default
from .trace import Trace

#: Available simulation backends, by name.
BACKENDS = {
    "event": Engine,
    "compiled": CompiledEngine,
    "codegen": CodegenEngine,
}

#: Backend used when none is requested explicitly.  Overridable through
#: the environment so a whole test run can be pinned to one backend.
DEFAULT_BACKEND = os.environ.get("REPRO_SIM_BACKEND", "compiled")


def create_engine(circuit, backend=None, fast_forward=None, lanes=None,
                  memories=None, **kwargs):
    """Instantiate the requested simulation backend for ``circuit``.

    ``backend`` is ``"event"``, ``"compiled"``, ``"codegen"`` or ``None``
    (use :data:`DEFAULT_BACKEND`); remaining keyword arguments
    (``memory``, ``trace``, ``deadlock_window``, ``profile``,
    ``sanitize``) are forwarded to the engine constructor.

    ``fast_forward`` is only meaningful for the codegen backend;
    requesting it on any other backend is an error (``None`` — the
    default — defers to the engine, which consults ``REPRO_SIM_FF``).

    ``lanes`` switches to the batched (lane-parallel) engine family
    (:mod:`repro.sim.batched`): the returned engine evaluates ``lanes``
    independent input sets per pass and exposes ``run_lanes`` /
    ``sink_count`` / ``lane_fires`` instead of the scalar ``run``.
    ``memories`` then supplies one :class:`Memory` per lane (instead of
    the scalar ``memory=`` argument).
    """
    name = backend or DEFAULT_BACKEND
    if lanes is not None:
        if kwargs.get("memory") is not None:
            raise SimulationError(
                "batched engines take one memory per lane via memories=[...],"
                " not the scalar memory= argument"
            )
        kwargs.pop("memory", None)
        return create_batched_engine(
            circuit, name, lanes, memories=memories,
            fast_forward=fast_forward, **kwargs,
        )
    if memories is not None:
        raise SimulationError(
            "memories= is only meaningful with lanes= (batched mode); "
            "scalar engines take a single memory="
        )
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise SimulationError(
            f"unknown simulation backend {name!r}; "
            f"choose from {sorted(BACKENDS)}"
        ) from None
    if name == "codegen":
        kwargs["fast_forward"] = fast_forward
    elif fast_forward:
        raise SimulationError(
            f"fast-forward requires the codegen backend "
            f"(got backend {name!r})"
        )
    return cls(circuit, **kwargs)


__all__ = [
    "BACKENDS",
    "BATCHED_BACKENDS",
    "BaseEngine",
    "BatchedCodegenEngine",
    "BatchedCompiledEngine",
    "BatchedEventEngine",
    "CodegenEngine",
    "CompiledEngine",
    "DEFAULT_BACKEND",
    "DEFAULT_DEADLOCK_WINDOW",
    "Engine",
    "FF_ENV",
    "HandshakeSanitizer",
    "LANES_ENV",
    "Memory",
    "SANITIZE_ENV",
    "SimProfile",
    "Trace",
    "create_batched_engine",
    "create_engine",
    "fast_forward_default",
    "lanes_default",
    "sanitize_default",
]
