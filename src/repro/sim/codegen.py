"""Specializing codegen simulation backend.

The compiled backend (:mod:`repro.sim.compiled`) already minimizes how
*often* each unit is evaluated; what it cannot remove is the interpreter
overhead of the evaluation itself — every active occurrence is a closure
call, every signal access an indexed container operation.  This backend
removes that floor the way RTL simulators do: it **emits specialized
Python source for the whole circuit** from the same levelized schedule —
one flat cycle loop in which

* every channel's valid/ready/data signal is a *local variable*
  (``v17``/``r17``/``d17``) of the generated function,
* every occurrence of every unit is an inlined straight-line block behind
  an ``if a{k}:`` activation-flag local (no closure calls, no dict
  dispatch on the hot path),
* activation propagation is *static*: a change-detected signal write
  stores ``1`` into the precomputed dependent flags directly
  (``a12 = 1``), because the activation lists are compile-time constants,
* the fire scan, trace recording, tick passes and deadlock accounting
  are unrolled over the precomputed channel/unit lists.

The generated module defines ``make_loop(rt)`` → ``loop(budget, done,
max_cycles, window, san, rec)``; one call simulates up to ``budget``
cycles entirely in local variables and only syncs the engine's signal
arrays on exit, returning ``(status, last_fires)`` with status ``0`` =
budget exhausted, ``1`` = ``done()`` satisfied, ``2`` = deadlock window
exceeded, ``3`` = ``max_cycles`` reached.  The per-unit blocks are exact
transcriptions of the compiled backend's specialized closures
(:mod:`repro.sim.codegen_blocks`), so the backend stays bit-identical to
both existing engines and is differentially tested against them.

Generated modules are cached at two levels: an in-process namespace memo
and a content-addressed disk cache under ``~/.cache/repro-codegen/``
(override with ``$REPRO_CODEGEN_CACHE``) storing the generated source
next to its marshalled bytecode.  Keys are a SHA-256 over the generated
source *plus* the sweep cache's repro-source salt and the interpreter's
bytecode magic, so editing any repro module — in particular this
generator — or switching Python versions can never serve stale code.

Steady-state fast-forward (``fast_forward=True`` / ``--fast-forward`` /
``$REPRO_SIM_FF``) lives in :mod:`repro.sim.fastforward` and is wired
into :meth:`CodegenEngine.run`; it is rejected at construction when a
``Trace`` or ``HandshakeSanitizer`` is attached (those observers need
every cycle), and :class:`~repro.sim.profile.SimProfile` is rejected
always — the generated loop has no per-unit instrumentation points.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from ..circuit import (
    ArbiterMerge,
    Constant,
    DataflowCircuit,
    Entry,
    FixedOrderMerge,
    FunctionalUnit,
    LoadPort,
    Sequence,
    Sink,
    StorePort,
)
from ..errors import CircuitError, DeadlockError, LaneDivergence, SimulationError
from .codegen_blocks import (
    CARRY_TYPES,
    EVAL_BLOCKS,
    GROUP,
    LANE_EVAL_BLOCKS,
    LANE_TICK_BLOCKS,
    MASK_EVAL_BLOCKS,
    MASK_TICK_BLOCKS,
    TICK_BLOCKS,
    mask_int_names,
    mask_local,
    mask_obj_names,
)
from .deadlock import diagnose
from .engine import DEFAULT_DEADLOCK_WINDOW, BaseEngine

if TYPE_CHECKING:
    from .sanitize import HandshakeSanitizer
from .memory import Memory
from .profile import SimProfile
from .signal_graph import CircuitSchedule, compile_schedule
from .trace import Trace

#: Environment switch for steady-state fast-forward (codegen backend only).
FF_ENV = "REPRO_SIM_FF"

#: Environment override for the generated-module disk cache directory.
CODEGEN_CACHE_ENV = "REPRO_CODEGEN_CACHE"

#: Magic prefix of the on-disk marshalled bytecode payloads.
_PYC_HEADER = b"RCG1"


def fast_forward_default() -> bool:
    """Fast-forward default from ``$REPRO_SIM_FF`` (off unless set)."""
    return os.environ.get(FF_ENV, "").strip().lower() in (
        "1", "true", "on", "yes"
    )


def codegen_cache_dir() -> Path:
    """``$REPRO_CODEGEN_CACHE`` or ``~/.cache/repro-codegen``."""
    env = os.environ.get(CODEGEN_CACHE_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME", os.path.expanduser("~/.cache"))
    return Path(xdg) / "repro-codegen"


# ---------------------------------------------------------------------------
# Source generation.
# ---------------------------------------------------------------------------


def _pack(lines: List[str], stmts: List[str], indent: str, per: int = 8):
    """Append ``stmts`` joined ``per`` to a line (keeps modules compact)."""
    for i in range(0, len(stmts), per):
        lines.append(indent + "; ".join(stmts[i:i + per]))


def unsupported_units(units, schedule: CircuitSchedule) -> List[str]:
    """Units the generator cannot specialize (non-catalogue types or
    unconnected ports).  The codegen backend refuses them outright — it
    has no generic fallback path by design."""
    bad: List[str] = []
    for s, u in enumerate(units):
        t = type(u)
        if t not in EVAL_BLOCKS:
            bad.append(f"{u.describe()} (no emitter for type {t.__name__})")
        elif any(c < 0 for c in schedule.in_chs[s] + schedule.out_chs[s]):
            bad.append(f"{u.describe()} (unconnected port)")
        elif schedule.tickable[s] and t not in TICK_BLOCKS:
            bad.append(f"{u.describe()} (no tick emitter)")
    return bad


def generate_source(circuit: DataflowCircuit,
                    schedule: CircuitSchedule,
                    lanes: bool = False) -> str:
    """Emit the specialized simulation module for ``circuit``.

    Deterministic: the same circuit structure and code-shaping parameters
    always produce byte-identical source, which is what the disk cache
    keys on.  Runtime-only parameters (token values, operand constants,
    compute functions, memory) are bound through ``rt`` in ``make_loop``.

    ``lanes=True`` emits the *laned* variant used by the batched engines
    (:mod:`repro.sim.batched`): same loop skeleton and scalar control
    signals, data locals widened to per-lane tuples, load/store dispatch
    through per-lane memory method lists, and ``LaneDivergence`` raised
    where per-lane values disagree on a control decision.  The laned
    lockstep loop catches that divergence itself (exit status 4) and the
    module additionally defines ``make_mask_loop(rt)`` — the mask-lane
    (MIMD) continuation the batched engine promotes to, where control
    bits are per-lane bitmask integers and lanes execute independently.
    The lane count itself is a runtime binding (``rt.lanes``), so one
    laned module serves every batch width — but laned and scalar source
    always differ (distinct disk-cache keys).
    """
    units = [circuit.units[n] for n in schedule.names]
    bad = unsupported_units(units, schedule)
    if bad:
        raise SimulationError(
            "the codegen backend cannot specialize this circuit:\n  "
            + "\n  ".join(bad)
            + "\nuse --sim-backend compiled (or event) for it"
        )
    eval_blocks = LANE_EVAL_BLOCKS if lanes else EVAL_BLOCKS
    tick_blocks = LANE_TICK_BLOCKS if lanes else TICK_BLOCKS

    n_units = len(units)
    in_chs, out_chs = schedule.in_chs, schedule.out_chs
    live = sorted(
        {c for cs in in_chs for c in cs} | {c for cs in out_chs for c in cs}
    )
    n_occ = schedule.n_occ
    tick_slots = [s for s in range(n_units) if schedule.tickable[s]]
    carry_slots = [s for s in tick_slots if isinstance(units[s], CARRY_TYPES)]
    needs_mem = any(isinstance(u, (LoadPort, StorePort)) for u in units)

    L: List[str] = []
    add = L.append
    variant = "laned" if lanes else "scalar"
    add(f"# Generated by repro.sim.codegen ({variant}) -- "
        "do not edit by hand.")
    add(f"# structure {schedule.key[:16]}: {n_units} units, "
        f"{len(live)} channels, {n_occ} occurrences, "
        f"{len(tick_slots)} tickable")
    add("")
    add("def make_loop(rt):")
    add("    U = rt._units")
    add("    V = rt.valid")
    add("    R = rt.ready")
    add("    D = rt.data")
    add("    F = rt.fired")
    add("    A = rt._aflags")
    add("    KF = rt._kflags")
    add("    ZB = rt._zeros")
    if lanes:
        add("    LB = rt.lanes")
    if needs_mem:
        if lanes:
            add("    mrd = rt._mrd")
            add("    mwr = rt._mwr")
        else:
            add("    mrd = rt.memory.read")
            add("    mwr = rt.memory.write")
    binds: List[str] = []
    for s, u in enumerate(units):
        binds.append(f"u{s} = U[{s}]")
        if isinstance(u, FunctionalUnit):
            binds.append(f"cp{s} = u{s}._compute")
            for slot in sorted(u.const_ops):
                binds.append(f"uc{s}_{slot} = u{s}.const_ops[{slot}]")
        if isinstance(u, (Entry, Constant)):
            if lanes:
                binds.append(f"uv{s} = (u{s}.value,) * LB")
            else:
                binds.append(f"uv{s} = u{s}.value")
        if lanes and isinstance(u, Sequence):
            binds.append(
                f"usq{s} = tuple((_x,) * LB for _x in u{s}.values)"
            )
        if lanes and isinstance(u, (ArbiterMerge, FixedOrderMerge)):
            binds.append(
                f"lsel{s} = tuple((_i,) * LB for _i in range({u.n_in}))"
            )
    _pack(L, binds, "    ", per=4)
    add("")
    add("    def loop(budget, done, max_cycles, window, san, rec):")
    P = "        "  # loop-prologue indent
    # The laned loop wraps its cycle loop in try/except LaneDivergence
    # (exit status 4: the batched engine promotes to the mask loop), so
    # its body sits one level deeper; scalar source is unchanged.
    W = P + ("    " if lanes else "")  # while-statement indent
    B = W + "    "  # cycle-body indent

    occ_groups = [
        list(range(g * GROUP, min((g + 1) * GROUP, n_occ)))
        for g in range((n_occ + GROUP - 1) // GROUP)
    ]
    fire_groups: "OrderedDict[int, List[int]]" = OrderedDict()
    for c in live:
        fire_groups.setdefault(c // GROUP, []).append(c)
    tick_groups = [tick_slots[i:i + GROUP]
                   for i in range(0, len(tick_slots), GROUP)]
    tgidx = {s: g for g, ss in enumerate(tick_groups) for s in ss}

    # -- prologue: pull everything into locals -----------------------------
    _pack(L, [f"v{c} = V[{c}]; r{c} = R[{c}]; d{c} = D[{c}]" for c in live],
          P, per=2)
    _pack(L, [f"a{k} = A[{k}]" for k in range(n_occ)], P)
    # Group-activity flags: ga{g} covers GROUP consecutive occurrences,
    # fg{g} GROUP consecutive channels (conservatively armed on entry).
    _pack(L, [f"ga{g} = " + " or ".join(f"a{k}" for k in ks) + " or 0"
              for g, ks in enumerate(occ_groups)], P, per=2)
    _pack(L, [f"fg{g} = 1" for g in fire_groups], P)
    _pack(L, [f"k{s} = KF[{s}]" for s in carry_slots], P)
    _pack(L, [f"t{s} = 0; tb{s} = 0" for s in tick_slots], P, per=4)
    # Tick-group flags: tg{g} is armed by the fire scan when any member's
    # t flag is set (member carries are ORed into the guard directly, so
    # they need no arming); tgb{g} gates the pass-2 group.
    _pack(L, [f"tg{g} = 0; tgb{g} = 0" for g in range(len(tick_groups))],
          P, per=4)
    if carry_slots:
        add(P + "kany = " + " or ".join([f"k{s}" for s in carry_slots] + ["0"]))
    else:
        add(P + "kany = 0")
    add(P + "quiet = rt._quiet")
    add(P + "cycle = rt.cycle")
    add(P + "idle = rt._idle_cycles")
    add(P + "total_fires = rt.total_fires")
    add(P + "status = 0")
    add(P + "fires = 0")
    if lanes:
        add(P + "try:")
    add(W + "while budget > 0:")
    add(B + "if done is not None:")
    add(B + "    if done():")
    add(B + "        status = 1")
    add(B + "        break")
    add(B + "    if cycle >= max_cycles:")
    add(B + "        status = 3")
    add(B + "        break")
    add(B + "budget -= 1")
    add(B + "if quiet:")
    add(B + "    fires = 0")
    add(B + "    if san is not None:")
    add(B + "        san.observe_quiet()")
    add(B + "    cycle += 1")
    add(B + "    idle += 1")
    add(B + "    if done is not None and idle >= window:")
    add(B + "        status = 2")
    add(B + "        break")
    add(B + "    continue")

    # -- combinational pass: active occurrences in schedule order ----------
    add(B + "# combinational pass")
    for g, ks in enumerate(occ_groups):
        add(B + f"if ga{g}:")
        add(B + f"    ga{g} = 0")
        for k in ks:
            s = schedule.occ_units[k]
            u = units[s]
            block = eval_blocks[type(u)](
                s, u, in_chs[s], out_chs[s], schedule
            )
            add(B + f"    if a{k}:")
            add(B + f"        a{k} = 0")
            for line in block:
                add(B + "        " + line)

    # -- fire scan ---------------------------------------------------------
    # A group's flag is armed by any write to a member signal; a firing
    # member re-arms it (v and r persist high until something changes).
    add(B + "# fire scan")
    add(B + "fires = 0")
    for g, cs in fire_groups.items():
        add(B + f"if fg{g}:")
        add(B + f"    fg{g} = 0")
        for c in cs:
            add(B + f"    if v{c} and r{c}:")
            add(B + "        fires += 1")
            add(B + f"        fg{g} = 1")
            for s in schedule.tick_mark[c]:
                add(B + f"        t{s} = 1")
            for tg in sorted({tgidx[s] for s in schedule.tick_mark[c]}):
                add(B + f"        tg{tg} = 1")
            add(B + "        if rec is not None:")
            add(B + f"            rec({c}, cycle)")

    # -- sanitizer observes the fixpoint (arrays synced on demand) ---------
    add(B + "if san is not None:")
    _pack(L, [f"V[{c}] = v{c}; R[{c}] = r{c}; D[{c}] = d{c}" for c in live],
          B + "    ", per=2)
    add(B + "    if fires:")
    for c in live:
        add(B + f"        if v{c} and r{c}:")
        add(B + f"            F[{c}] = 1")
    add(B + "    san.observe(cycle, V, R, D, F)")
    add(B + "    if fires:")
    add(B + "        F[:] = ZB")

    add(B + "total_fires += fires")
    add(B + "progress = 1 if fires else kany")
    add(B + "ticked = 0")

    # -- clock edge, pass 1: state transitions on the pristine fixpoint ----
    if tick_slots:
        add(B + "# clock edge: state transitions (pristine fixpoint)")
        for g, ss in enumerate(tick_groups):
            guard = " or ".join(
                [f"tg{g}"] + [f"k{s}" for s in ss if s in carry_slots]
            )
            add(B + f"if {guard}:")
            add(B + f"    tg{g} = 0")
            for s in ss:
                u = units[s]
                tk_gen, _pk_gen = tick_blocks[type(u)]
                member = (f"if t{s} or k{s}:" if s in carry_slots
                          else f"if t{s}:")
                add(B + "    " + member)
                add(B + f"        t{s} = 0")
                add(B + f"        tb{s} = 1")
                add(B + "        ticked = 1")
                add(B + f"        tgb{g} = 1")
                for line in tk_gen(s, u, in_chs[s], out_chs[s], schedule):
                    add(B + "        " + line)

        # -- pass 2: recompute ticked units' signals, refresh carries ------
        add(B + "if ticked:")
        for g, ss in enumerate(tick_groups):
            add(B + f"    if tgb{g}:")
            add(B + f"        tgb{g} = 0")
            for s in ss:
                u = units[s]
                _tk_gen, pk_gen = tick_blocks[type(u)]
                add(B + f"        if tb{s}:")
                add(B + f"            tb{s} = 0")
                for line in pk_gen(s, u, in_chs[s], out_chs[s], schedule):
                    add(B + "            " + line)
        if carry_slots:
            add(B + "    kany = "
                + " or ".join([f"k{s}" for s in carry_slots] + ["0"]))

    add(B + "quiet = 0 if (fires or ticked) else 1")
    add(B + "idle = 0 if progress else idle + 1")
    add(B + "cycle += 1")
    add(B + "if done is not None and idle >= window:")
    add(B + "    status = 2")
    add(B + "    break")
    if lanes:
        # Divergence aborts the current cycle mid-comb-pass; the loop
        # locals (synced below) are a valid promotion point because the
        # combinational pass never mutates unit state and the batched
        # engine re-arms every activation flag before the mask loop.
        add(P + "except LaneDivergence as _e:")
        add(P + "    rt._divergence = _e")
        add(P + "    status = 4")

    # -- epilogue: publish locals back to the engine -----------------------
    _pack(L, [f"V[{c}] = v{c}; R[{c}] = r{c}; D[{c}] = d{c}" for c in live],
          P, per=2)
    _pack(L, [f"A[{k}] = a{k}" for k in range(n_occ)], P)
    _pack(L, [f"KF[{s}] = k{s}" for s in carry_slots], P)
    add(P + "rt.cycle = cycle")
    add(P + "rt._idle_cycles = idle")
    add(P + "rt.total_fires = total_fires")
    add(P + "rt._quiet = quiet")
    add(P + "return status, fires")
    add("")
    add("    return loop")
    add("")

    if lanes:
        _emit_mask_loop(
            L, schedule, units, live, n_occ, needs_mem, occ_groups,
            fire_groups, tick_groups, tgidx, tick_slots, carry_slots,
        )
    return "\n".join(L)


def _emit_mask_loop(L, schedule, units, live, n_occ, needs_mem, occ_groups,
                    fire_groups, tick_groups, tgidx, tick_slots,
                    carry_slots) -> None:
    """Append ``make_mask_loop(rt)`` to a laned module's source.

    The mask loop is the MIMD continuation the batched engine promotes to
    after the first :class:`LaneDivergence`: every 1-bit control signal
    becomes a per-lane bitmask integer (``rt._mv``/``rt._mr``), data
    locals stay lane tuples, per-unit sequential state lives in per-slot
    dicts (``rt._mstate``, seeded by
    :func:`repro.sim.codegen_blocks.mask_state`), and each lane has its
    own done/cycle-freeze bit in the ``live`` mask — finished lanes coast
    with frozen state while the rest keep executing independently.

    ``mloop(budget, done_lane, max_cycles, window)`` returns the same
    status codes as the lockstep loop (0 budget, 1 all lanes done,
    2 deadlock, 3 max_cycles); per-lane completion cycles land in
    ``rt.lane_cycles`` and per-lane fire counts in ``rt._lane_fires``.
    ``done_lane`` is only consulted for lanes with **retirement
    activity** since their previous check: a fire on a channel feeding a
    ``Sink`` or ``StorePort``.  Done predicates observe progress through
    sink receptions and memory writes (both monotone and driven by
    exactly those fires), so a lane with no sink/store fire cannot have
    newly finished; gating the checks this way keeps the per-cycle
    predicate calls proportional to completions instead of to fires.

    Per-lane fire counts use carry-save vertical counters: each fired
    channel's lane mask is added into bit-plane accumulators (``VP``,
    a handful of big-int XOR/ANDs), and the planes are materialized
    into ``rt._lane_fires`` in the epilogue — O(lanes) once per
    ``mloop`` call instead of per fired channel per cycle.
    """
    in_chs, out_chs = schedule.in_chs, schedule.out_chs
    retire_chs = set()
    for s, u in enumerate(units):
        if isinstance(u, (Sink, StorePort)):
            retire_chs.update(in_chs[s])
    add = L.append
    add("")
    add("def make_mask_loop(rt):")
    add("    U = rt._units")
    add("    MV = rt._mv")
    add("    MR = rt._mr")
    add("    D = rt.data")
    add("    A = rt._aflags")
    add("    MS = rt._mstate")
    add("    LB = rt.lanes")
    add("    FULL = (1 << LB) - 1")
    add("    ztup = (None,) * LB")
    add("    LC = rt.lane_cycles")
    add("    LF = rt._lane_fires")
    if needs_mem:
        add("    mrd = rt._mrd")
        add("    mwr = rt._mwr")
    mbinds: List[str] = []
    for s, u in enumerate(units):
        if isinstance(u, FunctionalUnit):
            mbinds.append(f"cp{s} = U[{s}]._compute")
            for slot in sorted(u.const_ops):
                mbinds.append(f"uc{s}_{slot} = U[{s}].const_ops[{slot}]")
        if isinstance(u, (Entry, Constant)):
            mbinds.append(f"uv{s} = (U[{s}].value,) * LB")
        if isinstance(u, Sequence):
            mbinds.append(f"uvq{s} = U[{s}].values")
        if isinstance(u, (ArbiterMerge, FixedOrderMerge)):
            mbinds.append(
                f"lsel{s} = tuple((_i,) * LB for _i in range({u.n_in}))"
            )
        if isinstance(u, FixedOrderMerge):
            mbinds.append(f"uord{s} = tuple(U[{s}].order)")
    _pack(L, mbinds, "    ", per=4)
    add("")
    add("    def mloop(budget, done_lane, max_cycles, window):")
    P = "        "
    B = "            "

    # -- prologue ----------------------------------------------------------
    _pack(L, [f"v{c} = MV[{c}]; r{c} = MR[{c}]; d{c} = D[{c}]"
              for c in live], P, per=2)
    _pack(L, [f"a{k} = A[{k}]" for k in range(n_occ)], P)
    _pack(L, [f"ga{g} = " + " or ".join(f"a{k}" for k in ks) + " or 0"
              for g, ks in enumerate(occ_groups)], P, per=2)
    _pack(L, [f"fg{g} = 1" for g in fire_groups], P)
    sbinds: List[str] = []
    for s, u in enumerate(units):
        for nm in mask_int_names(u) + mask_obj_names(u):
            sbinds.append(f"{mask_local(nm, s)} = MS[{s}][{nm!r}]")
    _pack(L, sbinds, P, per=4)
    _pack(L, [f"t{s} = 0; tb{s} = 0" for s in tick_slots], P, per=4)
    _pack(L, [f"tg{g} = 0; tgb{g} = 0" for g in range(len(tick_groups))],
          P, per=4)
    if carry_slots:
        add(P + "kany = " + " | ".join(f"kc{s}" for s in carry_slots))
    else:
        add(P + "kany = 0")
    add(P + "VP = [0, 0, 0, 0, 0, 0, 0, 0]")
    add(P + "live = rt._live")
    add(P + "fa = rt._fa")
    add(P + "quiet = rt._quiet")
    add(P + "cycle = rt.cycle")
    add(P + "idle = rt._idle_cycles")
    add(P + "total_fires = rt.total_fires")
    add(P + "status = 0")
    add(P + "fires = 0")
    add(P + "while budget > 0:")

    # -- per-lane retirement (fire-activity gated) -------------------------
    add(B + "if fa:")
    add(B + "    _m = fa & live")
    add(B + "    fa = 0")
    add(B + "    while _m:")
    add(B + "        _b = _m & -_m")
    add(B + "        _m &= _m - 1")
    add(B + "        _i = _b.bit_length() - 1")
    add(B + "        if done_lane(_i):")
    add(B + "            live &= ~_b")
    add(B + "            LC[_i] = cycle")
    add(B + "    if not live:")
    add(B + "        status = 1")
    add(B + "        break")
    add(B + "if cycle >= max_cycles:")
    add(B + "    status = 3")
    add(B + "    break")
    add(B + "budget -= 1")
    add(B + "if quiet:")
    add(B + "    fires = 0")
    add(B + "    cycle += 1")
    add(B + "    idle += 1")
    add(B + "    if idle >= window:")
    add(B + "        status = 2")
    add(B + "        break")
    add(B + "    continue")

    # -- combinational pass (mask blocks, same group structure) ------------
    add(B + "# combinational pass (mask mode)")
    for g, ks in enumerate(occ_groups):
        add(B + f"if ga{g}:")
        add(B + f"    ga{g} = 0")
        for k in ks:
            s = schedule.occ_units[k]
            u = units[s]
            block = MASK_EVAL_BLOCKS[type(u)](
                s, u, in_chs[s], out_chs[s], schedule
            )
            add(B + f"    if a{k}:")
            add(B + f"        a{k} = 0")
            for line in block:
                add(B + "        " + line)

    # -- fire scan: a channel fires in lanes where v & r & live ------------
    add(B + "# fire scan (per-lane masks)")
    add(B + "fires = 0")
    for g, cs in fire_groups.items():
        add(B + f"if fg{g}:")
        add(B + f"    fg{g} = 0")
        for c in cs:
            add(B + f"    _f = v{c} & r{c} & live")
            add(B + "    if _f:")
            add(B + "        fires += 1")
            add(B + f"        fg{g} = 1")
            if c in retire_chs:
                add(B + "        fa |= _f")
            add(B + "        total_fires += _f.bit_count()")
            add(B + "        _c = _f")
            add(B + "        _p = 0")
            add(B + "        while _c:")
            add(B + "            if _p == len(VP):")
            add(B + "                VP.append(0)")
            add(B + "            _x = VP[_p]")
            add(B + "            VP[_p] = _x ^ _c")
            add(B + "            _c &= _x")
            add(B + "            _p += 1")
            for s in schedule.tick_mark[c]:
                add(B + f"        t{s} = 1")
            for tg in sorted({tgidx[s] for s in schedule.tick_mark[c]}):
                add(B + f"        tg{tg} = 1")

    add(B + "progress = 1 if fires else (kany & live)")
    add(B + "ticked = 0")

    # -- clock edge, pass 1: masked state transitions ----------------------
    if tick_slots:
        add(B + "# clock edge: masked state transitions")
        for g, ss in enumerate(tick_groups):
            guard = " or ".join(
                [f"tg{g}"] + [f"(kc{s} & live)" for s in ss
                              if s in carry_slots]
            )
            add(B + f"if {guard}:")
            add(B + f"    tg{g} = 0")
            for s in ss:
                u = units[s]
                tk_gen, _pk_gen = MASK_TICK_BLOCKS[type(u)]
                member = (f"if t{s} or (kc{s} & live):"
                          if s in carry_slots else f"if t{s}:")
                add(B + "    " + member)
                add(B + f"        t{s} = 0")
                add(B + f"        tb{s} = 1")
                add(B + "        ticked = 1")
                add(B + f"        tgb{g} = 1")
                for line in tk_gen(s, u, in_chs[s], out_chs[s], schedule):
                    add(B + "        " + line)

        # -- pass 2: recompute ticked units' signals -----------------------
        add(B + "if ticked:")
        for g, ss in enumerate(tick_groups):
            add(B + f"    if tgb{g}:")
            add(B + f"        tgb{g} = 0")
            for s in ss:
                u = units[s]
                _tk_gen, pk_gen = MASK_TICK_BLOCKS[type(u)]
                add(B + f"        if tb{s}:")
                add(B + f"            tb{s} = 0")
                for line in pk_gen(s, u, in_chs[s], out_chs[s], schedule):
                    add(B + "            " + line)
        if carry_slots:
            add(B + "    kany = "
                + " | ".join(f"kc{s}" for s in carry_slots))

    add(B + "quiet = 0 if (fires or ticked) else 1")
    add(B + "idle = 0 if progress else idle + 1")
    add(B + "cycle += 1")
    add(B + "if idle >= window:")
    add(B + "    status = 2")
    add(B + "    break")

    # -- epilogue ----------------------------------------------------------
    add(P + "for _p in range(len(VP)):")
    add(P + "    _x = VP[_p]")
    add(P + "    while _x:")
    add(P + "        _b = _x & -_x")
    add(P + "        _x &= _x - 1")
    add(P + "        LF[_b.bit_length() - 1] += 1 << _p")
    _pack(L, [f"MV[{c}] = v{c}; MR[{c}] = r{c}; D[{c}] = d{c}"
              for c in live], P, per=2)
    _pack(L, [f"A[{k}] = a{k}" for k in range(n_occ)], P)
    wbacks: List[str] = []
    for s, u in enumerate(units):
        for nm in mask_int_names(u):
            wbacks.append(f"MS[{s}][{nm!r}] = {mask_local(nm, s)}")
    _pack(L, wbacks, P, per=4)
    add(P + "rt.cycle = cycle")
    add(P + "rt._idle_cycles = idle")
    add(P + "rt.total_fires = total_fires")
    add(P + "rt._quiet = quiet")
    add(P + "rt._live = live")
    add(P + "rt._fa = fa")
    add(P + "rt.done_mask = FULL & ~live")
    add(P + "return status, fires")
    add("")
    add("    return mloop")
    add("")


# ---------------------------------------------------------------------------
# Module cache: in-process namespace memo + content-addressed disk cache.
# ---------------------------------------------------------------------------

#: Load origins observed this process, for cache tests and CI assertions.
CODEGEN_STATS = {"generated": 0, "disk": 0, "memory": 0}

_MODULE_CACHE: "OrderedDict[str, dict]" = OrderedDict()
_MODULE_CACHE_MAX = 64


def source_key(source: str) -> str:
    """Content address of one generated module.

    Covers the generated source itself, the repro source salt (any edit
    to a repro module — including this generator — changes it) and the
    interpreter's bytecode magic, so a cached module can never be served
    stale across code or interpreter changes.
    """
    from ..sweep.cache import code_salt

    h = hashlib.sha256()
    h.update(code_salt().encode())
    h.update(importlib.util.MAGIC_NUMBER)
    h.update(b"\0")
    h.update(source.encode())
    return h.hexdigest()


def _atomic_write(path: Path, payload: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(payload)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def load_module(source: str, key: Optional[str] = None) -> Tuple[dict, str]:
    """Return ``(namespace, origin)`` for ``source``.

    ``origin`` is ``"memory"`` (in-process memo), ``"disk"`` (marshalled
    bytecode loaded from the cache directory) or ``"generated"``
    (compiled now; the source and bytecode are published to disk).
    """
    if key is None:
        key = source_key(source)
    ns = _MODULE_CACHE.get(key)
    if ns is not None:
        _MODULE_CACHE.move_to_end(key)
        CODEGEN_STATS["memory"] += 1
        return ns, "memory"

    cdir = codegen_cache_dir() / key[:2]
    py_path = cdir / f"{key}.py"
    pyc_path = cdir / f"{key}.pyc"

    code = None
    origin = "disk"
    try:
        blob = pyc_path.read_bytes()
        if blob[: len(_PYC_HEADER)] == _PYC_HEADER:
            code = marshal.loads(blob[len(_PYC_HEADER):])
    except (OSError, ValueError, EOFError, TypeError):
        code = None
    if code is None:
        origin = "generated"
        code = compile(source, str(py_path), "exec")
        try:
            cdir.mkdir(parents=True, exist_ok=True)
            _atomic_write(py_path, source.encode())
            _atomic_write(pyc_path, _PYC_HEADER + marshal.dumps(code))
        except OSError:
            pass  # cache is an optimization; never fail the simulation

    ns = {"CircuitError": CircuitError, "LaneDivergence": LaneDivergence}
    exec(code, ns)
    _MODULE_CACHE[key] = ns
    while len(_MODULE_CACHE) > _MODULE_CACHE_MAX:
        _MODULE_CACHE.popitem(last=False)
    CODEGEN_STATS[origin] += 1
    return ns, origin


# ---------------------------------------------------------------------------
# The engine.
# ---------------------------------------------------------------------------


class CodegenEngine(BaseEngine):
    """Specialized-source simulator; bit-identical to both other backends."""

    backend = "codegen"

    def __init__(
        self,
        circuit: DataflowCircuit,
        memory: Optional[Memory] = None,
        trace: Optional[Trace] = None,
        deadlock_window: int = DEFAULT_DEADLOCK_WINDOW,
        profile: Optional[SimProfile] = None,
        sanitize: Union[bool, "HandshakeSanitizer", None] = None,
        fast_forward: Optional[bool] = None,
    ):
        if profile is not None:
            raise SimulationError(
                "the codegen backend cannot drive a SimProfile: the "
                "generated hot loop has no per-unit instrumentation "
                "points; use --sim-backend compiled (or event) to profile"
            )
        self._init_common(
            circuit, memory, trace, deadlock_window, None, sanitize
        )
        if fast_forward is None:
            fast_forward = fast_forward_default()
        self.fast_forward = bool(fast_forward)
        if self.fast_forward and self.trace is not None:
            raise SimulationError(
                "fast-forward advances whole periods analytically and "
                "cannot drive a Trace (it needs every cycle); detach the "
                "trace or disable fast-forward"
            )
        if self.fast_forward and self.sanitizer is not None:
            raise SimulationError(
                "fast-forward advances whole periods analytically and "
                "cannot drive the HandshakeSanitizer (it needs every "
                "cycle); drop --sanitize/REPRO_SIM_SANITIZE or disable "
                "fast-forward"
            )

        schedule = compile_schedule(circuit)
        self.schedule = schedule
        units = [circuit.units[n] for n in schedule.names]
        self._units = units
        self._slot_of: Dict[str, int] = {
            n: i for i, n in enumerate(schedule.names)
        }

        nch = schedule.nch
        self._nch = nch
        self.valid = bytearray(nch)
        self.ready = bytearray(nch)
        self.fired = bytearray(nch)
        self.data: List = [None] * nch
        self._zeros = bytes(nch)
        self._aflags = bytearray(b"\x01" * schedule.n_occ)
        self._kflags = bytearray(schedule.n_units)
        self._quiet = False
        #: The codegen backend never falls back to generic evaluation —
        #: it raises instead — so this mirror of the compiled backend's
        #: attribute is always empty.
        self.generic_units: List[str] = []
        #: Whole periods applied analytically by fast-forward (see
        #: :mod:`repro.sim.fastforward`); stays 0 unless it engages.
        self.ff_periods_applied = 0

        self._reset_units(units)

        source = generate_source(circuit, schedule)
        self.codegen_key = source_key(source)
        ns, origin = load_module(source, key=self.codegen_key)
        #: How the generated module was obtained: ``"generated"``,
        #: ``"disk"`` or ``"memory"``.
        self.codegen_origin = origin
        self._loop = ns["make_loop"](self)

    # ------------------------------------------------------------------ step
    def step(self) -> int:
        """Simulate one clock cycle; return the number of channel fires."""
        trace = self.trace
        rec = trace.record if trace is not None and trace.active else None
        _status, fires = self._loop(
            1, None, 0, self.deadlock_window, self.sanitizer, rec
        )
        return fires

    def run_cycles(self, n: int) -> int:
        """Advance exactly ``n`` cycles (no deadlock abort); return fires."""
        trace = self.trace
        rec = trace.record if trace is not None and trace.active else None
        before = self.total_fires
        self._loop(n, None, 0, self.deadlock_window, self.sanitizer, rec)
        return self.total_fires - before

    # ------------------------------------------------------------------- run
    def _raise_status(self, status: int, max_cycles: int) -> None:
        """Raise the BaseEngine-equivalent error for a loop exit status."""
        if status == 2:
            blocked = diagnose(self.circuit, self.valid, self.ready)
            raise DeadlockError(
                f"deadlock at cycle {self.cycle}: no activity for "
                f"{self._idle_cycles} cycles\n  " + "\n  ".join(blocked),
                cycle=self.cycle,
                blocked=blocked,
            )
        if status == 3:
            raise SimulationError(
                f"simulation exceeded {max_cycles} cycles without "
                f"completing ({self.total_fires} transfers so far)"
            )

    def run(self, done, max_cycles: int = 1_000_000) -> int:
        """Run until ``done()`` holds; same contract as BaseEngine.run."""
        if self.fast_forward:
            from .fastforward import run_fast_forward

            status = run_fast_forward(self, done, max_cycles)
            self._raise_status(status, max_cycles)
            return self.cycle

        trace = self.trace
        rec = trace.record if trace is not None and trace.active else None
        san = self.sanitizer
        while True:
            budget = max(max_cycles - self.cycle, 0) + 1
            status, _ = self._loop(
                budget, done, max_cycles, self.deadlock_window, san, rec
            )
            if status == 1:
                break
            self._raise_status(status, max_cycles)
            # status 0: budget exhausted before any terminal condition
            # (possible only when cycle started beyond max_cycles); loop.
        if san is not None:
            san.finish()
            san.raise_if_violations()
        return self.cycle
