"""Compiled static-schedule simulation backend.

The event-driven :class:`~repro.sim.engine.Engine` discovers the evaluation
order dynamically every cycle: a dirty queue, change-detection setters and a
fixpoint loop.  That machinery is pure interpretive overhead — for a fixed
circuit the combinational evaluation order never changes.  This backend
compiles the circuit **once** into a static schedule and replays it every
cycle:

1.  **Signal graph.**  Every channel contributes two signal nodes: its
    forward node (valid/data, driven by the producer) and its backward node
    (ready, driven by the consumer).  Each unit declares, via
    :meth:`~repro.circuit.unit.Unit.comb_deps`, which observed signals each
    of its driven signals combinationally depends on; registered paths
    (buffers, pipeline heads, credit counters) contribute no edges, which
    is exactly what makes the graph acyclic in a legal elastic circuit.
2.  **Levelization.**  The graph is topologically sorted with longest-path
    ranks.  A combinational cycle (a graph cycle with no sequential element
    on it) is rejected at compile time with a
    :class:`~repro.errors.CombinationalCycleError` naming the signal path —
    the event engine only notices the same defect dynamically, as a
    fixpoint that never converges.
3.  **Occurrence schedule.**  A unit is evaluated once per distinct rank
    among the signals it drives, in ascending rank order.  Evaluating the
    occurrences in schedule order computes the exact handshake fixpoint in
    a single pass: on an acyclic graph the fixpoint is unique, and by the
    time a signal's rank is reached all of its dependencies hold final
    values.  (Earlier occurrences may overwrite higher-rank signals with
    provisional values; those are recomputed at their proper rank, and no
    unit in the catalogue consumes a *data* value before the blob
    dependencies that guard it are final.)
4.  **Activation gating.**  Most units see no new tokens most cycles, so
    replaying the full schedule would waste the sparsity the event engine
    exploits.  Each occurrence has an activation flag; a change-detected
    signal write activates exactly the occurrences that finalize the
    signals depending on it (always *later* in the schedule — the pass
    never loops), and a unit's clock-edge ``tick`` re-activates all of its
    occurrences for the next cycle.  A cycle in which nothing fired and
    nothing ticked leaves no activations: the circuit state provably
    cannot change any more and the quiet-cycle fast path skips the whole
    hot loop.

The per-cycle hot loop is therefore: a C-speed ``bytearray.find`` scan over
the activation flags calling specialized per-unit closures (no event queue,
no fixpoint iteration, no PortCtx method dispatch for catalogue types), a
big-integer fire scan (``int.from_bytes(valid) & int.from_bytes(ready)``),
and ticks over only the units whose state can actually change.

The backend is a drop-in replacement for the event engine (same
constructor, ``step``/``run``/``run_cycles``, deadlock detection, traces,
memory, profiles) and is differentially tested bit-for-bit against it.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

from ..circuit import (
    ArbiterMerge,
    Branch,
    Constant,
    CreditCounter,
    DataflowCircuit,
    Demux,
    EagerFork,
    ElasticBuffer,
    Entry,
    FixedOrderMerge,
    FunctionalUnit,
    Join,
    LazyFork,
    LoadPort,
    Merge,
    Mux,
    Sequence,
    Sink,
    StorePort,
    TransparentFifo,
)
from ..errors import CircuitError
from .engine import DEFAULT_DEADLOCK_WINDOW, BaseEngine

if TYPE_CHECKING:
    from .sanitize import HandshakeSanitizer
from .memory import Memory
from .profile import SimProfile
from .signal_graph import compile_schedule
from .trace import Trace


class _CompiledCtx:
    """PortCtx lookalike whose setters drive activation flags.

    Used as the tick-phase context for every unit, and as the eval context
    for unit types without a specialized closure emitter (e.g. user-defined
    subclasses in tests).  Reads mirror :class:`~repro.circuit.unit.PortCtx`
    exactly; writes do change detection against the compiled engine's
    signal bytearrays and activate the dependent occurrences.
    """

    __slots__ = (
        "valid", "ready", "data", "fired",
        "in_ch", "out_ch", "act", "f_act", "b_act",
    )

    def __init__(self, valid, ready, data, fired, in_ch, out_ch,
                 act, f_act, b_act):
        self.valid = valid
        self.ready = ready
        self.data = data
        self.fired = fired
        self.in_ch = in_ch
        self.out_ch = out_ch
        self.act = act
        self.f_act = f_act
        self.b_act = b_act

    # --- input side -------------------------------------------------------
    def in_valid(self, i: int) -> bool:
        ch = self.in_ch[i]
        return ch >= 0 and self.valid[ch] != 0

    def in_data(self, i: int):
        return self.data[self.in_ch[i]]

    def set_in_ready(self, i: int, r: bool) -> None:
        ch = self.in_ch[i]
        if ch >= 0 and self.ready[ch] != r:
            self.ready[ch] = r
            act = self.act
            for k in self.b_act[ch]:
                act[k] = 1

    def fired_in(self, i: int) -> bool:
        ch = self.in_ch[i]
        return ch >= 0 and self.fired[ch] != 0

    # --- output side ------------------------------------------------------
    def out_ready(self, i: int) -> bool:
        ch = self.out_ch[i]
        return ch >= 0 and self.ready[ch] != 0

    def set_out(self, i: int, v: bool, d=None) -> None:
        ch = self.out_ch[i]
        if ch >= 0 and (self.valid[ch] != v or self.data[ch] != d):
            self.valid[ch] = v
            self.data[ch] = d
            act = self.act
            for k in self.f_act[ch]:
                act[k] = 1

    def fired_out(self, i: int) -> bool:
        ch = self.out_ch[i]
        return ch >= 0 and self.fired[ch] != 0


class CompiledEngine(BaseEngine):
    """Static-schedule simulator; bit-identical to :class:`Engine`."""

    backend = "compiled"

    def __init__(
        self,
        circuit: DataflowCircuit,
        memory: Optional[Memory] = None,
        trace: Optional[Trace] = None,
        deadlock_window: int = DEFAULT_DEADLOCK_WINDOW,
        profile: Optional[SimProfile] = None,
        sanitize: Union[bool, "HandshakeSanitizer", None] = None,
    ):
        self._init_common(
            circuit, memory, trace, deadlock_window, profile, sanitize
        )

        nch = max((ch.cid for ch in circuit.channels), default=-1) + 1
        self._nch = nch
        # Handshake bits live in bytearrays so the fire scan can treat the
        # whole vector as one big integer; data values stay in a list.
        self.valid = bytearray(nch)
        self.ready = bytearray(nch)
        self.fired = bytearray(nch)
        self.data: List = [None] * nch
        self._zeros = bytes(nch)

        # ------------------------------------------------ static schedule
        # Node 2*cid   = channel cid's forward signal (valid/data),
        # node 2*cid+1 = channel cid's backward signal (ready).  Shared
        # with repro.lint's ST005 rule, which surfaces the same cycles
        # before any engine is built (see repro.sim.signal_graph).  The
        # levelized occurrence schedule is memoized per circuit structure
        # (compile_schedule), so repeated runs of the same configuration —
        # sweeps, differential tests, benchmarks — pay for levelization
        # once per process.
        schedule = compile_schedule(circuit)
        self.schedule = schedule
        units = [circuit.units[n] for n in schedule.names]
        self._units = units
        self._slot_of: Dict[str, int] = {
            n: i for i, n in enumerate(schedule.names)
        }
        n_units = len(units)

        self._cons_unit = schedule.cons_unit
        self._prod_unit = schedule.prod_unit
        in_chs, out_chs = schedule.in_chs, schedule.out_chs
        self._in_chs, self._out_chs = in_chs, out_chs

        n_occ = schedule.n_occ
        self._n_occ = n_occ
        self.n_ranks = schedule.n_ranks
        self._occ_units = schedule.occ_units
        self._occs_of_unit = schedule.occs_of_unit
        f_act, b_act = schedule.f_act, schedule.b_act
        self._f_act, self._b_act = f_act, b_act

        # ---------------------------------------------- clock edge prep
        self._tickable = schedule.tickable
        self._tick_mark = schedule.tick_mark
        self._tick_pend = bytearray(n_units)
        self._has_quiescent = schedule.has_quiescent

        # ------------------------------------------------- evaluators
        self._act = bytearray(b"\x01" * n_occ)  # seed: evaluate everything
        self._ctxs = [
            _CompiledCtx(
                self.valid, self.ready, self.data, self.fired,
                in_chs[s], out_chs[s], self._act, f_act, b_act,
            )
            for s in range(n_units)
        ]
        evals_by_slot = [self._emit(s) for s in range(n_units)]
        self._occ_evals = [evals_by_slot[s] for s in self._occ_units]
        tick_pairs = [self._emit_tick(s) for s in range(n_units)]
        self._ticks = [p[0] if p else None for p in tick_pairs]
        self._tick_posts = [p[1] if p else None for p in tick_pairs]

        #: Units that skipped the specialized emitters (None = all did).
        self.generic_units = [
            units[s].name for s in range(n_units)
            if evals_by_slot[s].__name__ == "_generic"
        ]

        self._carry: List[int] = []   # non-quiescent units to tick next
        self._quiet = False

        self._reset_units(units)
        self._adopt_profile(units)

    # --------------------------------------------------------------- emitters
    def _emit(self, s: int) -> Callable[[], None]:
        """Build the zero-argument evaluation closure for unit slot ``s``.

        Catalogue types get specialized closures that read and write the
        signal arrays directly (no PortCtx dispatch); anything else — or a
        catalogue unit with an unconnected port — falls back to the unit's
        own ``eval_comb`` through a :class:`_CompiledCtx`.
        """
        u = self._units[s]
        ic, oc = self._in_chs[s], self._out_chs[s]
        emitter = _EMITTERS.get(type(u))
        if emitter is not None and all(c >= 0 for c in ic + oc):
            ev = emitter(
                u, ic, oc,
                self.valid, self.ready, self.data,
                self._act, self._f_act, self._b_act,
                self._ctxs[s],
            )
            if ev is not None:
                return ev

        def _generic(f=u.eval_comb, c=self._ctxs[s]):
            f(c)

        return _generic

    def _emit_tick(self, s: int):
        """Build the fused ``(apply, post)`` closure pair for slot ``s``.

        Returns None for units without a specialized tick emitter (or with
        unconnected ports); those fall back to ``tick()`` through the
        compiled context plus a full re-activation of their occurrences.
        """
        if not self._tickable[s]:
            return None
        u = self._units[s]
        ic, oc = self._in_chs[s], self._out_chs[s]
        emitter = _TICK_EMITTERS.get(type(u))
        if emitter is None or not all(c >= 0 for c in ic + oc):
            return None
        return emitter(
            u, ic, oc,
            self.valid, self.ready, self.data, self.fired,
            self._act, self._f_act, self._b_act,
            self._ctxs[s],
        )

    # ------------------------------------------------------------------- step
    def step(self) -> int:
        """Simulate one clock cycle; return the number of channel fires."""
        if self._quiet:
            # Nothing fired and nothing ticked last cycle: every signal is
            # at an unchanged fixpoint and will stay there.
            if self.sanitizer is not None:
                self.sanitizer.observe_quiet()
            self.cycle += 1
            self._idle_cycles += 1
            return 0

        # Combinational phase: one pass over the active occurrences in
        # static rank order.  In-pass activations only point forward, so
        # the forward find() scan consumes them all.
        act = self._act
        evals = self._occ_evals
        find = act.find
        k = find(1)
        while k >= 0:
            act[k] = 0
            evals[k]()
            k = find(1, k + 1)

        # Fire scan: valid & ready as one big integer.
        fv = (
            int.from_bytes(self.valid, "little")
            & int.from_bytes(self.ready, "little")
        )

        carry = self._carry
        pend = self._tick_pend
        tlist: List[int] = []
        for i in carry:
            if not pend[i]:
                pend[i] = 1
                tlist.append(i)

        fires = 0
        if fv:
            # One byte per channel: the fired bytes ARE the scan list.
            fb = fv.to_bytes(self._nch, "little")
            self.fired[:] = fb
            trace = self.trace
            rec = trace.record if trace is not None and trace.active else None
            tick_mark = self._tick_mark
            fnd = fb.find
            c = fnd(1)
            if rec is None:
                while c >= 0:
                    fires += 1
                    for i in tick_mark[c]:
                        if not pend[i]:
                            pend[i] = 1
                            tlist.append(i)
                    c = fnd(1, c + 1)
            else:
                cyc = self.cycle
                while c >= 0:
                    fires += 1
                    for i in tick_mark[c]:
                        if not pend[i]:
                            pend[i] = 1
                            tlist.append(i)
                    rec(c, cyc)
                    c = fnd(1, c + 1)

        if self.sanitizer is not None:
            # Observe at the cycle fixpoint: fired flags are set, ticks
            # have not yet rewritten any signal.
            self.sanitizer.observe(
                self.cycle, self.valid, self.ready, self.data, self.fired
            )

        progress = fires > 0 or bool(carry)

        if tlist:
            # Canonical ascending-slot order, matching the event engine.
            tlist.sort()
            ticks = self._ticks
            posts = self._tick_posts
            units = self._units
            ctxs = self._ctxs
            occs = self._occs_of_unit
            hasq = self._has_quiescent
            # Pass 1: state transitions only, every unit reading the
            # pristine cycle fixpoint (matches event-engine semantics).
            for i in tlist:
                pend[i] = 0
                tk = ticks[i]
                if tk is not None:
                    tk()
                else:
                    units[i].tick(ctxs[i])
            # Pass 2: recompute each ticked unit's driven signals.
            new_carry: List[int] = []
            for i in tlist:
                pk = posts[i]
                if pk is not None:
                    if pk():
                        new_carry.append(i)
                else:
                    for k in occs[i]:
                        act[k] = 1
                    if hasq[i] and not units[i].quiescent():
                        new_carry.append(i)
            self._carry = new_carry
        else:
            self._carry = []
        if fv:
            self.fired[:] = self._zeros
        self._quiet = fv == 0 and not tlist

        self.total_fires += fires
        self._idle_cycles = 0 if progress else self._idle_cycles + 1
        self.cycle += 1
        return fires

    # ----------------------------------------------------- instrumented step
    def _step_profiled(self) -> int:
        """``step`` with per-phase timers and per-unit eval counts."""
        prof = self.profile
        if self._quiet:
            if self.sanitizer is not None:
                self.sanitizer.observe_quiet()
            self.cycle += 1
            self._idle_cycles += 1
            prof.cycles += 1
            prof.quiet_cycles += 1
            return 0

        t0 = perf_counter()
        act = self._act
        evals = self._occ_evals
        occ_units = self._occ_units
        counts = prof.eval_counts
        find = act.find
        k = find(1)
        while k >= 0:
            act[k] = 0
            evals[k]()
            counts[occ_units[k]] += 1
            k = find(1, k + 1)
        t1 = perf_counter()

        fv = (
            int.from_bytes(self.valid, "little")
            & int.from_bytes(self.ready, "little")
        )
        carry = self._carry
        pend = self._tick_pend
        tlist: List[int] = []
        for i in carry:
            if not pend[i]:
                pend[i] = 1
                tlist.append(i)
        fires = 0
        if fv:
            fb = fv.to_bytes(self._nch, "little")
            self.fired[:] = fb
            trace = self.trace
            rec = trace.record if trace is not None and trace.active else None
            tick_mark = self._tick_mark
            cyc = self.cycle
            fnd = fb.find
            c = fnd(1)
            while c >= 0:
                fires += 1
                for i in tick_mark[c]:
                    if not pend[i]:
                        pend[i] = 1
                        tlist.append(i)
                if rec is not None:
                    rec(c, cyc)
                c = fnd(1, c + 1)
        t2 = perf_counter()

        if self.sanitizer is not None:
            self.sanitizer.observe(
                self.cycle, self.valid, self.ready, self.data, self.fired
            )

        progress = fires > 0 or bool(carry)
        if tlist:
            tlist.sort()
            ticks = self._ticks
            posts = self._tick_posts
            units = self._units
            ctxs = self._ctxs
            occs = self._occs_of_unit
            hasq = self._has_quiescent
            tcounts = prof.tick_counts
            for i in tlist:
                pend[i] = 0
                tcounts[i] += 1
                tk = ticks[i]
                if tk is not None:
                    tk()
                else:
                    units[i].tick(ctxs[i])
            new_carry: List[int] = []
            for i in tlist:
                pk = posts[i]
                if pk is not None:
                    if pk():
                        new_carry.append(i)
                else:
                    for k in occs[i]:
                        act[k] = 1
                    if hasq[i] and not units[i].quiescent():
                        new_carry.append(i)
            self._carry = new_carry
        else:
            self._carry = []
        if fv:
            self.fired[:] = self._zeros
        self._quiet = fv == 0 and not tlist
        t3 = perf_counter()

        prof.comb_s += t1 - t0
        prof.fire_s += t2 - t1
        prof.tick_s += t3 - t2
        prof.wall_s += t3 - t0
        prof.cycles += 1
        prof.fires += fires

        self.total_fires += fires
        self._idle_cycles = 0 if progress else self._idle_cycles + 1
        self.cycle += 1
        return fires


# ---------------------------------------------------------------------------
# Specialized closure emitters, one per catalogue type.
#
# Every emitter receives (unit, in_channels, out_channels, valid, ready,
# data, act, f_act, b_act, ctx) and returns a zero-argument closure that
# reproduces the unit's eval_comb exactly: same driven values, same
# change-detection points.  Mutable state containers (``_q``, ``_pipe``,
# ``_sent``, ...) are re-read from the unit on every call because several
# units rebind them (set_state, FunctionalUnit.tick).
# ---------------------------------------------------------------------------


def _emit_elastic_buffer(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ci, co = ic[0], oc[0]
    fa, ba = f_act[co], b_act[ci]
    slots = u.slots

    def ev():
        q = u._q
        if q:
            v, d = 1, q[0]
        else:
            v, d = 0, None
        if V[co] != v or D[co] != d:
            V[co] = v
            D[co] = d
            for k in fa:
                act[k] = 1
        r = len(q) < slots
        if R[ci] != r:
            R[ci] = r
            for k in ba:
                act[k] = 1

    return ev


def _emit_transparent_fifo(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ci, co = ic[0], oc[0]
    fa, ba = f_act[co], b_act[ci]
    slots = u.slots

    def ev():
        q = u._q
        if q:
            v, d = 1, q[0]
        else:
            v = V[ci]
            d = D[ci] if v else None
        if V[co] != v or D[co] != d:
            V[co] = v
            D[co] = d
            for k in fa:
                act[k] = 1
        r = len(q) < slots
        if R[ci] != r:
            R[ci] = r
            for k in ba:
                act[k] = 1

    return ev


def _emit_credit_counter(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ci, co = ic[0], oc[0]
    fa, ba = f_act[co], b_act[ci]

    def ev():
        v = 1 if u._count > 0 else 0
        if V[co] != v:
            V[co] = v
            for k in fa:
                act[k] = 1
        if not R[ci]:
            R[ci] = 1
            for k in ba:
                act[k] = 1

    return ev


def _emit_entry(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    co = oc[0]
    fa = f_act[co]
    val = u.value

    def ev():
        v = 1 if u._remaining > 0 else 0
        if V[co] != v or D[co] != val:
            V[co] = v
            D[co] = val
            for k in fa:
                act[k] = 1

    return ev


def _emit_sequence(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    co = oc[0]
    fa = f_act[co]

    def ev():
        vals = u.values
        pos = u._pos
        if pos < len(vals):
            v, d = 1, vals[pos]
        else:
            v, d = 0, None
        if V[co] != v or D[co] != d:
            V[co] = v
            D[co] = d
            for k in fa:
                act[k] = 1

    return ev


def _emit_sink(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ci = ic[0]
    ba = b_act[ci]

    def ev():
        if not R[ci]:
            R[ci] = 1
            for k in ba:
                act[k] = 1

    return ev


def _emit_constant(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ci, co = ic[0], oc[0]
    fa, ba = f_act[co], b_act[ci]
    val = u.value

    def ev():
        iv = V[ci]
        if V[co] != iv or D[co] != val:
            V[co] = iv
            D[co] = val
            for k in fa:
                act[k] = 1
        r = R[co]
        if R[ci] != r:
            R[ci] = r
            for k in ba:
                act[k] = 1

    return ev


def _emit_eager_fork(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ci = ic[0]
    outs = tuple(oc)
    fas = tuple(f_act[c] for c in outs)
    ba = b_act[ci]
    n = u.n_out
    rng = tuple(range(n))

    def ev():
        iv = V[ci]
        d = D[ci] if iv else None
        sent = u._sent
        all_done = True
        for i in rng:
            co = outs[i]
            v = iv and not sent[i]
            if V[co] != v or D[co] != d:
                V[co] = v
                D[co] = d
                for k in fas[i]:
                    act[k] = 1
            if not (sent[i] or R[co]):
                all_done = False
        if R[ci] != all_done:
            R[ci] = all_done
            for k in ba:
                act[k] = 1

    return ev


def _emit_lazy_fork(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ci = ic[0]
    outs = tuple(oc)
    fas = tuple(f_act[c] for c in outs)
    ba = b_act[ci]
    n = u.n_out
    rng = tuple(range(n))

    def ev():
        iv = V[ci]
        d = D[ci] if iv else None
        miss = 0
        last = -1
        for i in rng:
            if not R[outs[i]]:
                miss += 1
                last = i
        for i in rng:
            others = miss == 0 or (miss == 1 and last == i)
            v = iv and others
            co = outs[i]
            if V[co] != v or D[co] != d:
                V[co] = v
                D[co] = d
                for k in fas[i]:
                    act[k] = 1
        r = miss == 0
        if R[ci] != r:
            R[ci] = r
            for k in ba:
                act[k] = 1

    return ev


def _emit_join(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ics = tuple(ic)
    co = oc[0]
    fa = f_act[co]
    bas = tuple(b_act[c] for c in ics)
    n = u.n_in
    rng = tuple(range(n))
    tuple_mode = u.data_mode == "tuple"
    bundle = ics[: u.n_bundle]

    def ev():
        miss = 0
        last = -1
        for i in rng:
            if not V[ics[i]]:
                miss += 1
                last = i
        if miss == 0:
            d = tuple(D[c] for c in bundle) if tuple_mode else D[ics[0]]
            v = 1
        else:
            d = None
            v = 0
        if V[co] != v or D[co] != d:
            V[co] = v
            D[co] = d
            for k in fa:
                act[k] = 1
        ordy = R[co]
        for i in rng:
            others = miss == 0 or (miss == 1 and last == i)
            r = ordy and others
            ci = ics[i]
            if R[ci] != r:
                R[ci] = r
                for k in bas[i]:
                    act[k] = 1

    return ev


def _emit_merge(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ics = tuple(ic)
    co = oc[0]
    fa = f_act[co]
    bas = tuple(b_act[c] for c in ics)
    n = u.n_in
    rng = tuple(range(n))

    def ev():
        sel = -1
        for i in rng:
            if V[ics[i]]:
                sel = i
                break
        if sel >= 0:
            v, d = 1, D[ics[sel]]
        else:
            v, d = 0, None
        if V[co] != v or D[co] != d:
            V[co] = v
            D[co] = d
            for k in fa:
                act[k] = 1
        ordy = R[co]
        for i in rng:
            r = ordy and i == sel
            ci = ics[i]
            if R[ci] != r:
                R[ci] = r
                for k in bas[i]:
                    act[k] = 1

    return ev


def _emit_arbiter_merge(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ics = tuple(ic)
    o0, o1 = oc
    fa0, fa1 = f_act[o0], f_act[o1]
    bas = tuple(b_act[c] for c in ics)
    prio = tuple(u.priority)
    n = u.n_in
    rng = tuple(range(n))

    def ev():
        sel = -1
        for i in prio:
            if V[ics[i]]:
                sel = i
                break
        r0 = R[o0]
        r1 = R[o1]
        found = sel >= 0
        v0 = found and r1
        d0 = D[ics[sel]] if found else None
        if V[o0] != v0 or D[o0] != d0:
            V[o0] = v0
            D[o0] = d0
            for k in fa0:
                act[k] = 1
        v1 = found and r0
        d1 = sel if found else None
        if V[o1] != v1 or D[o1] != d1:
            V[o1] = v1
            D[o1] = d1
            for k in fa1:
                act[k] = 1
        g = r0 and r1
        for i in rng:
            r = g and i == sel
            ci = ics[i]
            if R[ci] != r:
                R[ci] = r
                for k in bas[i]:
                    act[k] = 1

    return ev


def _emit_fixed_order_merge(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ics = tuple(ic)
    o0, o1 = oc
    fa0, fa1 = f_act[o0], f_act[o1]
    bas = tuple(b_act[c] for c in ics)
    n = u.n_in
    rng = tuple(range(n))

    def ev():
        sel = u.order[u._pos]
        v = V[ics[sel]]
        r0 = R[o0]
        r1 = R[o1]
        v0 = v and r1
        d0 = D[ics[sel]] if v else None
        if V[o0] != v0 or D[o0] != d0:
            V[o0] = v0
            D[o0] = d0
            for k in fa0:
                act[k] = 1
        v1 = v and r0
        d1 = sel if v else None
        if V[o1] != v1 or D[o1] != d1:
            V[o1] = v1
            D[o1] = d1
            for k in fa1:
                act[k] = 1
        g = r0 and r1
        for i in rng:
            r = g and i == sel and v
            ci = ics[i]
            if R[ci] != r:
                R[ci] = r
                for k in bas[i]:
                    act[k] = 1

    return ev


def _emit_mux(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    cs = ic[0]
    dchs = tuple(ic[1:])
    co = oc[0]
    fa = f_act[co]
    bs = b_act[cs]
    bas = tuple(b_act[c] for c in dchs)
    nd = u.n_data
    rng = tuple(range(nd))
    name = u.name

    def ev():
        sv = V[cs]
        sel = -1
        if sv:
            sel = int(D[cs])
            if not 0 <= sel < nd:
                raise CircuitError(
                    f"mux {name!r}: select value {sel} out of range"
                )
        dv = sel >= 0 and V[dchs[sel]]
        if dv:
            v, d = 1, D[dchs[sel]]
        else:
            v, d = 0, None
        if V[co] != v or D[co] != d:
            V[co] = v
            D[co] = d
            for k in fa:
                act[k] = 1
        ordy = R[co]
        r = ordy and dv
        if R[cs] != r:
            R[cs] = r
            for k in bs:
                act[k] = 1
        for i in rng:
            r = ordy and sv and i == sel
            ci = dchs[i]
            if R[ci] != r:
                R[ci] = r
                for k in bas[i]:
                    act[k] = 1

    return ev


def _emit_branch(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    cc, cd = ic
    ot, of_ = oc
    fat, faf = f_act[ot], f_act[of_]
    bac, bad = b_act[cc], b_act[cd]

    def ev():
        cv = V[cc]
        dv = V[cd]
        both = cv and dv
        tgt = -1
        if cv:
            tgt = 0 if D[cc] else 1
        d = D[cd] if dv else None
        v0 = both and tgt == 0
        if V[ot] != v0 or D[ot] != d:
            V[ot] = v0
            D[ot] = d
            for k in fat:
                act[k] = 1
        v1 = both and tgt == 1
        if V[of_] != v1 or D[of_] != d:
            V[of_] = v1
            D[of_] = d
            for k in faf:
                act[k] = 1
        if tgt == 0:
            tr = R[ot]
        elif tgt == 1:
            tr = R[of_]
        else:
            tr = False
        r = dv and tr
        if R[cc] != r:
            R[cc] = r
            for k in bac:
                act[k] = 1
        r = cv and tr
        if R[cd] != r:
            R[cd] = r
            for k in bad:
                act[k] = 1

    return ev


def _emit_demux(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ci0, ci1 = ic
    outs = tuple(oc)
    fas = tuple(f_act[c] for c in outs)
    ba0, ba1 = b_act[ci0], b_act[ci1]
    n = u.n_out
    rng = tuple(range(n))
    name = u.name

    def ev():
        sv = V[ci0]
        dv = V[ci1]
        both = sv and dv
        tgt = -1
        if sv:
            tgt = int(D[ci0])
            if not 0 <= tgt < n:
                raise CircuitError(f"demux {name!r}: index {tgt} out of range")
        d = D[ci1] if dv else None
        for i in rng:
            v = both and i == tgt
            co = outs[i]
            if V[co] != v or D[co] != d:
                V[co] = v
                D[co] = d
                for k in fas[i]:
                    act[k] = 1
        tr = tgt >= 0 and R[outs[tgt]]
        r = dv and tr
        if R[ci0] != r:
            R[ci0] = r
            for k in ba0:
                act[k] = 1
        r = sv and tr
        if R[ci1] != r:
            R[ci1] = r
            for k in ba1:
                act[k] = 1

    return ev


def _emit_functional(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ics = tuple(ic)
    co = oc[0]
    fa = f_act[co]
    bas = tuple(b_act[c] for c in ics)
    n = u.n_in
    rng = tuple(range(n))
    compute = u._compute
    getops = u._operands
    plain = not u.bundled and not u.const_ops

    if u.latency == 0:
        def ev():
            miss = 0
            last = -1
            for i in rng:
                if not V[ics[i]]:
                    miss += 1
                    last = i
            if miss == 0:
                v = 1
                if plain:
                    d = compute(tuple(D[c] for c in ics))
                else:
                    d = compute(getops(ctx))
            else:
                v, d = 0, None
            if V[co] != v or D[co] != d:
                V[co] = v
                D[co] = d
                for k in fa:
                    act[k] = 1
            ordy = R[co]
            for i in rng:
                others = miss == 0 or (miss == 1 and last == i)
                r = ordy and others
                ci = ics[i]
                if R[ci] != r:
                    R[ci] = r
                    for k in bas[i]:
                        act[k] = 1

        return ev

    def ev():
        head = u._pipe[-1]
        if head is not None:
            v, d = 1, head[0]
            advance = R[co]
        else:
            v, d = 0, None
            advance = True
        if V[co] != v or D[co] != d:
            V[co] = v
            D[co] = d
            for k in fa:
                act[k] = 1
        miss = 0
        last = -1
        for i in rng:
            if not V[ics[i]]:
                miss += 1
                last = i
        for i in rng:
            others = miss == 0 or (miss == 1 and last == i)
            r = advance and others
            ci = ics[i]
            if R[ci] != r:
                R[ci] = r
                for k in bas[i]:
                    act[k] = 1

    return ev


def _emit_load_port(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ci, co = ic[0], oc[0]
    fa, ba = f_act[co], b_act[ci]

    def ev():
        head = u._pipe[-1]
        if head is not None:
            v, d = 1, head[0]
            r = R[co]
        else:
            v, d = 0, None
            r = True
        if V[co] != v or D[co] != d:
            V[co] = v
            D[co] = d
            for k in fa:
                act[k] = 1
        if R[ci] != r:
            R[ci] = r
            for k in ba:
                act[k] = 1

    return ev


def _emit_store_port(u, ic, oc, V, R, D, act, f_act, b_act, ctx):
    ca, cd = ic
    co = oc[0]
    fa = f_act[co]
    baa, bad = b_act[ca], b_act[cd]

    def ev():
        head = u._pipe[-1]
        if head is not None:
            v = 1
            advance = R[co]
        else:
            v = 0
            advance = True
        if V[co] != v or D[co] is not None:
            V[co] = v
            D[co] = None
            for k in fa:
                act[k] = 1
        av = V[ca]
        dv = V[cd]
        r = advance and dv
        if R[ca] != r:
            R[ca] = r
            for k in baa:
                act[k] = 1
        r = advance and av
        if R[cd] != r:
            R[cd] = r
            for k in bad:
                act[k] = 1

    return ev


# ---------------------------------------------------------------------------
# Fused clock-edge emitters.
#
# A ticked unit's signals must be recomputed before the next fire scan; the
# naive route re-activates all of the unit's occurrences and pays another
# trip through the find() loop.  These emitters fuse the state transition
# and the recomputation into a closure pair ``(apply, post)`` executed in
# two passes over the ticked units: every ``apply`` runs first (state
# transitions only — each one must see the cycle's *pristine* fixpoint
# signals, exactly like ticks through a PortCtx), then every ``post``
# re-evaluates its unit's driven signals with the usual change detection
# (activating *downstream* occurrences only) and returns the carry flag
# (truthy = the unit can make internal progress without any channel firing,
# exactly ``not quiescent()``).  A ``post`` may read signals another
# ``post`` has already rewritten; that is safe for the same reason the
# single-pass schedule is exact — any later change to one of its inputs
# re-activates the unit's occurrence and the next combinational pass
# corrects the provisional values.
# ---------------------------------------------------------------------------


def _tick_elastic_buffer(u, ic, oc, V, R, D, F, act, f_act, b_act, ctx):
    ci, co = ic[0], oc[0]
    fa, ba = f_act[co], b_act[ci]
    slots = u.slots

    def tk():
        q = u._q
        if F[co]:
            q.popleft()
        if F[ci]:
            q.append(D[ci])

    def pk():
        q = u._q
        if q:
            v, d = 1, q[0]
        else:
            v, d = 0, None
        if V[co] != v or D[co] != d:
            V[co] = v
            D[co] = d
            for k in fa:
                act[k] = 1
        r = len(q) < slots
        if R[ci] != r:
            R[ci] = r
            for k in ba:
                act[k] = 1
        return False

    return tk, pk


def _tick_transparent_fifo(u, ic, oc, V, R, D, F, act, f_act, b_act, ctx):
    ci, co = ic[0], oc[0]
    fa, ba = f_act[co], b_act[ci]
    slots = u.slots

    def tk():
        q = u._q
        if q:
            if F[co]:
                q.popleft()
            if F[ci]:
                q.append(D[ci])
        elif F[ci] and not F[co]:
            q.append(D[ci])

    def pk():
        q = u._q
        if q:
            v, d = 1, q[0]
        else:
            v = V[ci]
            d = D[ci] if v else None
        if V[co] != v or D[co] != d:
            V[co] = v
            D[co] = d
            for k in fa:
                act[k] = 1
        r = len(q) < slots
        if R[ci] != r:
            R[ci] = r
            for k in ba:
                act[k] = 1
        return False

    return tk, pk


def _tick_credit_counter(u, ic, oc, V, R, D, F, act, f_act, b_act, ctx):
    ci, co = ic[0], oc[0]
    fa, ba = f_act[co], b_act[ci]
    initial = u.initial

    def tk():
        c = u._count
        if F[co]:
            c -= 1
        if F[ci]:
            c += 1
        u._count = c
        if not 0 <= c <= initial:
            raise CircuitError(
                f"credit counter {u.name!r}: count {c} escaped "
                f"[0, {initial}] -- more credits returned than granted"
            )

    def pk():
        c = u._count
        v = 1 if c > 0 else 0
        if V[co] != v:
            V[co] = v
            for k in fa:
                act[k] = 1
        if not R[ci]:
            R[ci] = 1
            for k in ba:
                act[k] = 1
        return False

    return tk, pk


def _tick_entry(u, ic, oc, V, R, D, F, act, f_act, b_act, ctx):
    co = oc[0]
    fa = f_act[co]
    val = u.value

    def tk():
        if F[co]:
            u._remaining -= 1

    def pk():
        v = 1 if u._remaining > 0 else 0
        if V[co] != v or D[co] != val:
            V[co] = v
            D[co] = val
            for k in fa:
                act[k] = 1
        return False

    return tk, pk


def _tick_sequence(u, ic, oc, V, R, D, F, act, f_act, b_act, ctx):
    co = oc[0]
    fa = f_act[co]

    def tk():
        if F[co]:
            u._pos += 1

    def pk():
        vals = u.values
        pos = u._pos
        if pos < len(vals):
            v, d = 1, vals[pos]
        else:
            v, d = 0, None
        if V[co] != v or D[co] != d:
            V[co] = v
            D[co] = d
            for k in fa:
                act[k] = 1
        return False

    return tk, pk


def _tick_sink(u, ic, oc, V, R, D, F, act, f_act, b_act, ctx):
    ci = ic[0]
    ba = b_act[ci]

    def tk():
        if F[ci]:
            u.received.append(D[ci])

    def pk():
        if not R[ci]:
            R[ci] = 1
            for k in ba:
                act[k] = 1
        return False

    return tk, pk


def _tick_eager_fork(u, ic, oc, V, R, D, F, act, f_act, b_act, ctx):
    ci = ic[0]
    outs = tuple(oc)
    fas = tuple(f_act[c] for c in outs)
    ba = b_act[ci]
    rng = tuple(range(u.n_out))

    def tk():
        sent = u._sent
        if F[ci]:
            for i in rng:
                sent[i] = False
        else:
            for i in rng:
                if F[outs[i]]:
                    sent[i] = True

    def pk():
        sent = u._sent
        iv = V[ci]
        d = D[ci] if iv else None
        all_done = True
        for i in rng:
            co = outs[i]
            v = iv and not sent[i]
            if V[co] != v or D[co] != d:
                V[co] = v
                D[co] = d
                for k in fas[i]:
                    act[k] = 1
            if not (sent[i] or R[co]):
                all_done = False
        if R[ci] != all_done:
            R[ci] = all_done
            for k in ba:
                act[k] = 1
        return False

    return tk, pk


def _tick_fixed_order_merge(u, ic, oc, V, R, D, F, act, f_act, b_act, ctx):
    ics = tuple(ic)
    o0, o1 = oc
    fa0, fa1 = f_act[o0], f_act[o1]
    bas = tuple(b_act[c] for c in ics)
    rng = tuple(range(u.n_in))

    def tk():
        order = u.order
        if F[ics[order[u._pos]]]:
            u._pos = (u._pos + 1) % len(order)

    def pk():
        sel = u.order[u._pos]
        v = V[ics[sel]]
        r0 = R[o0]
        r1 = R[o1]
        v0 = v and r1
        d0 = D[ics[sel]] if v else None
        if V[o0] != v0 or D[o0] != d0:
            V[o0] = v0
            D[o0] = d0
            for k in fa0:
                act[k] = 1
        v1 = v and r0
        d1 = sel if v else None
        if V[o1] != v1 or D[o1] != d1:
            V[o1] = v1
            D[o1] = d1
            for k in fa1:
                act[k] = 1
        g = r0 and r1
        for i in rng:
            r = g and i == sel and v
            ci = ics[i]
            if R[ci] != r:
                R[ci] = r
                for k in bas[i]:
                    act[k] = 1
        return False

    return tk, pk


def _tick_functional(u, ic, oc, V, R, D, F, act, f_act, b_act, ctx):
    if u.latency == 0:
        return None
    ics = tuple(ic)
    ci0 = ics[0]
    co = oc[0]
    fa = f_act[co]
    bas = tuple(b_act[c] for c in ics)
    rng = tuple(range(u.n_in))
    compute = u._compute
    getops = u._operands
    plain = not u.bundled and not u.const_ops
    adv = [True]  # did the apply pass shift the pipeline this edge?

    def tk():
        pipe = u._pipe
        head = pipe[-1]
        if head is not None and not F[co]:
            adv[0] = False  # stalled: state and signals unchanged
            return
        adv[0] = True
        if F[ci0]:
            if plain:
                new = (compute(tuple(D[c] for c in ics)),)
            else:
                new = (compute(getops(ctx)),)
        else:
            new = None
        u._pipe = [new] + pipe[:-1]

    def pk():
        if not adv[0]:
            return False  # stalled head: quiescent, nothing to recompute
        pipe = u._pipe
        head = pipe[-1]
        if head is not None:
            v, d = 1, head[0]
            advance = R[co]
        else:
            v, d = 0, None
            advance = True
        if V[co] != v or D[co] != d:
            V[co] = v
            D[co] = d
            for k in fa:
                act[k] = 1
        miss = 0
        last = -1
        for i in rng:
            if not V[ics[i]]:
                miss += 1
                last = i
        for i in rng:
            others = miss == 0 or (miss == 1 and last == i)
            r = advance and others
            ci = ics[i]
            if R[ci] != r:
                R[ci] = r
                for k in bas[i]:
                    act[k] = 1
        if head is not None:
            return False
        for st in pipe:
            if st is not None:
                return True
        return False

    return tk, pk


def _tick_load_port(u, ic, oc, V, R, D, F, act, f_act, b_act, ctx):
    ci, co = ic[0], oc[0]
    fa, ba = f_act[co], b_act[ci]
    array = u.array
    adv = [True]

    def tk():
        pipe = u._pipe
        head = pipe[-1]
        if head is not None and not F[co]:
            adv[0] = False
            return
        adv[0] = True
        if F[ci]:
            new = (u._mem().read(array, int(D[ci])),)
        else:
            new = None
        u._pipe = [new] + pipe[:-1]

    def pk():
        if not adv[0]:
            return False
        pipe = u._pipe
        head = pipe[-1]
        if head is not None:
            v, d = 1, head[0]
            r = R[co]
        else:
            v, d = 0, None
            r = True
        if V[co] != v or D[co] != d:
            V[co] = v
            D[co] = d
            for k in fa:
                act[k] = 1
        if R[ci] != r:
            R[ci] = r
            for k in ba:
                act[k] = 1
        if head is not None:
            return False
        for st in pipe:
            if st is not None:
                return True
        return False

    return tk, pk


def _tick_store_port(u, ic, oc, V, R, D, F, act, f_act, b_act, ctx):
    ca, cd = ic
    co = oc[0]
    fa = f_act[co]
    baa, bad = b_act[ca], b_act[cd]
    array = u.array
    adv = [True]

    def tk():
        pipe = u._pipe
        head = pipe[-1]
        if head is not None and not F[co]:
            adv[0] = False
            return
        adv[0] = True
        if F[ca]:
            u._mem().write(array, int(D[ca]), D[cd])
            new = True
        else:
            new = None
        u._pipe = [new] + pipe[:-1]

    def pk():
        if not adv[0]:
            return False
        pipe = u._pipe
        head = pipe[-1]
        if head is not None:
            v = 1
            advance = R[co]
        else:
            v = 0
            advance = True
        if V[co] != v or D[co] is not None:
            V[co] = v
            D[co] = None
            for k in fa:
                act[k] = 1
        av = V[ca]
        dv = V[cd]
        r = advance and dv
        if R[ca] != r:
            R[ca] = r
            for k in baa:
                act[k] = 1
        r = advance and av
        if R[cd] != r:
            R[cd] = r
            for k in bad:
                act[k] = 1
        if head is not None:
            return False
        for st in pipe:
            if st is not None:
                return True
        return False

    return tk, pk


_EMITTERS = {
    ElasticBuffer: _emit_elastic_buffer,
    TransparentFifo: _emit_transparent_fifo,
    CreditCounter: _emit_credit_counter,
    Entry: _emit_entry,
    Sequence: _emit_sequence,
    Sink: _emit_sink,
    Constant: _emit_constant,
    EagerFork: _emit_eager_fork,
    LazyFork: _emit_lazy_fork,
    Join: _emit_join,
    Merge: _emit_merge,
    ArbiterMerge: _emit_arbiter_merge,
    FixedOrderMerge: _emit_fixed_order_merge,
    Mux: _emit_mux,
    Branch: _emit_branch,
    Demux: _emit_demux,
    FunctionalUnit: _emit_functional,
    LoadPort: _emit_load_port,
    StorePort: _emit_store_port,
}

_TICK_EMITTERS = {
    ElasticBuffer: _tick_elastic_buffer,
    TransparentFifo: _tick_transparent_fifo,
    CreditCounter: _tick_credit_counter,
    Entry: _tick_entry,
    Sequence: _tick_sequence,
    Sink: _tick_sink,
    EagerFork: _tick_eager_fork,
    FixedOrderMerge: _tick_fixed_order_merge,
    FunctionalUnit: _tick_functional,
    LoadPort: _tick_load_port,
    StorePort: _tick_store_port,
}
