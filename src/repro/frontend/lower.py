"""Lowering: kernel IR → dataflow circuit (the Dynamatic substitute).

The lowering uses the standard dynamically-scheduled-HLS loop schema
[29, 31]: every value that crosses a loop iteration — the induction
variable, carried scalars, loop-invariant values used inside, the control
token, and memory-dependency tokens — is threaded through a header merge,
circulated through the body, and steered by a branch on the loop condition
either onto the back edge (through an elastic buffer annotated with the one
circulating token) or out of the loop.  Conditionals become branch /
mux diamonds on every value they touch.  Loop invocations are serialized by
joining each header's init value with the region's control token, which
cannot advance past a running invocation — this plays the role of
Dynamatic's control network and prevents iteration mixing at the merges.

Two styles, matching the paper's two host HLS flows:

``"bb"``
    BB-organized circuits [29, 31]: constants are dataflow units activated
    by the basic block's control token, conditionals route the control
    token through the diamond, and BB boundaries add elastic buffers on
    reconverging values — faithfully more control logic and slightly longer
    carried-value cycles.

``"fast-token"``
    Fast-token-delivery circuits [21]: no BB organization — constants fold
    into operand slots, the control token skips conditionals, and no BB
    boundary buffers exist.  Same computation, leaner circuit, lower cycle
    counts; CRUSH runs on it unmodified (paper Section 6.5).

Memory read-modify-write loops (``y[j] = y[j] + ...``) additionally thread
a *memory dependency token*: each load of the array joins with the token
produced by the previous iteration's store, reproducing the conservative
store→load ordering Dynamatic's memory controller enforces when no LSQ is
present.  This is what gives every paper kernel its II > 1 even where no
scalar is carried.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..circuit import (
    Branch,
    Constant,
    DataflowCircuit,
    ElasticBuffer,
    Entry,
    EagerFork,
    FunctionalUnit,
    Join,
    LoadPort,
    Merge,
    Mux,
    Netlist,
    Sink,
    StorePort,
    Unit,
    Value,
)
from ..errors import FrontendError
from .ir import (
    Array,
    Bin,
    Const,
    Expr,
    For,
    IConst,
    If,
    Kernel,
    Let,
    Load,
    Param,
    SetCarried,
    Stmt,
    Store,
    Var,
)

CTL = "@ctl"


def dep_key(array: str) -> str:
    return f"@dep:{array}"


@dataclass
class LoweredKernel:
    """A lowered kernel: the circuit plus what the runner needs to drive it."""

    kernel: Kernel
    circuit: DataflowCircuit
    style: str
    end_sink: str
    cfc_tags: List[str]

    def array_sizes(self) -> Dict[str, int]:
        return {
            a.name: a.resolved_size(self.kernel.params) for a in self.kernel.arrays
        }


# --------------------------------------------------------------- AST analysis
def expr_reads(e: Expr) -> Set[str]:
    if isinstance(e, Var):
        return {e.name}
    if isinstance(e, Bin):
        return expr_reads(e.a) | expr_reads(e.b)
    if isinstance(e, Load):
        return expr_reads(e.index)
    return set()


def block_reads_writes(stmts: List[Stmt]) -> Tuple[Set[str], Set[str]]:
    """Free variable reads and carried-var writes of a statement block."""
    defined: Set[str] = set()
    reads: Set[str] = set()
    writes: Set[str] = set()
    for s in stmts:
        if isinstance(s, Let):
            reads |= expr_reads(s.expr) - defined
            defined.add(s.name)
        elif isinstance(s, SetCarried):
            reads |= expr_reads(s.expr) - defined
            writes.add(s.name)
        elif isinstance(s, Store):
            reads |= (expr_reads(s.index) | expr_reads(s.value)) - defined
        elif isinstance(s, If):
            reads |= expr_reads(s.cond) - defined
            for blk in (s.then, s.orelse):
                r, w = block_reads_writes(blk)
                reads |= r - defined
                writes |= w
        elif isinstance(s, For):
            reads |= (expr_reads(s.lo) | expr_reads(s.hi)) - defined
            for init in s.carried.values():
                reads |= expr_reads(init) - defined
            r, w = block_reads_writes(s.body)
            local = {s.var} | set(s.carried)
            reads |= (r - local) - defined
            leaked = w - set(s.carried)
            if leaked:
                raise FrontendError(
                    f"loop over {s.var!r} writes non-carried names {sorted(leaked)}"
                )
        else:
            raise FrontendError(f"unsupported statement {s!r}")
    return reads, writes


def branch_assigned(stmts: List[Stmt]) -> Set[str]:
    """Names an If branch assigns: SetCarried targets plus Let bindings.

    A Let that shadows an enclosing-scope name inside a conditional branch
    is a conditional reassignment (C-style ``p = ...;`` under an ``if``) and
    must reconverge through a mux like a carried-var update.
    """
    names: Set[str] = set()
    for s in stmts:
        if isinstance(s, Let):
            names.add(s.name)
        elif isinstance(s, SetCarried):
            names.add(s.name)
        elif isinstance(s, If):
            names |= branch_assigned(s.then) | branch_assigned(s.orelse)
    return names


def arrays_accessed(stmts: List[Stmt]) -> Tuple[Set[str], Set[str]]:
    """(arrays loaded, arrays stored) anywhere in the block."""
    loads: Set[str] = set()
    stores: Set[str] = set()

    def walk_expr(e: Expr):
        if isinstance(e, Load):
            loads.add(e.array)
            walk_expr(e.index)
        elif isinstance(e, Bin):
            walk_expr(e.a)
            walk_expr(e.b)

    def walk(block: List[Stmt]):
        for s in block:
            if isinstance(s, (Let, SetCarried)):
                walk_expr(s.expr)
            elif isinstance(s, Store):
                stores.add(s.array)
                walk_expr(s.index)
                walk_expr(s.value)
            elif isinstance(s, If):
                walk_expr(s.cond)
                walk(s.then)
                walk(s.orelse)
            elif isinstance(s, For):
                walk_expr(s.lo)
                walk_expr(s.hi)
                for init in s.carried.values():
                    walk_expr(init)
                walk(s.body)

    walk(stmts)
    return loads, stores


def has_nested_for(stmts: List[Stmt]) -> bool:
    for s in stmts:
        if isinstance(s, For):
            return True
        if isinstance(s, If) and (has_nested_for(s.then) or has_nested_for(s.orelse)):
            return True
    return False


# ------------------------------------------------------------------- lowering
class _Lowerer:
    def __init__(self, kernel: Kernel, style: str):
        if style not in ("bb", "fast-token"):
            raise FrontendError(f"unknown lowering style {style!r}")
        self.kernel = kernel
        self.style = style
        self.bb = style == "bb"
        self.nl = Netlist(name=f"{kernel.name}[{style}]")
        self.params = kernel.params
        self.cfc_tag: Optional[str] = None
        self.loop_counter = 0
        self.cfc_tags: List[str] = []
        self.array_names = {a.name for a in kernel.arrays}
        # Per-(array, kind) site counters; produce the same "X#ld0"-style
        # IDs as repro.analysis.memdep's IR walk so static verdicts can be
        # joined to the circuit's memory ports.
        self._mem_sites: Dict[Tuple[str, str], int] = {}

    def mem_site(self, array: str, tag: str) -> str:
        n = self._mem_sites.get((array, tag), 0)
        self._mem_sites[(array, tag)] = n + 1
        return f"{array}#{tag}{n}"

    # ------------------------------------------------------------- utilities
    def add(self, unit: Unit) -> Unit:
        self.nl.add(unit)
        if self.cfc_tag is not None:
            unit.meta["cfc"] = self.cfc_tag
        return unit

    def fresh(self, prefix: str) -> str:
        return self.nl.fresh(prefix)

    def static_int(self, e: Expr) -> Optional[int]:
        """Resolve a compile-time integer expression, or None."""
        if isinstance(e, IConst):
            return e.value
        if isinstance(e, Param):
            try:
                return int(self.params[e.name])
            except KeyError:
                raise FrontendError(f"unknown parameter {e.name!r}") from None
        if isinstance(e, Bin):
            a = self.static_int(e.a)
            b = self.static_int(e.b)
            if a is None or b is None:
                return None
            if e.op == "iadd":
                return a + b
            if e.op == "isub":
                return a - b
            if e.op == "imul":
                return a * b
        return None

    def static_const(self, e: Expr) -> Optional[object]:
        """Literal value of a constant expression (int or float), or None."""
        if isinstance(e, Const):
            return e.value
        return self.static_int(e)

    def constant(self, value, env: Dict[str, Value], label: str = "const") -> Value:
        """A per-activation token carrying ``value`` (BB constant unit)."""
        unit = self.add(Constant(self.fresh(f"{label}_"), value))
        self.nl.use(env[CTL], unit, 0, width=0)
        return (unit, 0)

    # ----------------------------------------------------------- expressions
    def lower_expr(self, e: Expr, env: Dict[str, Value]) -> Value:
        if isinstance(e, (Const, IConst, Param)):
            v = self.static_const(e)
            if v is None:
                raise FrontendError(f"cannot resolve constant {e!r}")
            return self.constant(v, env)
        if isinstance(e, Var):
            if e.name not in env:
                raise FrontendError(f"unbound variable {e.name!r}")
            return env[e.name]
        if isinstance(e, Load):
            return self.lower_load(e, env)
        if isinstance(e, Bin):
            return self.lower_bin(e, env)
        raise FrontendError(f"cannot lower expression {e!r}")

    def lower_bin(self, e: Bin, env: Dict[str, Value]) -> Value:
        from ..circuit import op_spec as _op_spec

        const_ops: Dict[int, object] = {}
        live: List[Value] = []
        if not self.bb and not _op_spec(e.op).shareable:
            # Fast-token style folds literal operands into integer/control
            # units.  Shareable (floating-point) operators always take their
            # constants as operand tokens so every instance of a type has
            # the same operand shape — a prerequisite for unit sharing.
            for slot, operand in enumerate((e.a, e.b)):
                v = self.static_const(operand)
                if v is not None:
                    const_ops[slot] = v
            if len(const_ops) == 2:
                # Fully static: fold the whole expression away.
                from ..circuit import op_spec

                folded = op_spec(e.op).fn(const_ops[0], const_ops[1])
                return self.constant(folded, env)
        for slot, operand in enumerate((e.a, e.b)):
            if slot not in const_ops:
                live.append(self.lower_expr(operand, env))
        fu = self.add(
            FunctionalUnit(self.fresh(f"{e.op}_"), e.op, const_ops=const_ops)
        )
        for port, v in enumerate(live):
            self.nl.use(v, fu, port)
        return (fu, 0)

    def lower_load(self, e: Load, env: Dict[str, Value]) -> Value:
        addr = self.lower_expr(e.index, env)
        dep = env.get(dep_key(e.array))
        if dep is not None:
            gate = self.add(Join(self.fresh(f"ldgate_{e.array}_"), 2))
            gate.meta["mem_gate"] = e.array
            self.nl.use(addr, gate, 0)
            self.nl.use(dep, gate, 1, width=0)
            addr = (gate, 0)
        port = self.add(LoadPort(self.fresh(f"load_{e.array}_"), e.array))
        port.meta["mem_site"] = self.mem_site(e.array, "ld")
        self.nl.use(addr, port, 0)
        return (port, 0)

    # ------------------------------------------------------------ statements
    def lower_block(self, stmts: List[Stmt], env: Dict[str, Value]) -> None:
        for s in stmts:
            self.lower_stmt(s, env)

    def lower_stmt(self, s: Stmt, env: Dict[str, Value]) -> None:
        if isinstance(s, Let):
            value = self.lower_expr(s.expr, env)
            # A local may go unread (dead code); its token must still drain.
            self.nl.declare(value)
            env[s.name] = value
        elif isinstance(s, SetCarried):
            if s.name not in env:
                raise FrontendError(f"SetCarried on undeclared {s.name!r}")
            env[s.name] = self.lower_expr(s.expr, env)
        elif isinstance(s, Store):
            self.lower_store(s, env)
        elif isinstance(s, If):
            self.lower_if(s, env)
        elif isinstance(s, For):
            self.lower_loop(s, env)
        else:
            raise FrontendError(f"unsupported statement {s!r}")

    def lower_store(self, s: Store, env: Dict[str, Value]) -> None:
        addr = self.lower_expr(s.index, env)
        value = self.lower_expr(s.value, env)
        port = self.add(StorePort(self.fresh(f"store_{s.array}_"), s.array))
        port.meta["mem_site"] = self.mem_site(s.array, "st")
        self.nl.use(addr, port, 0)
        self.nl.use(value, port, 1)
        done: Value = (port, 0)
        key = dep_key(s.array)
        if key in env:
            env[key] = done
        else:
            self.nl.declare(done)

    def lower_if(self, s: If, env: Dict[str, Value]) -> None:
        cond = self.lower_expr(s.cond, env)
        touched = self._if_touched_names(s, env)
        then_env = dict(env)
        else_env = dict(env)
        for name in touched:
            # Control/dependency tokens are dataless: width 0 end to end.
            w = 0 if name.startswith("@") else 32
            br = self.add(Branch(self.fresh(f"if_br_{name.strip('@:')}_")))
            self.nl.use(cond, br, 0, width=1)
            self.nl.use(env[name], br, 1, width=w)
            # A branch may shadow the incoming value without reading it;
            # the unread copy must still drain.
            self.nl.declare((br, 0))
            self.nl.declare((br, 1))
            then_env[name] = (br, 0)
            else_env[name] = (br, 1)
        self.lower_block(s.then, then_env)
        self.lower_block(s.orelse, else_env)
        for name in touched:
            w = 0 if name.startswith("@") else 32
            mux = self.add(Mux(self.fresh(f"if_mux_{name.strip('@:')}_"), 2))
            self.nl.use(cond, mux, 0, width=1)
            self.nl.use(else_env[name], mux, 1, width=w)
            self.nl.use(then_env[name], mux, 2, width=w)
            out: Value = (mux, 0)
            if self.bb:
                # BB boundary: the reconverged value crosses into a new
                # basic block through an elastic buffer.
                eb = self.add(
                    ElasticBuffer(self.fresh("bb_eb_"), slots=2, width_hint=w)
                )
                self.nl.use(out, eb, 0, width=w)
                out = (eb, 0)
            self.nl.declare(out)  # touched-but-unread-after values drain
            env[name] = out

    def _if_touched_names(self, s: If, env: Dict[str, Value]) -> List[str]:
        reads_t, writes_t = block_reads_writes(s.then)
        reads_e, writes_e = block_reads_writes(s.orelse)
        assigned = branch_assigned(s.then) | branch_assigned(s.orelse)
        names = (reads_t | reads_e | writes_t | writes_e | assigned) & set(env)
        loads, stores = arrays_accessed(s.then + s.orelse)
        for arr in loads | stores:
            if dep_key(arr) in env:
                names.add(dep_key(arr))
        # The control token is routed through the diamond in both styles so
        # control-activated units inside a branch (constants, nested inits)
        # fire exactly once per *taken* branch, never piling up tokens.
        names.add(CTL)
        if has_nested_for(s.then) or has_nested_for(s.orelse):
            raise FrontendError("loops inside conditionals are not supported")
        ordered = sorted(n for n in names if not n.startswith("@"))
        ordered += sorted(n for n in names if n.startswith("@"))
        return ordered

    # ------------------------------------------------------------------ loops
    def lower_loop(self, s: For, env: Dict[str, Value]) -> None:
        loop_id = self.loop_counter
        self.loop_counter += 1
        innermost = not has_nested_for(s.body)
        tag = f"{self.kernel.name}.L{loop_id}" if innermost else None
        if tag:
            self.cfc_tags.append(tag)

        body_reads, body_writes = block_reads_writes(s.body)
        bad = body_writes - set(s.carried)
        if bad:
            raise FrontendError(
                f"loop over {s.var!r}: SetCarried on undeclared {sorted(bad)}"
            )
        bound_reads = expr_reads(s.hi)
        invariants = sorted(
            n
            for n in (body_reads | bound_reads) - {s.var} - set(s.carried)
            if n in env and not n.startswith("@")
        )

        # Memory dependency threads: every loop whose subtree both loads and
        # stores an array carries a dependency token for it, so a load can
        # never overtake a previous iteration's (or a nested loop's final)
        # store to that array — the conservative store→load ordering an
        # LSQ-free memory controller enforces.
        loads, stores = arrays_accessed(s.body)
        dep_arrays = sorted(loads & stores)

        lo_static = self.static_int(s.lo)
        hi_static = self.static_int(s.hi)
        if lo_static is not None and hi_static is not None and hi_static <= lo_static:
            raise FrontendError(
                f"loop over {s.var!r} has trip count "
                f"{hi_static - lo_static} <= 0 (the do-while loop schema "
                "requires at least one iteration)"
            )

        # --- init values, evaluated in the enclosing region -----------------
        inits: List[Tuple[str, Value]] = [(CTL, env[CTL])]
        inits.append((s.var, self.lower_expr(s.lo, env)))
        for name, init_expr in s.carried.items():
            inits.append((name, self.lower_expr(init_expr, env)))
        for name in invariants:
            inits.append((name, env[name]))
        for arr in dep_arrays:
            key = dep_key(arr)
            inits.append((key, env.get(key, env[CTL])))

        # --- loop header: control merge + per-value muxes --------------------
        # The control merge (cmerge) observes in which order invocations and
        # iterations deliver control tokens (index 0 = loop entry, 1 = back
        # edge) and its index stream steers every header mux, so each mux
        # consumes init/backedge data in the correct global order even when
        # the fast control path runs many iterations ahead of a slow carried
        # value.  This is the standard dynamically-scheduled loop schema and
        # what prevents tokens of consecutive loop invocations from mixing.
        if tag:
            self.cfc_tag = tag
        from ..circuit import ArbiterMerge

        cmerge = self.add(ArbiterMerge(self.fresh("cmerge_"), 2, priority=[0, 1]))
        self.nl.use(env[CTL], cmerge, 0, width=0)
        # A small FIFO decouples the index stream from the header muxes:
        # the cmerge can issue the control token without waiting for every
        # mux to be ready for its select (and the control path may run a
        # bounded number of iterations ahead of slow carried values).
        from ..circuit import TransparentFifo

        selbuf = self.add(TransparentFifo(self.fresh("selbuf_"), slots=2, width_hint=1))
        self.nl.use((cmerge, 1), selbuf, 0, width=1)
        sel: Value = (selbuf, 0)
        ctlbuf = self.add(TransparentFifo(self.fresh("ctlbuf_"), slots=2, width_hint=0))
        self.nl.use((cmerge, 0), ctlbuf, 0, width=0)
        header_in1: Dict[str, Tuple[Unit, int]] = {}
        loop_env = dict(env)
        loop_env[CTL] = (ctlbuf, 0)
        for name, init in inits:
            if name == CTL:
                header_in1[name] = (cmerge, 1)  # input port 1 is the back edge
                continue
            pretty = name.strip("@:").replace(":", "_")
            mux = self.add(Mux(self.fresh(f"hdr_{pretty}_"), 2))
            self.nl.use(sel, mux, 0, width=1)
            self.nl.use(init, mux, 1, width=0 if name.startswith("@") else 32)
            header_in1[name] = (mux, 2)
            loop_env[name] = (mux, 0)

        # --- body -------------------------------------------------------------
        self.lower_block(s.body, loop_env)

        # --- latch: induction step, exit condition, steering -----------------
        if self.bb:
            one = self.constant(1, loop_env, label="c1")
            nexti_fu = self.add(FunctionalUnit(self.fresh("iadd_"), "iadd"))
            self.nl.use(loop_env[s.var], nexti_fu, 0)
            self.nl.use(one, nexti_fu, 1)
            nexti: Value = (nexti_fu, 0)
        else:
            nexti_fu = self.add(
                FunctionalUnit(self.fresh("iadd_"), "iadd", const_ops={1: 1})
            )
            self.nl.use(loop_env[s.var], nexti_fu, 0)
            nexti = (nexti_fu, 0)

        if hi_static is not None and not self.bb:
            cmp_fu = self.add(
                FunctionalUnit(
                    self.fresh("icmp_"), "icmp_lt", const_ops={1: hi_static}
                )
            )
            self.nl.use(nexti, cmp_fu, 0)
        else:
            hi_val = self.lower_expr(s.hi, loop_env)
            cmp_fu = self.add(FunctionalUnit(self.fresh("icmp_"), "icmp_lt"))
            self.nl.use(nexti, cmp_fu, 0)
            self.nl.use(hi_val, cmp_fu, 1)
        cond: Value = (cmp_fu, 0)

        updated: Dict[str, Value] = {CTL: loop_env[CTL], s.var: nexti}
        for name in s.carried:
            updated[name] = loop_env[name]
        for name in invariants:
            updated[name] = loop_env[name]
        for arr in dep_arrays:
            updated[dep_key(arr)] = loop_env[dep_key(arr)]

        for name, _ in inits:
            pretty = name.strip("@:").replace(":", "_")
            # Control and dependency tokens carry no data; their channels
            # are width 0 end to end (repro.lint rule ST002 checks that
            # buffers preserve the width of what flows through them).
            w = 0 if name.startswith("@") else 32
            br = self.add(Branch(self.fresh(f"latch_{pretty}_")))
            self.nl.use(cond, br, 0, width=1)
            self.nl.use(updated[name], br, 1, width=w)
            # Back edge: elastic buffer carrying the circulating token.
            eb = self.add(
                ElasticBuffer(self.fresh(f"bedge_{pretty}_"), slots=2, width_hint=w)
            )
            self.nl.use((br, 0), eb, 0, width=w)
            back: Value = (eb, 0)
            if self.bb and name == CTL:
                eb2 = self.add(
                    ElasticBuffer(self.fresh("bedge_ctl2_"), slots=2, width_hint=0)
                )
                self.nl.use(back, eb2, 0, width=0)
                back = (eb2, 0)
            dst_unit, dst_port = header_in1[name]
            self.nl.use(
                back,
                dst_unit,
                dst_port,
                width=w,
                attrs={"tokens": 1, "backedge": True},
            )
            # Exit edge.
            exit_val: Value = (br, 1)
            if name == CTL:
                if self.bb:
                    eb3 = self.add(
                        ElasticBuffer(self.fresh("exit_ctl_eb_"), slots=2, width_hint=0)
                    )
                    self.nl.use(exit_val, eb3, 0, width=0)
                    exit_val = (eb3, 0)
                self.nl.declare(exit_val)
                env[CTL] = exit_val
            elif name in s.carried:
                self.nl.declare(exit_val)  # carried result may go unread
                env[name] = exit_val
            elif name.startswith("@dep:"):
                self.nl.declare(exit_val)
                if name in env:
                    env[name] = exit_val
            else:
                self.nl.declare(exit_val)  # induction var / invariants: done
        if tag:
            self.cfc_tag = None

    # --------------------------------------------------------------- kernel
    def lower(self) -> LoweredKernel:
        entry = self.add(Entry("entry", count=1))
        env: Dict[str, Value] = {CTL: (entry, 0)}
        self.lower_block(self.kernel.body, env)
        end = self.add(Sink("end"))
        self.nl.use(env[CTL], end, 0, width=0)
        circuit = self.nl.finalize()
        return LoweredKernel(
            kernel=self.kernel,
            circuit=circuit,
            style=self.style,
            end_sink="end",
            cfc_tags=self.cfc_tags,
        )


def lower_kernel(kernel: Kernel, style: str = "bb") -> LoweredKernel:
    """Lower ``kernel`` to a dataflow circuit in the given style."""
    return _Lowerer(kernel, style).lower()
