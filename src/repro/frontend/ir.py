"""Kernel IR: the C-subset the frontend lowers to dataflow circuits.

This plays the role of Dynamatic's C frontend for the paper's benchmarks:
perfectly/imperfectly nested counted loops over flat arrays, floating-point
expression DAGs, loop-carried scalar accumulators (what LLVM's mem2reg
produces for register-promotable reductions), read-modify-write array
updates (not promotable — these become memory-carried dependencies), and
data-dependent conditionals (gsum/gsumif).

Expressions are trees over :data:`repro.circuit.OPS` mnemonics; loop bounds
are compile-time parameters or outer loop variables (triangular loops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..errors import FrontendError

# --------------------------------------------------------------- expressions


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """Floating-point literal."""

    value: float


@dataclass(frozen=True)
class IConst(Expr):
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class Param(Expr):
    """Compile-time integer parameter (array extent, trip count)."""

    name: str


@dataclass(frozen=True)
class Var(Expr):
    """Reference to a loop variable, carried scalar, or let-bound temp."""

    name: str


@dataclass(frozen=True)
class Load(Expr):
    """Array element read; ``index`` is a flat (row-major) integer expr."""

    array: str
    index: Expr


@dataclass(frozen=True)
class Bin(Expr):
    """Binary operator over :data:`repro.circuit.OPS` mnemonics."""

    op: str
    a: Expr
    b: Expr


# Convenience constructors — kernels read like the original C.
def fadd(a: Expr, b: Expr) -> Bin:
    return Bin("fadd", a, b)


def fsub(a: Expr, b: Expr) -> Bin:
    return Bin("fsub", a, b)


def fmul(a: Expr, b: Expr) -> Bin:
    return Bin("fmul", a, b)


def iadd(a: Expr, b: Expr) -> Bin:
    return Bin("iadd", a, b)


def imul(a: Expr, b: Expr) -> Bin:
    return Bin("imul", a, b)


def fcmp_ge(a: Expr, b: Expr) -> Bin:
    return Bin("fcmp_ge", a, b)


def fcmp_lt(a: Expr, b: Expr) -> Bin:
    return Bin("fcmp_lt", a, b)


def idx2(i: Expr, j: Expr, cols: Expr) -> Expr:
    """Row-major flat index ``i*cols + j``."""
    return iadd(imul(i, cols), j)


# ---------------------------------------------------------------- statements


class Stmt:
    """Base class for statement nodes."""

    __slots__ = ()


@dataclass
class Let(Stmt):
    """Bind a body-local temporary (single assignment)."""

    name: str
    expr: Expr


@dataclass
class SetCarried(Stmt):
    """Update a loop-carried scalar; visible from the next iteration on."""

    name: str
    expr: Expr


@dataclass
class Store(Stmt):
    """Array element write; ``index`` is a flat integer expr."""

    array: str
    index: Expr
    value: Expr


@dataclass
class If(Stmt):
    """Data-dependent conditional; branches may update carried scalars,
    bind temps, and store."""

    cond: Expr
    then: List[Stmt]
    orelse: List[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    """Counted loop ``for (var = lo; var < hi; var++)``.

    ``carried`` maps loop-carried scalar names to their init expressions
    (evaluated in the enclosing scope); after the loop the final values are
    visible under the same names.
    """

    var: str
    lo: Expr
    hi: Expr
    body: List[Stmt]
    carried: Dict[str, Expr] = field(default_factory=dict)


# -------------------------------------------------------------------- kernel


@dataclass
class Array:
    """A flat memory array.  ``size`` may reference kernel parameters.

    ``index_of`` marks an *index array*: its elements are interpreted as
    addresses into the named target array (histogram bins, sparse
    row/column indices, next-pointers).  Input generation then draws
    valid indices instead of floats, and the memory-dependence analyzer
    knows loads through it are data-dependent by construction.
    """

    name: str
    size: Union[int, str, Tuple[Union[int, str], ...]]
    role: str = "in"  # "in", "out", or "inout"
    index_of: Optional[str] = None

    def resolved_size(self, params: Dict[str, int]) -> int:
        dims = self.size if isinstance(self.size, tuple) else (self.size,)
        total = 1
        for d in dims:
            total *= params[d] if isinstance(d, str) else int(d)
        return total


@dataclass
class Kernel:
    """A complete kernel: parameters, arrays, top-level statements."""

    name: str
    params: Dict[str, int]
    arrays: List[Array]
    body: List[Stmt]

    def array(self, name: str) -> Array:
        for a in self.arrays:
            if a.name == name:
                return a
        raise FrontendError(f"kernel {self.name!r}: unknown array {name!r}")

    def with_params(self, **overrides: int) -> "Kernel":
        """Clone the kernel with some parameters overridden (sizing)."""
        bad = [k for k in overrides if k not in self.params]
        if bad:
            raise FrontendError(f"kernel {self.name!r}: unknown params {bad}")
        params = dict(self.params)
        params.update(overrides)
        return Kernel(self.name, params, self.arrays, self.body)
