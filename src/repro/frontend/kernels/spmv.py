"""spmv: sparse matrix-vector product in COO form (row-gather/scatter).

``y[row[t]] += a[t] * x[col[t]]``: both the gather address (``col[t]``)
and the scatter target (``row[t]``) come from index arrays, so the
output dependence between iterations touching the same row is invisible
to affine tests — the analyzer must classify the ``y`` pairs
``lsq-required``.  The value array ``a`` and the index streams remain
affine, dense accesses.  Naive census: 1 fadd, 1 fmul.
"""

from ..ir import (
    Array,
    For,
    IConst,
    Kernel,
    Let,
    Load,
    Param,
    Store,
    Var,
    fadd,
    fmul,
)


def build() -> Kernel:
    return Kernel(
        name="spmv",
        params={"NNZ": 180, "N": 24},
        arrays=[
            Array("row", "NNZ", index_of="y"),
            Array("col", "NNZ", index_of="x"),
            Array("a", "NNZ"),
            Array("x", "N"),
            Array("y", "N", role="inout"),
        ],
        body=[
            For("t", IConst(0), Param("NNZ"), body=[
                Let("r", Load("row", Var("t"))),
                Let("c", Load("col", Var("t"))),
                Store("y", Var("r"),
                      fadd(Load("y", Var("r")),
                           fmul(Load("a", Var("t")), Load("x", Var("c"))))),
            ]),
        ],
    )
