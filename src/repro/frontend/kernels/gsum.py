"""gsum: guarded polynomial accumulation [11].

``if (a[i] >= 0) s += p(a[i])`` with a 4-fadd/4-fmul Horner-style
polynomial — the irregular, data-dependent workload that showcases dynamic
scheduling: whether an iteration computes is unknown at compile time.
Naive census: 5 fadd, 4 fmul (Table 2).
"""

from ..ir import (
    Array,
    Bin,
    Const,
    For,
    IConst,
    If,
    Kernel,
    Let,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fcmp_ge,
    fmul,
)


def _poly(d):
    """(((d*c0 + c1)*d + c2)*d + c3)*d + c4 — 4 fmul, 4 fadd."""
    p = fadd(fmul(d, Const(0.64)), Const(0.7))
    p = fadd(fmul(p, d), Const(0.21))
    p = fadd(fmul(p, d), Const(0.33))
    p = fadd(fmul(p, d), Const(0.25))
    return p


def build() -> Kernel:
    return Kernel(
        name="gsum",
        params={"N": 130},
        arrays=[
            Array("a", "N"),
            Array("out", 1, role="out"),
        ],
        body=[
            For("i", IConst(0), Param("N"),
                carried={"s": Const(0.0)},
                body=[
                    Let("d", Load("a", Var("i"))),
                    If(fcmp_ge(Var("d"), Const(0.0)),
                       [SetCarried("s", fadd(Var("s"), _poly(Var("d"))))],
                       []),
                ]),
            Store("out", IConst(0), Var("s")),
        ],
    )
