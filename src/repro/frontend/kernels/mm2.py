"""2mm: D = alpha·A·B·C + beta·D (PolyBench, two matrix products).

First nest builds ``tmp = alpha·A·B``; the second accumulates
``D = tmp·C + beta·D`` with the accumulator seeded by ``beta*D[i][j]``.
Naive census: 2 fadd, 4 fmul (Table 2).
"""

from ..ir import (
    Array,
    Const,
    For,
    IConst,
    Kernel,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fmul,
    idx2,
)

ALPHA = 1.3
BETA = 0.7


def build() -> Kernel:
    return Kernel(
        name="2mm",
        params={"NI": 9, "NJ": 9, "NK": 9, "NL": 9},
        arrays=[
            Array("A", ("NI", "NK")),
            Array("B", ("NK", "NJ")),
            Array("C", ("NJ", "NL")),
            Array("tmp", ("NI", "NJ"), role="out"),
            Array("D", ("NI", "NL"), role="inout"),
        ],
        body=[
            For("i", IConst(0), Param("NI"), body=[
                For("j", IConst(0), Param("NJ"), body=[
                    For("k", IConst(0), Param("NK"),
                        carried={"acc": Const(0.0)},
                        body=[
                            SetCarried("acc", fadd(Var("acc"), fmul(
                                fmul(Const(ALPHA),
                                     Load("A", idx2(Var("i"), Var("k"), Param("NK")))),
                                Load("B", idx2(Var("k"), Var("j"), Param("NJ")))))),
                        ]),
                    Store("tmp", idx2(Var("i"), Var("j"), Param("NJ")), Var("acc")),
                ]),
            ]),
            For("i2", IConst(0), Param("NI"), body=[
                For("l", IConst(0), Param("NL"), body=[
                    For("k2", IConst(0), Param("NJ"),
                        carried={
                            "d0": fmul(
                                Load("D", idx2(Var("i2"), Var("l"), Param("NL"))),
                                Const(BETA)),
                        },
                        body=[
                            SetCarried("d0", fadd(Var("d0"), fmul(
                                Load("tmp", idx2(Var("i2"), Var("k2"), Param("NJ"))),
                                Load("C", idx2(Var("k2"), Var("l"), Param("NL")))))),
                        ]),
                    Store("D", idx2(Var("i2"), Var("l"), Param("NL")), Var("d0")),
                ]),
            ]),
        ],
    )
