"""mvt: x1 += A·y1, x2 += Aᵀ·y2 (PolyBench).

Two sequential nests, each a register-promoted row reduction seeded from
the in-out vector.  Naive census: 2 fadd, 2 fmul (Table 2).
"""

from ..ir import (
    Array,
    For,
    IConst,
    Kernel,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fmul,
    idx2,
)


def build() -> Kernel:
    return Kernel(
        name="mvt",
        params={"N": 28},
        arrays=[
            Array("A", ("N", "N")),
            Array("y1", "N"),
            Array("y2", "N"),
            Array("x1", "N", role="inout"),
            Array("x2", "N", role="inout"),
        ],
        body=[
            For("i", IConst(0), Param("N"), body=[
                For("j", IConst(0), Param("N"),
                    carried={"v": Load("x1", Var("i"))},
                    body=[
                        SetCarried("v", fadd(Var("v"), fmul(
                            Load("A", idx2(Var("i"), Var("j"), Param("N"))),
                            Load("y1", Var("j"))))),
                    ]),
                Store("x1", Var("i"), Var("v")),
            ]),
            For("i2", IConst(0), Param("N"), body=[
                For("j2", IConst(0), Param("N"),
                    carried={"w": Load("x2", Var("i2"))},
                    body=[
                        SetCarried("w", fadd(Var("w"), fmul(
                            Load("A", idx2(Var("j2"), Var("i2"), Param("N"))),
                            Load("y2", Var("j2"))))),
                    ]),
                Store("x2", Var("i2"), Var("w")),
            ]),
        ],
    )
