"""syr2k: symmetric rank-2k update (PolyBench, adapted).

Nest 1 scales the triangular half of C by beta; nest 2 accumulates
``A[j][k]*alpha*B[i][k] + B[j][k]*alpha*A[i][k]`` into ``C[i][j]`` — a
memory read-modify-write with a two-term floating-point sum.

Adaptation: triangular bounds are ``j < i+1`` (PolyBench's ``j <= i``),
which is the same set of iterations and keeps trip counts non-zero.
Naive census: 2 fadd, 5 fmul (Table 2).
"""

from ..ir import (
    Array,
    Const,
    For,
    IConst,
    Kernel,
    Load,
    Param,
    Store,
    Var,
    fadd,
    fmul,
    iadd,
    idx2,
)

ALPHA = 1.4
BETA = 0.5


def build() -> Kernel:
    return Kernel(
        name="syr2k",
        params={"N": 13, "M": 13},
        arrays=[
            Array("A", ("N", "M")),
            Array("B", ("N", "M")),
            Array("C", ("N", "N"), role="inout"),
        ],
        body=[
            For("i", IConst(0), Param("N"), body=[
                For("j", IConst(0), iadd(Var("i"), IConst(1)), body=[
                    Store("C", idx2(Var("i"), Var("j"), Param("N")),
                          fmul(Load("C", idx2(Var("i"), Var("j"), Param("N"))),
                               Const(BETA))),
                ]),
            ]),
            For("i2", IConst(0), Param("N"), body=[
                For("k", IConst(0), Param("M"), body=[
                    For("j2", IConst(0), iadd(Var("i2"), IConst(1)), body=[
                        Store("C", idx2(Var("i2"), Var("j2"), Param("N")),
                              fadd(Load("C", idx2(Var("i2"), Var("j2"), Param("N"))),
                                   fadd(fmul(fmul(Load("A", idx2(Var("j2"), Var("k"), Param("M"))),
                                                  Const(ALPHA)),
                                             Load("B", idx2(Var("i2"), Var("k"), Param("M")))),
                                        fmul(fmul(Load("B", idx2(Var("j2"), Var("k"), Param("M"))),
                                                  Const(ALPHA)),
                                             Load("A", idx2(Var("i2"), Var("k"), Param("M"))))))),
                    ]),
                ]),
            ]),
        ],
    )
