"""gsumif: guarded accumulation with two polynomial branches [11].

Like gsum, but the accumulated polynomial depends on a second data
comparison, so different iterations exercise different operators — the
case where the In-order baseline can only share within a branch while
CRUSH's out-of-order access shares everything.  Naive census: 7 fadd,
4 fmul (Table 2): 3 fadd + 2 fmul per branch, plus the accumulator fadd.
"""

from ..ir import (
    Array,
    Const,
    For,
    IConst,
    If,
    Kernel,
    Let,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fcmp_ge,
    fcmp_lt,
    fmul,
)


def _poly_lo(d):
    """((d + c0)*d + c1)*d + c2 — 2 fmul, 3 fadd."""
    p = fadd(d, Const(0.6))
    p = fadd(fmul(p, d), Const(0.4))
    p = fadd(fmul(p, d), Const(0.2))
    return p


def _poly_hi(d):
    """((d + k0)*d + k1)*d + k2 with different coefficients."""
    p = fadd(d, Const(0.11))
    p = fadd(fmul(p, d), Const(0.93))
    p = fadd(fmul(p, d), Const(0.87))
    return p


def build() -> Kernel:
    return Kernel(
        name="gsumif",
        params={"N": 150},
        arrays=[
            Array("a", "N"),
            Array("out", 1, role="out"),
        ],
        body=[
            For("i", IConst(0), Param("N"),
                carried={"s": Const(0.0)},
                body=[
                    Let("d", Load("a", Var("i"))),
                    If(fcmp_ge(Var("d"), Const(0.0)),
                       [
                           Let("p", Var("d")),
                           If(fcmp_lt(Var("d"), Const(1.0)),
                              [Let("p", _poly_lo(Var("d")))],
                              [Let("p", _poly_hi(Var("d")))]),
                           SetCarried("s", fadd(Var("s"), Var("p"))),
                       ],
                       []),
                ]),
            Store("out", IConst(0), Var("s")),
        ],
    )
