"""pointer_chase: linked-list traversal with node updates.

``p = nxt[p]`` each iteration while reading and damping the visited
node's payload (``val[p] *= 0.5``, accumulating the pre-update values).
The address is a loop-carried scalar fed by memory — the hardest case
for static disambiguation (every subscript is data-dependent, and the
chain may revisit nodes).  The analyzer must classify the ``val`` pairs
``lsq-required``.  Naive census: 1 fadd, 1 fmul.
"""

from ..ir import (
    Array,
    Const,
    For,
    IConst,
    Kernel,
    Let,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fmul,
)


def build() -> Kernel:
    return Kernel(
        name="pointer_chase",
        params={"N": 64, "STEPS": 96},
        arrays=[
            Array("nxt", "N", index_of="val"),
            Array("val", "N", role="inout"),
            Array("out", 1, role="out"),
        ],
        body=[
            For("i", IConst(0), Param("STEPS"),
                carried={"p": IConst(0), "s": Const(0.0)},
                body=[
                    Let("v", Load("val", Var("p"))),
                    SetCarried("s", fadd(Var("s"), Var("v"))),
                    Store("val", Var("p"), fmul(Var("v"), Const(0.5))),
                    SetCarried("p", Load("nxt", Var("p"))),
                ]),
            Store("out", IConst(0), Var("s")),
        ],
    )
