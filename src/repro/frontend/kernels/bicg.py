"""bicg: s = Aᵀr, q = Ap (PolyBench BiCG sub-kernel).

One loop nest with two reductions of different character: ``q`` is a
register-promoted scalar accumulation, ``s[j]`` a memory read-modify-write.
Naive census: 2 fadd, 2 fmul.
"""

from ..ir import (
    Array,
    Const,
    For,
    IConst,
    Kernel,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fmul,
    idx2,
)


def build() -> Kernel:
    return Kernel(
        name="bicg",
        params={"N": 23, "M": 23},
        arrays=[
            Array("A", ("N", "M")),
            Array("r", "N"),
            Array("p", "M"),
            Array("s", "M", role="out"),
            Array("q", "N", role="out"),
        ],
        body=[
            For("j0", IConst(0), Param("M"), body=[
                Store("s", Var("j0"), Const(0.0)),
            ]),
            For("i", IConst(0), Param("N"), body=[
                For("j", IConst(0), Param("M"),
                    carried={"qi": Const(0.0)},
                    body=[
                        Store("s", Var("j"), fadd(
                            Load("s", Var("j")),
                            fmul(Load("r", Var("i")),
                                 Load("A", idx2(Var("i"), Var("j"), Param("M")))))),
                        SetCarried("qi", fadd(Var("qi"), fmul(
                            Load("A", idx2(Var("i"), Var("j"), Param("M"))),
                            Load("p", Var("j"))))),
                    ]),
                Store("q", Var("i"), Var("qi")),
            ]),
        ],
    )
