"""The paper's benchmark suite (Section 6.1).

A PolyBench subset — atax, bicg, 2mm, 3mm, symm, gemm, gesummv, mvt,
syr2k — plus gsum and gsumif, the irregular kernels from [11] that motivate
dynamic scheduling.  Every kernel is written the way Dynamatic's LLVM
frontend sees it after mem2reg: reductions whose target is invariant in the
innermost loop are register-promoted into loop-carried scalars; updates
whose target varies per iteration stay as memory read-modify-writes (and
acquire conservative store→load ordering, hence II > 1 everywhere — the
paper's precondition for sharing without performance loss).

``build(name)`` returns the kernel at paper-scale sizes (cycle counts in
the same range as the paper's Tables 2-3); ``build(name, scale="small")``
returns a miniature for fast tests.  The floating-point operator census of
each kernel matches the paper's ``Functional units`` column for the Naive
technique exactly.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ...errors import FrontendError
from ..ir import Kernel
from . import (
    atax,
    bicg,
    gemm,
    gesummv,
    gsum,
    gsumif,
    histogram,
    mm2,
    mm3,
    mvt,
    pointer_chase,
    spmv,
    symm,
    syr2k,
)

_BUILDERS: Dict[str, Callable[..., Kernel]] = {
    "atax": atax.build,
    "bicg": bicg.build,
    "gsum": gsum.build,
    "gsumif": gsumif.build,
    "2mm": mm2.build,
    "3mm": mm3.build,
    "symm": symm.build,
    "gemm": gemm.build,
    "gesummv": gesummv.build,
    "mvt": mvt.build,
    "syr2k": syr2k.build,
    "histogram": histogram.build,
    "spmv": spmv.build,
    "pointer_chase": pointer_chase.build,
}

#: Kernel order as it appears in the paper's Table 2, followed by the
#: irregular data-dependent-memory kernels (not in the paper; they stress
#: the memory-dependence analyzer and motivate the future LSQ).
KERNEL_NAMES: List[str] = [
    "atax",
    "bicg",
    "gsum",
    "gsumif",
    "2mm",
    "3mm",
    "symm",
    "gemm",
    "gesummv",
    "mvt",
    "syr2k",
    "histogram",
    "spmv",
    "pointer_chase",
]

#: Miniature sizes for unit/integration tests (seconds, not minutes).
SMALL_SIZES: Dict[str, Dict[str, int]] = {
    "atax": {"N": 4, "M": 4},
    "bicg": {"N": 4, "M": 4},
    "gsum": {"N": 16},
    "gsumif": {"N": 16},
    "2mm": {"NI": 3, "NJ": 3, "NK": 3, "NL": 3},
    "3mm": {"NI": 3, "NJ": 3, "NK": 3, "NL": 3, "NM": 3},
    "symm": {"N": 4, "M": 4},
    "gemm": {"NI": 4, "NJ": 4, "NK": 4},
    "gesummv": {"N": 5},
    "mvt": {"N": 5},
    "syr2k": {"N": 5, "M": 4},
    "histogram": {"N": 16, "B": 8},
    "spmv": {"NNZ": 16, "N": 6},
    "pointer_chase": {"N": 8, "STEPS": 12},
}


def build(name: str, scale: str = "paper", **overrides: int) -> Kernel:
    """Instantiate a benchmark kernel by its paper name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise FrontendError(
            f"unknown kernel {name!r}; available: {sorted(_BUILDERS)}"
        ) from None
    kernel = builder()
    if scale == "small":
        kernel = kernel.with_params(**SMALL_SIZES[name])
    elif scale != "paper":
        raise FrontendError(f"unknown scale {scale!r} (use 'paper' or 'small')")
    if overrides:
        kernel = kernel.with_params(**overrides)
    return kernel
