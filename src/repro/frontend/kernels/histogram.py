"""histogram: data-dependent binning — the canonical LSQ workload.

``h[idx[i]] += 1.0``: the read-modify-write target is loaded from an
index array, so no compile-time test can disambiguate iteration ``i``'s
store from iteration ``i+1``'s load (they collide exactly when two
samples land in the same bin).  The memory-dependence analyzer must
classify this ``lsq-required``; the conservative ``@dep`` token
serialization keeps the LSQ-free circuit correct in the meantime.
Naive census: 1 fadd.
"""

from ..ir import (
    Array,
    Const,
    For,
    IConst,
    Kernel,
    Let,
    Load,
    Param,
    Store,
    Var,
    fadd,
)


def build() -> Kernel:
    return Kernel(
        name="histogram",
        params={"N": 200, "B": 32},
        arrays=[
            Array("idx", "N", index_of="h"),
            Array("h", "B", role="inout"),
        ],
        body=[
            For("i", IConst(0), Param("N"), body=[
                Let("b", Load("idx", Var("i"))),
                Let("v", Load("h", Var("b"))),
                Store("h", Var("b"), fadd(Var("v"), Const(1.0))),
            ]),
        ],
    )
