"""symm: symmetric matrix-matrix multiply (PolyBench, adapted).

Per (i, j): a triangular inner loop both updates ``C[k][j]`` in place
(memory read-modify-write) and accumulates ``temp2``; the epilogue combines
``beta*C[i][j]``, ``alpha*B[i][j]*A[i][i]`` and ``alpha*temp2``.

Adaptation: the inner bound is ``k < i+1`` instead of PolyBench's
``k < i`` so every invocation has at least one iteration (the dataflow
do-while loop schema requires non-zero trip counts); the kernel remains a
triangular RMW + reduction mix with the same operator census.
Naive census: 4 fadd, 7 fmul (Table 2).
"""

from ..ir import (
    Array,
    Const,
    For,
    IConst,
    Kernel,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fmul,
    iadd,
    idx2,
)

ALPHA = 1.2
BETA = 0.6


def build() -> Kernel:
    return Kernel(
        name="symm",
        params={"N": 17, "M": 17},
        arrays=[
            Array("A", ("N", "N")),
            Array("B", ("N", "M")),
            Array("C", ("N", "M"), role="inout"),
        ],
        body=[
            For("i", IConst(0), Param("N"), body=[
                For("j", IConst(0), Param("M"), body=[
                    For("k", IConst(0), iadd(Var("i"), IConst(1)),
                        carried={"temp2": Const(0.0)},
                        body=[
                            Store("C", idx2(Var("k"), Var("j"), Param("M")),
                                  fadd(Load("C", idx2(Var("k"), Var("j"), Param("M"))),
                                       fmul(fmul(Const(ALPHA),
                                                 Load("B", idx2(Var("i"), Var("j"), Param("M")))),
                                            Load("A", idx2(Var("i"), Var("k"), Param("N")))))),
                            SetCarried("temp2", fadd(Var("temp2"), fmul(
                                Load("B", idx2(Var("k"), Var("j"), Param("M"))),
                                Load("A", idx2(Var("i"), Var("k"), Param("N")))))),
                        ]),
                    Store("C", idx2(Var("i"), Var("j"), Param("M")),
                          fadd(fadd(fmul(Const(BETA),
                                         Load("C", idx2(Var("i"), Var("j"), Param("M")))),
                                    fmul(fmul(Const(ALPHA),
                                              Load("B", idx2(Var("i"), Var("j"), Param("M")))),
                                         Load("A", idx2(Var("i"), Var("i"), Param("N"))))),
                               fmul(Const(ALPHA), Var("temp2")))),
                ]),
            ]),
        ],
    )
