"""gesummv: y = alpha·A·x + beta·B·x (PolyBench).

Two independent scalar reductions per row plus a two-multiply epilogue.
Naive census: 3 fadd, 4 fmul (Table 2).
"""

from ..ir import (
    Array,
    Const,
    For,
    IConst,
    Kernel,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fmul,
    idx2,
)

ALPHA = 1.1
BETA = 0.9


def build() -> Kernel:
    return Kernel(
        name="gesummv",
        params={"N": 28},
        arrays=[
            Array("A", ("N", "N")),
            Array("B", ("N", "N")),
            Array("x", "N"),
            Array("tmp", "N", role="out"),
            Array("y", "N", role="out"),
        ],
        body=[
            For("i", IConst(0), Param("N"), body=[
                For("j", IConst(0), Param("N"),
                    carried={"t": Const(0.0), "v": Const(0.0)},
                    body=[
                        SetCarried("t", fadd(Var("t"), fmul(
                            Load("A", idx2(Var("i"), Var("j"), Param("N"))),
                            Load("x", Var("j"))))),
                        SetCarried("v", fadd(Var("v"), fmul(
                            Load("B", idx2(Var("i"), Var("j"), Param("N"))),
                            Load("x", Var("j"))))),
                    ]),
                Store("tmp", Var("i"), Var("t")),
                Store("y", Var("i"), fadd(
                    fmul(Const(ALPHA), Var("t")),
                    fmul(Const(BETA), Var("v")))),
            ]),
        ],
    )
