"""Unrolled gesummv: the paper's Table 1 workload.

The paper unrolls gesummv's inner loop by 75 — a standard HLS move for
parallelism — which replicates the two multiply-accumulate chains 75 times
each.  Without sharing, the floating-point units alone need more DSP blocks
than the target Kintex-7 provides (790 > 600); CRUSH shares them down to a
handful of units bounded by rule R2's capacity constraint, and the kernel
fits easily.

The builder performs the unrolling at the IR level: ``factor`` independent
carried accumulators per reduction, one operator instance per unrolled
step (exactly what an HLS compiler's unroller emits after mem2reg).
"""

from __future__ import annotations

from ...errors import FrontendError
from ..ir import (
    Array,
    Bin,
    Const,
    For,
    IConst,
    Kernel,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fmul,
    iadd,
    imul,
)

ALPHA = 1.1
BETA = 0.9


def gesummv_unrolled(factor: int = 75, n: int = 150) -> Kernel:
    """gesummv with the inner loop unrolled by ``factor`` (paper Table 1)."""
    if n % factor != 0:
        raise FrontendError(
            f"N={n} must be a multiple of the unroll factor {factor}"
        )
    carried = {}
    body = []
    for u in range(factor):
        carried[f"t{u}"] = Const(0.0)
        carried[f"v{u}"] = Const(0.0)
    # Flat index of the u-th unrolled lane: i*N + j*factor + u.
    for u in range(factor):
        lane = iadd(imul(Var("j"), IConst(factor)), IConst(u))
        a_idx = iadd(imul(Var("i"), Param("N")), lane)
        body.append(SetCarried(f"t{u}", fadd(Var(f"t{u}"), fmul(
            Load("A", a_idx), Load("x", lane)))))
        body.append(SetCarried(f"v{u}", fadd(Var(f"v{u}"), fmul(
            Load("B", a_idx), Load("x", lane)))))

    # Reduction tree over the lane accumulators (adds no new op types).
    def tree(names):
        exprs = [Var(nm) for nm in names]
        while len(exprs) > 1:
            nxt = []
            for k in range(0, len(exprs) - 1, 2):
                nxt.append(fadd(exprs[k], exprs[k + 1]))
            if len(exprs) % 2:
                nxt.append(exprs[-1])
            exprs = nxt
        return exprs[0]

    t_sum = tree([f"t{u}" for u in range(factor)])
    v_sum = tree([f"v{u}" for u in range(factor)])

    return Kernel(
        name=f"gesummv_u{factor}",
        params={"N": n, "TRIPS": n // factor},
        arrays=[
            Array("A", ("N", "N")),
            Array("B", ("N", "N")),
            Array("x", "N"),
            Array("y", "N", role="out"),
        ],
        body=[
            For("i", IConst(0), Param("N"), body=[
                For("j", IConst(0), Param("TRIPS"), carried=dict(carried),
                    body=list(body)),
                Store("y", Var("i"), fadd(
                    fmul(Const(ALPHA), t_sum),
                    fmul(Const(BETA), v_sum))),
            ]),
        ],
    )
