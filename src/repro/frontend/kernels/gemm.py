"""gemm: C = alpha·A·B + beta·C (PolyBench).

The accumulator is seeded with ``beta*C[i][j]`` (register-promoted), so the
kernel is a single triple nest.  Naive census: 1 fadd, 3 fmul (Table 2).
"""

from ..ir import (
    Array,
    Const,
    For,
    IConst,
    Kernel,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fmul,
    idx2,
)

ALPHA = 1.2
BETA = 0.8


def build() -> Kernel:
    return Kernel(
        name="gemm",
        params={"NI": 19, "NJ": 19, "NK": 19},
        arrays=[
            Array("A", ("NI", "NK")),
            Array("B", ("NK", "NJ")),
            Array("C", ("NI", "NJ"), role="inout"),
        ],
        body=[
            For("i", IConst(0), Param("NI"), body=[
                For("j", IConst(0), Param("NJ"), body=[
                    For("k", IConst(0), Param("NK"),
                        carried={
                            "c0": fmul(
                                Load("C", idx2(Var("i"), Var("j"), Param("NJ"))),
                                Const(BETA)),
                        },
                        body=[
                            SetCarried("c0", fadd(Var("c0"), fmul(
                                fmul(Const(ALPHA),
                                     Load("A", idx2(Var("i"), Var("k"), Param("NK")))),
                                Load("B", idx2(Var("k"), Var("j"), Param("NJ")))))),
                        ]),
                    Store("C", idx2(Var("i"), Var("j"), Param("NJ")), Var("c0")),
                ]),
            ]),
        ],
    )
