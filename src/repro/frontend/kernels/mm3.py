"""3mm: G = (A·B)·(C·D) (PolyBench, three matrix products).

Three sequential plain matrix-product nests communicating through memory.
Naive census: 3 fadd, 3 fmul (Table 2).
"""

from ..ir import (
    Array,
    Const,
    For,
    IConst,
    Kernel,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fmul,
    idx2,
)


def _matmul(prefix, dst, a, b, ni, nj, nk):
    """One product nest dst = a·b with fresh loop-variable names."""
    i, j, k = f"{prefix}i", f"{prefix}j", f"{prefix}k"
    return For(i, IConst(0), Param(ni), body=[
        For(j, IConst(0), Param(nj), body=[
            For(k, IConst(0), Param(nk),
                carried={"acc": Const(0.0)},
                body=[
                    SetCarried("acc", fadd(Var("acc"), fmul(
                        Load(a, idx2(Var(i), Var(k), Param(nk))),
                        Load(b, idx2(Var(k), Var(j), Param(nj)))))),
                ]),
            Store(dst, idx2(Var(i), Var(j), Param(nj)), Var("acc")),
        ]),
    ])


def build() -> Kernel:
    return Kernel(
        name="3mm",
        params={"NI": 9, "NJ": 9, "NK": 9, "NL": 9, "NM": 9},
        arrays=[
            Array("A", ("NI", "NK")),
            Array("B", ("NK", "NJ")),
            Array("C", ("NJ", "NM")),
            Array("D", ("NM", "NL")),
            Array("E", ("NI", "NJ"), role="out"),
            Array("F", ("NJ", "NL"), role="out"),
            Array("G", ("NI", "NL"), role="out"),
        ],
        body=[
            _matmul("a", "E", "A", "B", "NI", "NJ", "NK"),
            _matmul("b", "F", "C", "D", "NJ", "NL", "NM"),
            _matmul("c", "G", "E", "F", "NI", "NL", "NJ"),
        ],
    )
