"""atax: y = Aᵀ(Ax) (PolyBench).

Two floating-point reductions per outer iteration: ``t += A[i][j]*x[j]``
(register-promoted scalar, II ≈ fadd latency) and the transpose update
``y[j] += A[i][j]*t`` (memory read-modify-write, II set by the load→fadd→
store ordering chain).  Naive census: 2 fadd, 2 fmul — as in Table 2.
"""

from ..ir import (
    Array,
    Const,
    For,
    IConst,
    Kernel,
    Load,
    Param,
    SetCarried,
    Store,
    Var,
    fadd,
    fmul,
    idx2,
)


def build() -> Kernel:
    return Kernel(
        name="atax",
        params={"N": 13, "M": 13},
        arrays=[
            Array("A", ("N", "M")),
            Array("x", "M"),
            Array("tmp", "N", role="out"),
            Array("y", "M", role="out"),
        ],
        body=[
            For("j0", IConst(0), Param("M"), body=[
                Store("y", Var("j0"), Const(0.0)),
            ]),
            For("i", IConst(0), Param("N"), body=[
                For("j", IConst(0), Param("M"),
                    carried={"t": Const(0.0)},
                    body=[
                        SetCarried("t", fadd(Var("t"), fmul(
                            Load("A", idx2(Var("i"), Var("j"), Param("M"))),
                            Load("x", Var("j"))))),
                    ]),
                Store("tmp", Var("i"), Var("t")),
                For("j2", IConst(0), Param("M"), body=[
                    Store("y", Var("j2"), fadd(
                        Load("y", Var("j2")),
                        fmul(Load("A", idx2(Var("i"), Var("j2"), Param("M"))),
                             Var("t")))),
                ]),
            ]),
        ],
    )
