"""Reference interpreter: the functional ground truth for every kernel.

Executes the kernel IR directly on NumPy-backed flat arrays with the *same*
operator semantics (Python float arithmetic, same evaluation order) as the
dataflow simulation, so simulated circuits must match the reference
bit-exactly.  Also counts memory writes and operator activations — the
runner uses the write count as part of its completion condition, and the
tests use the activation counts as sanity checks on trip counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..circuit import op_spec
from ..errors import FrontendError
from .ir import (
    Bin,
    Const,
    Expr,
    For,
    IConst,
    If,
    Kernel,
    Let,
    Load,
    Param,
    SetCarried,
    Stmt,
    Store,
    Var,
)


@dataclass
class RefResult:
    """Interpreter outcome: final arrays, write count, op activations."""

    arrays: Dict[str, np.ndarray]
    writes: int = 0
    op_counts: Dict[str, int] = field(default_factory=dict)


class _Interp:
    def __init__(self, kernel: Kernel, arrays: Dict[str, np.ndarray]):
        self.kernel = kernel
        self.params = kernel.params
        self.mem = {name: [float(x) for x in vals] for name, vals in arrays.items()}
        self.writes = 0
        self.op_counts: Dict[str, int] = {}

    # ----------------------------------------------------------- expressions
    def eval(self, e: Expr, env: Dict[str, object]):
        if isinstance(e, Const):
            return float(e.value)
        if isinstance(e, IConst):
            return int(e.value)
        if isinstance(e, Param):
            try:
                return int(self.params[e.name])
            except KeyError:
                raise FrontendError(f"unknown parameter {e.name!r}") from None
        if isinstance(e, Var):
            try:
                return env[e.name]
            except KeyError:
                raise FrontendError(f"unbound variable {e.name!r}") from None
        if isinstance(e, Load):
            addr = int(self.eval(e.index, env))
            cells = self.mem[e.array]
            if not 0 <= addr < len(cells):
                raise FrontendError(
                    f"reference read out of bounds: {e.array}[{addr}]"
                )
            return cells[addr]
        if isinstance(e, Bin):
            a = self.eval(e.a, env)
            b = self.eval(e.b, env)
            spec = op_spec(e.op)
            self.op_counts[e.op] = self.op_counts.get(e.op, 0) + 1
            return spec.fn(a, b)
        raise FrontendError(f"cannot evaluate expression {e!r}")

    # ------------------------------------------------------------ statements
    def run_block(self, stmts: List[Stmt], env: Dict[str, object]) -> None:
        for s in stmts:
            self.run_stmt(s, env)

    def run_stmt(self, s: Stmt, env: Dict[str, object]) -> None:
        if isinstance(s, Let):
            env[s.name] = self.eval(s.expr, env)
        elif isinstance(s, SetCarried):
            if s.name not in env:
                raise FrontendError(
                    f"SetCarried on undeclared carried var {s.name!r}"
                )
            env[s.name] = self.eval(s.expr, env)
        elif isinstance(s, Store):
            addr = int(self.eval(s.index, env))
            cells = self.mem[s.array]
            if not 0 <= addr < len(cells):
                raise FrontendError(
                    f"reference write out of bounds: {s.array}[{addr}]"
                )
            cells[addr] = float(self.eval(s.value, env))
            self.writes += 1
        elif isinstance(s, If):
            taken = s.then if self.eval(s.cond, env) else s.orelse
            self.run_block(taken, env)
        elif isinstance(s, For):
            lo = int(self.eval(s.lo, env))
            hi = int(self.eval(s.hi, env))
            inner = dict(env)
            for name, init in s.carried.items():
                inner[name] = self.eval(init, env)
            v = lo
            while v < hi:
                inner[s.var] = v
                self.run_block(s.body, inner)
                v += 1
            for name in s.carried:
                env[name] = inner[name]
        else:
            raise FrontendError(f"cannot execute statement {s!r}")


def run_reference(kernel: Kernel, arrays: Dict[str, np.ndarray]) -> RefResult:
    """Execute ``kernel`` on copies of ``arrays``; inputs are not mutated."""
    interp = _Interp(kernel, arrays)
    interp.run_block(kernel.body, {})
    out = {
        name: np.array(cells, dtype=float) for name, cells in interp.mem.items()
    }
    return RefResult(arrays=out, writes=interp.writes, op_counts=interp.op_counts)
