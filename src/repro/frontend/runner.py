"""Kernel runner: simulate a lowered kernel and check it against the reference.

Drives the full loop the paper's methodology describes (Section 6.1):
generate inputs, run the cycle-accurate simulation (the ModelSim stand-in),
confirm the circuit computes exactly what the C semantics say and does not
deadlock, and report the cycle count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import SimulationError
from ..sim import Memory, SimProfile, Trace, create_engine
from .interp import RefResult, run_reference
from .ir import Kernel
from .lower import LoweredKernel


@dataclass
class KernelRun:
    """Outcome of one simulated kernel execution."""

    cycles: int
    fires: int
    checked: bool
    arrays: Dict[str, np.ndarray]
    reference: RefResult
    sim_wall_s: float
    mismatches: Dict[str, float] = field(default_factory=dict)
    #: Batched-run provenance (all zero/None on scalar runs and on
    #: lockstep batches): lanes re-executed on a scalar engine after a
    #: divergence, lockstep→mask-lane promotions performed, and the
    #: diverging control site as ``"<channel>@<cycle>"``.
    fallback_lanes: int = 0
    mask_promotions: int = 0
    divergence: Optional[str] = None


def default_inputs(kernel: Kernel, seed: int = 7) -> Dict[str, np.ndarray]:
    """Reproducible random input data for every kernel array.

    Values are drawn from a small range and rounded so that accumulated
    floating-point results stay well-conditioned for exact comparison.

    Index arrays (``Array.index_of``) instead hold uniformly random valid
    indices into their target array, so data-dependent kernels address
    in-bounds cells.  The draw *sequence* is one call per array in
    declaration order either way, keeping inputs for index-free kernels
    byte-identical to what they were before index arrays existed.
    """
    rng = np.random.default_rng(seed)
    sizes = {a.name: a.resolved_size(kernel.params) for a in kernel.arrays}
    data = {}
    for arr in kernel.arrays:
        size = sizes[arr.name]
        if arr.index_of is not None:
            target = sizes[arr.index_of]
            data[arr.name] = rng.integers(0, target, size).astype(float)
        else:
            data[arr.name] = np.round(rng.uniform(-2.0, 2.0, size), 3)
    return data


def simulate_kernel(
    lowered: LoweredKernel,
    inputs: Optional[Dict[str, np.ndarray]] = None,
    check: bool = True,
    max_cycles: int = 2_000_000,
    trace: Optional[Trace] = None,
    seed: int = 7,
    backend: Optional[str] = None,
    profile: Optional[SimProfile] = None,
    sanitize: object = None,
    fast_forward: Optional[bool] = None,
) -> KernelRun:
    """Run ``lowered`` to completion; verify results against the reference.

    Completion is reached when the final control token arrives at the end
    sink *and* the circuit has committed every memory write the reference
    performed (drains stores still in flight when control exits early).

    ``backend`` selects the simulation backend (``"event"`` /
    ``"compiled"`` / ``"codegen"``; None uses
    :data:`repro.sim.DEFAULT_BACKEND`), ``profile`` optionally collects
    hot-loop statistics, ``sanitize`` turns on the runtime
    handshake-protocol sanitizer (None defers to the
    ``REPRO_SIM_SANITIZE`` environment variable; a pre-built
    :class:`~repro.sim.sanitize.HandshakeSanitizer` instance is adopted
    as-is, e.g. one armed with SAN005 alias pairs), and ``fast_forward``
    enables steady-state period skipping on the codegen backend (None
    defers to ``REPRO_SIM_FF``).
    """
    kernel = lowered.kernel
    if inputs is None:
        inputs = default_inputs(kernel, seed=seed)
    reference = run_reference(kernel, inputs)

    memory = Memory()
    for arr in kernel.arrays:
        size = arr.resolved_size(kernel.params)
        memory.allocate(arr.name, size, init=inputs[arr.name])

    engine = create_engine(
        lowered.circuit, backend=backend,
        memory=memory, trace=trace, profile=profile,
        sanitize=sanitize, fast_forward=fast_forward,
    )
    end = lowered.circuit.unit(lowered.end_sink)
    expected_writes = reference.writes

    def done() -> bool:
        return end.count >= 1 and memory.writes >= expected_writes

    t0 = time.perf_counter()
    cycles = engine.run(done, max_cycles=max_cycles)
    wall = time.perf_counter() - t0

    if memory.writes != expected_writes:
        raise SimulationError(
            f"{kernel.name}: circuit performed {memory.writes} writes, "
            f"reference performed {expected_writes}"
        )

    arrays = {a.name: memory.dump(a.name) for a in kernel.arrays}
    mismatches: Dict[str, float] = {}
    if check:
        for name, got in arrays.items():
            want = reference.arrays[name]
            if not np.allclose(got, want, rtol=1e-9, atol=1e-12):
                mismatches[name] = float(np.max(np.abs(got - want)))
        if mismatches:
            raise SimulationError(
                f"{kernel.name}: simulation diverges from the reference "
                f"semantics: {mismatches}"
            )

    return KernelRun(
        cycles=cycles,
        fires=engine.total_fires,
        checked=check,
        arrays=arrays,
        reference=reference,
        sim_wall_s=wall,
    )


def simulate_kernel_batch(
    lowered: LoweredKernel,
    seeds: Sequence[int],
    check: bool = True,
    max_cycles: int = 2_000_000,
    backend: Optional[str] = None,
    sanitize: Optional[bool] = None,
    fast_forward: Optional[bool] = None,
) -> List[KernelRun]:
    """Run one input set per seed through a single batched engine.

    Equivalent to ``[simulate_kernel(lowered, seed=s, ...) for s in seeds]``
    — same per-lane cycle counts, fire counts, memory contents and
    reference checks, bit for bit — but the lane-parallel backends
    (:mod:`repro.sim.batched`) evaluate all lanes in one generated-loop
    pass, so the batch costs far less wall clock than ``len(seeds)``
    scalar runs.

    ``sim_wall_s`` on every returned :class:`KernelRun` is the wall time
    of the *whole batch* (lanes do not run separately, so there is no
    per-lane time to report).  Observers (trace/profile/sanitizer) and
    fast-forward are scalar-only; requesting them here raises
    :class:`SimulationError`.
    """
    kernel = lowered.kernel
    lanes = len(seeds)
    if lanes < 1:
        raise SimulationError("simulate_kernel_batch needs at least one seed")

    references: List[RefResult] = []
    memories: List[Memory] = []
    for s in seeds:
        inputs = default_inputs(kernel, seed=s)
        references.append(run_reference(kernel, inputs))
        memory = Memory()
        for arr in kernel.arrays:
            size = arr.resolved_size(kernel.params)
            memory.allocate(arr.name, size, init=inputs[arr.name])
        memories.append(memory)
    expected = [ref.writes for ref in references]

    engine = create_engine(
        lowered.circuit, backend=backend, lanes=lanes, memories=memories,
        sanitize=sanitize, fast_forward=fast_forward,
    )
    end_name = lowered.end_sink

    def done_lane(lane: int) -> bool:
        return (
            engine.sink_count(end_name, lane) >= 1
            and memories[lane].writes >= expected[lane]
        )

    # The predicate only reads quantities the lockstep pass advances
    # uniformly (shared sink count, per-lane write counters that tick
    # together), so when the per-lane targets agree lane 0 speaks for
    # the whole batch.  Distinct targets mean the executions differ by
    # construction; the engine then checks every lane each cycle and
    # promotes to mask-lane execution at the first partial completion
    # (the event backend re-runs every lane scalar instead).
    uniform = len(set(expected)) == 1

    t0 = time.perf_counter()
    lane_cycles = engine.run_lanes(
        done_lane, max_cycles=max_cycles, uniform_done=uniform
    )
    wall = time.perf_counter() - t0

    div = getattr(engine, "divergence", None)
    div_site = f"{div.channel}@{div.cycle}" if div is not None else None
    fallback_lanes = getattr(engine, "fallback_lanes", 0)
    mask_promotions = getattr(engine, "mask_promotions", 0)

    runs: List[KernelRun] = []
    for lane, (memory, reference) in enumerate(zip(memories, references)):
        if memory.writes != expected[lane]:
            raise SimulationError(
                f"{kernel.name}: lane {lane} performed {memory.writes} "
                f"writes, reference performed {expected[lane]}"
            )
        arrays = {a.name: memory.dump(a.name) for a in kernel.arrays}
        mismatches: Dict[str, float] = {}
        if check:
            for name, got in arrays.items():
                want = reference.arrays[name]
                if not np.allclose(got, want, rtol=1e-9, atol=1e-12):
                    mismatches[name] = float(np.max(np.abs(got - want)))
            if mismatches:
                raise SimulationError(
                    f"{kernel.name}: lane {lane} diverges from the "
                    f"reference semantics: {mismatches}"
                )
        runs.append(KernelRun(
            cycles=lane_cycles[lane],
            fires=engine.lane_fires[lane],
            checked=check,
            arrays=arrays,
            reference=reference,
            sim_wall_s=wall,
            fallback_lanes=fallback_lanes,
            mask_promotions=mask_promotions,
            divergence=div_site,
        ))
    return runs
