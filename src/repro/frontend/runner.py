"""Kernel runner: simulate a lowered kernel and check it against the reference.

Drives the full loop the paper's methodology describes (Section 6.1):
generate inputs, run the cycle-accurate simulation (the ModelSim stand-in),
confirm the circuit computes exactly what the C semantics say and does not
deadlock, and report the cycle count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..errors import SimulationError
from ..sim import Memory, SimProfile, Trace, create_engine
from .interp import RefResult, run_reference
from .ir import Kernel
from .lower import LoweredKernel


@dataclass
class KernelRun:
    """Outcome of one simulated kernel execution."""

    cycles: int
    fires: int
    checked: bool
    arrays: Dict[str, np.ndarray]
    reference: RefResult
    sim_wall_s: float
    mismatches: Dict[str, float] = field(default_factory=dict)


def default_inputs(kernel: Kernel, seed: int = 7) -> Dict[str, np.ndarray]:
    """Reproducible random input data for every kernel array.

    Values are drawn from a small range and rounded so that accumulated
    floating-point results stay well-conditioned for exact comparison.
    """
    rng = np.random.default_rng(seed)
    data = {}
    for arr in kernel.arrays:
        size = arr.resolved_size(kernel.params)
        data[arr.name] = np.round(rng.uniform(-2.0, 2.0, size), 3)
    return data


def simulate_kernel(
    lowered: LoweredKernel,
    inputs: Optional[Dict[str, np.ndarray]] = None,
    check: bool = True,
    max_cycles: int = 2_000_000,
    trace: Optional[Trace] = None,
    seed: int = 7,
    backend: Optional[str] = None,
    profile: Optional[SimProfile] = None,
    sanitize: Optional[bool] = None,
    fast_forward: Optional[bool] = None,
) -> KernelRun:
    """Run ``lowered`` to completion; verify results against the reference.

    Completion is reached when the final control token arrives at the end
    sink *and* the circuit has committed every memory write the reference
    performed (drains stores still in flight when control exits early).

    ``backend`` selects the simulation backend (``"event"`` /
    ``"compiled"`` / ``"codegen"``; None uses
    :data:`repro.sim.DEFAULT_BACKEND`), ``profile`` optionally collects
    hot-loop statistics, ``sanitize`` turns on the runtime
    handshake-protocol sanitizer (None defers to the
    ``REPRO_SIM_SANITIZE`` environment variable), and ``fast_forward``
    enables steady-state period skipping on the codegen backend (None
    defers to ``REPRO_SIM_FF``).
    """
    kernel = lowered.kernel
    if inputs is None:
        inputs = default_inputs(kernel, seed=seed)
    reference = run_reference(kernel, inputs)

    memory = Memory()
    for arr in kernel.arrays:
        size = arr.resolved_size(kernel.params)
        memory.allocate(arr.name, size, init=inputs[arr.name])

    engine = create_engine(
        lowered.circuit, backend=backend,
        memory=memory, trace=trace, profile=profile,
        sanitize=sanitize, fast_forward=fast_forward,
    )
    end = lowered.circuit.unit(lowered.end_sink)
    expected_writes = reference.writes

    def done() -> bool:
        return end.count >= 1 and memory.writes >= expected_writes

    t0 = time.perf_counter()
    cycles = engine.run(done, max_cycles=max_cycles)
    wall = time.perf_counter() - t0

    if memory.writes != expected_writes:
        raise SimulationError(
            f"{kernel.name}: circuit performed {memory.writes} writes, "
            f"reference performed {expected_writes}"
        )

    arrays = {a.name: memory.dump(a.name) for a in kernel.arrays}
    mismatches: Dict[str, float] = {}
    if check:
        for name, got in arrays.items():
            want = reference.arrays[name]
            if not np.allclose(got, want, rtol=1e-9, atol=1e-12):
                mismatches[name] = float(np.max(np.abs(got - want)))
        if mismatches:
            raise SimulationError(
                f"{kernel.name}: simulation diverges from the reference "
                f"semantics: {mismatches}"
            )

    return KernelRun(
        cycles=cycles,
        fires=engine.total_fires,
        checked=check,
        arrays=arrays,
        reference=reference,
        sim_wall_s=wall,
    )
